package occamy_test

import (
	"fmt"

	"occamy"
)

// ExampleDTReservedFraction reproduces the §4.4 arithmetic: DT with one
// congested queue reserves B/(1+α) of the buffer, so α=8 wastes only a
// ninth where α=1 wastes half.
func ExampleDTReservedFraction() {
	for _, alpha := range []float64{1, 8, 16} {
		fmt.Printf("alpha=%-2g reserved=%.3f\n", alpha, occamy.DTReservedFraction(alpha, 1))
	}
	// Output:
	// alpha=1  reserved=0.500
	// alpha=8  reserved=0.111
	// alpha=16 reserved=0.059
}

// ExampleNewSwitch forwards one packet through a minimal Occamy switch.
func ExampleNewSwitch() {
	eng := occamy.NewEngine()
	occCfg := occamy.OccamyConfig{Alpha: 8}
	sw := occamy.NewSwitch("sw0", eng, occamy.SwitchConfig{
		Ports:          2,
		ClassesPerPort: 1,
		BufferBytes:    64 << 10,
		Policy:         occamy.NewOccamy(occCfg),
		Occamy:         &occCfg,
	})
	for i := 0; i < 2; i++ {
		i := i
		sw.AttachPort(i, 10e9, 0, func(p *occamy.Packet) {
			fmt.Printf("port %d delivered packet %d at %v\n", i, p.ID, eng.Now())
		})
	}
	sw.SetRouter(func(p *occamy.Packet) int { return int(p.Dst) })

	sw.Receive(&occamy.Packet{ID: 1, Dst: 1, Size: 1250})
	eng.Run()
	// Output:
	// port 1 delivered packet 1 at 1.000us
}

// ExampleHardwareCostTable prints the head-drop selector's cost row.
func ExampleHardwareCostTable() {
	sel := occamy.HardwareCostTable(64, 20)[0]
	fmt.Printf("%s: %d LUTs, %d FFs\n", sel.Module, sel.LUTs, sel.FlipFlops)
	// Output:
	// Selector: 1261 LUTs, 47 FFs
}
