package occamy_test

import (
	"testing"

	"occamy"
)

// TestPublicAPIEndToEnd drives the whole stack through the public
// facade: a star network, a preemptive-BM switch, DCTCP flows, and the
// Occamy expulsion engine — the integration path a downstream user
// takes first.
func TestPublicAPIEndToEnd(t *testing.T) {
	occCfg := occamy.OccamyConfig{Alpha: 8}
	rates := []float64{10e9, 10e9, 10e9, 10e9}
	net := occamy.SingleSwitch(occamy.SingleSwitchConfig{
		HostRates: rates,
		LinkDelay: 2 * occamy.Microsecond,
		Switch: occamy.SwitchConfig{
			ClassesPerPort:    1,
			BufferBytes:       200 << 10,
			Policy:            occamy.NewOccamy(occCfg),
			Occamy:            &occCfg,
			ECNThresholdBytes: 40 << 10,
		},
		Seed: 3,
	})
	done := 0
	for i := 1; i < 4; i++ {
		net.StartFlow(0, occamy.NodeID(i), 0, 500_000, occamy.FlowOptions{
			ECN:        true,
			OnComplete: func(occamy.Duration) { done++ },
		})
	}
	net.Eng.RunUntil(occamy.Second)
	if done != 3 {
		t.Fatalf("completed %d/3 flows", done)
	}
	st := net.Switches[0].Stats()
	if st.TxPackets == 0 {
		t.Fatal("switch forwarded nothing")
	}
}

// TestPublicAPIPolicies builds every exported policy and checks naming.
func TestPublicAPIPolicies(t *testing.T) {
	clock := func() int64 { return 0 }
	policies := []occamy.Policy{
		occamy.NewDT(1),
		occamy.NewABM(2),
		occamy.NewOccamy(occamy.OccamyConfig{}),
		occamy.NewPushout(),
		occamy.NewEDT(1, clock),
		occamy.NewTDT(1),
		occamy.NewPOT(0.5),
		occamy.NewQPO(),
		occamy.CompleteSharing{},
		occamy.StaticThreshold{Limit: 1000},
	}
	seen := map[string]bool{}
	for _, p := range policies {
		n := p.Name()
		if n == "" || seen[n] {
			t.Fatalf("policy %T has empty/duplicate name %q", p, n)
		}
		seen[n] = true
	}
}

// TestPublicAPIHardwareCost checks the Table-1 surface.
func TestPublicAPIHardwareCost(t *testing.T) {
	rows := occamy.HardwareCostTable(64, 20)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[0].Module != "Selector" || rows[0].LUTs < 1000 {
		t.Fatalf("selector row = %+v", rows[0])
	}
}

// TestPublicAPIAnalytics checks the re-exported Eq.2 helper.
func TestPublicAPIAnalytics(t *testing.T) {
	if f := occamy.DTReservedFraction(8, 1); f < 0.11 || f > 0.112 {
		t.Fatalf("DTReservedFraction(8,1) = %v, want 1/9", f)
	}
}

// TestPublicAPICCs exercises the three congestion controllers.
func TestPublicAPICCs(t *testing.T) {
	for _, cc := range []occamy.CC{
		occamy.NewDCTCP(occamy.MSS, 10),
		occamy.NewCubic(occamy.MSS, 10),
		occamy.NewRenoCC(occamy.MSS, 10),
	} {
		if cc.Cwnd() != 10*occamy.MSS {
			t.Fatalf("%s initial cwnd = %d", cc.Name(), cc.Cwnd())
		}
	}
}
