// occamy-router fronts a fleet of occamy-served workers with the same
// HTTP API one worker serves, sharding by content: every POST /v1/runs
// is routed by consistent hash over the spec's fingerprint — the key
// the workers' result caches use — so an identical (or semantically
// equivalent) spec always lands on the same worker, and resubmissions
// stay O(1) cache hits no matter how many workers the fleet has.
// Sweeps are expanded router-side and fanned point-by-point to each
// point's home shard, then re-assembled into the byte-identical table a
// single worker would have produced; POST /v1/batch fans out the same
// way with one sub-batch per shard. GET /v1/stats and /v1/cache merge
// the whole fleet (the submission-ledger identities reconcile on the
// sums). A per-client token bucket (X-Client-ID header, else remote
// host) answers 429 + Retry-After before one greedy client can starve
// every worker queue.
//
// Usage:
//
//	occamy-router -workers http://h1:8080,http://h2:8080 [-addr :8070]
//	    [-rate 0] [-burst 0] [-max-sweep-points 256] [-sweep-cache-mb 64]
//
//	curl -X POST 'localhost:8070/v1/runs?name=burst-absorb&scale=quick'
//	curl localhost:8070/v1/runs/w0.r1        # shard-addressed job ID
//	curl localhost:8070/v1/stats             # fleet-wide merged ledger
//
// The router holds no simulation state: results live on (and are
// served through) their home shards, so killing and restarting the
// router loses only in-flight sweep aggregations.
//
// See SERVICE.md for the endpoint reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"occamy/internal/fleet"
	"occamy/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8070", "listen address")
	workers := flag.String("workers", "", "comma-separated occamy-served base URLs (required)")
	replicas := flag.Int("replicas", 0, "virtual nodes per worker on the hash ring (0 = 128)")
	rate := flag.Float64("rate", 0, "per-client admission rate in requests/second (0 = unlimited)")
	burst := flag.Float64("burst", 0, "per-client burst allowance (0 = max(1, rate))")
	maxSweep := flag.Int("max-sweep-points", 0, "maximum expanded grid points per sweep request (0 = 256)")
	sweepCacheMB := flag.Int64("sweep-cache-mb", 64, "aggregated-sweep result-cache budget in MB")
	pointTimeout := flag.Duration("point-timeout", 10*time.Minute, "per-point submit-to-done budget inside a sweep")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight HTTP requests")
	logLevel := flag.String("log-level", "", "structured JSON logs on stderr at this level (debug, info, warn, error; empty = off)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = off)")
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*workers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "occamy-router: -workers needs at least one occamy-served URL")
		os.Exit(2)
	}

	logger, err := obs.NewLogger(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "occamy-router:", err)
		os.Exit(2)
	}
	obs.StartPprof(*pprofAddr)

	if err := run(*addr, fleet.Config{
		Workers:         urls,
		Replicas:        *replicas,
		MaxSweepPoints:  *maxSweep,
		RatePerClient:   *rate,
		Burst:           *burst,
		SweepCacheBytes: *sweepCacheMB << 20,
		PointTimeout:    *pointTimeout,
		Logger:          logger,
	}, *drain); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run owns the server lifecycle: every shutdown path goes through
// http.Server.Shutdown so in-flight proxied requests drain before the
// process exits (the workers keep running — the router is stateless).
func run(addr string, cfg fleet.Config, drain time.Duration) error {
	rt, err := fleet.NewRouter(cfg)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	srv := &http.Server{Addr: addr, Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() {
		log.Printf("occamy-router listening on %s (%d workers, rate=%.1f/s)",
			addr, len(cfg.Workers), cfg.RatePerClient)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err // ListenAndServe never returns nil
	case <-ctx.Done():
	}

	log.Printf("occamy-router: shutting down (draining HTTP for up to %v)", drain)
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Printf("occamy-router: HTTP drain: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("occamy-router: bye")
	return nil
}
