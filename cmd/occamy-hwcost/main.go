// occamy-hwcost prints the Table-1 hardware cost model for Occamy's
// head-drop selector, fixed-priority arbiter, and head-drop executor,
// plus the Maximum Finder comparison that rules classic Pushout out.
//
// Usage:
//
//	occamy-hwcost [-queues 64] [-bits 20] [-ghz 1.0]
package main

import (
	"flag"
	"fmt"
	"os"

	"occamy/internal/experiments"
	"occamy/internal/hw"
)

func main() {
	queues := flag.Int("queues", 64, "number of queues tracked by the selector bitmap")
	bits := flag.Int("bits", 20, "bit width of compared queue lengths")
	ghz := flag.Float64("ghz", 1.0, "traffic manager clock for timing checks")
	flag.Parse()

	experiments.Table1HardwareCost(*queues, *bits).Fprint(os.Stdout)

	fmt.Println()
	fmt.Println("Maximum Finder (the circuit classic Pushout needs, Fig 4):")
	mf := hw.NewMaxFinder(*queues, *bits)
	fmt.Printf("  levels=%d comparators=%d gates=%d delay=%.2fns\n",
		mf.Levels(), mf.Comparators(), mf.Gates(), mf.DelayNs())
	if mf.MeetsCycleTime(*ghz) {
		fmt.Printf("  settles within one %.1fGHz cycle\n", *ghz)
	} else {
		fmt.Printf("  CANNOT settle within one %.1fGHz cycle — the paper's\n", *ghz)
		fmt.Println("  Difficulty 3: per-cycle queue-length changes outrun the tree.")
	}

	fmt.Println()
	fmt.Println("Dequeue pipeline (Fig 10):")
	for _, sub := range []int{1, 4} {
		cfg := hw.PipelineConfig{Sublists: sub}
		fmt.Printf("  %d sublists: 1500B packet (8 cells) dequeue=%d cycles, expulsion rate=%.0f Mpps\n",
			sub, hw.DequeueCycles(cfg, 8, true), hw.ExpulsionRate(cfg, *ghz, 8)/1e6)
	}
}
