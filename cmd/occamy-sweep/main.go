// occamy-sweep explores the α design space analytically and empirically:
// Eq. 2 buffer reservations, the Eq. 4 fairness bound, and the measured
// maximum lossless burst per (policy, α) in the Fig 12 scenario.
//
// Usage:
//
//	occamy-sweep [-maxalpha 16] [-queues 1]
package main

import (
	"flag"
	"fmt"

	"occamy/internal/bm"
	"occamy/internal/core"
	"occamy/internal/experiments"
)

func main() {
	maxAlpha := flag.Float64("maxalpha", 16, "largest alpha to sweep (powers of two)")
	n := flag.Int("queues", 1, "congested queues for the Eq.2 reservation")
	jobs := flag.Int("j", 0, "concurrent simulations for the measured sweep (0 = GOMAXPROCS)")
	flag.Parse()
	experiments.SetParallelism(*jobs)

	fmt.Println("Eq.2 steady-state free-buffer reservation F/B = 1/(1+alpha*n)")
	fmt.Printf("%-8s %-14s %-18s\n", "alpha", "reserved", "one-queue occupancy")
	for a := 0.25; a <= *maxAlpha; a *= 2 {
		fr := bm.ReservedFraction(a, *n)
		occ := bm.SteadyStateQueueLen(a, *n, 1_000_000)
		fmt.Printf("%-8g %-14.4f %.1f%%\n", a, fr, float64(occ)/1e6*100)
	}

	fmt.Println("\nEq.4 fairness bound: largest (R/V-1)*M - N that 1/alpha must cover")
	fmt.Printf("%-10s %-10s %-10s\n", "R/V", "bound", "any alpha fair?")
	for _, rv := range []float64{1.0, 1.5, 2.0, 3.0, 4.0} {
		b := bm.FairExpulsionAlphaBound(rv, 1, 1, 1)
		fmt.Printf("%-10.1f %-10.2f %v\n", rv, b, b <= 0)
	}

	fmt.Println("\nmeasured maximum lossless burst (Fig 12 scenario, 1.2MB buffer)")
	fmt.Printf("%-8s %-12s %-12s\n", "alpha", "occamy_KB", "dt_KB")
	var alphas []float64
	for a := 1.0; a <= *maxAlpha && a <= 8; a *= 2 {
		alphas = append(alphas, a)
	}
	// Each alpha point runs two independent bisection sweeps; fan the
	// points across the worker pool with deterministic output order.
	rows := experiments.RunGrid(alphas, func(a float64) [2]int64 {
		return [2]int64{
			experiments.MaxLosslessBurst(experiments.OccamySpec(a, core.RoundRobin), 100_000, 900_000, 50_000),
			experiments.MaxLosslessBurst(experiments.DTSpec(a), 100_000, 900_000, 50_000),
		}
	})
	for i, a := range alphas {
		fmt.Printf("%-8g %-12d %-12d\n", a, rows[i][0]/1000, rows[i][1]/1000)
	}
}
