// occamy-sweep explores the α design space analytically and empirically:
// Eq. 2 buffer reservations, the Eq. 4 fairness bound, and the measured
// maximum lossless burst per (policy, α) in the Fig 12 scenario.
//
// Usage:
//
//	occamy-sweep [-maxalpha 16] [-queues 1]
package main

import (
	"flag"
	"fmt"

	"occamy/internal/bm"
	"occamy/internal/core"
	"occamy/internal/experiments"
)

func main() {
	maxAlpha := flag.Float64("maxalpha", 16, "largest alpha to sweep (powers of two)")
	n := flag.Int("queues", 1, "congested queues for the Eq.2 reservation")
	flag.Parse()

	fmt.Println("Eq.2 steady-state free-buffer reservation F/B = 1/(1+alpha*n)")
	fmt.Printf("%-8s %-14s %-18s\n", "alpha", "reserved", "one-queue occupancy")
	for a := 0.25; a <= *maxAlpha; a *= 2 {
		fr := bm.ReservedFraction(a, *n)
		occ := bm.SteadyStateQueueLen(a, *n, 1_000_000)
		fmt.Printf("%-8g %-14.4f %.1f%%\n", a, fr, float64(occ)/1e6*100)
	}

	fmt.Println("\nEq.4 fairness bound: largest (R/V-1)*M - N that 1/alpha must cover")
	fmt.Printf("%-10s %-10s %-10s\n", "R/V", "bound", "any alpha fair?")
	for _, rv := range []float64{1.0, 1.5, 2.0, 3.0, 4.0} {
		b := bm.FairExpulsionAlphaBound(rv, 1, 1, 1)
		fmt.Printf("%-10.1f %-10.2f %v\n", rv, b, b <= 0)
	}

	fmt.Println("\nmeasured maximum lossless burst (Fig 12 scenario, 1.2MB buffer)")
	fmt.Printf("%-8s %-12s %-12s\n", "alpha", "occamy_KB", "dt_KB")
	for a := 1.0; a <= *maxAlpha && a <= 8; a *= 2 {
		occ := experiments.MaxLosslessBurst(experiments.OccamySpec(a, core.RoundRobin), 100_000, 900_000, 50_000)
		dt := experiments.MaxLosslessBurst(experiments.DTSpec(a), 100_000, 900_000, 50_000)
		fmt.Printf("%-8g %-12d %-12d\n", a, occ/1000, dt/1000)
	}
}
