// occamy-served serves the scenario catalog over HTTP: submit any
// strict-JSON spec (the same files occamy-scenario export/run use),
// poll the job, fetch the canonical JSON result document or the
// occupancy trace CSV. Runs are memoized in a content-addressed cache —
// resubmitting a spec that has already been simulated (by anyone, at
// any time if -cache-dir persists) answers without re-simulating.
//
// Usage:
//
//	occamy-served [-addr :8080] [-workers N] [-cache-mb 256] [-cache-dir DIR]
//
//	curl localhost:8080/v1/scenarios
//	curl -X POST 'localhost:8080/v1/runs?name=incast-storm-256&scale=quick'
//	curl localhost:8080/v1/runs/r1
//	curl localhost:8080/v1/runs/r1/trace.csv?stride=4
//	occamy-scenario export mixed-load-90 > spec.json
//	curl -X POST --data-binary @spec.json localhost:8080/v1/runs
//	curl -X POST -d '{"name":"burst-absorb","axes":["policy.kind=dt,occamy"]}' \
//	    localhost:8080/v1/sweeps
//
// See SERVICE.md for the endpoint and result-document reference.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"occamy/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "simulation worker-pool size (0 = GOMAXPROCS)")
	cacheMB := flag.Int64("cache-mb", 256, "result-cache memory budget in MB")
	cacheDir := flag.String("cache-dir", "", "persist cached results to this directory (empty = memory only)")
	queueDepth := flag.Int("queue", 0, "maximum queued jobs (0 = 1024)")
	maxJobs := flag.Int("max-jobs", 0, "job-ledger bound; oldest finished jobs expire past it (0 = 4096)")
	flag.Parse()

	svc, err := service.New(service.Config{
		Workers:    *workers,
		QueueDepth: *queueDepth,
		MaxJobs:    *maxJobs,
		CacheBytes: *cacheMB << 20,
		CacheDir:   *cacheDir,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer svc.Close()

	log.Printf("occamy-served listening on %s (workers=%d, cache=%dMB, dir=%q)",
		*addr, *workers, *cacheMB, *cacheDir)
	if err := http.ListenAndServe(*addr, svc.Handler()); err != nil {
		log.Fatal(err)
	}
}
