// occamy-served serves the scenario catalog over HTTP: submit any
// strict-JSON spec (the same files occamy-scenario export/run use),
// poll the job, fetch the canonical JSON result document or the
// occupancy trace CSV. Runs are memoized in a content-addressed cache —
// resubmitting a spec that has already been simulated (by anyone, at
// any time if -cache-dir persists) answers without re-simulating.
//
// Usage:
//
//	occamy-served [-addr :8080] [-workers N] [-cache-mb 256] [-cache-dir DIR]
//
//	curl localhost:8080/v1/scenarios
//	curl -X POST 'localhost:8080/v1/runs?name=incast-storm-256&scale=quick'
//	curl localhost:8080/v1/runs/r1
//	curl localhost:8080/v1/runs/r1/trace.csv?stride=4
//	curl localhost:8080/v1/stats
//	occamy-scenario export mixed-load-90 > spec.json
//	curl -X POST --data-binary @spec.json localhost:8080/v1/runs
//	curl -X POST -d '{"name":"burst-absorb","axes":["policy.kind=dt,occamy"]}' \
//	    localhost:8080/v1/sweeps
//
// SIGINT/SIGTERM shut the server down gracefully: the listener stops
// accepting, in-flight HTTP requests drain, and Service.Close resolves
// every job (running simulations are canceled at their next engine
// chunk; nothing is orphaned mid-write to the persistent cache).
//
// See SERVICE.md for the endpoint and result-document reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"occamy/internal/obs"
	"occamy/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "simulation worker-pool size (0 = GOMAXPROCS)")
	cacheMB := flag.Int64("cache-mb", 256, "result-cache memory budget in MB")
	cacheDir := flag.String("cache-dir", "", "persist cached results to this directory (empty = memory only)")
	queueDepth := flag.Int("queue", 0, "maximum queued jobs (0 = 1024)")
	maxJobs := flag.Int("max-jobs", 0, "job-ledger bound; oldest finished jobs expire past it (0 = 4096)")
	maxSweep := flag.Int("max-sweep-points", 0, "maximum expanded grid points per sweep request (0 = 256)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight HTTP requests")
	logLevel := flag.String("log-level", "", "structured JSON logs on stderr at this level (debug, info, warn, error; empty = off)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = off)")
	flag.Parse()

	logger, err := obs.NewLogger(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "occamy-served:", err)
		os.Exit(2)
	}
	obs.StartPprof(*pprofAddr)

	if err := run(*addr, service.Config{
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		MaxJobs:        *maxJobs,
		MaxSweepPoints: *maxSweep,
		CacheBytes:     *cacheMB << 20,
		CacheDir:       *cacheDir,
		Logger:         logger,
	}, *drain); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run owns the server lifecycle so every shutdown path — signal or
// listener error — goes through http.Server.Shutdown and Service.Close
// in order. log.Fatal is deliberately absent: it would skip both,
// killing running jobs mid-simulation and losing cache write-through.
func run(addr string, cfg service.Config, drain time.Duration) error {
	svc, err := service.New(cfg)
	if err != nil {
		return err
	}
	defer svc.Close()

	// Register the signal handler before the listener opens: a SIGTERM
	// arriving the instant the port is up must already be ours.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	srv := &http.Server{Addr: addr, Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() {
		log.Printf("occamy-served listening on %s (workers=%d, cache=%dMB, dir=%q)",
			addr, cfg.Workers, cfg.CacheBytes>>20, cfg.CacheDir)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err // ListenAndServe never returns nil
	case <-ctx.Done():
	}

	log.Printf("occamy-served: shutting down (draining HTTP for up to %v)", drain)
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		// Stragglers past the budget are closed hard; the job ledger is
		// still resolved cleanly by svc.Close below.
		log.Printf("occamy-served: HTTP drain: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	svc.Close() // idempotent with the defer; cancels + drains all jobs
	log.Printf("occamy-served: all jobs resolved, bye")
	return nil
}
