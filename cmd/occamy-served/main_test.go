package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"occamy/internal/service"
)

// freeAddr reserves a loopback port for the server under test.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestRunShutsDownGracefully drives the real server lifecycle: start,
// load it with a long-running and a queued job, SIGTERM the process,
// and require run() to return cleanly — which it only does after
// http.Server.Shutdown has drained and Service.Close has resolved every
// job (done or canceled, never orphaned mid-simulation).
func TestRunShutsDownGracefully(t *testing.T) {
	addr := freeAddr(t)
	base := "http://" + addr
	done := make(chan error, 1)
	go func() { done <- run(addr, service.Config{Workers: 1}, 10*time.Second) }()

	// Wait for the listener.
	ready := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if resp, err := http.Get(base + "/v1/scenarios"); err == nil {
			resp.Body.Close()
			ready = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !ready {
		t.Fatal("server never came up")
	}

	// One job long enough to still be running at shutdown, one queued
	// behind it on the single worker.
	var running, queued struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	submit := func(path string, v any) {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST %s: status %d", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	submit("/v1/runs?name=incast-storm-256&scale=paper", &running)
	submit("/v1/runs?name=quickstart&scale=quick", &queued)

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run() returned %v after SIGTERM, want clean shutdown", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("run() did not return after SIGTERM")
	}

	// The listener is down: the graceful path really stopped accepting.
	if _, err := http.Get(fmt.Sprintf("%s/v1/runs/%s", base, running.ID)); err == nil {
		t.Fatal("server still serving after shutdown")
	}
	_ = queued // both jobs' resolution is implied by run() returning: Close waits on the workers
}
