// Command occamy-vet runs the occamy-specific static analyzers (and,
// by default, stock `go vet`) over the module, plus an escape-analysis
// budget gate for the hot-path datapaths. It exits non-zero if any
// diagnostic or budget violation is found, so CI can gate on it.
//
// Usage:
//
//	go run ./cmd/occamy-vet [flags] [packages]
//
//	occamy-vet                  # go vet + custom analyzers over ./...
//	occamy-vet -novet           # custom analyzers only
//	occamy-vet -escapes         # escape-budget gate only
//	occamy-vet -update-escapes  # rewrite budget counts in escapes.txt
//	occamy-vet -list            # describe the custom analyzers
//
// See LINT.md for the invariants each analyzer enforces and the
// //occamy:ordered suppression directive.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"occamy/internal/lint"
)

func main() {
	var (
		escapes       = flag.Bool("escapes", false, "run only the escape-analysis budget gate")
		updateEscapes = flag.Bool("update-escapes", false, "rewrite the budget counts in -allow from the current build, then exit")
		allow         = flag.String("allow", "internal/lint/escapes.txt", "escape budget file, relative to -C")
		novet         = flag.Bool("novet", false, "skip the stock `go vet` pass")
		list          = flag.Bool("list", false, "describe the custom analyzers and exit")
		moduleDir     = flag.String("C", ".", "module root to analyze")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, strings.ReplaceAll(strings.TrimSpace(a.Doc), "\n", "\n             "))
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *escapes || *updateEscapes {
		os.Exit(runEscapeGate(*moduleDir, *allow, patterns, *updateEscapes))
	}
	os.Exit(runAnalyzers(*moduleDir, patterns, !*novet))
}

func runAnalyzers(moduleDir string, patterns []string, stockVet bool) int {
	exit := 0
	if stockVet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Dir = moduleDir
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			exit = 1
		}
	}

	pkgs, err := lint.Load(moduleDir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "occamy-vet:", err)
		return 2
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "occamy-vet: %s: %v\n", pkg.ImportPath, terr)
			exit = 1
		}
	}
	diags, err := lint.RunAnalyzers(pkgs, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "occamy-vet:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d)
		exit = 1
	}
	return exit
}

func runEscapeGate(moduleDir, allowPath string, patterns []string, update bool) int {
	escapes, err := lint.CollectEscapes(moduleDir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "occamy-vet:", err)
		return 2
	}
	allowFile := allowPath
	if !strings.HasPrefix(allowFile, "/") {
		allowFile = moduleDir + "/" + allowFile
	}
	if update {
		if err := lint.UpdateEscapeBudgets(allowFile, escapes); err != nil {
			fmt.Fprintln(os.Stderr, "occamy-vet:", err)
			return 2
		}
		fmt.Printf("occamy-vet: rewrote budgets in %s from %d escape diagnostics\n", allowPath, len(escapes))
		return 0
	}
	f, err := os.Open(allowFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "occamy-vet:", err)
		return 2
	}
	defer f.Close()
	budgets, err := lint.ParseEscapeBudgets(f, allowPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "occamy-vet:", err)
		return 2
	}
	violations, err := lint.CheckEscapeBudgets(moduleDir, budgets, escapes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "occamy-vet:", err)
		return 2
	}
	for _, v := range violations {
		fmt.Println("occamy-vet: escape budget:", v)
	}
	if len(violations) > 0 {
		return 1
	}
	fmt.Printf("occamy-vet: %d hot-path escape budgets hold (%d escape diagnostics module-wide)\n", len(budgets), len(escapes))
	return 0
}
