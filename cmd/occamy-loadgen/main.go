// occamy-loadgen replays a synthetic user population against one or
// more occamy-served instances and reports client-side SLOs
// (submit-to-done p50/p99/p999, throughput, cache hit ratio, refusal
// rate) next to each server's own GET /v1/stats view.
//
// The schedule is fully deterministic under -seed: arrivals (poisson or
// uniform), zipf-ranked scenario choices, scale mix, seeded spec
// mutations, and sweep bursts are all drawn from one seeded RNG before
// the first request fires.
//
// Usage:
//
//	occamy-loadgen [-targets http://localhost:8080] [-route rr|hash] \
//	    [-n 300] [-rate 50] [-process poisson] [-seed 1] \
//	    [-concurrency 32] [-zipf 1.3] [-scenarios a,b,c] \
//	    [-scales quick=0.95,full=0.05] [-mutate-every 7] \
//	    [-sweep-every 0] [-report FILE]
//
// -route=hash places each request on the consistent-hash home shard of
// its fingerprint (the same ring occamy-router uses), so driving N
// workers directly reproduces a fronting router's placement; the report
// then carries a per-target breakdown of the shard skew.
//
// Threshold flags turn the run into a gate (exit 1 on violation):
//
//	occamy-loadgen -n 300 -max-p99 30s -min-hit-ratio 0.05 -max-refusal-rate 0
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"occamy/internal/loadgen"
	"occamy/internal/scenario"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "occamy-loadgen:", err)
		os.Exit(1)
	}
}

func run(argv []string) error {
	fs := flag.NewFlagSet("occamy-loadgen", flag.ExitOnError)
	targets := fs.String("targets", "http://localhost:8080", "comma-separated occamy-served base URLs")
	route := fs.String("route", "rr", "target placement: rr (round-robin) | hash (consistent hash by spec fingerprint, the occamy-router ring)")
	n := fs.Int("n", 300, "total requests to schedule")
	rate := fs.Float64("rate", 50, "arrival rate, requests/second")
	process := fs.String("process", "poisson", "arrival process: poisson|uniform")
	seed := fs.Uint64("seed", 1, "schedule seed (same seed = same schedule)")
	concurrency := fs.Int("concurrency", 32, "client pool: max in-flight requests")
	zipfS := fs.Float64("zipf", 1.3, "zipf skew over the scenario catalog (>1)")
	scenarios := fs.String("scenarios", "", "comma-separated scenario names (empty = all exportable; first = hottest)")
	scales := fs.String("scales", "quick=1", "scale mix as weights, e.g. quick=0.95,full=0.05")
	mutateEvery := fs.Int("mutate-every", 7, "perturb the spec seed of every Nth request (0 = never)")
	sweepEvery := fs.Int("sweep-every", 0, "turn every Nth request into a sweep burst (0 = never)")
	poll := fs.Duration("poll", 5*time.Millisecond, "job status poll interval")
	timeout := fs.Duration("timeout", 120*time.Second, "per-request submit-to-done timeout")
	reportFile := fs.String("report", "", "also write the report as JSON to this file")
	maxP99 := fs.Duration("max-p99", 0, "fail if client p99 latency exceeds this (0 = unchecked)")
	minHitRatio := fs.Float64("min-hit-ratio", -1, "fail if cache hit ratio is below this (<0 = unchecked)")
	maxRefusalRate := fs.Float64("max-refusal-rate", -1, "fail if refusal rate exceeds this (<0 = unchecked)")
	maxErrors := fs.Int("max-errors", 0, "fail if request errors exceed this (<0 = unchecked)")
	if err := fs.Parse(argv); err != nil {
		return err
	}

	mix, err := parseScaleMix(*scales)
	if err != nil {
		return err
	}
	cfg := loadgen.Config{
		Targets:      splitNonEmpty(*targets),
		Route:        *route,
		Requests:     *n,
		Rate:         *rate,
		Process:      *process,
		Seed:         *seed,
		Concurrency:  *concurrency,
		ZipfS:        *zipfS,
		Scenarios:    splitNonEmpty(*scenarios),
		ScaleMix:     mix,
		MutateEvery:  *mutateEvery,
		SweepEvery:   *sweepEvery,
		PollInterval: *poll,
		JobTimeout:   *timeout,
	}

	sched, err := loadgen.BuildSchedule(cfg)
	if err != nil {
		return err
	}
	last := sched[len(sched)-1]
	fmt.Fprintf(os.Stderr, "occamy-loadgen: %d requests over ~%.1fs against %s (seed=%d)\n",
		len(sched), last.At.Seconds(), strings.Join(cfg.Targets, ", "), cfg.Seed)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	rep, err := loadgen.Run(ctx, cfg, sched)
	if err != nil {
		return err
	}

	fmt.Print(rep.Render())
	if *reportFile != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*reportFile, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "occamy-loadgen: report written to %s\n", *reportFile)
	}

	violations := rep.Check(loadgen.Thresholds{
		MaxP99:         *maxP99,
		MinHitRatio:    *minHitRatio,
		MaxRefusalRate: *maxRefusalRate,
		MaxErrors:      *maxErrors,
	})
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "occamy-loadgen: threshold violated:", v)
	}
	if len(violations) > 0 {
		return fmt.Errorf("%d threshold(s) violated", len(violations))
	}
	return nil
}

// parseScaleMix parses "quick=0.95,full=0.05" (bare names weigh 1).
func parseScaleMix(s string) (map[scenario.Scale]float64, error) {
	mix := make(map[scenario.Scale]float64)
	for _, part := range splitNonEmpty(s) {
		name, weightStr, hasWeight := strings.Cut(part, "=")
		scale, err := scenario.ParseScale(name)
		if err != nil {
			return nil, err
		}
		w := 1.0
		if hasWeight {
			w, err = strconv.ParseFloat(weightStr, 64)
			if err != nil || w < 0 {
				return nil, fmt.Errorf("bad scale weight %q", part)
			}
		}
		mix[scale] = w
	}
	return mix, nil
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
