// occamy-sim regenerates any table or figure of the paper.
//
// Usage:
//
//	occamy-sim -fig fig12                 # one experiment, quick scale
//	occamy-sim -fig all -scale medium     # everything, medium scale
//	occamy-sim -fig fig17 -scale paper    # §6.4 at full 128-host scale (slow)
//	occamy-sim -fig fig23 -j 8            # cap the sweep at 8 concurrent sims
//
// Scales: quick (test-sized, seconds), medium (a few minutes), paper
// (the paper's dimensions; the leaf-spine runs take a long time).
//
// Sweep points within a figure run concurrently (-j, default
// GOMAXPROCS); tables are byte-identical at any -j.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"occamy/internal/experiments"
	"occamy/internal/sim"
)

func scales(name string) (experiments.DPDKScale, experiments.FabricScale, int) {
	switch name {
	case "quick":
		return experiments.QuickDPDK(), experiments.QuickFabric(), 8
	case "medium":
		d := experiments.QuickDPDK()
		d.Hosts, d.Queries = 8, 30
		d.SizeFracs = []float64{0.2, 0.6, 1.0, 1.4}
		d.Loads = []float64{0.1, 0.3, 0.5}
		d.Alphas = []float64{0.5, 1, 2, 4, 8}
		f := experiments.QuickFabric()
		f.Queries = 25
		f.SizeFracs = []float64{0.2, 0.4, 0.6, 0.8, 1.0}
		f.FlowSizes = []int64{16_000, 64_000, 256_000, 1_000_000, 2_000_000}
		f.QueryLoads = []float64{0.1, 0.2, 0.4, 0.6, 0.8}
		f.BufferFactors = []float64{3.44, 5.12, 8.0, 9.6}
		return d, f, 20
	case "paper":
		return experiments.PaperDPDK(), experiments.PaperFabric(), 60
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (quick|medium|paper)\n", name)
		os.Exit(2)
	}
	panic("unreachable")
}

func main() {
	fig := flag.String("fig", "all", "which experiment: table1, fig3, fig6, fig7, fig11, fig12, fig13..fig23, or all")
	scale := flag.String("scale", "quick", "quick | medium | paper")
	jobs := flag.Int("j", 0, "concurrent simulations per sweep (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	experiments.SetParallelism(*jobs)
	d, f, queries := scales(*scale)
	runners := map[string]func() []*experiments.Table{
		"table1": func() []*experiments.Table {
			return []*experiments.Table{experiments.Table1HardwareCost(64, 20)}
		},
		"fig3": func() []*experiments.Table {
			return []*experiments.Table{experiments.Fig3DTBehavior()}
		},
		"fig6": func() []*experiments.Table {
			return []*experiments.Table{experiments.Fig6Anomalies(queries, nil)}
		},
		"fig7": func() []*experiments.Table {
			a, b := experiments.Fig7Utilization(f)
			return []*experiments.Table{a, b}
		},
		"fig11": func() []*experiments.Table {
			return experiments.Fig11QueueEvolution(25 * sim.Microsecond)
		},
		"fig12": func() []*experiments.Table {
			return []*experiments.Table{experiments.Fig12BurstAbsorption()}
		},
		"fig13": func() []*experiments.Table {
			return []*experiments.Table{experiments.Fig13SoftwareSwitch(d)}
		},
		"fig14": func() []*experiments.Table {
			return []*experiments.Table{experiments.Fig14Isolation(d)}
		},
		"fig15": func() []*experiments.Table {
			return []*experiments.Table{experiments.Fig15BufferChoking(d)}
		},
		"fig16": func() []*experiments.Table {
			return []*experiments.Table{experiments.Fig16AlphaImpact(d)}
		},
		"fig17": func() []*experiments.Table {
			return []*experiments.Table{experiments.Fig17LargeScale(f)}
		},
		"fig18": func() []*experiments.Table {
			return []*experiments.Table{experiments.Fig18AllToAll(f)}
		},
		"fig19": func() []*experiments.Table {
			return []*experiments.Table{experiments.Fig19AllReduce(f)}
		},
		"fig20": func() []*experiments.Table {
			return []*experiments.Table{experiments.Fig20QueryLoad(f)}
		},
		"fig21": func() []*experiments.Table {
			return []*experiments.Table{experiments.Fig21RoundRobinDrop(f)}
		},
		"fig22": func() []*experiments.Table {
			return []*experiments.Table{experiments.Fig22HeavyLoad(f)}
		},
		"fig23": func() []*experiments.Table {
			return []*experiments.Table{experiments.Fig23BufferSize(f)}
		},
		"extras": func() []*experiments.Table {
			return []*experiments.Table{experiments.ExtrasBakeoff(d)}
		},
	}

	var names []string
	if *fig == "all" {
		for k := range runners {
			names = append(names, k)
		}
		sort.Strings(names)
	} else if _, ok := runners[*fig]; ok {
		names = []string{*fig}
	} else {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *fig)
		os.Exit(2)
	}

	for _, n := range names {
		start := time.Now()
		for _, tab := range runners[n]() {
			tab.Fprint(os.Stdout)
			fmt.Println()
		}
		if n == "fig11" {
			// The queue-evolution figure is a plot; render it as one.
			fmt.Println(experiments.Fig11Sparklines(5*sim.Microsecond, 72))
		}
		fmt.Printf("(%s took %v)\n\n", n, time.Since(start).Round(time.Millisecond))
	}
}
