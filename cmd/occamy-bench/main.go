// occamy-bench snapshots the benchmark suite to a JSON file so the
// repository's performance trajectory is recorded PR over PR.
//
// It shells out to `go test -bench` (so results match what a developer
// sees), parses the standard benchmark output lines, and writes
// BENCH_<date>.json containing every metric each benchmark reported
// (ns/op, B/op, allocs/op, events/sec, ...).
//
// It can also gate on an earlier snapshot: -against diffs the fresh
// ns/op numbers benchmark-by-benchmark against a committed baseline
// file and exits non-zero when any common benchmark regressed by more
// than -tol (CI runs the long macro benchmarks this way; at -benchtime
// 1x their ns/op is a real multi-hundred-millisecond measurement, while
// micro benchmarks need a real -benchtime to be comparable).
//
// With -history it does not benchmark at all: it loads every committed
// snapshot matching a glob and renders the ns/op and events/sec
// trajectory of each benchmark across them as a sparkline table — the
// repository's performance history at a glance.
//
// Usage:
//
//	occamy-bench                          # full suite, 1x iterations, BENCH_<today>.json
//	occamy-bench -bench 'Engine|Switch'   # only the core micro-benchmarks
//	occamy-bench -benchtime 2s -o out.json
//	occamy-bench -bench Fig -against BENCH_2026-07-30.json -tol 0.20
//	occamy-bench -history 'BENCH_*.json'  # trajectory across snapshots
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"occamy/internal/trace"
)

// Result is one benchmark's parsed output line.
type Result struct {
	Name       string             `json:"name"`
	Package    string             `json:"package"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Snapshot is the file format.
type Snapshot struct {
	Date      string   `json:"date"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Bench     string   `json:"bench_pattern"`
	BenchTime string   `json:"benchtime"`
	Packages  []string `json:"packages"`
	Results   []Result `json:"results"`
}

func main() {
	bench := flag.String("bench", ".", "benchmark pattern passed to go test -bench")
	benchtime := flag.String("benchtime", "1x", "go test -benchtime value (1x = one iteration smoke)")
	out := flag.String("o", "", "output file (default BENCH_<date>.json)")
	pkgs := flag.String("pkgs", "./...", "packages to benchmark (comma-separated)")
	count := flag.Int("count", 1, "go test -count: repetitions per benchmark; the snapshot keeps each benchmark's best (min ns/op) run")
	against := flag.String("against", "", "baseline snapshot to diff ns/op against; exit non-zero on regression")
	tol := flag.Float64("tol", 0.20, "allowed fractional ns/op regression vs -against (0.20 = +20%)")
	historyGlob := flag.String("history", "", "snapshot glob (e.g. 'BENCH_*.json'): render the ns/op + events/sec trajectory across them instead of benchmarking")
	flag.Parse()

	if *historyGlob != "" {
		if !history(*historyGlob) {
			os.Exit(1)
		}
		return
	}

	pkgList := strings.Split(*pkgs, ",")
	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem",
		"-benchtime", *benchtime, "-count", strconv.Itoa(*count)}
	args = append(args, pkgList...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	var buf bytes.Buffer
	cmd.Stdout = &buf
	fmt.Fprintf(os.Stderr, "running: go %s\n", strings.Join(args, " "))
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "occamy-bench: go test failed: %v\n", err)
		os.Exit(1)
	}

	snap := Snapshot{
		Date:      time.Now().UTC().Format("2006-01-02T15:04:05Z"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Bench:     *bench,
		BenchTime: *benchtime,
		Packages:  pkgList,
	}

	pkg := ""
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		// `ok  	occamy/internal/sim	2.608s` trails each package; `pkg:`
		// lines lead them in verbose mode. Track whichever appears.
		if strings.HasPrefix(line, "pkg: ") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		}
		if r, ok := parseBenchLine(line); ok {
			r.Package = pkg
			snap.Results = mergeResult(snap.Results, r)
		}
	}

	name := *out
	if name == "" {
		name = "BENCH_" + time.Now().UTC().Format("2006-01-02") + ".json"
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "occamy-bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(name, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "occamy-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d benchmark results to %s\n", len(snap.Results), name)

	if *against != "" {
		if !compare(snap, *against, *tol) {
			os.Exit(2)
		}
	}
}

// key identifies a benchmark across snapshots. The package field is
// empty in non-verbose runs, so the name (unique across this repo's
// suite) is the join key.
func key(r Result) string { return r.Name }

// mergeResult folds -count repetitions into one entry per benchmark,
// keeping the fastest run: timing noise is strictly additive, so the
// minimum ns/op is the most reproducible estimator across machines.
func mergeResult(results []Result, r Result) []Result {
	for i := range results {
		if key(results[i]) != key(r) {
			continue
		}
		if r.Metrics["ns/op"] < results[i].Metrics["ns/op"] {
			results[i] = r
		}
		return results
	}
	return append(results, r)
}

// compare diffs ns/op against a baseline snapshot and reports whether
// every common benchmark stayed within the regression tolerance.
func compare(snap Snapshot, baselinePath string, tol float64) bool {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "occamy-bench: reading baseline: %v\n", err)
		return false
	}
	var base Snapshot
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "occamy-bench: parsing baseline %s: %v\n", baselinePath, err)
		return false
	}
	old := make(map[string]float64, len(base.Results))
	for _, r := range base.Results {
		if ns, ok := r.Metrics["ns/op"]; ok && ns > 0 {
			old[key(r)] = ns
		}
	}
	fmt.Printf("\nns/op vs %s (%s), tolerance +%.0f%%:\n", baselinePath, base.Date, tol*100)
	var regressed []string
	common := 0
	for _, r := range snap.Results {
		ns, ok := r.Metrics["ns/op"]
		oldNS, okOld := old[key(r)]
		if !ok || !okOld || ns <= 0 {
			continue
		}
		common++
		delta := ns/oldNS - 1
		status := "ok"
		if delta > tol {
			status = "REGRESSED"
			regressed = append(regressed, r.Name)
		}
		fmt.Printf("  %-44s %14.0f -> %14.0f  %+6.1f%%  %s\n", r.Name, oldNS, ns, delta*100, status)
	}
	if common == 0 {
		fmt.Fprintf(os.Stderr, "occamy-bench: no common benchmarks between this run and %s\n", baselinePath)
		return false
	}
	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "occamy-bench: %d benchmark(s) regressed more than %.0f%%: %s\n",
			len(regressed), tol*100, strings.Join(regressed, ", "))
		return false
	}
	fmt.Printf("all %d common benchmarks within tolerance\n", common)
	return true
}

// history loads every snapshot matching the glob, orders them by their
// recorded date (filename breaking ties), and renders each benchmark's
// ns/op and events/sec trajectory across them as sparkline rows.
func history(pattern string) bool {
	paths, err := filepath.Glob(pattern)
	if err != nil {
		fmt.Fprintf(os.Stderr, "occamy-bench: bad -history glob: %v\n", err)
		return false
	}
	if len(paths) == 0 {
		fmt.Fprintf(os.Stderr, "occamy-bench: no snapshots match %q\n", pattern)
		return false
	}
	type snapFile struct {
		path string
		snap Snapshot
	}
	snaps := make([]snapFile, 0, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "occamy-bench: %v\n", err)
			return false
		}
		var s Snapshot
		if err := json.Unmarshal(data, &s); err != nil {
			fmt.Fprintf(os.Stderr, "occamy-bench: parsing %s: %v\n", p, err)
			return false
		}
		snaps = append(snaps, snapFile{p, s})
	}
	sort.Slice(snaps, func(i, j int) bool {
		if snaps[i].snap.Date != snaps[j].snap.Date {
			return snaps[i].snap.Date < snaps[j].snap.Date
		}
		return snaps[i].path < snaps[j].path
	})

	fmt.Printf("bench trajectory across %d snapshots:\n", len(snaps))
	for i, sf := range snaps {
		fmt.Printf("  [%d] %-28s %s  %s %s/%s  %d cpu  -bench %q -benchtime %s\n",
			i, sf.path, sf.snap.Date, sf.snap.GoVersion, sf.snap.GOOS, sf.snap.GOARCH,
			sf.snap.NumCPU, sf.snap.Bench, sf.snap.BenchTime)
	}
	fmt.Println()

	// Union of benchmark names, sorted; each row charts the snapshots
	// that measured it (gaps are simply skipped).
	nameSet := map[string]bool{}
	nameW := len("benchmark")
	for _, sf := range snaps {
		for _, r := range sf.snap.Results {
			if !nameSet[r.Name] {
				nameSet[r.Name] = true
				if len(r.Name) > nameW {
					nameW = len(r.Name)
				}
			}
		}
	}
	names := make([]string, 0, len(nameSet))
	for n := range nameSet {
		names = append(names, n)
	}
	sort.Strings(names)

	metricRow := func(name, metric string) (vals []float64, ok bool) {
		for _, sf := range snaps {
			for _, r := range sf.snap.Results {
				if r.Name != name {
					continue
				}
				if v, has := r.Metrics[metric]; has && v > 0 {
					vals = append(vals, v)
				}
				break
			}
		}
		return vals, len(vals) > 0
	}
	span := func(vals []float64) string {
		first, last := vals[0], vals[len(vals)-1]
		return fmt.Sprintf("%12.4g -> %12.4g  %+6.1f%%", first, last, (last/first-1)*100)
	}

	sparkW := len(snaps)
	if sparkW < 8 {
		sparkW = 8 // pad short histories so the columns line up
	}
	fmt.Printf("%-*s  %-*s %-38s  %-*s %s\n", nameW, "benchmark",
		sparkW, "ns/op", "first -> last      delta", sparkW, "ev/s", "first -> last      delta")
	for _, name := range names {
		fmt.Printf("%-*s  ", nameW, name)
		if ns, ok := metricRow(name, "ns/op"); ok {
			fmt.Printf("%-*s %-38s", sparkW, trace.Sparkline(ns, sparkW), span(ns))
		} else {
			fmt.Printf("%-*s %-38s", sparkW, "-", "-")
		}
		if ev, ok := metricRow(name, "events/sec"); ok {
			fmt.Printf("  %-*s %s", sparkW, trace.Sparkline(ev, sparkW), span(ev))
		} else {
			fmt.Printf("  %-*s %s", sparkW, "-", "-")
		}
		fmt.Println()
	}
	return true
}

// parseBenchLine parses `BenchmarkX-8  100  123 ns/op  4 B/op  1 allocs/op
// 5e6 events/sec` into a Result. Metric fields come in value-unit pairs.
func parseBenchLine(line string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, len(r.Metrics) > 0
}
