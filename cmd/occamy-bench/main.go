// occamy-bench snapshots the benchmark suite to a JSON file so the
// repository's performance trajectory is recorded PR over PR.
//
// It shells out to `go test -bench` (so results match what a developer
// sees), parses the standard benchmark output lines, and writes
// BENCH_<date>.json containing every metric each benchmark reported
// (ns/op, B/op, allocs/op, events/sec, ...).
//
// Usage:
//
//	occamy-bench                          # full suite, 1x iterations, BENCH_<today>.json
//	occamy-bench -bench 'Engine|Switch'   # only the core micro-benchmarks
//	occamy-bench -benchtime 2s -o out.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's parsed output line.
type Result struct {
	Name       string             `json:"name"`
	Package    string             `json:"package"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Snapshot is the file format.
type Snapshot struct {
	Date      string   `json:"date"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Bench     string   `json:"bench_pattern"`
	BenchTime string   `json:"benchtime"`
	Packages  []string `json:"packages"`
	Results   []Result `json:"results"`
}

func main() {
	bench := flag.String("bench", ".", "benchmark pattern passed to go test -bench")
	benchtime := flag.String("benchtime", "1x", "go test -benchtime value (1x = one iteration smoke)")
	out := flag.String("o", "", "output file (default BENCH_<date>.json)")
	pkgs := flag.String("pkgs", "./...", "packages to benchmark (comma-separated)")
	flag.Parse()

	pkgList := strings.Split(*pkgs, ",")
	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem", "-benchtime", *benchtime}
	args = append(args, pkgList...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	var buf bytes.Buffer
	cmd.Stdout = &buf
	fmt.Fprintf(os.Stderr, "running: go %s\n", strings.Join(args, " "))
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "occamy-bench: go test failed: %v\n", err)
		os.Exit(1)
	}

	snap := Snapshot{
		Date:      time.Now().UTC().Format("2006-01-02T15:04:05Z"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Bench:     *bench,
		BenchTime: *benchtime,
		Packages:  pkgList,
	}

	pkg := ""
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		// `ok  	occamy/internal/sim	2.608s` trails each package; `pkg:`
		// lines lead them in verbose mode. Track whichever appears.
		if strings.HasPrefix(line, "pkg: ") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		}
		if r, ok := parseBenchLine(line); ok {
			r.Package = pkg
			snap.Results = append(snap.Results, r)
		}
	}

	name := *out
	if name == "" {
		name = "BENCH_" + time.Now().UTC().Format("2006-01-02") + ".json"
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "occamy-bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(name, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "occamy-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d benchmark results to %s\n", len(snap.Results), name)
}

// parseBenchLine parses `BenchmarkX-8  100  123 ns/op  4 B/op  1 allocs/op
// 5e6 events/sec` into a Result. Metric fields come in value-unit pairs.
func parseBenchLine(line string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, len(r.Metrics) > 0
}
