// occamy-scenario lists, exports, and runs the declarative scenario
// catalog — and any spec saved as a JSON file.
//
// Usage:
//
//	occamy-scenario list
//	occamy-scenario run quickstart
//	occamy-scenario run all -scale quick
//	occamy-scenario run incast-storm-256 -scale paper
//	occamy-scenario run leafspine-demo -sweep policy.kind=dt,abm,occamy,pushout
//	occamy-scenario run burst-absorb -sweep policy.alpha=1,2,4 \
//	    -sweep workloads[1].bytes=300000,500000,800000 -j 8
//	occamy-scenario run incast-storm-256 -set workloads[1].fanout=512
//	occamy-scenario run mixed-load-90 -deep -trace occ.csv
//	occamy-scenario run incast-storm-256 -scale paper -trace occ.csv -trace-stride 8
//	occamy-scenario run mixed-load-90 -json > result.json
//	occamy-scenario export incast-storm-256 > storm.json
//	occamy-scenario run ./storm.json
//
// Scenarios are data: `export` dumps any catalog entry as an editable
// JSON template, and `run` accepts a path to such a file (anything
// containing a path separator or ending in .json) — no recompiling to
// share a run. Every spec exists at three scales (quick|full|paper);
// the -scale flag overrides the spec's own `scale` field.
//
// Sweeps cross-product every -sweep axis and fan the grid points across
// a worker pool (-j, default GOMAXPROCS); tables are byte-identical at
// any parallelism. -set applies a single value before running. -deep
// appends the tail-quantile, per-switch, and per-queue breakdown tables
// to a single run; -trace dumps the occupancy time series — whole-switch
// plus every (port, class) queue with the admission policy's threshold
// sampled alongside — as CSV, and prints sparklines including
// occupancy-vs-threshold overlays for the hottest queues; -trace-stride
// keeps every Nth sample so paper-scale CSVs stay bounded. -json prints
// the canonical JSON result document (the same bytes occamy-served
// caches and serves — see SERVICE.md). Any spec field is addressable:
// see SCENARIOS.md for the schema and `occamy-scenario metrics` for
// selectable columns.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"occamy/internal/experiments"
	"occamy/internal/scenario"
)

func usage() {
	fmt.Fprintf(os.Stderr, "usage: occamy-scenario <list|metrics|run|export> [args]\n")
	os.Exit(2)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// multiFlag collects repeated -sweep/-set flags.
type multiFlag []string

func (m *multiFlag) String() string     { return fmt.Sprint(*m) }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "list":
		list()
	case "metrics":
		for _, m := range scenario.MetricNames() {
			fmt.Println(m)
		}
	case "run":
		run(os.Args[2:])
	case "export":
		export(os.Args[2:])
	default:
		usage()
	}
}

func list() {
	names := scenario.Names()
	fmt.Printf("%d registered scenarios:\n\n", len(names))
	for _, n := range names {
		sc, _ := scenario.Get(n)
		kind := "spec"
		if sc.Tables != nil {
			kind = "figure"
		}
		fmt.Printf("  %-20s [%s]  %s\n", n, kind, sc.Spec.Title)
	}
	fmt.Println("\nrun one with: occamy-scenario run <name|file.json> [-scale quick|full|paper] [-sweep path=v1,v2]...")
	fmt.Println("export one as an editable JSON template with: occamy-scenario export <name>")
}

// isSpecFile reports whether a run target names a spec file rather than
// a catalog entry.
func isSpecFile(name string) bool {
	return strings.ContainsRune(name, os.PathSeparator) || strings.HasSuffix(name, ".json")
}

func export(args []string) {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	scaleFlag := fs.String("scale", "full", "quick | full | paper (resolve the preset before exporting)")
	if len(args) < 1 {
		fmt.Fprintln(os.Stderr, "usage: occamy-scenario export <name> [-scale quick|full|paper]")
		os.Exit(2)
	}
	if err := fs.Parse(args[1:]); err != nil {
		os.Exit(2)
	}
	scale, err := scenario.ParseScale(*scaleFlag)
	if err != nil {
		fatalf("%v", err)
	}
	sc, ok := scenario.Get(args[0])
	if !ok {
		fatalf("unknown scenario %q (try: occamy-scenario list)", args[0])
	}
	if sc.Tables != nil {
		fatalf("%s is a figure harness with bespoke tables; it has no spec to export", args[0])
	}
	data, err := sc.SpecAt(scale).Marshal()
	if err != nil {
		fatalf("%v", err)
	}
	os.Stdout.Write(data)
}

func run(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	scaleFlag := fs.String("scale", "", "quick | full | paper (default: the spec's own scale)")
	jobs := fs.Int("j", 0, "concurrent simulations per sweep (0 = GOMAXPROCS)")
	deep := fs.Bool("deep", false, "also print tail-quantile, per-switch, and (when faults are configured) per-link fault tables")
	jsonOut := fs.Bool("json", false, "print the canonical JSON result document instead of tables")
	traceOut := fs.String("trace", "", "write per-switch occupancy time series to this CSV file and print sparklines")
	traceStride := fs.Int("trace-stride", 1, "keep every Nth trace sample in the CSV (paper-scale runs; 1 = full resolution)")
	progress := fs.Bool("progress", false, "render a live progress line on stderr (sim-time %, events/sec, sim/wall ratio)")
	var sweeps, sets multiFlag
	fs.Var(&sweeps, "sweep", "grid axis: specfield=v1,v2,... (repeatable)")
	fs.Var(&sets, "set", "single override: specfield=value (repeatable)")
	if len(args) < 1 {
		fmt.Fprintln(os.Stderr, "usage: occamy-scenario run <name|all|file.json> [flags]")
		os.Exit(2)
	}
	name := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		os.Exit(2)
	}
	scale := scenario.ScaleFull
	if *scaleFlag != "" {
		var err error
		if scale, err = scenario.ParseScale(*scaleFlag); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	experiments.SetParallelism(*jobs)

	if isSpecFile(name) {
		spec, err := scenario.LoadSpec(name)
		if err != nil {
			fatalf("%v", err)
		}
		if *scaleFlag != "" {
			spec.Scale = scale
		}
		runSpec(spec.ApplyScale(), name, sweeps, sets, runOpts{
			deep: *deep, json: *jsonOut, traceOut: *traceOut, traceStride: *traceStride,
			progress: *progress,
		})
		return
	}

	names := []string{name}
	if name == "all" {
		if len(sweeps) > 0 || len(sets) > 0 {
			fmt.Fprintln(os.Stderr, "-sweep/-set need a single scenario, not all")
			os.Exit(2)
		}
		names = scenario.Names()
	}
	for _, n := range names {
		sc, ok := scenario.Get(n)
		if !ok {
			fatalf("unknown scenario %q (try: occamy-scenario list)", n)
		}
		if sc.Tables != nil {
			if len(sweeps) > 0 || len(sets) > 0 {
				fatalf("%s: figure scenarios take no -sweep/-set (their harness fixes the grid)", n)
			}
			if *jsonOut {
				fatalf("%s: figure scenarios render bespoke tables; -json needs a spec scenario", n)
			}
			start := time.Now()
			printTables(sc.Tables(scale))
			fmt.Printf("(%s took %v)\n\n", n, time.Since(start).Round(time.Millisecond))
			continue
		}
		runSpec(sc.SpecAt(scale), n, sweeps, sets, runOpts{
			deep: *deep, json: *jsonOut, traceOut: *traceOut, traceStride: *traceStride,
			progress: *progress,
		})
	}
}

// runOpts carries the single-run output switches.
type runOpts struct {
	deep        bool
	json        bool
	traceOut    string
	traceStride int
	progress    bool
}

// runSpec applies overrides and executes one spec: a single run (with
// optional deep/json/trace output) or a sweep grid.
func runSpec(spec scenario.Spec, name string, sweeps, sets []string, opts runOpts) {
	deep, traceOut := opts.deep, opts.traceOut
	start := time.Now()
	// Deep-copy the slices -set may write through; the registered catalog
	// entry must stay pristine.
	spec.Workloads = append([]scenario.Workload(nil), spec.Workloads...)
	spec.Metrics = append([]string(nil), spec.Metrics...)
	for _, s := range sets {
		ax, err := scenario.ParseSweep(s)
		if err != nil {
			fatalf("%s: %v", name, err)
		}
		if len(ax.Values) != 1 {
			fatalf("%s: -set %s: one value only (use -sweep for grids)", name, s)
		}
		if err := scenario.SetField(&spec, ax.Path, ax.Values[0]); err != nil {
			fatalf("%s: %v", name, err)
		}
	}
	if len(sweeps) > 0 {
		if deep || opts.json || traceOut != "" {
			fatalf("%s: -deep/-json/-trace need a single run, not a sweep", name)
		}
		axes := make([]scenario.SweepAxis, len(sweeps))
		for i, s := range sweeps {
			ax, err := scenario.ParseSweep(s)
			if err != nil {
				fatalf("%s: %v", name, err)
			}
			axes[i] = ax
		}
		var pointDone func()
		var finish func()
		if opts.progress {
			pointDone, finish = sweepProgressLine(name, axes)
		}
		tab, err := scenario.RunSweepWithProgress(spec, axes, nil, pointDone)
		if finish != nil {
			finish()
		}
		if err != nil {
			fatalf("%s: %v", name, err)
		}
		printTables([]*scenario.Table{tab})
		fmt.Printf("(%s took %v)\n\n", name, time.Since(start).Round(time.Millisecond))
		return
	}
	if opts.json && (deep || traceOut != "") {
		fatalf("%s: -json replaces all table/trace output; drop -deep/-trace (the document carries the tables and series)", name)
	}
	var prog scenario.ProgressFunc
	var finish func()
	if opts.progress {
		prog, finish = runProgressLine(name)
	}
	res, err := scenario.RunWithProgress(spec, nil, prog)
	if finish != nil {
		finish()
	}
	if err != nil {
		fatalf("%s: %v", name, err)
	}
	if opts.json {
		// The canonical result document — byte-identical to what
		// occamy-served caches and serves for this spec.
		data, err := res.EncodeJSON(true)
		if err != nil {
			fatalf("%s: %v", name, err)
		}
		os.Stdout.Write(data)
		return
	}
	tabs := []*scenario.Table{res.Table()}
	if deep {
		tabs = append(tabs, res.TailTable(), res.PerSwitchTable(), res.QueueTable())
		if len(res.FaultLinks) > 0 {
			tabs = append(tabs, res.FaultTable())
		}
	}
	printTables(tabs)
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fatalf("%s: %v", name, err)
		}
		if err := res.WriteTraceCSVStride(f, opts.traceStride); err != nil {
			fatalf("%s: %v", name, err)
		}
		if err := f.Close(); err != nil {
			fatalf("%s: %v", name, err)
		}
		plot, err := res.TracePlot(72)
		if err != nil {
			fatalf("%s: %v", name, err)
		}
		fmt.Printf("occupancy trace (%d samples every %v, per-queue series + thresholds in %s):\n%s\n",
			len(res.Telemetry[0].Series), res.SampleEvery, traceOut, plot)
		qplot, err := res.QueueTracePlot(72, 8)
		if err != nil {
			fatalf("%s: %v", name, err)
		}
		fmt.Printf("hottest queues vs policy threshold (Fig 3/11-style overlay):\n%s\n", qplot)
	}
	fmt.Printf("(%s took %v)\n\n", name, time.Since(start).Round(time.Millisecond))
}

func printTables(tabs []*scenario.Table) {
	for _, tab := range tabs {
		tab.Fprint(os.Stdout)
		fmt.Println()
	}
}
