// occamy-scenario lists and runs the declarative scenario catalog.
//
// Usage:
//
//	occamy-scenario list
//	occamy-scenario run quickstart
//	occamy-scenario run all -scale quick
//	occamy-scenario run leafspine-demo -sweep policy.kind=dt,abm,occamy,pushout
//	occamy-scenario run burst-absorb -sweep policy.alpha=1,2,4 \
//	    -sweep workloads[1].bytes=300000,500000,800000 -j 8
//	occamy-scenario run incast-storm-256 -set workloads[1].fanout=512
//
// Sweeps cross-product every -sweep axis and fan the grid points across
// a worker pool (-j, default GOMAXPROCS); tables are byte-identical at
// any parallelism. -set applies a single value before running. Any spec
// field is addressable: see SCENARIOS.md for the schema and
// `occamy-scenario metrics` for the selectable columns.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"occamy/internal/experiments"
	"occamy/internal/scenario"
)

func usage() {
	fmt.Fprintf(os.Stderr, "usage: occamy-scenario <list|metrics|run> [args]\n")
	os.Exit(2)
}

// multiFlag collects repeated -sweep/-set flags.
type multiFlag []string

func (m *multiFlag) String() string     { return fmt.Sprint(*m) }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "list":
		list()
	case "metrics":
		for _, m := range scenario.MetricNames() {
			fmt.Println(m)
		}
	case "run":
		run(os.Args[2:])
	default:
		usage()
	}
}

func list() {
	names := scenario.Names()
	fmt.Printf("%d registered scenarios:\n\n", len(names))
	for _, n := range names {
		sc, _ := scenario.Get(n)
		kind := "spec"
		if sc.Tables != nil {
			kind = "figure"
		}
		fmt.Printf("  %-20s [%s]  %s\n", n, kind, sc.Spec.Title)
	}
	fmt.Println("\nrun one with: occamy-scenario run <name> [-scale quick|full] [-sweep path=v1,v2]...")
}

func run(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	scale := fs.String("scale", "full", "quick | full")
	jobs := fs.Int("j", 0, "concurrent simulations per sweep (0 = GOMAXPROCS)")
	var sweeps, sets multiFlag
	fs.Var(&sweeps, "sweep", "grid axis: specfield=v1,v2,... (repeatable)")
	fs.Var(&sets, "set", "single override: specfield=value (repeatable)")
	if len(args) < 1 {
		fmt.Fprintln(os.Stderr, "usage: occamy-scenario run <name|all> [flags]")
		os.Exit(2)
	}
	name := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		os.Exit(2)
	}
	quick := *scale == "quick"
	if *scale != "quick" && *scale != "full" {
		fmt.Fprintf(os.Stderr, "unknown scale %q (quick|full)\n", *scale)
		os.Exit(2)
	}
	experiments.SetParallelism(*jobs)

	names := []string{name}
	if name == "all" {
		if len(sweeps) > 0 || len(sets) > 0 {
			fmt.Fprintln(os.Stderr, "-sweep/-set need a single scenario, not all")
			os.Exit(2)
		}
		names = scenario.Names()
	}
	for _, n := range names {
		sc, ok := scenario.Get(n)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown scenario %q (try: occamy-scenario list)\n", n)
			os.Exit(2)
		}
		start := time.Now()
		tabs, err := runOne(sc, quick, sweeps, sets)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", n, err)
			os.Exit(1)
		}
		for _, tab := range tabs {
			tab.Fprint(os.Stdout)
			fmt.Println()
		}
		fmt.Printf("(%s took %v)\n\n", n, time.Since(start).Round(time.Millisecond))
	}
}

func runOne(sc scenario.Scenario, quick bool, sweeps, sets []string) ([]*experiments.Table, error) {
	if sc.Tables != nil {
		if len(sweeps) > 0 || len(sets) > 0 {
			return nil, fmt.Errorf("figure scenarios take no -sweep/-set (their harness fixes the grid)")
		}
		return sc.RunTables(quick)
	}
	spec := sc.SpecAt(quick)
	// Deep-copy the slices -set may write through; the registered catalog
	// entry must stay pristine.
	spec.Workloads = append([]scenario.Workload(nil), spec.Workloads...)
	spec.Metrics = append([]string(nil), spec.Metrics...)
	for _, s := range sets {
		ax, err := scenario.ParseSweep(s)
		if err != nil {
			return nil, err
		}
		if len(ax.Values) != 1 {
			return nil, fmt.Errorf("-set %s: one value only (use -sweep for grids)", s)
		}
		if err := scenario.SetField(&spec, ax.Path, ax.Values[0]); err != nil {
			return nil, err
		}
	}
	if len(sweeps) == 0 {
		r, err := scenario.Run(spec)
		if err != nil {
			return nil, err
		}
		return []*experiments.Table{r.Table()}, nil
	}
	axes := make([]scenario.SweepAxis, len(sweeps))
	for i, s := range sweeps {
		ax, err := scenario.ParseSweep(s)
		if err != nil {
			return nil, err
		}
		axes[i] = ax
	}
	tab, err := scenario.RunSweep(spec, axes)
	if err != nil {
		return nil, err
	}
	return []*experiments.Table{tab}, nil
}
