package main

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"occamy/internal/scenario"
)

// Live progress line (-progress)
//
// The scenario layer publishes deterministic samples (virtual clock,
// event count) at engine chunk boundaries; this file is the CLI's
// consumer: it adds the wall clock, derives events/sec and the
// sim-time/wall-time ratio (the ROADMAP headline metric), and repaints
// one carriage-return line on stderr — stdout stays clean for tables
// and -json documents. Repaints are throttled so the terminal, not the
// simulation, pays for the rendering.

const progressEvery = 100 * time.Millisecond

// runProgressLine returns the ProgressFunc for a single run and a
// finish func that paints the final 100% line and moves to a new line.
func runProgressLine(name string) (scenario.ProgressFunc, func()) {
	start := time.Now()
	var last time.Time // single-run hook fires from one goroutine
	paint := func(p scenario.RunProgress, final bool) {
		wall := time.Since(start)
		frac := 0.0
		if p.SimHorizon > 0 {
			frac = min(1, p.SimNow.Seconds()/p.SimHorizon.Seconds())
		}
		if final {
			frac = 1
		}
		simNow := time.Duration(p.SimNow).Round(time.Microsecond)
		horizon := time.Duration(p.SimHorizon).Round(time.Microsecond)
		line := fmt.Sprintf("\r%s: %5.1f%% · sim %v/%v · %s events · %s ev/s · %.2g sim/wall",
			name, frac*100, simNow, horizon,
			humanCount(float64(p.Events)), humanCount(float64(p.Events)/wall.Seconds()), p.SimNow.Seconds()/wall.Seconds())
		fmt.Fprint(os.Stderr, line)
		if final {
			fmt.Fprintln(os.Stderr)
		}
	}
	var lastSample scenario.RunProgress
	hook := func(p scenario.RunProgress) {
		lastSample = p
		if now := time.Now(); p.Final || now.Sub(last) >= progressEvery {
			last = now
			paint(p, p.Final)
		}
	}
	finish := func() {
		if !lastSample.Final {
			// Canceled or failed before the final sample: close the line so
			// the error message starts clean.
			fmt.Fprintln(os.Stderr)
		}
	}
	return hook, finish
}

// sweepProgressLine returns the pointDone hook for a sweep (called
// concurrently from grid workers) and a finish func.
func sweepProgressLine(name string, axes []scenario.SweepAxis) (func(), func()) {
	total := 1
	for _, ax := range axes {
		if len(ax.Values) > 0 {
			total *= len(ax.Values)
		}
	}
	start := time.Now()
	var done atomic.Int64
	var mu sync.Mutex
	var last time.Time
	paint := func(n int) {
		fmt.Fprintf(os.Stderr, "\r%s: %d/%d points · %v elapsed",
			name, n, total, time.Since(start).Round(time.Millisecond))
	}
	hook := func() {
		n := int(done.Add(1))
		mu.Lock()
		defer mu.Unlock()
		if now := time.Now(); n == total || now.Sub(last) >= progressEvery {
			last = now
			paint(n)
		}
	}
	finish := func() {
		mu.Lock()
		defer mu.Unlock()
		paint(int(done.Load()))
		fmt.Fprintln(os.Stderr)
	}
	return hook, finish
}

// humanCount renders a count with a k/M/G suffix.
func humanCount(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
