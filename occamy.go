// Package occamy is the public API of this repository: a from-scratch Go
// implementation of Occamy — a preemptive buffer-management (BM) scheme
// for on-chip shared-memory switches (Shan et al., arXiv:2501.13570) —
// together with the complete evaluation substrate: the cell-structured
// shared-buffer switch model, the non-preemptive baselines (Complete
// Sharing, Static Threshold, DT, ABM) and the preemptive ones (Pushout,
// Occamy), a DCTCP/CUBIC transport stack, datacenter topologies, and the
// workload generators used by the paper.
//
// # Quick start
//
// Build a switch with Occamy buffer management and push packets through:
//
//	eng := occamy.NewEngine()
//	sw := occamy.NewSwitch("sw0", eng, occamy.SwitchConfig{
//		Ports:          8,
//		ClassesPerPort: 1,
//		BufferBytes:    410 << 10,
//		Policy:         occamy.NewOccamy(occamy.OccamyConfig{Alpha: 8}),
//		Occamy:         &occamy.OccamyConfig{Alpha: 8},
//	})
//
// See examples/ for runnable end-to-end scenarios and
// internal/experiments for the per-figure reproduction harnesses.
//
// # Declarative scenarios
//
// Hand-wiring topology + transport + workload is rarely necessary: a
// scenario is a ~20-line declarative ScenarioSpec — topology, BM policy,
// workload mix, duration, seed, metric selection — that RunScenario
// assembles and executes:
//
//	res, err := occamy.RunScenario(occamy.ScenarioSpec{
//		Name:     "demo",
//		Topology: occamy.ScenarioTopology{Kind: occamy.TopoSingleSwitch, Hosts: 8},
//		Policy:   occamy.ScenarioPolicy{Kind: "occamy", Alpha: 8},
//		Workloads: []occamy.ScenarioWorkload{
//			{Kind: "background", Load: 0.6},
//			{Kind: "incast", Client: 0, QuerySize: 300_000, Queries: 20},
//		},
//	})
//
// A catalog of registered scenarios — the ported examples/figures plus
// at-scale workloads beyond the paper — is listed by ScenarioNames and
// runnable (with grid sweeps over any spec field) through
// cmd/occamy-scenario. Specs are also files: they serialize to strict
// JSON (LoadScenarioSpec, ScenarioSpec.Save; `occamy-scenario export`
// dumps any catalog entry as a template, `run ./file.json` executes
// one), carry a quick|full|paper Scale preset, and every run records
// deep telemetry — tail-quantile tables (ScenarioResult.TailTable),
// per-switch/per-port buffer dynamics (ScenarioResult.PerSwitchTable),
// and per-(port,class) queue series with the admission policy's
// threshold sampled alongside (ScenarioResult.QueueTable and the
// QueueTraceSeries/QueueTracePlot Fig 3/11-style overlays).
// SCENARIOS.md documents the spec schema and how to register new
// scenarios.
//
// Results are data too: every run encodes to a canonical JSON document
// (ScenarioResultDoc; `occamy-scenario run -json`), and cmd/occamy-served
// exposes the whole catalog as an HTTP service — submit a spec, poll
// the job, fetch the result or its trace CSV — with a content-addressed
// cache that answers repeat submissions of any previously simulated
// spec without re-simulating (NewScenarioService embeds the same engine
// in-process; SERVICE.md documents the API).
//
// The deeper layers remain importable for advanced use:
//
//   - occamy/internal/* is intentionally *not* reachable from other
//     modules; everything a user needs is re-exported here.
package occamy

import (
	"occamy/internal/bm"
	"occamy/internal/core"
	"occamy/internal/experiments"
	"occamy/internal/hw"
	"occamy/internal/linkfault"
	"occamy/internal/metrics"
	"occamy/internal/netsim"
	"occamy/internal/pkt"
	"occamy/internal/scenario"
	"occamy/internal/service"
	"occamy/internal/sim"
	"occamy/internal/switchsim"
	"occamy/internal/transport"
	"occamy/internal/workload"
)

// --- Simulation engine ----------------------------------------------------

// Engine is the deterministic discrete-event scheduler driving every
// simulation.
type Engine = sim.Engine

// Time is virtual nanoseconds since the start of a run.
type Time = sim.Time

// Duration is a span of virtual time in nanoseconds.
type Duration = sim.Duration

// Virtual time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return sim.NewEngine() }

// Rand is the deterministic PRNG used by workloads.
type Rand = sim.Rand

// NewRand seeds a deterministic generator.
func NewRand(seed uint64) *Rand { return sim.NewRand(seed) }

// --- Buffer management policies -------------------------------------------

// Policy decides packet admission into the shared buffer.
type Policy = bm.Policy

// PolicyState is the live switch statistics view a Policy consults.
type PolicyState = bm.State

// NewDT returns Dynamic Threshold (Choudhury–Hahne) with parameter α —
// the de facto BM in commodity switch chips.
func NewDT(alpha float64) *bm.DT { return bm.NewDT(alpha) }

// NewABM returns Active Buffer Management (SIGCOMM'22), the strongest
// non-preemptive baseline.
func NewABM(alpha float64) *bm.ABM { return bm.NewABM(alpha) }

// CompleteSharing admits any packet that physically fits.
type CompleteSharing = bm.CompleteSharing

// StaticThreshold caps every queue at a fixed byte count.
type StaticThreshold = bm.StaticThreshold

// NewEDT returns Enhanced DT (INFOCOM'15): DT plus transient-burst
// headroom. clock supplies virtual nanoseconds (e.g. the engine's Now).
func NewEDT(alpha float64, clock func() int64) *bm.EDT { return bm.NewEDT(alpha, clock) }

// NewTDT returns Traffic-aware DT (INFOCOM'21): DT with per-queue
// absorption/evacuation states driven by Observe calls.
func NewTDT(alpha float64) *bm.TDT { return bm.NewTDT(alpha) }

// NewPOT returns Pushout-with-Threshold (JSAC'95): eviction allowed only
// while the arriving packet's queue is below fraction·B.
func NewPOT(fraction float64) *core.POT { return core.NewPOT(fraction) }

// NewQPO returns Quasi-Pushout (IEEE CL'97): eviction from a cheaply
// maintained quasi-longest-queue register.
func NewQPO() *core.QPO { return core.NewQPO() }

// OccamyConfig parameterizes the Occamy policy: admission α, victim
// selection, and the redundant-bandwidth token bucket.
type OccamyConfig = core.Config

// VictimPolicy selects which over-allocated queue Occamy drops from.
type VictimPolicy = core.VictimPolicy

// Victim policies.
const (
	RoundRobinDrop = core.RoundRobin
	LongestDrop    = core.LongestQueue
)

// NewOccamy returns the paper's preemptive BM: DT admission with a
// large α plus reactive head-drop expulsion of over-allocated queues.
func NewOccamy(cfg OccamyConfig) *core.Occamy { return core.New(cfg) }

// NewPushout returns the classic preemptive baseline: admit while any
// space remains; evict from the longest queue when full.
func NewPushout() *core.Pushout { return core.NewPushout() }

// DTReservedFraction returns F/B = 1/(1+αn), the free-buffer share DT
// reserves in steady state (Eq. 2 of the paper).
func DTReservedFraction(alpha float64, congestedQueues int) float64 {
	return bm.ReservedFraction(alpha, congestedQueues)
}

// --- Switch model -----------------------------------------------------------

// Switch is the shared-memory switch: cell-structured buffer, pluggable
// BM, per-port schedulers, ECN marking, and (for Occamy) the expulsion
// engine.
type Switch = switchsim.Switch

// SwitchConfig describes a switch.
type SwitchConfig = switchsim.Config

// SchedKind selects the per-port scheduling discipline.
type SchedKind = switchsim.SchedKind

// Scheduling disciplines.
const (
	SchedFIFO = switchsim.SchedFIFO
	SchedDRR  = switchsim.SchedDRR
	SchedSP   = switchsim.SchedSP
)

// DropReason classifies packet losses.
type DropReason = switchsim.DropReason

// Drop reasons.
const (
	DropAdmission = switchsim.DropAdmission
	DropNoMemory  = switchsim.DropNoMemory
	DropExpelled  = switchsim.DropExpelled
)

// NewSwitch builds a switch; attach ports and install a router before
// sending traffic.
func NewSwitch(name string, eng *Engine, cfg SwitchConfig) *Switch {
	return switchsim.New(name, eng, cfg)
}

// Packet is the simulated packet shared by all layers.
type Packet = pkt.Packet

// NodeID identifies a host in the network.
type NodeID = pkt.NodeID

// Wire-size constants.
const (
	MTU         = pkt.MTU
	MSS         = pkt.MSS
	HeaderBytes = pkt.HeaderBytes
)

// --- Network, transport, workloads ------------------------------------------

// Network bundles hosts and switches.
type Network = netsim.Network

// Host is an end node implementing the transport stack's Net interface.
type Host = netsim.Host

// FlowOptions parameterizes Network.StartFlow.
type FlowOptions = netsim.FlowOptions

// SingleSwitchConfig builds a star topology (the testbed scenarios).
type SingleSwitchConfig = netsim.SingleSwitchConfig

// LeafSpineConfig builds the §6.4 leaf–spine fabric with ECMP.
type LeafSpineConfig = netsim.LeafSpineConfig

// SingleSwitch builds a star network.
func SingleSwitch(cfg SingleSwitchConfig) *Network { return netsim.SingleSwitch(cfg) }

// LeafSpine builds a leaf–spine fabric.
func LeafSpine(cfg LeafSpineConfig) *Network { return netsim.LeafSpine(cfg) }

// CC is a pluggable congestion-control algorithm.
type CC = transport.CC

// TransportOptions tunes the end-host stack.
type TransportOptions = transport.Options

// NewDCTCP returns a DCTCP controller (ECN-proportional backoff).
func NewDCTCP(mss, initCwndSegs int) *transport.DCTCP {
	return transport.NewDCTCP(mss, initCwndSegs)
}

// NewCubic returns a CUBIC-style loss-based controller.
func NewCubic(mss, initCwndSegs int) *transport.Cubic {
	return transport.NewCubic(mss, initCwndSegs)
}

// NewRenoCC returns a classic NewReno AIMD controller.
func NewRenoCC(mss, initCwndSegs int) *transport.Reno {
	return transport.NewReno(mss, initCwndSegs)
}

// WebSearchCDF returns the DCTCP-paper web-search flow-size distribution.
func WebSearchCDF() *workload.CDF { return workload.WebSearch() }

// Background generates Poisson 1-to-1 flows at a target load.
type Background = workload.Background

// Incast generates query (partition–aggregate) traffic.
type Incast = workload.Incast

// AllToAll generates rounds of the AI all-to-all pattern.
type AllToAll = workload.AllToAll

// AllReduce generates double-binary-tree all-reduce rounds.
type AllReduce = workload.AllReduce

// Collector accumulates FCT/QCT samples and computes the paper's
// statistics (mean, p99, slowdowns, quantile tables).
type Collector = metrics.Collector

// QuantileRow is one tail-table line: a labeled sample population with
// its completion-time and slowdown quantiles.
type QuantileRow = metrics.QuantileRow

// --- Declarative scenarios ----------------------------------------------------

// ScenarioSpec is a complete declarative scenario: topology, policy,
// workload mix, duration, seed, and metric selection.
type ScenarioSpec = scenario.Spec

// ScenarioTopology describes the network shape of a spec.
type ScenarioTopology = scenario.Topology

// ScenarioPolicy is the declarative BM selection of a spec ("dt", "abm",
// "occamy", "pushout", ...).
type ScenarioPolicy = scenario.Policy

// ScenarioWorkload is one traffic component of a spec ("background",
// "incast", "permutation", "alltoall", "allreduce", "longlived", "cbr",
// "burst").
type ScenarioWorkload = scenario.Workload

// ScenarioFaults selects per-link-class fault profiles for a spec's
// optional "faults" block: "all" as the shared fallback, "host-leaf"
// for host access links, "leaf-spine" for fabric links.
type ScenarioFaults = scenario.Faults

// LinkFaultProfile configures one link class's fault emulation: i.i.d.
// and Gilbert–Elliott loss, duplication, hold-back reordering, and
// jitter (see internal/linkfault).
type LinkFaultProfile = linkfault.Profile

// LinkFaultStats is one faulted link's injection counters (offered,
// delivered, dropped, duplicated, held, reordered), surfaced per run
// in ScenarioResult.FaultLinks and ScenarioResult.FaultTable.
type LinkFaultStats = linkfault.LinkStats

// ScenarioResult carries one scenario run's metrics, including the deep
// telemetry behind Result.TailTable and Result.PerSwitchTable.
type ScenarioResult = scenario.Result

// SwitchTelemetry is one switch's recorded buffer dynamics: per-port
// egress counters plus sampled occupancy peaks, means, and time series
// down to the (port, class) queues.
type SwitchTelemetry = scenario.SwitchTelemetry

// QueueTelemetry is one (port, class) queue's recorded dynamics: length
// peak/mean/series plus the admission policy's threshold sampled at the
// same instants and the minimum threshold headroom — the data behind
// the Fig 3/11-style occupancy-vs-threshold overlays
// (ScenarioResult.QueueTable, QueueTraceSeries, QueueTracePlot).
type QueueTelemetry = scenario.QueueTelemetry

// SwitchPortStats aggregates one egress port's counters.
type SwitchPortStats = switchsim.PortStats

// ScenarioScale is a run-size preset: quick (smoke), full (the spec as
// written), or paper (evaluation scale).
type ScenarioScale = scenario.Scale

// Run-size presets.
const (
	ScenarioQuick = scenario.ScaleQuick
	ScenarioFull  = scenario.ScaleFull
	ScenarioPaper = scenario.ScalePaper
)

// Scenario is a registry entry: a spec plus optional scale hooks.
type Scenario = scenario.Scenario

// SweepAxis is one swept spec field (path + values) of a scenario grid.
type SweepAxis = scenario.SweepAxis

// Table is the aligned-text output table shared by scenarios and the
// figure harnesses.
type Table = experiments.Table

// Topology kinds.
const (
	TopoSingleSwitch = scenario.SingleSwitch
	TopoLeafSpine    = scenario.LeafSpine
)

// RunScenario assembles and executes one declarative scenario.
func RunScenario(spec ScenarioSpec) (*ScenarioResult, error) { return scenario.Run(spec) }

// ScenarioProgress is one live-progress sample of a scenario run: the
// virtual clock, the nominal horizon, and the cumulative processed-event
// count, published at every engine chunk boundary. Deterministic by
// construction — wall clocks and rates are the caller's to add.
type ScenarioProgress = scenario.RunProgress

// RunScenarioWithProgress is RunScenario with a cooperative cancel
// check and a progress hook; either may be nil. The canceled func is
// polled between engine chunks; progress receives a sample at the same
// seam and once more (Final set) on completion.
func RunScenarioWithProgress(spec ScenarioSpec, canceled func() bool, progress func(ScenarioProgress)) (*ScenarioResult, error) {
	return scenario.RunWithProgress(spec, canceled, progress)
}

// LoadScenarioSpec reads and strictly validates a JSON spec file
// (unknown fields are rejected). Specs are data: save one with
// ScenarioSpec.Save, share the file, run it anywhere.
func LoadScenarioSpec(path string) (ScenarioSpec, error) { return scenario.LoadSpec(path) }

// ParseScenarioSpec decodes and strictly validates a JSON spec.
func ParseScenarioSpec(data []byte) (ScenarioSpec, error) { return scenario.ParseSpec(data) }

// RunScenarioSweep cross-products the axes over the spec and runs the
// grid concurrently with deterministic, input-ordered rows.
func RunScenarioSweep(spec ScenarioSpec, axes []SweepAxis) (*Table, error) {
	return scenario.RunSweep(spec, axes)
}

// RegisterScenario adds a scenario to the catalog (see SCENARIOS.md).
func RegisterScenario(s Scenario) { scenario.Register(s) }

// ScenarioResultDoc is the canonical JSON document of a scenario run:
// everything the text tables render (summary row, tail quantiles,
// per-switch/per-port/per-queue telemetry and counters) plus the
// occupancy trace series. `occamy-scenario run -json` prints it and
// occamy-served caches and serves it; equal specs always produce
// byte-identical documents (see SERVICE.md for the schema).
type ScenarioResultDoc = scenario.ResultDoc

// DecodeScenarioResult parses a canonical JSON result document,
// rejecting unknown fields and foreign schema versions.
func DecodeScenarioResult(data []byte) (*ScenarioResultDoc, error) {
	return scenario.DecodeResultDoc(data)
}

// ScenarioService is the embeddable scenario-execution service behind
// cmd/occamy-served: a bounded worker-pool job queue with a content-
// addressed result cache; Handler() exposes the HTTP API.
type ScenarioService = service.Service

// ScenarioServiceConfig sizes a ScenarioService (workers, queue depth,
// cache byte budget, optional persistence directory).
type ScenarioServiceConfig = service.Config

// NewScenarioService starts a scenario-execution service; the worker
// pool is live on return. Close it to stop accepting and drain.
func NewScenarioService(cfg ScenarioServiceConfig) (*ScenarioService, error) {
	return service.New(cfg)
}

// GetScenario looks a registered scenario up by name.
func GetScenario(name string) (Scenario, bool) { return scenario.Get(name) }

// ScenarioNames lists the registered catalog, sorted.
func ScenarioNames() []string { return scenario.Names() }

// --- Hardware models ----------------------------------------------------------

// HardwareCost is one row of the paper's Table 1.
type HardwareCost = hw.Cost

// HardwareCostTable returns the Table 1 cost model for a head-drop
// selector over nQueues queues with qlenBits-wide queue lengths.
func HardwareCostTable(nQueues, qlenBits int) []HardwareCost {
	return hw.Table1(nQueues, qlenBits)
}
