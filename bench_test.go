// Benchmarks: one per table/figure of the paper. Each benchmark runs
// the corresponding experiment harness at a bounded scale and reports
// ns/op, allocs/op, and the simulated-events-per-second the engine
// sustained; `go test -bench=. -benchmem` regenerates every row the
// paper's evaluation reports (at reduced scale — cmd/occamy-sim runs
// paper scale). cmd/occamy-bench snapshots the whole suite to JSON.
package occamy_test

import (
	"testing"

	"occamy/internal/bm"
	"occamy/internal/core"
	"occamy/internal/experiments"
	"occamy/internal/sim"
)

// benchDPDK is the fixed sweep scale for the Fig 13–16 benchmarks.
func benchDPDK() experiments.DPDKScale {
	sc := experiments.QuickDPDK()
	sc.Queries = 10
	return sc
}

func benchFabric() experiments.FabricScale {
	sc := experiments.QuickFabric()
	sc.Queries = 6
	return sc
}

// benchLoop standardizes the figure benchmarks: allocation reporting
// plus a simulated events/sec metric derived from the harness-level
// event counter (experiments.EventsProcessed).
func benchLoop(b *testing.B, body func()) {
	b.ReportAllocs()
	start := experiments.EventsProcessed()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body()
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(experiments.EventsProcessed()-start)/s, "events/sec")
	}
}

func BenchmarkTable1HardwareCost(b *testing.B) {
	benchLoop(b, func() {
		if tab := experiments.Table1HardwareCost(64, 20); len(tab.Rows) != 4 {
			b.Fatal("bad table")
		}
	})
}

func BenchmarkFig3DTBehavior(b *testing.B) {
	benchLoop(b, func() {
		if tab := experiments.Fig3DTBehavior(); len(tab.Rows) != 2 {
			b.Fatal("bad table")
		}
	})
}

func BenchmarkFig6Anomalies(b *testing.B) {
	benchLoop(b, func() {
		if tab := experiments.Fig6Anomalies(4, []float64{2.5}); len(tab.Rows) != 2 {
			b.Fatal("bad table")
		}
	})
}

func BenchmarkFig7Utilization(b *testing.B) {
	sc := benchFabric()
	benchLoop(b, func() {
		bufT, bwT := experiments.Fig7Utilization(sc)
		if len(bufT.Rows) != 2 || len(bwT.Rows) != 3 {
			b.Fatal("bad tables")
		}
	})
}

func BenchmarkFig11QueueEvolution(b *testing.B) {
	benchLoop(b, func() {
		if ts := experiments.Fig11QueueEvolution(20 * sim.Microsecond); len(ts) != 4 {
			b.Fatal("bad tables")
		}
	})
}

func BenchmarkFig12BurstAbsorption(b *testing.B) {
	benchLoop(b, func() {
		if tab := experiments.Fig12BurstAbsorption(); len(tab.Rows) != 18 {
			b.Fatal("bad table")
		}
	})
}

func BenchmarkFig13SoftwareSwitch(b *testing.B) {
	sc := benchDPDK()
	sc.SizeFracs = []float64{0.8}
	benchLoop(b, func() {
		if tab := experiments.Fig13SoftwareSwitch(sc); len(tab.Rows) != 4 {
			b.Fatal("bad table")
		}
	})
}

func BenchmarkFig14Isolation(b *testing.B) {
	sc := benchDPDK()
	sc.Loads = []float64{0.4}
	benchLoop(b, func() {
		if tab := experiments.Fig14Isolation(sc); len(tab.Rows) != 4 {
			b.Fatal("bad table")
		}
	})
}

func BenchmarkFig15BufferChoking(b *testing.B) {
	sc := benchDPDK()
	sc.SizeFracs = []float64{1.0}
	benchLoop(b, func() {
		if tab := experiments.Fig15BufferChoking(sc); len(tab.Rows) != 4 {
			b.Fatal("bad table")
		}
	})
}

func BenchmarkFig16AlphaImpact(b *testing.B) {
	sc := benchDPDK()
	sc.Alphas = []float64{1, 8}
	sc.SizeFracs = []float64{0.8}
	benchLoop(b, func() {
		if tab := experiments.Fig16AlphaImpact(sc); len(tab.Rows) != 2 {
			b.Fatal("bad table")
		}
	})
}

func BenchmarkFig17LargeScale(b *testing.B) {
	sc := benchFabric()
	sc.SizeFracs = []float64{0.8}
	benchLoop(b, func() {
		if tab := experiments.Fig17LargeScale(sc); len(tab.Rows) != 4 {
			b.Fatal("bad table")
		}
	})
}

func BenchmarkFig18AllToAll(b *testing.B) {
	sc := benchFabric()
	sc.FlowSizes = []int64{128_000}
	benchLoop(b, func() {
		if tab := experiments.Fig18AllToAll(sc); len(tab.Rows) != 4 {
			b.Fatal("bad table")
		}
	})
}

func BenchmarkFig19AllReduce(b *testing.B) {
	sc := benchFabric()
	sc.FlowSizes = []int64{128_000}
	benchLoop(b, func() {
		if tab := experiments.Fig19AllReduce(sc); len(tab.Rows) != 4 {
			b.Fatal("bad table")
		}
	})
}

func BenchmarkFig20QueryLoad(b *testing.B) {
	sc := benchFabric()
	sc.QueryLoads = []float64{0.4}
	benchLoop(b, func() {
		if tab := experiments.Fig20QueryLoad(sc); len(tab.Rows) != 4 {
			b.Fatal("bad table")
		}
	})
}

func BenchmarkFig21RoundRobinDrop(b *testing.B) {
	sc := benchFabric()
	sc.SizeFracs = []float64{0.8}
	benchLoop(b, func() {
		if tab := experiments.Fig21RoundRobinDrop(sc); len(tab.Rows) != 2 {
			b.Fatal("bad table")
		}
	})
}

func BenchmarkFig22HeavyLoad(b *testing.B) {
	sc := benchFabric()
	sc.SizeFracs = []float64{0.6}
	benchLoop(b, func() {
		if tab := experiments.Fig22HeavyLoad(sc); len(tab.Rows) != 4 {
			b.Fatal("bad table")
		}
	})
}

func BenchmarkFig23BufferSize(b *testing.B) {
	sc := benchFabric()
	sc.BufferFactors = []float64{5.12}
	benchLoop(b, func() {
		if tab := experiments.Fig23BufferSize(sc); len(tab.Rows) != 4 {
			b.Fatal("bad table")
		}
	})
}

// --- Ablation benches (DESIGN.md design-choice list) ------------------------

// BenchmarkAblationVictimPolicy compares the cost/behaviour of Occamy's
// round-robin victim selection against the Maximum-Finder-based
// longest-queue variant in the raw burst scenario.
func BenchmarkAblationVictimPolicy(b *testing.B) {
	for _, victim := range []core.VictimPolicy{core.RoundRobin, core.LongestQueue} {
		victim := victim
		b.Run(victim.String(), func(b *testing.B) {
			benchLoop(b, func() {
				r := experiments.RunQueueTrace(experiments.QueueTraceConfig{
					Spec:       experiments.OccamySpec(4, victim),
					BurstBytes: 600_000,
				})
				if r.BurstSent == 0 {
					b.Fatal("no burst sent")
				}
			})
		})
	}
}

// BenchmarkAblationTokenGate compares expulsion with the
// redundant-bandwidth token bucket against an effectively ungated
// engine (a token rate far above any physical memory bandwidth).
func BenchmarkAblationTokenGate(b *testing.B) {
	gated := experiments.OccamySpec(4, core.RoundRobin)
	ungated := experiments.PolicySpec{
		Name: "Occamy-nogate",
		Make: func() (bm.Policy, *core.Config) {
			cfg := core.Config{Alpha: 4, TokenRate: 1e15, TokenBurst: 1e9}
			return core.New(cfg), &cfg
		},
	}
	for _, spec := range []experiments.PolicySpec{gated, ungated} {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			benchLoop(b, func() {
				r := experiments.RunQueueTrace(experiments.QueueTraceConfig{
					Spec:       spec,
					BurstBytes: 600_000,
				})
				if r.BurstSent == 0 {
					b.Fatal("no burst sent")
				}
			})
		})
	}
}
