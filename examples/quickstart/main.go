// Quickstart: build one shared-memory switch with Occamy buffer
// management, congest one queue with long-lived traffic, then slam a
// burst into a second queue and watch the expulsion engine reclaim the
// over-allocated buffer in real (virtual) time.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"occamy"
)

func main() {
	eng := occamy.NewEngine()

	const (
		ports    = 8       // chip ports: unused ones still add memory bandwidth
		portRate = 10e9    // 10Gbps per port
		buffer   = 1 << 20 // 1MB shared buffer
		pktSize  = 1000
	)
	occCfg := occamy.OccamyConfig{Alpha: 8}
	sw := occamy.NewSwitch("demo", eng, occamy.SwitchConfig{
		Ports:          ports,
		ClassesPerPort: 1,
		BufferBytes:    buffer,
		Policy:         occamy.NewOccamy(occCfg),
		Occamy:         &occCfg,
	})
	for i := 0; i < ports; i++ {
		sw.AttachPort(i, portRate, 0, func(*occamy.Packet) {})
	}
	sw.SetRouter(func(p *occamy.Packet) int { return int(p.Dst) })

	// Long-lived traffic into port 0 at 2× line rate: queue 0 fills up
	// to the DT threshold and stays pinned there.
	var id uint64
	inject := func(dst occamy.NodeID, flow uint64) {
		id++
		sw.Receive(&occamy.Packet{ID: id, FlowID: flow, Dst: dst, Size: pktSize})
	}
	gap := occamy.Duration(float64(pktSize*8) / (2 * portRate) * float64(occamy.Second))
	eng.Every(0, gap, func() { inject(0, 1) })

	fmt.Println("t(us)   q0(KB)  q1(KB)  threshold(KB)  expelled")
	sample := func() {
		st := sw.Stats()
		fmt.Printf("%-7.0f %-7.1f %-7.1f %-14.1f %d\n",
			eng.Now().Micros(),
			float64(sw.QueueLen(0))/1e3, float64(sw.QueueLen(1))/1e3,
			float64(sw.Threshold(1))/1e3, st.DropsExpelled)
	}
	for _, t := range []occamy.Duration{200, 400, 800, 900, 950, 1000, 1100, 1300} {
		eng.At(t*occamy.Microsecond, sample)
	}

	// At t=900µs, a 400KB burst arrives for port 1 at 100Gbps. The DT
	// threshold collapses; queue 0 is suddenly over-allocated; Occamy
	// head-drops it using redundant memory bandwidth so the burst gets
	// its fair share instead of being tail-dropped.
	burstGap := occamy.Duration(float64(pktSize*8) / 100e9 * float64(occamy.Second))
	for i := 0; i < 400_000/pktSize; i++ {
		eng.At(900*occamy.Microsecond+occamy.Duration(i)*burstGap, func() { inject(1, 2) })
	}

	eng.RunUntil(1400 * occamy.Microsecond)

	st := sw.Stats()
	fmt.Printf("\nforwarded %d packets, admission drops %d, expelled %d\n",
		st.TxPackets, st.DropsAdmission, st.DropsExpelled)
	if exp := sw.Expulsion(); exp != nil {
		s := exp.Stats()
		fmt.Printf("expulsion engine: %d packets (%d KB) reclaimed, %d token stalls\n",
			s.ExpelledPackets, s.ExpelledBytes/1000, s.TokenStalls)
	}
}
