// Quickstart: the repository's hello-world, now a declarative scenario.
// One queue is pinned at its DT threshold by 2× line-rate traffic; at
// t=900µs a 400KB burst at 100G slams a second queue. Occamy's expulsion
// engine head-drops the over-allocated queue so the burst gets its fair
// share — the expelled column is the reclaimed buffer.
//
// The entire setup — 8-port switch, buffer, policy, both traffic
// sources — is the ~15-line spec below, written out inline to show the
// schema; the same scenario ships registered as "quickstart" in the
// catalog (internal/scenario/catalog.go), so keep the two in sync.
// Compare examples/burstabsorb for sweeping specs over a grid, and
// SCENARIOS.md for the full schema.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"occamy"
)

func main() {
	spec := occamy.ScenarioSpec{
		Name:  "quickstart",
		Title: "Occamy expulsion demo: pinned queue vs 400KB burst (1MB buffer)",
		Topology: occamy.ScenarioTopology{
			Kind: occamy.TopoSingleSwitch, Hosts: 8,
			LinkBps: 10e9, BufferBytes: 1 << 20,
		},
		Policy: occamy.ScenarioPolicy{Kind: "occamy", Alpha: 8},
		Workloads: []occamy.ScenarioWorkload{
			{Kind: "cbr", Label: "longlived", DstPort: 0, RateBps: 20e9},
			{Kind: "burst", Label: "burst", DstPort: 1, RateBps: 100e9,
				Bytes: 400_000, At: 900 * occamy.Microsecond},
		},
		Duration: 1400 * occamy.Microsecond,
	}
	res, err := occamy.RunScenario(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res.Table().Fprint(os.Stdout)

	burst := res.Workloads[1]
	fmt.Printf("\nburst: %d packets sent, %d dropped; %d packets expelled from the pinned queue\n",
		burst.SentPackets, burst.Drops, res.Total.DropsExpelled)
	fmt.Println("\nshape to observe: without preemption the pinned queue would hold its")
	fmt.Println("buffer and the burst would tail-drop; try -set policy.kind=dt via")
	fmt.Println("`go run ./cmd/occamy-scenario run quickstart -set policy.kind=dt`.")
}
