// Buffer choking (the §3.1 / Fig 15 scenario): low-priority long-lived
// flows hold most of the shared buffer while strict-priority scheduling
// starves their queues. When a high-priority incast arrives, a
// non-preemptive BM cannot reclaim the hostage buffer; Occamy expels it.
//
// The program runs the same incast against DT and against Occamy and
// prints the queue-level evidence: how much buffer the low-priority
// class holds, how many high-priority packets die at admission, and the
// resulting query completion times.
//
// Run with: go run ./examples/bufferchoking
package main

import (
	"fmt"

	"occamy"
)

const (
	hosts   = 8
	rate    = 10e9
	buffer  = 512 << 10
	ecnMark = 200 << 10
)

type result struct {
	qct         occamy.Duration
	hpDrops     int64
	expelled    int64
	lpHeldBytes int
}

func run(policy occamy.Policy, occCfg *occamy.OccamyConfig) result {
	rates := make([]float64, hosts)
	for i := range rates {
		rates[i] = rate
	}
	net := occamy.SingleSwitch(occamy.SingleSwitchConfig{
		HostRates: rates,
		LinkDelay: 5 * occamy.Microsecond,
		Switch: occamy.SwitchConfig{
			ClassesPerPort:    2,
			BufferBytes:       buffer,
			Policy:            policy,
			Occamy:            occCfg,
			ECNThresholdBytes: ecnMark,
			Scheduler:         occamy.SchedSP,
		},
		Seed: 1,
	})
	sw := net.Switches[0]

	var res result
	sw.DropHook = func(p *occamy.Packet, q int, r occamy.DropReason) {
		switch {
		case r == occamy.DropExpelled:
			res.expelled++
		case p.Priority == 0:
			res.hpDrops++
		}
	}

	// Low-priority long-lived flows from hosts 6 and 7 to host 0: they
	// build up buffer, then the strict-priority scheduler starves them
	// whenever high-priority traffic appears.
	for i := 0; i < 14; i++ {
		net.StartFlow(0, occamy.NodeID(6+i%2), 0, 1<<40, occamy.FlowOptions{
			Priority: 1, ECN: true,
			Transport: occamy.TransportOptions{DupThresh: 3},
		})
	}

	// After the LP flows settle, a high-priority incast: hosts 1..5
	// send 40KB each to host 0 (800KB total, far beyond the free buffer).
	// 4 flows per server mimic the paper's incast degree.
	start := 10 * occamy.Millisecond
	var qct occamy.Duration
	const nFlows = 20
	remaining := nFlows
	for s := 0; s < nFlows; s++ {
		net.StartFlow(start, occamy.NodeID(1+s%5), 0, 40_000, occamy.FlowOptions{
			Priority: 0, ECN: true,
			Transport: occamy.TransportOptions{DupThresh: 3},
			OnComplete: func(fct occamy.Duration) {
				remaining--
				if remaining == 0 {
					qct = net.Eng.Now() - start
				}
			},
		})
	}
	net.Eng.RunUntil(start + 200*occamy.Millisecond)

	// Snapshot how much buffer the LP class still holds (queue index
	// 2*port+1 is the LP class of each port; port 0 is the receiver).
	res.lpHeldBytes = sw.QueueLen(0*2 + 1)
	res.qct = qct
	return res
}

func main() {
	occCfg := occamy.OccamyConfig{Alpha: 8, AlphaByPrio: map[int]float64{0: 8, 1: 1}}
	dt := occamy.NewDT(1)
	dt.AlphaByPrio = map[int]float64{0: 8, 1: 1}

	fmt.Println("high-priority incast vs low-priority hostage buffer (SP scheduling)")
	fmt.Printf("%-8s %-12s %-10s %-10s\n", "policy", "qct", "hp_drops", "expelled")
	for _, c := range []struct {
		name string
		run  func() result
	}{
		{"DT", func() result { return run(dt, nil) }},
		{"Occamy", func() result { return run(occamy.NewOccamy(occCfg), &occCfg) }},
	} {
		r := c.run()
		fmt.Printf("%-8s %-12v %-10d %-10d\n", c.name, r.qct, r.hpDrops, r.expelled)
	}
	fmt.Println("\nshape to observe: DT drops high-priority packets while the")
	fmt.Println("low-priority queues hold buffer they cannot drain; Occamy expels")
	fmt.Println("the hostage buffer and completes the incast faster.")
}
