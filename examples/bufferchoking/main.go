// Buffer choking (the §3.1 / Fig 15 scenario): low-priority long-lived
// flows hold most of the shared buffer while strict-priority scheduling
// starves their queues. When a high-priority incast arrives, a
// non-preemptive BM cannot reclaim the hostage buffer; Occamy expels it.
//
// The registered "buffer-choking" spec wires the whole setup (SP
// scheduler, 14 LP hostage flows, the HP incast, per-priority α); the
// sweep below runs it against DT and Occamy and prints the evidence:
// high-priority QCT, drops, and expulsions side by side.
//
// Run with: go run ./examples/bufferchoking
package main

import (
	"fmt"
	"os"

	"occamy"
)

func main() {
	sc, ok := occamy.GetScenario("buffer-choking")
	if !ok {
		fmt.Fprintln(os.Stderr, "buffer-choking not registered")
		os.Exit(1)
	}
	spec := sc.Spec
	spec.Metrics = []string{"policy", "qct_avg_ms", "qct_p99_ms", "rtos",
		"drops", "expelled", "max_occ_pct"}
	tab, err := occamy.RunScenarioSweep(spec, []occamy.SweepAxis{
		{Path: "policy.kind", Values: []string{"dt", "occamy"}},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tab.Fprint(os.Stdout)
	fmt.Println("\nshape to observe: DT drops high-priority packets while the")
	fmt.Println("low-priority queues hold buffer they cannot drain; Occamy expels")
	fmt.Println("the hostage buffer and completes the incast faster.")
}
