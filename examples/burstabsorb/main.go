// Burst absorption (the Fig 12 scenario): a long-lived flow congests
// one port; bursts of increasing size target another. We sweep α for
// both DT and Occamy and report each policy's burst loss rate — showing
// the paper's headline that Occamy absorbs larger bursts and, unlike
// DT, *improves* as α grows.
//
// Run with: go run ./examples/burstabsorb
package main

import (
	"fmt"

	"occamy"
)

const (
	chipPorts = 8
	portRate  = 10e9
	buffer    = 1_200_000
	pktSize   = 1000
)

// run injects the long-lived + burst pattern through a fresh switch and
// returns the burst traffic's loss fraction.
func run(policy occamy.Policy, occCfg *occamy.OccamyConfig, burstBytes int64) float64 {
	eng := occamy.NewEngine()
	sw := occamy.NewSwitch("p4", eng, occamy.SwitchConfig{
		Ports:          chipPorts,
		ClassesPerPort: 1,
		BufferBytes:    buffer,
		Policy:         policy,
		Occamy:         occCfg,
	})
	for i := 0; i < chipPorts; i++ {
		sw.AttachPort(i, portRate, 0, func(*occamy.Packet) {})
	}
	sw.SetRouter(func(p *occamy.Packet) int { return int(p.Dst) })

	var burstDrops, burstSent int64
	sw.DropHook = func(p *occamy.Packet, q int, r occamy.DropReason) {
		if p.FlowID == 2 {
			burstDrops++
		}
	}
	var id uint64
	inject := func(dst occamy.NodeID, flow uint64) {
		id++
		sw.Receive(&occamy.Packet{ID: id, FlowID: flow, Dst: dst, Size: pktSize})
	}
	// Long-lived at 2× drain into port 0; give it time to reach steady
	// state, then burst at 100G into port 1.
	gap := occamy.Duration(float64(pktSize*8) / (2 * portRate) * float64(occamy.Second))
	tk := eng.Every(0, gap, func() { inject(0, 1) })
	burstAt := occamy.Duration(1.3 * float64(buffer) * 8 / portRate * float64(occamy.Second))
	burstGap := occamy.Duration(float64(pktSize*8) / 100e9 * float64(occamy.Second))
	n := burstBytes / pktSize
	for i := int64(0); i < n; i++ {
		eng.At(burstAt+occamy.Duration(i)*burstGap, func() { inject(1, 2); burstSent++ })
	}
	eng.RunUntil(burstAt + occamy.Duration(n)*burstGap + 300*occamy.Microsecond)
	tk.Stop()
	if burstSent == 0 {
		return 0
	}
	return float64(burstDrops) / float64(burstSent)
}

func main() {
	fmt.Println("burst loss rate (long-lived queue at steady state, burst at 100G)")
	fmt.Printf("%-6s %-9s %-12s %-12s\n", "alpha", "burst_KB", "occamy", "dt")
	for _, alpha := range []float64{1, 2, 4} {
		for size := int64(300_000); size <= 800_000; size += 100_000 {
			cfg := occamy.OccamyConfig{Alpha: alpha}
			occLoss := run(occamy.NewOccamy(cfg), &cfg, size)
			dtLoss := run(occamy.NewDT(alpha), nil, size)
			fmt.Printf("%-6g %-9d %-12.4f %-12.4f\n", alpha, size/1000, occLoss, dtLoss)
		}
	}
	fmt.Println("\nshape to observe: Occamy's lossless range widens with alpha;")
	fmt.Println("DT's shrinks (its reserve vanishes and it cannot reclaim buffer).")
}
