// Burst absorption (the Fig 12 scenario) as a declarative sweep: a
// long-lived flow congests one port; bursts of increasing size target
// another. Sweeping policy kind × α × burst size over the registered
// "burst-absorb" spec reports each grid point's burst loss — the paper's
// headline that Occamy absorbs larger bursts and, unlike DT, *improves*
// as α grows.
//
// The pre-scenario version of this example hand-wired the switch and
// injection in ~80 lines; the sweep below is the whole program.
//
// Run with: go run ./examples/burstabsorb
package main

import (
	"fmt"
	"os"

	"occamy"
)

func main() {
	sc, ok := occamy.GetScenario("burst-absorb")
	if !ok {
		fmt.Fprintln(os.Stderr, "burst-absorb not registered")
		os.Exit(1)
	}
	tab, err := occamy.RunScenarioSweep(sc.Spec, []occamy.SweepAxis{
		{Path: "policy.kind", Values: []string{"occamy", "dt"}},
		{Path: "policy.alpha", Values: []string{"1", "2", "4"}},
		{Path: "workloads[1].bytes", Values: []string{"300000", "500000", "800000"}},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tab.Fprint(os.Stdout)
	fmt.Println("\nshape to observe: Occamy's lossless range widens with alpha;")
	fmt.Println("DT's shrinks (its reserve vanishes and it cannot reclaim buffer).")
}
