// Leaf–spine fabric demo (the §6.4 scenario at laptop scale): web-search
// background at 60% load plus incast queries across a 2×2×4 leaf–spine
// with ECMP and DCTCP. Compares DT, ABM, Occamy, and Pushout on query
// completion time.
//
// Run with: go run ./examples/leafspine
package main

import (
	"fmt"

	"occamy"
)

const (
	spines       = 2
	leaves       = 2
	hostsPerLeaf = 4
	linkRate     = 10e9
	linkDelay    = 10 * occamy.Microsecond
	queries      = 12
)

type line struct {
	name   string
	policy func() (occamy.Policy, *occamy.OccamyConfig)
}

func main() {
	lines := []line{
		{"Occamy", func() (occamy.Policy, *occamy.OccamyConfig) {
			cfg := occamy.OccamyConfig{Alpha: 8}
			return occamy.NewOccamy(cfg), &cfg
		}},
		{"ABM", func() (occamy.Policy, *occamy.OccamyConfig) { return occamy.NewABM(2), nil }},
		{"DT", func() (occamy.Policy, *occamy.OccamyConfig) { return occamy.NewDT(1), nil }},
		{"Pushout", func() (occamy.Policy, *occamy.OccamyConfig) { return occamy.NewPushout(), nil }},
	}
	fmt.Println("leaf-spine 2x2x4, web-search bg 90%, incast queries (80% of buffer)")
	fmt.Printf("%-8s %-12s %-12s %-10s\n", "policy", "avg_qct", "p99_qct", "bg_avg_fct")
	for _, l := range lines {
		avg, p99, bg := runFabric(l)
		fmt.Printf("%-8s %-12v %-12v %-10v\n", l.name, avg, p99, bg)
	}
	fmt.Println("\nshape to observe: the preemptive policies (Occamy, Pushout) beat the")
	fmt.Println("non-preemptive ones on average QCT; at this tiny scale single runs are")
	fmt.Println("noisy — internal/experiments averages many queries per point.")
}

func runFabric(l line) (avgQCT, p99QCT, bgAvg occamy.Duration) {
	mk := func() occamy.SwitchConfig {
		policy, occCfg := l.policy()
		return occamy.SwitchConfig{
			ClassesPerPort:    1,
			BufferBytes:       300 << 10,
			Policy:            policy,
			Occamy:            occCfg,
			ECNThresholdBytes: 60 << 10,
		}
	}
	net := occamy.LeafSpine(occamy.LeafSpineConfig{
		Spines: spines, Leaves: leaves, HostsPerLeaf: hostsPerLeaf,
		HostLinkBps: linkRate, SpineLinkBps: linkRate,
		LinkDelay:   linkDelay,
		LeafSwitch:  mk(),
		SpineSwitch: mk(),
		Seed:        7,
	})

	hosts := make([]occamy.NodeID, leaves*hostsPerLeaf)
	for i := range hosts {
		hosts[i] = occamy.NodeID(i)
	}
	var bgCol, qCol occamy.Collector
	bg := &occamy.Background{
		Net: net, Hosts: hosts, Load: 0.9, LinkBps: linkRate,
		Dist: occamy.WebSearchCDF(), ECN: true, Collector: &bgCol,
		OneWayBase: 4 * linkDelay,
	}
	q := &occamy.Incast{
		Net: net, Servers: hosts, RandomClient: true,
		Fanout: 6, QuerySize: int64(0.8 * 300 * 1024),
		Interval: 2 * occamy.Millisecond, ECN: true, Collector: &qCol,
		LinkBps: linkRate, OneWayBase: 4 * linkDelay,
	}
	horizon := occamy.Duration(queries) * 2 * occamy.Millisecond
	bg.Start(0, horizon)
	q.Start(occamy.Millisecond, horizon)
	net.Eng.RunUntil(horizon + 100*occamy.Millisecond)
	bg.Stop()
	q.Stop()
	return qCol.MeanFCT(), qCol.P99FCT(), bgCol.MeanFCT()
}
