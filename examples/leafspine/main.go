// Leaf–spine fabric demo (the §6.4 scenario at laptop scale): web-search
// background at 90% load plus incast queries across a 2×2×4 leaf–spine
// with ECMP and DCTCP. Sweeping the registered "leafspine-demo" spec
// across the policy line-up compares DT, ABM, Occamy, and Pushout on
// query completion time — one row per policy.
//
// Run with: go run ./examples/leafspine
package main

import (
	"fmt"
	"os"

	"occamy"
)

func main() {
	sc, ok := occamy.GetScenario("leafspine-demo")
	if !ok {
		fmt.Fprintln(os.Stderr, "leafspine-demo not registered")
		os.Exit(1)
	}
	tab, err := occamy.RunScenarioSweep(sc.Spec, []occamy.SweepAxis{
		{Path: "policy.kind", Values: []string{"occamy", "abm", "dt", "pushout"}},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tab.Fprint(os.Stdout)
	fmt.Println("\nshape to observe: the preemptive policies (Occamy, Pushout) beat the")
	fmt.Println("non-preemptive ones on average QCT; at this tiny scale single runs are")
	fmt.Println("noisy — internal/experiments averages many queries per point.")
}
