module occamy

go 1.24
