package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prometheus text exposition (text format version 0.0.4), hand-rolled
// on the stdlib so the binaries stay dependency-free. A Prom accumulates
// metric families in the order they are added — callers keep output
// deterministic by adding families (and label permutations) in a fixed,
// sorted order — and WriteTo renders the whole page at once.
//
// Histogram families follow the Prometheus convention exactly:
// cumulative `<name>_bucket{le="..."}` series ending in le="+Inf", plus
// `<name>_sum` (seconds) and `<name>_count`, with the +Inf bucket equal
// to the count by construction (both derive from one per-bucket counts
// snapshot, so the invariant holds even while writers race the scrape).

// PromContentType is the Content-Type a /metrics handler should set.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one name="value" exposition label.
type Label struct {
	Name, Value string
}

// PromSample is one sample line within a family.
type PromSample struct {
	Labels []Label
	Value  float64
}

// Prom accumulates an exposition page.
type Prom struct {
	b strings.Builder
}

// Counter adds a counter family. Counter names should end in _total.
func (p *Prom) Counter(name, help string, samples ...PromSample) {
	p.family(name, "counter", help, samples)
}

// Gauge adds a gauge family.
func (p *Prom) Gauge(name, help string, samples ...PromSample) {
	p.family(name, "gauge", help, samples)
}

// HistogramSub is one labeled sub-histogram of a histogram family.
type HistogramSub struct {
	Labels []Label
	H      *Histogram
}

// HistogramFamily adds one histogram family with one or more labeled
// sub-histograms (e.g. one per endpoint) under a single HELP/TYPE
// header, as the format requires. Durations are exposed in seconds (the
// Prometheus base unit). For each sub, the +Inf bucket and _count derive
// from the same per-bucket snapshot, so +Inf == _count holds exactly
// even while writers race the scrape.
func (p *Prom) HistogramFamily(name, help string, subs ...HistogramSub) {
	p.header(name, "histogram", help)
	for _, sub := range subs {
		bounds, counts := sub.H.Buckets()
		var cum uint64
		for i, c := range counts {
			cum += c
			le := "+Inf"
			if i < len(bounds) {
				le = formatFloat(bounds[i].Seconds())
			}
			p.sample(name+"_bucket", append(append([]Label(nil), sub.Labels...), Label{"le", le}), float64(cum))
		}
		p.sample(name+"_sum", sub.Labels, sub.H.Sum().Seconds())
		p.sample(name+"_count", sub.Labels, float64(cum))
	}
}

func (p *Prom) family(name, typ, help string, samples []PromSample) {
	p.header(name, typ, help)
	for _, s := range samples {
		p.sample(name, s.Labels, s.Value)
	}
}

func (p *Prom) header(name, typ, help string) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n", name, escapeHelp(help))
	fmt.Fprintf(&p.b, "# TYPE %s %s\n", name, typ)
}

func (p *Prom) sample(name string, labels []Label, v float64) {
	p.b.WriteString(name)
	if len(labels) > 0 {
		p.b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				p.b.WriteByte(',')
			}
			fmt.Fprintf(&p.b, `%s="%s"`, l.Name, escapeLabel(l.Value))
		}
		p.b.WriteByte('}')
	}
	p.b.WriteByte(' ')
	p.b.WriteString(formatFloat(v))
	p.b.WriteByte('\n')
}

// WriteTo renders the accumulated page.
func (p *Prom) WriteTo(w io.Writer) (int64, error) {
	n, err := io.WriteString(w, p.b.String())
	return int64(n), err
}

// String returns the accumulated page (tests).
func (p *Prom) String() string { return p.b.String() }

// formatFloat renders a sample value: integers without an exponent,
// everything else in Go's shortest round-trip form.
func formatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format. The
// format defines exactly three escapes — backslash, double quote, and
// newline — so this deliberately avoids %q, which would emit escapes
// (\t, \xNN) the format does not define.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// escapeHelp escapes a HELP text: backslash and newline only.
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}
