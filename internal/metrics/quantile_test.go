package metrics

import (
	"math"
	"testing"

	"occamy/internal/sim"
)

// Property tests for the quantile layer: the tail tables are only as
// trustworthy as Percentile, so its invariants are checked over random
// sample sets, not hand-picked vectors.

// randomSamples fills a collector with n random transfers (heavy-tailed
// sizes, exponential FCTs, some without an ideal).
func randomSamples(rng *sim.Rand, n int) *Collector {
	c := &Collector{}
	for i := 0; i < n; i++ {
		size := int64(math.Exp(rng.Float64()*16)) + 1 // ~1B .. ~9MB
		fct := sim.Duration(rng.Exp(2e6)) + 1
		ideal := sim.Duration(0)
		if rng.Float64() < 0.9 {
			ideal = fct/sim.Duration(1+rng.Intn(40)) + 1
		}
		c.Add(size, fct, ideal)
	}
	return c
}

// Percentile must be monotone in q over a dense grid including
// out-of-range values (clamped), with exact extremes at q=0 and q=1 —
// complements the pairwise quick.Check in metrics_test.go.
func TestPercentileMonotoneGrid(t *testing.T) {
	rng := sim.NewRand(7)
	grid := []float64{-0.5, 0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1, 1.5}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(500)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64()*1e6 - 5e5
		}
		prev := math.Inf(-1)
		for _, q := range grid {
			got := Percentile(v, q)
			if got < prev {
				t.Fatalf("trial %d: Percentile not monotone: q=%g gave %g after %g", trial, q, got, prev)
			}
			prev = got
		}
		// Extremes: q=0 is the min, q=1 the max.
		lo, hi := v[0], v[0]
		for _, x := range v {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		if Percentile(v, 0) != lo || Percentile(v, 1) != hi {
			t.Fatalf("trial %d: extremes wrong: p0=%g want %g, p100=%g want %g",
				trial, Percentile(v, 0), lo, Percentile(v, 1), hi)
		}
	}
}

// The tail ordering the paper's headline claims rest on: on any random
// sample set, p999 >= p99 >= p90 >= p50 >= p25 for both FCTs and
// slowdowns, and the quantile accessors agree with the legacy P99
// helpers exactly.
func TestTailOrdering(t *testing.T) {
	rng := sim.NewRand(42)
	for trial := 0; trial < 100; trial++ {
		c := randomSamples(rng, 1+rng.Intn(2000))
		row := c.QuantileRow("all", TailQuantiles)
		for i := 1; i < len(TailQuantiles); i++ {
			if row.FCT[i] < row.FCT[i-1] {
				t.Fatalf("trial %d: FCT quantiles out of order at q=%g: %v", trial, TailQuantiles[i], row.FCT)
			}
			if row.Slowdown[i] < row.Slowdown[i-1] {
				t.Fatalf("trial %d: slowdown quantiles out of order at q=%g: %v", trial, TailQuantiles[i], row.Slowdown)
			}
		}
		if got, want := c.FCTQuantile(0.99), c.P99FCT(); got != want {
			t.Fatalf("trial %d: FCTQuantile(0.99)=%v != P99FCT()=%v", trial, got, want)
		}
		if got, want := c.SlowdownQuantile(0.99), c.P99Slowdown(); got != want {
			t.Fatalf("trial %d: SlowdownQuantile(0.99)=%v != P99Slowdown()=%v", trial, got, want)
		}
	}
}

// TailRows partitions the samples: the size buckets are disjoint and
// exhaustive (counts sum to the "all" row), every bucket's quantiles
// sit inside the global [min, max], and the row labels are stable.
func TestTailRowsPartition(t *testing.T) {
	rng := sim.NewRand(1234)
	for trial := 0; trial < 50; trial++ {
		c := randomSamples(rng, 1+rng.Intn(3000))
		rows := c.TailRows(DefaultSizeBuckets, TailQuantiles)
		if want := 2 + len(DefaultSizeBuckets); len(rows) != want {
			t.Fatalf("got %d rows, want %d", len(rows), want)
		}
		if rows[0].Label != "all" {
			t.Fatalf("first row label %q", rows[0].Label)
		}
		sum := 0
		for _, r := range rows[1:] {
			sum += r.Count
		}
		if sum != rows[0].Count || rows[0].Count != c.Count() {
			t.Fatalf("bucket counts %d do not sum to all=%d (collector %d)", sum, rows[0].Count, c.Count())
		}
		gloMin, gloMax := c.FCTQuantile(0), c.FCTQuantile(1)
		for _, r := range rows[1:] {
			if r.Count == 0 {
				continue
			}
			for i := range r.FCT {
				if r.FCT[i] < gloMin || r.FCT[i] > gloMax {
					t.Fatalf("bucket %q quantile %v outside global range [%v, %v]", r.Label, r.FCT[i], gloMin, gloMax)
				}
			}
		}
	}
	want := []string{"all", "<10KB", "10KB-100KB", "100KB-1MB", ">=1MB"}
	rows := (&Collector{}).TailRows(DefaultSizeBuckets, TailQuantiles)
	for i, r := range rows {
		if r.Label != want[i] {
			t.Fatalf("row %d label %q, want %q", i, r.Label, want[i])
		}
		if r.Count != 0 {
			t.Fatalf("empty collector produced count %d", r.Count)
		}
	}
}
