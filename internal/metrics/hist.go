package metrics

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram is a concurrency-safe latency histogram with logarithmic
// buckets. Record is lock-free (atomic adds only), so it can sit on hot
// request paths; quantiles are estimated by linear interpolation inside
// the matched bucket, which bounds the relative error by the bucket
// growth factor (~1.5× here — plenty for SLO observability, where the
// question is "is p99 1ms or 100ms", not nanosecond accounting).
//
// The zero value is NOT ready to use; call NewHistogram.
type Histogram struct {
	bounds []time.Duration // upper bound of each bucket, ascending
	counts []atomic.Uint64 // len(bounds)+1: last bucket is overflow
	count  atomic.Uint64
	sum    atomic.Int64 // nanoseconds
}

// histGrowth is the geometric bucket growth factor.
const histGrowth = 1.5

// NewHistogram builds a histogram covering [min, max] with geometric
// buckets. Durations below min land in the first bucket, above max in
// the overflow bucket (whose quantile reports as max).
func NewHistogram(min, max time.Duration) *Histogram {
	if min <= 0 {
		min = time.Microsecond
	}
	if max <= min {
		max = min * 2
	}
	var bounds []time.Duration
	for b := min; b < max; b = time.Duration(float64(b) * histGrowth) {
		bounds = append(bounds, b)
	}
	bounds = append(bounds, max)
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// NewLatencyHistogram builds the standard request-latency histogram:
// 10µs resolution up to 10 minutes, sized for HTTP handler and
// submit-to-done times alike.
func NewLatencyHistogram() *Histogram {
	return NewHistogram(10*time.Microsecond, 10*time.Minute)
}

// bucketOf returns the index of the bucket holding d.
func (h *Histogram) bucketOf(d time.Duration) int {
	// Binary search over the ascending bounds.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if d <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo // == len(bounds) for overflow
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[h.bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the average observation; 0 when empty.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / int64(n))
}

// Quantile estimates the q-quantile (0..1). The estimate interpolates
// linearly within the matched bucket; an empty histogram reports 0.
// Concurrent Records may skew a snapshot by the handful of observations
// landing mid-walk — fine for monitoring, which is the intended use.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if c == 0 {
			continue
		}
		if cum+c >= rank || i == len(h.counts)-1 {
			lo := time.Duration(0)
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[len(h.bounds)-1]
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			frac := (rank - cum) / c
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// Buckets snapshots the per-bucket observation counts for exposition.
// It returns the ascending upper bounds (shared, not copied — callers
// must not mutate) and one count per bucket plus a final overflow count,
// so len(counts) == len(bounds)+1. The snapshot is taken bucket-by-
// bucket; concurrent Records may land between loads, which Prometheus
// semantics tolerate (the next scrape catches up).
func (h *Histogram) Buckets() (bounds []time.Duration, counts []uint64) {
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return h.bounds, counts
}

// Sum returns the running total of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Snapshot reduces the histogram to the standard SLO summary.
func (h *Histogram) Snapshot() HistSnapshot {
	return HistSnapshot{
		Count:  h.count.Load(),
		MeanMs: durMs(h.Mean()),
		P50Ms:  durMs(h.Quantile(0.50)),
		P90Ms:  durMs(h.Quantile(0.90)),
		P99Ms:  durMs(h.Quantile(0.99)),
		P999Ms: durMs(h.Quantile(0.999)),
	}
}

// HistSnapshot is a point-in-time latency summary in milliseconds
// (floats: trivially comparable in CI assertions and jq expressions).
type HistSnapshot struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
}

// durMs converts to milliseconds, rounded to 3 decimals so JSON output
// stays readable.
func durMs(d time.Duration) float64 {
	return math.Round(float64(d)/float64(time.Millisecond)*1000) / 1000
}
