package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"occamy/internal/sim"
)

func TestPercentile(t *testing.T) {
	v := []float64{5, 1, 3, 2, 4}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Percentile(v, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile != 0")
	}
}

func TestPercentileInterpolates(t *testing.T) {
	v := []float64{0, 10}
	if got := Percentile(v, 0.99); math.Abs(got-9.9) > 1e-9 {
		t.Fatalf("p99 of {0,10} = %v, want 9.9", got)
	}
}

// Property: percentile is monotone in q and bounded by min/max.
func TestPercentileMonotone(t *testing.T) {
	f := func(raw []uint16, q1, q2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		v := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, x := range raw {
			v[i] = float64(x)
			lo = math.Min(lo, v[i])
			hi = math.Max(hi, v[i])
		}
		a := float64(q1%101) / 100
		b := float64(q2%101) / 100
		if a > b {
			a, b = b, a
		}
		pa, pb := Percentile(v, a), Percentile(v, b)
		return pa <= pb+1e-9 && pa >= lo-1e-9 && pb <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCollectorSlowdown(t *testing.T) {
	var c Collector
	c.Add(1000, 20*sim.Microsecond, 10*sim.Microsecond) // slowdown 2
	c.Add(1000, 40*sim.Microsecond, 10*sim.Microsecond) // slowdown 4
	if got := c.MeanSlowdown(); math.Abs(got-3) > 1e-9 {
		t.Fatalf("MeanSlowdown = %v, want 3", got)
	}
	if got := c.MeanFCT(); got != 30*sim.Microsecond {
		t.Fatalf("MeanFCT = %v, want 30µs", got)
	}
}

func TestSlowdownClampsAtOne(t *testing.T) {
	var c Collector
	c.Add(1000, 5*sim.Microsecond, 10*sim.Microsecond)
	if got := c.MeanSlowdown(); got != 1 {
		t.Fatalf("slowdown below ideal = %v, want clamp to 1", got)
	}
}

func TestCollectorFilterSmall(t *testing.T) {
	var c Collector
	c.Add(50_000, sim.Millisecond, 0)
	c.Add(500_000, sim.Millisecond, 0)
	small := c.Small(100_000)
	if small.Count() != 1 || small.Samples()[0].Size != 50_000 {
		t.Fatalf("Small filter kept %d samples", small.Count())
	}
}

func TestP99FCT(t *testing.T) {
	var c Collector
	for i := 1; i <= 100; i++ {
		c.Add(1, sim.Duration(i)*sim.Millisecond, 0)
	}
	got := c.P99FCT()
	if got < 99*sim.Millisecond || got > 100*sim.Millisecond {
		t.Fatalf("P99FCT = %v, want ~99ms", got)
	}
}

func TestEmpiricalCDF(t *testing.T) {
	pts := EmpiricalCDF([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0].Value != 1 || pts[2].Value != 3 || pts[2].Cum != 1 {
		t.Fatalf("pts = %+v", pts)
	}
}

func TestCDFQuantiles(t *testing.T) {
	v := make([]float64, 101)
	for i := range v {
		v[i] = float64(i)
	}
	qs := CDFQuantiles(v, 0.5, 0.99)
	if math.Abs(qs[0].Value-50) > 1e-9 || math.Abs(qs[1].Value-99) > 1e-9 {
		t.Fatalf("quantiles = %+v", qs)
	}
}

func TestEmptyCollector(t *testing.T) {
	var c Collector
	if c.MeanFCT() != 0 || c.P99FCT() != 0 || c.MeanSlowdown() != 0 {
		t.Fatal("empty collector stats not zero")
	}
}
