package metrics

import (
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// parsePage splits an exposition page into sample lines keyed by the
// full series name (including the label block) and collects the HELP /
// TYPE headers keyed by family name. It fails the test on any line that
// is neither a comment nor `series value`.
func parsePage(t *testing.T, page string) (samples map[string]float64, types map[string]string) {
	t.Helper()
	samples = make(map[string]float64)
	types = make(map[string]string)
	for _, line := range strings.Split(page, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line: %q", line)
		}
		// Sample line: the value is everything after the last space
		// OUTSIDE a label block (label values may contain spaces).
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		series, val := line[:i], line[i+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		if _, dup := samples[series]; dup {
			t.Fatalf("duplicate series %q", series)
		}
		samples[series] = v
	}
	return samples, types
}

// TestPromPageShape pins the exposition basics: counters and gauges
// render headers plus one line per sample, integers render without an
// exponent, and labels are comma-joined inside one brace block.
func TestPromPageShape(t *testing.T) {
	var p Prom
	p.Counter("occamy_widgets_total", "Widgets made.",
		PromSample{Labels: []Label{{"kind", "a"}}, Value: 3},
		PromSample{Labels: []Label{{"kind", "b"}}, Value: 0},
	)
	p.Gauge("occamy_depth", "Queue depth.", PromSample{Value: 17})
	page := p.String()

	samples, types := parsePage(t, page)
	if types["occamy_widgets_total"] != "counter" || types["occamy_depth"] != "gauge" {
		t.Fatalf("TYPE headers wrong: %v", types)
	}
	if samples[`occamy_widgets_total{kind="a"}`] != 3 {
		t.Fatalf("labeled counter sample missing: %v", samples)
	}
	if samples[`occamy_widgets_total{kind="b"}`] != 0 {
		t.Fatal("zero-valued sample must still be exposed")
	}
	if samples["occamy_depth"] != 17 {
		t.Fatalf("bare gauge sample missing: %v", samples)
	}
	if strings.Contains(page, "e+") {
		t.Fatalf("integer values must not use exponents:\n%s", page)
	}
}

// TestPromHistogramFamily pins the histogram contract: buckets are
// cumulative and monotone, the +Inf bucket equals _count exactly, _sum
// is the observation total in seconds, and every sub keeps its labels.
func TestPromHistogramFamily(t *testing.T) {
	h := NewHistogram(time.Millisecond, time.Second)
	for i := 0; i < 100; i++ {
		h.Record(time.Duration(i) * 20 * time.Millisecond) // spans into overflow
	}
	var p Prom
	p.HistogramFamily("occamy_lat_seconds", "Latency.",
		HistogramSub{Labels: []Label{{"endpoint", "POST /v1/runs"}}, H: h})
	page := p.String()

	var prev float64
	var bucketLines, infSeen int
	var infVal float64
	for _, line := range strings.Split(page, "\n") {
		if !strings.HasPrefix(line, "occamy_lat_seconds_bucket{") {
			continue
		}
		bucketLines++
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("buckets must be cumulative (monotone non-decreasing): %q after %v", line, prev)
		}
		prev = v
		if !strings.Contains(line, `endpoint="POST /v1/runs"`) {
			t.Fatalf("sub labels dropped from bucket line %q", line)
		}
		if strings.Contains(line, `le="+Inf"`) {
			infSeen++
			infVal = v
		}
	}
	if bucketLines == 0 {
		t.Fatal("no bucket lines rendered")
	}
	if infSeen != 1 {
		t.Fatalf("want exactly one +Inf bucket, got %d", infSeen)
	}
	samples, types := parsePage(t, page)
	if types["occamy_lat_seconds"] != "histogram" {
		t.Fatalf("TYPE = %q, want histogram", types["occamy_lat_seconds"])
	}
	count := samples[`occamy_lat_seconds_count{endpoint="POST /v1/runs"}`]
	if count != 100 {
		t.Fatalf("_count = %v, want 100", count)
	}
	if infVal != count {
		t.Fatalf("+Inf bucket %v != _count %v", infVal, count)
	}
	wantSum := h.Sum().Seconds()
	if sum := samples[`occamy_lat_seconds_sum{endpoint="POST /v1/runs"}`]; sum != wantSum {
		t.Fatalf("_sum = %v, want %v", sum, wantSum)
	}
}

// TestPromHistogramRacingWriters verifies +Inf == _count holds even
// while Records race the render: both derive from one snapshot.
func TestPromHistogramRacingWriters(t *testing.T) {
	h := NewLatencyHistogram()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					h.Record(3 * time.Millisecond)
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var p Prom
		p.HistogramFamily("x_seconds", "x", HistogramSub{H: h})
		samples, _ := parsePage(t, p.String())
		if inf, count := samples[`x_seconds_bucket{le="+Inf"}`], samples["x_seconds_count"]; inf != count {
			t.Fatalf("render %d: +Inf %v != _count %v under racing writers", i, inf, count)
		}
	}
	close(stop)
	wg.Wait()
}

// TestPromEscaping pins the three defined label escapes — and nothing
// else (no %q-style \t or \xNN, which scrapers reject).
func TestPromEscaping(t *testing.T) {
	var p Prom
	p.Gauge("g", "line one\nline two", PromSample{
		Labels: []Label{{"v", "a\\b\"c\nd\te"}},
		Value:  1,
	})
	page := p.String()
	if !strings.Contains(page, `v="a\\b\"c\nd`+"\t"+`e"`) {
		t.Fatalf("label escaping wrong:\n%s", page)
	}
	if !strings.Contains(page, `# HELP g line one\nline two`) {
		t.Fatalf("help escaping wrong:\n%s", page)
	}
}
