package metrics

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewLatencyHistogram()
	// A known uniform population: 1..1000 ms.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", h.Count())
	}
	// Bucketed quantiles are approximate: the growth factor bounds the
	// relative error, so assert within ±growth.
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Millisecond},
		{0.90, 900 * time.Millisecond},
		{0.99, 990 * time.Millisecond},
	} {
		got := h.Quantile(tc.q)
		lo := time.Duration(float64(tc.want) / histGrowth)
		hi := time.Duration(float64(tc.want) * histGrowth)
		if got < lo || got > hi {
			t.Errorf("q%.2f = %v, want within [%v, %v]", tc.q, got, lo, hi)
		}
	}
	mean := h.Mean()
	if mean < 450*time.Millisecond || mean > 550*time.Millisecond {
		t.Errorf("mean = %v, want ~500ms", mean)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := NewHistogram(time.Millisecond, time.Second)
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Error("empty histogram must report zeros")
	}
	h.Record(-5 * time.Second) // clamped to 0
	h.Record(0)
	h.Record(time.Nanosecond) // below min: first bucket
	h.Record(time.Hour)       // above max: overflow bucket
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	// The overflow bucket caps at the histogram max.
	if got := h.Quantile(1); got > time.Second {
		t.Errorf("q1.0 = %v, want <= histogram max", got)
	}
	// Out-of-range q clamps.
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Error("out-of-range quantiles must clamp to [0,1]")
	}
}

func TestHistogramMonotoneQuantiles(t *testing.T) {
	h := NewLatencyHistogram()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		h.Record(time.Duration(r.ExpFloat64() * float64(10*time.Millisecond)))
	}
	prev := time.Duration(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		cur := h.Quantile(q)
		if cur < prev {
			t.Fatalf("quantiles not monotone: q%.2f=%v < %v", q, cur, prev)
		}
		prev = cur
	}
}

// Record must be safe (and the counters exact) under concurrency — it
// sits on the service's HTTP hot path.
func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewLatencyHistogram()
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(g*per+i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*per)
	}
	var bucketSum uint64
	for i := range h.counts {
		bucketSum += h.counts[i].Load()
	}
	if bucketSum != goroutines*per {
		t.Fatalf("bucket sum = %d, want %d", bucketSum, goroutines*per)
	}
	s := h.Snapshot()
	if s.Count != goroutines*per || s.P50Ms <= 0 || s.P999Ms < s.P50Ms {
		t.Errorf("snapshot inconsistent: %+v", s)
	}
}

// Readers (Snapshot/Quantile/Mean) run lock-free against concurrent
// writers: every Histogram field is a typed atomic, the invariant the
// atomicfield analyzer guards. This test exists to fail under -race if
// anyone downgrades a field to a plain int.
func TestHistogramConcurrentReadersAndWriters(t *testing.T) {
	h := NewLatencyHistogram()
	const writers, per = 4, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := h.Snapshot()
				if s.Count > writers*per {
					t.Errorf("snapshot count %d exceeds writes %d", s.Count, writers*per)
					return
				}
				_ = h.Quantile(0.99)
				_ = h.Mean()
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(w*per+i) * time.Microsecond)
			}
		}(w)
	}
	// Writers finish first, then release the readers.
	for h.Count() < writers*per {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if h.Count() != writers*per {
		t.Fatalf("count = %d, want %d", h.Count(), writers*per)
	}
}
