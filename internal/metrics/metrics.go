// Package metrics collects flow/query completion times and turns them
// into the statistics the paper reports: averages, 99th percentiles, and
// slowdowns (actual completion time over the ideal time the transfer
// would take on an unloaded network).
package metrics

import (
	"fmt"
	"math"
	"sort"

	"occamy/internal/sim"
)

// Sample is one completed transfer.
type Sample struct {
	Size     int64
	FCT      sim.Duration
	Slowdown float64 // FCT / ideal FCT; 0 when no ideal was supplied
}

// Collector accumulates samples. The zero value is ready to use.
type Collector struct {
	samples []Sample
}

// Add records a completion. ideal may be 0 (slowdown then unavailable).
func (c *Collector) Add(size int64, fct, ideal sim.Duration) {
	s := Sample{Size: size, FCT: fct}
	if ideal > 0 {
		s.Slowdown = float64(fct) / float64(ideal)
		if s.Slowdown < 1 {
			s.Slowdown = 1 // measurement noise below ideal clamps to 1
		}
	}
	c.samples = append(c.samples, s)
}

// Count returns the number of samples.
func (c *Collector) Count() int { return len(c.samples) }

// Samples returns the raw samples (not a copy; callers must not mutate).
func (c *Collector) Samples() []Sample { return c.samples }

// Filter returns a new collector holding only samples where keep is true.
func (c *Collector) Filter(keep func(Sample) bool) *Collector {
	out := &Collector{}
	for _, s := range c.samples {
		if keep(s) {
			out.samples = append(out.samples, s)
		}
	}
	return out
}

// Small filters to flows below the given size (the paper's "small
// background flows" are < 100KB).
func (c *Collector) Small(limit int64) *Collector {
	return c.Filter(func(s Sample) bool { return s.Size < limit })
}

func (c *Collector) fcts() []float64 {
	v := make([]float64, len(c.samples))
	for i, s := range c.samples {
		v[i] = s.FCT.Seconds()
	}
	return v
}

func (c *Collector) slowdowns() []float64 {
	v := make([]float64, 0, len(c.samples))
	for _, s := range c.samples {
		if s.Slowdown > 0 {
			v = append(v, s.Slowdown)
		}
	}
	return v
}

// MeanFCT returns the average completion time.
func (c *Collector) MeanFCT() sim.Duration {
	v := c.fcts()
	if len(v) == 0 {
		return 0
	}
	return sim.Duration(Mean(v) * float64(sim.Second))
}

// P99FCT returns the 99th-percentile completion time.
func (c *Collector) P99FCT() sim.Duration {
	v := c.fcts()
	if len(v) == 0 {
		return 0
	}
	return sim.Duration(Percentile(v, 0.99) * float64(sim.Second))
}

// MeanSlowdown returns the average slowdown across samples with ideals.
func (c *Collector) MeanSlowdown() float64 { return Mean(c.slowdowns()) }

// P99Slowdown returns the 99th-percentile slowdown.
func (c *Collector) P99Slowdown() float64 { return Percentile(c.slowdowns(), 0.99) }

// FCTQuantile returns the q-quantile (0..1) completion time.
func (c *Collector) FCTQuantile(q float64) sim.Duration {
	if len(c.samples) == 0 {
		return 0
	}
	return sim.Duration(Percentile(c.fcts(), q) * float64(sim.Second))
}

// SlowdownQuantile returns the q-quantile (0..1) slowdown across
// samples with ideals; 0 when none have one.
func (c *Collector) SlowdownQuantile(q float64) float64 {
	return Percentile(c.slowdowns(), q)
}

// Tail tables
//
// The paper's evaluation turns on tail statistics: a mean hides exactly
// the p99/p999 inflation preemptive buffer management is built to fix.
// A QuantileRow is one line of the tail table — a labeled sample
// population with its completion-time and slowdown quantiles — and
// TailRows produces the standard breakdown: all samples first, then one
// row per flow-size bucket.

// TailQuantiles is the standard quantile set of the tail tables.
var TailQuantiles = []float64{0.25, 0.50, 0.90, 0.99, 0.999}

// DefaultSizeBuckets are the flow-size bucket boundaries in bytes:
// <10KB, 10KB–100KB, 100KB–1MB, ≥1MB (the paper's "small" background
// flows are <100KB).
var DefaultSizeBuckets = []int64{10_000, 100_000, 1_000_000}

// QuantileRow is one tail-table line.
type QuantileRow struct {
	Label string
	Count int
	// FCT[i] and Slowdown[i] are the quantiles at qs[i] as passed to
	// QuantileRow/TailRows.
	FCT      []sim.Duration
	Slowdown []float64
}

// QuantileRow reduces the collector to one labeled row of quantiles.
// The populations are extracted and sorted once, not per quantile.
func (c *Collector) QuantileRow(label string, qs []float64) QuantileRow {
	fcts, slows := c.fcts(), c.slowdowns()
	sort.Float64s(fcts)
	sort.Float64s(slows)
	r := QuantileRow{
		Label:    label,
		Count:    len(c.samples),
		FCT:      make([]sim.Duration, len(qs)),
		Slowdown: make([]float64, len(qs)),
	}
	for i, q := range qs {
		r.FCT[i] = sim.Duration(percentileSorted(fcts, q) * float64(sim.Second))
		r.Slowdown[i] = percentileSorted(slows, q)
	}
	return r
}

// TailRows renders the standard tail breakdown: an "all" row over every
// sample, then one row per size bucket (boundaries ascending, in
// bytes). Empty buckets are kept with Count 0 so table shapes are
// stable across runs.
func (c *Collector) TailRows(bounds []int64, qs []float64) []QuantileRow {
	rows := []QuantileRow{c.QuantileRow("all", qs)}
	prev := int64(0)
	for _, hi := range bounds {
		lo, hi := prev, hi
		sub := c.Filter(func(s Sample) bool { return s.Size >= lo && s.Size < hi })
		rows = append(rows, sub.QuantileRow(sizeRange(lo, hi), qs))
		prev = hi
	}
	if len(bounds) > 0 {
		last := bounds[len(bounds)-1]
		sub := c.Filter(func(s Sample) bool { return s.Size >= last })
		rows = append(rows, sub.QuantileRow(">="+sizeLabel(last), qs))
	}
	return rows
}

// sizeRange labels a [lo, hi) flow-size bucket.
func sizeRange(lo, hi int64) string {
	if lo == 0 {
		return "<" + sizeLabel(hi)
	}
	return sizeLabel(lo) + "-" + sizeLabel(hi)
}

// sizeLabel renders a byte count compactly (decimal units: 10KB, 1MB).
func sizeLabel(n int64) string {
	switch {
	case n >= 1_000_000 && n%1_000_000 == 0:
		return fmt.Sprintf("%dMB", n/1_000_000)
	case n >= 1_000 && n%1_000 == 0:
		return fmt.Sprintf("%dKB", n/1_000)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Mean averages v; 0 for empty input.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	t := 0.0
	for _, x := range v {
		t += x
	}
	return t / float64(len(v))
}

// Percentile returns the q-quantile (0..1) of v using linear
// interpolation between order statistics. It copies and sorts v.
func Percentile(v []float64, q float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := make([]float64, len(v))
	copy(s, v)
	sort.Float64s(s)
	return percentileSorted(s, q)
}

// percentileSorted is Percentile over an already-sorted slice.
func percentileSorted(s []float64, q float64) float64 {
	if len(s) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// CDFPoint is one point of an empirical distribution dump.
type CDFPoint struct {
	Value float64
	Cum   float64
}

// EmpiricalCDF returns the sorted values annotated with cumulative
// probability — the Fig 7 output format.
func EmpiricalCDF(v []float64) []CDFPoint {
	if len(v) == 0 {
		return nil
	}
	s := make([]float64, len(v))
	copy(s, v)
	sort.Float64s(s)
	out := make([]CDFPoint, len(s))
	for i, x := range s {
		out[i] = CDFPoint{Value: x, Cum: float64(i+1) / float64(len(s))}
	}
	return out
}

// CDFQuantiles reduces an empirical CDF to fixed quantiles for compact
// table output.
func CDFQuantiles(v []float64, qs ...float64) []CDFPoint {
	out := make([]CDFPoint, len(qs))
	for i, q := range qs {
		out[i] = CDFPoint{Value: Percentile(v, q), Cum: q}
	}
	return out
}
