package netsim

import (
	"fmt"

	"occamy/internal/bm"
	"occamy/internal/core"
	"occamy/internal/linkfault"
	"occamy/internal/pkt"
	"occamy/internal/sim"
	"occamy/internal/switchsim"
)

// SingleSwitchConfig builds a star: n hosts around one switch, host i on
// port i. This is the topology of the P4 and DPDK testbed experiments.
type SingleSwitchConfig struct {
	// HostRates gives each host's (and its switch port's) rate in
	// bits/sec; the slice length sets the host count.
	HostRates []float64
	// LinkDelay is the one-way propagation delay per link.
	LinkDelay sim.Duration
	// Switch configures the switch; Ports is filled in automatically.
	Switch switchsim.Config
	// Faults selects per-link-class fault profiles (host links are the
	// host-leaf class here); the zero value leaves every link ideal.
	Faults linkfault.Config
	// Seed seeds the network's RNG.
	Seed uint64
}

// SingleSwitch builds the star network.
func SingleSwitch(cfg SingleSwitchConfig) *Network {
	n := len(cfg.HostRates)
	if n < 2 {
		panic("netsim: single-switch topology needs >= 2 hosts")
	}
	eng := sim.NewEngine()
	scfg := cfg.Switch
	scfg.Ports = n
	if scfg.ClassesPerPort == 0 {
		scfg.ClassesPerPort = 1
	}
	sw := switchsim.New("sw0", eng, scfg)
	net := &Network{
		Eng:      eng,
		Rand:     sim.NewRand(cfg.Seed),
		Switches: []*switchsim.Switch{sw},
		Pool:     pkt.NewPool(),
	}
	plan := linkfault.NewPlan(eng, net.Pool, cfg.Faults)
	if plan.Active() {
		net.Faults = plan
	}
	for i := 0; i < n; i++ {
		h := NewHost(eng, pkt.NodeID(i))
		h.UsePool(net.Pool)
		up := plan.Wrap(linkfault.ClassHostLeaf, fmt.Sprintf("h%d->sw0", i), sw.Receive)
		down := plan.Wrap(linkfault.ClassHostLeaf, fmt.Sprintf("sw0->h%d", i), h.Deliver)
		h.Wire(cfg.HostRates[i], cfg.LinkDelay, up)
		sw.AttachPort(i, cfg.HostRates[i], cfg.LinkDelay, down)
		net.Hosts = append(net.Hosts, h)
	}
	sw.SetRouter(func(p *pkt.Packet) int { return int(p.Dst) })
	return net
}

// LeafSpineConfig describes the large-scale simulation fabric: Leaves
// leaf switches each with HostsPerLeaf hosts, fully connected to Spines
// spine switches, ECMP by flow hash.
type LeafSpineConfig struct {
	Spines       int
	Leaves       int
	HostsPerLeaf int
	// HostLinkBps is the host<->leaf rate; SpineLinkBps the leaf<->spine
	// rate (the paper uses 100Gbps for both).
	HostLinkBps  float64
	SpineLinkBps float64
	// LinkDelay is the per-link propagation delay. The paper's 80µs
	// base RTT across the spine corresponds to 10µs per link.
	LinkDelay sim.Duration
	// LeafSwitch/SpineSwitch configure the switches; Ports is filled in
	// automatically (leaf: HostsPerLeaf+Spines; spine: Leaves).
	LeafSwitch  switchsim.Config
	SpineSwitch switchsim.Config
	// HostRates optionally overrides individual host access rates (keyed
	// by dense host ID), modeling degraded links: flapping optics, a
	// misnegotiated port. Hosts absent from the map run at HostLinkBps.
	HostRates map[int]float64
	// MakeLeafPolicy/MakeSpinePolicy, when set, build a fresh policy (and
	// expulsion config) per switch instead of sharing the single Policy
	// pointer in LeafSwitch/SpineSwitch across all of them — required for
	// stateful policies (EDT, TDT, the pushout variants).
	MakeLeafPolicy  func() (bm.Policy, *core.Config)
	MakeSpinePolicy func() (bm.Policy, *core.Config)
	// Faults selects per-link-class fault profiles: host<->leaf links are
	// the host-leaf class, leaf<->spine links the leaf-spine class. The
	// zero value leaves every link ideal.
	Faults linkfault.Config
	// Seed seeds the network's RNG.
	Seed uint64
}

// hostRate returns host id's access rate, honoring degraded-port overrides.
func (c LeafSpineConfig) hostRate(id int) float64 {
	if r, ok := c.HostRates[id]; ok && r > 0 {
		return r
	}
	return c.HostLinkBps
}

// NumHosts returns the total host count.
func (c LeafSpineConfig) NumHosts() int { return c.Leaves * c.HostsPerLeaf }

// ecmpHash spreads flows over uplinks deterministically.
func ecmpHash(flowID uint64) uint64 {
	x := flowID
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// LeafSpine builds the fabric. Host IDs are dense: leaf l owns hosts
// [l*HostsPerLeaf, (l+1)*HostsPerLeaf).
func LeafSpine(cfg LeafSpineConfig) *Network {
	if cfg.Spines <= 0 || cfg.Leaves <= 0 || cfg.HostsPerLeaf <= 0 {
		panic("netsim: leaf-spine dimensions must be positive")
	}
	eng := sim.NewEngine()
	net := &Network{Eng: eng, Rand: sim.NewRand(cfg.Seed), Pool: pkt.NewPool()}
	plan := linkfault.NewPlan(eng, net.Pool, cfg.Faults)
	if plan.Active() {
		net.Faults = plan
	}

	leaves := make([]*switchsim.Switch, cfg.Leaves)
	spines := make([]*switchsim.Switch, cfg.Spines)
	for l := 0; l < cfg.Leaves; l++ {
		scfg := cfg.LeafSwitch
		scfg.Ports = cfg.HostsPerLeaf + cfg.Spines
		if scfg.ClassesPerPort == 0 {
			scfg.ClassesPerPort = 1
		}
		if cfg.MakeLeafPolicy != nil {
			scfg.Policy, scfg.Occamy = cfg.MakeLeafPolicy()
		}
		leaves[l] = switchsim.New(fmt.Sprintf("leaf%d", l), eng, scfg)
	}
	for s := 0; s < cfg.Spines; s++ {
		scfg := cfg.SpineSwitch
		scfg.Ports = cfg.Leaves
		if scfg.ClassesPerPort == 0 {
			scfg.ClassesPerPort = 1
		}
		if cfg.MakeSpinePolicy != nil {
			scfg.Policy, scfg.Occamy = cfg.MakeSpinePolicy()
		}
		spines[s] = switchsim.New(fmt.Sprintf("spine%d", s), eng, scfg)
	}

	// Hosts and host<->leaf links.
	for l := 0; l < cfg.Leaves; l++ {
		for i := 0; i < cfg.HostsPerLeaf; i++ {
			id := pkt.NodeID(l*cfg.HostsPerLeaf + i)
			h := NewHost(eng, id)
			h.UsePool(net.Pool)
			leaf := leaves[l]
			rate := cfg.hostRate(int(id))
			up := plan.Wrap(linkfault.ClassHostLeaf, fmt.Sprintf("h%d->leaf%d", id, l), leaf.Receive)
			down := plan.Wrap(linkfault.ClassHostLeaf, fmt.Sprintf("leaf%d->h%d", l, id), h.Deliver)
			h.Wire(rate, cfg.LinkDelay, up)
			leaf.AttachPort(i, rate, cfg.LinkDelay, down)
			net.Hosts = append(net.Hosts, h)
		}
	}
	// Leaf<->spine links: leaf uplink port HostsPerLeaf+s; spine port l.
	for l := 0; l < cfg.Leaves; l++ {
		for s := 0; s < cfg.Spines; s++ {
			spine := spines[s]
			leaf := leaves[l]
			up := plan.Wrap(linkfault.ClassLeafSpine, fmt.Sprintf("leaf%d->spine%d", l, s), spine.Receive)
			down := plan.Wrap(linkfault.ClassLeafSpine, fmt.Sprintf("spine%d->leaf%d", s, l), leaf.Receive)
			leaf.AttachPort(cfg.HostsPerLeaf+s, cfg.SpineLinkBps, cfg.LinkDelay, up)
			spine.AttachPort(l, cfg.SpineLinkBps, cfg.LinkDelay, down)
		}
	}

	// Routing.
	for l := 0; l < cfg.Leaves; l++ {
		l := l
		leaves[l].SetRouter(func(p *pkt.Packet) int {
			dstLeaf := int(p.Dst) / cfg.HostsPerLeaf
			if dstLeaf == l {
				return int(p.Dst) % cfg.HostsPerLeaf // host-facing port
			}
			return cfg.HostsPerLeaf + int(ecmpHash(p.FlowID)%uint64(cfg.Spines))
		})
	}
	for s := 0; s < cfg.Spines; s++ {
		spines[s].SetRouter(func(p *pkt.Packet) int {
			return int(p.Dst) / cfg.HostsPerLeaf
		})
	}

	net.Switches = append(net.Switches, leaves...)
	net.Switches = append(net.Switches, spines...)
	return net
}

// Leaf returns leaf switch l of a LeafSpine network (the first Leaves
// entries of Switches).
func Leaf(n *Network, cfg LeafSpineConfig, l int) *switchsim.Switch {
	return n.Switches[l]
}

// Spine returns spine switch s of a LeafSpine network.
func Spine(n *Network, cfg LeafSpineConfig, s int) *switchsim.Switch {
	return n.Switches[cfg.Leaves+s]
}
