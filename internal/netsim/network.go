package netsim

import (
	"occamy/internal/linkfault"
	"occamy/internal/pkt"
	"occamy/internal/sim"
	"occamy/internal/switchsim"
	"occamy/internal/transport"
)

// Network bundles an engine, hosts, and switches, and hands out flow IDs.
type Network struct {
	Eng      *sim.Engine
	Rand     *sim.Rand
	Hosts    []*Host
	Switches []*switchsim.Switch
	// Pool is the engine-wide packet freelist shared by every host.
	Pool *pkt.Pool
	// Faults is the link-fault plan wrapped around the topology's links;
	// nil when the topology config enabled no fault profile.
	Faults *linkfault.Plan

	nextFlow uint64
}

// NewFlowID returns a fresh unique flow identifier.
func (n *Network) NewFlowID() uint64 {
	n.nextFlow++
	return n.nextFlow
}

// FlowHandle tracks one flow started via StartFlow.
type FlowHandle struct {
	Spec     transport.FlowSpec
	Sender   *transport.Sender
	Receiver *transport.Receiver
	Started  sim.Time
}

// FlowOptions parameterizes StartFlow.
type FlowOptions struct {
	Priority int
	ECN      bool
	// NewCC builds the congestion controller; nil defaults to DCTCP.
	NewCC func(mss, initSegs int) transport.CC
	// Transport tunes MSS/RTO; zero values use transport defaults.
	Transport transport.Options
	// OnComplete fires at the receiver when the last byte arrives,
	// with the flow completion time.
	OnComplete func(fct sim.Duration)
}

// StartFlow creates and registers a sender/receiver pair and starts the
// transfer at virtual time `at`.
func (n *Network) StartFlow(at sim.Time, src, dst pkt.NodeID, size int64, opts FlowOptions) *FlowHandle {
	if src == dst {
		panic("netsim: flow src == dst")
	}
	spec := transport.FlowSpec{
		ID:       n.NewFlowID(),
		Src:      src,
		Dst:      dst,
		Size:     size,
		Priority: opts.Priority,
		ECN:      opts.ECN,
	}
	topts := opts.Transport.WithDefaults()
	newCC := opts.NewCC
	if newCC == nil {
		newCC = func(mss, segs int) transport.CC { return transport.NewDCTCP(mss, segs) }
	}
	cc := newCC(topts.MSS, topts.InitCwndSegs)
	h := &FlowHandle{Spec: spec, Started: at}
	h.Sender = transport.NewSender(n.Hosts[src], spec, cc, topts)
	h.Receiver = transport.NewReceiver(n.Hosts[dst], spec)
	h.Receiver.OnComplete = func(now sim.Time) {
		if opts.OnComplete != nil {
			opts.OnComplete(now - h.Started)
		}
		// Keep handlers registered: late retransmissions still need the
		// receiver to re-ACK so the sender can finish cleanly.
	}
	n.Hosts[src].Register(spec.ID, h.Sender)
	n.Hosts[dst].Register(spec.ID, h.Receiver)
	n.Eng.At(at, h.Sender.Start)
	return h
}
