// Package netsim assembles hosts, links, and switches into the networks
// the paper evaluates: the single-switch testbed scenarios and the
// 128-host leaf–spine fabric with ECMP.
package netsim

import (
	"fmt"

	"occamy/internal/pkt"
	"occamy/internal/sim"
	"occamy/internal/transport"
)

// Host is an end node: a NIC that serializes outgoing packets at link
// rate and dispatches incoming packets to per-flow transport handlers.
// It implements transport.Net, and sim.Handler for its own NIC events so
// the per-packet serialization/delivery path schedules without closures.
type Host struct {
	ID  pkt.NodeID
	eng *sim.Engine

	rateBps float64
	prop    sim.Duration
	sink    func(*pkt.Packet) // toward the first-hop switch
	pool    *pkt.Pool         // engine-wide packet freelist (may be nil)

	// The NIC serves strict-priority transmit queues (priority 0
	// first), mirroring the multi-queue hosts of the paper's testbed.
	txq      [maxHostPrios]fifoPkt
	busy     bool
	handlers map[uint64]transport.Handler
}

// maxHostPrios bounds the per-host priority classes.
const maxHostPrios = 8

// NewHost builds a host; Wire must attach it to a switch before traffic.
func NewHost(eng *sim.Engine, id pkt.NodeID) *Host {
	return &Host{ID: id, eng: eng, handlers: make(map[uint64]transport.Handler)}
}

// UsePool installs the engine-wide packet freelist: NewPacket draws from
// it and Deliver recycles consumed packets into it.
func (h *Host) UsePool(pool *pkt.Pool) { h.pool = pool }

// Wire attaches the host's NIC to its first-hop link.
func (h *Host) Wire(rateBps float64, prop sim.Duration, sink func(*pkt.Packet)) {
	if rateBps <= 0 {
		panic("netsim: NIC rate must be positive")
	}
	h.rateBps = rateBps
	h.prop = prop
	h.sink = sink
}

// Now implements transport.Net.
func (h *Host) Now() sim.Time { return h.eng.Now() }

// After implements transport.Net.
func (h *Host) After(d sim.Duration, fn func()) { h.eng.After(d, fn) }

// AfterTimer implements transport.Net.
func (h *Host) AfterTimer(d sim.Duration, fn func()) sim.Timer {
	return h.eng.AfterTimer(d, fn)
}

// NewPacket implements transport.Net: a zeroed packet from the network
// freelist (or the heap when no pool is installed).
func (h *Host) NewPacket() *pkt.Packet {
	if h.pool != nil {
		return h.pool.Get()
	}
	return &pkt.Packet{}
}

// Send implements transport.Net: enqueue on the NIC and serialize.
func (h *Host) Send(p *pkt.Packet) {
	if h.sink == nil {
		panic(fmt.Sprintf("netsim: host %d not wired", h.ID))
	}
	prio := p.Priority
	if prio < 0 {
		prio = 0
	}
	if prio >= maxHostPrios {
		prio = maxHostPrios - 1
	}
	h.txq[prio].push(p)
	h.trySend()
}

func (h *Host) trySend() {
	if h.busy {
		return
	}
	q := -1
	for i := range h.txq {
		if h.txq[i].len() > 0 {
			q = i
			break
		}
	}
	if q < 0 {
		return
	}
	p := h.txq[q].pop()
	tx := sim.Duration(float64(p.Size*8) / h.rateBps * float64(sim.Second))
	if tx < 1 {
		tx = 1
	}
	h.busy = true
	// Typed events: nil arg = serialization done, packet arg = delivery
	// at the far end. Scheduling order keeps the tx-done event first when
	// prop is zero, as the closure-based path did.
	h.eng.AfterEvent(tx, h, nil)
	h.eng.AfterEvent(tx+h.prop, h, p)
}

// OnEvent implements sim.Handler for the NIC's two per-packet events.
func (h *Host) OnEvent(arg any) {
	if p, ok := arg.(*pkt.Packet); ok {
		h.sink(p)
		return
	}
	h.busy = false
	h.trySend()
}

// Deliver hands an arriving packet to the flow's registered handler.
// Packets for unknown flows are dropped silently (late retransmissions
// of completed flows). A delivered packet is consumed: handlers copy
// what they need during OnPacket, so the packet is recycled afterwards.
func (h *Host) Deliver(p *pkt.Packet) {
	if hd := h.handlers[p.FlowID]; hd != nil {
		hd.OnPacket(p)
	}
	if h.pool != nil {
		h.pool.Put(p)
	}
}

// Register installs the handler for a flow ID.
func (h *Host) Register(flowID uint64, hd transport.Handler) {
	h.handlers[flowID] = hd
}

// Unregister removes a completed flow's handler.
func (h *Host) Unregister(flowID uint64) { delete(h.handlers, flowID) }

var _ transport.Net = (*Host)(nil)

// fifoPkt is a slice-backed packet queue (same shape as switchsim's).
type fifoPkt struct {
	buf  []*pkt.Packet
	head int
}

func (f *fifoPkt) len() int { return len(f.buf) - f.head }

func (f *fifoPkt) push(p *pkt.Packet) { f.buf = append(f.buf, p) }

func (f *fifoPkt) pop() *pkt.Packet {
	p := f.buf[f.head]
	f.buf[f.head] = nil
	f.head++
	if f.head > 64 && f.head*2 >= len(f.buf) {
		n := copy(f.buf, f.buf[f.head:])
		f.buf = f.buf[:n]
		f.head = 0
	}
	return p
}
