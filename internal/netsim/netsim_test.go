package netsim

import (
	"testing"

	"occamy/internal/bm"
	"occamy/internal/pkt"
	"occamy/internal/sim"
	"occamy/internal/switchsim"
	"occamy/internal/transport"
)

func starNet(hosts int, rate float64, alpha float64, bufBytes int) *Network {
	rates := make([]float64, hosts)
	for i := range rates {
		rates[i] = rate
	}
	return SingleSwitch(SingleSwitchConfig{
		HostRates: rates,
		LinkDelay: 5 * sim.Microsecond,
		Switch: switchsim.Config{
			ClassesPerPort:    1,
			BufferBytes:       bufBytes,
			Policy:            bm.NewDT(alpha),
			ECNThresholdBytes: bufBytes / 6, // DCTCP-style marking
		},
		Seed: 1,
	})
}

func TestSingleFlowOverStar(t *testing.T) {
	net := starNet(2, 10e9, 8, 1<<20)
	var fct sim.Duration = -1
	net.StartFlow(0, 0, 1, 1_000_000, FlowOptions{
		ECN:        true,
		OnComplete: func(d sim.Duration) { fct = d },
	})
	net.Eng.RunUntil(sim.Second)
	if fct < 0 {
		t.Fatal("flow did not complete")
	}
	// 1MB at 10Gbps ≈ 800µs + header overhead + RTT; allow 2x.
	if fct > 2*sim.Millisecond {
		t.Fatalf("fct = %v, want ~1ms", fct)
	}
	st := net.Switches[0].Stats()
	if st.Drops() != 0 {
		t.Fatalf("lossless single flow dropped %d packets", st.Drops())
	}
}

func TestTwoFlowsShareBottleneckFairly(t *testing.T) {
	// Hosts 0 and 1 both send long flows to host 2: in steady state
	// DCTCP+DT must split the shared egress roughly evenly. (Short
	// synchronized bursts are legitimately unfair — slow-start races and
	// tail-loss RTOs — so fairness is asserted on long-run throughput.)
	net := starNet(3, 10e9, 1, 200_000)
	h := [2]*FlowHandle{}
	for i := 0; i < 2; i++ {
		h[i] = net.StartFlow(0, pkt.NodeID(i), 2, 50_000_000, FlowOptions{ECN: true})
	}
	// Skip the slow-start race (which can cost one flow an RTO), then
	// measure goodput over a steady-state window.
	net.Eng.RunUntil(10 * sim.Millisecond)
	s0, s1 := h[0].Receiver.Received(), h[1].Receiver.Received()
	net.Eng.RunUntil(30 * sim.Millisecond)
	r0 := h[0].Receiver.Received() - s0
	r1 := h[1].Receiver.Received() - s1
	if r0 == 0 || r1 == 0 {
		t.Fatalf("a flow is stalled: %d vs %d bytes", r0, r1)
	}
	ratio := float64(r0) / float64(r1)
	if ratio < 0.65 || ratio > 1.55 {
		t.Fatalf("steady-state throughput ratio = %v (%d vs %d bytes), want ~1", ratio, r0, r1)
	}
	// Aggregate goodput should be near the 10G bottleneck: >=70%.
	total := float64(r0+r1) * 8 / 0.020
	if total < 0.7*10e9 {
		t.Fatalf("aggregate goodput %.2fGbps, want >7Gbps", total/1e9)
	}
}

func TestLeafSpineAllPairsReachable(t *testing.T) {
	cfg := LeafSpineConfig{
		Spines: 2, Leaves: 2, HostsPerLeaf: 2,
		HostLinkBps: 10e9, SpineLinkBps: 10e9,
		LinkDelay: 5 * sim.Microsecond,
		LeafSwitch: switchsim.Config{
			ClassesPerPort: 1, BufferBytes: 1 << 20, Policy: bm.NewDT(8),
		},
		SpineSwitch: switchsim.Config{
			ClassesPerPort: 1, BufferBytes: 1 << 20, Policy: bm.NewDT(8),
		},
		Seed: 1,
	}
	net := LeafSpine(cfg)
	n := cfg.NumHosts()
	completed := 0
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			net.StartFlow(0, pkt.NodeID(s), pkt.NodeID(d), 50_000, FlowOptions{
				ECN:        true,
				OnComplete: func(sim.Duration) { completed++ },
			})
		}
	}
	net.Eng.RunUntil(sim.Second)
	want := n * (n - 1)
	if completed != want {
		t.Fatalf("completed %d/%d all-pairs flows", completed, want)
	}
}

func TestLeafSpineCrossLeafLatency(t *testing.T) {
	cfg := LeafSpineConfig{
		Spines: 2, Leaves: 2, HostsPerLeaf: 1,
		HostLinkBps: 100e9, SpineLinkBps: 100e9,
		LinkDelay: 10 * sim.Microsecond,
		LeafSwitch: switchsim.Config{
			ClassesPerPort: 1, BufferBytes: 1 << 20, Policy: bm.NewDT(8),
		},
		SpineSwitch: switchsim.Config{
			ClassesPerPort: 1, BufferBytes: 1 << 20, Policy: bm.NewDT(8),
		},
	}
	net := LeafSpine(cfg)
	var fct sim.Duration
	// One MSS measured at the receiver: the one-way path is 4 links ×
	// 10µs plus serialization at each of the 4 hops — half the paper's
	// 80µs base RTT.
	net.StartFlow(0, 0, 1, pkt.MSS, FlowOptions{
		ECN:        true,
		OnComplete: func(d sim.Duration) { fct = d },
	})
	net.Eng.RunUntil(10 * sim.Millisecond)
	if fct == 0 {
		t.Fatal("flow did not complete")
	}
	if fct < 40*sim.Microsecond || fct > 60*sim.Microsecond {
		t.Fatalf("1-MSS FCT = %v, want ~40-50µs (half base RTT)", fct)
	}
}

func TestECMPSpreadsFlows(t *testing.T) {
	cfg := LeafSpineConfig{
		Spines: 4, Leaves: 2, HostsPerLeaf: 4,
		HostLinkBps: 10e9, SpineLinkBps: 10e9,
		LinkDelay: sim.Microsecond,
		LeafSwitch: switchsim.Config{
			ClassesPerPort: 1, BufferBytes: 1 << 20, Policy: bm.NewDT(8),
		},
		SpineSwitch: switchsim.Config{
			ClassesPerPort: 1, BufferBytes: 1 << 20, Policy: bm.NewDT(8),
		},
	}
	net := LeafSpine(cfg)
	for i := 0; i < 64; i++ {
		net.StartFlow(0, 0, 4, 10_000, FlowOptions{ECN: true}) // cross-leaf
	}
	net.Eng.RunUntil(100 * sim.Millisecond)
	// Every spine should have forwarded something.
	for s := 0; s < cfg.Spines; s++ {
		if Spine(net, cfg, s).Stats().TxPackets == 0 {
			t.Fatalf("spine %d received no traffic: ECMP not spreading", s)
		}
	}
}

func TestHostNICSerializes(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, 0)
	var arrivals []sim.Time
	h.Wire(1e9, 0, func(p *pkt.Packet) { arrivals = append(arrivals, eng.Now()) })
	for i := 0; i < 3; i++ {
		h.Send(&pkt.Packet{ID: uint64(i + 1), Size: 1250})
	}
	eng.Run()
	// 1250B at 1Gbps = 10µs each, serialized.
	want := []sim.Time{10 * sim.Microsecond, 20 * sim.Microsecond, 30 * sim.Microsecond}
	for i := range want {
		if arrivals[i] != want[i] {
			t.Fatalf("arrivals = %v, want %v", arrivals, want)
		}
	}
}

func TestUnknownFlowDeliveryIgnored(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, 0)
	h.Deliver(&pkt.Packet{FlowID: 999}) // must not panic
}

func TestStartFlowPanicsOnSelfFlow(t *testing.T) {
	net := starNet(2, 1e9, 1, 1<<20)
	defer func() {
		if recover() == nil {
			t.Error("self-flow did not panic")
		}
	}()
	net.StartFlow(0, 1, 1, 100, FlowOptions{})
}

var _ transport.Net = (*Host)(nil)

// ECMP must be per-flow consistent: all packets of one flow take the
// same spine (no reordering from path churn).
func TestECMPPerFlowConsistency(t *testing.T) {
	cfg := LeafSpineConfig{
		Spines: 4, Leaves: 2, HostsPerLeaf: 2,
		HostLinkBps: 10e9, SpineLinkBps: 10e9,
		LinkDelay: sim.Microsecond,
		LeafSwitch: switchsim.Config{
			ClassesPerPort: 1, BufferBytes: 1 << 20, Policy: bm.NewDT(8),
		},
		SpineSwitch: switchsim.Config{
			ClassesPerPort: 1, BufferBytes: 1 << 20, Policy: bm.NewDT(8),
		},
	}
	net := LeafSpine(cfg)
	// One big flow; count which spines forward its data packets.
	h := net.StartFlow(0, 0, 2, 400_000, FlowOptions{ECN: true})
	net.Eng.RunUntil(100 * sim.Millisecond)
	if !h.Receiver.Done() {
		t.Fatal("flow did not complete")
	}
	used := 0
	for s := 0; s < cfg.Spines; s++ {
		if Spine(net, cfg, s).Stats().TxPackets > 0 {
			used++
		}
	}
	// Data takes one spine, the reverse ACK flow shares the same flow ID
	// and hash: still one spine.
	if used != 1 {
		t.Fatalf("flow used %d spines, want 1 (per-flow ECMP)", used)
	}
}
