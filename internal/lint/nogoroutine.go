package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// nogoroutine: the event core is single-threaded by construction.
//
// Conservative parallel DES (ROADMAP direction 4) only stays correct if
// all parallelism crosses the sanctioned seams (experiments.RunGrid,
// the future shard horizon exchange) — a goroutine, channel, or lock
// *inside* the event loop would let scheduler timing leak into event
// order, which is exactly the class of bug -race and goldens catch only
// when the interleaving cooperates. So inside the event core the whole
// toolbox is banned: go statements, channel makes/sends/receives/
// ranges, select, and every sync/sync-atomic primitive.

// AnalyzerNogoroutine is the single-threaded-event-core check.
var AnalyzerNogoroutine = &Analyzer{
	Name: "nogoroutine",
	Doc: "forbid go statements, channel operations, select, and sync/sync-atomic primitives inside " +
		"the single-threaded event core; parallelism flows only through the sanctioned seams " +
		"(suppress a deliberate seam with //occamy:concurrent <reason>)",
	Run: runNogoroutine,
}

func runNogoroutine(pass *Pass) error {
	if !IsEventCore(pass.PkgPath) {
		return nil
	}
	seams := collectConcurrent(pass)
	report := func(pos token.Pos, format string, args ...any) {
		if seams.suppressed(pass.Fset, pos) {
			return
		}
		pass.Reportf(pos, format, args...)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.GoStmt:
				report(v.Pos(), "go statement in single-threaded event core %s; route parallelism through a sanctioned seam (experiments.RunGrid, shard boundary)", pass.PkgPath)
			case *ast.SendStmt:
				report(v.Pos(), "channel send in single-threaded event core %s", pass.PkgPath)
			case *ast.SelectStmt:
				report(v.Pos(), "select statement in single-threaded event core %s", pass.PkgPath)
			case *ast.UnaryExpr:
				if v.Op == token.ARROW {
					report(v.Pos(), "channel receive in single-threaded event core %s", pass.PkgPath)
				}
			case *ast.RangeStmt:
				if t := pass.TypesInfo.TypeOf(v.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						report(v.Pos(), "range over channel in single-threaded event core %s", pass.PkgPath)
					}
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && id.Name == "make" {
					if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
						if t := pass.TypesInfo.TypeOf(v); t != nil {
							if _, isChan := t.Underlying().(*types.Chan); isChan {
								report(v.Pos(), "channel creation in single-threaded event core %s", pass.PkgPath)
							}
						}
					}
				}
			case *ast.SelectorExpr:
				obj := pass.TypesInfo.Uses[v.Sel]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				if p := obj.Pkg().Path(); p == "sync" || p == "sync/atomic" {
					report(v.Pos(), "%s.%s in single-threaded event core %s; the event loop takes no locks — hoist shared state to a seam", p, obj.Name(), pass.PkgPath)
				}
			}
			return true
		})
	}
	return nil
}
