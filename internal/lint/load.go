package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, parsed, and type-checked module package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
	// TypeErrors collects type-checker complaints. Analyzers still run
	// on partially-checked packages, but occamy-vet surfaces these so a
	// broken build can't silently weaken the analysis.
	TypeErrors []error
}

// listedPackage is the slice of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
}

// Load enumerates the packages matching patterns (as `go list` resolves
// them, from moduleDir), parses their non-test sources, and type-checks
// them in dependency order. Module-local imports resolve against the
// already-checked set; everything else (the standard library) falls back
// to the source importer, so no compiled export data is required.
func Load(moduleDir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(moduleDir, patterns)
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]*listedPackage, len(listed))
	for _, lp := range listed {
		byPath[lp.ImportPath] = lp
	}
	order, err := topoOrder(listed, byPath)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	checked := make(map[string]*types.Package)
	imp := &chainImporter{
		local:    checked,
		fallback: importer.ForCompiler(fset, "source", nil),
	}
	var out []*Package
	for _, lp := range order {
		pkg, err := checkOne(fset, lp, imp)
		if err != nil {
			return nil, err
		}
		if pkg.Types != nil {
			checked[lp.ImportPath] = pkg.Types
		}
		out = append(out, pkg)
	}
	return out, nil
}

// goList shells out to the go tool for package metadata — the one
// authority on module layout (build tags, pattern expansion, testdata
// exclusion).
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles,Imports"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// topoOrder sorts the listed packages so every module-local import
// precedes its importers (imports outside the listed set — stdlib —
// are the fallback importer's problem).
func topoOrder(listed []*listedPackage, byPath map[string]*listedPackage) ([]*listedPackage, error) {
	// Deterministic starting order, so ties break identically run-to-run.
	sort.Slice(listed, func(i, j int) bool { return listed[i].ImportPath < listed[j].ImportPath })
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(listed))
	var out []*listedPackage
	var visit func(lp *listedPackage) error
	visit = func(lp *listedPackage) error {
		switch state[lp.ImportPath] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", lp.ImportPath)
		}
		state[lp.ImportPath] = visiting
		for _, dep := range lp.Imports {
			if d := byPath[dep]; d != nil {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[lp.ImportPath] = done
		out = append(out, lp)
		return nil
	}
	for _, lp := range listed {
		if err := visit(lp); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// checkOne parses and type-checks a single package.
func checkOne(fset *token.FileSet, lp *listedPackage, imp types.ImporterFrom) (*Package, error) {
	pkg := &Package{ImportPath: lp.ImportPath, Dir: lp.Dir, Fset: fset}
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %v", name, err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.TypesInfo = NewTypesInfo()
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns the (possibly incomplete) package even on error;
	// the collected TypeErrors carry the details.
	pkg.Types, _ = conf.Check(lp.ImportPath, fset, pkg.Files, pkg.TypesInfo)
	return pkg, nil
}

// NewTypesInfo allocates the info maps the analyzers rely on.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// chainImporter resolves module-local imports from the already-checked
// set and delegates the rest (stdlib) to the source importer.
type chainImporter struct {
	local    map[string]*types.Package
	fallback types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, "", 0)
}

func (c *chainImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkg := c.local[path]; pkg != nil {
		return pkg, nil
	}
	if from, ok := c.fallback.(types.ImporterFrom); ok {
		return from.ImportFrom(path, dir, mode)
	}
	return c.fallback.Import(path)
}
