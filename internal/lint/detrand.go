package lint

import (
	"go/ast"
	"go/types"
)

// detrand: no wall clocks, global randomness, or environment reads in
// the deterministic core.
//
// A run is byte-identical given its seed — that is the contract every
// golden table, the sha256 result cache, and the consistent-hash fleet
// sharding depend on. One stray time.Now or global rand.Intn produces
// plausible-but-wrong results the goldens only catch for the scenarios
// they pin. Seeded *rand.Rand instances (rand.New(rand.NewSource(s)))
// stay legal: determinism comes from owning the seed, not from
// avoiding randomness.

// AnalyzerDetrand is the determinism-source check.
var AnalyzerDetrand = &Analyzer{
	Name: "detrand",
	Doc: "forbid time.Now/Since/Until, global math/rand top-level functions, and os environment reads " +
		"in the deterministic core packages (seeded *rand.Rand instances remain legal)",
	Run: runDetrand,
}

// detrandForbidden maps package path -> function name -> replacement
// hint. Only package-level functions are matched, so *rand.Rand
// methods (seeded sources) never trip it.
var detrandForbidden = map[string]map[string]string{
	"time": {
		"Now":   "use sim time (sim.Time) or take an injected clock",
		"Since": "use sim time (sim.Time) or take an injected clock",
		"Until": "use sim time (sim.Time) or take an injected clock",
	},
	"os": {
		"Getenv":    "thread configuration through the Spec instead",
		"LookupEnv": "thread configuration through the Spec instead",
		"Environ":   "thread configuration through the Spec instead",
	},
	"math/rand":    nil, // nil: all package-level funcs except the constructors
	"math/rand/v2": nil,
}

// detrandRandConstructors are the math/rand{,/v2} package-level
// functions that build seeded generators rather than consulting the
// global source.
var detrandRandConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runDetrand(pass *Pass) error {
	if !IsDeterministicCore(pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			pkgPath := fn.Pkg().Path()
			names, watched := detrandForbidden[pkgPath]
			if !watched || !isPkgFunc(fn, pkgPath) {
				return true
			}
			switch {
			case names != nil:
				if hint, bad := names[fn.Name()]; bad {
					pass.Reportf(sel.Pos(), "%s.%s is nondeterministic and %s is under the determinism contract; %s",
						fn.Pkg().Name(), fn.Name(), pass.PkgPath, hint)
				}
			default: // math/rand{,/v2}: global-source functions
				if !detrandRandConstructors[fn.Name()] {
					pass.Reportf(sel.Pos(), "global %s.%s draws from the process-wide source and breaks seeded replay in %s; use a seeded *rand.Rand (rand.New(rand.NewSource(seed)))",
						fn.Pkg().Name(), fn.Name(), pass.PkgPath)
				}
			}
			return true
		})
	}
	return nil
}
