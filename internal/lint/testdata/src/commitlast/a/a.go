// Package a exercises commitlast: handlers must decide the status
// before the first byte is committed.
package a

import (
	"errors"
	"fmt"
	"net/http"
)

type doc struct{}

func (doc) WriteCSV(w http.ResponseWriter, stride int) error { return nil }

func (doc) HasTrace() bool { return true }

func load(id string) (doc, error) {
	if id == "" {
		return doc{}, errors.New("no doc")
	}
	return doc{}, nil
}

// commitThenError is the PR-8 handleTrace bug shape: the 200 and
// Content-Type are on the wire before the document is validated.
func commitThenError(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/csv")
	w.WriteHeader(http.StatusOK)
	d, err := load(r.PathValue("id"))
	if err != nil {
		http.Error(w, "no such doc", http.StatusNotFound) // want `error response written after the response was already committed`
		return
	}
	_ = d.WriteCSV(w, 1)
}

// doubleHeader commits twice: the second status line is dropped.
func doubleHeader(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "hello")
	w.WriteHeader(http.StatusInternalServerError) // want `WriteHeader after the response was already committed`
}

// lateHelperTouch writes through a helper in an error branch after the
// body started: also the bug, even without a literal http.Error.
func lateHelperTouch(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintf(w, "partial")
	d, err := load("x")
	if err != nil {
		respondError(w, 500) // want `writer used in an error branch after the response was already committed`
		return
	}
	_ = d
}

func respondError(w http.ResponseWriter, code int) {
	w.WriteHeader(code)
}

// validateThenCommit is the fixed shape: every error path resolves
// before the first write. No diagnostics.
func validateThenCommit(w http.ResponseWriter, r *http.Request) {
	d, err := load(r.PathValue("id"))
	if err != nil {
		http.Error(w, "no such doc", http.StatusNotFound)
		return
	}
	if !d.HasTrace() {
		http.Error(w, "no trace", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	w.WriteHeader(http.StatusOK)
	if err := d.WriteCSV(w, 1); err != nil {
		return // headers are gone; truncating is all that's left — legal
	}
}

// streaming keeps writing after the intentional commit — body writes
// in a loop are not error writes. No diagnostics.
func streaming(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	for i := 0; i < 4; i++ {
		fmt.Fprintf(w, "row %d\n", i)
	}
}

// committedBranchReturns commits inside a branch that returns: nothing
// leaks to the error path below. No diagnostics.
func committedBranchReturns(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("fast") != "" {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "fast path")
		return
	}
	_, err := load("x")
	if err != nil {
		http.Error(w, "nope", http.StatusNotFound)
		return
	}
	w.WriteHeader(http.StatusOK)
}

// notAHandler has a writer but no request: out of scope.
func notAHandler(w http.ResponseWriter, code int) {
	w.WriteHeader(code)
	w.WriteHeader(code) // no request param, not handler-shaped
}
