// Package sim is a detrand fixture: its base name matches the
// deterministic-core allowlist, so every wall-clock, global-rand, and
// environment read below must be flagged.
package sim

import (
	"math/rand"
	randv2 "math/rand/v2"
	"os"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()   // want `time\.Now is nondeterministic`
	_ = time.Since(start) // want `time\.Since is nondeterministic`
	_ = time.Until(start) // want `time\.Until is nondeterministic`
	return time.Duration(1) * time.Second
}

func globalRand() int {
	n := rand.Intn(10)                 // want `global rand\.Intn draws from the process-wide source`
	rand.Shuffle(n, func(i, j int) {}) // want `global rand\.Shuffle draws from the process-wide source`
	_ = randv2.Int64()                 // want `global rand\.Int64 draws from the process-wide source`
	return n
}

func env() string {
	v := os.Getenv("OCCAMY_SEED")       // want `os\.Getenv is nondeterministic`
	if _, ok := os.LookupEnv("X"); ok { // want `os\.LookupEnv is nondeterministic`
		return ""
	}
	return v
}

// seededRand is the false-positive guard: seeded generators are the
// sanctioned way to be random, and *rand.Rand methods must never trip
// the global-function rule.
func seededRand(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	v2 := randv2.New(randv2.NewPCG(1, 2))
	return rng.Float64() + v2.Float64() + float64(rng.Intn(4))
}

// simTime is fine: time.Duration arithmetic is pure.
func simTime(d time.Duration) time.Duration { return d * 2 }
