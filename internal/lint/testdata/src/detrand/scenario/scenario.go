// Package scenario is a detrand fixture pinning the progress-publisher
// seam: the scenario package (deterministic core) publishes progress
// samples carrying only simulation-derived values — the virtual clock
// and the event counter. Stamping a sample with the wall clock, rating
// it in events per wall second, or throttling publication on wall time
// are all service/CLI-layer jobs; doing any of them here must be
// flagged, while the plain-callback publication itself is legal.
package scenario

import "time"

// RunProgress mirrors the real seam: sim-derived values only.
type RunProgress struct {
	SimNow time.Duration // virtual clock — pure arithmetic, legal
	Events uint64
}

// publishOK is the sanctioned shape: the hook receives values the
// engine already owns; no wall clock anywhere.
func publishOK(simNow time.Duration, events uint64, hook func(RunProgress)) {
	if hook != nil {
		hook(RunProgress{SimNow: simNow, Events: events})
	}
}

// publishWallClock is the violation the fixture exists to pin: deriving
// a wall-clock rate inside the deterministic core.
func publishWallClock(start time.Time, events uint64, hook func(RunProgress, float64)) {
	elapsed := time.Since(start) // want `time\.Since is nondeterministic`
	hook(RunProgress{Events: events}, float64(events)/elapsed.Seconds())
}

// throttleWallClock is the subtler violation: even just *throttling*
// publication on the wall clock makes the sample sequence — and with it
// any replay log built from samples — timing-dependent.
func throttleWallClock(last time.Time, hook func(RunProgress)) time.Time {
	if now := time.Now(); now.Sub(last) > 100*time.Millisecond { // want `time\.Now is nondeterministic`
		hook(RunProgress{})
		return now
	}
	return last
}
