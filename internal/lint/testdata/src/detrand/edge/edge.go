// Package edge is the detrand false-positive guard: it is not on the
// deterministic-core allowlist, so wall clocks, global rand, and the
// environment are all fair game — no diagnostics expected anywhere.
package edge

import (
	"math/rand"
	"os"
	"time"
)

func uptime(start time.Time) time.Duration {
	_ = os.Getenv("HOME")
	_ = rand.Intn(10)
	return time.Since(start)
}
