// Package a exercises maporder: order-dependent effects inside
// range-over-map must be flagged unless a dominating sort follows or
// an //occamy:ordered directive vouches for the site.
package a

import (
	"fmt"
	"sort"
)

// badAppend leaks map order into a slice that is never sorted.
func badAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want `appends to "out" in map-iteration order without a dominating sort`
		out = append(out, k)
	}
	return out
}

// goodSortedAfter is the collect-then-sort idiom: the append order is
// erased by the dominating sort.
func goodSortedAfter(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// goodSlicesSort accepts the slices package spelling too.
func goodSlicesSort(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sortInts(vals)
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func sortInts([]int) {}

// goodAggregation only folds order-independent state: no diagnostic.
func goodAggregation(m map[string]int) (int, int) {
	sum, max := 0, 0
	for _, v := range m {
		sum += v
		if v > max {
			max = v
		}
	}
	return sum, max
}

// goodMapToMap writes into another map — insertion order is invisible.
func goodMapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// goodLocalAppend appends to a per-iteration local: order-independent.
func goodLocalAppend(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		row := []int{}
		row = append(row, vs...)
		n += len(row)
	}
	return n
}

// badPrint emits in map order.
func badPrint(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt\.Printf inside range over map emits in map-iteration order`
	}
}

// badSend pushes map order into a channel.
func badSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside range over map`
	}
}

// suppressed carries the directive with a reason: no diagnostic.
func suppressed(m map[string]int) []string {
	var out []string
	//occamy:ordered summed downstream, order never observed
	for k := range m {
		out = append(out, k)
	}
	return out
}

// reasonless directives are themselves diagnostics, and do not
// suppress.
func reasonless(m map[string]int) []string {
	var out []string
	// want-below `occamy:ordered directive needs a reason`
	//occamy:ordered
	for k := range m { // want `appends to "out" in map-iteration order`
		out = append(out, k)
	}
	return out
}
