// Package a exercises atomicfield: a field whose address reaches a
// sync/atomic function must be accessed atomically at every other site
// too.
package a

import "sync/atomic"

type mixed struct {
	hits int64
	name string
}

func (m *mixed) inc() {
	atomic.AddInt64(&m.hits, 1)
}

func (m *mixed) read() int64 {
	return m.hits // want `plain access to field "hits", which is accessed atomically at`
}

func (m *mixed) reset() {
	m.hits = 0       // want `plain access to field "hits", which is accessed atomically at`
	m.name = "reset" // a never-atomic field stays free
}

// allAtomic is the false-positive guard: every access goes through
// sync/atomic, so nothing is flagged.
type allAtomic struct {
	n uint64
}

func (a *allAtomic) inc() { atomic.AddUint64(&a.n, 1) }

func (a *allAtomic) get() uint64 { return atomic.LoadUint64(&a.n) }

// typed uses the typed atomics, race-free by construction: methods on
// atomic.Int64 are not package-level sync/atomic functions, so the
// field is never recorded and plain-looking method calls are legal.
type typed struct {
	n atomic.Int64
}

func (t *typed) inc() int64 { return t.n.Add(1) }

func (t *typed) get() int64 { return t.n.Load() }

// helper takes the address without an atomic call in sight; address-of
// sites are conservatively skipped (the pointer may feed an atomic op
// elsewhere).
func helper(m *mixed) *int64 { return &m.hits }
