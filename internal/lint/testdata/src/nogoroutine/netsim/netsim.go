// Package netsim is a nogoroutine fixture: its base name is on the
// event-core allowlist, so every concurrency primitive below must be
// flagged.
package netsim

import (
	"sync"
	"sync/atomic"
)

type engine struct {
	mu sync.Mutex   // want `sync\.Mutex in single-threaded event core`
	n  atomic.Int64 // want `sync/atomic\.Int64 in single-threaded event core`
}

func spawn() {
	go func() {}() // want `go statement in single-threaded event core`
}

func channels() {
	ch := make(chan int, 1) // want `channel creation in single-threaded event core`
	ch <- 1                 // want `channel send in single-threaded event core`
	<-ch                    // want `channel receive in single-threaded event core`
	for range ch {          // want `range over channel in single-threaded event core`
	}
	select { // want `select statement in single-threaded event core`
	default:
	}
}

func locks(e *engine) {
	e.mu.Lock()         // want `sync\.Lock in single-threaded event core`
	defer e.mu.Unlock() // want `sync\.Unlock in single-threaded event core`
}

// A sanctioned seam carries //occamy:concurrent with a reason and is
// not flagged; a reasonless directive suppresses nothing and is itself
// a diagnostic.

//occamy:concurrent global ID counter, IDs are unique-only
var nextID atomic.Uint64

func newID() uint64 {
	//occamy:concurrent same seam, unique-only
	return nextID.Add(1)
}

func badSeam() {
	// want-below `occamy:concurrent directive needs a reason`
	//occamy:concurrent
	var mu sync.Mutex // want `sync\.Mutex in single-threaded event core`
	_ = mu
}
