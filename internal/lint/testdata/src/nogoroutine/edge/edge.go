// Package edge is the nogoroutine false-positive guard: not an
// event-core package, so worker pools and locks are legal — no
// diagnostics expected.
package edge

import (
	"sync"
	"sync/atomic"
)

func fanOut(work []func()) {
	var wg sync.WaitGroup
	results := make(chan int, len(work))
	for _, w := range work {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w()
			results <- 1
		}()
	}
	wg.Wait()
}

// progressPublisher pins the service side of the progress seam: the
// consumer of the deterministic core's samples lives outside the event
// core, where atomic publication for lock-free status polls is exactly
// what it should use.
type progressPublisher struct {
	latest atomic.Pointer[sample]
}

type sample struct{ fraction float64 }

func (p *progressPublisher) publish(f float64) { p.latest.Store(&sample{fraction: f}) }
