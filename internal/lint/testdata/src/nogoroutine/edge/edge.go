// Package edge is the nogoroutine false-positive guard: not an
// event-core package, so worker pools and locks are legal — no
// diagnostics expected.
package edge

import "sync"

func fanOut(work []func()) {
	var wg sync.WaitGroup
	results := make(chan int, len(work))
	for _, w := range work {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w()
			results <- 1
		}()
	}
	wg.Wait()
}
