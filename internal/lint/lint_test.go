package lint_test

import (
	"testing"

	"occamy/internal/lint"
	"occamy/internal/lint/linttest"
)

// Each analyzer is exercised against one fixture package holding its
// true positives (with `want` expectations) and, where the rule is
// scoped, an "edge" package proving the false-positive guard: the same
// constructs outside the scoped packages draw no diagnostics.

func TestDetrand(t *testing.T) {
	linttest.Run(t, "testdata", lint.AnalyzerDetrand, "detrand/sim", "detrand/edge", "detrand/scenario")
}

func TestMaporder(t *testing.T) {
	linttest.Run(t, "testdata", lint.AnalyzerMaporder, "maporder/a")
}

func TestNogoroutine(t *testing.T) {
	linttest.Run(t, "testdata", lint.AnalyzerNogoroutine, "nogoroutine/netsim", "nogoroutine/edge")
}

func TestAtomicfield(t *testing.T) {
	linttest.Run(t, "testdata", lint.AnalyzerAtomicfield, "atomicfield/a")
}

func TestCommitlast(t *testing.T) {
	linttest.Run(t, "testdata", lint.AnalyzerCommitlast, "commitlast/a")
}

// TestPackageScoping pins the allowlist matching the fixtures rely on:
// base-name membership, so testdata fixture paths and real module
// paths trigger identically.
func TestPackageScoping(t *testing.T) {
	cases := []struct {
		path       string
		det, event bool
	}{
		{"occamy/internal/sim", true, true},
		{"sim", true, true},
		{"occamy/internal/scenario", true, false},
		{"occamy/internal/linkfault", true, false},
		{"occamy/internal/service", false, false},
		{"occamy/internal/fleet", false, false},
		{"occamy/internal/loadgen", false, false},
		{"occamy/internal/metrics", false, false},
		{"occamy/internal/obs", false, false},
		{"edge", false, false},
	}
	for _, c := range cases {
		if got := lint.IsDeterministicCore(c.path); got != c.det {
			t.Errorf("IsDeterministicCore(%q) = %v, want %v", c.path, got, c.det)
		}
		if got := lint.IsEventCore(c.path); got != c.event {
			t.Errorf("IsEventCore(%q) = %v, want %v", c.path, got, c.event)
		}
	}
}
