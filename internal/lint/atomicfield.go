package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// atomicfield: a field accessed atomically anywhere must be accessed
// atomically everywhere.
//
// Mixing atomic.AddInt64(&s.n, 1) with a plain `s.n` read is a data
// race that -race only catches when the scheduler produces the bad
// interleaving during a test run — the lock-free histogram in
// internal/metrics is exactly the shape where this rots silently. The
// analyzer records every struct field passed by address to a
// sync/atomic package-level function, then flags every plain
// (non-atomic) selector access to those fields in the same package.
// Typed atomics (atomic.Uint64 etc.) are race-free by construction and
// never recorded — preferring them is the real fix.

// AnalyzerAtomicfield is the mixed atomic/plain field-access check.
var AnalyzerAtomicfield = &Analyzer{
	Name: "atomicfield",
	Doc: "a struct field accessed via sync/atomic functions anywhere must be accessed atomically " +
		"everywhere; prefer the typed atomics (atomic.Int64, atomic.Bool, ...)",
	Run: runAtomicfield,
}

func runAtomicfield(pass *Pass) error {
	// Pass 1: fields whose address reaches a sync/atomic function, and
	// the selector nodes already under an atomic call or address-of
	// (those are not plain accesses).
	atomicFields := make(map[*types.Var]token.Pos) // field -> first atomic site
	addressTaken := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			u, ok := n.(*ast.UnaryExpr)
			if !ok || u.Op != token.AND {
				return true
			}
			sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			addressTaken[sel] = true
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if !isPkgFunc(fn, "sync/atomic") {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fv := fieldVar(pass, sel); fv != nil {
					if _, seen := atomicFields[fv]; !seen {
						atomicFields[fv] = sel.Pos()
					}
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}
	// Pass 2: every other selector access to those fields is a race.
	// Address-of sites are skipped (the pointer may feed an atomic op
	// through a helper); composite-literal keys are bare idents, not
	// selectors, so constructor initialization is naturally exempt.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || addressTaken[sel] {
				return true
			}
			fv := fieldVar(pass, sel)
			if fv == nil {
				return true
			}
			if first, isAtomic := atomicFields[fv]; isAtomic {
				pass.Reportf(sel.Pos(), "plain access to field %q, which is accessed atomically at %s; every access must go through sync/atomic (or make the field a typed atomic)",
					fv.Name(), pass.Fset.Position(first))
			}
			return true
		})
	}
	return nil
}

// fieldVar resolves a selector to the struct field it denotes, or nil.
func fieldVar(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	s := pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}
