package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// maporder: map iteration order must never become output order.
//
// Go randomizes map iteration on purpose; any loop that turns that
// order into an observable sequence — appending to a slice that is
// never sorted, sending on a channel, printing — is a determinism bug
// that reproduces only sometimes. The analyzer flags range-over-map
// loops with such order-dependent effects unless a dominating sort
// follows (the collect-keys-then-sort idiom) or an `//occamy:ordered
// <reason>` directive vouches for the site. Pure aggregation (sums,
// maxima, counting, writes into another map) is order-independent and
// never flagged.

// AnalyzerMaporder is the ordered-map-iteration check.
var AnalyzerMaporder = &Analyzer{
	Name: "maporder",
	Doc: "flag range-over-map loops whose body appends/sends/prints (order-dependent effects) without a " +
		"dominating sort; suppress intentionally unordered sites with //occamy:ordered <reason>",
	Run: runMaporder,
}

func runMaporder(pass *Pass) error {
	dirs := collectOrdered(pass)
	for _, f := range pass.Files {
		funcBodies(f, func(body *ast.BlockStmt) {
			maporderStmts(pass, dirs, body.List)
		})
	}
	return nil
}

// maporderStmts walks a statement list, checking each range-over-map
// against the statements that follow it (where a dominating sort would
// live), and recursing into nested statement lists of the same
// function. Function literals are not descended into here — funcBodies
// visits them separately.
func maporderStmts(pass *Pass, dirs *directiveSet, list []ast.Stmt) {
	for i, stmt := range list {
		switch v := stmt.(type) {
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(v.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					checkMapRange(pass, dirs, v, list[i+1:])
				}
			}
			maporderStmts(pass, dirs, v.Body.List)
		case *ast.ForStmt:
			maporderStmts(pass, dirs, v.Body.List)
		case *ast.BlockStmt:
			maporderStmts(pass, dirs, v.List)
		case *ast.IfStmt:
			maporderStmts(pass, dirs, v.Body.List)
			switch e := v.Else.(type) {
			case *ast.BlockStmt:
				maporderStmts(pass, dirs, e.List)
			case *ast.IfStmt:
				maporderStmts(pass, dirs, []ast.Stmt{e})
			}
		case *ast.SwitchStmt:
			for _, c := range v.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					maporderStmts(pass, dirs, cc.Body)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range v.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					maporderStmts(pass, dirs, cc.Body)
				}
			}
		case *ast.SelectStmt:
			for _, c := range v.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					maporderStmts(pass, dirs, cc.Body)
				}
			}
		case *ast.LabeledStmt:
			maporderStmts(pass, dirs, []ast.Stmt{v.Stmt})
		}
	}
}

// checkMapRange inspects one range-over-map for order-dependent
// effects; rest is the remainder of the enclosing statement list, where
// a dominating sort would appear.
func checkMapRange(pass *Pass, dirs *directiveSet, rs *ast.RangeStmt, rest []ast.Stmt) {
	if dirs.suppressed(pass.Fset, rs.For) {
		return
	}
	var appended []types.Object // outer slices appended to, in body order
	inspectNoFuncLit(rs.Body, func(n ast.Node) {
		switch v := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(v.Pos(), "channel send inside range over map: receive order depends on map iteration; iterate sorted keys or annotate //occamy:ordered <reason>")
		case *ast.CallExpr:
			if fn := calleeFunc(pass.TypesInfo, v); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
				(strings.HasPrefix(fn.Name(), "Fprint") || strings.HasPrefix(fn.Name(), "Print")) {
				pass.Reportf(v.Pos(), "%s.%s inside range over map emits in map-iteration order; iterate sorted keys or annotate //occamy:ordered <reason>", fn.Pkg().Name(), fn.Name())
			}
		case *ast.AssignStmt:
			if obj := appendTarget(pass, v, rs); obj != nil {
				appended = append(appended, obj)
			}
		}
	})
	for _, obj := range appended {
		if !sortedLater(pass, rest, obj) {
			pass.Reportf(rs.For, "range over map appends to %q in map-iteration order without a dominating sort; sort %q after the loop, iterate sorted keys, or annotate //occamy:ordered <reason>",
				obj.Name(), obj.Name())
		}
	}
}

// appendTarget reports the object a statement appends to, when that
// object outlives the loop: `v = append(v, ...)` with v declared
// outside the range body. Appends to per-iteration locals are
// order-independent.
func appendTarget(pass *Pass, as *ast.AssignStmt, rs *ast.RangeStmt) types.Object {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil
	}
	if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return nil
	}
	lhs, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Uses[lhs]
	if obj == nil {
		obj = pass.TypesInfo.Defs[lhs]
	}
	if obj == nil {
		return nil
	}
	// Declared inside the loop body: per-iteration, order-independent.
	if obj.Pos() >= rs.Body.Pos() && obj.Pos() <= rs.Body.End() {
		return nil
	}
	return obj
}

// sortedLater reports whether any statement after the loop calls a
// sort/slices ordering function with obj among its arguments — the
// dominating sort that makes the append order irrelevant.
func sortedLater(pass *Pass, rest []ast.Stmt, obj types.Object) bool {
	for _, stmt := range rest {
		found := false
		inspectNoFuncLit(stmt, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return
			}
			if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
				return
			}
			for _, arg := range call.Args {
				if mentionsObject(pass, arg, obj) {
					found = true
					return
				}
			}
		})
		if found {
			return true
		}
	}
	return false
}

// mentionsObject reports whether expr contains an identifier resolving
// to obj.
func mentionsObject(pass *Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// inspectNoFuncLit walks n without descending into function literals
// (their bodies belong to a different execution context).
func inspectNoFuncLit(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(node ast.Node) bool {
		if _, isLit := node.(*ast.FuncLit); isLit {
			return false
		}
		if node != nil {
			fn(node)
		}
		return true
	})
}
