package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives
//
// A `//occamy:ordered <reason>` comment — on the line of a range
// statement or the line directly above it — tells maporder that the
// iteration's effect order is intentionally map-random (or made
// deterministic by means the analyzer can't see).
//
// A `//occamy:concurrent <reason>` comment does the same for
// nogoroutine: it marks a sanctioned concurrency seam in the event
// core (e.g. a process-global ID counter shared by engines the sweep
// runner drives in parallel).
//
// In both cases the reason is mandatory: a bare directive is itself a
// diagnostic, so suppressions stay auditable.

const (
	orderedDirective    = "//occamy:ordered"
	concurrentDirective = "//occamy:concurrent"
)

// directiveSet records, per file and line, the suppressions of one
// directive kind found in a package.
type directiveSet struct {
	// lines maps filename -> line -> reason text (may be empty).
	lines map[string]map[int]string
}

// collectOrdered gathers the occamy:ordered directives of the package
// and reports any that lack a reason.
func collectOrdered(pass *Pass) *directiveSet {
	return collectDirective(pass, orderedDirective,
		"occamy:ordered directive needs a reason (\"//occamy:ordered <why map order is safe here>\")")
}

// collectConcurrent gathers the occamy:concurrent directives of the
// package and reports any that lack a reason.
func collectConcurrent(pass *Pass) *directiveSet {
	return collectDirective(pass, concurrentDirective,
		"occamy:concurrent directive needs a reason (\"//occamy:concurrent <why this seam is safe>\")")
}

func collectDirective(pass *Pass, directive, reasonlessMsg string) *directiveSet {
	d := &directiveSet{lines: make(map[string]map[int]string)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directive) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directive)
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					continue // some other word: occamy:orderedX
				}
				pos := pass.Fset.Position(c.Pos())
				reason := strings.TrimSpace(rest)
				if reason == "" {
					pass.Reportf(c.Pos(), "%s", reasonlessMsg)
				}
				m := d.lines[pos.Filename]
				if m == nil {
					m = make(map[int]string)
					d.lines[pos.Filename] = m
				}
				m[pos.Line] = reason
			}
		}
	}
	return d
}

// suppressed reports whether a directive with a reason covers pos:
// same line, or the line immediately above. A reasonless directive
// never suppresses — it is itself a diagnostic.
func (d *directiveSet) suppressed(fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	m := d.lines[p.Filename]
	if m == nil {
		return false
	}
	if r, ok := m[p.Line]; ok && r != "" {
		return true
	}
	if r, ok := m[p.Line-1]; ok && r != "" {
		return true
	}
	return false
}

// funcBodies visits every function body in the file exactly once,
// calling fn with the body of each FuncDecl and FuncLit.
func funcBodies(f *ast.File, fn func(body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncDecl:
			if v.Body != nil {
				fn(v.Body)
			}
		case *ast.FuncLit:
			if v.Body != nil {
				fn(v.Body)
			}
		}
		return true
	})
}
