// Package linttest runs lint analyzers over testdata fixture packages
// and checks their diagnostics against `// want "regexp"` comments —
// the analysistest convention, rebuilt on the standard library.
//
// A fixture package lives at <root>/src/<path>/ and is type-checked
// with import path <path>, so package-allowlist matching (lint.
// IsDeterministicCore and friends) behaves exactly as it does on the
// real tree: a fixture directory named "sim" is a core package, one
// named "edge" is not.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"occamy/internal/lint"
)

// srcImporter is shared across fixture checks so the standard library
// is type-checked from source once per test process, not once per
// fixture.
var (
	srcImporterOnce sync.Once
	srcImporterFset *token.FileSet
	srcImporterVal  types.Importer
)

func sharedImporter() (*token.FileSet, types.Importer) {
	srcImporterOnce.Do(func() {
		srcImporterFset = token.NewFileSet()
		srcImporterVal = importer.ForCompiler(srcImporterFset, "source", nil)
	})
	return srcImporterFset, srcImporterVal
}

// Run type-checks each fixture package under root ("testdata/src") and
// applies the analyzer, comparing diagnostics against the fixtures'
// want comments. pkgs are root-relative paths ("detrand/core").
func Run(t *testing.T, root string, a *lint.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		t.Run(strings.ReplaceAll(pkg, "/", "_"), func(t *testing.T) {
			t.Helper()
			runOne(t, filepath.Join(root, "src", pkg), pkg, a)
		})
	}
}

func runOne(t *testing.T, dir, pkgPath string, a *lint.Analyzer) {
	t.Helper()
	fset, imp := sharedImporter()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture %s: %v", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("fixture %s has no Go files", dir)
	}
	info := lint.NewTypesInfo()
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { t.Errorf("fixture type error: %v", err) },
	}
	typesPkg, _ := conf.Check(pkgPath, fset, files, info)

	var got []lint.Diagnostic
	pass := lint.NewPass(a, fset, files, pkgPath, typesPkg, info, func(d lint.Diagnostic) {
		got = append(got, d)
	})
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	checkWants(t, fset, files, got)
}

// wantRe matches one expectation after a want marker: double-quoted or
// backquoted.
var wantRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// checkWants diffs diagnostics against `// want "re"` comments by
// (file, line). A `// want-below "re"` comment expects the diagnostic
// on the line after the comment — the escape hatch for diagnostics
// reported at comment positions (a reasonless //occamy:ordered), where
// a same-line want cannot live inside the directive itself.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, got []lint.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "want ")
				offset := 0
				if below := strings.Index(c.Text, "want-below "); below >= 0 {
					idx, offset = below, 1
				}
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(c.Text[idx:], -1) {
					pat := m[1]
					if m[2] != "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					k := key{filepath.Base(pos.Filename), pos.Line + offset}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}
	matched := make(map[key][]bool)
	for k, res := range wants {
		matched[k] = make([]bool, len(res))
	}
	for _, d := range got {
		k := key{filepath.Base(d.Pos.Filename), d.Pos.Line}
		found := false
		for i, re := range wants[k] {
			if !matched[k][i] && re.MatchString(d.Message) {
				matched[k][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s:%d: [%s] %s", k.file, k.line, d.Analyzer, d.Message)
		}
	}
	var missing []string
	for k, res := range wants {
		for i, re := range res {
			if !matched[k][i] {
				missing = append(missing, fmt.Sprintf("%s:%d: no diagnostic matching %q", k.file, k.line, re))
			}
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Error(m)
	}
}
