package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeEscapeFixture lays out a fake module with one package so escape
// attribution and staleness checks have real files to parse.
func writeEscapeFixture(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	src := `package p

func Hot(n int) *int {
	m := n * 2
	return &m
}

func (w Widget) Spin() int {
	return 1
}

type Widget struct{}
`
	if err := os.MkdirAll(filepath.Join(dir, "pkg"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "pkg", "f.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

const fakeMOutput = `# example/pkg
pkg/f.go:3:6: can inline Hot
pkg/f.go:4:2: moved to heap: m
pkg/f.go:5:9: &m escapes to heap
pkg/f.go:8:7: w does not escape
/usr/local/go/src/net/http/mapping.go:30: v escapes to heap
pkg/nosuch.go: malformed line without numbers
`

func TestParseEscapesAttribution(t *testing.T) {
	dir := writeEscapeFixture(t)
	escapes, err := parseEscapes(dir, strings.NewReader(fakeMOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(escapes) != 2 {
		t.Fatalf("got %d escapes, want 2: %+v", len(escapes), escapes)
	}
	for _, e := range escapes {
		if e.File != "pkg/f.go" || e.Func != "Hot" {
			t.Errorf("escape %+v: want file pkg/f.go func Hot", e)
		}
	}
	counts := CountEscapes(escapes)
	if counts["pkg Hot"] != 2 {
		t.Errorf("CountEscapes = %v, want pkg Hot -> 2", counts)
	}
}

func TestCheckEscapeBudgets(t *testing.T) {
	dir := writeEscapeFixture(t)
	escapes, err := parseEscapes(dir, strings.NewReader(fakeMOutput))
	if err != nil {
		t.Fatal(err)
	}

	within := []EscapeBudget{
		{Pkg: "pkg", Func: "Hot", Budget: 2},
		{Pkg: "pkg", Func: "Widget.Spin", Budget: 0},
	}
	if v, err := CheckEscapeBudgets(dir, within, escapes); err != nil || len(v) != 0 {
		t.Fatalf("within-budget check: violations=%v err=%v", v, err)
	}

	over := []EscapeBudget{{Pkg: "pkg", Func: "Hot", Budget: 1}}
	v, err := CheckEscapeBudgets(dir, over, escapes)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 1 || !strings.Contains(v[0], "2 heap escapes, budget 1") {
		t.Fatalf("over-budget check: %v", v)
	}

	stale := []EscapeBudget{{Pkg: "pkg", Func: "(*Gone).Missing", Budget: 0}}
	v, err = CheckEscapeBudgets(dir, stale, escapes)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 1 || !strings.Contains(v[0], "stale budget entry") {
		t.Fatalf("stale-entry check: %v", v)
	}
}

func TestParseEscapeBudgets(t *testing.T) {
	in := `# comment
internal/sim (*Engine).push 0

internal/pkt (*Pool).Get 1
`
	budgets, err := ParseEscapeBudgets(strings.NewReader(in), "escapes.txt")
	if err != nil {
		t.Fatal(err)
	}
	want := []EscapeBudget{
		{Pkg: "internal/sim", Func: "(*Engine).push", Budget: 0},
		{Pkg: "internal/pkt", Func: "(*Pool).Get", Budget: 1},
	}
	if len(budgets) != len(want) {
		t.Fatalf("got %v, want %v", budgets, want)
	}
	for i := range want {
		if budgets[i] != want[i] {
			t.Errorf("entry %d: got %+v, want %+v", i, budgets[i], want[i])
		}
	}

	if _, err := ParseEscapeBudgets(strings.NewReader("too few fields\n"), "escapes.txt"); err == nil {
		t.Error("malformed line: want error, got nil")
	}
}

func TestUpdateEscapeBudgets(t *testing.T) {
	dir := writeEscapeFixture(t)
	escapes, err := parseEscapes(dir, strings.NewReader(fakeMOutput))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "escapes.txt")
	orig := "# header stays\npkg Hot 0\n\npkg Widget.Spin 5\n"
	if err := os.WriteFile(path, []byte(orig), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := UpdateEscapeBudgets(path, escapes); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := "# header stays\npkg Hot 2\n\npkg Widget.Spin 0\n"
	if string(got) != want {
		t.Errorf("updated file:\n%s\nwant:\n%s", got, want)
	}
}

// TestRepoEscapeBudgetsHold is the live gate: the committed budgets in
// escapes.txt must hold against the current compiler output, so a hot
// path gaining an allocation fails `go test ./...`, not just CI's
// dedicated step. The build is cache-replayed, so this is cheap after
// the first run.
func TestRepoEscapeBudgetsHold(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go build")
	}
	moduleDir := "../.."
	escapes, err := CollectEscapes(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(moduleDir, "internal", "lint", "escapes.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	budgets, err := ParseEscapeBudgets(f, "escapes.txt")
	if err != nil {
		t.Fatal(err)
	}
	if len(budgets) == 0 {
		t.Fatal("escapes.txt has no entries")
	}
	violations, err := CheckEscapeBudgets(moduleDir, budgets, escapes)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range violations {
		t.Errorf("escape budget: %s", v)
	}
}
