package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// commitlast: HTTP handlers must validate before they commit.
//
// Once WriteHeader (or the first body write) runs, the status line and
// headers are on the wire; an error discovered afterwards can only be
// stitched onto an already-started body — the exact bug fixed twice
// before it was encoded here (PR 8's handleTrace committed `200
// text/csv` before checking the document had a trace, so a traceless
// run got a JSON error glued to a CSV preamble). The analyzer walks
// each handler-shaped function ((http.ResponseWriter, *http.Request)),
// tracks whether a commit can flow past each statement, and flags error
// writes — http.Error/http.NotFound, a second WriteHeader, or any use
// of the writer inside an error-check branch — that are reachable
// after a commit. Streaming writes after an intentional commit (a CSV
// loop) are not error writes and stay legal.

// AnalyzerCommitlast is the validate-before-commit handler check.
var AnalyzerCommitlast = &Analyzer{
	Name: "commitlast",
	Doc: "in net/http handlers, flag error responses (http.Error, a second WriteHeader, writer use in an " +
		"error branch) reachable after the response was already committed; validate first, commit last",
	Run: runCommitlast,
}

func runCommitlast(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ftyp *ast.FuncType
			var body *ast.BlockStmt
			switch v := n.(type) {
			case *ast.FuncDecl:
				ftyp, body = v.Type, v.Body
			case *ast.FuncLit:
				ftyp, body = v.Type, v.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			if w := handlerWriter(pass, ftyp); w != nil {
				c := &commitChecker{pass: pass, w: w, reported: make(map[token.Pos]bool)}
				c.stmts(body.List, false)
			}
			return true
		})
	}
	return nil
}

// handlerWriter returns the http.ResponseWriter parameter object of a
// handler-shaped signature (one ResponseWriter and one *Request param),
// or nil.
func handlerWriter(pass *Pass, ftyp *ast.FuncType) types.Object {
	if ftyp.Params == nil {
		return nil
	}
	var writer types.Object
	var hasReq bool
	for _, field := range ftyp.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			switch types.TypeString(obj.Type(), nil) {
			case "net/http.ResponseWriter":
				writer = obj
			case "*net/http.Request":
				hasReq = true
			}
		}
	}
	if !hasReq {
		return nil
	}
	return writer
}

// commitChecker carries the per-handler analysis state.
type commitChecker struct {
	pass     *Pass
	w        types.Object
	reported map[token.Pos]bool
}

// stmts analyzes a statement list given whether a commit has already
// escaped into it; it returns (committed at fall-through, list
// terminates). The flow model is deliberately simple — branches that
// end in return/panic don't leak their commits — which is exactly
// enough to separate commit-then-error from the legal patterns.
func (c *commitChecker) stmts(list []ast.Stmt, committed bool) (bool, bool) {
	for _, stmt := range list {
		var term bool
		committed, term = c.stmt(stmt, committed)
		if term {
			return committed, true
		}
	}
	return committed, false
}

func (c *commitChecker) stmt(stmt ast.Stmt, committed bool) (bool, bool) {
	switch v := stmt.(type) {
	case *ast.ReturnStmt:
		for _, e := range v.Results {
			committed = c.scanExpr(e, committed)
		}
		return committed, true
	case *ast.BranchStmt:
		// break/continue/goto leave this list; treat as terminating it.
		return committed, true
	case *ast.IfStmt:
		if v.Init != nil {
			committed, _ = c.stmt(v.Init, committed)
		}
		condCommitted := c.scanExpr(v.Cond, committed)
		if condCommitted && isFailureCond(v.Cond) {
			// Entering an error-check branch with the response committed:
			// any further touch of the writer in it is a late error write.
			c.flagWriterUse(v.Body)
		}
		thenOut, thenTerm := c.stmts(v.Body.List, condCommitted)
		elseOut, elseTerm := condCommitted, false
		hasElse := v.Else != nil
		switch e := v.Else.(type) {
		case *ast.BlockStmt:
			elseOut, elseTerm = c.stmts(e.List, condCommitted)
		case *ast.IfStmt:
			out, term := c.stmt(e, condCommitted)
			elseOut, elseTerm = out, term
		}
		out := condCommitted
		if !thenTerm && thenOut {
			out = true
		}
		if !elseTerm && elseOut {
			out = true
		}
		return out, thenTerm && elseTerm && hasElse
	case *ast.BlockStmt:
		return c.stmts(v.List, committed)
	case *ast.ForStmt:
		if v.Init != nil {
			committed, _ = c.stmt(v.Init, committed)
		}
		if v.Cond != nil {
			committed = c.scanExpr(v.Cond, committed)
		}
		bodyOut, _ := c.stmts(v.Body.List, committed)
		return committed || bodyOut, false
	case *ast.RangeStmt:
		committed = c.scanExpr(v.X, committed)
		bodyOut, _ := c.stmts(v.Body.List, committed)
		return committed || bodyOut, false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return c.switchLike(v, committed)
	case *ast.LabeledStmt:
		return c.stmt(v.Stmt, committed)
	case *ast.DeferStmt, *ast.GoStmt:
		return committed, false // deferred/concurrent writes: out of model
	case *ast.ExprStmt:
		return c.scanExpr(v.X, committed), false
	case *ast.AssignStmt:
		for _, e := range v.Rhs {
			committed = c.scanExpr(e, committed)
		}
		return committed, false
	case *ast.DeclStmt:
		committed = c.scanNode(v, committed)
		return committed, false
	default:
		if stmt == nil {
			return committed, false
		}
		return c.scanNode(stmt, committed), false
	}
}

// switchLike folds the clauses of a switch/type-switch/select.
func (c *commitChecker) switchLike(stmt ast.Stmt, committed bool) (bool, bool) {
	var clauses []ast.Stmt
	switch v := stmt.(type) {
	case *ast.SwitchStmt:
		if v.Init != nil {
			committed, _ = c.stmt(v.Init, committed)
		}
		if v.Tag != nil {
			committed = c.scanExpr(v.Tag, committed)
		}
		clauses = v.Body.List
	case *ast.TypeSwitchStmt:
		clauses = v.Body.List
	case *ast.SelectStmt:
		clauses = v.Body.List
	}
	out := committed
	allTerm := len(clauses) > 0
	hasDefault := false
	for _, cl := range clauses {
		var body []ast.Stmt
		switch cc := cl.(type) {
		case *ast.CaseClause:
			body = cc.Body
			if cc.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			body = cc.Body
			if cc.Comm == nil {
				hasDefault = true
			}
		}
		clOut, clTerm := c.stmts(body, committed)
		if !clTerm && clOut {
			out = true
		}
		allTerm = allTerm && clTerm
	}
	return out, allTerm && hasDefault
}

// scanExpr visits the calls inside an expression in source order,
// updating and returning the committed state (and reporting late error
// writes found along the way). Function literals are skipped.
func (c *commitChecker) scanExpr(e ast.Expr, committed bool) bool {
	if e == nil {
		return committed
	}
	return c.scanNode(e, committed)
}

func (c *commitChecker) scanNode(n ast.Node, committed bool) bool {
	ast.Inspect(n, func(node ast.Node) bool {
		if _, isLit := node.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch c.classify(call) {
		case commitWrite:
			committed = true
		case headerWrite:
			if committed {
				c.flag(call.Pos(), "WriteHeader after the response was already committed; the second status line is dropped — decide the status before the first write")
			}
			committed = true
		case errorWrite:
			if committed {
				c.flag(call.Pos(), "error response written after the response was already committed (headers are on the wire); validate before committing")
			}
			committed = true
		}
		return true
	})
	return committed
}

type callClass int

const (
	otherCall callClass = iota
	commitWrite
	headerWrite // w.WriteHeader: commit that must be first
	errorWrite  // http.Error / http.NotFound
)

// classify buckets a call by its effect on the response stream.
func (c *commitChecker) classify(call *ast.CallExpr) callClass {
	// Direct method calls on the writer.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == c.w {
			switch sel.Sel.Name {
			case "WriteHeader":
				return headerWrite
			case "Write":
				return commitWrite
			}
		}
	}
	fn := calleeFunc(c.pass.TypesInfo, call)
	if fn == nil || !c.argsMentionWriter(call) {
		return otherCall
	}
	name := fn.Name()
	if fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "net/http":
			switch name {
			case "Error", "NotFound":
				return errorWrite
			case "Redirect", "ServeFile", "ServeContent":
				return commitWrite
			}
		case "fmt":
			if strings.HasPrefix(name, "Fprint") {
				return commitWrite
			}
		case "io":
			switch name {
			case "Copy", "CopyN", "CopyBuffer", "WriteString":
				return commitWrite
			}
		}
	}
	// Methods like doc.WriteTraceCSV(w, stride): a Write* call handed
	// the writer commits the response.
	if strings.HasPrefix(name, "Write") {
		return commitWrite
	}
	return otherCall
}

// argsMentionWriter reports whether the writer parameter appears among
// the call's arguments.
func (c *commitChecker) argsMentionWriter(call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == c.w {
			return true
		}
	}
	return false
}

// flagWriterUse reports every call touching the writer inside an
// error-check branch entered with the response already committed.
func (c *commitChecker) flagWriterUse(body *ast.BlockStmt) {
	ast.Inspect(body, func(node ast.Node) bool {
		if _, isLit := node.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch c.classify(call) {
		case errorWrite, headerWrite:
			// The committed-state scan reports these with the precise
			// message; don't shadow it with the generic one.
			return true
		}
		if c.argsMentionWriter(call) || c.isWriterMethodCall(call) {
			c.flag(call.Pos(), "writer used in an error branch after the response was already committed; move validation before the first write")
			return false // the outermost call is enough
		}
		return true
	})
}

// isWriterMethodCall reports whether the call's receiver chain starts
// at the writer (w.WriteHeader(...), w.Header().Set(...)).
func (c *commitChecker) isWriterMethodCall(call *ast.CallExpr) bool {
	e := ast.Unparen(call.Fun)
	for {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		switch x := ast.Unparen(sel.X).(type) {
		case *ast.Ident:
			return c.pass.TypesInfo.Uses[x] == c.w
		case *ast.CallExpr:
			e = ast.Unparen(x.Fun)
		case *ast.SelectorExpr:
			e = x
		default:
			return false
		}
	}
}

// flag reports once per position.
func (c *commitChecker) flag(pos token.Pos, msg string) {
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, "%s", msg)
}

// isFailureCond recognizes error-check conditions: any nil comparison
// in the condition tree, or a top-level negation (`if !ok`).
func isFailureCond(cond ast.Expr) bool {
	switch v := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		return v.Op == token.NOT
	}
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok && (b.Op == token.NEQ || b.Op == token.EQL) {
			if isNilIdent(b.X) || isNilIdent(b.Y) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}
