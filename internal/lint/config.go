package lint

import "strings"

// Package allowlists
//
// The determinism contract (SCENARIOS.md) and the single-threaded event
// core are properties of specific packages, not of the whole module:
// the service edge legitimately reads wall clocks and spawns workers.
// This file is the single place that split is encoded — analyzers
// consult these sets instead of scattering per-file suppressions.
//
// Membership is by package base name ("sim" matches both
// "occamy/internal/sim" and a lint fixture's "sim"), which keeps the
// testdata fixtures honest: they exercise the very same matching the
// real tree gets.

// deterministicCore names the packages under the byte-identical-replay
// contract: given a seed, a run must not observe wall clocks, global
// randomness, or the environment. Edge packages (service, fleet,
// loadgen, metrics, experiments, trace, hw, bm) are deliberately
// absent — wall time is their job.
var deterministicCore = map[string]bool{
	"core":      true,
	"sim":       true,
	"pkt":       true,
	"cellmem":   true,
	"netsim":    true,
	"switchsim": true,
	"transport": true,
	"linkfault": true,
	"workload":  true,
	"scenario":  true,
}

// eventCore names the single-threaded discrete-event packages: all
// parallelism must flow through the sanctioned seams (experiments.
// RunGrid today, the parallel-DES shard boundary tomorrow), never
// through goroutines, channels, or locks inside the event loop itself.
var eventCore = map[string]bool{
	"core":      true,
	"sim":       true,
	"switchsim": true,
	"netsim":    true,
	"transport": true,
}

// IsDeterministicCore reports whether the package at pkgPath is under
// the determinism contract.
func IsDeterministicCore(pkgPath string) bool {
	return deterministicCore[pkgBase(pkgPath)]
}

// IsEventCore reports whether the package at pkgPath is part of the
// single-threaded event core.
func IsEventCore(pkgPath string) bool {
	return eventCore[pkgBase(pkgPath)]
}

func pkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerDetrand,
		AnalyzerMaporder,
		AnalyzerNogoroutine,
		AnalyzerAtomicfield,
		AnalyzerCommitlast,
	}
}
