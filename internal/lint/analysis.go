// Package lint is occamy's static-analysis suite: custom analyzers
// enforcing the invariants the whole stack rests on — deterministic
// cores free of wall clocks and global randomness, a single-threaded
// event core, ordered map iteration wherever order becomes output,
// all-atomic-or-none field access, and validate-before-commit HTTP
// handlers. LINT.md documents each invariant and why it exists.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, positional diagnostics, `want`-comment fixtures)
// but is built on the standard library alone, so the module keeps its
// zero-dependency property. cmd/occamy-vet is the multichecker.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check, run once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics ("detrand").
	Name string
	// Doc is the one-paragraph description printed by occamy-vet -list.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed non-test sources, with comments.
	Files []*ast.File
	// PkgPath is the import path ("occamy/internal/sim"); fixture
	// packages use their testdata-relative path ("sim").
	PkgPath string
	// Pkg and TypesInfo come from the type checker. Pkg may be
	// incomplete if the package had type errors; analyzers must
	// tolerate nil objects in the info maps.
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// NewPass assembles a Pass outside RunAnalyzers — the seam linttest
// uses to drive an analyzer over a fixture package.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkgPath string,
	pkg *types.Package, info *types.Info, report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		PkgPath:   pkgPath,
		Pkg:       pkg,
		TypesInfo: info,
		report:    report,
	}
}

// Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// RunAnalyzers applies every analyzer to every package and returns the
// findings sorted by position (then analyzer name), so output order is
// deterministic — the suite holds itself to its own maporder rules.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				PkgPath:   pkg.ImportPath,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// calleeFunc resolves a call expression to the function object it
// invokes, or nil (builtins, type conversions, indirect calls).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is a package-level function (not a
// method) of the package with the given import path.
func isPkgFunc(fn *types.Func, pkgPath string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
