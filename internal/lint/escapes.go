package lint

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// The escape-budget gate complements the analyzers: the analyzers keep
// the *source* deterministic, the gate keeps the *compiled* hot paths
// allocation-free. It parses `go build -gcflags=-m` diagnostics,
// attributes every "escapes to heap" / "moved to heap" line to its
// enclosing function, and compares the per-function counts against a
// committed budget file (internal/lint/escapes.txt). A function that
// gains an escape beyond its budget fails the gate; a budget entry
// whose function no longer exists fails too, so the file cannot go
// stale silently.

// Escape is one heap-escape diagnostic attributed to its enclosing
// function.
type Escape struct {
	File string // module-root-relative path, as printed by the compiler
	Line int
	Func string // receiver-qualified name, e.g. (*Engine).push; "" at package scope
	Msg  string
}

// EscapeBudget is one line of the allowlist: the named function in the
// named package directory may contain at most Budget heap escapes.
type EscapeBudget struct {
	Pkg    string // package dir relative to the module root, e.g. internal/sim
	Func   string // receiver-qualified, e.g. (*Engine).push
	Budget int
}

var escapeLineRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.+)$`)

func isEscapeMsg(msg string) bool {
	return strings.HasSuffix(msg, "escapes to heap") ||
		strings.Contains(msg, "escapes to heap:") ||
		strings.HasPrefix(msg, "moved to heap:")
}

// CollectEscapes runs `go build -gcflags=-m <patterns>` in moduleDir
// and returns the attributed heap-escape diagnostics. The build cache
// replays compiler stderr, so repeated runs are cheap.
func CollectEscapes(moduleDir string, patterns ...string) ([]Escape, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"build", "-gcflags=-m"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	var out bytes.Buffer
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		// -m output goes to stderr even on success; a build failure
		// leaves real errors there too, so surface them.
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, out.String())
	}
	return parseEscapes(moduleDir, &out)
}

// parseEscapes scans -m output and attributes each escape diagnostic
// to its enclosing function by parsing the referenced file once.
func parseEscapes(moduleDir string, r io.Reader) ([]Escape, error) {
	cache := map[string][]funcSpan{}
	var escapes []Escape
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := escapeLineRe.FindStringSubmatch(sc.Text())
		if m == nil || !isEscapeMsg(m[4]) {
			continue
		}
		line, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		file := m[1]
		// The build cache replays stderr from dependency builds too
		// (stdlib files show up with absolute paths); only
		// module-relative paths belong to the gate.
		if filepath.IsAbs(file) || strings.HasPrefix(file, "..") {
			continue
		}
		spans, ok := cache[file]
		if !ok {
			spans, err = fileFuncSpans(filepath.Join(moduleDir, file))
			if err != nil {
				return nil, fmt.Errorf("attributing %s:%d: %v", file, line, err)
			}
			cache[file] = spans
		}
		escapes = append(escapes, Escape{
			File: file,
			Line: line,
			Func: enclosingFunc(spans, line),
			Msg:  m[4],
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return escapes, nil
}

type funcSpan struct {
	start, end int // line range, inclusive
	name       string
}

func fileFuncSpans(path string) ([]funcSpan, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	var spans []funcSpan
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		spans = append(spans, funcSpan{
			start: fset.Position(fd.Pos()).Line,
			end:   fset.Position(fd.End()).Line,
			name:  funcDeclName(fd),
		})
	}
	return spans, nil
}

// funcDeclName renders a receiver-qualified function name the way the
// budget file spells it: push, (*Engine).push, Time.String.
func funcDeclName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	ptr := false
	if st, ok := t.(*ast.StarExpr); ok {
		ptr = true
		t = st.X
	}
	switch x := t.(type) { // drop type parameters on generic receivers
	case *ast.IndexExpr:
		t = x.X
	case *ast.IndexListExpr:
		t = x.X
	}
	name := "?"
	if id, ok := t.(*ast.Ident); ok {
		name = id.Name
	}
	if ptr {
		return "(*" + name + ")." + fd.Name.Name
	}
	return name + "." + fd.Name.Name
}

func enclosingFunc(spans []funcSpan, line int) string {
	for _, s := range spans {
		if s.start <= line && line <= s.end {
			return s.name
		}
	}
	return ""
}

// ParseEscapeBudgets reads the budget file: one entry per line,
// `<pkg-dir> <func> <max-escapes>`, '#' comments and blank lines
// ignored.
func ParseEscapeBudgets(r io.Reader, filename string) ([]EscapeBudget, error) {
	var budgets []EscapeBudget
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: want `<pkg-dir> <func> <max-escapes>`, got %q", filename, lineno, line)
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("%s:%d: bad escape budget %q", filename, lineno, fields[2])
		}
		budgets = append(budgets, EscapeBudget{Pkg: fields[0], Func: fields[1], Budget: n})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return budgets, nil
}

// CountEscapes folds attributed escapes into per-(pkg-dir, func)
// counts, keyed the way budget entries are spelled.
func CountEscapes(escapes []Escape) map[string]int {
	counts := map[string]int{}
	for _, e := range escapes {
		if e.Func == "" {
			continue
		}
		counts[escapeKey(filepath.ToSlash(filepath.Dir(e.File)), e.Func)]++
	}
	return counts
}

func escapeKey(pkg, fn string) string { return pkg + " " + fn }

// CheckEscapeBudgets compares attributed escapes against the budgets.
// It returns one human-readable violation per over-budget function and
// per stale budget entry (a function that no longer exists in its
// package — moduleDir is consulted to verify existence).
func CheckEscapeBudgets(moduleDir string, budgets []EscapeBudget, escapes []Escape) ([]string, error) {
	counts := CountEscapes(escapes)
	// First occurrence positions make violations actionable.
	firstAt := map[string]string{}
	for _, e := range escapes {
		k := escapeKey(filepath.ToSlash(filepath.Dir(e.File)), e.Func)
		if _, ok := firstAt[k]; !ok {
			firstAt[k] = fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
		}
	}
	var violations []string
	for _, b := range budgets {
		k := escapeKey(b.Pkg, b.Func)
		got := counts[k]
		if got > b.Budget {
			violations = append(violations,
				fmt.Sprintf("%s %s: %d heap escapes, budget %d (first: %s)", b.Pkg, b.Func, got, b.Budget, firstAt[k]))
			continue
		}
		ok, err := funcExistsIn(filepath.Join(moduleDir, b.Pkg), b.Func)
		if err != nil {
			return nil, err
		}
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%s %s: stale budget entry, no such function (update internal/lint/escapes.txt)", b.Pkg, b.Func))
		}
	}
	sort.Strings(violations)
	return violations, nil
}

// funcExistsIn reports whether the receiver-qualified function name is
// declared in any non-test .go file of the package directory.
func funcExistsIn(dir, fn string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, fmt.Errorf("escape budget: %v", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		spans, err := fileFuncSpans(filepath.Join(dir, name))
		if err != nil {
			return false, err
		}
		for _, s := range spans {
			if s.name == fn {
				return true, nil
			}
		}
	}
	return false, nil
}

// UpdateEscapeBudgets rewrites the budget counts in the file at path to
// the observed counts, preserving comments, blank lines, and entry
// order. Entries for functions with zero current escapes keep budget 0.
func UpdateEscapeBudgets(path string, escapes []Escape) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	counts := CountEscapes(escapes)
	var out strings.Builder
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		fields := strings.Fields(trimmed)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") || len(fields) != 3 {
			out.WriteString(line)
			out.WriteByte('\n')
			continue
		}
		fmt.Fprintf(&out, "%s %s %d\n", fields[0], fields[1], counts[escapeKey(fields[0], fields[1])])
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(out.String()), 0o644)
}
