package sim

import "math"

// Rand is a small, fast, deterministic PRNG (xoshiro256** seeded via
// SplitMix64). Experiments construct one per run from an explicit seed so
// that every figure in EXPERIMENTS.md is exactly reproducible. It
// deliberately mirrors the subset of math/rand we need without pulling in
// global locked state.
type Rand struct {
	s [4]uint64
}

func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRand returns a generator seeded deterministically from seed.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed value with mean 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Exp returns an exponentially distributed duration with the given mean.
// Used for Poisson inter-arrival times in the workload generators.
func (r *Rand) Exp(mean float64) float64 {
	return r.ExpFloat64() * mean
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Fork derives an independent child generator. Children created in a
// fixed order are themselves deterministic, which lets each host/flow own
// a private stream without cross-coupling arrival processes.
func (r *Rand) Fork() *Rand {
	return NewRand(r.Uint64())
}
