package sim

import "testing"

// BenchmarkEngineThroughput measures raw event-processing rate — the
// budget every simulation spends.
func BenchmarkEngineThroughput(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(1, func() {})
		if e.Pending() > 1024 {
			e.RunFor(2048)
		}
	}
	e.Run()
}

// BenchmarkEngineTimerChurn measures the arm/cancel pattern the
// transport RTO path generates.
func BenchmarkEngineTimerChurn(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := e.AfterTimer(1000, func() {})
		t.Stop()
		if e.Pending() > 1024 {
			e.RunFor(10)
		}
	}
	e.Run()
}

type benchHandler struct{ n int }

func (h *benchHandler) OnEvent(any) { h.n++ }

// BenchmarkEngineTypedEvent measures the zero-capture scheduling path
// the switch and host datapaths use.
func BenchmarkEngineTypedEvent(b *testing.B) {
	e := NewEngine()
	h := &benchHandler{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.AfterEvent(1, h, nil)
		if e.Pending() > 1024 {
			e.RunFor(2048)
		}
	}
	e.Run()
	if h.n != b.N {
		b.Fatalf("handled %d events, want %d", h.n, b.N)
	}
	b.ReportMetric(float64(e.Processed())/b.Elapsed().Seconds(), "events/sec")
}

func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkRandExp(b *testing.B) {
	r := NewRand(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Exp(1)
	}
	_ = sink
}
