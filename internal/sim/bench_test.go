package sim

import "testing"

// BenchmarkEngineThroughput measures raw event-processing rate — the
// budget every simulation spends.
func BenchmarkEngineThroughput(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(1, func() {})
		if e.Pending() > 1024 {
			e.RunFor(2048)
		}
	}
	e.Run()
}

// BenchmarkEngineTimerChurn measures the arm/cancel pattern the
// transport RTO path generates.
func BenchmarkEngineTimerChurn(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := e.AfterTimer(1000, func() {})
		t.Stop()
		if e.Pending() > 1024 {
			e.RunFor(10)
		}
	}
	e.Run()
}

func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkRandExp(b *testing.B) {
	r := NewRand(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Exp(1)
	}
	_ = sink
}
