// Package sim provides a deterministic discrete-event simulation engine.
//
// All simulators in this repository (the shared-memory switch model, the
// transport stack, and the network-level experiments) are driven by a
// single Engine: a virtual clock plus a binary-heap event queue. Events
// scheduled for the same instant fire in scheduling order, which makes
// every run bit-for-bit reproducible given the same seed.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a virtual timestamp in nanoseconds since the start of the run.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = Time

// Handy duration units, mirroring time.Nanosecond etc. for virtual time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time.
const MaxTime Time = math.MaxInt64

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

func (t Time) String() string {
	switch {
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.3fms", t.Millis())
	default:
		return fmt.Sprintf("%.6fs", t.Seconds())
	}
}

// event is a scheduled callback. seq breaks ties so that events at the
// same timestamp run in FIFO scheduling order.
type event struct {
	at     Time
	seq    uint64
	fn     func()
	cancel *bool // non-nil when the event is cancelable
	index  int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; simulations are deterministic single-goroutine
// programs by design.
type Engine struct {
	now       Time
	seq       uint64
	events    eventHeap
	processed uint64
	stopped   bool
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of scheduled events that have not yet fired.
func (e *Engine) Pending() int { return len(e.events) }

// Processed returns the total number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: that is always a simulation bug, not a recoverable state.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", int64(d)))
	}
	e.At(e.now+d, fn)
}

// Timer is a cancelable scheduled event.
type Timer struct {
	canceled *bool
	at       Time
}

// Stop cancels the timer. It is safe to call Stop multiple times and
// after the timer has fired (in which case it has no effect). It reports
// whether the call prevented the timer from firing.
func (t *Timer) Stop() bool {
	if t == nil || t.canceled == nil || *t.canceled {
		return false
	}
	*t.canceled = true
	return true
}

// Deadline returns the virtual time at which the timer fires.
func (t *Timer) Deadline() Time { return t.at }

// AfterTimer schedules fn after d and returns a handle that can cancel it.
func (e *Engine) AfterTimer(d Duration, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", int64(d)))
	}
	canceled := new(bool)
	at := e.now + d
	e.seq++
	heap.Push(&e.events, &event{at: at, seq: e.seq, fn: fn, cancel: canceled})
	return &Timer{canceled: canceled, at: at}
}

// Stop halts Run/RunUntil after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// step executes the earliest pending event. It reports false when the
// queue is empty or the engine was stopped.
func (e *Engine) step(limit Time) bool {
	if e.stopped || len(e.events) == 0 {
		return false
	}
	next := e.events[0]
	if next.at > limit {
		return false
	}
	heap.Pop(&e.events)
	e.now = next.at
	if next.cancel != nil {
		if *next.cancel {
			return true // canceled timer: consume silently
		}
		*next.cancel = true // fired: a later Stop must report false
	}
	e.processed++
	next.fn()
	return true
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	for e.step(MaxTime) {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to exactly t (even if no event lands there).
func (e *Engine) RunUntil(t Time) {
	for e.step(t) {
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// RunFor advances the simulation by d from the current time.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now + d) }

// Every schedules fn at t, t+period, t+2*period, ... until the returned
// Ticker is stopped. fn runs before the next occurrence is scheduled.
type Ticker struct {
	stopped bool
}

// Stop halts the ticker after the current occurrence (if any) completes.
func (t *Ticker) Stop() { t.stopped = true }

// Every starts a periodic event with the given start offset and period.
func (e *Engine) Every(start Duration, period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	tk := &Ticker{}
	var tick func()
	tick = func() {
		if tk.stopped {
			return
		}
		fn()
		if !tk.stopped {
			e.After(period, tick)
		}
	}
	e.After(start, tick)
	return tk
}
