// Package sim provides a deterministic discrete-event simulation engine.
//
// All simulators in this repository (the shared-memory switch model, the
// transport stack, and the network-level experiments) are driven by a
// single Engine: a virtual clock plus a priority event queue. Events
// scheduled for the same instant fire in scheduling order, which makes
// every run bit-for-bit reproducible given the same seed.
//
// # Engine architecture
//
// The event queue is a hand-rolled 4-ary min-heap stored in a flat
// []event slice of value-type events — no per-event heap allocation and
// no container/heap interface boxing. A 4-ary layout halves the tree
// depth of a binary heap, turning pop's cache-missing parent-child
// pointer chases into mostly-linear scans of four adjacent siblings;
// push stays O(log4 n). Ordering is (timestamp, seq): seq is a
// monotonically increasing scheduling counter, so same-timestamp events
// fire in FIFO scheduling order.
//
// Events come in two flavors:
//
//   - Closure events (At/After/AfterTimer/Every): the event carries a
//     func(). Convenient, but each distinct capture allocates a closure
//     at the call site.
//   - Typed events (AtEvent/AfterEvent): the event carries a Handler
//     interface plus an opaque arg. Hot paths (switch ports, host NICs)
//     implement Handler once and schedule with zero allocations —
//     storing a pointer in an `any` does not allocate.
//
// Timer cancellation uses generation counters instead of a *bool per
// timer: the engine keeps a freelist of timer slots, each with a
// generation that is bumped when the slot's event is consumed. A Timer
// handle is a value (slot index + generation); Stop is valid only while
// the generations match, so handles held after firing or slot reuse
// harmlessly report false. Arming a timer performs no heap allocation.
package sim

import (
	"encoding/json"
	"fmt"
	"math"
	"time"
)

// Time is a virtual timestamp in nanoseconds since the start of the run.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = Time

// Handy duration units, mirroring time.Nanosecond etc. for virtual time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time.
const MaxTime Time = math.MaxInt64

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

func (t Time) String() string {
	switch {
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.3fms", t.Millis())
	default:
		return fmt.Sprintf("%.6fs", t.Seconds())
	}
}

// MarshalJSON renders the value in Go duration syntax ("150µs", "2ms"),
// so serialized scenario specs stay human-editable. Nanosecond-exact
// round trip: time.Duration.String always parses back to the same count.
func (t Time) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(t).String())
}

// UnmarshalJSON accepts Go duration syntax ("2ms") or a bare integer
// nanosecond count.
func (t *Time) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		d, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("sim: bad duration %q: %w", s, err)
		}
		*t = Time(d.Nanoseconds())
		return nil
	}
	var ns int64
	if err := json.Unmarshal(data, &ns); err != nil {
		return fmt.Errorf("sim: duration must be a string like \"2ms\" or integer nanoseconds, got %s", data)
	}
	*t = Time(ns)
	return nil
}

// Handler receives typed events scheduled with AtEvent/AfterEvent. A
// single object may multiplex several event kinds by distinguishing on
// arg (e.g. nil vs a packet pointer).
type Handler interface {
	OnEvent(arg any)
}

// event is a scheduled callback, stored by value in the heap slice. seq
// breaks ties so that events at the same timestamp run in FIFO
// scheduling order. Exactly one of fn/h is set. slot is the 1-based
// timer-slot index for cancelable events, 0 otherwise.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	h    Handler
	arg  any
	slot int32
}

// evLess orders events by (timestamp, scheduling order).
func evLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// timerSlot is the engine-side state of one cancelable timer. Slots are
// recycled through a freelist once their event is consumed; gen
// invalidates stale Timer handles across reuses.
type timerSlot struct {
	gen      uint64
	canceled bool
}

// Engine is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; simulations are deterministic single-goroutine
// programs by design (run concurrent sweeps with one Engine per
// goroutine instead).
type Engine struct {
	now       Time
	seq       uint64
	events    []event // 4-ary min-heap
	processed uint64
	stopped   bool

	slots     []timerSlot
	freeSlots []int32
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of scheduled events that have not yet fired.
func (e *Engine) Pending() int { return len(e.events) }

// Processed returns the total number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// --- 4-ary heap ------------------------------------------------------------

// push appends ev and restores the heap property by sifting up.
func (e *Engine) push(ev event) {
	e.events = append(e.events, ev)
	s := e.events
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !evLess(&ev, &s[p]) {
			break
		}
		s[i] = s[p]
		i = p
	}
	s[i] = ev
}

// pop removes and returns the earliest event.
func (e *Engine) pop() event {
	s := e.events
	root := s[0]
	n := len(s) - 1
	last := s[n]
	s[n] = event{} // release fn/h/arg references
	e.events = s[:n]
	if n > 0 {
		// Sift last down from the root: at each level pick the smallest
		// of up to four adjacent children.
		s = e.events
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for k := c + 1; k < end; k++ {
				if evLess(&s[k], &s[m]) {
					m = k
				}
			}
			if !evLess(&s[m], &last) {
				break
			}
			s[i] = s[m]
			i = m
		}
		s[i] = last
	}
	return root
}

// --- Scheduling ------------------------------------------------------------

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: that is always a simulation bug, not a recoverable state.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", int64(d)))
	}
	e.At(e.now+d, fn)
}

// AtEvent schedules a typed event: h.OnEvent(arg) runs at absolute time
// t. Unlike At, no closure is involved — callers that implement Handler
// schedule without any allocation.
func (e *Engine) AtEvent(t Time, h Handler, arg any) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, h: h, arg: arg})
}

// AfterEvent schedules h.OnEvent(arg) d nanoseconds from now.
func (e *Engine) AfterEvent(d Duration, h Handler, arg any) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", int64(d)))
	}
	e.AtEvent(e.now+d, h, arg)
}

// Timer is a cancelable scheduled event. It is a small value: copy it
// freely. The zero Timer is valid and behaves like an already-fired one.
type Timer struct {
	e    *Engine
	slot int32
	gen  uint64
	at   Time
}

// Stop cancels the timer. It is safe to call Stop multiple times and
// after the timer has fired (in which case it has no effect). It reports
// whether the call prevented the timer from firing.
func (t Timer) Stop() bool {
	if t.e == nil {
		return false
	}
	sl := &t.e.slots[t.slot]
	if sl.gen != t.gen || sl.canceled {
		return false // fired, or slot reused by a newer timer
	}
	sl.canceled = true
	return true
}

// Deadline returns the virtual time at which the timer fires.
func (t Timer) Deadline() Time { return t.at }

// AfterTimer schedules fn after d and returns a handle that can cancel
// it. Arming allocates nothing: the timer state lives in a recycled
// engine slot and the handle is returned by value.
func (e *Engine) AfterTimer(d Duration, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", int64(d)))
	}
	var si int32
	if n := len(e.freeSlots); n > 0 {
		si = e.freeSlots[n-1]
		e.freeSlots = e.freeSlots[:n-1]
	} else {
		e.slots = append(e.slots, timerSlot{})
		si = int32(len(e.slots) - 1)
	}
	sl := &e.slots[si]
	sl.gen++
	sl.canceled = false
	at := e.now + d
	e.seq++
	e.push(event{at: at, seq: e.seq, fn: fn, slot: si + 1})
	return Timer{e: e, slot: si, gen: sl.gen, at: at}
}

// Stop halts Run/RunUntil after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// step executes the earliest pending event. It reports false when the
// queue is empty or the engine was stopped.
func (e *Engine) step(limit Time) bool {
	if e.stopped || len(e.events) == 0 {
		return false
	}
	if e.events[0].at > limit {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	if ev.slot > 0 {
		sl := &e.slots[ev.slot-1]
		canceled := sl.canceled
		// Consuming the event retires the slot: bump the generation so a
		// later Stop (including from inside the callback) reports false,
		// then recycle the slot.
		sl.gen++
		sl.canceled = false
		e.freeSlots = append(e.freeSlots, ev.slot-1)
		if canceled {
			return true // canceled timer: consume silently
		}
	}
	e.processed++
	if ev.h != nil {
		ev.h.OnEvent(ev.arg)
	} else {
		ev.fn()
	}
	return true
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	for e.step(MaxTime) {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to exactly t (even if no event lands there).
func (e *Engine) RunUntil(t Time) {
	for e.step(t) {
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// RunFor advances the simulation by d from the current time.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now + d) }

// Every schedules fn at t, t+period, t+2*period, ... until the returned
// Ticker is stopped. fn runs before the next occurrence is scheduled.
type Ticker struct {
	stopped bool
}

// Stop halts the ticker after the current occurrence (if any) completes.
// Stopping from inside the tick callback is safe and prevents the next
// occurrence from being scheduled.
func (t *Ticker) Stop() { t.stopped = true }

// Every starts a periodic event with the given start offset and period.
// The tick closure is allocated once; each recurrence reuses it, so a
// running ticker schedules with zero per-tick allocations.
func (e *Engine) Every(start Duration, period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	tk := &Ticker{}
	var tick func()
	tick = func() {
		if tk.stopped {
			return
		}
		fn()
		if !tk.stopped {
			e.After(period, tick)
		}
	}
	e.After(start, tick)
	return tk
}
