package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events out of scheduling order: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var recur func()
	recur = func() {
		count++
		if count < 5 {
			e.After(7, recur)
		}
	}
	e.After(0, recur)
	e.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Now() != 28 {
		t.Fatalf("Now = %v, want 28", e.Now())
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(10, func() { fired = true })
	e.At(100, func() { t.Error("event beyond limit fired") })
	e.RunUntil(50)
	if !fired {
		t.Fatal("event before limit did not fire")
	}
	if e.Now() != 50 {
		t.Fatalf("Now = %v, want 50", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
}

func TestRunForRelative(t *testing.T) {
	e := NewEngine()
	e.RunFor(25)
	e.RunFor(25)
	if e.Now() != 50 {
		t.Fatalf("Now = %v, want 50", e.Now())
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.AfterTimer(10, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("first Stop returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	e.Run()
	if fired {
		t.Fatal("canceled timer fired")
	}
}

func TestTimerFiresThenStopIsNoop(t *testing.T) {
	e := NewEngine()
	fired := 0
	tm := e.AfterTimer(10, func() { fired++ })
	e.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if tm.Stop() {
		t.Fatal("Stop after fire returned true")
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(1, func() { ran++; e.Stop() })
	e.At(2, func() { ran++ })
	e.Run()
	if ran != 1 {
		t.Fatalf("ran = %d events after Stop, want 1", ran)
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	n := 0
	var tk *Ticker
	tk = e.Every(0, 10, func() {
		n++
		if n == 4 {
			tk.Stop()
		}
	})
	e.Run()
	if n != 4 {
		t.Fatalf("ticks = %d, want 4", n)
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

// A fired timer's handle must be fully inert — even when Stop is called
// from inside the timer's own callback.
func TestTimerStopInsideOwnCallback(t *testing.T) {
	e := NewEngine()
	var tm Timer
	stopped := true
	tm = e.AfterTimer(10, func() { stopped = tm.Stop() })
	e.Run()
	if stopped {
		t.Fatal("Stop from inside the firing callback returned true")
	}
}

// A stale handle from a fired timer must not cancel a newer timer that
// recycled the same slot.
func TestTimerSlotReuseIsolation(t *testing.T) {
	e := NewEngine()
	old := e.AfterTimer(1, func() {})
	e.Run() // fires; slot returns to the freelist
	fired := false
	fresh := e.AfterTimer(5, func() { fired = true }) // reuses the slot
	if old.Stop() {
		t.Fatal("stale handle Stop returned true")
	}
	e.Run()
	if !fired {
		t.Fatal("stale handle canceled the reused slot's timer")
	}
	if fresh.Stop() {
		t.Fatal("Stop after firing returned true")
	}
}

// The zero Timer behaves like an already-fired timer.
func TestZeroTimerStop(t *testing.T) {
	var tm Timer
	if tm.Stop() {
		t.Fatal("zero Timer Stop returned true")
	}
	if tm.Deadline() != 0 {
		t.Fatal("zero Timer Deadline non-zero")
	}
}

// Stopping a ticker from inside its own tick must prevent any further
// occurrence and let the engine drain.
func TestTickerStopFromOwnTick(t *testing.T) {
	e := NewEngine()
	n := 0
	var tk *Ticker
	tk = e.Every(0, 7, func() {
		n++
		tk.Stop()
	})
	e.Run()
	if n != 1 {
		t.Fatalf("ticks after self-stop = %d, want 1", n)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after stopped ticker, want 0", e.Pending())
	}
}

type recordHandler struct {
	got *[]int
}

func (h recordHandler) OnEvent(arg any) { *h.got = append(*h.got, arg.(int)) }

// Typed events and closure events at the same timestamp interleave in
// scheduling order — the determinism contract is flavor-blind.
func TestTypedEventFIFOWithClosures(t *testing.T) {
	e := NewEngine()
	var got []int
	h := recordHandler{&got}
	e.At(5, func() { got = append(got, 0) })
	e.AtEvent(5, h, 1)
	e.At(5, func() { got = append(got, 2) })
	e.AtEvent(5, h, 3)
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("mixed same-time events out of order: %v", got)
		}
	}
	if len(got) != 4 {
		t.Fatalf("ran %d events, want 4", len(got))
	}
}

type nopHandler struct{}

func (nopHandler) OnEvent(any) {}

// The hot scheduling paths must not allocate (beyond amortized heap
// slice growth, which a warmed engine avoids).
func TestSchedulingDoesNotAllocate(t *testing.T) {
	e := NewEngine()
	var h nopHandler
	fn := func() {}
	// Warm the heap and slot freelist.
	for i := 0; i < 1024; i++ {
		e.AfterTimer(Duration(i), fn).Stop()
		e.AtEvent(Time(i), h, nil)
	}
	e.Run()
	allocs := testing.AllocsPerRun(100, func() {
		e.AfterTimer(10, fn).Stop()
		e.AtEvent(e.Now()+1, h, nil)
		e.RunFor(2)
	})
	if allocs > 0 {
		t.Fatalf("scheduling allocated %.1f objects/op, want 0", allocs)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500us"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

// Property: an engine processes every scheduled event exactly once and
// the clock is monotonically non-decreasing across callbacks.
func TestEngineProcessesAllEvents(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var last Time = -1
		count := 0
		for _, d := range delays {
			e.At(Time(d), func() {
				if e.Now() < last {
					t.Errorf("clock went backwards: %v after %v", e.Now(), last)
				}
				last = e.Now()
				count++
			})
		}
		e.Run()
		return count == len(delays) && e.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
