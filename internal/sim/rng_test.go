package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterministic(t *testing.T) {
	a := NewRand(42)
	b := NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestRandDifferentSeedsDiffer(t *testing.T) {
	a := NewRand(1)
	b := NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestRandZeroSeedWorks(t *testing.T) {
	r := NewRand(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 95 {
		t.Fatalf("zero-seeded generator produced only %d distinct values", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		if n == 0 {
			return true
		}
		r := NewRand(seed)
		for i := 0; i < 100; i++ {
			v := r.Intn(int(n))
			if v < 0 || v >= int(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := NewRand(99)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(3.0)
	}
	mean := sum / n
	if math.Abs(mean-3.0) > 0.05 {
		t.Fatalf("Exp(3.0) sample mean = %v, want ~3.0", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := NewRand(seed)
		p := r.Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewRand(5)
	c1 := parent.Fork()
	c2 := parent.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked children produced %d/100 identical outputs", same)
	}
}

func TestUniformityRough(t *testing.T) {
	r := NewRand(123)
	const buckets = 16
	const n = 160000
	var hist [buckets]int
	for i := 0; i < n; i++ {
		hist[r.Intn(buckets)]++
	}
	want := n / buckets
	for i, c := range hist {
		if math.Abs(float64(c-want)) > 0.05*float64(want) {
			t.Fatalf("bucket %d count %d deviates >5%% from %d", i, c, want)
		}
	}
}
