package experiments

import (
	"bytes"
	"testing"
)

// render flattens a table to the exact bytes the CLI would print.
func render(t *Table) string {
	var buf bytes.Buffer
	t.Fprint(&buf)
	return buf.String()
}

// tinyDPDK keeps the determinism runs to a few hundred milliseconds.
func tinyDPDK() DPDKScale {
	sc := QuickDPDK()
	sc.Queries = 3
	sc.SizeFracs = []float64{0.6}
	return sc
}

func tinyFabric() FabricScale {
	sc := QuickFabric()
	sc.Queries = 2
	sc.SizeFracs = []float64{0.4}
	return sc
}

// Identical seeds must give byte-identical tables on repeated runs — the
// engine's FIFO tie-break and the per-run RNG forks are the whole story.
func TestDPDKExperimentDeterministic(t *testing.T) {
	sc := tinyDPDK()
	a := render(Fig13SoftwareSwitch(sc))
	b := render(Fig13SoftwareSwitch(sc))
	if a != b {
		t.Fatalf("Fig13 differs across identical runs:\n--- first\n%s--- second\n%s", a, b)
	}
}

func TestFabricExperimentDeterministic(t *testing.T) {
	sc := tinyFabric()
	a := render(Fig21RoundRobinDrop(sc))
	b := render(Fig21RoundRobinDrop(sc))
	if a != b {
		t.Fatalf("Fig21 differs across identical runs:\n--- first\n%s--- second\n%s", a, b)
	}
}

// The parallel sweep runner must not leak scheduling order into results:
// -j 1 and -j N produce the same bytes.
func TestGridParallelismInvariance(t *testing.T) {
	sc := tinyDPDK()
	defer SetParallelism(0)
	SetParallelism(1)
	serial := render(Fig13SoftwareSwitch(sc))
	SetParallelism(4)
	parallel := render(Fig13SoftwareSwitch(sc))
	if serial != parallel {
		t.Fatalf("Fig13 differs between -j 1 and -j 4:\n--- serial\n%s--- parallel\n%s", serial, parallel)
	}
}

// RunGrid must preserve input order regardless of completion order.
func TestRunGridOrdering(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(8)
	points := make([]int, 100)
	for i := range points {
		points[i] = i
	}
	got := RunGrid(points, func(p int) int { return p * p })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
		}
	}
}
