// Package experiments contains one harness per table and figure of the
// paper's evaluation. Each harness builds the scenario from the reusable
// substrates (switchsim, netsim, transport, workload), runs it, and
// returns a Table whose rows mirror the series the paper plots.
//
// Every harness takes a scale parameter so the same code runs both at
// test/bench scale (milliseconds of virtual time, few hosts) and at
// paper scale (cmd/occamy-sim). EXPERIMENTS.md records paper-vs-measured
// shapes for each.
//
// Figure sweeps are grids of independent simulations; they execute
// through RunGrid, which fans points across a worker pool (see grid.go).
// Results are always assembled in input order, so any parallelism level
// — including the CLI -j flag — produces byte-identical tables.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"occamy/internal/bm"
	"occamy/internal/core"
	"occamy/internal/pkt"
	"occamy/internal/sim"
	"occamy/internal/switchsim"
)

// Table is one experiment's output: labeled columns and formatted rows.
type Table struct {
	ID      string // e.g. "fig12"
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint writes the table in aligned plain text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
}

// F formats a float compactly for table cells.
func F(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Ms formats a duration in milliseconds for table cells.
func Ms(d sim.Duration) string { return fmt.Sprintf("%.3f", d.Millis()) }

// PolicySpec names a buffer-management configuration under comparison.
type PolicySpec struct {
	Name string
	// Make builds a fresh policy instance and, for Occamy, the
	// expulsion-engine config the switch should run.
	Make func() (bm.Policy, *core.Config)
}

// DTSpec returns Dynamic Threshold with the given α.
func DTSpec(alpha float64) PolicySpec {
	return PolicySpec{
		Name: fmt.Sprintf("DT(a=%g)", alpha),
		Make: func() (bm.Policy, *core.Config) { return bm.NewDT(alpha), nil },
	}
}

// ABMSpec returns ABM with the given α.
func ABMSpec(alpha float64) PolicySpec {
	return PolicySpec{
		Name: fmt.Sprintf("ABM(a=%g)", alpha),
		Make: func() (bm.Policy, *core.Config) { return bm.NewABM(alpha), nil },
	}
}

// OccamySpec returns Occamy with the given admission α and victim policy.
func OccamySpec(alpha float64, victim core.VictimPolicy) PolicySpec {
	name := "Occamy"
	if victim == core.LongestQueue {
		name = "Occamy-LD"
	}
	return PolicySpec{
		Name: name,
		Make: func() (bm.Policy, *core.Config) {
			cfg := core.Config{Alpha: alpha, Victim: victim}
			return core.New(cfg), &cfg
		},
	}
}

// PushoutSpec returns the idealized preemptive baseline.
func PushoutSpec() PolicySpec {
	return PolicySpec{
		Name: "Pushout",
		Make: func() (bm.Policy, *core.Config) { return core.NewPushout(), nil },
	}
}

// StandardComparison is the paper's §6.2 default line-up: DT α=1,
// ABM α=2, Occamy α=8, Pushout.
func StandardComparison() []PolicySpec {
	return []PolicySpec{
		OccamySpec(8, core.RoundRobin),
		ABMSpec(2),
		DTSpec(1),
		PushoutSpec(),
	}
}

// Injector feeds fixed-size packets directly into a switch (the
// Pktgen-DPDK role in the P4 experiments): no transport, no host — raw
// arrival processes for the queue-dynamics figures.
type Injector struct {
	Eng     *sim.Engine
	Sw      *switchsim.Switch
	Dst     pkt.NodeID
	Prio    int
	PktSize int
	FlowID  uint64
	// Pool, when set, recycles packets: the experiment's sinks and drop
	// hooks hand consumed packets back with Pool.Put.
	Pool *pkt.Pool

	Sent  int64
	Bytes int64

	nextID uint64
	ticker *sim.Ticker
}

func (in *Injector) packet() *pkt.Packet {
	in.nextID++
	in.Sent++
	in.Bytes += int64(in.PktSize)
	var p *pkt.Packet
	if in.Pool != nil {
		p = in.Pool.Get()
	} else {
		p = &pkt.Packet{}
	}
	p.ID = in.nextID + in.FlowID<<32
	p.FlowID = in.FlowID
	p.Dst = in.Dst
	p.Size = in.PktSize
	p.Priority = in.Prio
	return p
}

// StartCBR injects at a constant bit rate from `from` until Stop.
func (in *Injector) StartCBR(from sim.Time, rateBps float64) {
	gap := sim.Duration(float64(in.PktSize*8) / rateBps * float64(sim.Second))
	if gap < 1 {
		gap = 1
	}
	start := from - in.Eng.Now()
	if start < 0 {
		start = 0
	}
	in.ticker = in.Eng.Every(start, gap, func() { in.Sw.Receive(in.packet()) })
}

// Stop halts a CBR injection.
func (in *Injector) Stop() {
	if in.ticker != nil {
		in.ticker.Stop()
	}
}

// burstState is the single self-rescheduling event behind Burst: instead
// of pre-scheduling one closure per packet for the whole burst (n heap
// entries and n allocations up front for a multi-MB burst), one typed
// event re-arms itself until the burst is done.
type burstState struct {
	in        *Injector
	remaining int64
	gap       sim.Duration
}

// OnEvent implements sim.Handler.
func (b *burstState) OnEvent(any) {
	b.remaining--
	b.in.Sw.Receive(b.in.packet())
	if b.remaining > 0 {
		b.in.Eng.AfterEvent(b.gap, b, nil)
	}
}

// Burst injects totalBytes as back-to-back packets paced at rateBps
// starting at `at` (e.g. a 100G sender bursting into a 10G port).
func (in *Injector) Burst(at sim.Time, totalBytes int64, rateBps float64) {
	gap := sim.Duration(float64(in.PktSize*8) / rateBps * float64(sim.Second))
	if gap < 1 {
		gap = 1
	}
	n := totalBytes / int64(in.PktSize)
	if n <= 0 {
		return
	}
	in.Eng.AtEvent(at, &burstState{in: in, remaining: n, gap: gap}, nil)
}
