package experiments

import (
	"occamy/internal/core"
	"occamy/internal/metrics"
	"occamy/internal/sim"
)

// FabricScale bounds the Fig 7/17–23 sweeps.
type FabricScale struct {
	Spines, Leaves, HostsPerLeaf int
	Queries                      int
	SizeFracs                    []float64 // query size as fraction of leaf buffer
	FlowSizes                    []int64   // collective background flow sizes
	QueryLoads                   []float64 // Fig 20 sweep
	BufferFactors                []float64 // Fig 23 sweep (KB/port/Gbps)
	Seed                         uint64
}

// QuickFabric is the test-scale configuration (8 hosts, 10G links).
func QuickFabric() FabricScale {
	return FabricScale{
		Spines: 2, Leaves: 2, HostsPerLeaf: 4,
		Queries:       8,
		SizeFracs:     []float64{0.4, 0.8},
		FlowSizes:     []int64{64_000, 512_000},
		QueryLoads:    []float64{0.1, 0.4},
		BufferFactors: []float64{3.44, 9.6},
		Seed:          7,
	}
}

// PaperFabric approximates the paper's 128-host fabric (slow: use via
// cmd/occamy-sim).
func PaperFabric() FabricScale {
	return FabricScale{
		Spines: 8, Leaves: 8, HostsPerLeaf: 16,
		Queries:       100,
		SizeFracs:     []float64{0.2, 0.4, 0.6, 0.8, 1.0},
		FlowSizes:     []int64{16_000, 32_000, 64_000, 128_000, 256_000, 512_000, 1_000_000, 2_000_000},
		QueryLoads:    []float64{0.1, 0.2, 0.4, 0.6, 0.8},
		BufferFactors: []float64{3.44, 5.12, 6.5, 8.0, 9.6},
		Seed:          7,
	}
}

func (sc FabricScale) base(spec PolicySpec) FabricConfig {
	return FabricConfig{
		Spec:   spec,
		Spines: sc.Spines, Leaves: sc.Leaves, HostsPerLeaf: sc.HostsPerLeaf,
		Queries: sc.Queries, Seed: sc.Seed,
	}
}

// addSlowdownRow emits the standard 4-metric row the §6.4 figures share.
func addSlowdownRow(t *Table, label, policy string, r *FabricResult) {
	small := r.Bg.Small(100_000)
	t.AddRow(label, policy,
		F(r.Query.MeanSlowdown()), F(r.Query.P99Slowdown()),
		F(r.Bg.MeanSlowdown()), F(small.P99Slowdown()))
}

var slowdownCols = []string{"x", "policy", "qct_avg_slow", "qct_p99_slow", "bg_avg_slow", "small_bg_p99_slow"}

// fabricPoint is one cell of a fabric sweep grid.
type fabricPoint struct {
	label string
	cfg   FabricConfig
}

// runFabricSweep executes the grid points concurrently (RunGrid) and
// appends one slowdown row per point, in input order, so the table is
// identical at any parallelism.
func runFabricSweep(t *Table, pts []fabricPoint) {
	results := RunGrid(pts, func(p fabricPoint) *FabricResult { return RunFabric(p.cfg) })
	for i, p := range pts {
		addSlowdownRow(t, p.label, p.cfg.Spec.Name, results[i])
	}
}

// Fig7Utilization: CDF of buffer utilization on drop for DT α ∈ {0.5,1}
// (a), and of memory-bandwidth utilization at loads {20,40,90}% (b) —
// the §3 motivation measurements.
func Fig7Utilization(sc FabricScale) (bufT, bwT *Table) {
	bufT = &Table{
		ID:      "fig7a",
		Title:   "buffer utilization on drop (CDF quantiles)",
		Columns: []string{"alpha", "p25", "p50", "p75", "p99"},
	}
	quant := func(v []float64) []string {
		qs := metrics.CDFQuantiles(v, 0.25, 0.5, 0.75, 0.99)
		out := make([]string, len(qs))
		for i, q := range qs {
			out[i] = F(q.Value * 100)
		}
		return out
	}
	bwT = &Table{
		ID:      "fig7b",
		Title:   "memory bandwidth utilization on drop (CDF quantiles)",
		Columns: []string{"load", "p25", "p50", "p75", "p99"},
	}
	// Both panels sweep independent runs: fan the five points out together.
	alphas := []float64{0.5, 1}
	loads := []float64{0.2, 0.4, 0.9}
	var pts []fabricPoint
	for _, alpha := range alphas {
		cfg := sc.base(DTSpec(alpha))
		cfg.Bg = BgWebSearch
		cfg.BgLoad = 0.4
		cfg.QuerySize = int64(0.6 * float64(cfg.withDefaults().leafBufferBytes()))
		cfg.CollectUtil = true
		pts = append(pts, fabricPoint{F(alpha), cfg})
	}
	for _, load := range loads {
		cfg := sc.base(DTSpec(0.5))
		cfg.Bg = BgWebSearch
		cfg.BgLoad = load
		cfg.QuerySize = int64(0.6 * float64(cfg.withDefaults().leafBufferBytes()))
		cfg.CollectUtil = true
		pts = append(pts, fabricPoint{F(load), cfg})
	}
	results := RunGrid(pts, func(p fabricPoint) *FabricResult { return RunFabric(p.cfg) })
	for i := range alphas {
		bufT.AddRow(append([]string{pts[i].label}, quant(results[i].BufUtil)...)...)
	}
	for i := range loads {
		r := results[len(alphas)+i]
		bwT.AddRow(append([]string{pts[len(alphas)+i].label}, quant(r.MemBWUtil)...)...)
	}
	return bufT, bwT
}

// Fig17LargeScale: web-search background at 90% + incast queries;
// QCT/FCT slowdowns vs query size for the standard line-up.
func Fig17LargeScale(sc FabricScale) *Table {
	t := &Table{ID: "fig17", Title: "large-scale: slowdowns vs query size (bg web-search 90%)",
		Columns: slowdownCols}
	var pts []fabricPoint
	for _, frac := range sc.SizeFracs {
		for _, spec := range StandardComparison() {
			cfg := sc.base(spec)
			cfg.Bg = BgWebSearch
			cfg.BgLoad = 0.9
			cfg.QuerySize = int64(frac * float64(cfg.withDefaults().leafBufferBytes()))
			pts = append(pts, fabricPoint{F(frac), cfg})
		}
	}
	runFabricSweep(t, pts)
	return t
}

// Fig18AllToAll: all-to-all background, sweeping the collective flow size.
func Fig18AllToAll(sc FabricScale) *Table {
	return collectiveFig("fig18", "all-to-all background", BgAllToAll, sc)
}

// Fig19AllReduce: double-binary-tree all-reduce background.
func Fig19AllReduce(sc FabricScale) *Table {
	return collectiveFig("fig19", "all-reduce (double binary tree) background", BgAllReduce, sc)
}

func collectiveFig(id, title string, kind BgKind, sc FabricScale) *Table {
	t := &Table{ID: id, Title: title + ": slowdowns vs flow size", Columns: slowdownCols}
	var pts []fabricPoint
	for _, fs := range sc.FlowSizes {
		for _, spec := range StandardComparison() {
			cfg := sc.base(spec)
			cfg.Bg = kind
			cfg.BgLoad = 0.5
			cfg.BgFlowSize = fs
			cfg.QuerySize = int64(0.6 * float64(cfg.withDefaults().leafBufferBytes()))
			pts = append(pts, fabricPoint{F(float64(fs) / 1000), cfg})
		}
	}
	runFabricSweep(t, pts)
	return t
}

// Fig20QueryLoad: higher query rates (light 10% background).
func Fig20QueryLoad(sc FabricScale) *Table {
	t := &Table{ID: "fig20", Title: "higher query load: slowdowns vs query load",
		Columns: slowdownCols}
	var pts []fabricPoint
	for _, load := range sc.QueryLoads {
		for _, spec := range StandardComparison() {
			cfg := sc.base(spec)
			cfg.Bg = BgWebSearch
			cfg.BgLoad = 0.1
			buf := float64(cfg.withDefaults().leafBufferBytes())
			cfg.QuerySize = int64(0.8 * buf)
			// Query load -> interval: load = size / (interval × link).
			ivl := float64(cfg.QuerySize*8) / (load * cfg.withDefaults().HostLinkBps)
			cfg.QueryInterval = secToDur(ivl)
			pts = append(pts, fabricPoint{F(load), cfg})
		}
	}
	runFabricSweep(t, pts)
	return t
}

// Fig21RoundRobinDrop: the ablation — Occamy's round-robin victim
// selection versus always dropping the longest queue.
func Fig21RoundRobinDrop(sc FabricScale) *Table {
	t := &Table{ID: "fig21", Title: "round-robin vs longest-queue drop (bg 40%)",
		Columns: slowdownCols}
	var pts []fabricPoint
	for _, frac := range sc.SizeFracs {
		for _, spec := range []PolicySpec{
			OccamySpec(8, core.RoundRobin), OccamySpec(8, core.LongestQueue),
		} {
			cfg := sc.base(spec)
			cfg.Bg = BgWebSearch
			cfg.BgLoad = 0.4
			cfg.QuerySize = int64(frac * float64(cfg.withDefaults().leafBufferBytes()))
			pts = append(pts, fabricPoint{F(frac), cfg})
		}
	}
	runFabricSweep(t, pts)
	return t
}

// Fig22HeavyLoad: background offered at 120% — expulsion must still find
// redundant bandwidth on the unbalanced links.
func Fig22HeavyLoad(sc FabricScale) *Table {
	t := &Table{ID: "fig22", Title: "120% background load: slowdowns vs query size",
		Columns: slowdownCols}
	var pts []fabricPoint
	for _, frac := range sc.SizeFracs {
		for _, spec := range StandardComparison() {
			cfg := sc.base(spec)
			cfg.Bg = BgWebSearch
			cfg.BgLoad = 1.2
			cfg.QuerySize = int64(frac * float64(cfg.withDefaults().leafBufferBytes()))
			pts = append(pts, fabricPoint{F(frac), cfg})
		}
	}
	runFabricSweep(t, pts)
	return t
}

// Fig23BufferSize: sweep the buffer per port per Gbps from Tofino-like
// (3.44KB) to Trident2-like (9.6KB).
func Fig23BufferSize(sc FabricScale) *Table {
	t := &Table{ID: "fig23", Title: "buffer size sweep: slowdowns vs KB/port/Gbps",
		Columns: slowdownCols}
	var pts []fabricPoint
	for _, factor := range sc.BufferFactors {
		for _, spec := range StandardComparison() {
			cfg := sc.base(spec)
			cfg.Bg = BgWebSearch
			cfg.BgLoad = 0.4
			cfg.BufferKBPerPortPerGbps = factor
			cfg.QuerySize = int64(0.4 * float64(cfg.withDefaults().leafBufferBytes()))
			pts = append(pts, fabricPoint{F(factor), cfg})
		}
	}
	runFabricSweep(t, pts)
	return t
}

func secToDur(s float64) (d sim.Duration) {
	return sim.Duration(s * float64(sim.Second))
}
