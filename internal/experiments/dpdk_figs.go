package experiments

import (
	"occamy/internal/switchsim"
)

// DPDKScale bounds the runtime of the Fig 13–16 sweeps: tests use a few
// queries and sizes, benches and the CLI more.
type DPDKScale struct {
	Hosts   int
	Queries int
	// SizeFracs are the query sizes as fractions of the buffer.
	SizeFracs []float64
	// Loads are the Fig 14 background loads.
	Loads []float64
	// Alphas are the Fig 16 sweep values.
	Alphas []float64
	Seed   uint64
}

// QuickDPDK is the test-scale configuration.
func QuickDPDK() DPDKScale {
	return DPDKScale{
		Hosts:     6,
		Queries:   8,
		SizeFracs: []float64{0.4, 0.8, 1.2},
		Loads:     []float64{0.2, 0.5},
		Alphas:    []float64{0.5, 2, 8},
		Seed:      42,
	}
}

// PaperDPDK approximates the paper-scale configuration.
func PaperDPDK() DPDKScale {
	return DPDKScale{
		Hosts:     8,
		Queries:   60,
		SizeFracs: []float64{0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4},
		Loads:     []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6},
		Alphas:    []float64{0.5, 1, 2, 4, 8},
		Seed:      42,
	}
}

// Fig13SoftwareSwitch: burst absorption on the software switch — query
// QCT (avg, p99) and background FCT (overall avg, small p99) versus
// query size, for the standard policy line-up. Background is web-search
// at 50% load in the same (single) traffic class.
func Fig13SoftwareSwitch(sc DPDKScale) *Table {
	t := &Table{
		ID:    "fig13",
		Title: "software switch: QCT/FCT vs query size (bg web-search 50%)",
		Columns: []string{"size_frac", "policy", "avg_qct_ms", "p99_qct_ms",
			"bg_avg_fct_ms", "small_bg_p99_ms", "rtos"},
	}
	type point struct {
		frac float64
		cfg  DPDKConfig
	}
	var pts []point
	for _, frac := range sc.SizeFracs {
		for _, spec := range StandardComparison() {
			cfg := DPDKConfig{
				Spec: spec, Hosts: sc.Hosts, Queries: sc.Queries,
				BgLoad: 0.5, Seed: sc.Seed,
			}
			cfg.QuerySize = int64(frac * float64(cfg.BufferBytes()))
			pts = append(pts, point{frac, cfg})
		}
	}
	results := RunGrid(pts, func(p point) *DPDKResult { return RunDPDK(p.cfg) })
	for i, p := range pts {
		r := results[i]
		small := r.Bg.Small(100_000)
		t.AddRow(F(p.frac), p.cfg.Spec.Name,
			Ms(r.Query.MeanFCT()), Ms(r.Query.P99FCT()),
			Ms(r.Bg.MeanFCT()), Ms(small.P99FCT()), F(float64(r.Timeouts)))
	}
	return t
}

// Fig14Isolation: query and background in two DRR-scheduled classes;
// background is CUBIC at increasing load. Non-preemptive BMs let the
// background queue's buffer hurt query QCT.
func Fig14Isolation(sc DPDKScale) *Table {
	t := &Table{
		ID:      "fig14",
		Title:   "performance isolation: QCT vs background load (DRR, 2 classes)",
		Columns: []string{"bg_load", "policy", "avg_qct_ms", "p99_qct_ms", "rtos"},
	}
	type point struct {
		load float64
		cfg  DPDKConfig
	}
	var pts []point
	for _, load := range sc.Loads {
		for _, spec := range StandardComparison() {
			cfg := DPDKConfig{
				Spec: spec, Hosts: sc.Hosts, Queries: sc.Queries,
				Classes: 2, Scheduler: switchsim.SchedDRR,
				QueryPriority: 0, BgPriority: 1,
				BgLoad: load, BgCubic: true, Seed: sc.Seed,
			}
			cfg.QuerySize = int64(0.6 * float64(cfg.BufferBytes()))
			pts = append(pts, point{load, cfg})
		}
	}
	results := RunGrid(pts, func(p point) *DPDKResult { return RunDPDK(p.cfg) })
	for i, p := range pts {
		r := results[i]
		t.AddRow(F(p.load), p.cfg.Spec.Name,
			Ms(r.Query.MeanFCT()), Ms(r.Query.P99FCT()), F(float64(r.Timeouts)))
	}
	return t
}

// Fig15BufferChoking: strict priority, α=8 for the HP class and α=1 for
// LP. Low-priority background should not delay high-priority queries —
// but non-preemptive BMs choke.
func Fig15BufferChoking(sc DPDKScale) *Table {
	t := &Table{
		ID:    "fig15",
		Title: "buffer choking: HP QCT with vs without LP background (SP)",
		Columns: []string{"size_frac", "policy", "qct_no_bg_ms", "qct_with_bg_ms",
			"p99_no_bg_ms", "p99_with_bg_ms"},
	}
	fracs := make([]float64, 0, len(sc.SizeFracs))
	for _, f := range sc.SizeFracs {
		fracs = append(fracs, f+1.0) // the paper sweeps 150–250% of buffer
	}
	type point struct {
		frac float64
		base DPDKConfig
	}
	var pts []point
	for _, frac := range fracs {
		for _, spec := range StandardComparison() {
			base := DPDKConfig{
				Spec: spec, Hosts: sc.Hosts, Queries: sc.Queries,
				Classes: 2, Scheduler: switchsim.SchedSP,
				QueryPriority: 0, BgPriority: 1,
				AlphaHP: 8, AlphaLP: 1, BgCubic: true, Seed: sc.Seed,
			}
			base.QuerySize = int64(frac * float64(base.BufferBytes()))
			pts = append(pts, point{frac, base})
		}
	}
	results := RunGrid(pts, func(p point) [2]*DPDKResult {
		noBg := p.base
		noBg.BgLoad = 0
		withBg := p.base
		withBg.BgLoad = 0.5
		return [2]*DPDKResult{RunDPDK(noBg), RunDPDK(withBg)}
	})
	for i, p := range pts {
		r0, r1 := results[i][0], results[i][1]
		t.AddRow(F(p.frac), p.base.Spec.Name,
			Ms(r0.Query.MeanFCT()), Ms(r1.Query.MeanFCT()),
			Ms(r0.Query.P99FCT()), Ms(r1.Query.P99FCT()))
	}
	return t
}

// Fig16AlphaImpact: p99 QCT for DT and Occamy across α — DT is best at
// small α and degrades with large α; Occamy improves with α.
func Fig16AlphaImpact(sc DPDKScale) *Table {
	t := &Table{
		ID:      "fig16",
		Title:   "impact of alpha on p99 QCT (DRR, 2 classes, bg 50%)",
		Columns: []string{"alpha", "size_frac", "dt_p99_ms", "occamy_p99_ms"},
	}
	type point struct {
		alpha, frac float64
	}
	var pts []point
	for _, alpha := range sc.Alphas {
		for _, frac := range sc.SizeFracs {
			pts = append(pts, point{alpha, frac + 0.6}) // paper sweeps 100–180% of buffer
		}
	}
	results := RunGrid(pts, func(p point) [2]*DPDKResult {
		run := func(spec PolicySpec) *DPDKResult {
			cfg := DPDKConfig{
				Spec: spec, Hosts: sc.Hosts, Queries: sc.Queries,
				Classes: 2, Scheduler: switchsim.SchedDRR,
				QueryPriority: 0, BgPriority: 1,
				BgLoad: 0.5, BgCubic: true, Seed: sc.Seed,
			}
			cfg.QuerySize = int64(p.frac * float64(cfg.BufferBytes()))
			return RunDPDK(cfg)
		}
		return [2]*DPDKResult{run(DTSpec(p.alpha)), run(OccamySpec(p.alpha, 0))}
	})
	for i, p := range pts {
		dt, occ := results[i][0], results[i][1]
		t.AddRow(F(p.alpha), F(p.frac), Ms(dt.Query.P99FCT()), Ms(occ.Query.P99FCT()))
	}
	return t
}
