package experiments

import (
	"occamy/internal/switchsim"
	"occamy/internal/transport"
)

// Fig6Anomalies reproduces the §3.1 motivation measurements on the
// CE6865-like testbed: 8 hosts at 40Gbps, 2MB shared buffer, DT,
// DCTCP with a 300KB ECN threshold, 8 strict-priority classes.
//
// (a) Buffer choking: a high-priority incast of degree 40 (8 flows from
// each of 5 servers) competes with 14 long-lived low-priority flows
// from 2 other hosts, all heading to the same client. DT is calibrated
// so the incast deserves ~1MB either way (α=8 with companions, α=1
// alone). The choking *mechanism* reproduces directly: the LP queues
// hold most of the buffer and cannot drain (strict priority), so HP
// packets drop before the incast reaches its deserved share — reported
// in the hp_drops and peak_buffer_pct columns.
//
// (b) Inter-port influence: the companions instead congest other
// receivers, isolating the pure arrival-rate agility effect.
//
// Note on magnitudes (recorded in EXPERIMENTS.md): the paper's 8×
// QCT inflation is carried by the testbed's stock Linux stack turning
// those drops into retransmission timeouts; this repository's transport
// recovers the same drops in ~1 RTT, so the QCT columns understate the
// damage while the drop columns show the anomaly itself.
func Fig6Anomalies(queries int, sizeFracs []float64) *Table {
	if queries == 0 {
		queries = 10
	}
	if len(sizeFracs) == 0 {
		sizeFracs = []float64{1, 2.5, 5}
	}
	t := &Table{
		ID:    "fig6",
		Title: "DT anomalies: incast vs competing traffic (40G, 2MB, SP)",
		Columns: []string{"case", "query_MB", "qct_alone_ms", "qct_competing_ms",
			"hp_drops_alone", "hp_drops_competing", "peak_buffer_pct"},
	}
	const buffer = 2 << 20
	run := func(interPort bool, frac float64) (alone, with *DPDKResult) {
		for _, withBg := range []bool{false, true} {
			cfg := DPDKConfig{
				Spec: DTSpec(1), Hosts: 8, LinkBps: 40e9,
				Queries: queries, BufferOverride: buffer,
				Classes: 8, Scheduler: switchsim.SchedSP,
				QueryPriority: 0, Seed: 42,
				ECNThresholdBytes: 300_000,
				QueryServers:      5,
				QueryFanout:       40,
				Transport:         transport.Options{DupThresh: 3},
			}
			if withBg {
				cfg.AlphaHP, cfg.AlphaLP = 8, 1
				if interPort {
					cfg.BgLoad = 0.5
					cfg.BgPriority = 1
					cfg.BgExcludeClient = true
				} else {
					cfg.LongLivedLP = 14
				}
			} else {
				cfg.AlphaHP, cfg.AlphaLP = 1, 1
			}
			cfg.QuerySize = int64(frac * float64(buffer))
			r := RunDPDK(cfg)
			if withBg {
				with = r
			} else {
				alone = r
			}
		}
		return alone, with
	}
	emit := func(name string, interPort bool) {
		for _, frac := range sizeFracs {
			alone, with := run(interPort, frac)
			t.AddRow(name, F(frac*2),
				Ms(alone.Query.MeanFCT()), Ms(with.Query.MeanFCT()),
				F(float64(alone.Switch.Drops())), F(float64(with.Switch.Drops())),
				F(100*float64(with.MaxOccupancy)/float64(buffer)))
		}
	}
	emit("choking(same port)", false)
	emit("inter-port", true)
	return t
}
