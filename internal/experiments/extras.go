package experiments

import (
	"occamy/internal/bm"
	"occamy/internal/core"
	"occamy/internal/sim"
	"occamy/internal/switchsim"
)

// ExtendedComparison is the full policy zoo: the paper's §6.2 line-up
// plus the §7 related-work baselines implemented in this repository
// (EDT, TDT, POT, QPO, Complete Sharing). EDT's burst clock and TDT's
// periodic observations are wired by RunDPDK once the engine exists.
func ExtendedComparison() []PolicySpec {
	specs := StandardComparison()
	specs = append(specs,
		PolicySpec{Name: "EDT", Make: func() (bm.Policy, *core.Config) {
			return bm.NewEDT(1, nil), nil
		}},
		PolicySpec{Name: "TDT", Make: func() (bm.Policy, *core.Config) {
			return bm.NewTDT(1), nil
		}},
		PolicySpec{Name: "POT", Make: func() (bm.Policy, *core.Config) {
			return core.NewPOT(0.5), nil
		}},
		PolicySpec{Name: "QPO", Make: func() (bm.Policy, *core.Config) {
			return core.NewQPO(), nil
		}},
		PolicySpec{Name: "CS", Make: func() (bm.Policy, *core.Config) {
			return bm.CompleteSharing{}, nil
		}},
	)
	return specs
}

// ExtrasBakeoff runs the Fig 13 software-switch scenario across the
// extended policy zoo — an extension beyond the paper that positions
// Occamy against the §7 related work under identical traffic.
func ExtrasBakeoff(sc DPDKScale) *Table {
	t := &Table{
		ID:    "extras",
		Title: "extension: all implemented policies on the Fig 13 scenario",
		Columns: []string{"size_frac", "policy", "avg_qct_ms", "p99_qct_ms",
			"bg_avg_fct_ms", "rtos"},
	}
	for _, frac := range sc.SizeFracs {
		for _, spec := range ExtendedComparison() {
			cfg := DPDKConfig{
				Spec: spec, Hosts: sc.Hosts, Queries: sc.Queries,
				BgLoad: 0.5, Seed: sc.Seed,
			}
			cfg.QuerySize = int64(frac * float64(cfg.BufferBytes()))
			r := RunDPDK(cfg)
			t.AddRow(F(frac), spec.Name,
				Ms(r.Query.MeanFCT()), Ms(r.Query.P99FCT()),
				Ms(r.Bg.MeanFCT()), F(float64(r.Timeouts)))
		}
	}
	return t
}

// TDTObserverPeriod is the cadence at which harnesses feed TDT its
// queue-length observations.
const TDTObserverPeriod = 10 * sim.Microsecond

// wirePolicyClocks connects clock-dependent policies to a live engine:
// EDT gets the virtual clock, TDT gets periodic per-queue observations.
func wirePolicyClocks(sw *switchsim.Switch, policy bm.Policy, eng *sim.Engine) {
	switch p := policy.(type) {
	case *bm.EDT:
		p.Clock = func() int64 { return int64(eng.Now()) }
	case *bm.TDT:
		eng.Every(0, TDTObserverPeriod, func() {
			for q := 0; q < sw.NumQueues(); q++ {
				p.Observe(sw, q)
			}
		})
	}
}
