package experiments

import (
	"occamy/internal/bm"
	"occamy/internal/core"
	"occamy/internal/metrics"
	"occamy/internal/netsim"
	"occamy/internal/pkt"
	"occamy/internal/sim"
	"occamy/internal/switchsim"
	"occamy/internal/transport"
	"occamy/internal/workload"
)

// DPDKConfig reproduces the software-switch testbed of §6.2: N hosts at
// 10Gbps around one shared-memory switch with 5.12KB of buffer per port
// per Gbps (410KB at the paper's 8×10G).
type DPDKConfig struct {
	Spec PolicySpec
	// Hosts is the number of end nodes (paper: 8).
	Hosts int
	// LinkBps is the access rate (paper: 10G).
	LinkBps float64
	// Classes is the number of traffic classes per port (1 for Fig 13,
	// 2 for Figs 14–16).
	Classes int
	// Scheduler applies across classes (DRR for isolation, SP for
	// buffer choking).
	Scheduler switchsim.SchedKind
	// QuerySize is the total incast response volume per query.
	QuerySize int64
	// Queries is how many queries to measure.
	Queries int
	// QueryInterval spaces queries; 0 derives ~5× the unloaded QCT.
	QueryInterval sim.Duration
	// QueryPriority is the class of query traffic.
	QueryPriority int
	// BgLoad is the web-search background load fraction (0 disables).
	BgLoad float64
	// BgPriority is the class of background traffic.
	BgPriority int
	// BgCubic switches background flows to the CUBIC controller (the
	// isolation and choking experiments).
	BgCubic bool
	// AlphaHP/AlphaLP override admission α per priority class when
	// non-zero (the Fig 15 configuration).
	AlphaHP, AlphaLP float64
	// BufferOverride replaces the Tomahawk-style buffer sizing when
	// non-zero (Fig 6 uses the CE6865's 2MB).
	BufferOverride int
	// BgExcludeClient keeps background traffic off the incast client's
	// port (Fig 6's inter-port case).
	BgExcludeClient bool
	// ECNThresholdBytes overrides the DCTCP marking point (default 65
	// packets; Fig 6's testbed uses 300KB).
	ECNThresholdBytes int
	// LongLivedLP adds this many persistent low-priority flows toward
	// the incast client, spread over the LP classes and the last two
	// hosts (the Fig 6 buffer-choking companions).
	LongLivedLP int
	// QueryServers restricts responders to hosts 1..QueryServers (0 =
	// all non-client hosts).
	QueryServers int
	// QueryFanout is the number of response flows per query (0 = one
	// per server; the Fig 6 testbed uses 40 across 5 servers).
	QueryFanout int
	// Transport tunes the end-host stack for every flow in the run
	// (e.g. Fig 6 fixes DupThresh=3 to mimic the stock-Linux testbed).
	Transport transport.Options
	// Seed for the workload RNG.
	Seed uint64
}

func (c DPDKConfig) withDefaults() DPDKConfig {
	if c.Hosts == 0 {
		c.Hosts = 8
	}
	if c.LinkBps == 0 {
		c.LinkBps = 10e9
	}
	if c.Classes == 0 {
		c.Classes = 1
	}
	if c.Queries == 0 {
		c.Queries = 20
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// BufferBytes returns the shared buffer size: the Tomahawk-style
// 5.12KB/port/Gbps, unless overridden. Defaults are applied first so
// callers can size queries before RunDPDK.
func (c DPDKConfig) BufferBytes() int {
	c = c.withDefaults()
	if c.BufferOverride > 0 {
		return c.BufferOverride
	}
	return int(5.12 * 1024 * float64(c.Hosts) * c.LinkBps / 1e9)
}

// DPDKResult carries the per-run metrics.
type DPDKResult struct {
	Query    metrics.Collector // QCTs
	Bg       metrics.Collector // background FCTs
	Timeouts int64             // RTOs across query flows
	Switch   switchsim.Stats
	// MaxOccupancy is the peak buffered byte count observed (100µs
	// sampling), a cheap congestion diagnostic.
	MaxOccupancy int
}

// RunDPDK executes one software-switch scenario.
func RunDPDK(cfg DPDKConfig) *DPDKResult {
	cfg = cfg.withDefaults()
	policy, occ := cfg.Spec.Make()
	if cfg.AlphaHP != 0 || cfg.AlphaLP != 0 {
		applyAlphaByPrio(policy, cfg.AlphaHP, cfg.AlphaLP)
	}

	rates := make([]float64, cfg.Hosts)
	for i := range rates {
		rates[i] = cfg.LinkBps
	}
	// ECN threshold: 65 packets as in the paper's DPDK setup, unless
	// the scenario overrides it.
	ecn := 65 * pkt.MTU
	if cfg.ECNThresholdBytes > 0 {
		ecn = cfg.ECNThresholdBytes
	}
	net := netsim.SingleSwitch(netsim.SingleSwitchConfig{
		HostRates: rates,
		LinkDelay: 5 * sim.Microsecond,
		Switch: switchsim.Config{
			ClassesPerPort:    cfg.Classes,
			BufferBytes:       cfg.BufferBytes(),
			Policy:            policy,
			Occamy:            occ,
			ECNThresholdBytes: ecn,
			Scheduler:         cfg.Scheduler,
		},
		Seed: cfg.Seed,
	})

	res := &DPDKResult{}
	oneWay := 10 * sim.Microsecond

	// Background: web-search 1-to-1 flows.
	var bg *workload.Background
	if cfg.BgLoad > 0 {
		first := 0
		if cfg.BgExcludeClient {
			first = 1 // host 0 is the incast client
		}
		hosts := make([]pkt.NodeID, 0, cfg.Hosts-first)
		for i := first; i < cfg.Hosts; i++ {
			hosts = append(hosts, pkt.NodeID(i))
		}
		bg = &workload.Background{
			Net: net, Hosts: hosts, Load: cfg.BgLoad, LinkBps: cfg.LinkBps,
			Dist: workload.WebSearch(), Priority: cfg.BgPriority, ECN: true,
			Opts: cfg.Transport, Collector: &res.Bg, OneWayBase: oneWay,
		}
		if cfg.BgCubic {
			bg.NewCC = func(mss, segs int) transport.CC { return transport.NewCubic(mss, segs) }
		}
	}

	// Long-lived low-priority companions (Fig 6): persistent flows from
	// the last two hosts to the client, one per LP class round-robin.
	if cfg.LongLivedLP > 0 {
		lpClasses := cfg.Classes - 1
		if lpClasses < 1 {
			lpClasses = 1
		}
		for i := 0; i < cfg.LongLivedLP; i++ {
			src := pkt.NodeID(cfg.Hosts - 1 - i%2)
			prio := 1 + i%lpClasses
			net.StartFlow(0, src, 0, 1<<40, netsim.FlowOptions{
				Priority: prio, ECN: true, Transport: cfg.Transport,
			})
		}
	}

	// Query traffic: host 0 is the client, everyone else serves (or a
	// restricted prefix when QueryServers is set).
	nServers := cfg.Hosts - 1
	if cfg.QueryServers > 0 && cfg.QueryServers < nServers {
		nServers = cfg.QueryServers
	}
	servers := make([]pkt.NodeID, 0, nServers)
	for i := 1; i <= nServers; i++ {
		servers = append(servers, pkt.NodeID(i))
	}
	fanout := len(servers)
	if cfg.QueryFanout > 0 {
		fanout = cfg.QueryFanout
	}
	interval := cfg.QueryInterval
	if interval == 0 {
		// Sparse queries, as in the paper's 1% query load: leave enough
		// headroom that a congested query still finishes before the next.
		unloaded := workload.IdealFCT(cfg.QuerySize, cfg.LinkBps, oneWay)
		interval = 10 * unloaded
		if interval < 4*sim.Millisecond {
			interval = 4 * sim.Millisecond
		}
	}
	q := &workload.Incast{
		Net: net, Client: 0, Servers: servers,
		Fanout: fanout, QuerySize: cfg.QuerySize,
		Interval: interval, Priority: cfg.QueryPriority, ECN: true,
		Opts:      cfg.Transport,
		Collector: &res.Query, LinkBps: cfg.LinkBps, OneWayBase: oneWay,
	}

	net.Eng.Every(0, 100*sim.Microsecond, func() {
		if occ := net.Switches[0].Occupancy(); occ > res.MaxOccupancy {
			res.MaxOccupancy = occ
		}
	})
	wirePolicyClocks(net.Switches[0], policy, net.Eng)

	warmup := 5 * sim.Millisecond
	horizon := warmup + sim.Duration(cfg.Queries)*interval
	if bg != nil {
		bg.Start(0, horizon+50*sim.Millisecond)
	}
	q.Start(warmup, horizon)
	// Run until all queries are answered (bounded to avoid hangs).
	deadline := horizon + 500*sim.Millisecond
	for net.Eng.Now() < deadline && q.Done() < int64(cfg.Queries) {
		net.Eng.RunFor(5 * sim.Millisecond)
	}
	if bg != nil {
		bg.Stop()
	}
	q.Stop()
	res.Timeouts = q.Timeouts()
	res.Switch = net.Switches[0].Stats()
	totalEvents.Add(net.Eng.Processed())
	return res
}

// applyAlphaByPrio installs per-priority-class admission α (class 0 =
// hp, class 1 = lp) on whichever policy kind is in use. Pushout has no
// thresholds, so it is left untouched.
func applyAlphaByPrio(policy bm.Policy, hp, lp float64) {
	m := map[int]float64{0: hp, 1: lp}
	switch p := policy.(type) {
	case *core.Occamy:
		p.DT.AlphaByPrio = m
	case *bm.DT:
		p.AlphaByPrio = m
	case *bm.ABM:
		p.AlphaFor = m // ABM's AlphaFor is keyed by priority class already
	}
}
