package experiments

import (
	"occamy/internal/metrics"
	"occamy/internal/netsim"
	"occamy/internal/pkt"
	"occamy/internal/sim"
	"occamy/internal/switchsim"
	"occamy/internal/workload"
)

// BgKind selects the background traffic pattern in fabric runs.
type BgKind int

const (
	// BgWebSearch: Poisson 1-to-1 flows, web-search sizes (§6.4 default).
	BgWebSearch BgKind = iota
	// BgAllToAll: rounds where every host sends to every other host.
	BgAllToAll
	// BgAllReduce: rounds of double-binary-tree all-reduce flows.
	BgAllReduce
	// BgNone: no background.
	BgNone
)

// FabricConfig reproduces the §6.4 large-scale simulation: a leaf–spine
// fabric with ECMP, DCTCP hosts, web-search (or collective) background,
// and incast query traffic from random clients.
type FabricConfig struct {
	Spec PolicySpec

	Spines, Leaves, HostsPerLeaf int
	HostLinkBps                  float64
	LinkDelay                    sim.Duration
	// BufferKBPerPortPerGbps sizes every switch buffer; the paper
	// emulates Tomahawk at ~5.12 (Fig 23 sweeps 3.44–9.6).
	BufferKBPerPortPerGbps float64
	// ECNThresholdFrac sets the marking point as a fraction of the
	// bandwidth-delay product (paper: 0.72 BDP). 0 defaults to 0.72.
	ECNThresholdFrac float64

	Bg BgKind
	// BgLoad is the background load fraction (>1 allowed: Fig 22).
	BgLoad float64
	// BgFlowSize is the per-flow size for collective backgrounds.
	BgFlowSize int64

	// QuerySize is the incast response volume (0 disables queries).
	QuerySize int64
	// QueryFanout is responders per query (default min(16, hosts-2)).
	QueryFanout int
	// QueryInterval spaces queries (random client each); default 2ms.
	QueryInterval sim.Duration
	// Queries is the number of queries to measure.
	Queries int

	// CollectUtil samples buffer & memory-bandwidth utilization on
	// every drop (Fig 7).
	CollectUtil bool

	Seed uint64
}

func (c FabricConfig) withDefaults() FabricConfig {
	if c.Spines == 0 {
		c.Spines = 2
	}
	if c.Leaves == 0 {
		c.Leaves = 2
	}
	if c.HostsPerLeaf == 0 {
		c.HostsPerLeaf = 4
	}
	if c.HostLinkBps == 0 {
		c.HostLinkBps = 10e9
	}
	if c.LinkDelay == 0 {
		c.LinkDelay = 10 * sim.Microsecond
	}
	if c.BufferKBPerPortPerGbps == 0 {
		c.BufferKBPerPortPerGbps = 5.12
	}
	if c.ECNThresholdFrac == 0 {
		c.ECNThresholdFrac = 0.72
	}
	if c.QueryFanout == 0 {
		c.QueryFanout = c.Leaves*c.HostsPerLeaf - 2
		if c.QueryFanout > 16 {
			c.QueryFanout = 16
		}
	}
	if c.QueryInterval == 0 {
		c.QueryInterval = 2 * sim.Millisecond
	}
	if c.Queries == 0 {
		c.Queries = 15
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	return c
}

// leafBufferBytes sizes a leaf switch buffer from the per-port factor.
func (c FabricConfig) leafBufferBytes() int {
	ports := c.HostsPerLeaf + c.Spines
	return int(c.BufferKBPerPortPerGbps * 1024 * float64(ports) * c.HostLinkBps / 1e9)
}

func (c FabricConfig) spineBufferBytes() int {
	return int(c.BufferKBPerPortPerGbps * 1024 * float64(c.Leaves) * c.HostLinkBps / 1e9)
}

// FabricResult carries fabric-run metrics.
type FabricResult struct {
	Query metrics.Collector
	Bg    metrics.Collector
	// BufUtil / MemBWUtil are utilization samples taken at each drop
	// (CollectUtil only).
	BufUtil   []float64
	MemBWUtil []float64
	Timeouts  int64
	Stats     switchsim.Stats // aggregated over all switches
}

// RunFabric executes one large-scale scenario.
func RunFabric(cfg FabricConfig) *FabricResult {
	cfg = cfg.withDefaults()
	res := &FabricResult{}

	mkSwitch := func(buffer int) switchsim.Config {
		policy, occ := cfg.Spec.Make()
		bdp := float64(8*cfg.LinkDelay.Seconds()) * cfg.HostLinkBps / 8
		return switchsim.Config{
			ClassesPerPort:    1,
			BufferBytes:       buffer,
			Policy:            policy,
			Occamy:            occ,
			ECNThresholdBytes: int(cfg.ECNThresholdFrac * bdp),
		}
	}
	net := netsim.LeafSpine(netsim.LeafSpineConfig{
		Spines: cfg.Spines, Leaves: cfg.Leaves, HostsPerLeaf: cfg.HostsPerLeaf,
		HostLinkBps: cfg.HostLinkBps, SpineLinkBps: cfg.HostLinkBps,
		LinkDelay:   cfg.LinkDelay,
		LeafSwitch:  mkSwitch(cfg.leafBufferBytes()),
		SpineSwitch: mkSwitch(cfg.spineBufferBytes()),
		Seed:        cfg.Seed,
	})
	if cfg.CollectUtil {
		for _, sw := range net.Switches {
			sw := sw
			sw.DropHook = func(p *pkt.Packet, q int, r switchsim.DropReason) {
				if r == switchsim.DropExpelled {
					return // Fig 7 measures utilization at loss events
				}
				res.BufUtil = append(res.BufUtil, sw.BufferUtilization())
				res.MemBWUtil = append(res.MemBWUtil, sw.MemBandwidthUtilization())
			}
		}
	}

	hosts := make([]pkt.NodeID, cfg.Leaves*cfg.HostsPerLeaf)
	for i := range hosts {
		hosts[i] = pkt.NodeID(i)
	}
	// Cross-spine one-way base: 4 links of delay plus 4 serializations.
	oneWay := 4*cfg.LinkDelay + 4*sim.Duration(float64(pkt.MTU*8)/cfg.HostLinkBps*float64(sim.Second))

	horizon := sim.Duration(cfg.Queries)*cfg.QueryInterval + 10*sim.Millisecond
	switch cfg.Bg {
	case BgWebSearch:
		if cfg.BgLoad > 0 {
			bg := &workload.Background{
				Net: net, Hosts: hosts, Load: cfg.BgLoad, LinkBps: cfg.HostLinkBps,
				Dist: workload.WebSearch(), ECN: true,
				Collector: &res.Bg, OneWayBase: oneWay,
			}
			bg.Start(0, horizon)
			defer bg.Stop()
		}
	case BgAllToAll:
		if cfg.BgLoad > 0 {
			bg := &workload.AllToAll{
				Net: net, Hosts: hosts, FlowSize: cfg.BgFlowSize,
				Load: cfg.BgLoad, LinkBps: cfg.HostLinkBps, ECN: true,
				Collector: &res.Bg, OneWayBase: oneWay,
			}
			bg.Start(0, horizon)
			defer bg.Stop()
		}
	case BgAllReduce:
		if cfg.BgLoad > 0 {
			bg := &workload.AllReduce{
				Net: net, Hosts: hosts, FlowSize: cfg.BgFlowSize,
				Load: cfg.BgLoad, LinkBps: cfg.HostLinkBps, ECN: true,
				Collector: &res.Bg, OneWayBase: oneWay,
			}
			bg.Start(0, horizon)
			defer bg.Stop()
		}
	case BgNone:
	}

	var q *workload.Incast
	if cfg.QuerySize > 0 {
		q = &workload.Incast{
			Net: net, Servers: hosts, RandomClient: true,
			Fanout: cfg.QueryFanout, QuerySize: cfg.QuerySize,
			Interval: cfg.QueryInterval, ECN: true,
			Collector: &res.Query, LinkBps: cfg.HostLinkBps, OneWayBase: oneWay,
		}
		q.Start(2*sim.Millisecond, horizon)
	}

	deadline := horizon + 500*sim.Millisecond
	for net.Eng.Now() < sim.Time(deadline) {
		if q != nil && q.Done() >= int64(cfg.Queries) {
			break
		}
		if q == nil && net.Eng.Now() >= sim.Time(horizon) {
			break
		}
		net.Eng.RunFor(5 * sim.Millisecond)
	}
	if q != nil {
		q.Stop()
		res.Timeouts = q.Timeouts()
	}
	totalEvents.Add(net.Eng.Processed())
	for _, sw := range net.Switches {
		st := sw.Stats()
		res.Stats.RxPackets += st.RxPackets
		res.Stats.TxPackets += st.TxPackets
		res.Stats.TxBytes += st.TxBytes
		res.Stats.DropsAdmission += st.DropsAdmission
		res.Stats.DropsNoMemory += st.DropsNoMemory
		res.Stats.DropsExpelled += st.DropsExpelled
		res.Stats.ECNMarked += st.ECNMarked
	}
	return res
}
