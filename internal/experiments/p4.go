package experiments

import (
	"fmt"
	"strings"

	"occamy/internal/pkt"
	"occamy/internal/sim"
	"occamy/internal/switchsim"
	"occamy/internal/trace"
)

// QueueTraceConfig builds the P4-testbed scenario of Fig 11/12 (and the
// conceptual Fig 3): a switch whose port 0 carries long-lived congested
// traffic and whose port 1 receives a later burst. Traffic is injected
// raw (the Pktgen role) so queue dynamics reflect the BM alone.
type QueueTraceConfig struct {
	Spec PolicySpec
	// BufferBytes is the shared buffer (default 1.2MB ≈ the P4 setup).
	BufferBytes int
	// PortRateBps is the two receiver ports' drain rate (default 10G).
	PortRateBps float64
	// ChipPorts is the total port count of the chip — unused ports
	// still contribute memory bandwidth (default 8, the Tofino pipe's
	// front-panel group in our scale-down).
	ChipPorts int
	// LongRateBps is the long-lived traffic's arrival rate (default 2×
	// port rate, keeping queue 0 pinned at its threshold).
	LongRateBps float64
	// BurstRateBps is the burst arrival rate (default 100G).
	BurstRateBps float64
	// BurstBytes is the burst volume.
	BurstBytes int64
	// BurstAt is when the burst starts (default 200µs, letting queue 0
	// reach steady state).
	BurstAt sim.Duration
	// RunFor is the total simulated time (default BurstAt + 300µs).
	RunFor sim.Duration
	// SampleEvery enables queue-length tracing at this period (0: off).
	SampleEvery sim.Duration
	// PktSize is the injected packet size (default 1000B).
	PktSize int
}

func (c QueueTraceConfig) withDefaults() QueueTraceConfig {
	if c.BufferBytes == 0 {
		c.BufferBytes = 1_200_000
	}
	if c.PortRateBps == 0 {
		c.PortRateBps = 10e9
	}
	if c.ChipPorts < 2 {
		c.ChipPorts = 8
	}
	if c.LongRateBps == 0 {
		c.LongRateBps = 2 * c.PortRateBps
	}
	if c.BurstRateBps == 0 {
		c.BurstRateBps = 100e9
	}
	if c.BurstAt == 0 {
		// The long-lived queue fills at LongRate−PortRate net; its
		// steady-state length approaches α/(1+α)·B <= B. Give it time to
		// get there before the burst (the Fig 11/12 premise).
		fill := float64(c.BufferBytes) * 8 / (c.LongRateBps - c.PortRateBps)
		c.BurstAt = sim.Duration(1.3 * fill * float64(sim.Second))
	}
	if c.RunFor == 0 {
		burstDur := sim.Duration(float64(c.BurstBytes*8) / c.BurstRateBps * float64(sim.Second))
		c.RunFor = c.BurstAt + burstDur + 300*sim.Microsecond
	}
	if c.PktSize == 0 {
		c.PktSize = 1000
	}
	return c
}

// TracePoint is one sample of the Fig 3/11 time series.
type TracePoint struct {
	At        sim.Time
	LongLen   int // q1(t): long-lived queue
	BurstLen  int // q2(t): bursty queue
	Threshold int // T(t) for the burst queue
}

// QueueTraceResult carries the trace and the burst-loss accounting.
type QueueTraceResult struct {
	Trace       []TracePoint
	BurstSent   int64
	BurstDrops  int64 // admission + expulsion losses of burst traffic
	LongDrops   int64
	Expelled    int64 // total head-dropped packets (any queue)
	MaxBurstLen int
}

// LossRate returns the burst traffic's loss fraction (Fig 12's y-axis).
func (r QueueTraceResult) LossRate() float64 {
	if r.BurstSent == 0 {
		return 0
	}
	return float64(r.BurstDrops) / float64(r.BurstSent)
}

// RunQueueTrace executes the scenario.
func RunQueueTrace(cfg QueueTraceConfig) QueueTraceResult {
	cfg = cfg.withDefaults()
	eng := sim.NewEngine()
	policy, occ := cfg.Spec.Make()
	sw := switchsim.New("p4", eng, switchsim.Config{
		Ports:          cfg.ChipPorts,
		ClassesPerPort: 1,
		BufferBytes:    cfg.BufferBytes,
		Policy:         policy,
		Occamy:         occ,
	})
	// All packets here are raw injections, so both consumption points —
	// egress delivery and drops — recycle through one freelist.
	pool := pkt.NewPool()
	for i := 0; i < cfg.ChipPorts; i++ {
		sw.AttachPort(i, cfg.PortRateBps, 0, pool.Put)
	}
	sw.SetRouter(func(p *pkt.Packet) int { return int(p.Dst) })

	var res QueueTraceResult
	const longFlow, burstFlow = 1, 2
	sw.DropHook = func(p *pkt.Packet, q int, reason switchsim.DropReason) {
		switch p.FlowID {
		case burstFlow:
			res.BurstDrops++
		case longFlow:
			res.LongDrops++
		}
		pool.Put(p)
	}

	long := &Injector{Eng: eng, Sw: sw, Dst: 0, PktSize: cfg.PktSize, FlowID: longFlow, Pool: pool}
	long.StartCBR(0, cfg.LongRateBps)
	burst := &Injector{Eng: eng, Sw: sw, Dst: 1, PktSize: cfg.PktSize, FlowID: burstFlow, Pool: pool}
	burst.Burst(cfg.BurstAt, cfg.BurstBytes, cfg.BurstRateBps)

	if cfg.SampleEvery > 0 {
		eng.Every(0, cfg.SampleEvery, func() {
			res.Trace = append(res.Trace, TracePoint{
				At:        eng.Now(),
				LongLen:   sw.QueueLen(0),
				BurstLen:  sw.QueueLen(1),
				Threshold: sw.Threshold(1),
			})
			if sw.QueueLen(1) > res.MaxBurstLen {
				res.MaxBurstLen = sw.QueueLen(1)
			}
		})
	}
	eng.RunUntil(cfg.RunFor)
	long.Stop()
	eng.Stop()
	totalEvents.Add(eng.Processed())

	res.BurstSent = burst.Sent
	res.Expelled = sw.Stats().DropsExpelled
	if res.MaxBurstLen == 0 {
		res.MaxBurstLen = sw.QueueLen(1)
	}
	return res
}

// Fig3DTBehavior reproduces the healthy vs anomalous DT dynamics of
// Fig 3: with a gentle burst DT converges to fair sharing; with a fast
// burst the over-allocated queue cannot release buffer in time and the
// burst drops packets before reaching its fair share.
func Fig3DTBehavior() *Table {
	t := &Table{
		ID:      "fig3",
		Title:   "DT healthy vs anomalous dynamics (burst drops before reaching fair share?)",
		Columns: []string{"case", "burst_rate", "burst_drops", "max_burst_qlen_KB", "fair_share_KB"},
	}
	base := QueueTraceConfig{
		Spec:        DTSpec(1),
		BurstBytes:  600_000,
		SampleEvery: 2 * sim.Microsecond,
	}
	// Fair share with α=1 and two congested queues: B/3.
	fair := 1_200_000 / 3
	for _, c := range []struct {
		name string
		rate float64
	}{
		{"healthy(1.5x)", 15e9},
		{"anomalous(10x)", 100e9},
	} {
		cfg := base
		cfg.BurstRateBps = c.rate
		r := RunQueueTrace(cfg)
		t.AddRow(c.name, F(c.rate/1e9), fmt.Sprint(r.BurstDrops),
			F(float64(r.MaxBurstLen)/1000), F(float64(fair)/1000))
	}
	return t
}

// Fig11QueueEvolution reproduces the queue-length evolution traces:
// Occamy vs DT at α ∈ {1,4}. Rows are downsampled trace points.
func Fig11QueueEvolution(sampleEvery sim.Duration) []*Table {
	if sampleEvery == 0 {
		sampleEvery = 10 * sim.Microsecond
	}
	var out []*Table
	for _, spec := range []PolicySpec{
		OccamySpec(1, 0), OccamySpec(4, 0), DTSpec(1), DTSpec(4),
	} {
		cfg := QueueTraceConfig{
			Spec:        spec,
			BurstBytes:  800_000,
			SampleEvery: sampleEvery,
		}
		r := RunQueueTrace(cfg)
		t := &Table{
			ID:      "fig11/" + spec.Name,
			Title:   "queue length evolution (KB)",
			Columns: []string{"t_us", "q1_long", "q2_burst", "T"},
		}
		for _, p := range r.Trace {
			t.AddRow(F(p.At.Micros()), F(float64(p.LongLen)/1000),
				F(float64(p.BurstLen)/1000), F(float64(p.Threshold)/1000))
		}
		out = append(out, t)
	}
	return out
}

// Fig11Sparklines renders the four Fig 11 queue-evolution traces as
// ASCII plots (terminal-friendly "figures"): the long-lived queue, the
// burst queue, and the DT threshold on a shared scale per policy.
func Fig11Sparklines(sampleEvery sim.Duration, width int) string {
	if sampleEvery == 0 {
		sampleEvery = 5 * sim.Microsecond
	}
	if width == 0 {
		width = 72
	}
	var b strings.Builder
	for _, spec := range []PolicySpec{
		OccamySpec(1, 0), OccamySpec(4, 0), DTSpec(1), DTSpec(4),
	} {
		r := RunQueueTrace(QueueTraceConfig{
			Spec:        spec,
			BurstBytes:  800_000,
			SampleEvery: sampleEvery,
		})
		long := make([]float64, len(r.Trace))
		burst := make([]float64, len(r.Trace))
		thr := make([]float64, len(r.Trace))
		for i, p := range r.Trace {
			long[i] = float64(p.LongLen)
			burst[i] = float64(p.BurstLen)
			thr[i] = float64(p.Threshold)
			// Clamp the plotted threshold to the buffer so the early
			// near-empty-buffer spike does not flatten the curves.
			if thr[i] > 1_200_000 {
				thr[i] = 1_200_000
			}
		}
		fmt.Fprintf(&b, "%s (burst drops %d, expelled %d)\n", spec.Name, r.BurstDrops, r.Expelled)
		b.WriteString(trace.Plot([]trace.Series{
			{Name: "q1_long", Values: long},
			{Name: "q2_burst", Values: burst},
			{Name: "T(t)", Values: thr},
		}, width))
		b.WriteString("\n")
	}
	return b.String()
}

// Fig12BurstAbsorption reproduces the burst-loss-rate sweep: burst sizes
// 300–800KB for α ∈ {1,2,4}, Occamy vs DT.
func Fig12BurstAbsorption() *Table {
	t := &Table{
		ID:      "fig12",
		Title:   "burst loss rate vs burst size",
		Columns: []string{"alpha", "burst_KB", "occamy_loss", "dt_loss"},
	}
	for _, alpha := range []float64{1, 2, 4} {
		for size := int64(300_000); size <= 800_000; size += 100_000 {
			occ := RunQueueTrace(QueueTraceConfig{Spec: OccamySpec(alpha, 0), BurstBytes: size})
			dt := RunQueueTrace(QueueTraceConfig{Spec: DTSpec(alpha), BurstBytes: size})
			t.AddRow(F(alpha), F(float64(size)/1000), F(occ.LossRate()), F(dt.LossRate()))
		}
	}
	return t
}

// MaxLosslessBurst searches (by bisection over the sweep grid) for the
// largest burst a policy absorbs without loss — the burst-absorption
// headline (§6.1's "57% more").
func MaxLosslessBurst(spec PolicySpec, lo, hi, step int64) int64 {
	best := int64(0)
	for size := lo; size <= hi; size += step {
		r := RunQueueTrace(QueueTraceConfig{Spec: spec, BurstBytes: size})
		if r.BurstDrops == 0 {
			best = size
		}
	}
	return best
}

// Table1HardwareCost re-exports the hw cost model in table form.
func Table1HardwareCost(nQueues, qlenBits int) *Table {
	t := &Table{
		ID:      "table1",
		Title:   fmt.Sprintf("hardware cost (%d queues, %d-bit lengths)", nQueues, qlenBits),
		Columns: []string{"module", "LUTs", "FFs", "timing_ns", "area_mm2", "power_mW"},
	}
	for _, c := range hwTable1(nQueues, qlenBits) {
		t.AddRow(c.Module, fmt.Sprint(c.LUTs), fmt.Sprint(c.FlipFlops),
			F(c.TimingNs), fmt.Sprintf("%.5f", c.AreaMM2), F(c.PowerMW))
	}
	return t
}
