package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"occamy/internal/core"
	"occamy/internal/sim"
)

func TestTable1Format(t *testing.T) {
	tab := Table1HardwareCost(64, 20)
	if len(tab.Rows) != 4 { // selector, arbiter, executor, total
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"Selector", "Arbiter", "Executor", "Total", "LUTs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig3HealthyVsAnomalous(t *testing.T) {
	tab := Fig3DTBehavior()
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	healthyDrops, anomalousDrops := tab.Rows[0][2], tab.Rows[1][2]
	if healthyDrops != "0" {
		t.Fatalf("healthy case dropped packets: %s", healthyDrops)
	}
	if anomalousDrops == "0" {
		t.Fatal("anomalous case did not drop (should drop before fair share)")
	}
}

func TestFig11Traces(t *testing.T) {
	tables := Fig11QueueEvolution(20 * sim.Microsecond)
	if len(tables) != 4 {
		t.Fatalf("tables = %d, want 4 (Occamy/DT × α∈{1,4})", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Rows) < 10 {
			t.Fatalf("%s: only %d trace points", tab.ID, len(tab.Rows))
		}
	}
}

// The Fig 12 headline shapes: Occamy absorbs at least as much as DT at
// every α; Occamy improves with α while DT degrades.
func TestFig12Shapes(t *testing.T) {
	const lo, hi, step = 200_000, 800_000, 100_000
	lossless := func(spec PolicySpec) int64 {
		return MaxLosslessBurst(spec, lo, hi, step)
	}
	occ1 := lossless(OccamySpec(1, core.RoundRobin))
	occ4 := lossless(OccamySpec(4, core.RoundRobin))
	dt1 := lossless(DTSpec(1))
	dt4 := lossless(DTSpec(4))
	t.Logf("lossless burst: occamy α=1 %d, α=4 %d; dt α=1 %d, α=4 %d", occ1, occ4, dt1, dt4)
	if occ4 <= dt4 {
		t.Errorf("Occamy(α=4) absorbs %d <= DT(α=4) %d", occ4, dt4)
	}
	if occ1 < dt1 {
		t.Errorf("Occamy(α=1) absorbs %d < DT(α=1) %d", occ1, dt1)
	}
	if occ4 < occ1 {
		t.Errorf("Occamy did not improve with α: %d (α=4) < %d (α=1)", occ4, occ1)
	}
	if dt4 > dt1 {
		t.Errorf("DT improved with α: %d (α=4) > %d (α=1); should degrade", dt4, dt1)
	}
}

func TestFig12TableComplete(t *testing.T) {
	tab := Fig12BurstAbsorption()
	if len(tab.Rows) != 3*6 {
		t.Fatalf("rows = %d, want 18", len(tab.Rows))
	}
}

// Fig 13 shape: with queries larger than the buffer, Occamy's average
// QCT beats DT's (the 55% headline, relaxed to "strictly better within
// noise" at test scale).
func TestFig13OccamyBeatsDT(t *testing.T) {
	sc := QuickDPDK()
	sc.Queries = 12
	run := func(spec PolicySpec) *DPDKResult {
		cfg := DPDKConfig{Spec: spec, Hosts: sc.Hosts, Queries: sc.Queries, BgLoad: 0.5, Seed: sc.Seed}
		cfg.QuerySize = int64(1.2 * float64(cfg.BufferBytes()))
		return RunDPDK(cfg)
	}
	occ := run(OccamySpec(8, core.RoundRobin))
	dt := run(DTSpec(1))
	t.Logf("avg QCT: occamy %v (rtos %d), dt %v (rtos %d)",
		occ.Query.MeanFCT(), occ.Timeouts, dt.Query.MeanFCT(), dt.Timeouts)
	if occ.Query.Count() == 0 || dt.Query.Count() == 0 {
		t.Fatal("queries did not complete")
	}
	if got, want := occ.Query.MeanFCT(), dt.Query.MeanFCT(); float64(got) > 1.1*float64(want) {
		t.Errorf("Occamy avg QCT %v worse than DT %v", got, want)
	}
}

// Fig 15 shape: low-priority background must not blow up a preemptive
// BM's high-priority QCT, while DT chokes.
func TestFig15ChokingMitigated(t *testing.T) {
	sc := QuickDPDK()
	sc.Queries = 10
	run := func(spec PolicySpec, bg float64) *DPDKResult {
		cfg := DPDKConfig{
			Spec: spec, Hosts: sc.Hosts, Queries: sc.Queries,
			Classes: 2, Scheduler: 2, /* SchedSP */
			QueryPriority: 0, BgPriority: 1,
			AlphaHP: 8, AlphaLP: 1, BgCubic: true, BgLoad: bg, Seed: sc.Seed,
		}
		cfg.QuerySize = int64(2.0 * float64(cfg.BufferBytes()))
		return RunDPDK(cfg)
	}
	occNo := run(OccamySpec(8, core.RoundRobin), 0)
	occBg := run(OccamySpec(8, core.RoundRobin), 0.5)
	dtNo := run(DTSpec(1), 0)
	dtBg := run(DTSpec(1), 0.5)
	occRatio := float64(occBg.Query.MeanFCT()) / float64(occNo.Query.MeanFCT())
	dtRatio := float64(dtBg.Query.MeanFCT()) / float64(dtNo.Query.MeanFCT())
	t.Logf("QCT inflation from LP bg: occamy %.2fx, dt %.2fx", occRatio, dtRatio)
	if occRatio > dtRatio*1.05 {
		t.Errorf("Occamy choked more than DT: %.2fx vs %.2fx", occRatio, dtRatio)
	}
	if occRatio > 2.5 {
		t.Errorf("Occamy QCT inflated %.2fx by LP background; choking not mitigated", occRatio)
	}
}

// Fig 16 shape: Occamy can run large α without DT's anomalous behavior
// — at every α its average QCT is at least as good as DT's.
func TestFig16AlphaShape(t *testing.T) {
	sc := QuickDPDK()
	sc.Queries = 10
	run := func(spec PolicySpec) sim.Duration {
		cfg := DPDKConfig{
			Spec: spec, Hosts: sc.Hosts, Queries: sc.Queries,
			Classes: 2, Scheduler: 1, /* SchedDRR */
			QueryPriority: 0, BgPriority: 1,
			BgLoad: 0.5, BgCubic: true, Seed: sc.Seed,
		}
		cfg.QuerySize = int64(1.4 * float64(cfg.BufferBytes()))
		return RunDPDK(cfg).Query.MeanFCT()
	}
	for _, alpha := range []float64{1, 4, 8} {
		occ := run(OccamySpec(alpha, core.RoundRobin))
		dt := run(DTSpec(alpha))
		t.Logf("avg QCT at α=%g: occamy %v, dt %v", alpha, occ, dt)
		if float64(occ) > 1.1*float64(dt) {
			t.Errorf("Occamy(α=%g) avg %v worse than DT(α=%g) %v", alpha, occ, alpha, dt)
		}
	}
}

func TestFig17Shape(t *testing.T) {
	sc := QuickFabric()
	sc.Queries = 8
	sc.SizeFracs = []float64{0.8}
	tab := Fig17LargeScale(sc)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	var occ, dt float64
	for _, row := range tab.Rows {
		switch row[1] {
		case "Occamy":
			occ = atof(t, row[2])
		case "DT(a=1)":
			dt = atof(t, row[2])
		}
	}
	t.Logf("avg QCT slowdown: occamy %.2f, dt %.2f", occ, dt)
	if occ <= 0 || dt <= 0 {
		t.Fatal("missing slowdowns")
	}
	if occ > dt*1.05 {
		t.Errorf("Occamy slowdown %.2f worse than DT %.2f", occ, dt)
	}
}

func TestFig21RoundRobinCloseToLongest(t *testing.T) {
	sc := QuickFabric()
	sc.Queries = 8
	sc.SizeFracs = []float64{0.8}
	tab := Fig21RoundRobinDrop(sc)
	rr := atof(t, tab.Rows[0][2])
	ld := atof(t, tab.Rows[1][2])
	t.Logf("avg QCT slowdown: round-robin %.2f, longest %.2f", rr, ld)
	// The paper reports the two within ~15%; allow 35% at tiny scale.
	if rr > ld*1.35 || ld > rr*1.35 {
		t.Errorf("round-robin %.2f vs longest %.2f differ beyond tolerance", rr, ld)
	}
}

func TestFig7UtilizationBounds(t *testing.T) {
	sc := QuickFabric()
	sc.Queries = 5
	bufT, bwT := Fig7Utilization(sc)
	for _, row := range bufT.Rows {
		for _, cell := range row[1:] {
			v := atof(t, cell)
			if v < 0 || v > 100 {
				t.Fatalf("buffer utilization %v out of [0,100]", v)
			}
		}
	}
	// DT never fills the buffer at drop time: p99 < 100%.
	if p99 := atof(t, bufT.Rows[0][4]); p99 >= 99 {
		t.Errorf("α=0.5 p99 buffer utilization %.1f%%; DT should waste buffer", p99)
	}
	if len(bwT.Rows) != 3 {
		t.Fatalf("bw rows = %d", len(bwT.Rows))
	}
}

func TestFig22HeavyLoadRuns(t *testing.T) {
	sc := QuickFabric()
	sc.Queries = 5
	sc.SizeFracs = []float64{0.6}
	tab := Fig22HeavyLoad(sc)
	for _, row := range tab.Rows {
		if atof(t, row[2]) <= 0 {
			t.Fatalf("no QCT measured under heavy load: %v", row)
		}
	}
}

func TestFig23BufferSweepMonotonicBenefit(t *testing.T) {
	sc := QuickFabric()
	sc.Queries = 6
	tab := Fig23BufferSize(sc)
	// Occamy must beat or match DT at every buffer size (the "always
	// brings some benefit" claim).
	byFactor := map[string]map[string]float64{}
	for _, row := range tab.Rows {
		if byFactor[row[0]] == nil {
			byFactor[row[0]] = map[string]float64{}
		}
		byFactor[row[0]][row[1]] = atof(t, row[2])
	}
	for factor, m := range byFactor {
		if m["Occamy"] > m["DT(a=1)"]*1.15 {
			t.Errorf("factor %s: Occamy %.2f worse than DT %.2f", factor, m["Occamy"], m["DT(a=1)"])
		}
	}
}

func TestFig18Fig19Collectives(t *testing.T) {
	sc := QuickFabric()
	sc.Queries = 5
	sc.FlowSizes = []int64{128_000}
	for _, tab := range []*Table{Fig18AllToAll(sc), Fig19AllReduce(sc)} {
		if len(tab.Rows) != 4 {
			t.Fatalf("%s rows = %d", tab.ID, len(tab.Rows))
		}
		for _, row := range tab.Rows {
			if atof(t, row[2]) <= 0 {
				t.Fatalf("%s: empty QCT for %s", tab.ID, row[1])
			}
		}
	}
}

func TestFig20QueryLoadRuns(t *testing.T) {
	sc := QuickFabric()
	sc.Queries = 5
	sc.QueryLoads = []float64{0.2}
	tab := Fig20QueryLoad(sc)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestFig14IsolationRuns(t *testing.T) {
	sc := QuickDPDK()
	sc.Queries = 6
	sc.Loads = []float64{0.4}
	tab := Fig14Isolation(sc)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if atof(t, row[2]) <= 0 {
			t.Fatalf("no QCT for %s", row[1])
		}
	}
}

func atof(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestFig6ChokingMechanism(t *testing.T) {
	tab := Fig6Anomalies(6, []float64{2.5})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Choking row: the LP companions must fill most of the buffer
	// (choking pressure) and the HP incast must see drops before
	// reaching its deserved 1MB.
	peak := atof(t, tab.Rows[0][6])
	hpDrops := atof(t, tab.Rows[0][5])
	t.Logf("choking: peak buffer %.1f%%, HP drops with companions %.0f", peak, hpDrops)
	if peak < 60 {
		t.Errorf("LP companions hold only %.1f%% of buffer; no choking pressure", peak)
	}
	if hpDrops == 0 {
		t.Error("no HP drops under choking; anomaly not reproduced")
	}
}

func TestExtrasBakeoffRuns(t *testing.T) {
	sc := QuickDPDK()
	sc.Queries = 5
	sc.SizeFracs = []float64{0.8}
	tab := ExtrasBakeoff(sc)
	if len(tab.Rows) != 9 { // 4 standard + 5 extras
		t.Fatalf("rows = %d, want 9", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if atof(t, row[2]) <= 0 {
			t.Fatalf("policy %s produced no QCT", row[1])
		}
	}
}
