package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallel sweep runner
//
// Every figure of the paper is a grid sweep: policy × load × size
// points, each an independent simulation with its own engine, network,
// and seeded RNG. RunGrid fans those points across a worker pool while
// keeping output deterministic: results are stored by input index, so a
// table assembled from them is byte-identical whether the sweep ran on
// one worker or many.
//
// Safety rests on run-isolation: a point's closure must not touch
// anything outside its own simulation (PolicySpec.Make builds fresh
// policy state per call; engines, networks, and collectors are all
// per-run). The only cross-run state in the repository is the packet-ID
// counter, which is atomic and behavior-free.

// parallelism is the worker count used by RunGrid; 0 means GOMAXPROCS.
var parallelism atomic.Int32

// SetParallelism sets the number of concurrent simulations RunGrid may
// execute (the CLI -j flag). j <= 0 restores the default (GOMAXPROCS).
func SetParallelism(j int) {
	if j < 0 {
		j = 0
	}
	parallelism.Store(int32(j))
}

// Parallelism returns the effective RunGrid worker count.
func Parallelism() int {
	if j := int(parallelism.Load()); j > 0 {
		return j
	}
	return runtime.GOMAXPROCS(0)
}

// RunGrid evaluates run over every point, using up to Parallelism()
// workers, and returns the results in input order.
func RunGrid[P, R any](points []P, run func(P) R) []R {
	results := make([]R, len(points))
	j := Parallelism()
	if j > len(points) {
		j = len(points)
	}
	if j <= 1 {
		for i, p := range points {
			results[i] = run(p)
		}
		return results
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < j; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(points) {
					return
				}
				results[i] = run(points[i])
			}
		}()
	}
	wg.Wait()
	return results
}

// totalEvents accumulates Engine.Processed() across every completed
// harness run (RunDPDK, RunFabric, RunQueueTrace), atomically so
// parallel sweeps can contribute. Benchmarks read the delta to report
// simulated events per second.
var totalEvents atomic.Uint64

// EventsProcessed returns the cumulative simulator events executed by
// all experiment harness runs in this process.
func EventsProcessed() uint64 { return totalEvents.Load() }
