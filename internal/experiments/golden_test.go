package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// Golden-table regression tests
//
// The Fig 6/7 harnesses are the byte-identity anchors for any refactor of
// the scenario-assembly layer: their small-scale output tables are
// committed under testdata/ and diffed byte-for-byte. A change that
// perturbs simulation behavior — reordered events, a different RNG
// consumption pattern, a new default — shows up here immediately, even if
// every shape test still passes.
//
// Regenerate (after an *intentional* behavior change) with:
//
//	GOLDEN_UPDATE=1 go test ./internal/experiments -run TestGolden

// goldenFig6 is the committed small-scale Fig 6 configuration.
func goldenFig6() *Table {
	return Fig6Anomalies(3, []float64{1.5})
}

// goldenFig7 is the committed small-scale Fig 7 configuration.
func goldenFig7() (*Table, *Table) {
	sc := QuickFabric()
	sc.Queries = 3
	return Fig7Utilization(sc)
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("GOLDEN_UPDATE") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run with GOLDEN_UPDATE=1 to create): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from the committed golden table.\n--- want\n%s--- got\n%s", name, want, got)
	}
}

func TestGoldenFig6(t *testing.T) {
	checkGolden(t, "fig6_golden.txt", render(goldenFig6()))
}

func TestGoldenFig7(t *testing.T) {
	bufT, bwT := goldenFig7()
	checkGolden(t, "fig7a_golden.txt", render(bufT))
	checkGolden(t, "fig7b_golden.txt", render(bwT))
}
