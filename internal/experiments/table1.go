package experiments

import "occamy/internal/hw"

// hwTable1 bridges to the hw cost model (kept in a tiny file so the
// experiment surface stays in one package).
func hwTable1(nQueues, qlenBits int) []hw.Cost {
	rows := hw.Table1(nQueues, qlenBits)
	return append(rows, hw.TotalCost(rows))
}
