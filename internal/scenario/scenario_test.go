package scenario

import (
	"bytes"
	"strings"
	"testing"

	"occamy/internal/experiments"
	"occamy/internal/linkfault"
	"occamy/internal/sim"
)

func render(tabs []*experiments.Table) string {
	var buf bytes.Buffer
	for _, t := range tabs {
		t.Fprint(&buf)
	}
	return buf.String()
}

// Every registered scenario must run at test scale with sane output:
// traffic actually delivered, the packet-accounting books closed, and a
// non-empty table. This is the smoke gate new catalog entries buy into
// by calling Register.
func TestCatalogSmoke(t *testing.T) {
	names := Names()
	if len(names) < 8 {
		t.Fatalf("catalog has %d scenarios, want >= 8", len(names))
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, ok := Get(name)
			if !ok {
				t.Fatalf("Get(%q) failed", name)
			}
			if sc.Tables != nil {
				tabs := sc.Tables(ScaleQuick)
				if len(tabs) == 0 {
					t.Fatal("figure scenario produced no tables")
				}
				for _, tab := range tabs {
					if len(tab.Rows) == 0 {
						t.Fatalf("figure table %s has no rows", tab.ID)
					}
				}
				return
			}
			spec := sc.SpecAt(ScaleQuick)
			res, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			if res.DeliveredBytes() == 0 {
				t.Error("no bytes delivered")
			}
			if drift := res.AccountingDrift(); drift != 0 {
				t.Errorf("packet accounting drift %d (rx != tx+drops+expelled+buffered)", drift)
			}
			if gate := spec.gatingIncast(); gate >= 0 && res.Workloads[gate].Done == 0 {
				t.Error("gating incast completed no queries")
			}
			tab := res.Table()
			if len(tab.Rows) != 1 || len(tab.Columns) < 3 {
				t.Errorf("summary table malformed: %d rows, %d cols", len(tab.Rows), len(tab.Columns))
			}
			for _, cell := range tab.Rows[0] {
				if cell == "" {
					t.Error("empty summary cell")
				}
			}
		})
	}
}

// Identical specs must give byte-identical tables: scenarios inherit the
// engine's determinism guarantees.
func TestScenarioDeterministic(t *testing.T) {
	sc, _ := Get("leafspine-demo")
	run := func() string {
		tabs, err := sc.RunTables(ScaleQuick)
		if err != nil {
			t.Fatal(err)
		}
		return render(tabs)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("scenario differs across identical runs:\n--- first\n%s--- second\n%s", a, b)
	}
}

// Field sweeps: set-by-path plus cross-product expansion, and the sweep
// table is invariant to the RunGrid parallelism level.
func TestSweepAcrossPolicies(t *testing.T) {
	sc, _ := Get("burst-absorb")
	axes := []SweepAxis{{Path: "policy.kind", Values: []string{"dt", "occamy"}}}
	defer experiments.SetParallelism(0)
	experiments.SetParallelism(1)
	serialTab, err := RunSweep(sc.SpecAt(ScaleQuick), axes)
	if err != nil {
		t.Fatal(err)
	}
	experiments.SetParallelism(4)
	parTab, err := RunSweep(sc.SpecAt(ScaleQuick), axes)
	if err != nil {
		t.Fatal(err)
	}
	a, b := render([]*experiments.Table{serialTab}), render([]*experiments.Table{parTab})
	if a != b {
		t.Fatalf("sweep differs between -j 1 and -j 4:\n%s\nvs\n%s", a, b)
	}
	if len(serialTab.Rows) != 2 {
		t.Fatalf("sweep rows = %d, want 2", len(serialTab.Rows))
	}
	// The burst-absorb scenario is sized so preemption matters: DT must
	// lose burst packets, Occamy must lose strictly fewer.
	idx := -1
	for i, c := range serialTab.Columns {
		if c == "burst_loss" {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatalf("no burst_loss column in %v", serialTab.Columns)
	}
	dtLoss, occLoss := serialTab.Rows[0][idx], serialTab.Rows[1][idx]
	if dtLoss == "0" {
		t.Errorf("DT lost no burst packets; scenario not stressing the buffer")
	}
	if occLoss >= dtLoss {
		t.Errorf("Occamy burst loss %s not better than DT %s", occLoss, dtLoss)
	}
}

func TestSetFieldPaths(t *testing.T) {
	sc, _ := Get("leafspine-demo")
	spec := sc.Spec
	spec.Workloads = append([]Workload(nil), spec.Workloads...)
	for _, c := range []struct{ path, val string }{
		{"policy.alpha", "2"},
		{"policy.kind", "abm"},
		{"topology.hostsperleaf", "8"},
		{"workloads[0].load", "0.4"},
		{"workloads[1].interval", "3ms"},
		{"seed", "7"},
		// Fault paths allocate the nil optional blocks on the way and
		// accept the JSON spellings (dashes, underscores).
		{"faults.host-leaf.loss_prob", "0.05"},
		{"faults.all.jitter_max", "10us"},
		{"faults.leaf-spine.ge_bad_loss_prob", "0.25"},
	} {
		if err := SetField(&spec, c.path, c.val); err != nil {
			t.Errorf("SetField(%s=%s): %v", c.path, c.val, err)
		}
	}
	if spec.Policy.Alpha != 2 || spec.Policy.Kind != "abm" ||
		spec.Topology.HostsPerLeaf != 8 || spec.Workloads[0].Load != 0.4 ||
		spec.Workloads[1].Interval.Millis() != 3 || spec.Seed != 7 {
		t.Errorf("fields not applied: %+v", spec)
	}
	if spec.Faults == nil || spec.Faults.HostLeaf == nil || spec.Faults.HostLeaf.LossProb != 0.05 ||
		spec.Faults.All == nil || spec.Faults.All.JitterMax != 10*sim.Microsecond ||
		spec.Faults.LeafSpine == nil || spec.Faults.LeafSpine.GEBadLossProb != 0.25 {
		t.Errorf("fault fields not applied: %+v", spec.Faults)
	}
	if err := SetField(&spec, "no.such.field", "1"); err == nil {
		t.Error("bogus path accepted")
	}
	if err := SetField(&spec, "workloads[9].load", "1"); err == nil {
		t.Error("out-of-range index accepted")
	}
}

// Degraded ports must actually slow the configured hosts down: the same
// permutation load on a degraded fabric delivers less than on a healthy
// one within the same horizon.
func TestDegradedPortsBite(t *testing.T) {
	base := Spec{
		Name:  "degrade-check",
		Title: "degrade check",
		Topology: Topology{
			Kind: LeafSpine, LinkBps: 10e9,
		},
		Policy: Policy{Kind: "dt", Alpha: 1},
		Workloads: []Workload{
			{Kind: WLPermutation, FlowSize: 200_000, Load: 0.8},
		},
		Duration: 5 * 1000 * 1000, // 5ms
	}
	healthy := MustRun(base)
	degraded := base
	degraded.Topology.DegradedPorts = map[int]float64{0: 0.1, 1: 0.1, 4: 0.1}
	slow := MustRun(degraded)
	if slow.DeliveredBytes() >= healthy.DeliveredBytes() {
		t.Errorf("degraded fabric delivered %d >= healthy %d", slow.DeliveredBytes(), healthy.DeliveredBytes())
	}
}

// Stateful policies must get per-switch instances on a fabric (a shared
// TDT/EDT map across switches would corrupt state silently).
func TestStatefulPolicyOnFabric(t *testing.T) {
	spec := Spec{
		Name:  "tdt-fabric",
		Title: "tdt on fabric",
		Topology: Topology{
			Kind: LeafSpine, LinkBps: 10e9,
		},
		Policy: Policy{Kind: "tdt", Alpha: 1},
		Workloads: []Workload{
			{Kind: WLBackground, Load: 0.5},
		},
		Duration: 5 * 1000 * 1000,
	}
	res := MustRun(spec)
	if res.DeliveredBytes() == 0 {
		t.Error("no delivery under TDT fabric")
	}
	if drift := res.AccountingDrift(); drift != 0 {
		t.Errorf("accounting drift %d", drift)
	}
}

// TestHalfSpecifiedPrioAlpha: setting only AlphaHP (or only AlphaLP)
// must leave the other classes on the base α — a zero entry in the
// per-priority map would read as threshold 0 and starve that class.
func TestHalfSpecifiedPrioAlpha(t *testing.T) {
	for _, classes := range []int{2, 4} {
		p, _, err := (Policy{Kind: "dt", Alpha: 2, AlphaHP: 8}).Build(classes)
		if err != nil {
			t.Fatal(err)
		}
		st := &probeState{cap: 100_000, n: classes}
		for c := 1; c < classes; c++ {
			hp := p.Threshold(st, 0)
			lp := p.Threshold(probeAt{st, c}, c)
			if lp == 0 {
				t.Fatalf("classes=%d: class %d starved (threshold 0) by half-specified AlphaHP", classes, c)
			}
			if hp <= lp {
				t.Fatalf("classes=%d: AlphaHP=8 not applied: hp threshold %d <= lp %d", classes, c, hp)
			}
		}
	}
	// And AlphaLP must cover every low class when classes > 2.
	p, _, err := (Policy{Kind: "dt", Alpha: 2, AlphaLP: 1}).Build(4)
	if err != nil {
		t.Fatal(err)
	}
	st := &probeState{cap: 100_000, n: 4}
	ref := p.Threshold(probeAt{st, 1}, 1)
	for c := 2; c < 4; c++ {
		if got := p.Threshold(probeAt{st, c}, c); got != ref {
			t.Fatalf("class %d threshold %d != class 1's %d; AlphaLP not applied uniformly", c, got, ref)
		}
	}
}

// On/off phase windows are half-open: a round interval that divides
// OnTime exactly must not fire a round inside the off window (the
// generators' inclusive `until` is pulled back 1ns by startRounds).
func TestPhaseBoundaryExcluded(t *testing.T) {
	// FlowSize 1MB at load 0.8 on 10G → round interval exactly 1ms.
	spec := Spec{
		Name:     "phase-edge",
		Topology: Topology{Kind: SingleSwitch, Hosts: 4, LinkBps: 10e9},
		Policy:   Policy{Kind: "dt", Alpha: 1},
		Workloads: []Workload{{
			Kind: WLPermutation, FlowSize: 1_000_000, Load: 0.8,
			OnTime: 2 * sim.Millisecond, OffTime: 8 * sim.Millisecond,
		}},
		Duration: 10 * sim.Millisecond,
	}
	res := MustRun(spec)
	// One phase [0, 2ms): rounds at 0 and 1ms only — a third at exactly
	// 2ms would sit in the off window.
	if got := res.Workloads[0].Launched; got != 2 {
		t.Fatalf("launched %d rounds in a 2ms on-phase with a 1ms interval, want 2", got)
	}
}

// probeState is an empty-buffer bm.State where queue q has priority q.
type probeState struct{ cap, n int }

func (s *probeState) Capacity() int           { return s.cap }
func (s *probeState) Occupancy() int          { return 0 }
func (s *probeState) NumQueues() int          { return s.n }
func (s *probeState) QueueLen(int) int        { return 0 }
func (s *probeState) QueuePriority(q int) int { return q }
func (s *probeState) DequeueRate(int) float64 { return 1 }

// probeAt reuses probeState but reports the wrapped priority for any
// queried queue (so Threshold(q) sees priority class prio).
type probeAt struct {
	*probeState
	prio int
}

func (s probeAt) QueuePriority(int) int { return s.prio }

func TestValidateRejectsNonsense(t *testing.T) {
	for _, c := range []struct {
		name string
		mut  func(*Spec)
	}{
		{"no workloads", func(s *Spec) { s.Workloads = nil }},
		{"bad kind", func(s *Spec) { s.Workloads = []Workload{{Kind: "nope"}} }},
		{"bad policy", func(s *Spec) { s.Policy.Kind = "nope" }},
		{"bad sched", func(s *Spec) { s.Topology.Scheduler = "wfq" }},
		{"raw on fabric", func(s *Spec) {
			s.Topology.Kind = LeafSpine
			s.Workloads = []Workload{{Kind: WLCBR, RateBps: 1e9}}
		}},
		{"mixed raw+transport", func(s *Spec) {
			s.Workloads = []Workload{{Kind: WLCBR, RateBps: 1e9}, {Kind: WLBackground, Load: 0.5}}
		}},
		{"zero load", func(s *Spec) { s.Workloads = []Workload{{Kind: WLBackground}} }},
		{"incast client out of range", func(s *Spec) {
			s.Workloads = []Workload{{Kind: WLIncast, QuerySize: 1000, Client: 100}}
		}},
		{"incast client below -1", func(s *Spec) {
			s.Workloads = []Workload{{Kind: WLIncast, QuerySize: 1000, Client: -2}}
		}},
		{"longlived client out of range", func(s *Spec) {
			s.Workloads = []Workload{{Kind: WLLongLived, Count: 1, Client: 9}}
		}},
		{"raw dst_port out of range", func(s *Spec) {
			s.Workloads = []Workload{{Kind: WLCBR, RateBps: 1e9, DstPort: 8}}
		}},
		{"negative hosts", func(s *Spec) { s.Topology.Hosts = -4 }},
		{"negative duration", func(s *Spec) { s.Duration = -sim.Millisecond }},
		{"negative warmup", func(s *Spec) { s.Warmup = -sim.Millisecond }},
		{"negative burst At", func(s *Spec) {
			s.Workloads = []Workload{{Kind: WLBurst, RateBps: 1e9, Bytes: 1000, At: -sim.Millisecond}}
		}},
		{"negative incast fanout", func(s *Spec) {
			s.Workloads = []Workload{{Kind: WLIncast, QuerySize: 1000, Fanout: -5}}
		}},
		{"negative incast interval", func(s *Spec) {
			s.Workloads = []Workload{{Kind: WLIncast, QuerySize: 1000, Interval: -10 * sim.Microsecond}}
		}},
		{"negative priority", func(s *Spec) {
			s.Workloads = []Workload{{Kind: WLBackground, Load: 0.5, Priority: -1}}
		}},
		{"fault loss prob over 1", func(s *Spec) {
			s.Faults = &Faults{All: &linkfault.Profile{LossProb: 1.5}}
		}},
		{"fault negative dup prob", func(s *Spec) {
			s.Faults = &Faults{HostLeaf: &linkfault.Profile{DupProb: -0.1}}
		}},
		{"fault GE bad-loss prob over 1", func(s *Spec) {
			s.Faults = &Faults{LeafSpine: &linkfault.Profile{GEBadLossProb: 2, GEGoodToBad: 0.01, GEBadToGood: 0.1}}
		}},
		{"fault reorder without hold", func(s *Spec) {
			s.Faults = &Faults{All: &linkfault.Profile{ReorderProb: 0.1}}
		}},
		{"fault negative reorder hold", func(s *Spec) {
			s.Faults = &Faults{All: &linkfault.Profile{ReorderProb: 0.1, ReorderHold: -sim.Microsecond}}
		}},
		{"fault negative jitter", func(s *Spec) {
			s.Faults = &Faults{All: &linkfault.Profile{JitterMax: -sim.Microsecond}}
		}},
		{"faults on raw injection", func(s *Spec) {
			s.Workloads = []Workload{{Kind: WLCBR, RateBps: 1e9}}
			s.Faults = &Faults{All: &linkfault.Profile{LossProb: 0.01}}
		}},
	} {
		spec := Spec{
			Name:      "v",
			Topology:  Topology{Kind: SingleSwitch},
			Workloads: []Workload{{Kind: WLBackground, Load: 0.5}},
		}
		c.mut(&spec)
		if err := spec.WithDefaults().Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid spec", c.name)
		} else if !strings.Contains(err.Error(), "scenario") {
			t.Errorf("%s: unhelpful error %v", c.name, err)
		}
	}
}
