package scenario

import (
	"fmt"

	"occamy/internal/experiments"
	"occamy/internal/linkfault"
)

// Link faults as data
//
// A spec's optional "faults" block turns the ideal links of a topology
// into lossy, bursty, duplicating, reordering, or jittery ones (see
// internal/linkfault). Profiles are selected per link class — host
// access links ("host-leaf") and fabric links ("leaf-spine") — with
// "all" as the shared fallback. The per-link fault counters land in
// Result.FaultLinks, render as FaultTable, and export in the result
// document, so a degraded-network run explains its own packet budget.

// Faults selects per-link-class fault profiles. A class without a
// profile (directly or via All) keeps its links ideal.
type Faults struct {
	// All applies to every link class without a more specific profile.
	All *linkfault.Profile `json:"all,omitempty"`
	// HostLeaf covers host access links: host<->switch on a single
	// switch, host<->leaf on a fabric.
	HostLeaf *linkfault.Profile `json:"host-leaf,omitempty"`
	// LeafSpine covers fabric links (leaf<->spine); it never matches on
	// a single-switch topology.
	LeafSpine *linkfault.Profile `json:"leaf-spine,omitempty"`
}

// clone deep-copies the block (sweeps write through profile pointers).
func (f *Faults) clone() *Faults {
	if f == nil {
		return nil
	}
	cp := &Faults{}
	if f.All != nil {
		p := *f.All
		cp.All = &p
	}
	if f.HostLeaf != nil {
		p := *f.HostLeaf
		cp.HostLeaf = &p
	}
	if f.LeafSpine != nil {
		p := *f.LeafSpine
		cp.LeafSpine = &p
	}
	return cp
}

// config resolves the block into the wiring-layer fault config: each
// class takes its specific profile, falling back to All.
func (f *Faults) config(seed uint64) linkfault.Config {
	if f == nil {
		return linkfault.Config{}
	}
	pick := func(specific *linkfault.Profile) *linkfault.Profile {
		if specific != nil {
			return specific
		}
		return f.All
	}
	return linkfault.Config{
		Seed:      seed,
		HostLeaf:  pick(f.HostLeaf),
		LeafSpine: pick(f.LeafSpine),
	}
}

// validate rejects profiles the emulator cannot run: probabilities
// outside [0,1], negative durations, and a reorder probability without
// a hold horizon (held packets would never be released by time).
func (f *Faults) validate(name string) error {
	if f == nil {
		return nil
	}
	check := func(label string, p *linkfault.Profile) error {
		if p == nil {
			return nil
		}
		for _, pr := range []struct {
			field string
			v     float64
		}{
			{"loss_prob", p.LossProb},
			{"ge_bad_loss_prob", p.GEBadLossProb},
			{"ge_good_to_bad", p.GEGoodToBad},
			{"ge_bad_to_good", p.GEBadToGood},
			{"dup_prob", p.DupProb},
			{"reorder_prob", p.ReorderProb},
		} {
			if pr.v < 0 || pr.v > 1 {
				return fmt.Errorf("scenario %q: faults.%s.%s = %v outside [0,1]", name, label, pr.field, pr.v)
			}
		}
		if p.ReorderHold < 0 || p.JitterMax < 0 {
			return fmt.Errorf("scenario %q: faults.%s has a negative duration", name, label)
		}
		if p.ReorderProb > 0 && p.ReorderHold <= 0 {
			return fmt.Errorf("scenario %q: faults.%s.reorder_prob needs reorder_hold > 0", name, label)
		}
		return nil
	}
	if err := check("all", f.All); err != nil {
		return err
	}
	if err := check("host-leaf", f.HostLeaf); err != nil {
		return err
	}
	return check("leaf-spine", f.LeafSpine)
}

// LinkFaultTotals sums the per-link fault counters of the run.
func (r *Result) LinkFaultTotals() linkfault.Stats {
	var t linkfault.Stats
	for _, l := range r.FaultLinks {
		t.Offered += l.Offered
		t.Delivered += l.Delivered
		t.Dropped += l.Dropped
		t.Duplicated += l.Duplicated
		t.Held += l.Held
		t.Reordered += l.Reordered
	}
	return t
}

// FaultTable renders the per-link fault counters of every faulted link
// that saw traffic, plus a total row. Conservation holds per row:
// offered + duplicated == delivered + dropped once the run has drained.
func (r *Result) FaultTable() *experiments.Table {
	t := &experiments.Table{
		ID:    r.Spec.Name + "-faults",
		Title: "per-link fault injection counters",
		Columns: []string{"link", "class", "offered", "delivered",
			"dropped", "duplicated", "held", "reordered"},
	}
	for _, l := range r.FaultLinks {
		if l.Offered == 0 {
			continue
		}
		t.AddRow(l.Name, l.Class.String(),
			fmt.Sprint(l.Offered), fmt.Sprint(l.Delivered),
			fmt.Sprint(l.Dropped), fmt.Sprint(l.Duplicated),
			fmt.Sprint(l.Held), fmt.Sprint(l.Reordered))
	}
	if len(r.FaultLinks) > 0 {
		tot := r.LinkFaultTotals()
		t.AddRow("total", "-",
			fmt.Sprint(tot.Offered), fmt.Sprint(tot.Delivered),
			fmt.Sprint(tot.Dropped), fmt.Sprint(tot.Duplicated),
			fmt.Sprint(tot.Held), fmt.Sprint(tot.Reordered))
	}
	return t
}
