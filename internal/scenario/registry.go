package scenario

import (
	"fmt"
	"sort"
	"sync"

	"occamy/internal/experiments"
)

// Scenario is a registry entry: a spec plus optional scale/runner hooks.
type Scenario struct {
	Spec Spec
	// Quick shrinks the spec to test scale (smoke tests, `run -scale
	// quick`). Nil applies the generic shrink (fewer queries, shorter
	// horizon).
	Quick func(Spec) Spec
	// Paper grows the spec to evaluation scale (`run -scale paper`).
	// Nil applies the generic growth (≥50 gating queries, ≥200ms
	// horizon).
	Paper func(Spec) Spec
	// Tables, when set, replaces the generic builder: the ported figure
	// harnesses keep their bespoke multi-run tables (and byte-identical
	// output, pinned by the golden tests). Tables-backed entries cannot
	// be swept or exported to JSON.
	Tables func(scale Scale) []*experiments.Table
}

// Name returns the registry key.
func (s Scenario) Name() string { return s.Spec.Name }

var (
	regMu    sync.Mutex
	registry = map[string]Scenario{}
)

// Register adds a scenario; duplicate names panic (catalog bugs should
// fail loudly at init).
func Register(s Scenario) {
	regMu.Lock()
	defer regMu.Unlock()
	if s.Spec.Name == "" {
		panic("scenario: Register with empty name")
	}
	if _, dup := registry[s.Spec.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registration of %q", s.Spec.Name))
	}
	if s.Tables == nil {
		if err := s.Spec.WithDefaults().Validate(); err != nil {
			panic(fmt.Sprintf("scenario: registering invalid spec: %v", err))
		}
	}
	registry[s.Spec.Name] = s
}

// Get looks a scenario up by name.
func Get(name string) (Scenario, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	s, ok := registry[name]
	return s, ok
}

// Names returns all registered scenario names, sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SpecAt returns the scenario's spec at the given scale, preferring the
// per-scenario hooks over the generic transforms. The returned spec has
// Scale resolved to "" so Run does not re-apply a preset.
func (s Scenario) SpecAt(scale Scale) Spec {
	switch scale {
	case ScaleQuick:
		if s.Quick != nil {
			sp := s.Quick(s.Spec)
			sp.Scale = ""
			return sp
		}
		return QuickSpec(s.Spec)
	case ScalePaper:
		if s.Paper != nil {
			sp := s.Paper(s.Spec)
			sp.Scale = ""
			return sp
		}
		return PaperSpec(s.Spec)
	}
	return s.Spec
}

// RunTables executes the scenario at the given scale and renders its
// output tables — the generic one-row summary, or the figure harness's
// bespoke tables.
func (s Scenario) RunTables(scale Scale) ([]*experiments.Table, error) {
	if s.Tables != nil {
		return s.Tables(scale), nil
	}
	r, err := Run(s.SpecAt(scale))
	if err != nil {
		return nil, err
	}
	return []*experiments.Table{r.Table()}, nil
}
