package scenario

import (
	"fmt"
	"sort"
	"sync"

	"occamy/internal/experiments"
	"occamy/internal/sim"
)

// Scenario is a registry entry: a spec plus optional scale/runner hooks.
type Scenario struct {
	Spec Spec
	// Quick shrinks the spec to test scale (smoke tests, `run -scale
	// quick`). Nil applies the generic shrink (fewer queries, shorter
	// horizon).
	Quick func(Spec) Spec
	// Tables, when set, replaces the generic builder: the ported figure
	// harnesses keep their bespoke multi-run tables (and byte-identical
	// output, pinned by the golden tests). Tables-backed entries cannot
	// be swept.
	Tables func(quick bool) []*experiments.Table
}

// Name returns the registry key.
func (s Scenario) Name() string { return s.Spec.Name }

var (
	regMu    sync.Mutex
	registry = map[string]Scenario{}
)

// Register adds a scenario; duplicate names panic (catalog bugs should
// fail loudly at init).
func Register(s Scenario) {
	regMu.Lock()
	defer regMu.Unlock()
	if s.Spec.Name == "" {
		panic("scenario: Register with empty name")
	}
	if _, dup := registry[s.Spec.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registration of %q", s.Spec.Name))
	}
	if s.Tables == nil {
		if err := s.Spec.WithDefaults().Validate(); err != nil {
			panic(fmt.Sprintf("scenario: registering invalid spec: %v", err))
		}
	}
	registry[s.Spec.Name] = s
}

// Get looks a scenario up by name.
func Get(name string) (Scenario, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	s, ok := registry[name]
	return s, ok
}

// Names returns all registered scenario names, sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// QuickSpec is the generic test-scale shrink: at most 3 gating queries,
// a 10ms horizon, and a 1ms warmup. Raw specs (already µs-scale) keep
// their timing.
func QuickSpec(s Spec) Spec {
	if s.Raw() {
		return s
	}
	s.Workloads = append([]Workload(nil), s.Workloads...)
	for i := range s.Workloads {
		if s.Workloads[i].Queries > 3 {
			s.Workloads[i].Queries = 3
		}
	}
	if s.Duration > 10*sim.Millisecond {
		s.Duration = 10 * sim.Millisecond
	}
	if s.Warmup > sim.Millisecond {
		s.Warmup = sim.Millisecond
	}
	return s
}

// SpecAt returns the scenario's spec at the given scale.
func (s Scenario) SpecAt(quick bool) Spec {
	if !quick {
		return s.Spec
	}
	if s.Quick != nil {
		return s.Quick(s.Spec)
	}
	return QuickSpec(s.Spec)
}

// RunTables executes the scenario at the given scale and renders its
// output tables — the generic one-row summary, or the figure harness's
// bespoke tables.
func (s Scenario) RunTables(quick bool) ([]*experiments.Table, error) {
	if s.Tables != nil {
		return s.Tables(quick), nil
	}
	r, err := Run(s.SpecAt(quick))
	if err != nil {
		return nil, err
	}
	return []*experiments.Table{r.Table()}, nil
}
