package scenario

import (
	"errors"
	"fmt"
	"reflect"
	"slices"
	"strconv"
	"strings"
	"time"

	"occamy/internal/experiments"
	"occamy/internal/sim"
)

// Spec field access by path
//
// Sweeps address spec fields with dotted, case-insensitive paths:
//
//	policy.alpha
//	topology.hosts
//	workloads[1].load
//	duration
//
// SetField parses the string value per the field's type (durations accept
// Go syntax: "2ms", "150us"), so the CLI can sweep any spec field without
// per-field code.

// SetField assigns value (parsed per the field's type) to the path inside
// spec.
func SetField(spec *Spec, path, value string) error {
	v, err := resolve(reflect.ValueOf(spec).Elem(), path)
	if err != nil {
		return err
	}
	return assign(v, path, value)
}

// resolve walks a dotted path (with optional [i] indexing) to a settable
// reflect.Value.
func resolve(v reflect.Value, path string) (reflect.Value, error) {
	for _, part := range strings.Split(path, ".") {
		name := part
		index := -1
		if i := strings.IndexByte(part, '['); i >= 0 {
			if !strings.HasSuffix(part, "]") {
				return v, fmt.Errorf("scenario: malformed index in %q", part)
			}
			n, err := strconv.Atoi(part[i+1 : len(part)-1])
			if err != nil {
				return v, fmt.Errorf("scenario: malformed index in %q", part)
			}
			name, index = part[:i], n
		}
		// Optional blocks are pointers (Spec.Faults, its profiles): step
		// through, allocating on the way so a sweep can set a field in a
		// block the base spec leaves nil.
		for v.Kind() == reflect.Pointer {
			if v.IsNil() {
				if !v.CanSet() {
					return v, fmt.Errorf("scenario: nil %s in path %q", v.Type(), path)
				}
				v.Set(reflect.New(v.Type().Elem()))
			}
			v = v.Elem()
		}
		if v.Kind() != reflect.Struct {
			return v, fmt.Errorf("scenario: %q is not a struct field path", path)
		}
		field := v.FieldByNameFunc(func(f string) bool { return fieldNameMatch(f, name) })
		if !field.IsValid() {
			return v, fmt.Errorf("scenario: no field %q in %s", name, v.Type())
		}
		v = field
		if index >= 0 {
			if v.Kind() != reflect.Slice {
				return v, fmt.Errorf("scenario: field %q is not a slice", name)
			}
			if index >= v.Len() {
				return v, fmt.Errorf("scenario: index %d out of range for %q (len %d)", index, name, v.Len())
			}
			v = v.Index(index)
		}
	}
	if !v.CanSet() {
		return v, fmt.Errorf("scenario: field %q is not settable", path)
	}
	return v, nil
}

// fieldNameMatch compares a Go field name against a path segment
// case-insensitively with dashes and underscores stripped, so paths can
// use the JSON spelling: "host-leaf" and "loss_prob" match HostLeaf and
// LossProb.
func fieldNameMatch(field, name string) bool {
	strip := func(s string) string {
		return strings.Map(func(r rune) rune {
			if r == '-' || r == '_' {
				return -1
			}
			return r
		}, s)
	}
	return strings.EqualFold(strip(field), strip(name))
}

var durationType = reflect.TypeOf(sim.Duration(0))

func assign(v reflect.Value, path, value string) error {
	// sim.Duration fields take Go duration syntax ("150us", "2ms").
	if v.Type() == durationType {
		d, err := time.ParseDuration(value)
		if err != nil {
			return fmt.Errorf("scenario: %s: %w", path, err)
		}
		v.SetInt(d.Nanoseconds())
		return nil
	}
	switch v.Kind() {
	case reflect.String:
		v.SetString(value)
	case reflect.Bool:
		b, err := strconv.ParseBool(value)
		if err != nil {
			return fmt.Errorf("scenario: %s: %w", path, err)
		}
		v.SetBool(b)
	case reflect.Int, reflect.Int64:
		n, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			// Accept float syntax for int fields ("2e6" buffer sizes).
			f, ferr := strconv.ParseFloat(value, 64)
			if ferr != nil {
				return fmt.Errorf("scenario: %s: %w", path, err)
			}
			n = int64(f)
		}
		v.SetInt(n)
	case reflect.Uint64:
		n, err := strconv.ParseUint(value, 10, 64)
		if err != nil {
			return fmt.Errorf("scenario: %s: %w", path, err)
		}
		v.SetUint(n)
	case reflect.Float64:
		f, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return fmt.Errorf("scenario: %s: %w", path, err)
		}
		v.SetFloat(f)
	default:
		return fmt.Errorf("scenario: field %q has unsupported type %s", path, v.Type())
	}
	return nil
}

// SweepAxis is one swept field: a path and its values.
type SweepAxis struct {
	Path   string
	Values []string
}

// ParseSweep parses a "path=v1,v2,v3" CLI argument.
func ParseSweep(arg string) (SweepAxis, error) {
	eq := strings.IndexByte(arg, '=')
	if eq <= 0 {
		return SweepAxis{}, fmt.Errorf("scenario: sweep %q is not path=v1,v2,...", arg)
	}
	ax := SweepAxis{Path: arg[:eq], Values: strings.Split(arg[eq+1:], ",")}
	if len(ax.Values) == 0 || ax.Values[0] == "" {
		return SweepAxis{}, fmt.Errorf("scenario: sweep %q has no values", arg)
	}
	return ax, nil
}

// Expand builds the cross-product of the axes over a base spec,
// returning one spec per grid point plus a label ("alpha=2 load=0.9").
func Expand(base Spec, axes []SweepAxis) (specs []Spec, labels []string, err error) {
	specs, labels = []Spec{base}, []string{base.Name}
	for _, ax := range axes {
		short := ax.Path
		if i := strings.LastIndexByte(short, '.'); i >= 0 {
			short = short[i+1:]
		}
		var nextSpecs []Spec
		var nextLabels []string
		for i, s := range specs {
			for _, val := range ax.Values {
				cp := s
				// Deep-copy the slices and pointer blocks reflection will
				// write through.
				cp.Workloads = append([]Workload(nil), s.Workloads...)
				cp.Metrics = append([]string(nil), s.Metrics...)
				cp.Faults = s.Faults.clone()
				if err := SetField(&cp, ax.Path, val); err != nil {
					return nil, nil, err
				}
				label := fmt.Sprintf("%s=%s", short, val)
				if len(axes) > 1 || len(specs) > 1 {
					if labels[i] != base.Name {
						label = labels[i] + " " + label
					}
				}
				nextSpecs = append(nextSpecs, cp)
				nextLabels = append(nextLabels, label)
			}
		}
		specs, labels = nextSpecs, nextLabels
	}
	return specs, labels, nil
}

// RunSweep executes the grid concurrently (experiments.RunGrid honors
// the -j worker cap with deterministic, input-ordered results) and
// returns the summary table: one row per point.
func RunSweep(base Spec, axes []SweepAxis) (*experiments.Table, error) {
	return RunSweepWithCancel(base, axes, nil)
}

// RunSweepWithCancel is RunSweep with a cooperative cancel check,
// threaded into every grid point's engine loop (see RunWithCancel):
// once canceled reports true, in-flight points bail at their next chunk
// and the whole sweep returns ErrCanceled. A nil canceled never
// cancels.
func RunSweepWithCancel(base Spec, axes []SweepAxis, canceled func() bool) (*experiments.Table, error) {
	return RunSweepWithProgress(base, axes, canceled, nil)
}

// RunSweepWithProgress is RunSweepWithCancel with a per-point progress
// hook: pointDone is invoked once after each grid point's simulation
// completes. Points run concurrently under experiments.RunGrid, so
// pointDone is called from worker goroutines and must be safe for
// concurrent use (the service layer counts atomically; the fraction is
// calls-so-far over the grid size the caller already knows). A nil
// pointDone is ignored.
func RunSweepWithProgress(base Spec, axes []SweepAxis, canceled func() bool, pointDone func()) (*experiments.Table, error) {
	// The base spec is expanded as-is: defaults are derived inside Run
	// per grid point, so a sweep over (say) topology.hosts recomputes the
	// dependent defaults (incast fanout, ECN threshold) for every point
	// instead of freezing them at the base topology's values.
	specs, labels, err := Expand(base, axes)
	if err != nil {
		return nil, err
	}
	for _, s := range specs {
		if err := s.WithDefaults().Validate(); err != nil {
			return nil, err
		}
	}
	results := experiments.RunGrid(specs, func(s Spec) *Result {
		r, err := RunWithCancel(s, canceled)
		if errors.Is(err, ErrCanceled) {
			return nil // the post-grid check below reports it
		}
		if err != nil {
			panic(err) // validated above; a failure here is a builder bug
		}
		if pointDone != nil {
			pointDone()
		}
		return r
	})
	if canceled != nil && canceled() {
		return nil, ErrCanceled
	}
	return Summarize(base.Name, SweepTitle(base, axes), labels, results, metricsOf(base)), nil
}

// SweepTitle is the summary-table title of a sweep over base: the base
// title annotated with the swept field paths. Exported so a fleet
// router assembling a sweep table from remotely-run grid points renders
// the exact title a single-process RunSweep would.
func SweepTitle(base Spec, axes []SweepAxis) string {
	if len(axes) == 0 {
		return base.Title
	}
	var ps []string
	for _, ax := range axes {
		ps = append(ps, ax.Path)
	}
	return fmt.Sprintf("%s (sweep %s)", base.Title, strings.Join(ps, " × "))
}

// SweepMetrics resolves the metric columns a sweep over base renders —
// the base spec's effective column list, applied to every grid point
// (Summarize uses one column set for the whole table even when a swept
// field would change a point's own default columns).
func SweepMetrics(base Spec) []string { return metricsOf(base) }

// AssembleSweepTable reconstructs the sweep summary table from each
// grid point's individually-computed one-row summary (ResultDoc.Summary
// of the point run). Points must arrive in Expand order. The output is
// byte-identical (once encoded) to the table RunSweep produces in one
// process, because every cell of a summary row depends only on the
// point's own deterministic Result: the assembler just re-labels the
// rows with the grid labels and re-projects the cells onto the base
// spec's column set by column name.
//
// It errors when a point's summary lacks a base column — possible only
// when the base omits explicit metrics AND a swept field changes the
// point's default column set incompatibly (e.g. sweeping a workload
// kind); set Spec.Metrics on the base to sweep such fields across a
// fleet.
func AssembleSweepTable(base Spec, axes []SweepAxis, points []TableDoc) (TableDoc, error) {
	_, labels, err := Expand(base, axes)
	if err != nil {
		return TableDoc{}, err
	}
	if len(points) != len(labels) {
		return TableDoc{}, fmt.Errorf("scenario: sweep over %q has %d grid points, got %d summaries",
			base.Name, len(labels), len(points))
	}
	metrics := metricsOf(base)
	out := TableDoc{
		ID:      base.Name,
		Title:   SweepTitle(base, axes),
		Columns: append([]string{"scenario"}, metrics...),
	}
	for i, p := range points {
		if len(p.Rows) != 1 {
			return TableDoc{}, fmt.Errorf("scenario: grid point %d (%s) summary has %d rows, want 1", i, labels[i], len(p.Rows))
		}
		row := make([]string, 0, 1+len(metrics))
		row = append(row, labels[i])
		for _, m := range metrics {
			j := slices.Index(p.Columns, m)
			if j < 0 || j >= len(p.Rows[0]) {
				return TableDoc{}, fmt.Errorf("scenario: grid point %d (%s) summary lacks column %q (set explicit metrics on the base spec to sweep across a fleet)",
					i, labels[i], m)
			}
			row = append(row, p.Rows[0][j])
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
