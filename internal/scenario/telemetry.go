package scenario

import (
	"fmt"
	"io"

	"occamy/internal/experiments"
	"occamy/internal/metrics"
	"occamy/internal/switchsim"
	"occamy/internal/trace"
)

// Deep telemetry
//
// The summary row answers "which policy wins"; the tables here answer
// "why": TailTable breaks each workload's completion times into
// quantiles (p25..p999) overall and per flow-size bucket, and
// PerSwitchTable breaks the buffer dynamics down switch by switch and
// port by port. Both render from the Result alone, so sweeps and
// file-based runs get them for free (occamy-scenario run -deep), and
// the occupancy time series behind them dumps to CSV/sparklines with
// -trace.

// SwitchTelemetry is one switch's recorded dynamics: egress counters
// per port plus the sampled occupancy series and its per-port
// peaks/means.
type SwitchTelemetry struct {
	Name string
	// Ports holds the per-port egress counters; they sum to the
	// corresponding PerSwitch stats fields exactly.
	Ports []switchsim.PortStats
	// PeakOcc/MeanOcc are the sampled whole-switch occupancy extremes in
	// bytes; PortPeak/PortMean the same per egress port.
	PeakOcc  int
	MeanOcc  float64
	PortPeak []int
	PortMean []float64
	// Series is the sampled whole-switch occupancy in bytes, one entry
	// per SampleEvery tick.
	Series []float64
}

// newTelemetry distills a recorder into the result's telemetry entry.
func newTelemetry(sw *switchsim.Switch, rec *switchsim.Recorder) SwitchTelemetry {
	t := SwitchTelemetry{
		Name:     sw.Name(),
		Ports:    make([]switchsim.PortStats, sw.NumPorts()),
		PeakOcc:  rec.Peak(),
		MeanOcc:  rec.Mean(),
		PortPeak: make([]int, sw.NumPorts()),
		PortMean: make([]float64, sw.NumPorts()),
		Series:   rec.Series,
	}
	for i := 0; i < sw.NumPorts(); i++ {
		t.Ports[i] = sw.PortStats(i)
		t.PortPeak[i] = rec.PortPeak(i)
		t.PortMean[i] = rec.PortMean(i)
	}
	return t
}

// HottestPort returns the switch's port with the highest occupancy
// peak (ties to the lowest id) and that peak in bytes; (-1, 0) on a
// portless switch.
func (t *SwitchTelemetry) HottestPort() (port, peak int) {
	port = -1
	for p, pk := range t.PortPeak {
		if pk > peak || port < 0 {
			port, peak = p, pk
		}
	}
	return port, peak
}

// HottestPort returns the (switch, port) with the highest sampled
// per-port occupancy peak across the run, with that peak in bytes;
// (-1, -1, 0) when nothing was recorded.
func (r *Result) HottestPort() (sw, port, peak int) {
	sw, port = -1, -1
	for i := range r.Telemetry {
		if p, pk := r.Telemetry[i].HottestPort(); pk > peak {
			sw, port, peak = i, p, pk
		}
	}
	return sw, port, peak
}

// occPct renders an occupancy byte count as percent of buffer capacity.
func (r *Result) occPct(bytes float64) string {
	if r.BufferBytes == 0 {
		return "0"
	}
	return experiments.F(100 * bytes / float64(r.BufferBytes))
}

// TailTable renders the quantile breakdown of every transport workload:
// one "all" row plus one row per flow-size bucket, with p25/p50/p90/
// p99/p999 completion times and slowdowns. Raw-injection workloads have
// no completions and are skipped.
func (r *Result) TailTable() *experiments.Table {
	t := &experiments.Table{
		ID:      r.Spec.Name + "-tails",
		Title:   "completion-time tails by workload and flow size",
		Columns: []string{"workload", "bucket", "n"},
	}
	for _, q := range metrics.TailQuantiles {
		t.Columns = append(t.Columns, fmt.Sprintf("fct_p%s_ms", qLabel(q)))
	}
	for _, q := range metrics.TailQuantiles {
		t.Columns = append(t.Columns, fmt.Sprintf("slow_p%s", qLabel(q)))
	}
	for i := range r.Workloads {
		ws := &r.Workloads[i]
		if ws.Kind == WLCBR || ws.Kind == WLBurst {
			continue
		}
		for _, row := range ws.Col.TailRows(metrics.DefaultSizeBuckets, metrics.TailQuantiles) {
			cells := []string{ws.Label, row.Label, fmt.Sprint(row.Count)}
			for _, fct := range row.FCT {
				if row.Count == 0 {
					cells = append(cells, "-")
				} else {
					cells = append(cells, experiments.Ms(fct))
				}
			}
			for _, s := range row.Slowdown {
				if row.Count == 0 || s == 0 {
					cells = append(cells, "-")
				} else {
					cells = append(cells, experiments.F(s))
				}
			}
			t.AddRow(cells...)
		}
	}
	return t
}

// qLabel renders a quantile as a percentile label: 0.25 → "25",
// 0.999 → "999".
func qLabel(q float64) string {
	switch q {
	case 0.999:
		return "999"
	default:
		return fmt.Sprintf("%.0f", q*100)
	}
}

// PerSwitchTable renders the buffer dynamics switch by switch: packet
// counters, losses, and the sampled occupancy peaks/means, with the
// hottest egress port of each switch called out.
func (r *Result) PerSwitchTable() *experiments.Table {
	t := &experiments.Table{
		ID:    r.Spec.Name + "-switches",
		Title: "per-switch buffer dynamics",
		Columns: []string{"switch", "rx_pkts", "tx_pkts", "drops", "expelled", "ecn",
			"peak_occ_pct", "mean_occ_pct", "hot_port", "hot_port_peak_pct"},
	}
	for i, st := range r.PerSwitch {
		tel := r.Telemetry[i]
		hot, hotPeak := tel.HottestPort()
		t.AddRow(tel.Name,
			fmt.Sprint(st.RxPackets), fmt.Sprint(st.TxPackets),
			fmt.Sprint(st.Drops()), fmt.Sprint(st.DropsExpelled), fmt.Sprint(st.ECNMarked),
			r.occPct(float64(tel.PeakOcc)), r.occPct(tel.MeanOcc),
			fmt.Sprint(hot), r.occPct(float64(hotPeak)))
	}
	return t
}

// TraceSeries returns the aligned occupancy time series of every
// switch: the recorded timestamps in seconds plus one named series per
// switch.
func (r *Result) TraceSeries() (times []float64, series []trace.Series) {
	if len(r.Telemetry) == 0 {
		return nil, nil
	}
	times = make([]float64, len(r.SampleTimes))
	for i, t := range r.SampleTimes {
		times[i] = t.Seconds()
	}
	for _, tel := range r.Telemetry {
		series = append(series, trace.Series{Name: tel.Name, Values: tel.Series})
	}
	return times, series
}

// WriteTraceCSV dumps the per-switch occupancy series as CSV.
func (r *Result) WriteTraceCSV(w io.Writer) error {
	times, series := r.TraceSeries()
	if len(series) == 0 {
		return fmt.Errorf("scenario %q: no occupancy trace recorded", r.Spec.Name)
	}
	return trace.WriteCSV(w, times, series)
}

// TracePlot renders the per-switch occupancy series as labeled
// sparklines on a shared scale (width cells; 0 = full resolution).
func (r *Result) TracePlot(width int) string {
	_, series := r.TraceSeries()
	return trace.Plot(series, width)
}
