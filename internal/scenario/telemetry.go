package scenario

import (
	"fmt"
	"io"
	"sort"

	"occamy/internal/experiments"
	"occamy/internal/metrics"
	"occamy/internal/switchsim"
	"occamy/internal/trace"
)

// Deep telemetry
//
// The summary row answers "which policy wins"; the tables here answer
// "why": TailTable breaks each workload's completion times into
// quantiles (p25..p999) overall and per flow-size bucket, PerSwitchTable
// breaks the buffer dynamics down switch by switch and port by port, and
// QueueTable goes one level further, to the (port, class) queues with
// the admission policy's threshold sampled alongside — the view behind
// the paper's Fig 3/11-style occupancy-vs-threshold narratives. All
// render from the Result alone, so sweeps and file-based runs get them
// for free (occamy-scenario run -deep), and the time series behind them
// dump to CSV/sparklines with -trace.

// QueueTelemetry is one (port, class) queue's recorded dynamics.
type QueueTelemetry struct {
	// Port and Class locate the queue on its switch.
	Port, Class int
	// Stats holds the queue's egress counters: transmissions out of it
	// and losses/marks of packets destined to it. Summed over a port's
	// classes they reproduce that port's PortStats exactly (drops no
	// longer attribute only to ports).
	Stats switchsim.QueueStats
	// Peak/Mean are the sampled queue-length extremes in bytes.
	Peak int
	Mean float64
	// MinHeadroom is the smallest sampled gap between the policy
	// threshold (capacity-clamped) and the queue length, in bytes —
	// negative while the queue sat over its threshold (the
	// over-allocation a preemptive policy expels).
	MinHeadroom int
	// Series is the sampled queue length in bytes; Threshold the
	// admission policy's instantaneous limit for this queue at the same
	// instants, clamped to the buffer capacity.
	Series    []float64
	Threshold []float64
	// ECNMarks is the queue's cumulative ECN-mark counter at the same
	// instants — the marking dynamics driving DCTCP's feedback loop.
	ECNMarks []float64
}

// Label renders the queue's position as "p<port>q<class>".
func (q *QueueTelemetry) Label() string { return fmt.Sprintf("p%dq%d", q.Port, q.Class) }

// SwitchTelemetry is one switch's recorded dynamics: egress counters
// per port plus the sampled occupancy series and its per-port and
// per-queue breakdowns.
type SwitchTelemetry struct {
	Name string
	// Classes is the number of traffic-class queues per port.
	Classes int
	// Ports holds the per-port egress counters; they sum to the
	// corresponding PerSwitch stats fields exactly.
	Ports []switchsim.PortStats
	// PeakOcc/MeanOcc are the sampled whole-switch occupancy extremes in
	// bytes; PortPeak/PortMean the same per egress port.
	PeakOcc  int
	MeanOcc  float64
	PortPeak []int
	PortMean []float64
	// Series is the sampled whole-switch occupancy in bytes, one entry
	// per SampleEvery tick; PortSeries the per-port equivalent.
	Series     []float64
	PortSeries [][]float64
	// Queues holds the per-(port,class) series with thresholds, indexed
	// port*Classes+class.
	Queues []QueueTelemetry
}

// newTelemetry distills a recorder into the result's telemetry entry.
func newTelemetry(sw *switchsim.Switch, rec *switchsim.Recorder) SwitchTelemetry {
	t := SwitchTelemetry{
		Name:       sw.Name(),
		Classes:    sw.ClassesPerPort(),
		Ports:      make([]switchsim.PortStats, sw.NumPorts()),
		PeakOcc:    rec.Peak(),
		MeanOcc:    rec.Mean(),
		PortPeak:   make([]int, sw.NumPorts()),
		PortMean:   make([]float64, sw.NumPorts()),
		Series:     rec.Series,
		PortSeries: rec.PortSeries,
		Queues:     make([]QueueTelemetry, sw.NumQueues()),
	}
	for i := 0; i < sw.NumPorts(); i++ {
		t.Ports[i] = sw.PortStats(i)
		t.PortPeak[i] = rec.PortPeak(i)
		t.PortMean[i] = rec.PortMean(i)
	}
	for q := 0; q < sw.NumQueues(); q++ {
		t.Queues[q] = QueueTelemetry{
			Port:        q / t.Classes,
			Class:       q % t.Classes,
			Stats:       sw.QueueStats(q),
			Peak:        rec.QueuePeak(q),
			Mean:        rec.QueueMean(q),
			MinHeadroom: rec.QueueMinHeadroom(q),
			Series:      rec.QueueSeries[q],
			Threshold:   rec.ThresholdSeries[q],
			ECNMarks:    rec.ECNSeries[q],
		}
	}
	return t
}

// HottestPort returns the switch's port with the highest occupancy
// peak (ties to the lowest id) and that peak in bytes; (-1, 0) on a
// portless switch.
func (t *SwitchTelemetry) HottestPort() (port, peak int) {
	port = -1
	for p, pk := range t.PortPeak {
		if pk > peak || port < 0 {
			port, peak = p, pk
		}
	}
	return port, peak
}

// HottestQueue returns the index into Queues of the queue with the
// highest length peak (ties to the lowest index) and that peak in
// bytes; (-1, 0) when the switch has no queues.
func (t *SwitchTelemetry) HottestQueue() (idx, peak int) {
	idx = -1
	for q := range t.Queues {
		if t.Queues[q].Peak > peak || idx < 0 {
			idx, peak = q, t.Queues[q].Peak
		}
	}
	return idx, peak
}

// HottestPort returns the (switch, port) with the highest sampled
// per-port occupancy peak across the run, with that peak in bytes;
// (-1, -1, 0) when nothing was recorded.
func (r *Result) HottestPort() (sw, port, peak int) {
	sw, port = -1, -1
	for i := range r.Telemetry {
		if p, pk := r.Telemetry[i].HottestPort(); pk > peak {
			sw, port, peak = i, p, pk
		}
	}
	return sw, port, peak
}

// HottestQueue returns the switch index and queue (within that switch's
// Queues) with the highest sampled length peak across the run, with the
// peak in bytes; (-1, -1, 0) when nothing was recorded.
func (r *Result) HottestQueue() (sw, queue, peak int) {
	sw, queue = -1, -1
	for i := range r.Telemetry {
		if q, pk := r.Telemetry[i].HottestQueue(); pk > peak {
			sw, queue, peak = i, q, pk
		}
	}
	return sw, queue, peak
}

// occPct renders an occupancy byte count as percent of buffer capacity,
// or "-" when the run has no buffer to be a percentage of.
func (r *Result) occPct(bytes float64) string {
	if r.BufferBytes == 0 {
		return "-"
	}
	return experiments.F(100 * bytes / float64(r.BufferBytes))
}

// signedOccPct is occPct for quantities that may be negative (threshold
// headroom): experiments.F formats magnitudes, so the sign is prefixed.
func (r *Result) signedOccPct(bytes float64) string {
	if r.BufferBytes == 0 {
		return "-"
	}
	if bytes < 0 {
		return "-" + experiments.F(100*-bytes/float64(r.BufferBytes))
	}
	return experiments.F(100 * bytes / float64(r.BufferBytes))
}

// TailTable renders the quantile breakdown of every transport workload:
// one "all" row plus one row per flow-size bucket, with p25/p50/p90/
// p99/p999 completion times and slowdowns. Raw-injection workloads have
// no completions and are skipped.
func (r *Result) TailTable() *experiments.Table {
	t := &experiments.Table{
		ID:      r.Spec.Name + "-tails",
		Title:   "completion-time tails by workload and flow size",
		Columns: []string{"workload", "bucket", "n"},
	}
	for _, q := range metrics.TailQuantiles {
		t.Columns = append(t.Columns, fmt.Sprintf("fct_p%s_ms", qLabel(q)))
	}
	for _, q := range metrics.TailQuantiles {
		t.Columns = append(t.Columns, fmt.Sprintf("slow_p%s", qLabel(q)))
	}
	for i := range r.Workloads {
		ws := &r.Workloads[i]
		if ws.Kind == WLCBR || ws.Kind == WLBurst {
			continue
		}
		for _, row := range ws.Col.TailRows(metrics.DefaultSizeBuckets, metrics.TailQuantiles) {
			cells := []string{ws.Label, row.Label, fmt.Sprint(row.Count)}
			for _, fct := range row.FCT {
				if row.Count == 0 {
					cells = append(cells, "-")
				} else {
					cells = append(cells, experiments.Ms(fct))
				}
			}
			for _, s := range row.Slowdown {
				if row.Count == 0 || s == 0 {
					cells = append(cells, "-")
				} else {
					cells = append(cells, experiments.F(s))
				}
			}
			t.AddRow(cells...)
		}
	}
	return t
}

// qLabel renders a quantile as a percentile label: 0.25 → "25",
// 0.999 → "999".
func qLabel(q float64) string {
	switch q {
	case 0.999:
		return "999"
	default:
		return fmt.Sprintf("%.0f", q*100)
	}
}

// PerSwitchTable renders the buffer dynamics switch by switch: packet
// counters, losses, and the sampled occupancy peaks/means, with the
// hottest egress port of each switch called out.
func (r *Result) PerSwitchTable() *experiments.Table {
	t := &experiments.Table{
		ID:    r.Spec.Name + "-switches",
		Title: "per-switch buffer dynamics",
		Columns: []string{"switch", "rx_pkts", "tx_pkts", "drops", "expelled", "ecn",
			"peak_occ_pct", "mean_occ_pct", "hot_port", "hot_port_peak_pct"},
	}
	for i, st := range r.PerSwitch {
		tel := r.Telemetry[i]
		hot, hotPeak := tel.HottestPort()
		hotCell, hotPeakCell := "-", "-"
		if hot >= 0 {
			hotCell, hotPeakCell = fmt.Sprint(hot), r.occPct(float64(hotPeak))
		}
		t.AddRow(tel.Name,
			fmt.Sprint(st.RxPackets), fmt.Sprint(st.TxPackets),
			fmt.Sprint(st.Drops()), fmt.Sprint(st.DropsExpelled), fmt.Sprint(st.ECNMarked),
			r.occPct(float64(tel.PeakOcc)), r.occPct(tel.MeanOcc),
			hotCell, hotPeakCell)
	}
	return t
}

// QueueTable renders the per-queue buffer dynamics of every switch: the
// sampled length peak/mean, the minimum threshold headroom (how close
// the queue came to its admission limit; negative = over it), and the
// queue's egress/drop counters, for every queue that buffered or
// dropped anything during the run.
func (r *Result) QueueTable() *experiments.Table {
	t := &experiments.Table{
		ID:    r.Spec.Name + "-queues",
		Title: "per-queue buffer dynamics (queues with traffic)",
		Columns: []string{"switch", "queue", "class",
			"peak_occ_pct", "mean_occ_pct", "min_thr_headroom_pct",
			"tx_pkts", "drops", "expelled", "ecn"},
	}
	for i := range r.Telemetry {
		tel := &r.Telemetry[i]
		for q := range tel.Queues {
			qt := &tel.Queues[q]
			if qt.Peak == 0 && qt.Stats == (switchsim.QueueStats{}) {
				continue
			}
			t.AddRow(tel.Name, qt.Label(), fmt.Sprint(qt.Class),
				r.occPct(float64(qt.Peak)), r.occPct(qt.Mean),
				r.signedOccPct(float64(qt.MinHeadroom)),
				fmt.Sprint(qt.Stats.TxPackets), fmt.Sprint(qt.Stats.Drops()),
				fmt.Sprint(qt.Stats.DropsExpelled), fmt.Sprint(qt.Stats.ECNMarked))
		}
	}
	return t
}

// TraceSeries returns the aligned occupancy time series of every
// switch: the recorded timestamps in seconds plus one named series per
// switch.
func (r *Result) TraceSeries() (times []float64, series []trace.Series) {
	if len(r.Telemetry) == 0 {
		return nil, nil
	}
	times = make([]float64, len(r.SampleTimes))
	for i, t := range r.SampleTimes {
		times[i] = t.Seconds()
	}
	for _, tel := range r.Telemetry {
		series = append(series, trace.Series{Name: tel.Name, Values: tel.Series})
	}
	return times, series
}

// QueueTraceSeries returns the aligned per-queue series of every
// switch: for each (port, class) queue, its occupancy series
// ("<switch>:p<P>q<C>") immediately followed by its policy-threshold
// series ("<switch>:p<P>q<C>:thr") — the Fig 3/11-style overlay pairs —
// and its cumulative ECN-mark series ("<switch>:p<P>q<C>:ecn").
func (r *Result) QueueTraceSeries() (times []float64, series []trace.Series) {
	if len(r.Telemetry) == 0 {
		return nil, nil
	}
	times = make([]float64, len(r.SampleTimes))
	for i, t := range r.SampleTimes {
		times[i] = t.Seconds()
	}
	for _, tel := range r.Telemetry {
		for q := range tel.Queues {
			qt := &tel.Queues[q]
			base := tel.Name + ":" + qt.Label()
			series = append(series,
				trace.Series{Name: base, Values: qt.Series},
				trace.Series{Name: base + ":thr", Values: qt.Threshold},
				trace.Series{Name: base + ":ecn", Values: qt.ECNMarks})
		}
	}
	return times, series
}

// WriteTraceCSV dumps the recorded time series as CSV: one whole-switch
// occupancy column per switch, then per-queue occupancy, threshold, and
// cumulative ECN-mark columns for every queue of every switch.
func (r *Result) WriteTraceCSV(w io.Writer) error {
	return r.WriteTraceCSVStride(w, 1)
}

// WriteTraceCSVStride is WriteTraceCSV keeping only every stride-th
// sample (stride <= 1 keeps all) — the bound that keeps paper-scale
// trace files manageable: a run records ~1000 aligned samples per
// switch and two columns per (port, class) queue, so a 256-port sweep
// at full resolution is tens of MB of CSV.
func (r *Result) WriteTraceCSVStride(w io.Writer, stride int) error {
	times, series := r.TraceSeries()
	if len(series) == 0 {
		return fmt.Errorf("scenario %q: no occupancy trace recorded", r.Spec.Name)
	}
	_, qseries := r.QueueTraceSeries()
	times, series = strideSeries(times, append(series, qseries...), stride)
	return trace.WriteCSV(w, times, series)
}

// strideSeries keeps every stride-th element of the aligned times and
// series (stride <= 1 returns the input unchanged). Unlike
// trace.Downsample it subsamples rather than bucket-averages, so the
// surviving rows are real recorded samples with their exact timestamps.
func strideSeries(times []float64, series []trace.Series, stride int) ([]float64, []trace.Series) {
	if stride <= 1 {
		return times, series
	}
	keep := func(v []float64) []float64 {
		out := make([]float64, 0, (len(v)+stride-1)/stride)
		for i := 0; i < len(v); i += stride {
			out = append(out, v[i])
		}
		return out
	}
	strided := make([]trace.Series, len(series))
	for i, s := range series {
		strided[i] = trace.Series{Name: s.Name, Values: keep(s.Values)}
	}
	return keep(times), strided
}

// TracePlot renders the per-switch occupancy series as labeled
// sparklines on a shared scale (width cells; 0 = full resolution). Like
// WriteTraceCSV it errors when the run recorded no trace.
func (r *Result) TracePlot(width int) (string, error) {
	_, series := r.TraceSeries()
	if len(series) == 0 {
		return "", fmt.Errorf("scenario %q: no occupancy trace recorded", r.Spec.Name)
	}
	return trace.Plot(series, width), nil
}

// QueueTracePlot renders occupancy-vs-threshold overlays for the top
// (by length peak) queues across all switches: each queue contributes
// its occupancy sparkline and its threshold sparkline on a shared
// scale. top bounds the queue count (0 = all queues with traffic).
func (r *Result) QueueTracePlot(width, top int) (string, error) {
	_, all := r.QueueTraceSeries()
	if len(all) == 0 {
		return "", fmt.Errorf("scenario %q: no occupancy trace recorded", r.Spec.Name)
	}
	type cand struct {
		sw, q, peak int
	}
	var cands []cand
	for i := range r.Telemetry {
		for q := range r.Telemetry[i].Queues {
			if pk := r.Telemetry[i].Queues[q].Peak; pk > 0 {
				cands = append(cands, cand{i, q, pk})
			}
		}
	}
	// Descending peak, ties keeping switch/queue order.
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].peak > cands[j].peak })
	if top > 0 && len(cands) > top {
		cands = cands[:top]
	}
	var series []trace.Series
	for _, c := range cands {
		tel := &r.Telemetry[c.sw]
		qt := &tel.Queues[c.q]
		base := tel.Name + ":" + qt.Label()
		series = append(series,
			trace.Series{Name: base, Values: qt.Series},
			trace.Series{Name: base + ":thr", Values: qt.Threshold})
	}
	if len(series) == 0 {
		return "", fmt.Errorf("scenario %q: no queue buffered any traffic", r.Spec.Name)
	}
	return trace.Plot(series, width), nil
}
