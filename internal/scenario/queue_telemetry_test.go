package scenario

import (
	"strings"
	"testing"
)

// The occupancy-decomposition property, at full depth: at every sample
// instant, the per-queue series of a switch must sum to its per-port
// series, the per-port series to the whole-switch series — and the
// threshold series must be aligned sample-for-sample. Checked across
// every catalog entry, single-switch and fabric, every scheduler and
// class count.
func TestQueueSeriesSumToPortAndSwitchSeries(t *testing.T) {
	for _, name := range exportableNames(t) {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, _ := Get(name)
			res, err := Run(sc.SpecAt(ScaleQuick))
			if err != nil {
				t.Fatal(err)
			}
			for i := range res.Telemetry {
				tel := &res.Telemetry[i]
				nSamples := len(tel.Series)
				if nSamples == 0 {
					t.Fatalf("switch %s recorded no samples", tel.Name)
				}
				if got := len(tel.PortSeries); got != len(tel.Ports) {
					t.Fatalf("switch %s: %d port series for %d ports", tel.Name, got, len(tel.Ports))
				}
				if got := len(tel.Queues); got != len(tel.Ports)*tel.Classes {
					t.Fatalf("switch %s: %d queue entries for %d ports x %d classes",
						tel.Name, got, len(tel.Ports), tel.Classes)
				}
				for p, ps := range tel.PortSeries {
					if len(ps) != nSamples {
						t.Fatalf("switch %s port %d: %d samples, switch has %d", tel.Name, p, len(ps), nSamples)
					}
				}
				for q := range tel.Queues {
					qt := &tel.Queues[q]
					if len(qt.Series) != nSamples || len(qt.Threshold) != nSamples {
						t.Fatalf("switch %s queue %s: series %d / threshold %d samples, switch has %d",
							tel.Name, qt.Label(), len(qt.Series), len(qt.Threshold), nSamples)
					}
				}
				for s := 0; s < nSamples; s++ {
					swSum := 0.0
					for p := range tel.PortSeries {
						portSum := 0.0
						for c := 0; c < tel.Classes; c++ {
							portSum += tel.Queues[p*tel.Classes+c].Series[s]
						}
						if portSum != tel.PortSeries[p][s] {
							t.Fatalf("switch %s port %d sample %d: queue sum %g != port series %g",
								tel.Name, p, s, portSum, tel.PortSeries[p][s])
						}
						swSum += tel.PortSeries[p][s]
					}
					if swSum != tel.Series[s] {
						t.Fatalf("switch %s sample %d: port sum %g != switch series %g",
							tel.Name, s, swSum, tel.Series[s])
					}
				}
				// Peaks/means/min-headroom must match their own series.
				for q := range tel.Queues {
					qt := &tel.Queues[q]
					peak, sum, minHead := 0.0, 0.0, qt.Threshold[0]-qt.Series[0]
					for s := range qt.Series {
						if qt.Series[s] > peak {
							peak = qt.Series[s]
						}
						sum += qt.Series[s]
						if h := qt.Threshold[s] - qt.Series[s]; h < minHead {
							minHead = h
						}
					}
					if int(peak) != qt.Peak {
						t.Errorf("switch %s queue %s: Peak %d, series max %g", tel.Name, qt.Label(), qt.Peak, peak)
					}
					if mean := sum / float64(len(qt.Series)); mean != qt.Mean {
						t.Errorf("switch %s queue %s: Mean %g, series mean %g", tel.Name, qt.Label(), qt.Mean, mean)
					}
					if int(minHead) != qt.MinHeadroom {
						t.Errorf("switch %s queue %s: MinHeadroom %d, series min %g",
							tel.Name, qt.Label(), qt.MinHeadroom, minHead)
					}
				}
			}
		})
	}
}

// Multi-class scenarios must actually exercise multiple classes: at
// least two distinct classes of some port see traffic, so the per-queue
// telemetry separates backlogs the per-port view blurs together.
func TestMultiClassScenariosFillMultipleClasses(t *testing.T) {
	for _, name := range []string{"priority-inversion-8", "mixed-class-incast", "multiclass-fabric-drr"} {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, ok := Get(name)
			if !ok {
				t.Fatalf("scenario %q not registered", name)
			}
			if classes := sc.Spec.Topology.Classes; classes < 2 {
				t.Fatalf("spec has %d classes, want >= 2", classes)
			}
			res, err := Run(sc.SpecAt(ScaleQuick))
			if err != nil {
				t.Fatal(err)
			}
			active := map[int]bool{}
			for i := range res.Telemetry {
				for q := range res.Telemetry[i].Queues {
					if qt := &res.Telemetry[i].Queues[q]; qt.Peak > 0 {
						active[qt.Class] = true
					}
				}
			}
			if len(active) < 2 {
				t.Errorf("only classes %v buffered traffic; multi-class telemetry unexercised", active)
			}
			if tab := res.QueueTable(); len(tab.Rows) < 2 {
				t.Errorf("QueueTable has %d rows, want >= 2", len(tab.Rows))
			}
		})
	}
}

// Golden threshold-overlay traces: the per-queue occupancy-vs-threshold
// view for one Occamy scenario and the same workload under plain DT.
// Byte-identity pins the sampling instants, the threshold clamp, the
// headroom math, and the overlay rendering; regenerate after an
// intentional change with GOLDEN_UPDATE=1 (output is deterministic, so
// regeneration is byte-identical at any test or sweep parallelism).
func goldenQueueTrace(t *testing.T, spec Spec) string {
	t.Helper()
	render := func() string {
		res, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		plot, err := res.QueueTracePlot(72, 8)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		res.QueueTable().Fprint(&b)
		b.WriteString("\nhottest queues vs policy threshold:\n")
		b.WriteString(plot)
		return b.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("queue trace differs across identical runs:\n--- first\n%s--- second\n%s", a, b)
	}
	return a
}

func TestGoldenQueueTraceOccamy(t *testing.T) {
	sc, _ := Get("mixed-class-incast")
	checkGolden(t, "mixed_class_incast_queue_trace_golden.txt", goldenQueueTrace(t, sc.SpecAt(ScaleQuick)))
}

func TestGoldenQueueTraceDT(t *testing.T) {
	sc, _ := Get("mixed-class-incast")
	spec := sc.SpecAt(ScaleQuick)
	spec.Policy = Policy{Kind: "dt", Alpha: 1}
	checkGolden(t, "mixed_class_incast_dt_queue_trace_golden.txt", goldenQueueTrace(t, spec))
}
