package scenario

import (
	"fmt"

	"occamy/internal/bm"
	"occamy/internal/core"
)

// Policy is the declarative buffer-management selection of a spec. It is
// data, not code, so it can be listed, serialized, and swept over.
type Policy struct {
	// Kind selects the scheme: "dt", "abm", "edt", "tdt", "cs", "st",
	// "occamy" (default), "occamy-ld", "pushout", "pot", "qpo".
	Kind string `json:"kind"`
	// Alpha is the DT-family control parameter (default per kind).
	Alpha float64 `json:"alpha,omitempty"`
	// AlphaHP/AlphaLP override α for priority class 0 / classes ≥1 when
	// non-zero (the buffer-choking configurations).
	AlphaHP float64 `json:"alpha_hp,omitempty"`
	AlphaLP float64 `json:"alpha_lp,omitempty"`
	// Limit is the static threshold in bytes ("st" only).
	Limit int `json:"limit,omitempty"`
	// Fraction is the pushout-eligibility fraction ("pot" only).
	Fraction float64 `json:"fraction,omitempty"`
}

// Label names the policy in tables, e.g. "occamy(a=8)".
func (p Policy) Label() string {
	kind := p.Kind
	if kind == "" {
		kind = "occamy"
	}
	switch kind {
	case "cs", "pushout", "qpo":
		return kind
	case "st":
		return fmt.Sprintf("st(%dKB)", p.Limit/1000)
	case "pot":
		f := p.Fraction
		if f == 0 {
			f = 0.5
		}
		return fmt.Sprintf("pot(f=%g)", f)
	}
	return fmt.Sprintf("%s(a=%g)", kind, p.alpha())
}

func (p Policy) alpha() float64 {
	if p.Alpha != 0 {
		return p.Alpha
	}
	switch p.Kind {
	case "", "occamy", "occamy-ld":
		return core.DefaultAlpha
	case "abm":
		return 2
	default:
		return 1
	}
}

// byPrio maps the HP/LP overrides onto the per-priority-class α map the
// DT-family policies consume: class 0 is high priority, every other
// class low. Only non-zero overrides enter the map — a present-but-zero
// entry would read as "threshold 0" and starve that class — so setting
// just AlphaHP leaves the low-priority classes on the base α and vice
// versa.
func (p Policy) byPrio(classes int) map[int]float64 {
	if p.AlphaHP == 0 && p.AlphaLP == 0 {
		return nil
	}
	if classes < 2 {
		classes = 2
	}
	m := map[int]float64{}
	if p.AlphaHP != 0 {
		m[0] = p.AlphaHP
	}
	if p.AlphaLP != 0 {
		for c := 1; c < classes; c++ {
			m[c] = p.AlphaLP
		}
	}
	return m
}

// Build constructs a fresh policy instance (and, for Occamy kinds, the
// expulsion-engine config) for a switch with the given number of
// traffic classes per port. EDT's clock and TDT's observer are wired by
// the builder once an engine exists.
func (p Policy) Build(classes int) (bm.Policy, *core.Config, error) {
	kind := p.Kind
	if kind == "" {
		kind = "occamy"
	}
	byPrio := p.byPrio(classes)
	switch kind {
	case "occamy", "occamy-ld":
		cfg := core.Config{Alpha: p.alpha(), AlphaByPrio: byPrio}
		if kind == "occamy-ld" {
			cfg.Victim = core.LongestQueue
		}
		return core.New(cfg), &cfg, nil
	case "dt":
		dt := bm.NewDT(p.alpha())
		dt.AlphaByPrio = byPrio
		return dt, nil, nil
	case "abm":
		abm := bm.NewABM(p.alpha())
		if byPrio != nil {
			abm.AlphaFor = byPrio
		}
		return abm, nil, nil
	case "edt":
		return bm.NewEDT(p.alpha(), nil), nil, nil
	case "tdt":
		return bm.NewTDT(p.alpha()), nil, nil
	case "cs":
		return bm.CompleteSharing{}, nil, nil
	case "st":
		limit := p.Limit
		if limit == 0 {
			limit = 100_000
		}
		return bm.StaticThreshold{Limit: limit}, nil, nil
	case "pushout":
		return core.NewPushout(), nil, nil
	case "pot":
		return core.NewPOT(p.Fraction), nil, nil
	case "qpo":
		return core.NewQPO(), nil, nil
	}
	return nil, nil, fmt.Errorf("scenario: unknown policy kind %q", p.Kind)
}
