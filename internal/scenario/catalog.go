package scenario

import (
	"occamy/internal/experiments"
	"occamy/internal/linkfault"
	"occamy/internal/sim"
)

// The shipped catalog.
//
// The first six entries port the repository's hand-wired programs — the
// four examples/ and the Fig 6/7 harnesses — onto the declarative layer;
// the rest are at-scale workloads the paper's evaluation does not cover.
// Sizes are written out as concrete numbers (specs are data): a
// single-switch buffer defaults to 5.12KB/port/Gbps, so 8×10G ≈ 410KB
// and 32×10G ≈ 1.6MB.

func init() {
	// --- Ported: examples/quickstart ---------------------------------
	// One queue pinned at its DT threshold by 2× line-rate traffic, then
	// a 400KB burst at 100G into a second queue: the expulsion engine
	// reclaims the over-allocation (watch the expelled column).
	Register(Scenario{Spec: Spec{
		Name:  "quickstart",
		Title: "Occamy expulsion demo: pinned queue vs 400KB burst (1MB buffer)",
		Topology: Topology{
			Kind: SingleSwitch, Hosts: 8, LinkBps: 10e9, BufferBytes: 1 << 20,
		},
		Policy: Policy{Kind: "occamy", Alpha: 8},
		Workloads: []Workload{
			{Kind: WLCBR, Label: "longlived", DstPort: 0, RateBps: 20e9},
			{Kind: WLBurst, Label: "burst", DstPort: 1, RateBps: 100e9,
				Bytes: 400_000, At: 900 * sim.Microsecond},
		},
		Duration: 1400 * sim.Microsecond,
	}})

	// --- Ported: examples/burstabsorb (one grid point) ---------------
	// The Fig 12 scenario: sweep policy.kind / policy.alpha /
	// workloads[1].bytes from the CLI to reproduce the example's table.
	Register(Scenario{Spec: Spec{
		Name:  "burst-absorb",
		Title: "burst absorption: steady 2x queue + 100G burst (1.2MB buffer)",
		Topology: Topology{
			Kind: SingleSwitch, Hosts: 8, LinkBps: 10e9, BufferBytes: 1_200_000,
		},
		Policy: Policy{Kind: "occamy", Alpha: 2},
		Workloads: []Workload{
			{Kind: WLCBR, Label: "longlived", DstPort: 0, RateBps: 20e9},
			{Kind: WLBurst, Label: "burst", DstPort: 1, RateBps: 100e9,
				Bytes: 500_000, At: 1250 * sim.Microsecond},
		},
		Duration: 1650 * sim.Microsecond,
	}})

	// --- Ported: examples/leafspine ----------------------------------
	Register(Scenario{Spec: Spec{
		Name:  "leafspine-demo",
		Title: "leaf-spine 2x2x4: web-search 90% + random-client incast",
		Topology: Topology{
			Kind: LeafSpine, Spines: 2, Leaves: 2, HostsPerLeaf: 4,
			LinkBps: 10e9, BufferBytes: 300 << 10, ECNThresholdBytes: 60 << 10,
		},
		Policy: Policy{Kind: "occamy", Alpha: 8},
		Workloads: []Workload{
			{Kind: WLBackground, Load: 0.9},
			{Kind: WLIncast, Client: -1, Fanout: 6, QuerySize: 245_760,
				Interval: 2 * sim.Millisecond, Queries: 12},
		},
		Warmup:   sim.Millisecond,
		Duration: 24 * sim.Millisecond,
	}})

	// --- Ported: examples/bufferchoking ------------------------------
	// Strict priority, 14 persistent low-priority hostage flows, then a
	// high-priority incast. Sweep policy.kind=dt,occamy to reproduce the
	// example's comparison.
	Register(Scenario{Spec: Spec{
		Name:  "buffer-choking",
		Title: "HP incast vs LP hostage buffer (SP scheduling, 512KB)",
		Topology: Topology{
			Kind: SingleSwitch, Hosts: 8, LinkBps: 10e9,
			BufferBytes: 512 << 10, ECNThresholdBytes: 200 << 10,
			Classes: 2, Scheduler: "sp",
		},
		Policy: Policy{Kind: "occamy", Alpha: 8, AlphaHP: 8, AlphaLP: 1},
		Workloads: []Workload{
			{Kind: WLLongLived, Count: 14, Priority: 1, Client: 0, DupThresh: 3},
			{Kind: WLIncast, Client: 0, Servers: 5, Fanout: 20,
				QuerySize: 800_000, Priority: 0, DupThresh: 3, Queries: 4},
		},
		Warmup:   10 * sim.Millisecond,
		Duration: 40 * sim.Millisecond,
	}})

	// --- Ported: Fig 6 harness (bespoke multi-run table) -------------
	Register(Scenario{
		Spec: Spec{
			Name:  "fig6-anomalies",
			Title: "DT anomalies: incast vs competing traffic (figure harness)",
		},
		Tables: func(scale Scale) []*experiments.Table {
			if scale == ScaleQuick {
				return []*experiments.Table{experiments.Fig6Anomalies(3, []float64{1.5})}
			}
			return []*experiments.Table{experiments.Fig6Anomalies(10, nil)}
		},
	})

	// --- Ported: Fig 7 harness (bespoke multi-run table) -------------
	Register(Scenario{
		Spec: Spec{
			Name:  "fig7-utilization",
			Title: "buffer & memory-bandwidth utilization on drop (figure harness)",
		},
		Tables: func(scale Scale) []*experiments.Table {
			sc := experiments.QuickFabric()
			if scale == ScaleQuick {
				sc.Queries = 3
			}
			a, b := experiments.Fig7Utilization(sc)
			return []*experiments.Table{a, b}
		},
	})

	// --- New: 256-way incast storm -----------------------------------
	// Far beyond the paper's incast degree 40: 256 synchronized response
	// flows across 31 servers into one port, twice the buffer per query,
	// over light background load.
	Register(Scenario{
		Spec: Spec{
			Name:  "incast-storm-256",
			Title: "256-way incast storm into one port (32 hosts, 2x-buffer queries)",
			Topology: Topology{
				Kind: SingleSwitch, Hosts: 32, LinkBps: 10e9,
			},
			Policy: Policy{Kind: "occamy", Alpha: 8},
			Workloads: []Workload{
				{Kind: WLBackground, Load: 0.2},
				{Kind: WLIncast, Client: 0, Fanout: 256, QuerySize: 3_400_000,
					Queries: 15},
			},
			Duration: 400 * sim.Millisecond,
		},
		// Paper scale: enough storms for a stable p999 tail. Each query
		// moves 3.4MB through one 10G port (~3ms unloaded), so 100
		// queries need the multi-second horizon.
		Paper: func(s Spec) Spec {
			s.Workloads = append([]Workload(nil), s.Workloads...)
			s.Workloads[1].Queries = 100
			s.Duration = 4 * sim.Second
			return s
		},
	})

	// --- New: mixed web-search + cache at 0.9 utilization -------------
	// Two heavy-tailed distributions sharing the low-priority class at a
	// combined 90% load while queries ride the high-priority class — the
	// bimodal mix production fabrics actually carry.
	Register(Scenario{
		Spec: Spec{
			Name:  "mixed-load-90",
			Title: "mixed websearch+cache background at 0.9 load + HP incast (DRR)",
			Topology: Topology{
				Kind: SingleSwitch, Hosts: 8, LinkBps: 10e9,
				Classes: 2, Scheduler: "drr",
			},
			Policy: Policy{Kind: "occamy", Alpha: 8},
			Workloads: []Workload{
				{Kind: WLBackground, Label: "websearch", Load: 0.45, Priority: 1},
				{Kind: WLBackground, Label: "cache", Dist: "cache", Load: 0.45, Priority: 1},
				{Kind: WLIncast, Client: 0, QuerySize: 250_000, Priority: 0,
					Queries: 15},
			},
			Duration: 80 * sim.Millisecond,
		},
		// Paper scale: the heavy-tailed mix needs a long horizon before
		// the large-flow buckets of the tail table fill in.
		Paper: func(s Spec) Spec {
			s.Workloads = append([]Workload(nil), s.Workloads...)
			s.Workloads[2].Queries = 200
			s.Duration = 800 * sim.Millisecond
			return s
		},
	})

	// --- New: degraded-port leaf-spine -------------------------------
	// Two hosts on different leaves run at quarter/half rate (flapping
	// optics): their slow-draining queues hoard shared buffer, which a
	// preemptive BM must reclaim for everyone else.
	Register(Scenario{Spec: Spec{
		Name:  "degraded-leafspine",
		Title: "leaf-spine with degraded host links (0.25x/0.5x) under load",
		Topology: Topology{
			Kind: LeafSpine, Spines: 2, Leaves: 2, HostsPerLeaf: 4,
			LinkBps:       10e9,
			DegradedPorts: map[int]float64{1: 0.25, 5: 0.5},
		},
		Policy: Policy{Kind: "occamy", Alpha: 8},
		Workloads: []Workload{
			{Kind: WLBackground, Load: 0.6},
			{Kind: WLIncast, Client: -1, Fanout: 8, QuerySize: 184_000,
				Interval: 2 * sim.Millisecond, Queries: 12},
		},
		Warmup:   sim.Millisecond,
		Duration: 24 * sim.Millisecond,
	}})

	// --- New: bursty all-reduce --------------------------------------
	// Training traffic is on/off, not Poisson: all-reduce rounds at 90%
	// load in 1.5ms bursts with 1.5ms gaps, with incast queries landing
	// in and between the bursts.
	Register(Scenario{Spec: Spec{
		Name:  "bursty-allreduce",
		Title: "bursty all-reduce (1.5ms on/1.5ms off at 0.9) + incast queries",
		Topology: Topology{
			Kind: LeafSpine, Spines: 2, Leaves: 2, HostsPerLeaf: 4,
			LinkBps: 10e9,
		},
		Policy: Policy{Kind: "occamy", Alpha: 8},
		Workloads: []Workload{
			{Kind: WLAllReduce, FlowSize: 262_144, Load: 0.9,
				OnTime: 1500 * sim.Microsecond, OffTime: 1500 * sim.Microsecond},
			{Kind: WLIncast, Client: -1, Fanout: 8, QuerySize: 150_000,
				Interval: 2 * sim.Millisecond, Queries: 12},
		},
		Warmup:   sim.Millisecond,
		Duration: 24 * sim.Millisecond,
	}})

	// --- New: four-class priority inversion under strict priority ----
	// Eight lowest-class hostage flows pin the buffer while two mid-class
	// background mixes run and a top-class incast queries through: the
	// per-queue telemetry shows each class's queues riding (or blowing
	// through) their own α threshold. Sweep policy.kind=dt,occamy to see
	// expulsion reclaim the hostage over-allocation class by class.
	Register(Scenario{Spec: Spec{
		Name:  "priority-inversion-8",
		Title: "4-class SP: 8 LP hostages + 2 mid-class mixes + HP incast (512KB)",
		Topology: Topology{
			Kind: SingleSwitch, Hosts: 8, LinkBps: 10e9,
			BufferBytes: 512 << 10, ECNThresholdBytes: 200 << 10,
			Classes: 4, Scheduler: "sp",
		},
		Policy: Policy{Kind: "occamy", Alpha: 8, AlphaHP: 8, AlphaLP: 1},
		Workloads: []Workload{
			{Kind: WLLongLived, Label: "hostages", Count: 8, Priority: 3, Client: 0, DupThresh: 3},
			{Kind: WLBackground, Label: "websearch", Load: 0.25, Priority: 1},
			{Kind: WLBackground, Label: "cache", Dist: "cache", Load: 0.25, Priority: 2},
			{Kind: WLIncast, Client: 0, Servers: 5, Fanout: 20,
				QuerySize: 600_000, Priority: 0, DupThresh: 3, Queries: 6},
		},
		Warmup:   5 * sim.Millisecond,
		Duration: 40 * sim.Millisecond,
		Metrics: []string{"policy", "qct_avg_ms", "qct_p99_ms", "rtos",
			"bg_avg_fct_ms", "drops", "expelled", "hot_queue",
			"hot_queue_peak_pct", "min_thr_headroom_pct"},
	}})

	// --- New: three-class incast over a DRR mix ----------------------
	// Web-search and cache-follower backgrounds each own a class, the
	// gating incast a third, with DRR sharing the ports fairly: per-queue
	// traces separate the per-class backlogs that whole-port occupancy
	// blurs together.
	Register(Scenario{Spec: Spec{
		Name:  "mixed-class-incast",
		Title: "3-class DRR: websearch + cache classes under a gating incast (16 hosts)",
		Topology: Topology{
			Kind: SingleSwitch, Hosts: 16, LinkBps: 10e9,
			Classes: 3, Scheduler: "drr", DRRQuantum: 3 * 1514,
		},
		Policy: Policy{Kind: "occamy", Alpha: 8},
		Workloads: []Workload{
			{Kind: WLBackground, Label: "websearch", Load: 0.3, Priority: 0},
			{Kind: WLBackground, Label: "cache", Dist: "cache", Load: 0.3, Priority: 1},
			{Kind: WLIncast, Client: 0, QuerySize: 500_000, Priority: 2, Queries: 10},
		},
		Duration: 60 * sim.Millisecond,
		Metrics: []string{"policy", "qct_avg_ms", "qct_p99_ms", "rtos",
			"bg_avg_fct_ms", "drops", "expelled", "ecn_marked",
			"hot_queue", "hot_queue_peak_pct", "min_thr_headroom_pct"},
	}})

	// --- New: two-class bursty collective on a fabric ----------------
	// On/off all-reduce rounds in the low class with random-client incast
	// queries in the high class, DRR on every leaf and spine: multi-class
	// queue telemetry on a fabric, where each switch's (port, class)
	// series evolve against per-switch thresholds.
	Register(Scenario{Spec: Spec{
		Name:  "multiclass-fabric-drr",
		Title: "leaf-spine 2-class DRR: bursty all-reduce (LP) + incast queries (HP)",
		Topology: Topology{
			Kind: LeafSpine, Spines: 2, Leaves: 2, HostsPerLeaf: 4,
			LinkBps: 10e9, Classes: 2, Scheduler: "drr",
		},
		Policy: Policy{Kind: "occamy", Alpha: 8},
		Workloads: []Workload{
			{Kind: WLAllReduce, FlowSize: 262_144, Load: 0.8, Priority: 1,
				OnTime: 1500 * sim.Microsecond, OffTime: 1500 * sim.Microsecond},
			{Kind: WLIncast, Client: -1, Fanout: 8, QuerySize: 150_000, Priority: 0,
				Interval: 2 * sim.Millisecond, Queries: 12},
		},
		Warmup:   sim.Millisecond,
		Duration: 24 * sim.Millisecond,
	}})

	// --- New: rotating permutation stress ----------------------------
	// Every host sends 1MB to a stride-rotated peer at 95% load: no
	// fan-in anywhere, so drops and slowdowns expose pure buffer-policy
	// and scheduling effects.
	Register(Scenario{Spec: Spec{
		Name:  "permutation-stress",
		Title: "rotating permutation at 0.95 load (16 hosts, 1MB flows)",
		Topology: Topology{
			Kind: SingleSwitch, Hosts: 16, LinkBps: 10e9,
		},
		Policy: Policy{Kind: "occamy", Alpha: 8},
		Workloads: []Workload{
			{Kind: WLPermutation, FlowSize: 1_000_000, Load: 0.95, RotateStride: true},
		},
		Duration: 30 * sim.Millisecond,
		Metrics: []string{"policy", "bg_avg_fct_ms", "bg_avg_slow", "delivered_mb",
			"drops", "expelled", "ecn_marked", "max_occ_pct"},
	}})

	// --- New: WAN-degraded fabric links --------------------------------
	// The leaf<->spine links behave like a congested long-haul segment:
	// Gilbert–Elliott bursty loss (~0.5% average, in multi-packet bursts)
	// plus up to 20µs of jitter — while the host access links stay clean.
	// Transport must absorb burst losses on the fabric without wedging
	// the gating incast.
	Register(Scenario{Spec: Spec{
		Name:  "wan-degraded-leafspine",
		Title: "leaf-spine with bursty-lossy, jittery fabric links (GE + 20us jitter)",
		Topology: Topology{
			Kind: LeafSpine, Spines: 2, Leaves: 2, HostsPerLeaf: 4,
			LinkBps: 10e9,
		},
		Policy: Policy{Kind: "occamy", Alpha: 8},
		Faults: &Faults{
			LeafSpine: &linkfault.Profile{
				GEBadLossProb: 0.25, GEGoodToBad: 0.004, GEBadToGood: 0.2,
				JitterMax: 20 * sim.Microsecond,
			},
		},
		Workloads: []Workload{
			{Kind: WLBackground, Load: 0.5},
			{Kind: WLIncast, Client: -1, Fanout: 8, QuerySize: 150_000,
				Interval: 2 * sim.Millisecond, Queries: 12},
		},
		Warmup:   sim.Millisecond,
		Duration: 24 * sim.Millisecond,
	}})

	// --- New: flaky ToR uplinks under incast ---------------------------
	// Every host access link of the ToR loses 1% of packets i.i.d. and
	// duplicates another 0.5%: the incast's loss recovery now races
	// link-level loss on both data and ACK paths, and duplicate ACKs
	// must not be mistaken for the fast-retransmit signal.
	Register(Scenario{Spec: Spec{
		Name:  "flaky-tor-incast",
		Title: "incast through a flaky ToR: 1% link loss + 0.5% duplication",
		Topology: Topology{
			Kind: SingleSwitch, Hosts: 16, LinkBps: 10e9,
		},
		Policy: Policy{Kind: "occamy", Alpha: 8},
		Faults: &Faults{
			HostLeaf: &linkfault.Profile{LossProb: 0.01, DupProb: 0.005},
		},
		Workloads: []Workload{
			{Kind: WLBackground, Load: 0.3},
			{Kind: WLIncast, Client: 0, QuerySize: 250_000, Queries: 10},
		},
		Duration: 60 * sim.Millisecond,
	}})

	// --- New: duplicate storm ------------------------------------------
	// Every link duplicates 10% of packets — no loss at all. A transport
	// fooled by duplicates would fast-retransmit constantly; a robust one
	// delivers the same tails as the clean run, with the switch carrying
	// ~10% phantom load.
	Register(Scenario{Spec: Spec{
		Name:  "duplicate-storm",
		Title: "10% packet duplication on every link, zero loss (8 hosts)",
		Topology: Topology{
			Kind: SingleSwitch, Hosts: 8, LinkBps: 10e9,
		},
		Policy: Policy{Kind: "occamy", Alpha: 8},
		Faults: &Faults{
			All: &linkfault.Profile{DupProb: 0.1},
		},
		Workloads: []Workload{
			{Kind: WLBackground, Load: 0.4},
			{Kind: WLIncast, Client: 0, QuerySize: 200_000, Queries: 10},
		},
		Duration: 40 * sim.Millisecond,
	}})

	// --- New: jittery all-reduce ---------------------------------------
	// Collective rounds over a fabric whose links add up to 15µs of
	// per-packet jitter and hold back 2% of packets for up to 30µs: the
	// reordering this produces must ride below the dup-ACK threshold
	// instead of triggering spurious fast retransmits.
	Register(Scenario{Spec: Spec{
		Name:  "jittery-allreduce",
		Title: "all-reduce over jittery, reordering links (15us jitter, 2% hold-back)",
		Topology: Topology{
			Kind: LeafSpine, Spines: 2, Leaves: 2, HostsPerLeaf: 4,
			LinkBps: 10e9,
		},
		Policy: Policy{Kind: "occamy", Alpha: 8},
		Faults: &Faults{
			All: &linkfault.Profile{
				JitterMax:   15 * sim.Microsecond,
				ReorderProb: 0.02, ReorderHold: 30 * sim.Microsecond,
			},
		},
		Workloads: []Workload{
			{Kind: WLAllReduce, FlowSize: 262_144, Load: 0.8},
			{Kind: WLIncast, Client: -1, Fanout: 8, QuerySize: 150_000,
				Interval: 2 * sim.Millisecond, Queries: 12},
		},
		Warmup:   sim.Millisecond,
		Duration: 24 * sim.Millisecond,
	}})
}
