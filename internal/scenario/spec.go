// Package scenario is the declarative workload layer of the repository:
// a scenario is a small spec — topology, buffer-management policy,
// workload mix, duration, seed, metric selection — and the package turns
// it into a running simulation assembled from the reusable substrates
// (netsim, switchsim, transport, workload).
//
// Before this layer every new workload was a ~150-line Go program wiring
// those substrates by hand (each examples/ program and each
// internal/experiments harness repeats the pattern); with it a workload
// is a ~20-line Spec literal. Specs are also registrable: the catalog in
// catalog.go ships the ported example/figure scenarios plus at-scale
// workloads the paper does not cover, all runnable (and grid-sweepable
// over any spec field) through cmd/occamy-scenario.
package scenario

import (
	"encoding/json"
	"fmt"

	"occamy/internal/pkt"
	"occamy/internal/sim"
	"occamy/internal/switchsim"
)

// TopoKind selects the network shape.
type TopoKind int

const (
	// SingleSwitch is a star: Hosts end nodes around one shared-memory
	// switch (the testbed scenarios).
	SingleSwitch TopoKind = iota
	// LeafSpine is the §6.4 fabric with ECMP.
	LeafSpine
)

func (k TopoKind) String() string {
	if k == LeafSpine {
		return "leaf-spine"
	}
	return "single-switch"
}

// MarshalJSON renders the kind by name ("single-switch", "leaf-spine").
func (k TopoKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON accepts the kind names (and, leniently, their aliases
// "single" and "leafspine").
func (k *TopoKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("scenario: topology kind must be a string: %w", err)
	}
	switch s {
	case "", "single-switch", "single":
		*k = SingleSwitch
	case "leaf-spine", "leafspine":
		*k = LeafSpine
	default:
		return fmt.Errorf("scenario: unknown topology kind %q (single-switch|leaf-spine)", s)
	}
	return nil
}

// Topology describes the network and its switches. The json tags are
// the on-disk spec schema (see LoadSpec); zero fields are omitted so
// exported templates stay compact.
type Topology struct {
	Kind TopoKind `json:"kind"`

	// Hosts is the end-node count (single-switch; default 8).
	Hosts int `json:"hosts,omitempty"`
	// Spines/Leaves/HostsPerLeaf size the fabric (leaf-spine; default
	// 2×2×4).
	Spines       int `json:"spines,omitempty"`
	Leaves       int `json:"leaves,omitempty"`
	HostsPerLeaf int `json:"hosts_per_leaf,omitempty"`

	// LinkBps is the host access rate (default 10G). SpineLinkBps is the
	// leaf↔spine rate (default LinkBps).
	LinkBps      float64 `json:"link_bps,omitempty"`
	SpineLinkBps float64 `json:"spine_link_bps,omitempty"`
	// LinkDelay is the per-link propagation delay (default 5µs
	// single-switch, 10µs leaf-spine).
	LinkDelay sim.Duration `json:"link_delay,omitempty"`
	// DegradedPorts maps host IDs to a rate multiplier in (0,1): those
	// hosts' access links run slower, modeling flapping optics or a
	// misnegotiated port.
	DegradedPorts map[int]float64 `json:"degraded_ports,omitempty"`

	// BufferBytes fixes the shared buffer per switch. When zero the
	// buffer is sized Tomahawk-style from BufferKBPerPortPerGbps
	// (default 5.12).
	BufferBytes            int     `json:"buffer_bytes,omitempty"`
	BufferKBPerPortPerGbps float64 `json:"buffer_kb_per_port_per_gbps,omitempty"`
	// CellBytes is the buffer cell size (default 200).
	CellBytes int `json:"cell_bytes,omitempty"`

	// Classes is the number of traffic classes per port (default 1).
	Classes int `json:"classes,omitempty"`
	// Scheduler is the per-port discipline across classes:
	// "fifo" (default), "drr", or "sp".
	Scheduler string `json:"scheduler,omitempty"`
	// DRRQuantum is the deficit-round-robin credit per visit in bytes
	// ("drr" only; default 2×1514).
	DRRQuantum int `json:"drr_quantum,omitempty"`

	// ECNThresholdBytes fixes the marking point. When zero it defaults to
	// 65 MTUs on a single switch and ECNThresholdFrac×BDP (default 0.72)
	// on a fabric.
	ECNThresholdBytes int     `json:"ecn_threshold_bytes,omitempty"`
	ECNThresholdFrac  float64 `json:"ecn_threshold_frac,omitempty"`
}

// NumHosts returns the total host count.
func (t Topology) NumHosts() int {
	if t.Kind == LeafSpine {
		return t.Leaves * t.HostsPerLeaf
	}
	return t.Hosts
}

// SwitchPorts returns the port count of the (largest) switch, used for
// Tomahawk-style buffer sizing.
func (t Topology) SwitchPorts() int {
	if t.Kind == LeafSpine {
		return t.HostsPerLeaf + t.Spines
	}
	return t.Hosts
}

// hostRate returns host id's access rate with any degraded-port
// multiplier applied (non-positive multipliers are ignored).
func (t Topology) hostRate(id int) float64 {
	if mult, ok := t.DegradedPorts[id]; ok && mult > 0 {
		return mult * t.LinkBps
	}
	return t.LinkBps
}

// BufferSize resolves the shared buffer in bytes.
func (t Topology) BufferSize() int {
	if t.BufferBytes > 0 {
		return t.BufferBytes
	}
	return int(t.BufferKBPerPortPerGbps * 1024 * float64(t.SwitchPorts()) * t.LinkBps / 1e9)
}

func (t Topology) schedKind() (switchsim.SchedKind, error) {
	switch t.Scheduler {
	case "", "fifo":
		return switchsim.SchedFIFO, nil
	case "drr":
		return switchsim.SchedDRR, nil
	case "sp":
		return switchsim.SchedSP, nil
	}
	return 0, fmt.Errorf("scenario: unknown scheduler %q (fifo|drr|sp)", t.Scheduler)
}

// Workload kinds.
const (
	// Background: Poisson 1-to-1 flows with sizes from Dist at Load.
	WLBackground = "background"
	// Incast: partition–aggregate queries; the first incast workload with
	// Queries > 0 gates the run (it ends once they complete).
	WLIncast = "incast"
	// Permutation: rounds of host i → host i+Stride flows at Load.
	WLPermutation = "permutation"
	// AllToAll / AllReduce: the AI collective patterns.
	WLAllToAll  = "alltoall"
	WLAllReduce = "allreduce"
	// LongLived: Count persistent (effectively infinite) flows toward
	// Client from the topologically last hosts.
	WLLongLived = "longlived"
	// CBR / Burst: raw packet injection straight into the switch — no
	// transport, no hosts (the Pktgen role of the P4 scenarios). Raw
	// kinds cannot be mixed with transport kinds in one spec.
	WLCBR   = "cbr"
	WLBurst = "burst"
)

// Workload is one traffic component of a scenario. Fields are a union
// across kinds; each kind documents what it reads.
type Workload struct {
	// Kind is one of the WL* constants.
	Kind string `json:"kind"`
	// Label names the component in metric columns (default: Kind).
	Label string `json:"label,omitempty"`

	// Load is the offered load as a fraction of access bandwidth
	// (background, permutation, alltoall, allreduce).
	Load float64 `json:"load,omitempty"`
	// Dist selects the flow-size distribution for background traffic:
	// "websearch" (default), "cache", or "uniform" (FlowSize bytes).
	Dist string `json:"dist,omitempty"`
	// FlowSize is the per-flow size for collectives/permutation and the
	// "uniform" distribution.
	FlowSize int64 `json:"flow_size,omitempty"`

	// QuerySize is the total incast response volume per query; Fanout the
	// number of response flows; Queries how many queries to measure;
	// Interval the spacing (0 derives ~10× the unloaded QCT); QPS an
	// optional Poisson query rate replacing Interval.
	QuerySize int64        `json:"query_size,omitempty"`
	Fanout    int          `json:"fanout,omitempty"`
	Queries   int          `json:"queries,omitempty"`
	Interval  sim.Duration `json:"interval,omitempty"`
	QPS       float64      `json:"qps,omitempty"`
	// Client fixes the incast client (and the longlived destination);
	// -1 picks a random client per query. Servers restricts incast
	// responders to hosts 1..Servers (0 = all non-client hosts).
	Client  int `json:"client,omitempty"`
	Servers int `json:"servers,omitempty"`

	// Count is the number of longlived flows.
	Count int `json:"count,omitempty"`
	// Stride is the permutation offset (default 1); RotateStride advances
	// it every round.
	Stride       int  `json:"stride,omitempty"`
	RotateStride bool `json:"rotate_stride,omitempty"`

	// Priority is the traffic class; CC the congestion controller
	// ("dctcp" default, "cubic", "reno"); DupThresh a fixed fast-
	// retransmit threshold (0 = adaptive early retransmit).
	Priority  int    `json:"priority,omitempty"`
	CC        string `json:"cc,omitempty"`
	DupThresh int    `json:"dup_thresh,omitempty"`
	// ExcludeClient keeps this workload off the gating incast client
	// (the Fig 6 inter-port configuration).
	ExcludeClient bool `json:"exclude_client,omitempty"`

	// OnTime/OffTime gate round-based generators into bursts: the
	// workload runs for OnTime, pauses for OffTime, repeating. Zero
	// OnTime means always on.
	OnTime  sim.Duration `json:"on_time,omitempty"`
	OffTime sim.Duration `json:"off_time,omitempty"`

	// Raw injection (cbr, burst): DstPort is the egress port, RateBps the
	// injection rate, Bytes the burst volume, At the burst start, PktSize
	// the packet size (default 1000).
	DstPort int          `json:"dst_port,omitempty"`
	RateBps float64      `json:"rate_bps,omitempty"`
	Bytes   int64        `json:"bytes,omitempty"`
	At      sim.Duration `json:"at,omitempty"`
	PktSize int          `json:"pkt_size,omitempty"`
}

func (w Workload) label(i int) string {
	if w.Label != "" {
		return w.Label
	}
	return fmt.Sprintf("%s%d", w.Kind, i)
}

func (w Workload) raw() bool { return w.Kind == WLCBR || w.Kind == WLBurst }

// Spec is a complete declarative scenario.
type Spec struct {
	// Name identifies the scenario (registry key, table ID).
	Name string `json:"name"`
	// Title is the human-readable one-liner.
	Title string `json:"title,omitempty"`

	Topology  Topology   `json:"topology"`
	Policy    Policy     `json:"policy"`
	Workloads []Workload `json:"workloads"`

	// Faults optionally degrades the topology's links with per-class
	// fault profiles (loss, bursty loss, duplication, reordering,
	// jitter); see faults.go. Nil keeps every link ideal.
	Faults *Faults `json:"faults,omitempty"`

	// Warmup delays the gating incast so background traffic reaches
	// steady state (default 2ms when a gating incast exists).
	Warmup sim.Duration `json:"warmup,omitempty"`
	// Duration is the measurement horizon after warmup. Runs with a
	// gating incast may end earlier (all queries answered) or up to 500ms
	// later (stragglers).
	Duration sim.Duration `json:"duration,omitempty"`
	// Seed seeds every RNG in the run (default 42).
	Seed uint64 `json:"seed,omitempty"`

	// Scale is the run-size preset applied by Run: "quick" shrinks to
	// test scale, "paper" grows to evaluation scale, ""/"full" runs the
	// spec as written. File-based specs carry their scale here; the CLI
	// -scale flag overrides it.
	Scale Scale `json:"scale,omitempty"`

	// Metrics selects summary-table columns by name (see columns.go);
	// nil picks a default set based on the workload mix.
	Metrics []string `json:"metrics,omitempty"`
}

// WithDefaults returns the spec with every defaultable field resolved.
func (s Spec) WithDefaults() Spec {
	t := &s.Topology
	switch t.Kind {
	case SingleSwitch:
		if t.Hosts == 0 {
			t.Hosts = 8
		}
		if t.LinkDelay == 0 {
			t.LinkDelay = 5 * sim.Microsecond
		}
	case LeafSpine:
		if t.Spines == 0 {
			t.Spines = 2
		}
		if t.Leaves == 0 {
			t.Leaves = 2
		}
		if t.HostsPerLeaf == 0 {
			t.HostsPerLeaf = 4
		}
		if t.LinkDelay == 0 {
			t.LinkDelay = 10 * sim.Microsecond
		}
	}
	if t.LinkBps == 0 {
		t.LinkBps = 10e9
	}
	if t.SpineLinkBps == 0 {
		t.SpineLinkBps = t.LinkBps
	}
	if t.BufferBytes == 0 && t.BufferKBPerPortPerGbps == 0 {
		t.BufferKBPerPortPerGbps = 5.12
	}
	if t.Classes == 0 {
		t.Classes = 1
	}
	if t.ECNThresholdBytes == 0 {
		if t.Kind == LeafSpine {
			frac := t.ECNThresholdFrac
			if frac == 0 {
				frac = 0.72
			}
			bdp := float64(8*t.LinkDelay.Seconds()) * t.LinkBps / 8
			t.ECNThresholdBytes = int(frac * bdp)
		} else {
			t.ECNThresholdBytes = 65 * pkt.MTU
		}
	}
	if s.Seed == 0 {
		s.Seed = 42
	}
	if s.Duration == 0 {
		s.Duration = 40 * sim.Millisecond
	}
	if s.Warmup == 0 && s.gatingIncast() >= 0 {
		s.Warmup = 2 * sim.Millisecond
	}
	// Copy before defaulting workloads: the receiver shares its backing
	// array with the caller's spec (often a pristine registry entry).
	s.Workloads = append([]Workload(nil), s.Workloads...)
	for i := range s.Workloads {
		w := &s.Workloads[i]
		if w.PktSize == 0 {
			w.PktSize = 1000
		}
		if w.Kind == WLIncast && w.Fanout == 0 {
			w.Fanout = s.Topology.NumHosts() - 1
		}
	}
	return s
}

// gatingIncast returns the index of the workload that gates the run (the
// first incast with a query budget), or -1.
func (s Spec) gatingIncast() int {
	for i, w := range s.Workloads {
		if w.Kind == WLIncast && w.Queries > 0 {
			return i
		}
	}
	return -1
}

// Raw reports whether the spec is a raw-injection scenario (all
// workloads are cbr/burst kinds).
func (s Spec) Raw() bool {
	if len(s.Workloads) == 0 {
		return false
	}
	for _, w := range s.Workloads {
		if !w.raw() {
			return false
		}
	}
	return true
}

// Validate rejects specs the builder cannot assemble.
func (s Spec) Validate() error {
	if len(s.Workloads) == 0 {
		return fmt.Errorf("scenario %q: no workloads", s.Name)
	}
	if _, err := ParseScale(string(s.Scale)); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	// Negative sizes, counts, and times cannot be built or scheduled
	// (the engine panics on events in the past); reject them here so a
	// well-formed JSON file can never crash or wedge the builder.
	t := s.Topology
	if t.Hosts < 0 || t.Spines < 0 || t.Leaves < 0 || t.HostsPerLeaf < 0 ||
		t.LinkBps < 0 || t.SpineLinkBps < 0 || t.LinkDelay < 0 ||
		t.BufferBytes < 0 || t.BufferKBPerPortPerGbps < 0 || t.CellBytes < 0 ||
		t.Classes < 0 || t.DRRQuantum < 0 ||
		t.ECNThresholdBytes < 0 || t.ECNThresholdFrac < 0 {
		return fmt.Errorf("scenario %q: negative topology field", s.Name)
	}
	if s.Duration < 0 || s.Warmup < 0 {
		return fmt.Errorf("scenario %q: negative duration/warmup", s.Name)
	}
	if err := s.Faults.validate(s.Name); err != nil {
		return err
	}
	if s.Faults != nil && s.Raw() {
		// Raw injection bypasses hosts and links entirely; a faults block
		// there would silently do nothing.
		return fmt.Errorf("scenario %q: faults cannot apply to raw (cbr/burst) injection", s.Name)
	}
	if _, err := s.Topology.schedKind(); err != nil {
		return err
	}
	if _, _, err := s.Policy.Build(s.Topology.Classes); err != nil {
		return err
	}
	raws := 0
	nHosts := s.Topology.NumHosts()
	for _, w := range s.Workloads {
		if w.raw() {
			raws++
		}
		if w.Load < 0 || w.FlowSize < 0 || w.QuerySize < 0 || w.Fanout < 0 ||
			w.Queries < 0 || w.Interval < 0 || w.QPS < 0 || w.Servers < 0 ||
			w.Count < 0 || w.Stride < 0 || w.Priority < 0 || w.DupThresh < 0 ||
			w.OnTime < 0 || w.OffTime < 0 || w.RateBps < 0 || w.Bytes < 0 ||
			w.At < 0 || w.PktSize < 0 {
			return fmt.Errorf("scenario %q: negative field in %s workload", s.Name, w.Kind)
		}
		switch w.Kind {
		case WLBackground, WLPermutation, WLAllToAll, WLAllReduce:
			if w.Load <= 0 {
				return fmt.Errorf("scenario %q: %s needs Load > 0", s.Name, w.Kind)
			}
			if w.Kind != WLBackground && w.FlowSize <= 0 {
				return fmt.Errorf("scenario %q: %s needs FlowSize > 0", s.Name, w.Kind)
			}
		case WLIncast:
			if w.QuerySize <= 0 {
				return fmt.Errorf("scenario %q: incast needs QuerySize > 0", s.Name)
			}
			// Client -1 means a random client per query; anything else
			// must name a host (the builder indexes hosts by it).
			if w.Client < -1 || w.Client >= nHosts {
				return fmt.Errorf("scenario %q: incast client %d out of range (-1 or 0..%d)", s.Name, w.Client, nHosts-1)
			}
		case WLLongLived:
			if w.Count <= 0 {
				return fmt.Errorf("scenario %q: longlived needs Count > 0", s.Name)
			}
			if w.Client < 0 || w.Client >= nHosts {
				return fmt.Errorf("scenario %q: longlived client %d out of range (0..%d)", s.Name, w.Client, nHosts-1)
			}
		case WLCBR, WLBurst:
			if w.RateBps <= 0 {
				return fmt.Errorf("scenario %q: %s needs RateBps > 0", s.Name, w.Kind)
			}
			// Raw injection routes on the packet's Dst: it must be one of
			// the switch's egress ports. (Raw on a fabric is rejected
			// below with its own message.)
			if s.Topology.Kind == SingleSwitch && (w.DstPort < 0 || w.DstPort >= s.Topology.Hosts) {
				return fmt.Errorf("scenario %q: %s dst_port %d out of range (0..%d)", s.Name, w.Kind, w.DstPort, s.Topology.Hosts-1)
			}
		default:
			return fmt.Errorf("scenario %q: unknown workload kind %q", s.Name, w.Kind)
		}
		if _, err := distFor(w); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		if _, err := ccFor(w); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	}
	if raws > 0 && raws != len(s.Workloads) {
		return fmt.Errorf("scenario %q: raw (cbr/burst) and transport workloads cannot mix", s.Name)
	}
	if raws > 0 && s.Topology.Kind != SingleSwitch {
		return fmt.Errorf("scenario %q: raw injection needs a single-switch topology", s.Name)
	}
	return nil
}
