package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Scenario specs as files
//
// A spec serializes to JSON (the json tags on Spec/Topology/Policy/
// Workload are the schema; durations are Go duration strings like
// "2ms"), so runs are shareable without recompiling:
//
//	occamy-scenario export incast-storm-256 > storm.json
//	$EDITOR storm.json
//	occamy-scenario run ./storm.json
//
// Parsing is strict — unknown fields are rejected, not ignored, so a
// typo'd field name fails loudly instead of silently running a
// different scenario — and every loaded spec is validated with defaults
// applied before the builder sees it.

// ParseSpec decodes and validates a JSON spec. The returned spec is as
// written (defaults are resolved inside Run), so Parse∘Save is the
// identity on specs that came from files.
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	// Trailing garbage after the spec object is a malformed file, not an
	// extra document.
	if dec.More() {
		return Spec{}, fmt.Errorf("scenario: trailing data after spec object")
	}
	if s.Name == "" {
		return Spec{}, fmt.Errorf("scenario: spec has no name")
	}
	if _, err := ParseScale(string(s.Scale)); err != nil {
		return Spec{}, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if err := s.ApplyScale().WithDefaults().Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// LoadSpec reads and validates a JSON spec file.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	s, err := ParseSpec(data)
	if err != nil {
		return Spec{}, fmt.Errorf("%w (file %s)", err, path)
	}
	return s, nil
}

// Marshal renders the spec as indented JSON, zero fields omitted — the
// export format, editable as a template.
func (s Spec) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: marshaling spec %q: %w", s.Name, err)
	}
	return append(data, '\n'), nil
}

// Save writes the spec as a JSON file.
func (s Spec) Save(path string) error {
	data, err := s.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
