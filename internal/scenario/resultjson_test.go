package scenario

import (
	"reflect"
	"strings"
	"testing"

	"occamy/internal/sim"
)

// The fingerprint is a content address: specs that resolve to the same
// run hash equal (explicit defaults vs omitted ones), and any field
// that changes the run changes the hash.
func TestFingerprintCanonical(t *testing.T) {
	base := Spec{
		Name:     "fp-test",
		Topology: Topology{Kind: SingleSwitch},
		Policy:   Policy{Kind: "dt", Alpha: 1},
		Workloads: []Workload{
			{Kind: WLBackground, Load: 0.5},
		},
		// Explicit (= the default) so the scale mutation below actually
		// changes the resolved run: quick caps written durations only.
		Duration: 40 * sim.Millisecond,
	}
	fp, err := base.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(fp, "sha256:") || len(fp) != len("sha256:")+64 {
		t.Fatalf("malformed fingerprint %q", fp)
	}

	// Spelling out what WithDefaults would resolve anyway must not
	// change the address: equal runs, equal keys.
	explicit := base
	explicit.Workloads = append([]Workload(nil), base.Workloads...)
	explicit.Seed = 42
	explicit.Topology.Hosts = 8
	explicit.Duration = 0 // resolves back to the written 40ms
	explicit.Workloads[0].PktSize = 1000
	if fp2, _ := explicit.Fingerprint(); fp2 != fp {
		t.Errorf("explicit defaults changed the fingerprint:\n%s\n%s", fp, fp2)
	}

	// Anything that changes the run must change the address.
	for name, mutate := range map[string]func(*Spec){
		"seed":     func(s *Spec) { s.Seed = 7 },
		"load":     func(s *Spec) { s.Workloads[0].Load = 0.6 },
		"policy":   func(s *Spec) { s.Policy.Kind = "occamy" },
		"hosts":    func(s *Spec) { s.Topology.Hosts = 16 },
		"scale":    func(s *Spec) { s.Scale = ScaleQuick },
		"duration": func(s *Spec) { s.Duration = 10 * sim.Millisecond },
	} {
		mut := base
		mut.Workloads = append([]Workload(nil), base.Workloads...)
		mutate(&mut)
		if fp2, _ := mut.Fingerprint(); fp2 == fp {
			t.Errorf("mutating %s left the fingerprint unchanged", name)
		}
	}

	// A catalog spec at two scales is two distinct addresses, and the
	// scale-pinning form hashes equal to its pre-resolved form
	// (ApplyScale is folded in before hashing).
	sc, _ := Get("leafspine-demo")
	spec := sc.Spec
	spec.Scale = ScaleQuick
	fpQuick, err := spec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fpFull, err := sc.Spec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fpQuick == fpFull {
		t.Error("quick and full scales of leafspine-demo hash equal")
	}
	if fpResolved, _ := QuickSpec(sc.Spec).Fingerprint(); fpResolved != fpQuick {
		t.Errorf("scale=quick spec and its resolved form hash differently")
	}
}

// The result document must round-trip byte-identically (the property
// the content-addressed cache rests on), reproduce the summary table
// cell-for-cell, and regenerate the exact trace CSV the Result writes.
func TestResultDocRoundTrip(t *testing.T) {
	sc, _ := Get("mixed-class-incast")
	spec := sc.SpecAt(ScaleQuick)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.EncodeJSON(true)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := DecodeResultDoc(data)
	if err != nil {
		t.Fatal(err)
	}
	again, err := doc.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Error("result document not canonical across decode/encode")
	}

	// Metrics survive the trip byte-for-byte.
	tab := res.Table()
	if !reflect.DeepEqual(doc.Summary, NewTableDoc(tab)) {
		t.Errorf("summary drifted:\nwant %+v\ngot  %+v", NewTableDoc(tab), doc.Summary)
	}
	// So do the per-queue counters (satellite of the same PR).
	for i := range res.Telemetry {
		for q := range res.Telemetry[i].Queues {
			qt := &res.Telemetry[i].Queues[q]
			qd := doc.Switches[i].Queues[q]
			if qd.TxPackets != qt.Stats.TxPackets || qd.DropsExpelled != qt.Stats.DropsExpelled ||
				qd.DropsAdmission != qt.Stats.DropsAdmission || qd.ECNMarked != qt.Stats.ECNMarked {
				t.Fatalf("switch %d queue %d counters drifted: doc %+v vs %+v", i, q, qd, qt.Stats)
			}
		}
	}

	// The document's trace regenerates the Result's CSV exactly, at
	// stride 1 and strided.
	for _, stride := range []int{1, 7} {
		var fromRes, fromDoc strings.Builder
		if err := res.WriteTraceCSVStride(&fromRes, stride); err != nil {
			t.Fatal(err)
		}
		if err := doc.WriteTraceCSV(&fromDoc, stride); err != nil {
			t.Fatal(err)
		}
		if fromRes.String() != fromDoc.String() {
			t.Errorf("stride %d: document CSV differs from Result CSV", stride)
		}
	}

	// Without the trace section the document still decodes, and the
	// trace surface refuses politely.
	lean, err := res.EncodeJSON(false)
	if err != nil {
		t.Fatal(err)
	}
	leanDoc, err := DecodeResultDoc(lean)
	if err != nil {
		t.Fatal(err)
	}
	if leanDoc.Trace != nil {
		t.Error("EncodeJSON(false) kept the trace section")
	}
	if err := leanDoc.WriteTraceCSV(&strings.Builder{}, 1); err == nil {
		t.Error("WriteTraceCSV on a traceless document did not error")
	}
	if len(lean) >= len(data) {
		t.Errorf("traceless encoding (%d B) not smaller than full (%d B)", len(lean), len(data))
	}

	// Strictness mirrors ParseSpec: unknown fields and foreign schemas
	// are rejected.
	if _, err := DecodeResultDoc([]byte(`{"schema":1,"bogus":true}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := DecodeResultDoc([]byte(`{"schema":99}`)); err == nil {
		t.Error("foreign schema version accepted")
	}
}

// Identical runs encode to identical bytes — the determinism the cache
// identity test in internal/service depends on, pinned at the layer
// that provides it.
func TestResultEncodingDeterministic(t *testing.T) {
	sc, _ := Get("burst-absorb")
	spec := sc.SpecAt(ScaleQuick)
	enc := func() string {
		res, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		data, err := res.EncodeJSON(true)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	if a, b := enc(), enc(); a != b {
		t.Error("identical runs encoded to different bytes")
	}
}

// WriteTraceCSVStride bounds the CSV: stride N keeps ceil(samples/N)
// rows, real samples with their exact timestamps (the stride=1 goldens
// elsewhere pin that full resolution is unchanged).
func TestTraceStride(t *testing.T) {
	sc, _ := Get("quickstart")
	res, err := Run(sc.SpecAt(ScaleQuick))
	if err != nil {
		t.Fatal(err)
	}
	var full strings.Builder
	if err := res.WriteTraceCSVStride(&full, 1); err != nil {
		t.Fatal(err)
	}
	fullLines := strings.Split(strings.TrimRight(full.String(), "\n"), "\n")
	samples := len(res.SampleTimes)
	if len(fullLines) != samples+1 {
		t.Fatalf("stride 1: %d lines for %d samples", len(fullLines), samples)
	}
	for _, stride := range []int{2, 5, 64, samples + 10} {
		var out strings.Builder
		if err := res.WriteTraceCSVStride(&out, stride); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
		want := (samples + stride - 1) / stride
		if len(lines) != want+1 {
			t.Errorf("stride %d: %d data rows, want %d", stride, len(lines)-1, want)
		}
		if lines[0] != fullLines[0] {
			t.Errorf("stride %d changed the header", stride)
		}
		// Surviving rows are the exact stride-th rows of the full dump.
		for i, l := range lines[1:] {
			if fullRow := fullLines[1+i*stride]; l != fullRow {
				t.Fatalf("stride %d row %d is not full-resolution row %d:\n%s\n%s", stride, i, i*stride, l, fullRow)
			}
		}
	}
}
