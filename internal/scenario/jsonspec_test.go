package scenario

import (
	"reflect"
	"strings"
	"testing"
)

// exportableNames returns the catalog entries that have a spec to
// serialize (everything but the bespoke figure harnesses).
func exportableNames(t *testing.T) []string {
	t.Helper()
	var out []string
	for _, name := range Names() {
		sc, ok := Get(name)
		if !ok {
			t.Fatalf("Get(%q) failed", name)
		}
		if sc.Tables == nil {
			out = append(out, name)
		}
	}
	if len(out) < 8 {
		t.Fatalf("only %d exportable scenarios, want >= 8", len(out))
	}
	return out
}

// Save→Load must be the identity on every catalog spec: a deep-equal
// spec back from JSON, and a byte-identical re-serialization (so
// exported templates are canonical, not drifting per round trip).
func TestSpecRoundTrip(t *testing.T) {
	for _, name := range exportableNames(t) {
		for _, scale := range []Scale{ScaleQuick, ScaleFull, ScalePaper} {
			sc, _ := Get(name)
			spec := sc.SpecAt(scale)
			data, err := spec.Marshal()
			if err != nil {
				t.Fatalf("%s@%s: %v", name, scale, err)
			}
			back, err := ParseSpec(data)
			if err != nil {
				t.Fatalf("%s@%s: ParseSpec of own export: %v\n%s", name, scale, err, data)
			}
			if !reflect.DeepEqual(spec, back) {
				t.Errorf("%s@%s: spec drifted across Save→Load:\nwant %+v\ngot  %+v", name, scale, spec, back)
			}
			again, err := back.Marshal()
			if err != nil {
				t.Fatalf("%s@%s: %v", name, scale, err)
			}
			if string(data) != string(again) {
				t.Errorf("%s@%s: serialization not canonical:\n--- first\n%s--- second\n%s", name, scale, data, again)
			}
		}
	}
}

// Differential gate for the file-spec path: every catalog scenario
// exported to JSON and re-run from the parsed file must produce a
// byte-identical summary table to the in-code spec — same seed, same
// columns, same cells. Any serialization loss (a dropped field, a
// duration rounding, a default resolved differently) shows up here.
func TestFileSpecDifferential(t *testing.T) {
	for _, name := range exportableNames(t) {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, _ := Get(name)
			spec := sc.SpecAt(ScaleQuick)
			direct, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			data, err := spec.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			loaded, err := ParseSpec(data)
			if err != nil {
				t.Fatal(err)
			}
			fromFile, err := Run(loaded)
			if err != nil {
				t.Fatal(err)
			}
			a := render([]*Table{direct.Table(), direct.TailTable(), direct.PerSwitchTable()})
			b := render([]*Table{fromFile.Table(), fromFile.TailTable(), fromFile.PerSwitchTable()})
			if a != b {
				t.Errorf("file-spec run differs from in-code run:\n--- in-code\n%s--- from file\n%s", a, b)
			}
		})
	}
}

// The spec file parser is strict: unknown fields, malformed JSON, and
// trailing garbage are errors, not silent acceptance.
func TestParseSpecStrict(t *testing.T) {
	valid := `{"name":"x","topology":{"kind":"single-switch"},"policy":{"kind":"dt"},` +
		`"workloads":[{"kind":"background","load":0.5}]}`
	if _, err := ParseSpec([]byte(valid)); err != nil {
		t.Fatalf("minimal valid spec rejected: %v", err)
	}
	for _, c := range []struct{ name, data string }{
		{"unknown top-level field", `{"name":"x","bogus":1,"topology":{"kind":"single-switch"},"policy":{"kind":"dt"},"workloads":[{"kind":"background","load":0.5}]}`},
		{"unknown workload field", `{"name":"x","topology":{"kind":"single-switch"},"policy":{"kind":"dt"},"workloads":[{"kind":"background","load":0.5,"lod":0.9}]}`},
		{"bad topology kind", `{"name":"x","topology":{"kind":"torus"},"policy":{"kind":"dt"},"workloads":[{"kind":"background","load":0.5}]}`},
		{"bad duration", `{"name":"x","duration":"2 parsecs","topology":{"kind":"single-switch"},"policy":{"kind":"dt"},"workloads":[{"kind":"background","load":0.5}]}`},
		{"bad scale", `{"name":"x","scale":"huge","topology":{"kind":"single-switch"},"policy":{"kind":"dt"},"workloads":[{"kind":"background","load":0.5}]}`},
		{"no name", `{"topology":{"kind":"single-switch"},"policy":{"kind":"dt"},"workloads":[{"kind":"background","load":0.5}]}`},
		{"trailing garbage", valid + `{"name":"y"}`},
		{"not an object", `[1,2,3]`},
		{"empty", ``},
	} {
		if _, err := ParseSpec([]byte(c.data)); err == nil {
			t.Errorf("%s: ParseSpec accepted invalid input", c.name)
		}
	}
}

// A spec's Scale field is honored by Run itself (the preset travels
// with the file): quick shrinks the gating query budget.
func TestSpecScaleField(t *testing.T) {
	sc, _ := Get("mixed-load-90")
	spec := sc.Spec
	spec.Scale = ScaleQuick
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	gate := res.Workloads[2]
	if gate.Launched > 3 {
		t.Errorf("scale=quick spec launched %d queries, want <= 3", gate.Launched)
	}
	if _, err := ParseScale("huge"); err == nil || !strings.Contains(err.Error(), "huge") {
		t.Errorf("ParseScale accepted nonsense: %v", err)
	}
}

// FuzzLoadSpec: arbitrary JSON must never panic the parser, and any
// input it accepts must round-trip — Save→Load yields a deep-equal spec
// and a byte-identical canonical serialization (the same property the
// differential test extends to run tables for the catalog corpus).
func FuzzLoadSpec(f *testing.F) {
	// Seed with every exportable catalog entry at two scales plus the
	// strict-parser corner cases.
	for _, name := range Names() {
		sc, _ := Get(name)
		if sc.Tables != nil {
			continue
		}
		for _, scale := range []Scale{ScaleQuick, ScaleFull} {
			data, err := sc.SpecAt(scale).Marshal()
			if err != nil {
				f.Fatal(err)
			}
			f.Add(data)
		}
	}
	f.Add([]byte(`{"name":"x","topology":{"kind":"leaf-spine"},"policy":{"kind":"qpo"},` +
		`"workloads":[{"kind":"incast","query_size":1000,"queries":1}],"duration":"1ms","scale":"paper"}`))
	f.Add([]byte(`{"name":"x","bogus":true}`))
	f.Add([]byte(`{"degraded_ports":{"notanint":0.5}}`))
	// Malformed fault blocks: unknown selector, out-of-range probability,
	// bad duration syntax, wrong shapes.
	f.Add([]byte(`{"name":"x","topology":{"kind":"single-switch"},"policy":{"kind":"dt"},` +
		`"workloads":[{"kind":"background","load":0.5}],"faults":{"all":{"loss_prob":0.5}}}`))
	f.Add([]byte(`{"name":"x","faults":{"spine-core":{"loss_prob":0.1}}}`))
	f.Add([]byte(`{"name":"x","faults":{"all":{"loss_prob":7}}}`))
	f.Add([]byte(`{"name":"x","faults":{"all":{"jitter_max":"3 parsecs"}}}`))
	f.Add([]byte(`{"name":"x","faults":{"all":{"reorder_prob":0.1}}}`))
	f.Add([]byte(`{"name":"x","faults":{"all":[0.1]}}`))
	f.Add([]byte(`{"name":"x","faults":0.1}`))
	f.Add([]byte(`[{}]`))
	f.Add([]byte(`nul`))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseSpec(data) // must not panic, whatever the input
		if err != nil {
			return
		}
		out, err := spec.Marshal()
		if err != nil {
			t.Fatalf("accepted spec does not re-marshal: %v", err)
		}
		back, err := ParseSpec(out)
		if err != nil {
			t.Fatalf("own serialization rejected: %v\n%s", err, out)
		}
		if !reflect.DeepEqual(spec, back) {
			t.Errorf("spec drifted across Save→Load:\nwant %+v\ngot  %+v", spec, back)
		}
		again, err := back.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != string(again) {
			t.Errorf("serialization not canonical:\n--- first\n%s--- second\n%s", out, again)
		}
	})
}
