package scenario

import (
	"strings"
	"testing"

	"occamy/internal/experiments"
	"occamy/internal/linkfault"
	"occamy/internal/sim"
)

// Transport robustness under injected link faults
//
// The property the linkfault layer must certify: a gated incast spec
// COMPLETES — every issued query fully answered — at i.i.d. loss rates
// up to 10%, with exact packet accounting at every layer (per-link
// conservation, link↔switch cross-checks, zero switch drift). A
// transport that livelocks on duplicates, reordering, or stale ACKs
// fails the Done==Launched gate; an accounting leak anywhere in the
// chain fails the conservation checks.

// lossSpec is a gated incast through a single lossy ToR.
func lossSpec(loss float64) Spec {
	return Spec{
		Name:  "loss-sweep",
		Title: "loss sweep probe",
		Topology: Topology{
			Kind: SingleSwitch, Hosts: 8, LinkBps: 10e9,
		},
		Policy: Policy{Kind: "dt", Alpha: 2},
		Faults: &Faults{
			HostLeaf: &linkfault.Profile{LossProb: loss},
		},
		Workloads: []Workload{
			{Kind: WLIncast, Client: 0, QuerySize: 100_000, Queries: 6},
		},
		Duration: 40 * sim.Millisecond,
		Seed:     11,
	}
}

// checkLinkConservation asserts, per faulted link, that every packet
// offered (plus the duplicates the link minted) is accounted for:
// delivered, dropped, or still held/jittered in flight.
func checkLinkConservation(t *testing.T, res *Result) {
	t.Helper()
	for _, l := range res.FaultLinks {
		inflight := l.InFlight()
		if inflight < 0 {
			t.Errorf("link %s: negative in-flight %d (offered %d + dup %d, delivered %d, dropped %d)",
				l.Name, inflight, l.Offered, l.Duplicated, l.Delivered, l.Dropped)
		}
		if l.Offered+l.Duplicated != l.Delivered+l.Dropped+inflight {
			t.Errorf("link %s: conservation broken: offered %d + dup %d != delivered %d + dropped %d + inflight %d",
				l.Name, l.Offered, l.Duplicated, l.Delivered, l.Dropped, inflight)
		}
	}
}

// checkCrossLayerAccounting ties the link counters to the switch
// counters exactly: on a single-switch topology every packet the switch
// receives arrived through an up link's Delivered, and every packet it
// transmits was Offered to a down link.
func checkCrossLayerAccounting(t *testing.T, res *Result) {
	t.Helper()
	var upDelivered, downOffered int64
	for _, l := range res.FaultLinks {
		switch {
		case strings.HasSuffix(l.Name, "->sw0"):
			upDelivered += l.Delivered
		case strings.HasPrefix(l.Name, "sw0->"):
			downOffered += l.Offered
		default:
			t.Errorf("unexpected link name %q on single-switch topology", l.Name)
		}
	}
	if upDelivered != res.Total.RxPackets {
		t.Errorf("up-link delivered %d != switch rx %d", upDelivered, res.Total.RxPackets)
	}
	if downOffered != res.Total.TxPackets {
		t.Errorf("down-link offered %d != switch tx %d", downOffered, res.Total.TxPackets)
	}
}

// TestLossSweepCompletes: the headline robustness property. At 0.1%,
// 1%, and 10% i.i.d. loss every issued query completes, the switch
// books balance to zero, and the link/switch packet budgets agree
// exactly.
func TestLossSweepCompletes(t *testing.T) {
	for _, loss := range []float64{0.001, 0.01, 0.1} {
		spec := lossSpec(loss)
		budget := int64(spec.Workloads[0].Queries)
		res := MustRun(spec)
		ws := res.Workloads[0]
		if ws.Launched == 0 {
			t.Fatalf("loss %v: no queries launched", loss)
		}
		// Queries issue on an interval until the horizon and the run ends
		// once the budget is answered, so late-issued queries may still be
		// in flight at stop; survival means the budget completed before
		// the straggler deadline.
		if ws.Done < budget {
			t.Errorf("loss %v: %d of %d budgeted queries completed — transport did not survive",
				loss, ws.Done, budget)
		}
		if ws.Done > ws.Launched {
			t.Errorf("loss %v: done %d exceeds launched %d", loss, ws.Done, ws.Launched)
		}
		if ws.Timeouts < 0 {
			t.Errorf("loss %v: negative timeout count %d", loss, ws.Timeouts)
		}
		if res.DeliveredBytes() == 0 {
			t.Errorf("loss %v: nothing delivered", loss)
		}
		if drift := res.AccountingDrift(); drift != 0 {
			t.Errorf("loss %v: switch accounting drift %d", loss, drift)
		}
		if len(res.FaultLinks) == 0 {
			t.Fatalf("loss %v: no fault telemetry recorded", loss)
		}
		tot := res.LinkFaultTotals()
		if loss >= 0.01 && tot.Dropped == 0 {
			t.Errorf("loss %v: injector dropped nothing over %d offered packets", loss, tot.Offered)
		}
		checkLinkConservation(t, res)
		checkCrossLayerAccounting(t, res)
	}
}

// TestDuplicationAndReorderComplete: the same completion + accounting
// gate for the non-loss fault modes, straight from the catalog entries
// that exercise them.
func TestDuplicationAndReorderComplete(t *testing.T) {
	for _, name := range []string{"duplicate-storm", "jittery-allreduce"} {
		sc, ok := Get(name)
		if !ok {
			t.Fatalf("scenario %q not registered", name)
		}
		res := MustRun(sc.SpecAt(ScaleQuick))
		if res.DeliveredBytes() == 0 {
			t.Errorf("%s: nothing delivered", name)
		}
		if drift := res.AccountingDrift(); drift != 0 {
			t.Errorf("%s: switch accounting drift %d", name, drift)
		}
		tot := res.LinkFaultTotals()
		if tot.Offered == 0 {
			t.Errorf("%s: fault plan saw no traffic", name)
		}
		switch name {
		case "duplicate-storm":
			if tot.Duplicated == 0 {
				t.Errorf("%s: no duplicates minted", name)
			}
			if tot.Dropped != 0 {
				t.Errorf("%s: %d drops on a zero-loss profile", name, tot.Dropped)
			}
			// Gated: queries must complete despite the duplicate storm.
			for _, ws := range res.Workloads {
				if ws.Kind == WLIncast && ws.Done == 0 {
					t.Errorf("%s: no queries completed (%d launched)", name, ws.Launched)
				}
			}
		case "jittery-allreduce":
			if tot.Held == 0 {
				t.Errorf("%s: reordering profile held nothing", name)
			}
		}
		checkLinkConservation(t, res)
	}
}

// TestFaultTableBalances: the rendered fault table carries a total row
// and per-row conservation (the run has drained, so in-flight is the
// only slack and must be zero or show up as offered-minus-delivered).
func TestFaultTableBalances(t *testing.T) {
	res := MustRun(lossSpec(0.02))
	tab := res.FaultTable()
	if len(tab.Rows) < 2 {
		t.Fatalf("fault table has %d rows, want per-link rows plus total", len(tab.Rows))
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "total" {
		t.Errorf("last fault-table row is %q, want total", last[0])
	}
	if got, want := len(tab.Columns), 8; got != want {
		t.Errorf("fault table has %d columns, want %d", got, want)
	}
}

// TestFaultColumnsInSummary: specs with a faults block grow the
// link_drops/link_dups/link_reorders summary columns.
func TestFaultColumnsInSummary(t *testing.T) {
	res := MustRun(lossSpec(0.05))
	tab := Summarize("x", "x", []string{"p"}, []*Result{res}, metricsOf(res.Spec))
	header := strings.Join(tab.Columns, " ")
	for _, col := range []string{"link_drops", "link_dups", "link_reorders"} {
		if !strings.Contains(header, col) {
			t.Errorf("summary columns %v missing %s", tab.Columns, col)
		}
	}
}

// TestFlakyTorIncastDeterministic: same spec, same seed ⇒ byte-identical
// tables AND byte-identical exported result documents, fault counters
// included.
func TestFlakyTorIncastDeterministic(t *testing.T) {
	sc, ok := Get("flaky-tor-incast")
	if !ok {
		t.Fatal("flaky-tor-incast not registered")
	}
	spec := sc.SpecAt(ScaleQuick)
	a := MustRun(spec)
	b := MustRun(spec)
	ra := render([]*Table{a.Table(), a.TailTable(), a.PerSwitchTable(), a.FaultTable()})
	rb := render([]*Table{b.Table(), b.TailTable(), b.PerSwitchTable(), b.FaultTable()})
	if ra != rb {
		t.Errorf("same spec, different tables:\n--- first\n%s--- second\n%s", ra, rb)
	}
	ja, err := a.EncodeJSON(true)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.EncodeJSON(true)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Error("same spec, different exported result documents")
	}
}

// TestFaultSweepParallelismInvariant: a sweep over a fault field must
// produce the identical summary table at -j 1 and -j 4 — per-link RNG
// streams are seeded by link name, never by wiring or scheduling order.
func TestFaultSweepParallelismInvariant(t *testing.T) {
	sc, ok := Get("flaky-tor-incast")
	if !ok {
		t.Fatal("flaky-tor-incast not registered")
	}
	spec := sc.SpecAt(ScaleQuick)
	axes := []SweepAxis{{Path: "faults.host-leaf.loss_prob", Values: []string{"0.005", "0.02"}}}
	defer experiments.SetParallelism(0)
	experiments.SetParallelism(1)
	seq, err := RunSweep(spec, axes)
	if err != nil {
		t.Fatal(err)
	}
	experiments.SetParallelism(4)
	par, err := RunSweep(spec, axes)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := render([]*Table{seq}), render([]*Table{par}); a != b {
		t.Errorf("sweep output depends on -j:\n--- j=1\n%s--- j=4\n%s", a, b)
	}
}

// TestFaultSweepAllocatesBlock: sweeping a fault path over a spec whose
// base has no faults block allocates it per grid point — and a nonzero
// loss point must actually drop packets while the zero point stays
// ideal.
func TestFaultSweepAllocatesBlock(t *testing.T) {
	base := lossSpec(0)
	base.Faults = nil
	specs, _, err := Expand(base, []SweepAxis{{Path: "faults.host-leaf.loss_prob", Values: []string{"0", "0.05"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("expanded to %d specs, want 2", len(specs))
	}
	if base.Faults != nil {
		t.Error("Expand mutated the base spec's faults block")
	}
	clean := MustRun(specs[0])
	lossy := MustRun(specs[1])
	if tot := clean.LinkFaultTotals(); tot.Dropped != 0 {
		t.Errorf("loss_prob=0 point dropped %d packets", tot.Dropped)
	}
	if tot := lossy.LinkFaultTotals(); tot.Dropped == 0 {
		t.Error("loss_prob=0.05 point dropped nothing")
	}
}
