package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"occamy/internal/experiments"
	"occamy/internal/metrics"
	"occamy/internal/sim"
	"occamy/internal/switchsim"
	"occamy/internal/trace"
)

// Results as data
//
// Specs became files in PR 3; this file does the same for results, so a
// run's output can leave the process — served over HTTP by
// internal/service, cached by content address, dumped by the CLI
// (`occamy-scenario run -json`) — without losing anything the text
// tables render. The encoding is canonical: field order is fixed by the
// struct definitions, durations use the exact-round-trip string form of
// sim.Duration, and encoding/json is deterministic, so the same Result
// always marshals to the same bytes (the cache-identity tests pin it).

// Version identifies the result-affecting revision of the simulation
// code. It is folded into every spec fingerprint, so a persisted result
// cache can never serve bytes computed by an older simulator as if they
// were current — bump it whenever simulation behavior changes.
const Version = "6"

// ResultSchemaVersion is the JSON result document schema, carried in
// every document so readers can detect incompatible encodings.
const ResultSchemaVersion = 1

// Fingerprint returns the spec's content address: a sha256 over the
// canonical JSON bytes of the scale- and default-resolved spec, domain-
// separated by Version. PR 3's canonicalization (fixed field order,
// sorted map keys, exact duration strings) guarantees equal specs hash
// equal even when written differently — a spec that spells out a
// default and one that omits it resolve to the same bytes. Every RNG in
// a run is seeded from the spec, so the fingerprint addresses the
// result, not just the input.
func (s Spec) Fingerprint() (string, error) {
	resolved := s.ApplyScale().WithDefaults()
	data, err := json.Marshal(resolved)
	if err != nil {
		return "", fmt.Errorf("scenario: fingerprinting spec %q: %w", s.Name, err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "occamy/result/v%s/schema%d\n", Version, ResultSchemaVersion)
	h.Write(data)
	return "sha256:" + hex.EncodeToString(h.Sum(nil)), nil
}

// TableDoc is a rendered table in JSON form (summary rows, sweep grids).
type TableDoc struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// NewTableDoc converts a rendered table.
func NewTableDoc(t *experiments.Table) TableDoc {
	return TableDoc{ID: t.ID, Title: t.Title, Columns: t.Columns, Rows: t.Rows}
}

// Encode marshals the table compactly with a trailing newline — the
// canonical sweep-result bytes served by the service and the fleet
// router (their byte-identity contract shares this one encoder).
func (d *TableDoc) Encode() ([]byte, error) {
	data, err := json.Marshal(d)
	if err != nil {
		return nil, fmt.Errorf("scenario: marshaling table %q: %w", d.ID, err)
	}
	return append(data, '\n'), nil
}

// TailRowDoc is one tail-table line: a labeled sample population with
// its completion-time and slowdown quantiles (at Quantiles positions).
type TailRowDoc struct {
	Label    string         `json:"label"`
	Count    int            `json:"count"`
	FCT      []sim.Duration `json:"fct,omitempty"`
	Slowdown []float64      `json:"slowdown,omitempty"`
}

// WorkloadDoc is one workload's run output.
type WorkloadDoc struct {
	Kind     string `json:"kind"`
	Label    string `json:"label"`
	Launched int64  `json:"launched"`
	Done     int64  `json:"done,omitempty"`
	Timeouts int64  `json:"timeouts,omitempty"`
	// Raw-injection accounting (cbr/burst workloads only).
	SentPackets int64 `json:"sent_packets,omitempty"`
	SentBytes   int64 `json:"sent_bytes,omitempty"`
	Drops       int64 `json:"drops,omitempty"`
	// Completions is the number of FCT/QCT samples collected; Tails the
	// quantile breakdown (an "all" row plus one per flow-size bucket).
	Completions int          `json:"completions"`
	Tails       []TailRowDoc `json:"tails,omitempty"`
}

// StatsDoc mirrors switchsim.Stats with a stable JSON schema.
type StatsDoc struct {
	RxPackets      int64 `json:"rx_packets"`
	TxPackets      int64 `json:"tx_packets"`
	TxBytes        int64 `json:"tx_bytes"`
	DropsAdmission int64 `json:"drops_admission"`
	DropsNoMemory  int64 `json:"drops_nomem"`
	DropsExpelled  int64 `json:"drops_expelled"`
	ECNMarked      int64 `json:"ecn_marked"`
}

func newStatsDoc(s switchsim.Stats) StatsDoc {
	return StatsDoc{
		RxPackets: s.RxPackets, TxPackets: s.TxPackets, TxBytes: s.TxBytes,
		DropsAdmission: s.DropsAdmission, DropsNoMemory: s.DropsNoMemory,
		DropsExpelled: s.DropsExpelled, ECNMarked: s.ECNMarked,
	}
}

// PortDoc is one egress port's counters and sampled occupancy extremes.
type PortDoc struct {
	TxPackets      int64   `json:"tx_packets"`
	TxBytes        int64   `json:"tx_bytes"`
	DropsAdmission int64   `json:"drops_admission,omitempty"`
	DropsNoMemory  int64   `json:"drops_nomem,omitempty"`
	DropsExpelled  int64   `json:"drops_expelled,omitempty"`
	ECNMarked      int64   `json:"ecn_marked,omitempty"`
	PeakBytes      int     `json:"peak_bytes"`
	MeanBytes      float64 `json:"mean_bytes"`
}

// QueueDoc is one (port, class) queue's counters and sampled dynamics.
type QueueDoc struct {
	Port           int     `json:"port"`
	Class          int     `json:"class"`
	TxPackets      int64   `json:"tx_packets"`
	TxBytes        int64   `json:"tx_bytes"`
	DropsAdmission int64   `json:"drops_admission,omitempty"`
	DropsNoMemory  int64   `json:"drops_nomem,omitempty"`
	DropsExpelled  int64   `json:"drops_expelled,omitempty"`
	ECNMarked      int64   `json:"ecn_marked,omitempty"`
	PeakBytes      int     `json:"peak_bytes"`
	MeanBytes      float64 `json:"mean_bytes"`
	// MinThresholdHeadroom is the smallest sampled gap between the
	// admission threshold (capacity-clamped) and the queue length, in
	// bytes; negative while the queue sat over its threshold.
	MinThresholdHeadroom int `json:"min_thr_headroom_bytes"`
}

// SwitchDoc is one switch's stats and telemetry summary.
type SwitchDoc struct {
	Name      string     `json:"name"`
	Classes   int        `json:"classes"`
	Stats     StatsDoc   `json:"stats"`
	Buffered  int        `json:"buffered_packets"`
	PeakBytes int        `json:"peak_bytes"`
	MeanBytes float64    `json:"mean_bytes"`
	Ports     []PortDoc  `json:"ports"`
	Queues    []QueueDoc `json:"queues"`
}

// SeriesDoc is one named occupancy time series.
type SeriesDoc struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// QueueSeriesDoc is one queue's occupancy series with the admission
// threshold and cumulative ECN-mark counter sampled at the same
// instants (the Fig 3/11 overlay pair plus the marking dynamics).
type QueueSeriesDoc struct {
	Name      string    `json:"name"`
	Occupancy []float64 `json:"occupancy"`
	Threshold []float64 `json:"threshold"`
	ECN       []float64 `json:"ecn,omitempty"`
}

// FaultLinkDoc is one faulted link's injection counters.
type FaultLinkDoc struct {
	Name       string `json:"name"`
	Class      string `json:"class"`
	Offered    int64  `json:"offered"`
	Delivered  int64  `json:"delivered"`
	Dropped    int64  `json:"dropped,omitempty"`
	Duplicated int64  `json:"duplicated,omitempty"`
	Held       int64  `json:"held,omitempty"`
	Reordered  int64  `json:"reordered,omitempty"`
}

// TraceDoc carries the aligned occupancy time series of a run: sampling
// period and instants, one whole-switch series per switch, and one
// occupancy/threshold pair per (port, class) queue.
type TraceDoc struct {
	SampleEvery sim.Duration     `json:"sample_every"`
	Times       []sim.Time       `json:"times"`
	Switches    []SeriesDoc      `json:"switches"`
	Queues      []QueueSeriesDoc `json:"queues"`
}

// ResultDoc is the complete JSON encoding of a scenario run: everything
// the text tables render (summary row, tail quantiles, per-switch /
// per-port / per-queue telemetry) plus the trace series, keyed by the
// spec that produced it.
type ResultDoc struct {
	Schema      int    `json:"schema"`
	Name        string `json:"name"`
	Title       string `json:"title,omitempty"`
	Fingerprint string `json:"fingerprint"`
	// Spec is the scale- and default-resolved spec the run executed —
	// the fingerprint preimage, not necessarily the bytes submitted.
	Spec Spec `json:"spec"`
	// Summary is the rendered metric row (the CLI summary table).
	Summary   TableDoc      `json:"summary"`
	Workloads []WorkloadDoc `json:"workloads"`
	Total     StatsDoc      `json:"total"`
	Switches  []SwitchDoc   `json:"switches"`
	// BufferBytes is the per-switch capacity; MaxOccupancy the sampled
	// whole-run peak; Events the simulator events executed.
	BufferBytes  int    `json:"buffer_bytes"`
	MaxOccupancy int    `json:"max_occupancy"`
	Events       uint64 `json:"events"`
	// Faults holds the per-link fault-injection counters of a degraded-
	// link run, in wiring order; absent on ideal-link runs.
	Faults []FaultLinkDoc `json:"faults,omitempty"`
	Trace  *TraceDoc      `json:"trace,omitempty"`
}

// Doc distills the result into its JSON document form. withTrace
// controls whether the (large) time-series section is included; the
// summary, tails, and per-switch/per-queue aggregates always are.
func (r *Result) Doc(withTrace bool) (*ResultDoc, error) {
	fp, err := r.Spec.Fingerprint()
	if err != nil {
		return nil, err
	}
	doc := &ResultDoc{
		Schema:       ResultSchemaVersion,
		Name:         r.Spec.Name,
		Title:        r.Spec.Title,
		Fingerprint:  fp,
		Spec:         r.Spec.ApplyScale().WithDefaults(),
		Summary:      NewTableDoc(r.Table()),
		Total:        newStatsDoc(r.Total),
		BufferBytes:  r.BufferBytes,
		MaxOccupancy: r.MaxOccupancy,
		Events:       r.Events,
	}
	for i := range r.Workloads {
		ws := &r.Workloads[i]
		wd := WorkloadDoc{
			Kind: ws.Kind, Label: ws.Label,
			Launched: ws.Launched, Done: ws.Done, Timeouts: ws.Timeouts,
			SentPackets: ws.SentPackets, SentBytes: ws.SentBytes, Drops: ws.Drops,
			Completions: ws.Col.Count(),
		}
		if ws.Kind != WLCBR && ws.Kind != WLBurst {
			for _, row := range ws.Col.TailRows(metrics.DefaultSizeBuckets, metrics.TailQuantiles) {
				td := TailRowDoc{Label: row.Label, Count: row.Count}
				if row.Count > 0 {
					td.FCT, td.Slowdown = row.FCT, row.Slowdown
				}
				wd.Tails = append(wd.Tails, td)
			}
		}
		doc.Workloads = append(doc.Workloads, wd)
	}
	for i := range r.Telemetry {
		tel := &r.Telemetry[i]
		sd := SwitchDoc{
			Name:      tel.Name,
			Classes:   tel.Classes,
			Stats:     newStatsDoc(r.PerSwitch[i]),
			Buffered:  r.Buffered[i],
			PeakBytes: tel.PeakOcc,
			MeanBytes: tel.MeanOcc,
		}
		for p, ps := range tel.Ports {
			sd.Ports = append(sd.Ports, PortDoc{
				TxPackets: ps.TxPackets, TxBytes: ps.TxBytes,
				DropsAdmission: ps.DropsAdmission, DropsNoMemory: ps.DropsNoMemory,
				DropsExpelled: ps.DropsExpelled, ECNMarked: ps.ECNMarked,
				PeakBytes: tel.PortPeak[p], MeanBytes: tel.PortMean[p],
			})
		}
		for q := range tel.Queues {
			qt := &tel.Queues[q]
			sd.Queues = append(sd.Queues, QueueDoc{
				Port: qt.Port, Class: qt.Class,
				TxPackets: qt.Stats.TxPackets, TxBytes: qt.Stats.TxBytes,
				DropsAdmission: qt.Stats.DropsAdmission, DropsNoMemory: qt.Stats.DropsNoMemory,
				DropsExpelled: qt.Stats.DropsExpelled, ECNMarked: qt.Stats.ECNMarked,
				PeakBytes: qt.Peak, MeanBytes: qt.Mean, MinThresholdHeadroom: qt.MinHeadroom,
			})
		}
		doc.Switches = append(doc.Switches, sd)
	}
	for _, l := range r.FaultLinks {
		doc.Faults = append(doc.Faults, FaultLinkDoc{
			Name: l.Name, Class: l.Class.String(),
			Offered: l.Offered, Delivered: l.Delivered, Dropped: l.Dropped,
			Duplicated: l.Duplicated, Held: l.Held, Reordered: l.Reordered,
		})
	}
	if withTrace && len(r.SampleTimes) > 0 {
		td := &TraceDoc{SampleEvery: r.SampleEvery, Times: r.SampleTimes}
		for i := range r.Telemetry {
			tel := &r.Telemetry[i]
			td.Switches = append(td.Switches, SeriesDoc{Name: tel.Name, Values: tel.Series})
			for q := range tel.Queues {
				qt := &tel.Queues[q]
				td.Queues = append(td.Queues, QueueSeriesDoc{
					Name: tel.Name + ":" + qt.Label(), Occupancy: qt.Series,
					Threshold: qt.Threshold, ECN: qt.ECNMarks,
				})
			}
		}
		doc.Trace = td
	}
	return doc, nil
}

// EncodeJSON marshals the result document in its canonical compact
// form: deterministic bytes for a deterministic run, so content-
// addressed caches can compare results byte-for-byte.
func (r *Result) EncodeJSON(withTrace bool) ([]byte, error) {
	doc, err := r.Doc(withTrace)
	if err != nil {
		return nil, err
	}
	return doc.Encode()
}

// Encode marshals the document compactly with a trailing newline.
func (d *ResultDoc) Encode() ([]byte, error) {
	data, err := json.Marshal(d)
	if err != nil {
		return nil, fmt.Errorf("scenario: marshaling result %q: %w", d.Name, err)
	}
	return append(data, '\n'), nil
}

// DecodeResultDoc parses a result document, rejecting unknown fields
// and foreign schema versions (the strictness mirror of ParseSpec).
func DecodeResultDoc(data []byte) (*ResultDoc, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var d ResultDoc
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("scenario: parsing result document: %w", err)
	}
	if d.Schema != ResultSchemaVersion {
		return nil, fmt.Errorf("scenario: result document has schema %d, this build reads %d", d.Schema, ResultSchemaVersion)
	}
	return &d, nil
}

// HasTrace reports whether the document carries an occupancy trace —
// the check an HTTP handler must make before committing to a 200
// text/csv response, so "no trace" can be a clean 404 instead of an
// error blob appended to an already-started CSV body.
func (d *ResultDoc) HasTrace() bool {
	return d.Trace != nil && len(d.Trace.Times) > 0
}

// WriteTraceCSV renders the document's trace section in the same CSV
// shape as Result.WriteTraceCSV: one whole-switch occupancy column per
// switch, then an occupancy/threshold column pair per queue. stride
// keeps every stride-th sample (<=1 keeps all). Errors when the
// document carries no trace.
func (d *ResultDoc) WriteTraceCSV(w io.Writer, stride int) error {
	if !d.HasTrace() {
		return fmt.Errorf("scenario %q: result document carries no trace", d.Name)
	}
	times := make([]float64, len(d.Trace.Times))
	for i, t := range d.Trace.Times {
		times[i] = t.Seconds()
	}
	series := make([]trace.Series, 0, len(d.Trace.Switches)+3*len(d.Trace.Queues))
	for _, s := range d.Trace.Switches {
		series = append(series, trace.Series{Name: s.Name, Values: s.Values})
	}
	for _, q := range d.Trace.Queues {
		series = append(series,
			trace.Series{Name: q.Name, Values: q.Occupancy},
			trace.Series{Name: q.Name + ":thr", Values: q.Threshold})
		if len(q.ECN) > 0 {
			series = append(series, trace.Series{Name: q.Name + ":ecn", Values: q.ECN})
		}
	}
	times, series = strideSeries(times, series, stride)
	return trace.WriteCSV(w, times, series)
}
