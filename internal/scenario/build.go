package scenario

import (
	"errors"
	"fmt"

	"occamy/internal/bm"
	"occamy/internal/core"
	"occamy/internal/experiments"
	"occamy/internal/linkfault"
	"occamy/internal/metrics"
	"occamy/internal/netsim"
	"occamy/internal/pkt"
	"occamy/internal/sim"
	"occamy/internal/switchsim"
	"occamy/internal/transport"
	"occamy/internal/workload"
)

// WorkloadStats carries per-workload run output.
type WorkloadStats struct {
	Kind  string
	Label string
	// Col holds completion samples (FCTs/QCTs with slowdowns).
	Col metrics.Collector
	// Launched counts flows/queries/rounds started; Done counts gated
	// incast queries fully answered; Timeouts counts RTOs (incast only).
	Launched int64
	Done     int64
	Timeouts int64
	// SentPackets/SentBytes/Drops account raw injection traffic.
	SentPackets int64
	SentBytes   int64
	Drops       int64
}

// Result is one scenario run's output.
type Result struct {
	Spec      Spec
	Workloads []WorkloadStats
	// PerSwitch / Buffered / Occupancy snapshot each switch at stop time.
	PerSwitch []switchsim.Stats
	Buffered  []int
	Occupancy []int
	// Total aggregates PerSwitch.
	Total switchsim.Stats
	// Telemetry is the recorded occupancy dynamics, one entry per switch
	// in PerSwitch order (see telemetry.go).
	Telemetry []SwitchTelemetry
	// SampleEvery is the occupancy sampling period of the run;
	// SampleTimes the actual sample timestamps (shared by every switch —
	// one aligned sampler drives all recorders).
	SampleEvery sim.Duration
	SampleTimes []sim.Time
	// MaxOccupancy is the peak buffered byte count across switches
	// (periodic sampling); BufferBytes the per-switch capacity.
	MaxOccupancy int
	BufferBytes  int
	// FaultLinks holds the per-link fault-injection counters in wiring
	// order; nil when the spec enabled no fault profile.
	FaultLinks []linkfault.LinkStats
	// Events is the number of simulator events executed.
	Events uint64
}

// AccountingDrift returns the packet-conservation residue summed over
// all switches: received minus transmitted, dropped, expelled, and still
// buffered. Any healthy run reports exactly zero.
func (r *Result) AccountingDrift() int64 {
	var drift int64
	for i, st := range r.PerSwitch {
		drift += st.RxPackets - st.TxPackets - st.Drops() - st.DropsExpelled - int64(r.Buffered[i])
	}
	return drift
}

// DeliveredBytes returns the bytes transmitted by all switches.
func (r *Result) DeliveredBytes() int64 { return r.Total.TxBytes }

// distFor resolves a workload's flow-size distribution.
func distFor(w Workload) (*workload.CDF, error) {
	switch w.Dist {
	case "", "websearch":
		return workload.WebSearch(), nil
	case "cache":
		return workload.CacheFollower(), nil
	case "uniform":
		if w.FlowSize <= 0 {
			return nil, fmt.Errorf("dist \"uniform\" needs FlowSize > 0")
		}
		return workload.Uniform(w.FlowSize), nil
	}
	return nil, fmt.Errorf("unknown dist %q (websearch|cache|uniform)", w.Dist)
}

// ccFor resolves a workload's congestion controller; nil means the
// netsim default (DCTCP).
func ccFor(w Workload) (func(mss, segs int) transport.CC, error) {
	switch w.CC {
	case "", "dctcp":
		return nil, nil
	case "cubic":
		return func(mss, segs int) transport.CC { return transport.NewCubic(mss, segs) }, nil
	case "reno":
		return func(mss, segs int) transport.CC { return transport.NewReno(mss, segs) }, nil
	}
	return nil, fmt.Errorf("unknown cc %q (dctcp|cubic|reno)", w.CC)
}

// wireClocks connects clock-dependent policies to the engine: EDT gets
// the virtual clock, TDT a periodic per-queue observer.
func wireClocks(sw *switchsim.Switch, eng *sim.Engine) *sim.Ticker {
	switch p := sw.Policy().(type) {
	case *bm.EDT:
		p.Clock = func() int64 { return int64(eng.Now()) }
	case *bm.TDT:
		return eng.Every(0, experiments.TDTObserverPeriod, func() {
			for q := 0; q < sw.NumQueues(); q++ {
				p.Observe(sw, q)
			}
		})
	}
	return nil
}

// ErrCanceled is returned by RunWithCancel when the cancel check fired
// before the run completed.
var ErrCanceled = errors.New("scenario: run canceled")

// Run assembles and executes one scenario. The spec's Scale preset is
// applied first (quick/paper transform), then defaults and validation.
func Run(spec Spec) (*Result, error) {
	return RunWithCancel(spec, nil)
}

// RunWithCancel is Run with a cooperative cancel check: the engine
// steps in bounded chunks of virtual time and polls canceled between
// chunks, returning ErrCanceled (and discarding the partial run) when
// it reports true. A nil canceled never cancels. The job queue in
// internal/service uses it to abort running jobs without a way to
// interrupt the discrete-event engine mid-chunk.
func RunWithCancel(spec Spec, canceled func() bool) (*Result, error) {
	return RunWithProgress(spec, canceled, nil)
}

// MustRun is Run for specs known valid (registered catalog entries).
func MustRun(spec Spec) *Result {
	r, err := Run(spec)
	if err != nil {
		panic(err)
	}
	return r
}

// buildNetwork assembles the topology with per-switch fresh policies.
func buildNetwork(spec Spec) (*netsim.Network, []*sim.Ticker) {
	t := spec.Topology
	sched, _ := t.schedKind()
	mkPolicy := func() (bm.Policy, *core.Config) {
		p, occ, err := spec.Policy.Build(t.Classes)
		if err != nil {
			panic(err) // Validate already vetted the kind
		}
		return p, occ
	}
	// Policy/Occamy left zero here: the single-switch branch fills them
	// in once, the leaf-spine branch hands netsim the Make hooks so every
	// switch gets its own fresh instance (stateful EDT/TDT maps must not
	// be shared across switches).
	baseCfg := switchsim.Config{
		ClassesPerPort:    t.Classes,
		BufferBytes:       t.BufferSize(),
		CellBytes:         t.CellBytes,
		ECNThresholdBytes: t.ECNThresholdBytes,
		Scheduler:         sched,
		DRRQuantum:        t.DRRQuantum,
	}

	faults := spec.Faults.config(spec.Seed)
	var net *netsim.Network
	switch t.Kind {
	case LeafSpine:
		rates := map[int]float64{}
		for id := range t.DegradedPorts {
			rates[id] = t.hostRate(id)
		}
		net = netsim.LeafSpine(netsim.LeafSpineConfig{
			Spines: t.Spines, Leaves: t.Leaves, HostsPerLeaf: t.HostsPerLeaf,
			HostLinkBps: t.LinkBps, SpineLinkBps: t.SpineLinkBps,
			LinkDelay:       t.LinkDelay,
			LeafSwitch:      baseCfg,
			SpineSwitch:     baseCfg,
			HostRates:       rates,
			MakeLeafPolicy:  mkPolicy,
			MakeSpinePolicy: mkPolicy,
			Faults:          faults,
			Seed:            spec.Seed,
		})
	default:
		rates := make([]float64, t.Hosts)
		for i := range rates {
			rates[i] = t.hostRate(i)
		}
		scfg := baseCfg
		scfg.Policy, scfg.Occamy = mkPolicy()
		net = netsim.SingleSwitch(netsim.SingleSwitchConfig{
			HostRates: rates,
			LinkDelay: t.LinkDelay,
			Switch:    scfg,
			Faults:    faults,
			Seed:      spec.Seed,
		})
	}
	var tickers []*sim.Ticker
	for _, sw := range net.Switches {
		if tk := wireClocks(sw, net.Eng); tk != nil {
			tickers = append(tickers, tk)
		}
	}
	return net, tickers
}

// oneWayBase returns the base one-way latency used as the slowdown
// denominator (matching the experiments harnesses).
func oneWayBase(t Topology) sim.Duration {
	if t.Kind == LeafSpine {
		ser := sim.Duration(float64(pkt.MTU*8) / t.LinkBps * float64(sim.Second))
		return 4*t.LinkDelay + 4*ser
	}
	return 2 * t.LinkDelay
}

// startStop is a started workload's control surface.
type startStop struct {
	stop     func()
	timeouts func() int64
	launched func() int64
	done     func() int64
}

// phases slices [0, horizon) into the workload's on-windows.
func phases(w Workload, horizon sim.Duration) [][2]sim.Time {
	if w.OnTime <= 0 {
		return [][2]sim.Time{{0, sim.Time(horizon)}}
	}
	var out [][2]sim.Time
	period := w.OnTime + w.OffTime
	for t := sim.Duration(0); t < horizon; t += period {
		end := t + w.OnTime
		if end > horizon {
			end = horizon
		}
		out = append(out, [2]sim.Time{sim.Time(t), sim.Time(end)})
	}
	return out
}

// startRounds launches one generator instance per on-phase. mk builds a
// fresh instance returning its Start and a rounds counter. The phase
// windows are half-open [start, end) while the generators' until is
// inclusive, so the end is pulled back one virtual nanosecond — without
// it a round interval dividing OnTime exactly would fire a round inside
// the off window.
func startRounds(w Workload, horizon sim.Duration,
	mk func() (start func(from, until sim.Time), stop func(), rounds func() int64)) startStop {
	var stops []func()
	var counts []func() int64
	for _, ph := range phases(w, horizon) {
		start, stop, rounds := mk()
		start(ph[0], ph[1]-1)
		stops = append(stops, stop)
		counts = append(counts, rounds)
	}
	return startStop{
		stop: func() {
			for _, s := range stops {
				s()
			}
		},
		launched: func() int64 {
			var n int64
			for _, c := range counts {
				n += c()
			}
			return n
		},
	}
}

// runTransport executes a spec whose workloads ride the transport stack.
func runTransport(spec Spec, canceled func() bool, progress ProgressFunc) (*Result, error) {
	net, tickers := buildNetwork(spec)
	res := &Result{
		Spec:        spec,
		Workloads:   make([]WorkloadStats, len(spec.Workloads)),
		BufferBytes: spec.Topology.BufferSize(),
	}
	oneWay := oneWayBase(spec.Topology)
	nHosts := spec.Topology.NumHosts()
	allHosts := make([]pkt.NodeID, nHosts)
	for i := range allHosts {
		allHosts[i] = pkt.NodeID(i)
	}

	gate := spec.gatingIncast()
	gateClient := -1
	if gate >= 0 {
		gateClient = spec.Workloads[gate].Client
	}
	horizon := spec.Warmup + spec.Duration

	running := make([]startStop, len(spec.Workloads))
	for i := range spec.Workloads {
		w := spec.Workloads[i]
		ws := &res.Workloads[i]
		ws.Kind, ws.Label = w.Kind, w.label(i)
		col := &ws.Col
		newCC, _ := ccFor(w)
		opts := transport.Options{DupThresh: w.DupThresh}

		// Host set: exclude the gating incast client on request.
		hosts := allHosts
		if w.ExcludeClient && gateClient >= 0 {
			hosts = nil
			for _, h := range allHosts {
				if int(h) != gateClient {
					hosts = append(hosts, h)
				}
			}
		}

		switch w.Kind {
		case WLBackground:
			dist, _ := distFor(w)
			running[i] = startRounds(w, horizon, func() (func(from, until sim.Time), func(), func() int64) {
				bg := &workload.Background{
					Net: net, Hosts: hosts, Load: w.Load, LinkBps: spec.Topology.LinkBps,
					Dist: dist, Priority: w.Priority, ECN: true, NewCC: newCC, Opts: opts,
					Collector: col, OneWayBase: oneWay,
				}
				return bg.Start, bg.Stop, bg.Started
			})
		case WLPermutation:
			running[i] = startRounds(w, horizon, func() (func(from, until sim.Time), func(), func() int64) {
				g := &workload.Permutation{
					Net: net, Hosts: hosts, FlowSize: w.FlowSize, Load: w.Load,
					LinkBps: spec.Topology.LinkBps, Stride: w.Stride, RotateStride: w.RotateStride,
					Priority: w.Priority, ECN: true, NewCC: newCC, Opts: opts,
					Collector: col, OneWayBase: oneWay,
				}
				return g.Start, g.Stop, g.Rounds
			})
		case WLAllToAll:
			running[i] = startRounds(w, horizon, func() (func(from, until sim.Time), func(), func() int64) {
				g := &workload.AllToAll{
					Net: net, Hosts: hosts, FlowSize: w.FlowSize, Load: w.Load,
					LinkBps:  spec.Topology.LinkBps,
					Priority: w.Priority, ECN: true, NewCC: newCC, Opts: opts,
					Collector: col, OneWayBase: oneWay,
				}
				return g.Start, g.Stop, g.Rounds
			})
		case WLAllReduce:
			running[i] = startRounds(w, horizon, func() (func(from, until sim.Time), func(), func() int64) {
				g := &workload.AllReduce{
					Net: net, Hosts: hosts, FlowSize: w.FlowSize, Load: w.Load,
					LinkBps:  spec.Topology.LinkBps,
					Priority: w.Priority, ECN: true, NewCC: newCC, Opts: opts,
					Collector: col, OneWayBase: oneWay,
				}
				return g.Start, g.Stop, g.Rounds
			})
		case WLLongLived:
			// Persistent flows from the last hosts toward the client port,
			// alternating over the final two hosts (the Fig 6 companions).
			dst := pkt.NodeID(0)
			if w.Client > 0 {
				dst = pkt.NodeID(w.Client)
			}
			for f := 0; f < w.Count; f++ {
				src := allHosts[nHosts-1-f%2]
				if src == dst {
					src = allHosts[(int(dst)+1)%nHosts]
				}
				net.StartFlow(0, src, dst, 1<<40, netsim.FlowOptions{
					Priority: w.Priority, ECN: true, NewCC: newCC, Transport: opts,
				})
			}
			count := int64(w.Count)
			running[i] = startStop{launched: func() int64 { return count }}
		case WLIncast:
			q := &workload.Incast{
				Net: net, Fanout: w.Fanout, QuerySize: w.QuerySize,
				QPS: w.QPS, Interval: w.Interval,
				Priority: w.Priority, ECN: true, NewCC: newCC, Opts: opts,
				Collector: col, LinkBps: spec.Topology.LinkBps, OneWayBase: oneWay,
			}
			if w.Client < 0 {
				q.RandomClient = true
				q.Servers = allHosts
			} else {
				q.Client = pkt.NodeID(w.Client)
				nServers := nHosts - 1
				if w.Servers > 0 && w.Servers < nServers {
					nServers = w.Servers
				}
				for _, h := range allHosts {
					if int(h) != w.Client {
						q.Servers = append(q.Servers, h)
					}
					if len(q.Servers) == nServers {
						break
					}
				}
			}
			if q.Interval == 0 && q.QPS == 0 {
				// Sparse queries: leave headroom so a congested query still
				// finishes before the next (the §6.2 1% query load).
				unloaded := workload.IdealFCT(w.QuerySize, spec.Topology.LinkBps, oneWay)
				q.Interval = 10 * unloaded
				if q.Interval < 4*sim.Millisecond {
					q.Interval = 4 * sim.Millisecond
				}
			}
			q.Start(spec.Warmup, horizon)
			running[i] = startStop{
				stop:     q.Stop,
				timeouts: q.Timeouts,
				launched: q.Queries,
				done:     q.Done,
			}
		}
	}

	// Occupancy recording across all switches: one aligned sampler
	// drives every recorder, so fabric traces share timestamps.
	recs := newRecorders(net.Switches)
	res.SampleEvery = samplePeriod(horizon)
	sampler := net.Eng.Every(0, res.SampleEvery, func() {
		now := net.Eng.Now()
		for _, rec := range recs {
			rec.Sample(now)
		}
	})

	// Run: a gated scenario ends when its queries are answered (bounded
	// by a straggler deadline); an ungated one runs to the horizon.
	var gated *startStop
	var gateQueries int64
	if gate >= 0 {
		gated = &running[gate]
		gateQueries = int64(spec.Workloads[gate].Queries)
	}
	deadline := horizon + 500*sim.Millisecond
	for net.Eng.Now() < sim.Time(deadline) {
		if canceled != nil && canceled() {
			return nil, ErrCanceled
		}
		if progress != nil {
			progress(RunProgress{SimNow: net.Eng.Now(), SimHorizon: horizon, Events: net.Eng.Processed()})
		}
		if gated != nil {
			done := gated.done()
			if done >= gateQueries {
				break
			}
			// Past the horizon no new queries are issued; once every
			// issued one is answered there is nothing left to wait for
			// (quick scales may issue fewer than the budget).
			if net.Eng.Now() >= sim.Time(horizon) && done >= gated.launched() {
				break
			}
		} else if net.Eng.Now() >= sim.Time(horizon) {
			break
		}
		net.Eng.RunFor(5 * sim.Millisecond)
	}
	sampler.Stop()
	for _, tk := range tickers {
		tk.Stop()
	}
	for i := range running {
		if running[i].stop != nil {
			running[i].stop()
		}
		if running[i].timeouts != nil {
			res.Workloads[i].Timeouts = running[i].timeouts()
		}
		if running[i].launched != nil {
			res.Workloads[i].Launched = running[i].launched()
		}
		if running[i].done != nil {
			res.Workloads[i].Done = running[i].done()
		}
	}
	if net.Faults != nil {
		res.FaultLinks = net.Faults.Snapshot()
	}
	finishResult(res, net.Switches, recs, net.Eng)
	if progress != nil {
		progress(RunProgress{SimNow: net.Eng.Now(), SimHorizon: horizon, Events: net.Eng.Processed(), Final: true})
	}
	return res, nil
}

// runRaw executes a raw-injection spec: packets go straight into one
// switch, no hosts, no transport.
func runRaw(spec Spec, canceled func() bool, progress ProgressFunc) (*Result, error) {
	t := spec.Topology
	eng := sim.NewEngine()
	policy, occ, _ := spec.Policy.Build(t.Classes)
	sched, _ := t.schedKind()
	sw := switchsim.New("sw0", eng, switchsim.Config{
		Ports:             t.Hosts,
		ClassesPerPort:    t.Classes,
		BufferBytes:       t.BufferSize(),
		CellBytes:         t.CellBytes,
		Policy:            policy,
		Occamy:            occ,
		ECNThresholdBytes: t.ECNThresholdBytes,
		Scheduler:         sched,
		DRRQuantum:        t.DRRQuantum,
	})
	pool := pkt.NewPool()
	for i := 0; i < t.Hosts; i++ {
		sw.AttachPort(i, t.hostRate(i), 0, pool.Put)
	}
	sw.SetRouter(func(p *pkt.Packet) int { return int(p.Dst) })
	if tk := wireClocks(sw, eng); tk != nil {
		defer tk.Stop()
	}

	res := &Result{
		Spec:        spec,
		Workloads:   make([]WorkloadStats, len(spec.Workloads)),
		BufferBytes: t.BufferSize(),
	}
	injectors := make([]*experiments.Injector, len(spec.Workloads))
	sw.DropHook = func(p *pkt.Packet, q int, r switchsim.DropReason) {
		if i := int(p.FlowID) - 1; i >= 0 && i < len(res.Workloads) {
			res.Workloads[i].Drops++
		}
		pool.Put(p)
	}
	horizon := spec.Warmup + spec.Duration
	for i, w := range spec.Workloads {
		res.Workloads[i].Kind, res.Workloads[i].Label = w.Kind, w.label(i)
		in := &experiments.Injector{
			Eng: eng, Sw: sw, Dst: pkt.NodeID(w.DstPort),
			Prio: w.Priority, PktSize: w.PktSize, FlowID: uint64(i + 1), Pool: pool,
		}
		injectors[i] = in
		switch w.Kind {
		case WLCBR:
			in.StartCBR(sim.Time(w.At), w.RateBps)
		case WLBurst:
			in.Burst(sim.Time(w.At), w.Bytes, w.RateBps)
		}
	}
	recs := newRecorders([]*switchsim.Switch{sw})
	res.SampleEvery = samplePeriod(horizon)
	sampler := eng.Every(0, res.SampleEvery, func() {
		recs[0].Sample(eng.Now())
	})

	for eng.Now() < sim.Time(horizon) {
		if canceled != nil && canceled() {
			return nil, ErrCanceled
		}
		if progress != nil {
			progress(RunProgress{SimNow: eng.Now(), SimHorizon: horizon, Events: eng.Processed()})
		}
		step := eng.Now() + sim.Time(5*sim.Millisecond)
		if step > sim.Time(horizon) {
			step = sim.Time(horizon)
		}
		eng.RunUntil(step)
	}
	for _, in := range injectors {
		in.Stop()
	}
	sampler.Stop()
	eng.Run() // drain the queues: injection has stopped, events are finite
	for i := range injectors {
		res.Workloads[i].SentPackets = injectors[i].Sent
		res.Workloads[i].SentBytes = injectors[i].Bytes
	}
	finishResult(res, []*switchsim.Switch{sw}, recs, eng)
	if progress != nil {
		progress(RunProgress{SimNow: eng.Now(), SimHorizon: horizon, Events: eng.Processed(), Final: true})
	}
	return res, nil
}

// samplePeriod adapts occupancy sampling to the run length: ~1000
// samples, clamped to [1µs, 100µs].
func samplePeriod(horizon sim.Duration) sim.Duration {
	p := horizon / 1000
	if p < sim.Microsecond {
		p = sim.Microsecond
	}
	if p > 100*sim.Microsecond {
		p = 100 * sim.Microsecond
	}
	return p
}

// newRecorders attaches one occupancy recorder per switch.
func newRecorders(switches []*switchsim.Switch) []*switchsim.Recorder {
	recs := make([]*switchsim.Recorder, len(switches))
	for i, sw := range switches {
		recs[i] = switchsim.NewRecorder(sw)
	}
	return recs
}

// finishResult snapshots switch state and telemetry into the result.
func finishResult(res *Result, switches []*switchsim.Switch, recs []*switchsim.Recorder, eng *sim.Engine) {
	for i, sw := range switches {
		st := sw.Stats()
		res.PerSwitch = append(res.PerSwitch, st)
		res.Buffered = append(res.Buffered, sw.BufferedPackets())
		res.Occupancy = append(res.Occupancy, sw.Occupancy())
		res.Total.RxPackets += st.RxPackets
		res.Total.TxPackets += st.TxPackets
		res.Total.TxBytes += st.TxBytes
		res.Total.DropsAdmission += st.DropsAdmission
		res.Total.DropsNoMemory += st.DropsNoMemory
		res.Total.DropsExpelled += st.DropsExpelled
		res.Total.ECNMarked += st.ECNMarked
		res.Telemetry = append(res.Telemetry, newTelemetry(sw, recs[i]))
		if peak := recs[i].Peak(); peak > res.MaxOccupancy {
			res.MaxOccupancy = peak
		}
	}
	if len(recs) > 0 {
		res.SampleTimes = recs[0].Times
	}
	res.Events = eng.Processed()
}
