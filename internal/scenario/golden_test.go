package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

// Golden deep-telemetry tables
//
// The tail-quantile and per-switch breakdowns are byte-identity anchors
// for the telemetry layer, the same way the Fig 6/7 goldens anchor the
// experiments harnesses: their quick-scale output for two at-scale
// catalog entries is committed under testdata/ and diffed exactly. Any
// change that perturbs sampling instants, quantile math, per-port
// accounting, or cell formatting shows up here first.
//
// Regenerate (after an *intentional* behavior change) with:
//
//	GOLDEN_UPDATE=1 go test ./internal/scenario -run TestGolden

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("GOLDEN_UPDATE") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run with GOLDEN_UPDATE=1 to create): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from the committed golden table.\n--- want\n%s--- got\n%s", name, want, got)
	}
}

func goldenDeepTables(t *testing.T, name string) string {
	t.Helper()
	sc, ok := Get(name)
	if !ok {
		t.Fatalf("scenario %q not registered", name)
	}
	res, err := Run(sc.SpecAt(ScaleQuick))
	if err != nil {
		t.Fatal(err)
	}
	return render([]*Table{res.Table(), res.TailTable(), res.PerSwitchTable()})
}

// goldenFaultTables is goldenDeepTables plus the per-link fault counter
// table, with an optional policy override — the anchors for the fault
// injection layer under both Occamy and plain DT.
func goldenFaultTables(t *testing.T, name string, policy *Policy) string {
	t.Helper()
	sc, ok := Get(name)
	if !ok {
		t.Fatalf("scenario %q not registered", name)
	}
	spec := sc.SpecAt(ScaleQuick)
	if policy != nil {
		spec.Policy = *policy
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return render([]*Table{res.Table(), res.TailTable(), res.PerSwitchTable(), res.FaultTable()})
}

func TestGoldenIncastStorm(t *testing.T) {
	checkGolden(t, "incast_storm_256_quick_golden.txt", goldenDeepTables(t, "incast-storm-256"))
}

func TestGoldenMixedLoad(t *testing.T) {
	checkGolden(t, "mixed_load_90_quick_golden.txt", goldenDeepTables(t, "mixed-load-90"))
}

func TestGoldenWanDegradedOccamy(t *testing.T) {
	checkGolden(t, "wan_degraded_leafspine_quick_golden.txt",
		goldenFaultTables(t, "wan-degraded-leafspine", nil))
}

func TestGoldenWanDegradedDT(t *testing.T) {
	checkGolden(t, "wan_degraded_leafspine_dt_quick_golden.txt",
		goldenFaultTables(t, "wan-degraded-leafspine", &Policy{Kind: "dt", Alpha: 1}))
}

func TestGoldenFlakyTorOccamy(t *testing.T) {
	checkGolden(t, "flaky_tor_incast_quick_golden.txt",
		goldenFaultTables(t, "flaky-tor-incast", nil))
}

func TestGoldenFlakyTorDT(t *testing.T) {
	checkGolden(t, "flaky_tor_incast_dt_quick_golden.txt",
		goldenFaultTables(t, "flaky-tor-incast", &Policy{Kind: "dt", Alpha: 1}))
}
