package scenario

import (
	"fmt"

	"occamy/internal/sim"
)

// Scale is a run-size preset. Every runnable spec exists at three
// scales: "quick" (seconds of wall clock: smoke tests, CI), "full" (the
// spec as written), and "paper" (evaluation scale: enough queries for
// stable tails). The preset travels with the spec — a JSON file can pin
// its own scale — and Run applies it, so there is no separate scale
// plumbing between the CLI and the builder.
type Scale string

// The three presets. The empty string means ScaleFull.
const (
	ScaleQuick Scale = "quick"
	ScaleFull  Scale = "full"
	ScalePaper Scale = "paper"
)

// ParseScale validates a scale name ("" reads as full).
func ParseScale(s string) (Scale, error) {
	switch Scale(s) {
	case "", ScaleFull:
		return ScaleFull, nil
	case ScaleQuick:
		return ScaleQuick, nil
	case ScalePaper:
		return ScalePaper, nil
	}
	return "", fmt.Errorf("unknown scale %q (quick|full|paper)", s)
}

// QuickSpec is the generic test-scale shrink: at most 3 gating queries,
// a 10ms horizon, and a 1ms warmup. Raw specs (already µs-scale) keep
// their timing.
func QuickSpec(s Spec) Spec {
	s.Scale = ""
	if s.Raw() {
		return s
	}
	s.Workloads = append([]Workload(nil), s.Workloads...)
	for i := range s.Workloads {
		if s.Workloads[i].Queries > 3 {
			s.Workloads[i].Queries = 3
		}
	}
	if s.Duration > 10*sim.Millisecond {
		s.Duration = 10 * sim.Millisecond
	}
	if s.Warmup > sim.Millisecond {
		s.Warmup = sim.Millisecond
	}
	return s
}

// PaperSpec is the generic evaluation-scale growth: at least 50 gating
// queries (tail percentiles need samples) and a horizon of at least
// 200ms. Raw specs keep their timing; per-scenario Paper hooks override
// this for workloads with their own notion of "paper scale".
func PaperSpec(s Spec) Spec {
	s.Scale = ""
	if s.Raw() {
		return s
	}
	s.Workloads = append([]Workload(nil), s.Workloads...)
	for i := range s.Workloads {
		if q := s.Workloads[i].Queries; q > 0 && q < 50 {
			s.Workloads[i].Queries = 50
		}
	}
	if s.Duration < 200*sim.Millisecond {
		s.Duration = 200 * sim.Millisecond
	}
	return s
}

// ApplyScale resolves the spec's own Scale field into the generic
// preset transform. Registered scenarios go through Scenario.SpecAt
// instead, which prefers their per-scenario hooks.
func (s Spec) ApplyScale() Spec {
	switch s.Scale {
	case ScaleQuick:
		return QuickSpec(s)
	case ScalePaper:
		return PaperSpec(s)
	}
	s.Scale = ""
	return s
}
