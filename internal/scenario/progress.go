package scenario

import (
	"fmt"

	"occamy/internal/sim"
)

// Run progress
//
// A paper-scale run is minutes of wall time; the chunked engine loops in
// build.go already pause every few milliseconds of virtual time to poll
// the cancel check, and the progress hook publishes a snapshot at the
// same seam. The scenario package is inside the deterministic core
// (LINT.md: detrand), so a RunProgress carries only values derived from
// the simulation itself — the virtual clock and the event counter.
// Wall-clock reads, events-per-second rates, and atomic publication
// belong to the caller (internal/service stores snapshots atomically;
// cmd/occamy-scenario renders a live line) — that split is pinned by the
// detrand/nogoroutine fixtures in internal/lint/testdata.

// RunProgress is one deterministic progress sample, published at every
// engine chunk boundary and once more when the run completes.
type RunProgress struct {
	// SimNow is the virtual time reached; SimHorizon the run's nominal
	// span (warmup + duration). SimNow can exceed SimHorizon: gated
	// scenarios run up to a straggler deadline past the horizon, so
	// consumers rendering a fraction should clamp SimNow/SimHorizon at 1.
	SimNow     sim.Time
	SimHorizon sim.Duration
	// Events is the engine's cumulative processed-event count — the
	// numerator of the ROADMAP headline metric (simulated events/sec,
	// once the caller divides by its own wall clock).
	Events uint64
	// Final marks the completion sample: the run finished (it was not
	// canceled) and no further samples follow.
	Final bool
}

// ProgressFunc observes run progress. It is called from the simulation's
// own goroutine between engine chunks — implementations must be cheap
// and must not call back into the run. A nil ProgressFunc is ignored.
type ProgressFunc func(RunProgress)

// RunWithProgress is RunWithCancel with a progress hook: progress is
// invoked with a fresh sample at every engine chunk boundary (the same
// seam the cancel check polls) and once more, with Final set, when the
// run completes. Either hook may be nil.
func RunWithProgress(spec Spec, canceled func() bool, progress ProgressFunc) (*Result, error) {
	if _, err := ParseScale(string(spec.Scale)); err != nil {
		return nil, fmt.Errorf("scenario %q: %w", spec.Name, err)
	}
	spec = spec.ApplyScale().WithDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Raw() {
		return runRaw(spec, canceled, progress)
	}
	return runTransport(spec, canceled, progress)
}
