package scenario

import (
	"testing"
)

// TestRunWithProgressSamples pins the progress-hook contract: samples
// are monotone non-decreasing in both virtual time and event count, the
// horizon is constant and positive, exactly one Final sample arrives,
// and it arrives last — all without perturbing the result (the hook run
// must stay byte-identical to a hookless run).
func TestRunWithProgressSamples(t *testing.T) {
	sc, ok := Get("quickstart")
	if !ok {
		t.Fatal("quickstart scenario missing from registry")
	}
	spec := sc.SpecAt(ScaleQuick)

	var samples []RunProgress
	res, err := RunWithProgress(spec, nil, func(p RunProgress) {
		samples = append(samples, p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) < 2 {
		t.Fatalf("got %d progress samples; want at least a chunk sample and the final one", len(samples))
	}
	for i, p := range samples {
		if p.SimHorizon != samples[0].SimHorizon || p.SimHorizon <= 0 {
			t.Fatalf("sample %d: horizon %v (first was %v); must be constant and positive",
				i, p.SimHorizon, samples[0].SimHorizon)
		}
		if i == 0 {
			continue
		}
		if p.SimNow < samples[i-1].SimNow {
			t.Fatalf("sample %d: SimNow went backwards: %v after %v", i, p.SimNow, samples[i-1].SimNow)
		}
		if p.Events < samples[i-1].Events {
			t.Fatalf("sample %d: Events went backwards: %d after %d", i, p.Events, samples[i-1].Events)
		}
	}
	for i, p := range samples {
		if p.Final != (i == len(samples)-1) {
			t.Fatalf("Final set on sample %d of %d; want only the last", i, len(samples))
		}
	}
	last := samples[len(samples)-1]
	if last.SimNow < last.SimHorizon {
		t.Fatalf("final sample stopped at %v, before the %v horizon", last.SimNow, last.SimHorizon)
	}
	if last.Events == 0 {
		t.Fatal("final sample reports zero events for a run that did work")
	}

	// The hook must be pure observation: a hookless run of the same spec
	// produces the identical result document.
	plain, err := RunWithProgress(spec, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := res.EncodeJSON(true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := plain.EncodeJSON(true)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("progress hook perturbed the result document")
	}
}

// TestRunWithProgressCancel verifies a canceled run never publishes a
// Final sample — the CLI and service rely on that to distinguish "done"
// from "stopped".
func TestRunWithProgressCancel(t *testing.T) {
	sc, ok := Get("quickstart")
	if !ok {
		t.Fatal("quickstart scenario missing from registry")
	}
	_, err := RunWithProgress(sc.SpecAt(ScaleQuick), func() bool {
		return true // cancel at the first chunk boundary
	}, func(p RunProgress) {
		if p.Final {
			t.Error("canceled run published a Final sample")
		}
	})
	if err != ErrCanceled {
		t.Fatalf("canceled run returned %v, want ErrCanceled", err)
	}
}
