package scenario

import (
	"strings"
	"testing"

	"occamy/internal/switchsim"
)

// The zero-drift property, pushed down a level: per-port counters must
// sum to per-switch stats, per-switch stats to the global totals, and
// the whole book must close (rx = tx + drops + expelled + buffered) —
// on every catalog scenario, single-switch and fabric alike.
func TestTelemetrySumsToGlobalTotals(t *testing.T) {
	for _, name := range exportableNames(t) {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, _ := Get(name)
			res, err := Run(sc.SpecAt(ScaleQuick))
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Telemetry) != len(res.PerSwitch) {
				t.Fatalf("%d telemetry entries for %d switches", len(res.Telemetry), len(res.PerSwitch))
			}
			var total switchsim.Stats
			for i, st := range res.PerSwitch {
				var agg switchsim.PortStats
				for _, ps := range res.Telemetry[i].Ports {
					agg.TxPackets += ps.TxPackets
					agg.TxBytes += ps.TxBytes
					agg.DropsAdmission += ps.DropsAdmission
					agg.DropsNoMemory += ps.DropsNoMemory
					agg.DropsExpelled += ps.DropsExpelled
					agg.ECNMarked += ps.ECNMarked
				}
				if agg.TxPackets != st.TxPackets || agg.TxBytes != st.TxBytes {
					t.Errorf("switch %d: per-port tx (%d pkts, %d B) != stats (%d, %d)",
						i, agg.TxPackets, agg.TxBytes, st.TxPackets, st.TxBytes)
				}
				if agg.Drops() != st.Drops() || agg.DropsExpelled != st.DropsExpelled {
					t.Errorf("switch %d: per-port drops (%d arr, %d exp) != stats (%d, %d)",
						i, agg.Drops(), agg.DropsExpelled, st.Drops(), st.DropsExpelled)
				}
				if agg.ECNMarked != st.ECNMarked {
					t.Errorf("switch %d: per-port ECN %d != stats %d", i, agg.ECNMarked, st.ECNMarked)
				}
				// One level deeper: each port's per-queue counters must sum
				// to that port's PortStats exactly (drops no longer
				// attribute only to ports).
				tel := &res.Telemetry[i]
				for p, ps := range tel.Ports {
					var qagg switchsim.QueueStats
					for c := 0; c < tel.Classes; c++ {
						qs := tel.Queues[p*tel.Classes+c].Stats
						qagg.TxPackets += qs.TxPackets
						qagg.TxBytes += qs.TxBytes
						qagg.DropsAdmission += qs.DropsAdmission
						qagg.DropsNoMemory += qs.DropsNoMemory
						qagg.DropsExpelled += qs.DropsExpelled
						qagg.ECNMarked += qs.ECNMarked
					}
					want := switchsim.QueueStats{
						TxPackets: ps.TxPackets, TxBytes: ps.TxBytes,
						DropsAdmission: ps.DropsAdmission, DropsNoMemory: ps.DropsNoMemory,
						DropsExpelled: ps.DropsExpelled, ECNMarked: ps.ECNMarked,
					}
					if qagg != want {
						t.Errorf("switch %d port %d: per-queue sums %+v != port stats %+v", i, p, qagg, want)
					}
				}
				total.TxPackets += st.TxPackets
				total.DropsAdmission += st.DropsAdmission
				total.DropsNoMemory += st.DropsNoMemory
				total.DropsExpelled += st.DropsExpelled
			}
			if total.TxPackets != res.Total.TxPackets || total.Drops() != res.Total.Drops() ||
				total.DropsExpelled != res.Total.DropsExpelled {
				t.Errorf("per-switch sums do not reproduce Total: %+v vs %+v", total, res.Total)
			}
			if drift := res.AccountingDrift(); drift != 0 {
				t.Errorf("packet accounting drift %d", drift)
			}
			// Occupancy telemetry sanity: the recorded peak is the result's
			// MaxOccupancy, per-port peaks stay under their switch's peak,
			// and every switch's series has the same aligned length.
			maxPeak := 0
			for i := range res.Telemetry {
				tel := &res.Telemetry[i]
				if tel.PeakOcc > maxPeak {
					maxPeak = tel.PeakOcc
				}
				for p, pk := range tel.PortPeak {
					if pk > tel.PeakOcc {
						t.Errorf("switch %d port %d peak %d exceeds switch peak %d", i, p, pk, tel.PeakOcc)
					}
				}
				if len(tel.Series) != len(res.Telemetry[0].Series) {
					t.Errorf("switch %d series length %d != switch 0's %d", i, len(tel.Series), len(res.Telemetry[0].Series))
				}
			}
			if maxPeak != res.MaxOccupancy {
				t.Errorf("telemetry peak %d != MaxOccupancy %d", maxPeak, res.MaxOccupancy)
			}
		})
	}
}

// deepColumns are the new tail/per-switch metric columns; the
// acceptance bar is that they are selectable on every catalog entry.
var deepColumns = []string{
	"qct_p50_ms", "qct_p999_ms", "qct_p999_slow",
	"bg_p50_fct_ms", "bg_p999_fct_ms", "bg_p99_slow", "bg_p999_slow", "small_bg_p999_slow",
	"mean_occ_pct", "hot_port", "hot_port_peak_pct", "switches",
	"hot_queue", "hot_queue_peak_pct", "hot_queue_mean_pct", "min_thr_headroom_pct",
}

func TestDeepColumnsSelectableEverywhere(t *testing.T) {
	for _, m := range deepColumns {
		if _, ok := columnFuncs[m]; !ok {
			t.Fatalf("column %q not registered", m)
		}
	}
	for _, name := range exportableNames(t) {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, _ := Get(name)
			spec := sc.SpecAt(ScaleQuick)
			spec.Metrics = append([]string{"policy"}, deepColumns...)
			res, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			row := res.Row(spec.Metrics)
			for i, cell := range row {
				if cell == "" || strings.HasPrefix(cell, "?") {
					t.Errorf("column %q rendered %q", spec.Metrics[i], cell)
				}
			}
		})
	}
}

// Tail quantiles surfaced as columns must be ordered: p999 >= p99 >=
// p50 on a real run's collectors (the scenario-level echo of the
// metrics property tests).
func TestTailColumnsOrdered(t *testing.T) {
	sc, _ := Get("mixed-load-90")
	res, err := Run(sc.SpecAt(ScaleQuick))
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Workloads {
		col := &res.Workloads[i].Col
		if col.Count() == 0 {
			continue
		}
		p50, p99, p999 := col.FCTQuantile(0.5), col.FCTQuantile(0.99), col.FCTQuantile(0.999)
		if p999 < p99 || p99 < p50 {
			t.Errorf("workload %s: FCT tail disordered: p50=%v p99=%v p999=%v",
				res.Workloads[i].Label, p50, p99, p999)
		}
	}
}

// The trace dump: CSV has one aligned row per sample with one column
// per switch plus an occupancy/threshold column pair per queue, and the
// sparkline plots name every switch and overlay queue.
func TestTraceOutputs(t *testing.T) {
	sc, _ := Get("degraded-leafspine")
	res, err := Run(sc.SpecAt(ScaleQuick))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := res.WriteTraceCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(res.Telemetry[0].Series)+1 {
		t.Fatalf("CSV has %d lines for %d samples", len(lines), len(res.Telemetry[0].Series))
	}
	queues := 0
	for i := range res.Telemetry {
		queues += len(res.Telemetry[i].Queues)
	}
	header := strings.Split(lines[0], ",")
	if header[0] != "time_s" || len(header) != 1+len(res.Telemetry)+3*queues {
		t.Fatalf("CSV header has %d columns for %d switches and %d queues", len(header), len(res.Telemetry), queues)
	}
	// Each queue column is immediately followed by its threshold column,
	// and that by the queue's cumulative ECN-mark column.
	for i, col := range header {
		if strings.HasSuffix(col, ":thr") && header[i-1]+":thr" != col {
			t.Errorf("threshold column %q not paired with its queue column (%q precedes)", col, header[i-1])
		}
		if strings.HasSuffix(col, ":ecn") &&
			(!strings.HasSuffix(header[i-1], ":thr") ||
				strings.TrimSuffix(header[i-1], ":thr") != strings.TrimSuffix(col, ":ecn")) {
			t.Errorf("ecn column %q not paired with its threshold column (%q precedes)", col, header[i-1])
		}
	}
	for _, l := range lines[1:] {
		if got := len(strings.Split(l, ",")); got != len(header) {
			t.Fatalf("ragged CSV row %q", l)
		}
	}
	plot, err := res.TracePlot(40)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Telemetry {
		if !strings.Contains(plot, res.Telemetry[i].Name) {
			t.Errorf("plot missing switch %s:\n%s", res.Telemetry[i].Name, plot)
		}
	}
	qplot, err := res.QueueTracePlot(40, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(qplot, ":thr") {
		t.Errorf("queue overlay plot has no threshold series:\n%s", qplot)
	}
	// An empty result errors from all three trace surfaces alike.
	empty := &Result{Spec: Spec{Name: "empty"}}
	if err := empty.WriteTraceCSV(&strings.Builder{}); err == nil {
		t.Error("WriteTraceCSV on an empty result did not error")
	}
	if _, err := empty.TracePlot(40); err == nil {
		t.Error("TracePlot on an empty result did not error")
	}
	if _, err := empty.QueueTracePlot(40, 0); err == nil {
		t.Error("QueueTracePlot on an empty result did not error")
	}
}
