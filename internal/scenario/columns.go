package scenario

import (
	"fmt"
	"sort"

	"occamy/internal/experiments"
)

// Metric columns
//
// A spec's Metrics field selects summary-table columns by name; nil picks
// a default set from the workload mix. Each column is a pure function of
// the Result, so sweeps produce one comparable row per grid point.

// Table is the aligned-text output table shared with the figure
// harnesses.
type Table = experiments.Table

// incastStats returns the gating (or first) incast workload's stats.
func (r *Result) incastStats() *WorkloadStats {
	for i := range r.Workloads {
		if r.Workloads[i].Kind == WLIncast {
			return &r.Workloads[i]
		}
	}
	return nil
}

// loadStats returns the first load-bearing (non-incast, non-raw)
// workload's stats: the "background" of the summary columns.
func (r *Result) loadStats() *WorkloadStats {
	for i := range r.Workloads {
		switch r.Workloads[i].Kind {
		case WLBackground, WLPermutation, WLAllToAll, WLAllReduce:
			return &r.Workloads[i]
		}
	}
	return nil
}

// burstLoss returns the aggregate loss fraction of raw burst traffic.
func (r *Result) burstLoss() float64 {
	var sent, drops int64
	for i := range r.Workloads {
		if r.Workloads[i].Kind == WLBurst {
			sent += r.Workloads[i].SentPackets
			drops += r.Workloads[i].Drops
		}
	}
	if sent == 0 {
		return 0
	}
	return float64(drops) / float64(sent)
}

// columnFuncs maps metric names to their cell renderers.
var columnFuncs = map[string]func(*Result) string{
	"policy": func(r *Result) string { return r.Spec.Policy.Label() },
	"qct_avg_ms": func(r *Result) string {
		if q := r.incastStats(); q != nil {
			return experiments.Ms(q.Col.MeanFCT())
		}
		return "-"
	},
	"qct_p99_ms": func(r *Result) string {
		if q := r.incastStats(); q != nil {
			return experiments.Ms(q.Col.P99FCT())
		}
		return "-"
	},
	"qct_avg_slow": func(r *Result) string {
		if q := r.incastStats(); q != nil {
			return experiments.F(q.Col.MeanSlowdown())
		}
		return "-"
	},
	"qct_p99_slow": func(r *Result) string {
		if q := r.incastStats(); q != nil {
			return experiments.F(q.Col.P99Slowdown())
		}
		return "-"
	},
	"queries_done": func(r *Result) string {
		if q := r.incastStats(); q != nil {
			return fmt.Sprint(q.Done)
		}
		return "-"
	},
	"rtos": func(r *Result) string {
		if q := r.incastStats(); q != nil {
			return fmt.Sprint(q.Timeouts)
		}
		return "-"
	},
	"bg_avg_fct_ms": func(r *Result) string {
		if b := r.loadStats(); b != nil {
			return experiments.Ms(b.Col.MeanFCT())
		}
		return "-"
	},
	"bg_p99_fct_ms": func(r *Result) string {
		if b := r.loadStats(); b != nil {
			return experiments.Ms(b.Col.P99FCT())
		}
		return "-"
	},
	"bg_avg_slow": func(r *Result) string {
		if b := r.loadStats(); b != nil {
			return experiments.F(b.Col.MeanSlowdown())
		}
		return "-"
	},
	"small_bg_p99_slow": func(r *Result) string {
		if b := r.loadStats(); b != nil {
			return experiments.F(b.Col.Small(100_000).P99Slowdown())
		}
		return "-"
	},
	"qct_p50_ms": func(r *Result) string {
		if q := r.incastStats(); q != nil {
			return experiments.Ms(q.Col.FCTQuantile(0.50))
		}
		return "-"
	},
	"qct_p999_ms": func(r *Result) string {
		if q := r.incastStats(); q != nil {
			return experiments.Ms(q.Col.FCTQuantile(0.999))
		}
		return "-"
	},
	"qct_p999_slow": func(r *Result) string {
		if q := r.incastStats(); q != nil {
			return experiments.F(q.Col.SlowdownQuantile(0.999))
		}
		return "-"
	},
	"bg_p50_fct_ms": func(r *Result) string {
		if b := r.loadStats(); b != nil {
			return experiments.Ms(b.Col.FCTQuantile(0.50))
		}
		return "-"
	},
	"bg_p999_fct_ms": func(r *Result) string {
		if b := r.loadStats(); b != nil {
			return experiments.Ms(b.Col.FCTQuantile(0.999))
		}
		return "-"
	},
	"bg_p99_slow": func(r *Result) string {
		if b := r.loadStats(); b != nil {
			return experiments.F(b.Col.SlowdownQuantile(0.99))
		}
		return "-"
	},
	"bg_p999_slow": func(r *Result) string {
		if b := r.loadStats(); b != nil {
			return experiments.F(b.Col.SlowdownQuantile(0.999))
		}
		return "-"
	},
	"small_bg_p999_slow": func(r *Result) string {
		if b := r.loadStats(); b != nil {
			return experiments.F(b.Col.Small(100_000).SlowdownQuantile(0.999))
		}
		return "-"
	},
	"delivered_mb": func(r *Result) string { return experiments.F(float64(r.Total.TxBytes) / 1e6) },
	"drops":        func(r *Result) string { return fmt.Sprint(r.Total.Drops()) },
	"expelled":     func(r *Result) string { return fmt.Sprint(r.Total.DropsExpelled) },
	"ecn_marked":   func(r *Result) string { return fmt.Sprint(r.Total.ECNMarked) },
	"burst_loss":   func(r *Result) string { return experiments.F(r.burstLoss()) },
	"max_occ_pct":  func(r *Result) string { return r.occPct(float64(r.MaxOccupancy)) },
	"mean_occ_pct": func(r *Result) string {
		if len(r.Telemetry) == 0 {
			return "-"
		}
		sum := 0.0
		for i := range r.Telemetry {
			sum += r.Telemetry[i].MeanOcc
		}
		return r.occPct(sum / float64(len(r.Telemetry)))
	},
	"hot_port": func(r *Result) string {
		sw, port, _ := r.HottestPort()
		if sw < 0 {
			return "-"
		}
		return fmt.Sprintf("%s:%d", r.Telemetry[sw].Name, port)
	},
	"hot_port_peak_pct": func(r *Result) string {
		sw, _, peak := r.HottestPort()
		if sw < 0 {
			return "-"
		}
		return r.occPct(float64(peak))
	},
	"hot_queue": func(r *Result) string {
		sw, q, _ := r.HottestQueue()
		if sw < 0 {
			return "-"
		}
		return fmt.Sprintf("%s:%s", r.Telemetry[sw].Name, r.Telemetry[sw].Queues[q].Label())
	},
	"hot_queue_peak_pct": func(r *Result) string {
		sw, _, peak := r.HottestQueue()
		if sw < 0 {
			return "-"
		}
		return r.occPct(float64(peak))
	},
	"hot_queue_mean_pct": func(r *Result) string {
		sw, q, _ := r.HottestQueue()
		if sw < 0 {
			return "-"
		}
		return r.occPct(r.Telemetry[sw].Queues[q].Mean)
	},
	"min_thr_headroom_pct": func(r *Result) string {
		min, found := 0, false
		for i := range r.Telemetry {
			for q := range r.Telemetry[i].Queues {
				qt := &r.Telemetry[i].Queues[q]
				if len(qt.Series) == 0 {
					continue
				}
				if !found || qt.MinHeadroom < min {
					min, found = qt.MinHeadroom, true
				}
			}
		}
		if !found {
			return "-"
		}
		return r.signedOccPct(float64(min))
	},
	"switches": func(r *Result) string { return fmt.Sprint(len(r.PerSwitch)) },
	"link_drops": func(r *Result) string {
		if len(r.FaultLinks) == 0 {
			return "-"
		}
		return fmt.Sprint(r.LinkFaultTotals().Dropped)
	},
	"link_dups": func(r *Result) string {
		if len(r.FaultLinks) == 0 {
			return "-"
		}
		return fmt.Sprint(r.LinkFaultTotals().Duplicated)
	},
	"link_reorders": func(r *Result) string {
		if len(r.FaultLinks) == 0 {
			return "-"
		}
		return fmt.Sprint(r.LinkFaultTotals().Reordered)
	},
}

// MetricNames returns every selectable column, sorted.
func MetricNames() []string {
	names := make([]string, 0, len(columnFuncs))
	for n := range columnFuncs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DefaultMetrics picks summary columns from the workload mix.
func DefaultMetrics(spec Spec) []string {
	if spec.Raw() {
		return []string{"policy", "delivered_mb", "burst_loss", "drops", "expelled", "max_occ_pct"}
	}
	cols := []string{"policy"}
	hasIncast, hasLoad := false, false
	for _, w := range spec.Workloads {
		switch w.Kind {
		case WLIncast:
			hasIncast = true
		case WLBackground, WLPermutation, WLAllToAll, WLAllReduce:
			hasLoad = true
		}
	}
	if hasIncast {
		cols = append(cols, "qct_avg_ms", "qct_p99_ms", "qct_avg_slow", "rtos")
	}
	if hasLoad {
		cols = append(cols, "bg_avg_fct_ms", "small_bg_p99_slow")
	}
	cols = append(cols, "drops", "expelled", "max_occ_pct")
	if spec.Faults != nil {
		cols = append(cols, "link_drops", "link_dups", "link_reorders")
	}
	return cols
}

// metricsOf resolves the effective column list of a spec.
func metricsOf(spec Spec) []string {
	if len(spec.Metrics) > 0 {
		return spec.Metrics
	}
	return DefaultMetrics(spec)
}

// Row renders the selected metric cells for this result.
func (r *Result) Row(metrics []string) []string {
	cells := make([]string, len(metrics))
	for i, m := range metrics {
		fn, ok := columnFuncs[m]
		if !ok {
			cells[i] = "?" + m
			continue
		}
		cells[i] = fn(r)
	}
	return cells
}

// Table renders a one-row summary of a single run.
func (r *Result) Table() *experiments.Table {
	return Summarize(r.Spec.Name, r.Spec.Title, []string{r.Spec.Name}, []*Result{r}, metricsOf(r.Spec))
}

// Summarize renders one row per result, prefixed with its label (sweeps
// use the swept field values as labels).
func Summarize(id, title string, labels []string, results []*Result, metrics []string) *experiments.Table {
	t := &experiments.Table{
		ID:      id,
		Title:   title,
		Columns: append([]string{"scenario"}, metrics...),
	}
	for i, r := range results {
		if r == nil {
			continue
		}
		t.AddRow(append([]string{labels[i]}, r.Row(metrics)...)...)
	}
	return t
}
