package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"occamy/internal/scenario"
	"occamy/internal/service"
)

// sweepBody wraps a marshaled spec and axes into the POST /v1/sweeps
// request format.
func sweepBody(spec []byte, axes []scenario.SweepAxis) ([]byte, error) {
	req := struct {
		Spec json.RawMessage `json:"spec"`
		Axes []string        `json:"axes"`
	}{Spec: spec}
	for _, ax := range axes {
		req.Axes = append(req.Axes, ax.Path+"="+strings.Join(ax.Values, ","))
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("loadgen: marshaling sweep body: %w", err)
	}
	return body, nil
}

// jobStatus is the slice of the service's job snapshot the client
// reads (decoded leniently: the loadgen must work against newer
// servers that add fields).
type jobStatus struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Cached bool   `json:"cached"`
	Error  string `json:"error"`
}

func terminal(state string) bool {
	return state == "done" || state == "failed" || state == "canceled"
}

// outcome is one request's fate, recorded into the report.
type outcome struct {
	target  int           // index into Config.Targets
	latency time.Duration // submit-to-done, terminal outcomes only
	state   string        // done | failed | canceled
	cached  bool
	refused bool // 503 (capacity) or 429 (rate limit) at submission
	err     error
}

// Run executes a schedule against the configured targets and collects
// the report. It is open-loop: arrivals fire on the schedule's clock;
// completions only bound the client pool, never the arrival process.
func Run(ctx context.Context, cfg Config, sched []Request) (*Report, error) {
	cfg = cfg.WithDefaults()
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("loadgen: no targets")
	}
	client := &http.Client{} // per-request deadlines via contexts

	var (
		mu       sync.Mutex
		outcomes = make([]outcome, 0, len(sched))
		wg       sync.WaitGroup
	)
	sem := make(chan struct{}, cfg.Concurrency)
	start := time.Now()
	for i := range sched {
		req := &sched[i]
		// Open-loop pacing: sleep to the scheduled arrival, then fire.
		if d := time.Until(start.Add(req.At)); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The latency clock starts at the scheduled arrival the user
			// "clicked submit", including any wait for a pool slot — the
			// anti-coordinated-omission convention (cf. wrk2).
			t0 := time.Now()
			sem <- struct{}{}
			defer func() { <-sem }()
			o := doOne(ctx, client, cfg, cfg.Targets[req.Target], req)
			o.target = req.Target
			o.latency = time.Since(t0)
			mu.Lock()
			outcomes = append(outcomes, o)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := summarize(cfg, sched, outcomes, elapsed)
	for _, target := range cfg.Targets {
		ts := TargetStats{URL: target}
		st, err := FetchStats(ctx, client, target)
		if err != nil {
			ts.Err = err.Error()
		} else {
			ts.Stats = st
		}
		rep.Targets = append(rep.Targets, ts)
	}
	return rep, nil
}

// doOne submits one request and drives it to a terminal state.
func doOne(ctx context.Context, client *http.Client, cfg Config, target string, req *Request) outcome {
	jctx, cancel := context.WithTimeout(ctx, cfg.JobTimeout)
	defer cancel()

	st, code, err := postJSON(jctx, client, target+req.Path, req.Body)
	switch {
	case err != nil:
		return outcome{err: fmt.Errorf("POST %s: %w", req.Path, err)}
	case code == http.StatusServiceUnavailable, code == http.StatusTooManyRequests:
		// Both are the server pushing back (saturated queue or per-client
		// rate limit): the request was refused, not errored — refusal-rate
		// thresholds gate on exactly this bucket.
		return outcome{refused: true}
	case code != http.StatusAccepted:
		return outcome{err: fmt.Errorf("POST %s: status %d (%s)", req.Path, code, st.Error)}
	}
	if terminal(st.State) {
		// Born terminal: a cache hit (or a coalesce onto a finished job).
		return outcome{state: st.State, cached: st.Cached}
	}
	for {
		select {
		case <-jctx.Done():
			return outcome{err: fmt.Errorf("job %s: %w", st.ID, jctx.Err())}
		case <-time.After(cfg.PollInterval):
		}
		cur, code, err := getJob(jctx, client, target, st.ID)
		if err != nil {
			return outcome{err: fmt.Errorf("poll %s: %w", st.ID, err)}
		}
		if code != http.StatusOK {
			return outcome{err: fmt.Errorf("poll %s: status %d", st.ID, code)}
		}
		if terminal(cur.State) {
			return outcome{state: cur.State, cached: cur.Cached}
		}
	}
}

func postJSON(ctx context.Context, client *http.Client, url string, body []byte) (jobStatus, int, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return jobStatus{}, 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(hreq)
	if err != nil {
		return jobStatus{}, 0, err
	}
	defer resp.Body.Close()
	var st jobStatus
	_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st) // error bodies may not be a jobStatus
	return st, resp.StatusCode, nil
}

func getJob(ctx context.Context, client *http.Client, target, id string) (jobStatus, int, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/v1/runs/"+id, nil)
	if err != nil {
		return jobStatus{}, 0, err
	}
	resp, err := client.Do(hreq)
	if err != nil {
		return jobStatus{}, 0, err
	}
	defer resp.Body.Close()
	var st jobStatus
	err = json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&st)
	return st, resp.StatusCode, err
}

// FetchStats pulls GET /v1/stats from one target.
func FetchStats(ctx context.Context, client *http.Client, target string) (*service.Stats, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/stats: status %d", resp.StatusCode)
	}
	var st service.Stats
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}
