package loadgen

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"occamy/internal/scenario"
	"occamy/internal/service"
)

// TestScheduleDeterminism pins the core loadgen contract: the same
// (config, seed) yields a byte-identical schedule; a different seed
// does not.
func TestScheduleDeterminism(t *testing.T) {
	cfg := Config{
		Targets:     []string{"http://a", "http://b"},
		Requests:    200,
		Rate:        100,
		Seed:        42,
		MutateEvery: 5,
		SweepEvery:  9,
		ScaleMix:    map[scenario.Scale]float64{scenario.ScaleQuick: 0.9, scenario.ScaleFull: 0.1},
	}
	a, err := BuildSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}

	cfg.Seed = 43
	c, err := BuildSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}

	// Mutations and sweeps land on the exact configured cadence.
	for i, r := range a {
		if got, want := r.Mutated, (i+1)%cfg.MutateEvery == 0; got != want {
			t.Fatalf("request %d: Mutated=%v, want %v", i, got, want)
		}
		if got, want := r.Sweep, (i+1)%cfg.SweepEvery == 0; got != want {
			t.Fatalf("request %d: Sweep=%v, want %v", i, got, want)
		}
		if want := []string{"/v1/runs", "/v1/sweeps"}[b2i(r.Sweep)]; r.Path != want {
			t.Fatalf("request %d: Path=%q, want %q", i, r.Path, want)
		}
		if r.Target != i%2 {
			t.Fatalf("request %d: Target=%d, want round-robin %d", i, r.Target, i%2)
		}
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TestUniformSpacing pins the uniform process: every interarrival gap
// is exactly 1/Rate.
func TestUniformSpacing(t *testing.T) {
	sched, err := BuildSchedule(Config{Requests: 50, Rate: 200, Process: ProcessUniform})
	if err != nil {
		t.Fatal(err)
	}
	want := sched[0].At
	if want <= 0 {
		t.Fatalf("first arrival at %v, want > 0", want)
	}
	for i := 1; i < len(sched); i++ {
		if gap := sched[i].At - sched[i-1].At; gap != want {
			t.Fatalf("gap %d is %v, want %v", i, gap, want)
		}
	}
}

// TestPoissonArrivalsVary sanity-checks the poisson process: gaps are
// not all equal and the mean is in the right ballpark.
func TestPoissonArrivalsVary(t *testing.T) {
	sched, err := BuildSchedule(Config{Requests: 1000, Rate: 100, Process: ProcessPoisson, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[time.Duration]bool{}
	var prev time.Duration
	for _, r := range sched {
		distinct[r.At-prev] = true
		prev = r.At
	}
	if len(distinct) < 100 {
		t.Fatalf("poisson gaps look degenerate: %d distinct values", len(distinct))
	}
	mean := sched[len(sched)-1].At.Seconds() / float64(len(sched))
	if mean < 0.005 || mean > 0.02 { // nominal 0.01s at 100/s
		t.Fatalf("mean interarrival %.4fs, want ~0.01s", mean)
	}
}

// TestZipfSkew verifies the popularity model: the hottest scenario
// (rank 0) takes a large share of the draws and dominates the coldest.
func TestZipfSkew(t *testing.T) {
	cfg := Config{Requests: 4000, Seed: 11, ZipfS: 1.3}
	cfg = cfg.WithDefaults()
	if len(cfg.Scenarios) < 3 {
		t.Skipf("catalog too small for a skew test: %d exportable scenarios", len(cfg.Scenarios))
	}
	sched, err := BuildSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, r := range sched {
		counts[r.Scenario]++
	}
	hot := counts[cfg.Scenarios[0]]
	cold := counts[cfg.Scenarios[len(cfg.Scenarios)-1]]
	if share := float64(hot) / float64(len(sched)); share < 0.35 {
		t.Fatalf("hottest scenario share %.2f, want >= 0.35 (zipf s=1.3)", share)
	}
	if hot <= 4*cold {
		t.Fatalf("hot/cold counts %d/%d: zipf skew missing", hot, cold)
	}
}

// TestRunEndToEnd drives a seeded quick-scale load against a live
// service handler and cross-checks the client report against the
// server's /v1/stats ledger. Run with -race this doubles as the
// stats-counter consistency test under concurrent load.
func TestRunEndToEnd(t *testing.T) {
	svc, err := service.New(service.Config{Workers: 4, CacheBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	cfg := Config{
		Targets: []string{ts.URL},
		// Only the two fastest catalog entries: the test budget is the
		// simulations, not the harness.
		Scenarios:    []string{"quickstart", "burst-absorb"},
		Requests:     60,
		Rate:         400,
		Seed:         3,
		MutateEvery:  4,
		SweepEvery:   10,
		PollInterval: 2 * time.Millisecond,
		JobTimeout:   60 * time.Second,
	}
	sched, err := BuildSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), cfg, sched)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep.Render())

	// Client-side ledger: every request lands in exactly one bucket.
	if got := rep.Done + rep.Failed + rep.Canceled + rep.Refused + rep.Errors; got != rep.Requests {
		t.Fatalf("client ledger %d != requests %d", got, rep.Requests)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d request errors: %v", rep.Errors, rep.FirstErrors)
	}
	if rep.Refused != 0 {
		t.Fatalf("%d refusals at default queue depth", rep.Refused)
	}
	if rep.Done != rep.Requests {
		t.Fatalf("done %d, want all %d", rep.Done, rep.Requests)
	}
	// The zipf mix repeats hot specs, so the content-addressed cache
	// must see hits (mutated requests guarantee some misses too).
	if rep.CacheHits == 0 {
		t.Fatal("no cache hits under a zipf workload")
	}
	if rep.CacheHits == rep.Done {
		t.Fatal("everything was a cache hit; mutations did not produce fresh fingerprints")
	}
	if rep.Latency.Count == 0 || rep.Latency.P50Ms <= 0 {
		t.Fatalf("latency summary empty: %+v", rep.Latency)
	}
	if rep.Latency.P50Ms > rep.Latency.P99Ms || rep.Latency.P99Ms > rep.Latency.P999Ms {
		t.Fatalf("quantiles not monotone: %+v", rep.Latency)
	}

	// Server-side ledger reconciles with the client view.
	if len(rep.Targets) != 1 || rep.Targets[0].Stats == nil {
		t.Fatalf("missing target stats: %+v", rep.Targets)
	}
	st := rep.Targets[0].Stats
	c := st.Counters
	if c.Submitted != int64(rep.Requests) {
		t.Fatalf("server saw %d submissions, client sent %d", c.Submitted, rep.Requests)
	}
	if got := c.CacheHits + c.Coalesced + c.Enqueued + c.Refused; got != c.Submitted {
		t.Fatalf("submission identity broken: hits %d + coalesced %d + enqueued %d + refused %d != submitted %d",
			c.CacheHits, c.Coalesced, c.Enqueued, c.Refused, c.Submitted)
	}
	// The run has drained, so every enqueued job is terminal.
	if got := c.Done + c.Failed + c.Canceled; got != c.Enqueued {
		t.Fatalf("terminal identity broken: done %d + failed %d + canceled %d != enqueued %d",
			c.Done, c.Failed, c.Canceled, c.Enqueued)
	}
	if st.Queued != 0 || st.Running != 0 {
		t.Fatalf("jobs left after drain: queued %d running %d", st.Queued, st.Running)
	}
	if st.Utilization < 0 || st.Utilization > 1 {
		t.Fatalf("utilization %v out of [0,1]", st.Utilization)
	}
	// The latency middleware saw the traffic.
	runs, ok := st.Endpoints["POST /v1/runs"]
	if !ok || runs.Count == 0 {
		t.Fatalf("no POST /v1/runs histogram in %v", st.Endpoints)
	}
	if stats, ok := st.Endpoints["GET /v1/stats"]; ok && stats.Count == 0 {
		t.Fatal("GET /v1/stats histogram present but empty")
	}
}

// TestRunRecordsRefusals pins the 503 path: a one-worker, tiny-queue
// service under a burst must refuse, and the client must count it.
func TestRunRecordsRefusals(t *testing.T) {
	svc, err := service.New(service.Config{Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	cfg := Config{
		Targets:   []string{ts.URL},
		Scenarios: []string{"incast-storm-256"},
		// Paper-scale runs cannot finish during the burst, so with one
		// worker and one queue slot the third submission onward must be
		// refused regardless of machine speed.
		ScaleMix: map[scenario.Scale]float64{scenario.ScalePaper: 1},
		Requests: 10,
		Rate:     5000,
		Seed:     5,
		// Every submission unique: no cache hits, no coalescing, so the
		// queue must overflow.
		MutateEvery:  1,
		PollInterval: 5 * time.Millisecond,
		// The two accepted jobs will not finish; give up on them fast
		// (they count as errors, which this test doesn't gate on).
		JobTimeout: 2 * time.Second,
	}
	sched, err := BuildSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), cfg, sched)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Refused == 0 {
		t.Fatal("no refusals from a 1-worker/1-slot service under a 5000/s burst")
	}
	if rep.RefusalRate <= 0 {
		t.Fatalf("refusal rate %v, want > 0", rep.RefusalRate)
	}
	st := rep.Targets[0].Stats
	if st == nil || st.Counters.Refused != int64(rep.Refused) {
		t.Fatalf("server refused %v, client counted %d", st.Counters, rep.Refused)
	}
}

// TestHashRoutePlacement pins -route=hash: placement is a pure function
// of request content (identical bodies always share a target), the rest
// of the schedule is unchanged from round-robin, and bad policies fail
// fast.
func TestHashRoutePlacement(t *testing.T) {
	cfg := Config{
		Targets:     []string{"http://a", "http://b", "http://c"},
		Requests:    120,
		Rate:        100,
		Seed:        42,
		MutateEvery: 5,
		SweepEvery:  9,
	}
	rr, err := BuildSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Route = RouteHash
	hashed, err := BuildSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr) != len(hashed) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(rr), len(hashed))
	}
	byBody := map[string]int{}
	used := map[int]bool{}
	for i := range hashed {
		// Placement must be the only difference from round-robin: the RNG
		// stream (arrivals, scenario draws, mutations) is untouched.
		a, b := rr[i], hashed[i]
		a.Target, b.Target = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("request %d differs beyond Target between rr and hash schedules", i)
		}
		if prev, ok := byBody[string(hashed[i].Body)]; ok && prev != hashed[i].Target {
			t.Fatalf("request %d: identical body routed to targets %d and %d", i, prev, hashed[i].Target)
		}
		byBody[string(hashed[i].Body)] = hashed[i].Target
		used[hashed[i].Target] = true
	}
	if len(used) < 2 {
		t.Fatalf("hash placement used %d of 3 targets; zipf catalog draws should spread", len(used))
	}

	cfg.Route = "bogus"
	if _, err := BuildSchedule(cfg); err == nil {
		t.Fatal("unknown route policy accepted")
	}
}

// TestPerTargetBreakdown drives a hash-routed load against two live
// services and checks the report's per-target ledger: it sums to the
// global one, and every target's cache hits landed where hashing homed
// the spec.
func TestPerTargetBreakdown(t *testing.T) {
	var targets []string
	for i := 0; i < 2; i++ {
		svc, err := service.New(service.Config{Workers: 2, CacheBytes: 16 << 20})
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close()
		ts := httptest.NewServer(svc.Handler())
		defer ts.Close()
		targets = append(targets, ts.URL)
	}
	cfg := Config{
		Targets:      targets,
		Route:        RouteHash,
		Scenarios:    []string{"quickstart", "burst-absorb"},
		Requests:     40,
		Rate:         400,
		Seed:         3,
		MutateEvery:  4,
		PollInterval: 2 * time.Millisecond,
		JobTimeout:   60 * time.Second,
	}
	sched, err := BuildSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), cfg, sched)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d request errors: %v", rep.Errors, rep.FirstErrors)
	}
	if len(rep.PerTarget) != 2 {
		t.Fatalf("per-target breakdown has %d entries, want 2", len(rep.PerTarget))
	}
	var reqs, done, refused, errors, hits int
	for i, tb := range rep.PerTarget {
		if tb.URL != targets[i] {
			t.Fatalf("per-target %d URL %q, want %q", i, tb.URL, targets[i])
		}
		reqs += tb.Requests
		done += tb.Done
		refused += tb.Refused
		errors += tb.Errors
		hits += tb.CacheHits
		if tb.Done > 0 && (tb.Latency.Count == 0 || tb.Latency.P50Ms <= 0) {
			t.Fatalf("per-target %d latency summary empty: %+v", i, tb.Latency)
		}
	}
	if reqs != rep.Requests || done != rep.Done || refused != rep.Refused || errors != rep.Errors || hits != rep.CacheHits {
		t.Fatalf("per-target sums (%d/%d/%d/%d/%d) do not reproduce the global ledger (%d/%d/%d/%d/%d)",
			reqs, done, refused, errors, hits, rep.Requests, rep.Done, rep.Refused, rep.Errors, rep.CacheHits)
	}
	// Hash routing homes every repeat on its cache's shard: with only
	// two hot scenarios the run must see hits, and each hit must be on
	// the target that ran the spec first (implied by nonzero per-target
	// hits summing to the global count, checked above).
	if rep.CacheHits == 0 {
		t.Fatal("no cache hits under hash routing with two hot scenarios")
	}
}
