// Package loadgen is the self-load-test layer: it replays a synthetic
// user population against one or more occamy-served instances and
// reports client-side SLOs (submit-to-done latency quantiles,
// throughput, cache hit ratio, refusal rate) next to the service's own
// GET /v1/stats view, so every scaling claim in the ROADMAP gets a
// measured before/after.
//
// The workload model is the one serving stacks actually face:
//
//   - open-loop arrivals — a Poisson (or uniform) process fires
//     submissions at a configured rate regardless of completions, so
//     queueing delay is measured, not hidden (no coordinated omission);
//   - zipf-distributed spec popularity over the catalog — a few hot
//     scenarios dominate, so the content-addressed cache sees the
//     realistic mix of hits, coalesces, and cold misses;
//   - seeded spec mutations — every Nth request perturbs the spec seed,
//     producing a fresh fingerprint (a guaranteed cache miss), which
//     keeps the workers busy instead of degenerating to 100% hits;
//   - sweep bursts — every Nth request is a small POST /v1/sweeps grid,
//     the bursty batch traffic of parameter-search clients;
//   - mixed scales — a weighted quick/full/paper mix models the spread
//     between interactive probes and evaluation-size runs.
//
// Everything is deterministic under Config.Seed: the full request
// schedule (arrival times, scenario choices, mutations, targets) is
// materialized up front by one seeded RNG, so two runs with the same
// seed submit byte-identical request sequences on identical timelines.
package loadgen

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"occamy/internal/fleet"
	"occamy/internal/scenario"
	"occamy/internal/service"
)

// Process names the arrival process.
const (
	// ProcessPoisson draws exponential interarrivals (open-loop M/G/k).
	ProcessPoisson = "poisson"
	// ProcessUniform spaces arrivals exactly 1/Rate apart.
	ProcessUniform = "uniform"
)

// Route names the target-placement policy.
const (
	// RouteRR round-robins requests across the targets (default).
	RouteRR = "rr"
	// RouteHash places each request on the consistent-hash home shard of
	// its content fingerprint — the same ring occamy-router uses — so
	// driving N workers directly exercises the exact placement a fronting
	// router would produce (repeat specs land where their cache entry
	// lives).
	RouteHash = "hash"
)

// Config shapes a load test. The zero value is not runnable; call
// WithDefaults (Build and Run do it for you).
type Config struct {
	// Targets are the occamy-served base URLs ("http://host:port").
	Targets []string
	// Route picks the target per request: RouteRR (default) or
	// RouteHash.
	Route string
	// Requests is the total number of submissions to schedule.
	Requests int
	// Rate is the arrival rate in requests/second (default 50).
	Rate float64
	// Process is ProcessPoisson (default) or ProcessUniform.
	Process string
	// Seed makes the whole schedule deterministic (default 1).
	Seed uint64

	// Concurrency bounds the HTTP client pool: at most this many
	// requests are in flight (submitting or polling) at once
	// (default 32). Arrivals past the bound queue client-side and the
	// wait counts into their submit-to-done latency.
	Concurrency int

	// ZipfS is the zipf skew exponent over the scenario catalog, > 1;
	// larger is more skewed (default 1.3).
	ZipfS float64
	// Scenarios restricts the catalog draw; empty means every
	// exportable (non-figure) catalog entry. Popularity rank follows
	// slice order: Scenarios[0] is the hottest spec.
	Scenarios []string
	// ScaleMix weighs the run scales (default {"quick": 1}). Weights
	// need not sum to 1.
	ScaleMix map[scenario.Scale]float64

	// MutateEvery perturbs the spec seed of every Nth request (a
	// guaranteed fresh fingerprint → cache miss); 0 never mutates.
	MutateEvery int
	// SweepEvery turns every Nth request into a small sweep burst
	// (POST /v1/sweeps, a 2-point policy grid); 0 never sweeps.
	SweepEvery int

	// PollInterval is the job status poll cadence (default 5ms);
	// JobTimeout bounds one submission's submit-to-done wait
	// (default 120s).
	PollInterval time.Duration
	JobTimeout   time.Duration
}

// WithDefaults resolves every defaultable field.
func (c Config) WithDefaults() Config {
	if c.Requests <= 0 {
		c.Requests = 100
	}
	if c.Rate <= 0 {
		c.Rate = 50
	}
	if c.Process == "" {
		c.Process = ProcessPoisson
	}
	if c.Route == "" {
		c.Route = RouteRR
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 32
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.3
	}
	if len(c.Scenarios) == 0 {
		c.Scenarios = ExportableScenarios()
	}
	if len(c.ScaleMix) == 0 {
		c.ScaleMix = map[scenario.Scale]float64{scenario.ScaleQuick: 1}
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 5 * time.Millisecond
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 120 * time.Second
	}
	return c
}

// ExportableScenarios lists the catalog entries a load test can submit
// (figure harnesses have no spec body).
func ExportableScenarios() []string {
	var out []string
	for _, name := range scenario.Names() {
		if sc, ok := scenario.Get(name); ok && sc.Tables == nil {
			out = append(out, name)
		}
	}
	return out
}

// Request is one scheduled submission, fully materialized: the executor
// POSTs Body to Target+Path without consulting the RNG again.
type Request struct {
	// At is the arrival offset from the start of the run.
	At time.Duration
	// Target indexes Config.Targets.
	Target int
	// Path is "/v1/runs" or "/v1/sweeps".
	Path string
	// Body is the strict-JSON request body.
	Body []byte

	// Bookkeeping for the report (derived, not consulted on send).
	Scenario string
	Scale    scenario.Scale
	Mutated  bool
	Sweep    bool
}

// sweepAxes is the fixed 2-point grid a sweep burst submits: both
// buffer-management policies over whatever spec the zipf draw picked.
var sweepAxes = []scenario.SweepAxis{{Path: "policy.kind", Values: []string{"dt", "occamy"}}}

// BuildSchedule materializes the full deterministic request schedule
// from the config. The same (config, seed) always yields the same
// schedule, byte for byte — the determinism tests pin this.
func BuildSchedule(cfg Config) ([]Request, error) {
	cfg = cfg.WithDefaults()
	if len(cfg.Targets) == 0 {
		// Schedules can be built without targets (dry runs, tests);
		// Target then stays 0.
		cfg.Targets = []string{""}
	}
	if cfg.Process != ProcessPoisson && cfg.Process != ProcessUniform {
		return nil, fmt.Errorf("loadgen: unknown arrival process %q (poisson|uniform)", cfg.Process)
	}
	var ring *fleet.Ring
	if cfg.Route == RouteHash {
		var err error
		if ring, err = fleet.NewRing(cfg.Targets, 0); err != nil {
			return nil, err
		}
	} else if cfg.Route != RouteRR {
		return nil, fmt.Errorf("loadgen: unknown route policy %q (rr|hash)", cfg.Route)
	}
	specs := make(map[string]scenario.Scenario, len(cfg.Scenarios))
	for _, name := range cfg.Scenarios {
		sc, ok := scenario.Get(name)
		if !ok {
			return nil, fmt.Errorf("loadgen: unknown scenario %q", name)
		}
		if sc.Tables != nil {
			return nil, fmt.Errorf("loadgen: %s is a figure harness; it has no submittable spec", name)
		}
		specs[name] = sc
	}
	scales, weights := sortedScaleMix(cfg.ScaleMix)

	rng := rand.New(rand.NewSource(int64(cfg.Seed)))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(cfg.Scenarios)-1))

	sched := make([]Request, 0, cfg.Requests)
	var at time.Duration
	for i := 0; i < cfg.Requests; i++ {
		// Draw every stochastic choice unconditionally and in a fixed
		// order, so the RNG stream (and thus the rest of the schedule)
		// does not depend on which branches a request takes.
		gap := 1 / cfg.Rate
		if cfg.Process == ProcessPoisson {
			gap = rng.ExpFloat64() / cfg.Rate
		}
		rank := int(zipf.Uint64())
		scalePick := rng.Float64()
		mutSeed := 1 + rng.Uint64()%(1<<62)

		at += time.Duration(gap * float64(time.Second))
		req := Request{
			At:       at,
			Target:   i % len(cfg.Targets),
			Scenario: cfg.Scenarios[rank],
			Scale:    pickScale(scales, weights, scalePick),
		}
		sp := specs[req.Scenario].SpecAt(req.Scale)
		if cfg.MutateEvery > 0 && (i+1)%cfg.MutateEvery == 0 {
			req.Mutated = true
			sp.Seed = mutSeed
		}
		body, err := sp.Marshal()
		if err != nil {
			return nil, fmt.Errorf("loadgen: marshaling %s: %w", req.Scenario, err)
		}
		if cfg.SweepEvery > 0 && (i+1)%cfg.SweepEvery == 0 {
			req.Sweep = true
			req.Path = "/v1/sweeps"
			req.Body, err = sweepBody(body, sweepAxes)
			if err != nil {
				return nil, err
			}
		} else {
			req.Path = "/v1/runs"
			req.Body = body
		}
		if ring != nil {
			// Hash placement keys on the same fingerprints the router
			// routes by (spec fingerprint for runs, sweep fingerprint for
			// sweeps), so repeats home onto the worker whose cache holds
			// them. Fingerprints don't consume RNG draws — the schedule
			// stays identical between rr and hash modes except for Target.
			key, err := sp.Fingerprint()
			if err != nil {
				return nil, fmt.Errorf("loadgen: fingerprinting %s: %w", req.Scenario, err)
			}
			if req.Sweep {
				if key, err = service.SweepFingerprint(sp, sweepAxes); err != nil {
					return nil, fmt.Errorf("loadgen: fingerprinting %s sweep: %w", req.Scenario, err)
				}
			}
			req.Target = ring.Lookup(key)
		}
		sched = append(sched, req)
	}
	return sched, nil
}

// sortedScaleMix flattens the weight map deterministically (map
// iteration order must never leak into the schedule).
func sortedScaleMix(mix map[scenario.Scale]float64) ([]scenario.Scale, []float64) {
	scales := make([]scenario.Scale, 0, len(mix))
	for s := range mix {
		scales = append(scales, s)
	}
	sort.Slice(scales, func(i, j int) bool { return scales[i] < scales[j] })
	weights := make([]float64, len(scales))
	var total float64
	for i, s := range scales {
		w := mix[s]
		if w < 0 {
			w = 0
		}
		weights[i] = w
		total += w
	}
	if total > 0 {
		for i := range weights {
			weights[i] /= total
		}
	}
	return scales, weights
}

// pickScale maps a uniform draw through the cumulative weights.
func pickScale(scales []scenario.Scale, weights []float64, u float64) scenario.Scale {
	var cum float64
	for i, w := range weights {
		cum += w
		if u < cum {
			return scales[i]
		}
	}
	return scales[len(scales)-1]
}
