package loadgen

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"occamy/internal/metrics"
	"occamy/internal/service"
)

// LatencySummary is the client-side submit-to-done distribution in
// milliseconds (computed with the metrics quantile layer).
type LatencySummary struct {
	Count  int     `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
}

// TargetStats is one target's server-side view after the run.
type TargetStats struct {
	URL   string         `json:"url"`
	Stats *service.Stats `json:"stats,omitempty"`
	Err   string         `json:"error,omitempty"`
}

// TargetBreakdown is the client-observed ledger of one target: which
// requests the schedule placed there and how they fared. Summed over
// targets it reproduces the report's global ledger — under -route=hash
// it is the per-shard load view (skew, per-shard refusals, per-shard
// latency) that the global numbers average away.
type TargetBreakdown struct {
	URL      string `json:"url"`
	Requests int    `json:"requests"`

	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Canceled  int `json:"canceled"`
	Refused   int `json:"refused"`
	Errors    int `json:"errors"`
	CacheHits int `json:"cache_hits"`

	Latency LatencySummary `json:"latency"`
}

// Report is the load test result: the client-side ledger, the latency
// distribution, and each target's /v1/stats snapshot.
type Report struct {
	Seed       uint64  `json:"seed"`
	Process    string  `json:"process"`
	Route      string  `json:"route"`
	RatePerSec float64 `json:"rate_per_sec"`
	Requests   int     `json:"requests"`

	// Client-observed outcome ledger. Requests == Done + Failed +
	// Canceled + Refused + Errors (every scheduled request lands in
	// exactly one bucket; timeouts count as Errors).
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Canceled int `json:"canceled"`
	Refused  int `json:"refused"`
	Errors   int `json:"errors"`

	// CacheHits counts submissions answered terminal-on-arrival with
	// the cached flag set; Mutated and Sweeps describe the schedule.
	CacheHits int `json:"cache_hits"`
	Mutated   int `json:"mutated"`
	Sweeps    int `json:"sweeps"`

	ElapsedSeconds   float64 `json:"elapsed_seconds"`
	ThroughputPerSec float64 `json:"throughput_per_sec"` // terminal outcomes / elapsed
	CacheHitRatio    float64 `json:"cache_hit_ratio"`    // hits / accepted submissions
	RefusalRate      float64 `json:"refusal_rate"`       // refused / requests

	Latency LatencySummary `json:"latency"`

	// PerTarget breaks the client ledger down by target; Targets carries
	// each target's own /v1/stats snapshot.
	PerTarget []TargetBreakdown `json:"per_target,omitempty"`
	Targets   []TargetStats     `json:"targets,omitempty"`

	// FirstErrors carries up to 5 representative error strings so a
	// failed CI run is diagnosable from the report alone.
	FirstErrors []string `json:"first_errors,omitempty"`
}

// summarize folds the outcomes into a report.
func summarize(cfg Config, sched []Request, outcomes []outcome, elapsed time.Duration) *Report {
	rep := &Report{
		Seed:           cfg.Seed,
		Process:        cfg.Process,
		Route:          cfg.Route,
		RatePerSec:     cfg.Rate,
		Requests:       len(sched),
		ElapsedSeconds: elapsed.Seconds(),
	}
	for _, r := range sched {
		if r.Mutated {
			rep.Mutated++
		}
		if r.Sweep {
			rep.Sweeps++
		}
	}
	perTarget := make([]TargetBreakdown, len(cfg.Targets))
	perLat := make([][]float64, len(cfg.Targets))
	for i, url := range cfg.Targets {
		perTarget[i].URL = url
	}
	var lat []float64 // milliseconds
	for _, o := range outcomes {
		var tb *TargetBreakdown
		if o.target >= 0 && o.target < len(perTarget) {
			tb = &perTarget[o.target]
			tb.Requests++
		}
		switch {
		case o.err != nil:
			rep.Errors++
			if tb != nil {
				tb.Errors++
			}
			if len(rep.FirstErrors) < 5 {
				rep.FirstErrors = append(rep.FirstErrors, o.err.Error())
			}
			continue
		case o.refused:
			rep.Refused++
			if tb != nil {
				tb.Refused++
			}
			continue
		}
		switch o.state {
		case "done":
			rep.Done++
		case "failed":
			rep.Failed++
		case "canceled":
			rep.Canceled++
		}
		if o.cached {
			rep.CacheHits++
		}
		if tb != nil {
			switch o.state {
			case "done":
				tb.Done++
			case "failed":
				tb.Failed++
			case "canceled":
				tb.Canceled++
			}
			if o.cached {
				tb.CacheHits++
			}
			perLat[o.target] = append(perLat[o.target], float64(o.latency)/float64(time.Millisecond))
		}
		lat = append(lat, float64(o.latency)/float64(time.Millisecond))
	}
	for i := range perTarget {
		perTarget[i].Latency = latencySummary(perLat[i])
	}
	rep.PerTarget = perTarget
	if elapsed > 0 {
		rep.ThroughputPerSec = float64(rep.Done+rep.Failed+rep.Canceled) / elapsed.Seconds()
	}
	if accepted := rep.Done + rep.Failed + rep.Canceled; accepted > 0 {
		rep.CacheHitRatio = float64(rep.CacheHits) / float64(accepted)
	}
	if rep.Requests > 0 {
		rep.RefusalRate = float64(rep.Refused) / float64(rep.Requests)
	}
	rep.Latency = latencySummary(lat)
	return rep
}

// latencySummary reduces millisecond samples through the metrics
// quantile layer.
func latencySummary(ms []float64) LatencySummary {
	return LatencySummary{
		Count:  len(ms),
		MeanMs: round3(metrics.Mean(ms)),
		P50Ms:  round3(metrics.Percentile(ms, 0.50)),
		P90Ms:  round3(metrics.Percentile(ms, 0.90)),
		P99Ms:  round3(metrics.Percentile(ms, 0.99)),
		P999Ms: round3(metrics.Percentile(ms, 0.999)),
	}
}

func round3(f float64) float64 { return float64(int64(f*1000+0.5)) / 1000 }

// serverSubmitP99 returns the worst per-server handler p99 for
// "POST /v1/runs" across the fetched /v1/stats snapshots, and how many
// servers reported one.
func (r *Report) serverSubmitP99() (p99 float64, n int) {
	for _, t := range r.Targets {
		if t.Stats == nil {
			continue
		}
		e, ok := t.Stats.Endpoints["POST /v1/runs"]
		if !ok || e.Count == 0 {
			continue
		}
		n++
		p99 = max(p99, e.P99Ms)
	}
	return p99, n
}

// Render prints the human-readable report.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "occamy-loadgen report (seed=%d process=%s route=%s rate=%.5g/s requests=%d)\n",
		r.Seed, r.Process, r.Route, r.RatePerSec, r.Requests)
	fmt.Fprintf(&b, "  outcomes    done %d  failed %d  canceled %d  refused %d  errors %d\n",
		r.Done, r.Failed, r.Canceled, r.Refused, r.Errors)
	fmt.Fprintf(&b, "  schedule    mutated %d  sweep-bursts %d\n", r.Mutated, r.Sweeps)
	fmt.Fprintf(&b, "  cache       hits %d  hit-ratio %.1f%%\n", r.CacheHits, 100*r.CacheHitRatio)
	fmt.Fprintf(&b, "  refusals    rate %.2f%%\n", 100*r.RefusalRate)
	fmt.Fprintf(&b, "  elapsed     %.2fs  throughput %.1f jobs/s\n", r.ElapsedSeconds, r.ThroughputPerSec)
	fmt.Fprintf(&b, "  submit-to-done latency (ms): p50 %.3g  p90 %.3g  p99 %.3g  p999 %.3g  mean %.3g\n",
		r.Latency.P50Ms, r.Latency.P90Ms, r.Latency.P99Ms, r.Latency.P999Ms, r.Latency.MeanMs)
	if srvP99, n := r.serverSubmitP99(); n > 0 {
		// Client p99 spans submit→poll→terminal; the server's handler p99
		// covers only the POST itself. The gap is queueing + polling lag —
		// the skew this line makes visible without opening /v1/stats.
		fmt.Fprintf(&b, "  server-side  POST /v1/runs p99 %.3gms (client p99 %.3gms, skew %.3gms",
			srvP99, r.Latency.P99Ms, r.Latency.P99Ms-srvP99)
		if n > 1 {
			fmt.Fprintf(&b, ", max over %d servers", n)
		}
		b.WriteString(")\n")
	}
	for _, e := range r.FirstErrors {
		fmt.Fprintf(&b, "  error: %s\n", e)
	}
	if len(r.PerTarget) > 1 {
		for _, tb := range r.PerTarget {
			fmt.Fprintf(&b, "  target %s: %d reqs  done %d  failed %d  canceled %d  refused %d  errors %d  hits %d  p99 %.3gms\n",
				tb.URL, tb.Requests, tb.Done, tb.Failed, tb.Canceled, tb.Refused, tb.Errors, tb.CacheHits,
				tb.Latency.P99Ms)
		}
	}
	for _, t := range r.Targets {
		if t.Err != "" {
			fmt.Fprintf(&b, "server %s: stats unavailable: %s\n", t.URL, t.Err)
			continue
		}
		s := t.Stats
		fmt.Fprintf(&b, "server %s (uptime %.1fs, workers %d):\n", t.URL, s.UptimeSeconds, s.Workers)
		fmt.Fprintf(&b, "  queue %d/%d  queued %d  running %d  utilization %.1f%%\n",
			s.QueueLen, s.QueueCap, s.Queued, s.Running, 100*s.Utilization)
		c := s.Counters
		fmt.Fprintf(&b, "  ledger  submitted %d = cache_hits %d + coalesced %d + enqueued %d + refused %d\n",
			c.Submitted, c.CacheHits, c.Coalesced, c.Enqueued, c.Refused)
		fmt.Fprintf(&b, "          enqueued %d -> done %d  failed %d  canceled %d\n",
			c.Enqueued, c.Done, c.Failed, c.Canceled)
		fmt.Fprintf(&b, "  cache   entries %d  bytes %d  hits %d  misses %d\n",
			s.Cache.Entries, s.Cache.Bytes, s.Cache.Hits, s.Cache.Misses)
		pats := make([]string, 0, len(s.Endpoints))
		for pat := range s.Endpoints {
			pats = append(pats, pat)
		}
		sort.Strings(pats)
		for _, pat := range pats {
			e := s.Endpoints[pat]
			fmt.Fprintf(&b, "  %-28s n=%-6d p50 %.3gms  p99 %.3gms  p999 %.3gms\n",
				pat, e.Count, e.P50Ms, e.P99Ms, e.P999Ms)
		}
	}
	return b.String()
}

// Thresholds are the CI gate: any violated bound fails the run.
type Thresholds struct {
	// MaxP99 bounds the client-side p99 submit-to-done latency
	// (0 = unchecked).
	MaxP99 time.Duration
	// MinHitRatio is the minimum cache hit ratio (negative = unchecked;
	// 0 asserts "no worse than none").
	MinHitRatio float64
	// MaxRefusalRate caps Refused/Requests (negative = unchecked).
	MaxRefusalRate float64
	// MaxErrors caps transport/protocol errors (negative = unchecked).
	MaxErrors int
}

// Check returns every violated threshold.
func (r *Report) Check(t Thresholds) []error {
	var errs []error
	if t.MaxP99 > 0 {
		if p99 := time.Duration(r.Latency.P99Ms * float64(time.Millisecond)); p99 > t.MaxP99 {
			errs = append(errs, fmt.Errorf("p99 %.3gms exceeds bound %s", r.Latency.P99Ms, t.MaxP99))
		}
	}
	if t.MinHitRatio >= 0 && r.CacheHitRatio < t.MinHitRatio {
		errs = append(errs, fmt.Errorf("cache hit ratio %.3f below bound %.3f", r.CacheHitRatio, t.MinHitRatio))
	}
	if t.MaxRefusalRate >= 0 && r.RefusalRate > t.MaxRefusalRate {
		errs = append(errs, fmt.Errorf("refusal rate %.3f exceeds bound %.3f", r.RefusalRate, t.MaxRefusalRate))
	}
	if t.MaxErrors >= 0 && r.Errors > t.MaxErrors {
		errs = append(errs, fmt.Errorf("%d request errors exceed bound %d", r.Errors, t.MaxErrors))
	}
	return errs
}
