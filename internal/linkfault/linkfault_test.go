package linkfault

import (
	"testing"

	"occamy/internal/pkt"
	"occamy/internal/sim"
)

// drive offers n minimal packets through the link's wrapped sink at the
// current instant and drains the engine (jitter events, hold timers).
func drive(eng *sim.Engine, sink func(*pkt.Packet), n int) {
	for i := 0; i < n; i++ {
		p := &pkt.Packet{ID: uint64(i + 1), Size: 1000, Seq: int64(i)}
		sink(p)
	}
	eng.Run()
}

func onePlan(seed uint64, prof Profile) (*sim.Engine, *Plan) {
	eng := sim.NewEngine()
	return eng, NewPlan(eng, nil, Config{Seed: seed, HostLeaf: &prof})
}

func TestIdleProfilePassesThrough(t *testing.T) {
	eng, pl := onePlan(1, Profile{})
	var got int
	sink := pl.Wrap(ClassHostLeaf, "l", func(p *pkt.Packet) { got++ })
	if pl.Active() || len(pl.Links) != 0 {
		t.Fatalf("inactive profile created links: %+v", pl.Links)
	}
	drive(eng, sink, 10)
	if got != 10 {
		t.Fatalf("pass-through delivered %d/10", got)
	}
	if s := pl.Snapshot(); s != nil {
		t.Fatalf("snapshot of unwrapped plan = %v, want nil", s)
	}
}

func TestLossRateAndConservation(t *testing.T) {
	eng, pl := onePlan(7, Profile{LossProb: 0.1})
	var got int64
	sink := pl.Wrap(ClassHostLeaf, "l", func(p *pkt.Packet) { got++ })
	const n = 20000
	drive(eng, sink, n)
	st := pl.Links[0].Stats()
	if st.Offered != n || st.Delivered != got {
		t.Fatalf("offered %d delivered %d, sink saw %d", st.Offered, st.Delivered, got)
	}
	if st.InFlight() != 0 {
		t.Fatalf("in-flight %d after drain", st.InFlight())
	}
	rate := float64(st.Dropped) / n
	if rate < 0.08 || rate > 0.12 {
		t.Fatalf("loss rate %.4f far from 0.1", rate)
	}
}

func TestGilbertElliottLossIsBursty(t *testing.T) {
	// Bad state loses everything; ~2-packet bad dwell time. The drop
	// pattern must contain consecutive-loss runs, which i.i.d. loss at
	// the same average rate almost never produces at length >= 3.
	eng, pl := onePlan(11, Profile{GEBadLossProb: 1, GEGoodToBad: 0.05, GEBadToGood: 0.5})
	var delivered []int64
	sink := pl.Wrap(ClassHostLeaf, "l", func(p *pkt.Packet) { delivered = append(delivered, p.Seq) })
	const n = 5000
	drive(eng, sink, n)
	st := pl.Links[0].Stats()
	if st.Dropped == 0 {
		t.Fatal("GE chain dropped nothing")
	}
	// Longest gap in the delivered seq stream = longest loss burst.
	longest, prev := int64(0), int64(-1)
	for _, s := range delivered {
		if gap := s - prev - 1; gap > longest {
			longest = gap
		}
		prev = s
	}
	if longest < 3 {
		t.Fatalf("longest loss burst %d, want >= 3 (bursty loss)", longest)
	}
}

func TestDuplicationDeliversTwiceWithSameID(t *testing.T) {
	eng, pl := onePlan(3, Profile{DupProb: 0.5})
	var ids []uint64
	sink := pl.Wrap(ClassHostLeaf, "l", func(p *pkt.Packet) { ids = append(ids, p.ID) })
	const n = 1000
	drive(eng, sink, n)
	st := pl.Links[0].Stats()
	if st.Duplicated == 0 {
		t.Fatal("no duplicates at dup_prob 0.5")
	}
	if st.Delivered != st.Offered+st.Duplicated {
		t.Fatalf("delivered %d != offered %d + dup %d", st.Delivered, st.Offered, st.Duplicated)
	}
	seen := map[uint64]int{}
	for _, id := range ids {
		seen[id]++
	}
	var twice int64
	for _, c := range seen {
		if c == 2 {
			twice++
		} else if c != 1 {
			t.Fatalf("packet delivered %d times", c)
		}
	}
	if twice != st.Duplicated {
		t.Fatalf("%d ids delivered twice, stats say %d duplicates", twice, st.Duplicated)
	}
}

func TestHoldBackReordersBehindNextPacket(t *testing.T) {
	eng, pl := onePlan(5, Profile{ReorderProb: 1, ReorderHold: sim.Millisecond})
	var seqs []int64
	sink := pl.Wrap(ClassHostLeaf, "l", func(p *pkt.Packet) { seqs = append(seqs, p.Seq) })
	// Four packets: 0 held, 1 overtakes and releases 0; 2 held, 3
	// overtakes and releases 2.
	drive(eng, sink, 4)
	want := []int64{1, 0, 3, 2}
	if len(seqs) != len(want) {
		t.Fatalf("delivered %v", seqs)
	}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("delivered %v, want %v", seqs, want)
		}
	}
	st := pl.Links[0].Stats()
	if st.Held != 2 || st.Reordered != 2 {
		t.Fatalf("held %d reordered %d, want 2/2", st.Held, st.Reordered)
	}
}

func TestHoldHorizonReleasesWithoutOvertake(t *testing.T) {
	const hold = 50 * sim.Microsecond
	eng, pl := onePlan(5, Profile{ReorderProb: 1, ReorderHold: hold})
	var at []sim.Time
	sink := pl.Wrap(ClassHostLeaf, "l", func(p *pkt.Packet) { at = append(at, eng.Now()) })
	sink(&pkt.Packet{ID: 1, Size: 100})
	eng.Run()
	if len(at) != 1 || at[0] != sim.Time(hold) {
		t.Fatalf("lone held packet delivered at %v, want exactly the %v horizon", at, hold)
	}
	st := pl.Links[0].Stats()
	if st.Held != 1 || st.Reordered != 0 {
		t.Fatalf("held %d reordered %d, want 1/0 (timer release is not a reorder)", st.Held, st.Reordered)
	}
	if st.InFlight() != 0 {
		t.Fatalf("in-flight %d after release", st.InFlight())
	}
}

func TestJitterBoundedAndEventuallyDelivered(t *testing.T) {
	const jmax = 10 * sim.Microsecond
	eng, pl := onePlan(9, Profile{JitterMax: jmax})
	var at []sim.Time
	sink := pl.Wrap(ClassHostLeaf, "l", func(p *pkt.Packet) { at = append(at, eng.Now()) })
	const n = 500
	drive(eng, sink, n)
	if len(at) != n {
		t.Fatalf("delivered %d/%d", len(at), n)
	}
	var jittered int
	for _, ts := range at {
		if ts < 0 || ts > sim.Time(jmax) {
			t.Fatalf("delivery at %v outside [0, %v]", ts, jmax)
		}
		if ts > 0 {
			jittered++
		}
	}
	if jittered == 0 {
		t.Fatal("no packet was actually delayed")
	}
}

// The fault stream of a link must depend only on (seed, name): wiring
// order, sibling links, and the engine sharing must not shift it.
func TestPerLinkStreamsIndependentOfWiringOrder(t *testing.T) {
	prof := Profile{LossProb: 0.2, DupProb: 0.1}
	run := func(order []string) map[string]Stats {
		eng := sim.NewEngine()
		pl := NewPlan(eng, nil, Config{Seed: 42, HostLeaf: &prof})
		sinks := map[string]func(*pkt.Packet){}
		for _, name := range order {
			sinks[name] = pl.Wrap(ClassHostLeaf, name, func(p *pkt.Packet) {})
		}
		for i := 0; i < 2000; i++ {
			for _, name := range []string{"a", "b", "c"} { // fixed offer order
				sinks[name](&pkt.Packet{ID: uint64(i), Size: 100})
			}
		}
		eng.Run()
		out := map[string]Stats{}
		for _, l := range pl.Links {
			out[l.Name] = l.Stats()
		}
		return out
	}
	fwd := run([]string{"a", "b", "c"})
	rev := run([]string{"c", "b", "a"})
	for _, name := range []string{"a", "b", "c"} {
		if fwd[name] != rev[name] {
			t.Fatalf("link %s stats differ across wiring orders: %+v vs %+v", name, fwd[name], rev[name])
		}
	}
	if fwd["a"] == fwd["b"] && fwd["b"] == fwd["c"] {
		t.Fatal("all three links produced identical stats; per-link streams are correlated")
	}
}

func TestSnapshotKeepsWiringOrder(t *testing.T) {
	eng, pl := onePlan(1, Profile{LossProb: 0.5})
	_ = eng
	for _, name := range []string{"z", "a", "m"} {
		pl.Wrap(ClassHostLeaf, name, func(p *pkt.Packet) {})
	}
	snap := pl.Snapshot()
	if len(snap) != 3 || snap[0].Name != "z" || snap[1].Name != "a" || snap[2].Name != "m" {
		t.Fatalf("snapshot order %v, want wiring order z a m", snap)
	}
}

func TestClassSelection(t *testing.T) {
	eng := sim.NewEngine()
	hl := Profile{LossProb: 1}
	pl := NewPlan(eng, nil, Config{Seed: 1, HostLeaf: &hl})
	var fabric int
	fsink := pl.Wrap(ClassLeafSpine, "leaf0->spine0", func(p *pkt.Packet) { fabric++ })
	hsink := pl.Wrap(ClassHostLeaf, "h0->leaf0", func(p *pkt.Packet) { t.Fatal("host-leaf delivered despite loss 1") })
	fsink(&pkt.Packet{ID: 1})
	hsink(&pkt.Packet{ID: 2})
	eng.Run()
	if fabric != 1 {
		t.Fatalf("fabric link (no profile) delivered %d/1", fabric)
	}
	if len(pl.Links) != 1 {
		t.Fatalf("%d links wrapped, want only the host-leaf one", len(pl.Links))
	}
}

// Dropped and duplicated packets must round-trip through the pool
// without corrupting it: a dropped packet is recycled, a duplicate is a
// fresh allocation.
func TestPoolRecycling(t *testing.T) {
	eng := sim.NewEngine()
	pool := pkt.NewPool()
	prof := Profile{LossProb: 0.5, DupProb: 0.25}
	pl := NewPlan(eng, pool, Config{Seed: 13, HostLeaf: &prof})
	sink := pl.Wrap(ClassHostLeaf, "l", func(p *pkt.Packet) { pool.Put(p) })
	for i := 0; i < 5000; i++ {
		p := pool.Get()
		p.ID = uint64(i + 1)
		p.Size = 100
		sink(p)
	}
	eng.Run()
	st := pl.Links[0].Stats()
	if st.Dropped == 0 || st.Duplicated == 0 {
		t.Fatalf("faults not exercised: %+v", st)
	}
	if st.InFlight() != 0 {
		t.Fatalf("in-flight %d after drain", st.InFlight())
	}
}
