// Package linkfault is a deterministic per-link fault emulator: it
// interposes on the delivery seam of the simulator's links — the sink
// functions handed to switchsim.Switch.AttachPort and netsim.Host.Wire
// — and injects i.i.d. loss, Gilbert–Elliott bursty loss, duplication,
// hold-back reordering, and bounded delay jitter without touching
// switch or host code.
//
// Every link draws from its own RNG stream derived from the run seed
// and the link's stable name, so fault decisions are independent of
// wiring order and of sweep parallelism: the same seed produces the
// same per-link fault sequence whether the run executes alone or as one
// grid point among sixteen.
package linkfault

import (
	"occamy/internal/pkt"
	"occamy/internal/sim"
)

// Class labels a link's position in the topology; the scenario layer
// selects fault profiles by class.
type Class int

const (
	// ClassHostLeaf covers access links: host<->switch on a star,
	// host<->leaf on a fabric (both directions).
	ClassHostLeaf Class = iota
	// ClassLeafSpine covers fabric links: leaf<->spine (both directions).
	ClassLeafSpine
)

func (c Class) String() string {
	if c == ClassLeafSpine {
		return "leaf-spine"
	}
	return "host-leaf"
}

// Profile is one link's fault menu. The zero value is an ideal link.
// The field set mirrors the SimNet-style emulators (loss probability,
// duplicate-next, reorder-next, added latency) plus a two-state
// Gilbert–Elliott chain for bursty loss. JSON tags are the scenario
// spec schema (the `faults` block).
type Profile struct {
	// LossProb drops each packet independently with this probability.
	LossProb float64 `json:"loss_prob,omitempty"`

	// The Gilbert–Elliott chain: while in the bad state each packet is
	// additionally lost with GEBadLossProb. After every packet the chain
	// transitions good→bad with GEGoodToBad and bad→good with
	// GEBadToGood. All three zero disables the chain.
	GEBadLossProb float64 `json:"ge_bad_loss_prob,omitempty"`
	GEGoodToBad   float64 `json:"ge_good_to_bad,omitempty"`
	GEBadToGood   float64 `json:"ge_bad_to_good,omitempty"`

	// DupProb delivers each surviving packet twice with this probability.
	DupProb float64 `json:"dup_prob,omitempty"`

	// ReorderProb holds a surviving packet back with this probability
	// (one held packet per link at a time); the held packet is released
	// as soon as a later packet overtakes it, or after ReorderHold at the
	// latest (the max-hold horizon). ReorderProb > 0 requires
	// ReorderHold > 0.
	ReorderProb float64      `json:"reorder_prob,omitempty"`
	ReorderHold sim.Duration `json:"reorder_hold,omitempty"`

	// JitterMax adds a uniform random delay in [0, JitterMax] to each
	// surviving packet's propagation, independently per packet — so
	// enough jitter also reorders.
	JitterMax sim.Duration `json:"jitter_max,omitempty"`
}

// Active reports whether the profile injects any fault at all.
func (p *Profile) Active() bool {
	return p != nil && (p.LossProb > 0 || p.geEnabled() || p.DupProb > 0 ||
		p.ReorderProb > 0 || p.JitterMax > 0)
}

func (p *Profile) geEnabled() bool {
	return p.GEBadLossProb > 0 || p.GEGoodToBad > 0 || p.GEBadToGood > 0
}

// Stats counts one link's injected faults and traffic. The conservation
// invariant Offered + Duplicated == Delivered + Dropped + InFlight()
// holds at every instant.
type Stats struct {
	// Offered counts packets handed to the link by the sender side.
	Offered int64
	// Delivered counts packets handed on to the wrapped sink (duplicate
	// copies included).
	Delivered int64
	// Dropped counts injected losses (i.i.d. plus bursty).
	Dropped int64
	// Duplicated counts extra copies created.
	Duplicated int64
	// Held counts hold-back reorder events; Reordered counts held
	// packets that were actually overtaken before release (a timer
	// release within the hold horizon only delayed the packet).
	Held      int64
	Reordered int64
}

// InFlight returns the packets currently inside the emulator: held back
// or jitter-delayed, offered but neither delivered nor dropped yet.
func (s Stats) InFlight() int64 {
	return s.Offered + s.Duplicated - s.Delivered - s.Dropped
}

// Config selects the fault profiles of a topology's link classes. A nil
// profile (or an inactive one) leaves that class's links ideal and
// unwrapped.
type Config struct {
	// Seed is the base fault seed; each link derives its own RNG stream
	// from it and the link name.
	Seed      uint64
	HostLeaf  *Profile
	LeafSpine *Profile
}

// Enabled reports whether any link class has an active profile.
func (c Config) Enabled() bool {
	return c.HostLeaf.Active() || c.LeafSpine.Active()
}

// Plan owns the faulted links of one network. Topology builders call
// Wrap on every link sink; links with no active profile pass through
// untouched (and unrecorded).
type Plan struct {
	eng  *sim.Engine
	pool *pkt.Pool
	cfg  Config
	// Links holds the wrapped links in wiring order — a stable order for
	// deterministic reporting (no map iteration anywhere).
	Links []*Link
}

// NewPlan builds a fault plan for one network. pool may be nil (dropped
// and duplicated packets then fall to the garbage collector).
func NewPlan(eng *sim.Engine, pool *pkt.Pool, cfg Config) *Plan {
	return &Plan{eng: eng, pool: pool, cfg: cfg}
}

// Active reports whether the plan wraps anything at all.
func (pl *Plan) Active() bool { return pl != nil && pl.cfg.Enabled() }

func (pl *Plan) profileFor(class Class) *Profile {
	if class == ClassLeafSpine {
		return pl.cfg.LeafSpine
	}
	return pl.cfg.HostLeaf
}

// Wrap interposes the class's fault profile on a link sink. name must
// be stable across runs (it seeds the link's RNG stream); sinks of
// classes without an active profile are returned unchanged.
func (pl *Plan) Wrap(class Class, name string, sink func(*pkt.Packet)) func(*pkt.Packet) {
	prof := pl.profileFor(class)
	if !prof.Active() {
		return sink
	}
	l := &Link{
		Name:  name,
		Class: class,
		prof:  *prof,
		eng:   pl.eng,
		pool:  pl.pool,
		rng:   sim.NewRand(linkSeed(pl.cfg.Seed, name)),
		sink:  sink,
	}
	pl.Links = append(pl.Links, l)
	return l.Offer
}

// LinkStats is one link's identity plus its fault counters.
type LinkStats struct {
	Name  string
	Class Class
	Stats
}

// Snapshot returns every wrapped link's counters in wiring order.
func (pl *Plan) Snapshot() []LinkStats {
	if pl == nil || len(pl.Links) == 0 {
		return nil
	}
	out := make([]LinkStats, len(pl.Links))
	for i, l := range pl.Links {
		out[i] = LinkStats{Name: l.Name, Class: l.Class, Stats: l.stats}
	}
	return out
}

// linkSeed derives a link's RNG seed from the base seed and the link's
// stable name (FNV-1a), so fault streams are independent of wiring
// order; sim.NewRand's splitmix scrambling decorrelates nearby seeds.
func linkSeed(seed uint64, name string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 0x100000001b3
	}
	return seed ^ h
}

// Link is one faulted unidirectional link. It implements sim.Handler
// for its jitter-delayed deliveries.
type Link struct {
	Name  string
	Class Class

	prof Profile
	eng  *sim.Engine
	pool *pkt.Pool
	rng  *sim.Rand
	sink func(*pkt.Packet)

	geBad     bool
	held      *pkt.Packet
	holdTimer sim.Timer

	stats Stats
}

// Stats returns the link's current fault counters.
func (l *Link) Stats() Stats { return l.stats }

// Offer is the wrapped sink: it runs the fault lottery on each packet
// at its nominal arrival instant. The RNG draw order per packet is
// fixed (loss, GE, dup, hold, jitter — each drawn only when its feature
// is enabled), so the decision stream is a pure function of the link
// seed and the packet count.
func (l *Link) Offer(p *pkt.Packet) {
	l.stats.Offered++
	lost := false
	if l.prof.LossProb > 0 && l.rng.Float64() < l.prof.LossProb {
		lost = true
	}
	if l.prof.geEnabled() {
		if l.geBad {
			if l.prof.GEBadLossProb > 0 && l.rng.Float64() < l.prof.GEBadLossProb {
				lost = true
			}
			if l.prof.GEBadToGood > 0 && l.rng.Float64() < l.prof.GEBadToGood {
				l.geBad = false
			}
		} else if l.prof.GEGoodToBad > 0 && l.rng.Float64() < l.prof.GEGoodToBad {
			l.geBad = true
		}
	}
	if lost {
		l.stats.Dropped++
		l.recycle(p)
		return
	}
	if l.prof.DupProb > 0 && l.rng.Float64() < l.prof.DupProb {
		l.stats.Duplicated++
		l.forward(l.copy(p))
	}
	if l.prof.ReorderProb > 0 && l.held == nil && l.rng.Float64() < l.prof.ReorderProb {
		l.stats.Held++
		l.held = p
		l.holdTimer = l.eng.AfterTimer(l.prof.ReorderHold, l.releaseHeldExpired)
		return
	}
	l.forward(p)
	// A packet just went past: release any held packet behind it — it
	// has now been overtaken, which is the reordering we wanted.
	if l.held != nil {
		l.holdTimer.Stop()
		h := l.held
		l.held = nil
		l.stats.Reordered++
		l.deliver(h)
	}
}

// releaseHeldExpired is the max-hold horizon: no packet overtook the
// held one in time, so it goes out merely delayed, not reordered.
func (l *Link) releaseHeldExpired() {
	if l.held == nil {
		return
	}
	h := l.held
	l.held = nil
	l.deliver(h)
}

// forward sends a packet onward, through the jitter stage if enabled.
func (l *Link) forward(p *pkt.Packet) {
	if l.prof.JitterMax > 0 {
		if d := sim.Duration(l.rng.Int63n(int64(l.prof.JitterMax) + 1)); d > 0 {
			l.eng.AfterEvent(d, l, p)
			return
		}
	}
	l.deliver(p)
}

// OnEvent implements sim.Handler: a jitter-delayed packet arrives.
func (l *Link) OnEvent(arg any) {
	l.deliver(arg.(*pkt.Packet))
}

func (l *Link) deliver(p *pkt.Packet) {
	l.stats.Delivered++
	l.sink(p)
}

// copy clones a packet for duplication. The clone keeps the original's
// ID: a link-level duplicate is the same packet arriving twice, and
// endpoints use the ID to recognize it as such.
func (l *Link) copy(p *pkt.Packet) *pkt.Packet {
	var q *pkt.Packet
	if l.pool != nil {
		q = l.pool.Get()
	} else {
		q = &pkt.Packet{}
	}
	*q = *p
	return q
}

func (l *Link) recycle(p *pkt.Packet) {
	if l.pool != nil {
		l.pool.Put(p)
	}
}
