package cellmem

import (
	"testing"
	"testing/quick"
)

func testPool(t *testing.T, cells int) *Pool {
	t.Helper()
	return New(Config{CellSize: 200, NumCells: cells})
}

func TestAllocRelease(t *testing.T) {
	p := testPool(t, 10)
	ref := p.Alloc(450, 7) // 3 cells
	if ref == NilPD {
		t.Fatal("Alloc failed with free buffer")
	}
	if p.FreeCells() != 7 {
		t.Fatalf("FreeCells = %d, want 7", p.FreeCells())
	}
	if p.Len(ref) != 450 || p.PktID(ref) != 7 || p.Cells(ref) != 3 {
		t.Fatalf("descriptor = len %d id %d cells %d", p.Len(ref), p.PktID(ref), p.Cells(ref))
	}
	p.Release(ref, true)
	if p.FreeCells() != 10 {
		t.Fatalf("FreeCells after release = %d, want 10", p.FreeCells())
	}
	p.CheckInvariants()
}

func TestAllocExhaustion(t *testing.T) {
	p := testPool(t, 4)
	a := p.Alloc(600, 1) // 3 cells
	if a == NilPD {
		t.Fatal("first Alloc failed")
	}
	if p.Alloc(400, 2) != NilPD { // needs 2, only 1 free
		t.Fatal("Alloc succeeded beyond capacity")
	}
	b := p.Alloc(200, 3) // exactly the last cell
	if b == NilPD {
		t.Fatal("Alloc of final cell failed")
	}
	if p.FreeCells() != 0 {
		t.Fatalf("FreeCells = %d, want 0", p.FreeCells())
	}
	p.Release(a, false)
	p.Release(b, true)
	p.CheckInvariants()
}

func TestCellsFor(t *testing.T) {
	p := testPool(t, 8)
	cases := []struct{ bytes, cells int }{
		{0, 1}, {1, 1}, {199, 1}, {200, 1}, {201, 2}, {400, 2}, {401, 3}, {1500, 8},
	}
	for _, c := range cases {
		if got := p.CellsFor(c.bytes); got != c.cells {
			t.Errorf("CellsFor(%d) = %d, want %d", c.bytes, got, c.cells)
		}
	}
}

func TestHeadDropSkipsCellDataMemory(t *testing.T) {
	p := testPool(t, 20)
	q := NewQueue(p)
	q.Enqueue(p.Alloc(1000, 1)) // 5 cells
	q.Enqueue(p.Alloc(1000, 2))

	before := p.Meters()
	if _, _, ok := q.HeadDrop(); !ok {
		t.Fatal("HeadDrop failed")
	}
	after := p.Meters()
	if after.CellDataReads != before.CellDataReads {
		t.Fatalf("head-drop read cell data memory: %d reads", after.CellDataReads-before.CellDataReads)
	}
	if after.PtrOps == before.PtrOps {
		t.Fatal("head-drop did not touch cell pointer memory")
	}

	// A normal dequeue must read the cell data.
	before = after
	if _, _, ok := q.Dequeue(); !ok {
		t.Fatal("Dequeue failed")
	}
	after = p.Meters()
	if after.CellDataReads-before.CellDataReads != 5 {
		t.Fatalf("dequeue read %d cells, want 5", after.CellDataReads-before.CellDataReads)
	}
}

func TestQueueFIFO(t *testing.T) {
	p := testPool(t, 100)
	q := NewQueue(p)
	for i := uint64(1); i <= 5; i++ {
		q.Enqueue(p.Alloc(300, i))
	}
	if q.Packets() != 5 || q.Len() != 1500 {
		t.Fatalf("queue = %d pkts %d bytes", q.Packets(), q.Len())
	}
	for i := uint64(1); i <= 5; i++ {
		n, id, ok := q.Dequeue()
		if !ok || id != i || n != 300 {
			t.Fatalf("Dequeue #%d = (%d, %d, %v)", i, n, id, ok)
		}
	}
	if !q.Empty() {
		t.Fatal("queue not empty after draining")
	}
	if _, _, ok := q.Dequeue(); ok {
		t.Fatal("Dequeue on empty queue succeeded")
	}
	p.CheckInvariants()
}

func TestQueueByteAccounting(t *testing.T) {
	p := testPool(t, 100)
	q := NewQueue(p)
	q.Enqueue(p.Alloc(700, 1))
	q.Enqueue(p.Alloc(900, 2))
	if q.Len() != 1600 {
		t.Fatalf("Len = %d, want 1600", q.Len())
	}
	q.HeadDrop()
	if q.Len() != 900 {
		t.Fatalf("Len after head-drop = %d, want 900", q.Len())
	}
}

func TestInterleavedQueuesShareCells(t *testing.T) {
	p := testPool(t, 10)
	q1, q2 := NewQueue(p), NewQueue(p)
	q1.Enqueue(p.Alloc(800, 1)) // 4 cells
	q2.Enqueue(p.Alloc(800, 2)) // 4 cells
	if p.FreeCells() != 2 {
		t.Fatalf("FreeCells = %d, want 2", p.FreeCells())
	}
	q1.Dequeue()
	q2.Enqueue(p.Alloc(1200, 3)) // 6 cells, fits after q1 freed
	if p.FreeCells() != 0 {
		t.Fatalf("FreeCells = %d, want 0", p.FreeCells())
	}
	q2.Dequeue()
	q2.Dequeue()
	p.CheckInvariants()
	if p.FreeCells() != 10 {
		t.Fatalf("FreeCells = %d, want 10", p.FreeCells())
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	p := testPool(t, 4)
	ref := p.Alloc(100, 1)
	p.Release(ref, true)
	defer func() {
		if recover() == nil {
			t.Error("double Release did not panic")
		}
	}()
	p.Release(ref, true)
}

func TestPDExhaustion(t *testing.T) {
	p := New(Config{CellSize: 200, NumCells: 100, NumPDs: 2})
	a := p.Alloc(100, 1)
	b := p.Alloc(100, 2)
	if a == NilPD || b == NilPD {
		t.Fatal("Alloc failed with free PDs")
	}
	if p.Alloc(100, 3) != NilPD {
		t.Fatal("Alloc succeeded with no free PDs")
	}
	p.Release(a, true)
	if p.Alloc(100, 4) == NilPD {
		t.Fatal("Alloc failed after PD freed")
	}
}

func TestMeta(t *testing.T) {
	p := testPool(t, 4)
	ref := p.Alloc(100, 1)
	if p.Meta(ref) != 0 {
		t.Fatal("fresh PD has non-zero meta")
	}
	p.SetMeta(ref, 0xdead)
	if p.Meta(ref) != 0xdead {
		t.Fatalf("Meta = %#x", p.Meta(ref))
	}
}

// Property: any sequence of alloc/dequeue/head-drop operations conserves
// cells and PDs, and queue byte counts always equal the sum of resident
// packet lengths.
func TestRandomOpsConservation(t *testing.T) {
	f := func(ops []uint16, seed uint8) bool {
		p := New(Config{CellSize: 64, NumCells: 64})
		queues := []*Queue{NewQueue(p), NewQueue(p), NewQueue(p)}
		resident := map[*Queue][]int{}
		id := uint64(0)
		for _, op := range ops {
			q := queues[int(op)%len(queues)]
			switch (op / 4) % 3 {
			case 0: // alloc+enqueue
				size := 1 + int(op%500)
				id++
				if ref := p.Alloc(size, id); ref != NilPD {
					q.Enqueue(ref)
					resident[q] = append(resident[q], size)
				}
			case 1: // dequeue
				if _, _, ok := q.Dequeue(); ok {
					resident[q] = resident[q][1:]
				}
			case 2: // head drop
				if _, _, ok := q.HeadDrop(); ok {
					resident[q] = resident[q][1:]
				}
			}
		}
		p.CheckInvariants()
		used := 0
		for _, q := range queues {
			sum := 0
			for _, s := range resident[q] {
				sum += s
			}
			if q.Len() != sum {
				return false
			}
			for _, s := range resident[q] {
				used += p.CellsFor(s)
			}
		}
		return p.UsedCells() == used
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{CellSize: 0, NumCells: 10},
		{CellSize: 200, NumCells: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(410 * 1024) // the DPDK prototype's 410KB buffer
	p := New(cfg)
	if p.CapacityBytes() < 410*1024 {
		t.Fatalf("capacity %d < requested 410KB", p.CapacityBytes())
	}
	if cfg.CellSize != 200 {
		t.Fatalf("CellSize = %d, want 200", cfg.CellSize)
	}
}
