package cellmem

// Queue is a FIFO of buffered packets organized, as in the switch chip,
// as a linked list of packet descriptors in PD memory. All state other
// than head/tail lives in the shared Pool.
type Queue struct {
	pool  *Pool
	head  int32
	tail  int32
	pkts  int
	bytes int
}

// NewQueue returns an empty queue over the pool.
func NewQueue(pool *Pool) *Queue {
	return &Queue{pool: pool, head: nilIdx, tail: nilIdx}
}

// Len returns the queue length in bytes (the quantity BM thresholds
// compare against).
func (q *Queue) Len() int { return q.bytes }

// Packets returns the number of buffered packets.
func (q *Queue) Packets() int { return q.pkts }

// Empty reports whether the queue holds no packets.
func (q *Queue) Empty() bool { return q.pkts == 0 }

// Head returns the descriptor at the head without removing it, or NilPD.
func (q *Queue) Head() PDRef {
	if q.head == nilIdx {
		return NilPD
	}
	return PDRef(q.head)
}

// Enqueue appends an admitted packet's descriptor to the tail.
func (q *Queue) Enqueue(ref PDRef) {
	pd := q.pool.pd(ref)
	pd.next = nilIdx
	if q.tail == nilIdx {
		q.head = int32(ref)
	} else {
		q.pool.pds[q.tail].next = int32(ref)
	}
	q.tail = int32(ref)
	q.pkts++
	q.bytes += int(pd.Len)
	q.pool.meters.PDOps++ // tail-link write
}

// Dequeue removes the head packet for transmission: the PD is unlinked,
// the cells are freed, and the cell data is read (metered). It returns
// the packet length and identity.
func (q *Queue) Dequeue() (pktLen int, pktID uint64, ok bool) {
	return q.remove(true)
}

// HeadDrop removes the head packet *without* reading cell data memory —
// the preemptive expulsion path (§4.3). It returns the dropped packet's
// length and identity.
func (q *Queue) HeadDrop() (pktLen int, pktID uint64, ok bool) {
	return q.remove(false)
}

func (q *Queue) remove(readData bool) (int, uint64, bool) {
	if q.head == nilIdx {
		return 0, 0, false
	}
	ref := PDRef(q.head)
	pd := q.pool.pd(ref)
	q.head = pd.next
	if q.head == nilIdx {
		q.tail = nilIdx
	}
	q.pkts--
	length := int(pd.Len)
	id := pd.PktID
	q.bytes -= length
	q.pool.meters.PDOps++ // head-advance write
	q.pool.Release(ref, readData)
	return length, id, true
}
