// Package cellmem models the on-chip packet-buffer structure of a
// shared-memory switch as described in §2.1 of the Occamy paper.
//
// Three physically separate memories are modeled:
//
//   - cell data memory: fixed-size cells holding packet payload,
//   - cell pointer memory: per-cell next pointers, which also thread the
//     free-cell list,
//   - PD memory: packet descriptors (one per buffered packet) that are
//     linked into per-queue lists.
//
// The structure is what gives head-drop its defining property: dropping a
// buffered packet dequeues its PD and returns its cell pointers to the
// free list without ever touching cell data memory. Meters on each memory
// let tests assert exactly that.
package cellmem

import "fmt"

// nilIdx marks the end of every linked list in the pool.
const nilIdx int32 = -1

// Config sizes the three buffer memories.
type Config struct {
	// CellSize is the payload bytes per cell. The paper (and its DPDK
	// prototype) use 200-byte cells.
	CellSize int
	// NumCells is the total number of cells; NumCells*CellSize is the
	// shared buffer capacity in bytes.
	NumCells int
	// NumPDs is the number of packet descriptors. Zero means one PD per
	// cell (a packet occupies at least one cell, so this never limits).
	NumPDs int
	// PointerSublists models the paper's parallel cell-pointer sub-lists
	// (§2.1): the number of cell pointers readable per clock cycle.
	// Zero means 1.
	PointerSublists int
}

// DefaultConfig mirrors the DPDK prototype: 200B cells.
func DefaultConfig(bufferBytes int) Config {
	return Config{CellSize: 200, NumCells: (bufferBytes + 199) / 200}
}

// PD is a packet descriptor: packet metadata plus the head of the
// packet's cell-pointer list.
type PD struct {
	Len      int32  // packet length in bytes
	cellHead int32  // first cell of the packet
	cellTail int32  // last cell (for O(1) free-list splicing)
	cells    int32  // number of cells occupied
	next     int32  // next PD in the queue's linked list
	PktID    uint64 // simulator packet identity carried through the buffer
	Meta     uint64 // opaque caller metadata (e.g. ECN mark, timestamps index)
}

// PDRef identifies a descriptor inside the pool.
type PDRef int32

// NilPD is the zero reference (no descriptor).
const NilPD PDRef = PDRef(nilIdx)

// Meters counts accesses to each physical memory. All counts are in
// units of one access (one cell read/write, one pointer op, one PD op).
type Meters struct {
	CellDataWrites int64 // cells written on packet admission
	CellDataReads  int64 // cells read on normal dequeue (never on head-drop)
	PtrOps         int64 // cell-pointer memory reads+writes
	PDOps          int64 // PD memory reads+writes
}

// Pool is the shared packet buffer. It is single-threaded, like the rest
// of the simulator.
type Pool struct {
	cfg Config

	// Cell pointer memory. nextCell[i] threads either a packet's cell
	// list or the free-cell list.
	nextCell []int32
	freeCell int32
	freeCnt  int32

	// PD memory and its free list.
	pds    []PD
	freePD int32
	pdFree int32

	meters Meters
}

// New builds a pool with all cells and PDs free.
func New(cfg Config) *Pool {
	if cfg.CellSize <= 0 {
		panic("cellmem: CellSize must be positive")
	}
	if cfg.NumCells <= 0 {
		panic("cellmem: NumCells must be positive")
	}
	if cfg.NumPDs == 0 {
		cfg.NumPDs = cfg.NumCells
	}
	if cfg.PointerSublists == 0 {
		cfg.PointerSublists = 1
	}
	p := &Pool{
		cfg:      cfg,
		nextCell: make([]int32, cfg.NumCells),
		pds:      make([]PD, cfg.NumPDs),
	}
	for i := 0; i < cfg.NumCells-1; i++ {
		p.nextCell[i] = int32(i + 1)
	}
	p.nextCell[cfg.NumCells-1] = nilIdx
	p.freeCell = 0
	p.freeCnt = int32(cfg.NumCells)

	for i := 0; i < cfg.NumPDs-1; i++ {
		p.pds[i].next = int32(i + 1)
	}
	p.pds[cfg.NumPDs-1].next = nilIdx
	p.freePD = 0
	p.pdFree = int32(cfg.NumPDs)
	return p
}

// Config returns the pool's configuration.
func (p *Pool) Config() Config { return p.cfg }

// CapacityBytes is the total shared buffer size in bytes.
func (p *Pool) CapacityBytes() int { return p.cfg.NumCells * p.cfg.CellSize }

// FreeCells returns the number of unallocated cells.
func (p *Pool) FreeCells() int { return int(p.freeCnt) }

// FreeBytes returns the unallocated capacity in bytes.
func (p *Pool) FreeBytes() int { return int(p.freeCnt) * p.cfg.CellSize }

// UsedCells returns the number of allocated cells.
func (p *Pool) UsedCells() int { return p.cfg.NumCells - int(p.freeCnt) }

// FreePDs returns the number of unallocated packet descriptors.
func (p *Pool) FreePDs() int { return int(p.pdFree) }

// Meters returns a snapshot of the access counters.
func (p *Pool) Meters() Meters { return p.meters }

// CellsFor reports how many cells a packet of n bytes occupies.
func (p *Pool) CellsFor(n int) int {
	if n <= 0 {
		return 1 // even a zero-length control packet occupies one cell
	}
	return (n + p.cfg.CellSize - 1) / p.cfg.CellSize
}

// Alloc admits a packet of pktLen bytes into the buffer: it pops the
// needed cells off the free-cell list, links them, writes the cell data,
// and fills a fresh PD. It returns NilPD when cells or PDs are exhausted.
func (p *Pool) Alloc(pktLen int, pktID uint64) PDRef {
	need := int32(p.CellsFor(pktLen))
	if need > p.freeCnt || p.pdFree == 0 {
		return NilPD
	}
	// Pop `need` cells. The chain popped off the free list is already
	// linked in order, so we can reuse it as the packet's cell list.
	head := p.freeCell
	tail := head
	for i := int32(1); i < need; i++ {
		tail = p.nextCell[tail]
	}
	p.freeCell = p.nextCell[tail]
	p.nextCell[tail] = nilIdx
	p.freeCnt -= need
	p.meters.PtrOps += int64(need)         // pointer pops
	p.meters.CellDataWrites += int64(need) // payload written into cells

	// Pop a PD.
	pdi := p.freePD
	p.freePD = p.pds[pdi].next
	p.pdFree--
	p.meters.PDOps++

	pd := &p.pds[pdi]
	pd.Len = int32(pktLen)
	pd.cellHead = head
	pd.cellTail = tail
	pd.cells = need
	pd.next = nilIdx
	pd.PktID = pktID
	pd.Meta = 0
	return PDRef(pdi)
}

// Release frees the packet's cells and descriptor. readData selects the
// normal-dequeue path (cell data memory is read for transmission) versus
// the head-drop path (cell data memory untouched, per §3.2 of the paper).
func (p *Pool) Release(ref PDRef, readData bool) {
	pd := p.pd(ref)
	if pd.cells == 0 {
		panic("cellmem: double release of PD")
	}
	// Return the whole cell chain to the free list in O(1).
	p.nextCell[pd.cellTail] = p.freeCell
	p.freeCell = pd.cellHead
	p.freeCnt += pd.cells
	p.meters.PtrOps += int64(pd.cells) // pointer pushes back to free list
	if readData {
		p.meters.CellDataReads += int64(pd.cells)
	}

	// Return the PD to its free list.
	idx := int32(ref)
	pd.cells = 0
	pd.cellHead, pd.cellTail = nilIdx, nilIdx
	pd.next = p.freePD
	p.freePD = idx
	p.pdFree++
	p.meters.PDOps++
}

// Len returns the buffered packet's length in bytes.
func (p *Pool) Len(ref PDRef) int { return int(p.pd(ref).Len) }

// PktID returns the packet identity stored at admission.
func (p *Pool) PktID(ref PDRef) uint64 { return p.pd(ref).PktID }

// Cells returns the number of cells the packet occupies.
func (p *Pool) Cells(ref PDRef) int { return int(p.pd(ref).cells) }

// Meta returns the caller metadata word.
func (p *Pool) Meta(ref PDRef) uint64 { return p.pd(ref).Meta }

// SetMeta stores a caller metadata word on the descriptor.
func (p *Pool) SetMeta(ref PDRef, m uint64) { p.pd(ref).Meta = m }

func (p *Pool) pd(ref PDRef) *PD {
	if ref == NilPD || int(ref) >= len(p.pds) {
		panic(fmt.Sprintf("cellmem: invalid PD ref %d", int32(ref)))
	}
	return &p.pds[int(ref)]
}

// CheckInvariants panics with a description if cell/PD conservation is
// violated. Tests call it after random operation sequences.
func (p *Pool) CheckInvariants() {
	// Walk the free-cell list and confirm its length matches freeCnt.
	n := int32(0)
	for i := p.freeCell; i != nilIdx; i = p.nextCell[i] {
		n++
		if n > int32(p.cfg.NumCells) {
			panic("cellmem: free-cell list cycle")
		}
	}
	if n != p.freeCnt {
		panic(fmt.Sprintf("cellmem: free list length %d != freeCnt %d", n, p.freeCnt))
	}
	m := int32(0)
	for i := p.freePD; i != nilIdx; i = p.pds[i].next {
		m++
		if m > int32(len(p.pds)) {
			panic("cellmem: free-PD list cycle")
		}
	}
	if m != p.pdFree {
		panic(fmt.Sprintf("cellmem: free PD list length %d != pdFree %d", m, p.pdFree))
	}
}
