package cellmem

import "testing"

// BenchmarkAllocRelease measures the admission-path buffer operations:
// pop cells + PD, then return them (a full packet lifetime).
func BenchmarkAllocRelease(b *testing.B) {
	p := New(Config{CellSize: 200, NumCells: 1 << 16})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ref := p.Alloc(1500, uint64(i))
		p.Release(ref, true)
	}
}

// BenchmarkQueueCycle measures enqueue + dequeue through a PD list.
func BenchmarkQueueCycle(b *testing.B) {
	p := New(Config{CellSize: 200, NumCells: 1 << 16})
	q := NewQueue(p)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Enqueue(p.Alloc(1500, uint64(i)))
		q.Dequeue()
	}
}

// BenchmarkHeadDrop measures the expulsion path (no cell-data reads).
func BenchmarkHeadDrop(b *testing.B) {
	p := New(Config{CellSize: 200, NumCells: 1 << 16})
	q := NewQueue(p)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Enqueue(p.Alloc(1500, uint64(i)))
		q.HeadDrop()
	}
}
