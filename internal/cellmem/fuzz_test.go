package cellmem

import (
	"testing"
)

// FuzzPoolAllocFree drives randomized alloc/free interleavings through
// the cell pool (mirroring switchsim's whole-switch fuzz at the memory
// layer) and checks, after every operation:
//
//   - allocation only fails when cells or PDs are genuinely exhausted,
//   - used/free cell and PD accounting matches the live-set ground truth,
//   - free lists stay cycle-free and length-consistent (CheckInvariants),
//
// and after draining every live packet:
//
//   - no leaked cells or PDs: the pool is byte-for-byte back to empty.
//
// Each input byte encodes one operation: low bit picks alloc vs free,
// the rest sizes the packet or selects the victim.
func FuzzPoolAllocFree(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 2, 4, 1, 3, 5})
	f.Add([]byte{254, 254, 254, 254, 255, 255, 255, 255})
	// Alternating churn with odd sizes to exercise cell rounding.
	churn := make([]byte, 199)
	for i := range churn {
		churn[i] = byte(i*13 + 7)
	}
	f.Add(churn)

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := Config{CellSize: 64, NumCells: 96, NumPDs: 24}
		p := New(cfg)
		type livePkt struct {
			ref   PDRef
			size  int
			cells int
		}
		var live []livePkt
		liveCells := 0

		check := func(op int) {
			t.Helper()
			if got, want := p.UsedCells(), liveCells; got != want {
				t.Fatalf("op %d: UsedCells %d != live ground truth %d", op, got, want)
			}
			if got, want := p.FreePDs(), cfg.NumPDs-len(live); got != want {
				t.Fatalf("op %d: FreePDs %d != %d", op, got, want)
			}
			if got, want := p.FreeBytes(), (cfg.NumCells-liveCells)*cfg.CellSize; got != want {
				t.Fatalf("op %d: FreeBytes %d != %d", op, got, want)
			}
			p.CheckInvariants()
		}

		for i, b := range data {
			if b&1 == 0 {
				// Alloc: sizes 1..~1500 bytes, spanning 1..24 cells.
				size := 1 + int(b)*6
				ref := p.Alloc(size, uint64(i))
				need := p.CellsFor(size)
				if ref == NilPD {
					if p.FreeCells() >= need && p.FreePDs() > 0 {
						t.Fatalf("op %d: alloc(%d) failed with %d free cells, %d free PDs",
							i, size, p.FreeCells(), p.FreePDs())
					}
				} else {
					if p.Len(ref) != size || p.Cells(ref) != need || p.PktID(ref) != uint64(i) {
						t.Fatalf("op %d: descriptor mismatch: len %d cells %d id %d, want %d/%d/%d",
							i, p.Len(ref), p.Cells(ref), p.PktID(ref), size, need, i)
					}
					live = append(live, livePkt{ref: ref, size: size, cells: need})
					liveCells += need
				}
			} else if len(live) > 0 {
				// Free a pseudo-random live packet, alternating the
				// normal-dequeue and head-drop release paths.
				idx := int(b>>1) % len(live)
				pk := live[idx]
				before := p.Meters()
				p.Release(pk.ref, b&2 == 0)
				after := p.Meters()
				if reads := after.CellDataReads - before.CellDataReads; b&2 != 0 && reads != 0 {
					t.Fatalf("op %d: head-drop read %d data cells; must never touch cell data", i, reads)
				}
				live[idx] = live[len(live)-1]
				live = live[:len(live)-1]
				liveCells -= pk.cells
			}
			check(i)
		}

		// Drain: release everything still live; the pool must return to
		// exactly its initial state.
		for _, pk := range live {
			p.Release(pk.ref, true)
		}
		if p.FreeCells() != cfg.NumCells {
			t.Fatalf("leaked cells after drain: %d free, want %d", p.FreeCells(), cfg.NumCells)
		}
		if p.FreePDs() != cfg.NumPDs {
			t.Fatalf("leaked PDs after drain: %d free, want %d", p.FreePDs(), cfg.NumPDs)
		}
		if p.UsedCells() != 0 {
			t.Fatalf("used cells %d after drain", p.UsedCells())
		}
		p.CheckInvariants()
	})
}

// TestReleaseTwicePanics pins the double-free guard: releasing the same
// descriptor twice must panic rather than corrupt the free lists.
func TestReleaseTwicePanics(t *testing.T) {
	p := New(Config{CellSize: 64, NumCells: 8})
	ref := p.Alloc(100, 1)
	if ref == NilPD {
		t.Fatal("alloc failed")
	}
	p.Release(ref, false)
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic")
		}
	}()
	p.Release(ref, false)
}
