package bm

import "testing"

func TestEDTBurstHeadroom(t *testing.T) {
	now := int64(0)
	p := NewEDT(1, func() int64 { return now })
	st := &fakeState{capacity: 1000, lens: []int{0, 500}}

	// Queue 0 is empty; first packet activates it: it is bursting and
	// gets headroom beyond the DT threshold.
	dtLimit := clampInt(1 * float64(FreeBuffer(st)))
	burstLimit := p.Threshold(st, 0)
	if burstLimit <= dtLimit {
		t.Fatalf("bursting threshold %d <= DT %d", burstLimit, dtLimit)
	}

	// Make the queue non-empty and age past the window: back to DT.
	st.lens[0] = 100
	p.bursting(st, 0) // bookkeeping tick while active
	now += 200_000    // 200µs > 100µs window
	if got := p.Threshold(st, 0); got > clampInt(1*float64(FreeBuffer(st))) {
		t.Fatalf("aged queue still has headroom: %d", got)
	}
}

func TestEDTReactivationRestartsWindow(t *testing.T) {
	now := int64(0)
	p := NewEDT(1, func() int64 { return now })
	st := &fakeState{capacity: 1000, lens: []int{100}}
	p.bursting(st, 0)
	now += 500_000
	st.lens[0] = 0
	p.bursting(st, 0) // queue drained
	st.lens[0] = 50   // new burst arrives
	if !p.bursting(st, 0) {
		t.Fatal("reactivated queue not recognized as bursting")
	}
}

func TestTDTStates(t *testing.T) {
	p := NewTDT(1)
	st := &fakeState{capacity: 10000, lens: []int{100}}
	base := p.Threshold(st, 0)

	// Fast growth (below the overload level): absorption state
	// enlarges the threshold.
	p.Observe(st, 0) // baseline at 100
	st.lens[0] = 2100
	p.Observe(st, 0) // grew by 2000 >= one MTU
	st.lens[0] = 100 // back down so FreeBuffer is comparable
	if got := p.Threshold(st, 0); got <= base {
		t.Fatalf("absorption threshold %d <= normal %d", got, base)
	}

	// Sustained overload: evacuation state shrinks it.
	st.lens[0] = 6000 // > capacity/2
	p.Observe(st, 0)
	st.lens[0] = 100
	if got := p.Threshold(st, 0); got >= base {
		t.Fatalf("evacuation threshold %d >= normal %d", got, base)
	}

	// Drained: back to normal.
	st.lens[0] = 0
	p.Observe(st, 0)
	if got := p.Threshold(st, 0); got != p.Threshold(st, 0) || got == 0 {
		t.Fatalf("normal threshold = %d", got)
	}
}

func TestTDTWithoutObservationsIsDT(t *testing.T) {
	p := NewTDT(2)
	dt := NewDT(2)
	st := &fakeState{capacity: 1000, lens: []int{300, 100}}
	for q := 0; q < 2; q++ {
		if p.Threshold(st, q) != dt.Threshold(st, q) {
			t.Fatalf("queue %d: TDT %d != DT %d", q, p.Threshold(st, q), dt.Threshold(st, q))
		}
	}
}

func TestEDTAdmitRespectsPhysicalLimit(t *testing.T) {
	p := NewEDT(8, func() int64 { return 0 })
	st := &fakeState{capacity: 100, lens: []int{99}}
	if p.Admit(st, 0, 10) {
		t.Fatal("EDT admitted beyond capacity")
	}
}
