// Package bm defines the buffer-management (BM) policy framework and the
// non-preemptive baselines the Occamy paper evaluates against: Complete
// Sharing, Static Threshold, Dynamic Threshold (DT, Choudhury–Hahne), and
// ABM (Addanki et al., SIGCOMM'22).
//
// A BM policy answers one question on every packet arrival: may this
// packet enter its destination queue? Non-preemptive policies answer only
// that question. Preemptive policies (Occamy, Pushout — see
// internal/core) additionally expel packets that are already buffered.
package bm

import "math"

// State is the live view of switch statistics a policy consults. It is
// implemented by the traffic manager in internal/switchsim.
type State interface {
	// Capacity is the shared buffer size B in bytes.
	Capacity() int
	// Occupancy is the total buffered bytes across all queues.
	Occupancy() int
	// NumQueues is the number of queues sharing the buffer.
	NumQueues() int
	// QueueLen is the length of queue q in bytes.
	QueueLen(q int) int
	// QueuePriority is the service priority class of queue q (0 =
	// highest). Only ABM consults it.
	QueuePriority(q int) int
	// DequeueRate is queue q's recent drain rate normalized to its port
	// capacity, in [0,1]. Only ABM consults it.
	DequeueRate(q int) float64
}

// Policy decides packet admission.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Admit reports whether a packet of size bytes may enter queue q.
	// It must not mutate switch state.
	Admit(st State, q int, size int) bool
	// Threshold returns the instantaneous queue-length limit the policy
	// applies to queue q, in bytes. Policies without a meaningful
	// threshold return Capacity.
	Threshold(st State, q int) int
}

// Unlimited is the threshold value meaning "no limit beyond physical
// capacity".
func Unlimited(st State) int { return st.Capacity() }

// FreeBuffer returns B - Q(t), the unallocated shared buffer.
func FreeBuffer(st State) int {
	f := st.Capacity() - st.Occupancy()
	if f < 0 {
		return 0
	}
	return f
}

// clampInt converts a float threshold to a non-negative int, saturating
// at MaxInt to avoid overflow when alpha is huge.
func clampInt(v float64) int {
	if v < 0 {
		return 0
	}
	if v > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(v)
}

// CompleteSharing admits every packet while any buffer remains. It is
// maximally efficient and minimally fair: one queue can take everything.
type CompleteSharing struct{}

// Name implements Policy.
func (CompleteSharing) Name() string { return "CS" }

// Admit implements Policy: accept whenever the packet physically fits.
func (CompleteSharing) Admit(st State, q, size int) bool {
	return FreeBuffer(st) >= size
}

// Threshold implements Policy.
func (CompleteSharing) Threshold(st State, q int) int { return Unlimited(st) }

// StaticThreshold limits every queue to a fixed byte count (SMXQ-style).
type StaticThreshold struct {
	// Limit is the per-queue cap in bytes.
	Limit int
}

// Name implements Policy.
func (p StaticThreshold) Name() string { return "ST" }

// Admit implements Policy.
func (p StaticThreshold) Admit(st State, q, size int) bool {
	if FreeBuffer(st) < size {
		return false
	}
	return st.QueueLen(q) < p.Limit
}

// Threshold implements Policy.
func (p StaticThreshold) Threshold(st State, q int) int { return p.Limit }
