package bm

// ABM is Active Buffer Management (Addanki, Apostolaki, Ghobadi, Schmid,
// Vanbever — SIGCOMM'22), the strongest non-preemptive baseline in the
// paper. ABM scales DT's threshold by (a) the number of congested queues
// in the same priority class and (b) the queue's normalized drain rate:
//
//	T_i(t) = α_p / n_p(t) · (B − ΣQ(t)) · μ_i(t)
//
// where n_p is the number of congested queues in priority class p and
// μ_i ∈ [0,1] is queue i's dequeue rate relative to its port capacity.
// Slow-draining queues therefore get small thresholds, which bounds
// buffer drain time — but the scheme remains non-preemptive: it cannot
// reclaim buffer a queue already holds (the root of the buffer-choking
// result in Fig 15).
type ABM struct {
	// Alpha is α_p for every priority class unless overridden.
	Alpha float64
	// AlphaFor optionally overrides α per priority class.
	AlphaFor map[int]float64
	// CongestionEpsilon is the queue length (bytes) above which a queue
	// counts as congested for n_p. Zero means any non-empty queue.
	CongestionEpsilon int
	// MinRate floors μ_i so that a paused queue still gets a sliver of
	// buffer and can restart. Default 0.01 when zero.
	MinRate float64
}

// NewABM returns an ABM policy with uniform α.
func NewABM(alpha float64) *ABM { return &ABM{Alpha: alpha} }

// Name implements Policy.
func (p *ABM) Name() string { return "ABM" }

func (p *ABM) alphaFor(prio int) float64 {
	if a, ok := p.AlphaFor[prio]; ok {
		return a
	}
	return p.Alpha
}

func (p *ABM) minRate() float64 {
	if p.MinRate == 0 {
		return 0.01
	}
	return p.MinRate
}

// congestedInClass counts queues in q's priority class whose length
// exceeds the congestion epsilon.
func (p *ABM) congestedInClass(st State, prio int) int {
	n := 0
	for i := 0; i < st.NumQueues(); i++ {
		if st.QueuePriority(i) == prio && st.QueueLen(i) > p.CongestionEpsilon {
			n++
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Threshold implements Policy.
func (p *ABM) Threshold(st State, q int) int {
	prio := st.QueuePriority(q)
	np := p.congestedInClass(st, prio)
	mu := st.DequeueRate(q)
	if mu < p.minRate() {
		mu = p.minRate()
	}
	if mu > 1 {
		mu = 1
	}
	t := p.alphaFor(prio) / float64(np) * float64(FreeBuffer(st)) * mu
	return clampInt(t)
}

// Admit implements Policy.
func (p *ABM) Admit(st State, q, size int) bool {
	if FreeBuffer(st) < size {
		return false
	}
	return st.QueueLen(q) < p.Threshold(st, q)
}
