package bm

// EDT is the Enhanced Dynamic Threshold policy (Shan, Jiang, Ren,
// INFOCOM'15), a related-work baseline (§7): DT augmented with burst
// tolerance. EDT tracks whether a queue is in a transient burst (it
// recently turned active) and temporarily exempts such queues from the
// DT limit up to a dedicated headroom, improving micro-burst absorption
// without preemption.
//
// This implementation keeps EDT's published control structure in a
// simulator-friendly form: a queue that was empty within BurstWindow is
// "bursting" and may use up to BurstHeadroom · FreeBuffer beyond the DT
// threshold; once the window expires the plain DT limit applies again.
type EDT struct {
	// Alpha is the underlying DT parameter.
	Alpha float64
	// BurstHeadroom is the extra fraction of free buffer a bursting
	// queue may take (default 0.5 when zero).
	BurstHeadroom float64
	// BurstWindowNs is how long after activation a queue counts as
	// bursting, in virtual nanoseconds (default 100µs when zero).
	BurstWindowNs int64

	// Clock must be set by the embedding switch so the policy can age
	// burst states; it returns the current virtual time in ns.
	Clock func() int64

	activeSince map[int]int64 // queue -> activation time
}

// NewEDT returns an EDT policy.
func NewEDT(alpha float64, clock func() int64) *EDT {
	return &EDT{
		Alpha:       alpha,
		Clock:       clock,
		activeSince: make(map[int]int64),
	}
}

// Name implements Policy.
func (p *EDT) Name() string { return "EDT" }

func (p *EDT) headroom() float64 {
	if p.BurstHeadroom == 0 {
		return 0.5
	}
	return p.BurstHeadroom
}

func (p *EDT) window() int64 {
	if p.BurstWindowNs == 0 {
		return 100_000 // 100µs
	}
	return p.BurstWindowNs
}

// bursting reports whether queue q is newly active: an empty queue is
// always (re)activating — the next packet starts a burst — and a
// non-empty queue stays in burst state until the window expires.
func (p *EDT) bursting(st State, q int) bool {
	now := int64(0)
	if p.Clock != nil {
		now = p.Clock()
	}
	if st.QueueLen(q) == 0 {
		p.activeSince[q] = now
		return true
	}
	since, ok := p.activeSince[q]
	return ok && now-since <= p.window()
}

// Threshold implements Policy.
func (p *EDT) Threshold(st State, q int) int {
	base := p.Alpha * float64(FreeBuffer(st))
	if p.bursting(st, q) {
		base += p.headroom() * float64(FreeBuffer(st))
	}
	return clampInt(base)
}

// Admit implements Policy.
func (p *EDT) Admit(st State, q, size int) bool {
	if FreeBuffer(st) < size {
		return false
	}
	return st.QueueLen(q) < p.Threshold(st, q)
}
