package bm_test

// Table-driven invariant suite over every BM policy in the repository.
//
// Shape tests pin what each policy does on a specific workload; this
// suite pins what NO policy may ever do, so the guarantees survive as
// scenarios multiply:
//
//  1. admission never oversubscribes the buffer: Admit(size) implies the
//     packet physically fits, so occupancy can never exceed Capacity;
//  2. thresholds are monotone in free buffer: growing another queue
//     (shrinking F = B − Q) never raises a queue's threshold;
//  3. thresholds are non-negative and capacity-bounded under randomized
//     states.
//
// Every policy runs through the same harness; a new policy buys into the
// suite by being added to allPolicies.

import (
	"testing"

	"occamy/internal/bm"
	"occamy/internal/core"
	"occamy/internal/sim"
)

// fakeState is a scripted bm.State.
type fakeState struct {
	cap    int
	queues []int
	prios  []int
	rates  []float64
}

func (s *fakeState) Capacity() int { return s.cap }
func (s *fakeState) Occupancy() int {
	total := 0
	for _, q := range s.queues {
		total += q
	}
	return total
}
func (s *fakeState) NumQueues() int     { return len(s.queues) }
func (s *fakeState) QueueLen(q int) int { return s.queues[q] }
func (s *fakeState) QueuePriority(q int) int {
	if s.prios == nil {
		return 0
	}
	return s.prios[q]
}
func (s *fakeState) DequeueRate(q int) float64 {
	if s.rates == nil {
		return 1
	}
	return s.rates[q]
}

type policyCase struct {
	name string
	mk   func() bm.Policy
}

// allPolicies builds one fresh instance of every admission policy.
func allPolicies() []policyCase {
	clock := func() int64 { return 1_000_000 }
	return []policyCase{
		{"CS", func() bm.Policy { return bm.CompleteSharing{} }},
		{"ST", func() bm.Policy { return bm.StaticThreshold{Limit: 50_000} }},
		{"DT", func() bm.Policy { return bm.NewDT(1) }},
		{"DT(a=8)", func() bm.Policy { return bm.NewDT(8) }},
		{"DT(prio)", func() bm.Policy {
			dt := bm.NewDT(1)
			dt.AlphaByPrio = map[int]float64{0: 8, 1: 1}
			return dt
		}},
		{"ABM", func() bm.Policy { return bm.NewABM(2) }},
		{"EDT", func() bm.Policy { return bm.NewEDT(1, clock) }},
		{"TDT", func() bm.Policy { return bm.NewTDT(1) }},
		{"Occamy", func() bm.Policy { return core.New(core.Config{Alpha: 8}) }},
		{"Occamy-LD", func() bm.Policy { return core.New(core.Config{Alpha: 8, Victim: core.LongestQueue}) }},
		{"Pushout", func() bm.Policy { return core.NewPushout() }},
		{"POT", func() bm.Policy { return core.NewPOT(0.5) }},
		{"QPO", func() bm.Policy { return core.NewQPO() }},
	}
}

// TestAdmissionNeverOversubscribes drives randomized admission sequences
// through every policy: whenever Admit says yes the packet is enqueued,
// and occupancy must never exceed Capacity.
func TestAdmissionNeverOversubscribes(t *testing.T) {
	for _, pc := range allPolicies() {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 5; seed++ {
				policy := pc.mk()
				r := sim.NewRand(seed * 1315)
				st := &fakeState{
					cap:    100_000,
					queues: make([]int, 8),
					prios:  []int{0, 0, 1, 1, 0, 0, 1, 1},
					rates:  []float64{1, 0.5, 0.1, 0, 1, 1, 0.8, 0.3},
				}
				for i := 0; i < 4000; i++ {
					q := r.Intn(len(st.queues))
					switch r.Intn(3) {
					case 0, 1: // arrival
						size := 64 + r.Intn(9000)
						if policy.Admit(st, q, size) {
							st.queues[q] += size
						}
						if occ := st.Occupancy(); occ > st.cap {
							t.Fatalf("seed %d op %d: occupancy %d exceeds capacity %d after admit(q=%d)",
								seed, i, occ, st.cap, q)
						}
					case 2: // service
						if st.queues[q] > 0 {
							take := r.Intn(st.queues[q] + 1)
							st.queues[q] -= take
						}
					}
				}
			}
		})
	}
}

// TestThresholdMonotoneInFreeBuffer grows a competing queue step by step
// (free buffer only shrinks) and checks that no policy ever *raises* the
// observed queue's threshold in response. The competing queue sits in a
// different priority class and stays congested throughout, so ABM's
// congested-count and TDT/EDT's per-queue states are constant — the only
// moving input is F = B − Q.
func TestThresholdMonotoneInFreeBuffer(t *testing.T) {
	const observed, filler = 0, 3
	for _, pc := range allPolicies() {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			policy := pc.mk()
			st := &fakeState{
				cap:    1_000_000,
				queues: []int{20_000, 0, 0, 10_000},
				prios:  []int{0, 0, 1, 1},
			}
			prev := policy.Threshold(st, observed)
			for step := 0; step < 200; step++ {
				st.queues[filler] += 4_000
				cur := policy.Threshold(st, observed)
				if cur > prev {
					t.Fatalf("step %d: threshold rose %d -> %d as free buffer shrank (occ %d)",
						step, prev, cur, st.Occupancy())
				}
				prev = cur
			}
		})
	}
}

// TestThresholdSanity: randomized states must never produce a negative
// threshold, and a policy that reports a threshold above capacity is
// claiming more than the buffer holds (allowed only for the "unlimited"
// preemptive policies and for DT-family transients, which clamp at
// admission; here we only require non-negativity plus an absolute bound
// well above any plausible transient).
func TestThresholdSanity(t *testing.T) {
	for _, pc := range allPolicies() {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			policy := pc.mk()
			r := sim.NewRand(99)
			st := &fakeState{cap: 500_000, queues: make([]int, 6)}
			for i := 0; i < 2000; i++ {
				q := r.Intn(len(st.queues))
				if r.Intn(2) == 0 {
					size := 64 + r.Intn(9000)
					if policy.Admit(st, q, size) {
						st.queues[q] += size
					}
				} else if st.queues[q] > 0 {
					st.queues[q] -= r.Intn(st.queues[q] + 1)
				}
				if th := policy.Threshold(st, q); th < 0 {
					t.Fatalf("negative threshold %d for queue %d", th, q)
				}
			}
		})
	}
}

// TestReservedFractionMatchesThreshold ties the Eq. 2 closed form to the
// implementation: at DT steady state (every congested queue exactly at
// threshold) the free buffer is B/(1+αn).
func TestReservedFractionMatchesThreshold(t *testing.T) {
	const buffer = 1 << 20
	for _, alpha := range []float64{0.5, 1, 2, 8} {
		for n := 1; n <= 4; n++ {
			dt := bm.NewDT(alpha)
			st := &fakeState{cap: buffer, queues: make([]int, 8)}
			q := bm.SteadyStateQueueLen(alpha, n, buffer)
			for i := 0; i < n; i++ {
				st.queues[i] = q
			}
			want := bm.ReservedFraction(alpha, n)
			got := float64(bm.FreeBuffer(st)) / float64(buffer)
			if diff := got - want; diff < -0.01 || diff > 0.01 {
				t.Errorf("alpha=%g n=%d: free fraction %.4f, Eq.2 says %.4f", alpha, n, got, want)
			}
			// And the threshold at that state equals the queue length
			// (steady state: marginally admissible), within the integer
			// truncation error accumulated across n queues.
			th := dt.Threshold(st, 0)
			slack := int(alpha)*n + n + 2
			if th < q-slack || th > q+slack {
				t.Errorf("alpha=%g n=%d: threshold %d far from steady-state length %d", alpha, n, th, q)
			}
		}
	}
}
