package bm

// DT is the Dynamic Threshold policy of Choudhury and Hahne — the de
// facto BM in commodity switch chips and the paper's primary baseline.
//
// Every queue is limited to
//
//	T(t) = α · (B − ΣQ(t))
//
// i.e. a multiple of the *free* buffer (Eq. 1 of the paper). A queue may
// accept a packet only while its length is below T(t).
//
// DT is also Occamy's admission component (§4.2): Occamy runs DT with a
// large α (8 by default) and relies on preemptive expulsion to stay fair.
type DT struct {
	// Alpha is the control parameter α. Commodity chips use powers of
	// two; the paper evaluates 0.5–8.
	Alpha float64
	// AlphaFor optionally overrides α per queue index.
	AlphaFor map[int]float64
	// AlphaByPrio optionally overrides α per service-priority class
	// (e.g. Fig 15 gives the high-priority class α=8 and low-priority
	// classes α=1). AlphaFor takes precedence.
	AlphaByPrio map[int]float64
}

// NewDT returns a DT policy with a uniform α.
func NewDT(alpha float64) *DT { return &DT{Alpha: alpha} }

// Name implements Policy.
func (p *DT) Name() string { return "DT" }

// alpha returns the α that applies to queue q.
func (p *DT) alpha(st State, q int) float64 {
	if a, ok := p.AlphaFor[q]; ok {
		return a
	}
	if p.AlphaByPrio != nil {
		if a, ok := p.AlphaByPrio[st.QueuePriority(q)]; ok {
			return a
		}
	}
	return p.Alpha
}

// Threshold implements Policy: T(t) = α·(B − Q(t)).
func (p *DT) Threshold(st State, q int) int {
	return clampInt(p.alpha(st, q) * float64(FreeBuffer(st)))
}

// Admit implements Policy: accept while the queue is under threshold and
// the packet physically fits.
func (p *DT) Admit(st State, q, size int) bool {
	if FreeBuffer(st) < size {
		return false
	}
	return st.QueueLen(q) < p.Threshold(st, q)
}

// ReservedFraction returns F/B from Eq. 2 of the paper: the fraction of
// the buffer DT holds back in steady state when n queues are congested
// with control parameter alpha:
//
//	F = B / (1 + α·n)
//
// Occamy's efficiency argument (§4.4) rests on this quantity: α=1,n=1
// reserves half the buffer; α=8 reserves 1/9.
func ReservedFraction(alpha float64, n int) float64 {
	if n <= 0 {
		return 1
	}
	return 1 / (1 + alpha*float64(n))
}

// SteadyStateQueueLen returns each congested queue's steady-state length
// under DT: q = α·F = α·B/(1+α·n) with n equally congested queues.
func SteadyStateQueueLen(alpha float64, n int, buffer int) int {
	if n <= 0 {
		return 0
	}
	return clampInt(alpha * float64(buffer) * ReservedFraction(alpha, n))
}

// FairExpulsionAlphaBound returns the largest 1/α (the *reciprocal*
// bound) from Inequality 4 of the paper:
//
//	1/α ≥ ((R/V − 1)·M − N)
//
// where R is the burst arrival rate, V the expulsion rate, M the number
// of burst-receiving queues, and N the number of over-allocated queues.
// A preemptive BM allocates buffer fairly whenever 1/α meets this bound;
// when the right side is ≤ 0, any α is fair.
func FairExpulsionAlphaBound(r, v float64, m, n int) float64 {
	if v <= 0 {
		return float64(m) * 1e18 // no expulsion: only α→0 is safe
	}
	return (r/v-1)*float64(m) - float64(n)
}
