package bm

// TDT is the Traffic-aware Dynamic Threshold policy (Huang, Wang, Cui,
// INFOCOM'21), a related-work baseline (§7). TDT classifies each
// queue's state from its recent dynamics and switches the threshold
// rule accordingly:
//
//   - normal: the plain DT threshold α·(B−Q),
//   - absorption (a burst is arriving): an enlarged threshold so the
//     burst is absorbed rather than tail-dropped,
//   - evacuation (persistent overload): a shrunken threshold so a
//     long-term hog releases buffer for others.
//
// State detection uses queue-growth observations supplied by the
// embedding switch through Observe; without observations TDT degrades
// to plain DT.
type TDT struct {
	// Alpha is the base DT parameter.
	Alpha float64
	// AbsorbFactor scales the threshold up in absorption state
	// (default 4 when zero); EvacuateFactor scales it down in
	// evacuation state (default 0.5 when zero).
	AbsorbFactor   float64
	EvacuateFactor float64
	// GrowthHigh is the queue growth in bytes per observation that
	// enters absorption; OverloadLen is the sustained queue length in
	// bytes that enters evacuation. Defaults: one MTU, half of B.
	GrowthHigh  int
	OverloadLen int

	state   map[int]tdtState
	lastLen map[int]int
}

type tdtState int

const (
	tdtNormal tdtState = iota
	tdtAbsorb
	tdtEvacuate
)

// NewTDT returns a TDT policy.
func NewTDT(alpha float64) *TDT {
	return &TDT{
		Alpha:   alpha,
		state:   make(map[int]tdtState),
		lastLen: make(map[int]int),
	}
}

// Name implements Policy.
func (p *TDT) Name() string { return "TDT" }

func (p *TDT) absorb() float64 {
	if p.AbsorbFactor == 0 {
		return 4
	}
	return p.AbsorbFactor
}

func (p *TDT) evacuate() float64 {
	if p.EvacuateFactor == 0 {
		return 0.5
	}
	return p.EvacuateFactor
}

// Observe feeds one periodic queue-length observation; the switch (or
// experiment) calls it on a fixed cadence per queue.
func (p *TDT) Observe(st State, q int) {
	growthHigh := p.GrowthHigh
	if growthHigh == 0 {
		growthHigh = 1500
	}
	overload := p.OverloadLen
	if overload == 0 {
		overload = st.Capacity() / 2
	}
	cur := st.QueueLen(q)
	growth := cur - p.lastLen[q]
	p.lastLen[q] = cur
	switch {
	case cur > overload:
		// Sustained hog: force it to release buffer.
		p.state[q] = tdtEvacuate
	case growth >= growthHigh:
		// Fast growth: a burst is arriving; absorb it.
		p.state[q] = tdtAbsorb
	case cur == 0:
		p.state[q] = tdtNormal
	}
}

// Threshold implements Policy.
func (p *TDT) Threshold(st State, q int) int {
	t := p.Alpha * float64(FreeBuffer(st))
	switch p.state[q] {
	case tdtAbsorb:
		t *= p.absorb()
	case tdtEvacuate:
		t *= p.evacuate()
	}
	return clampInt(t)
}

// Admit implements Policy.
func (p *TDT) Admit(st State, q, size int) bool {
	if FreeBuffer(st) < size {
		return false
	}
	return st.QueueLen(q) < p.Threshold(st, q)
}
