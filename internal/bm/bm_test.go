package bm

import (
	"math"
	"testing"
	"testing/quick"
)

// fakeState is a hand-settable State for policy unit tests.
type fakeState struct {
	capacity int
	lens     []int
	prios    []int
	rates    []float64
}

func (s *fakeState) Capacity() int { return s.capacity }
func (s *fakeState) Occupancy() int {
	t := 0
	for _, l := range s.lens {
		t += l
	}
	return t
}
func (s *fakeState) NumQueues() int     { return len(s.lens) }
func (s *fakeState) QueueLen(q int) int { return s.lens[q] }
func (s *fakeState) QueuePriority(q int) int {
	if s.prios == nil {
		return 0
	}
	return s.prios[q]
}
func (s *fakeState) DequeueRate(q int) float64 {
	if s.rates == nil {
		return 1
	}
	return s.rates[q]
}

func TestCompleteSharing(t *testing.T) {
	st := &fakeState{capacity: 1000, lens: []int{900, 0}}
	cs := CompleteSharing{}
	if !cs.Admit(st, 1, 100) {
		t.Fatal("CS rejected a packet that fits")
	}
	if cs.Admit(st, 1, 101) {
		t.Fatal("CS admitted a packet beyond capacity")
	}
	if cs.Threshold(st, 0) != 1000 {
		t.Fatalf("CS threshold = %d", cs.Threshold(st, 0))
	}
}

func TestStaticThreshold(t *testing.T) {
	st := &fakeState{capacity: 1000, lens: []int{500, 0}}
	p := StaticThreshold{Limit: 500}
	if p.Admit(st, 0, 10) {
		t.Fatal("ST admitted into a queue at its limit")
	}
	if !p.Admit(st, 1, 10) {
		t.Fatal("ST rejected an under-limit queue")
	}
}

func TestDTThresholdFormula(t *testing.T) {
	st := &fakeState{capacity: 1000, lens: []int{200, 300}}
	dt := NewDT(2)
	// Free buffer = 1000-500 = 500, T = 2*500 = 1000.
	if got := dt.Threshold(st, 0); got != 1000 {
		t.Fatalf("Threshold = %d, want 1000", got)
	}
	dt.Alpha = 0.5
	if got := dt.Threshold(st, 0); got != 250 {
		t.Fatalf("Threshold = %d, want 250", got)
	}
}

func TestDTAdmission(t *testing.T) {
	st := &fakeState{capacity: 1000, lens: []int{400, 100}}
	dt := NewDT(1) // free = 500, T = 500
	if !dt.Admit(st, 0, 100) {
		t.Fatal("DT rejected under-threshold queue")
	}
	st.lens[0] = 500
	// free = 400, T = 400, qlen 500 >= 400.
	if dt.Admit(st, 0, 100) {
		t.Fatal("DT admitted over-threshold queue")
	}
	// The other queue is under threshold.
	if !dt.Admit(st, 1, 100) {
		t.Fatal("DT rejected the other queue")
	}
}

func TestDTPerQueueAlpha(t *testing.T) {
	st := &fakeState{capacity: 900, lens: []int{0, 0}}
	dt := &DT{Alpha: 1, AlphaFor: map[int]float64{0: 8}}
	if got := dt.Threshold(st, 0); got != 7200 {
		t.Fatalf("HP threshold = %d, want 7200", got)
	}
	if got := dt.Threshold(st, 1); got != 900 {
		t.Fatalf("LP threshold = %d, want 900", got)
	}
}

func TestDTPhysicalLimit(t *testing.T) {
	st := &fakeState{capacity: 100, lens: []int{99, 0}}
	dt := NewDT(8)
	if dt.Admit(st, 1, 2) {
		t.Fatal("DT admitted a packet that does not physically fit")
	}
}

// Property (Eq. 2): with n congested queues in steady state, each queue
// sits at α·F and the free buffer is B/(1+αn); the occupancy plus
// reservation always accounts for the full buffer.
func TestReservedFractionIdentity(t *testing.T) {
	f := func(alphaExp uint8, n uint8) bool {
		alpha := math.Pow(2, float64(alphaExp%6)-2) // 0.25 .. 8
		queues := int(n%16) + 1
		fr := ReservedFraction(alpha, queues)
		if fr <= 0 || fr > 1 {
			return false
		}
		// n·q + F = B  with q = α·F
		total := float64(queues)*alpha*fr + fr
		return math.Abs(total-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReservedFractionKnownValues(t *testing.T) {
	// §4.4: α=8, N=1 reserves B/9; α=16 reserves B/17.
	if got := ReservedFraction(8, 1); math.Abs(got-1.0/9) > 1e-12 {
		t.Fatalf("ReservedFraction(8,1) = %v, want 1/9", got)
	}
	if got := ReservedFraction(16, 1); math.Abs(got-1.0/17) > 1e-12 {
		t.Fatalf("ReservedFraction(16,1) = %v, want 1/17", got)
	}
	// §4.2: α=8 lets one queue occupy 88.9% of the buffer.
	occ := float64(SteadyStateQueueLen(8, 1, 1_000_000)) / 1e6
	if math.Abs(occ-0.889) > 0.001 {
		t.Fatalf("steady-state occupancy = %v, want ~0.889", occ)
	}
}

func TestFairExpulsionAlphaBound(t *testing.T) {
	// §4.4: with N=M=1, 1/α ≥ R/V − 2, so V ≥ R/2 permits any α.
	if b := FairExpulsionAlphaBound(2, 1, 1, 1); math.Abs(b-0) > 1e-12 {
		t.Fatalf("bound(R=2V) = %v, want 0", b)
	}
	if b := FairExpulsionAlphaBound(4, 1, 1, 1); b <= 0 {
		t.Fatalf("bound(R=4V) = %v, want positive", b)
	}
	if b := FairExpulsionAlphaBound(1, 0, 1, 1); b < 1e17 {
		t.Fatalf("bound with no expulsion = %v, want huge", b)
	}
}

func TestABMThresholdScalesWithCongestion(t *testing.T) {
	st := &fakeState{
		capacity: 1000,
		lens:     []int{100, 100, 0},
		prios:    []int{0, 0, 0},
		rates:    []float64{1, 1, 1},
	}
	abm := NewABM(2)
	// free = 800, n_0 = 2 congested, T = 2/2*800*1 = 800.
	if got := abm.Threshold(st, 0); got != 800 {
		t.Fatalf("Threshold = %d, want 800", got)
	}
	st.lens[2] = 100 // third congested queue
	// free = 700, n=3: T = 2/3*700 = 466.
	if got := abm.Threshold(st, 0); got != 466 {
		t.Fatalf("Threshold = %d, want 466", got)
	}
}

func TestABMThresholdScalesWithDrainRate(t *testing.T) {
	st := &fakeState{
		capacity: 1000,
		lens:     []int{100, 100},
		prios:    []int{0, 0},
		rates:    []float64{1, 0.1},
	}
	abm := NewABM(2)
	fast := abm.Threshold(st, 0)
	slow := abm.Threshold(st, 1)
	if slow >= fast {
		t.Fatalf("slow-draining threshold %d >= fast %d", slow, fast)
	}
	if slow != fast/10 {
		t.Fatalf("slow = %d, want %d", slow, fast/10)
	}
}

func TestABMPriorityClassesIndependent(t *testing.T) {
	st := &fakeState{
		capacity: 1000,
		lens:     []int{100, 100, 100, 0},
		prios:    []int{0, 0, 1, 1},
		rates:    []float64{1, 1, 1, 1},
	}
	abm := NewABM(1)
	// prio 0 has 2 congested queues, prio 1 has 1.
	if t0, t1 := abm.Threshold(st, 0), abm.Threshold(st, 2); t1 != 2*t0 {
		t.Fatalf("class thresholds %d, %d: want 1:2 ratio", t0, t1)
	}
}

func TestABMMinRateFloor(t *testing.T) {
	st := &fakeState{
		capacity: 1000,
		lens:     []int{100},
		prios:    []int{0},
		rates:    []float64{0},
	}
	abm := NewABM(1)
	if abm.Threshold(st, 0) == 0 {
		t.Fatal("paused queue received zero threshold; cannot restart")
	}
}

func TestABMAdmit(t *testing.T) {
	st := &fakeState{
		capacity: 1000,
		lens:     []int{850, 0},
		prios:    []int{0, 0},
		rates:    []float64{1, 1},
	}
	abm := NewABM(2)
	// free = 150, n=1 congested, T = 300 < 850: q0 over.
	if abm.Admit(st, 0, 10) {
		t.Fatal("ABM admitted over-threshold queue")
	}
	if !abm.Admit(st, 1, 10) {
		t.Fatal("ABM rejected empty queue")
	}
}

// Property: DT thresholds are monotonically non-increasing in total
// occupancy — more congestion never grants more buffer.
func TestDTMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		lo, hi := int(a), int(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		dt := NewDT(2)
		s1 := &fakeState{capacity: 1 << 16, lens: []int{lo}}
		s2 := &fakeState{capacity: 1 << 16, lens: []int{hi}}
		return dt.Threshold(s1, 0) >= dt.Threshold(s2, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNames(t *testing.T) {
	st := &fakeState{capacity: 1, lens: []int{0}}
	_ = st
	for _, p := range []Policy{CompleteSharing{}, StaticThreshold{Limit: 1}, NewDT(1), NewABM(1)} {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
	}
}
