// Package pkt defines the packet representation shared by the switch
// model, the transport stack, and the network simulator.
package pkt

import "occamy/internal/sim"

// Standard wire sizes used throughout the simulator.
const (
	// HeaderBytes is the combined Ethernet+IP+TCP header overhead.
	HeaderBytes = 40
	// MTU is the maximum wire size of a data packet.
	MTU = 1500
	// MSS is the maximum payload per data packet.
	MSS = MTU - HeaderBytes
	// AckBytes is the wire size of a pure ACK.
	AckBytes = HeaderBytes
)

// NodeID identifies a host or switch in the simulated network.
type NodeID int

// Packet is one simulated packet. Packets are allocated per transmission
// and never mutated after being handed to the network (except for the CE
// mark applied by switches).
type Packet struct {
	ID     uint64 // unique per packet
	FlowID uint64 // flow this packet belongs to
	Src    NodeID // originating host
	Dst    NodeID // destination host
	Size   int    // bytes on the wire (header + payload)

	// Data-path fields.
	Seq     int64 // payload byte offset of the first payload byte
	Payload int   // payload bytes carried
	Fin     bool  // sender has no bytes beyond this segment

	// ACK-path fields.
	Ack     bool  // this is a pure ACK
	AckNo   int64 // cumulative: receiver has everything below AckNo
	ECNEcho bool  // receiver echoes a CE mark back to the sender

	// ECN.
	ECNCapable bool // ECT: switch may mark instead of relying on loss
	CE         bool // congestion experienced (set by a switch)

	// Priority selects the traffic class (queue) at each switch port;
	// 0 is the highest service priority.
	Priority int

	// SentAt is stamped by the sender for RTT sampling.
	SentAt sim.Time
}

// IsData reports whether the packet carries payload.
func (p *Packet) IsData() bool { return !p.Ack }

// End returns the payload byte offset just past this segment.
func (p *Packet) End() int64 { return p.Seq + int64(p.Payload) }
