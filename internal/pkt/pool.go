package pkt

// Pool is a freelist of Packets for a single simulation engine. The hot
// paths of the simulator (transport senders/receivers, raw injectors)
// allocate millions of packets per run; recycling them through a Pool
// removes that load from the garbage collector entirely.
//
// A Pool is intentionally not synchronized: each Engine is
// single-threaded, so each run owns exactly one Pool (parallel sweeps
// use one Pool per engine). Ownership is linear — a packet must be Put
// back only once, by whichever component consumes it (a host delivering
// it to its flow handler, or an experiment's sink/drop hook). Packets
// that never reach a consumption point (e.g. switch drops in runs that
// don't hook losses) simply fall back to the garbage collector.
type Pool struct {
	free []*Packet
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Get returns a zeroed packet, recycling a freed one when available.
func (pl *Pool) Get() *Packet {
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		return p
	}
	return &Packet{}
}

// Put returns p to the pool. The packet is zeroed immediately so stale
// field values can never leak into a reuse.
func (pl *Pool) Put(p *Packet) {
	if p == nil {
		return
	}
	*p = Packet{}
	pl.free = append(pl.free, p)
}
