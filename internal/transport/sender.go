package transport

import (
	"occamy/internal/pkt"
	"occamy/internal/sim"
)

// Sender drives one flow: it emits data segments within the congestion
// window, processes cumulative ACKs, performs NewReno-style fast
// retransmit with partial-ACK retransmission, and falls back to an
// exponentially backed-off RTO.
type Sender struct {
	net  Net
	spec FlowSpec
	opts Options
	cc   CC

	sndUna int64 // lowest unacknowledged byte
	sndNxt int64 // next byte to send

	dupAcks    int
	inRecovery bool
	recover    int64  // fast-recovery exit point
	lastAckID  uint64 // last ACK packet identity, to shed link duplicates

	// RTO state (RFC 6298). Consecutive timeouts double rto directly
	// (capped at MaxRTO); a fresh RTT sample recomputes it from
	// srtt/rttvar, which is what ends a backoff run.
	srtt, rttvar sim.Duration
	haveRTT      bool
	rto          sim.Duration
	timer        sim.Timer
	timeoutFn    func() // onTimeout, bound once so re-arming never allocates

	started  sim.Time
	done     bool
	timeouts int64
	retx     int64

	// OnComplete fires when every payload byte has been cumulatively
	// acknowledged. The argument is the sender-side completion time.
	OnComplete func(fct sim.Duration)
}

// NewSender builds a sender; call Start to begin transmitting.
func NewSender(net Net, spec FlowSpec, cc CC, opts Options) *Sender {
	s := &Sender{net: net, spec: spec, cc: cc, opts: opts.WithDefaults()}
	s.timeoutFn = s.onTimeout
	return s
}

// Spec returns the flow description.
func (s *Sender) Spec() FlowSpec { return s.spec }

// Done reports whether the flow has fully completed.
func (s *Sender) Done() bool { return s.done }

// Timeouts returns the number of RTO events (RTO-heavy tails are the
// paper's p99 story).
func (s *Sender) Timeouts() int64 { return s.timeouts }

// Retransmits returns the number of retransmitted segments.
func (s *Sender) Retransmits() int64 { return s.retx }

// Start begins the transfer at the current virtual time.
func (s *Sender) Start() {
	s.started = s.net.Now()
	s.rto = s.opts.InitRTO
	s.trySend()
}

// segment builds the data packet starting at seq.
func (s *Sender) segment(seq int64) *pkt.Packet {
	payload := int64(s.opts.MSS)
	if rem := s.spec.Size - seq; rem < payload {
		payload = rem
	}
	p := s.net.NewPacket()
	p.ID = newPktID()
	p.FlowID = s.spec.ID
	p.Src = s.spec.Src
	p.Dst = s.spec.Dst
	p.Size = int(payload) + pkt.HeaderBytes
	p.Seq = seq
	p.Payload = int(payload)
	p.Fin = seq+payload >= s.spec.Size
	p.ECNCapable = s.spec.ECN
	p.Priority = s.spec.Priority
	p.SentAt = s.net.Now()
	return p
}

// trySend emits new segments while the window allows.
func (s *Sender) trySend() {
	if s.done {
		return
	}
	for s.sndNxt < s.spec.Size {
		inflight := s.sndNxt - s.sndUna
		if inflight+int64(s.opts.MSS) > int64(s.cc.Cwnd()) && inflight > 0 {
			break
		}
		p := s.segment(s.sndNxt)
		s.sndNxt += int64(p.Payload)
		s.net.Send(p)
	}
	s.armTimer()
}

// retransmit resends one segment from sndUna.
func (s *Sender) retransmit() {
	if s.done {
		return
	}
	s.retx++
	s.net.Send(s.segment(s.sndUna))
	s.armTimer()
}

func (s *Sender) armTimer() {
	if s.done || s.sndUna >= s.spec.Size {
		return
	}
	s.timer.Stop()
	s.timer = s.net.AfterTimer(s.rto, s.timeoutFn)
}

func (s *Sender) onTimeout() {
	if s.done {
		return
	}
	s.timeouts++
	s.cc.OnTimeout(s.net.Now())
	s.dupAcks = 0
	s.inRecovery = false
	// Exponential backoff, capped.
	s.rto *= 2
	if s.rto > s.opts.MaxRTO {
		s.rto = s.opts.MaxRTO
	}
	// Go-back-N: without SACK, everything past sndUna is suspect. Reset
	// sndNxt so subsequent ACKs clock out the whole window again;
	// without this, multiple holes degenerate into one segment per RTO.
	s.sndNxt = s.sndUna
	s.retx++
	s.trySend()
}

// OnPacket implements Handler: the sender receives pure ACKs.
func (s *Sender) OnPacket(p *pkt.Packet) {
	if !p.Ack || s.done {
		return
	}
	// A faulty link can deliver the same ACK twice. Every distinct ACK
	// carries a fresh packet ID, so an ID repeat is the duplicate copy,
	// not new information — counting it as a dup ACK would fake the
	// triple-dupACK loss signal.
	if p.ID != 0 && p.ID == s.lastAckID {
		return
	}
	s.lastAckID = p.ID
	now := s.net.Now()
	switch {
	case p.AckNo > s.sndUna:
		newly := p.AckNo - s.sndUna
		s.sndUna = p.AckNo
		if p.AckNo > s.sndNxt {
			// A pre-timeout ACK released after the Go-back-N reset
			// (sndNxt = sndUna) acknowledges past sndNxt. Those bytes
			// are delivered; resending from the stale sndNxt would push
			// already-acknowledged data and drive inflight negative.
			s.sndNxt = p.AckNo
		}
		s.dupAcks = 0
		s.sampleRTT(now - p.SentAt)
		s.cc.OnAck(newly, p.AckNo, s.sndNxt, p.ECNEcho, now)
		if s.inRecovery {
			if p.AckNo >= s.recover {
				s.inRecovery = false
			} else {
				// Partial ACK: the next segment is lost too.
				s.retransmit()
			}
		}
		if s.sndUna >= s.spec.Size {
			s.complete(now)
			return
		}
		s.armTimer()
		s.trySend()
	case p.AckNo == s.sndUna && s.sndNxt > s.sndUna:
		// With nothing outstanding there is nothing a fast retransmit
		// could repair; a same-AckNo arrival then is a stale or
		// duplicated ACK, not a loss signal.
		s.dupAcks++
		if s.dupAcks == s.dupThreshold() && !s.inRecovery {
			s.inRecovery = true
			s.recover = s.sndNxt
			s.cc.OnFastRetransmit(now)
			s.retransmit()
		}
	}
}

// dupThreshold implements early retransmit (RFC 5827): with fewer than
// four outstanding segments the classic triple-dupACK can never trigger,
// so lower the threshold to outstanding−1 (minimum 1). A fixed
// Options.DupThresh disables the adaptation (stock-Linux behaviour).
func (s *Sender) dupThreshold() int {
	if s.opts.DupThresh > 0 {
		return s.opts.DupThresh
	}
	outstanding := int((s.sndNxt - s.sndUna + int64(s.opts.MSS) - 1) / int64(s.opts.MSS))
	if outstanding >= 4 {
		return 3
	}
	if outstanding <= 2 {
		return 1
	}
	return outstanding - 1
}

func (s *Sender) complete(now sim.Time) {
	s.done = true
	s.timer.Stop()
	if s.OnComplete != nil {
		s.OnComplete(now - s.started)
	}
}

// sampleRTT updates srtt/rttvar/rto per RFC 6298.
func (s *Sender) sampleRTT(rtt sim.Duration) {
	if rtt <= 0 {
		return
	}
	if !s.haveRTT {
		s.haveRTT = true
		s.srtt = rtt
		s.rttvar = rtt / 2
	} else {
		d := s.srtt - rtt
		if d < 0 {
			d = -d
		}
		s.rttvar = (3*s.rttvar + d) / 4
		s.srtt = (7*s.srtt + rtt) / 8
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < s.opts.MinRTO {
		s.rto = s.opts.MinRTO
	}
	if s.rto > s.opts.MaxRTO {
		s.rto = s.opts.MaxRTO
	}
}

var _ Handler = (*Sender)(nil)
