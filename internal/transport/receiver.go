package transport

import (
	"occamy/internal/pkt"
	"occamy/internal/sim"
)

// Receiver reassembles a flow and acknowledges every data packet with a
// cumulative ACK carrying a per-packet ECN echo (the DCTCP marking
// channel). Out-of-order segments are buffered by sequence number.
type Receiver struct {
	net  Net
	spec FlowSpec

	rcvNxt int64
	ooo    map[int64]int64 // seq -> segment end, buffered out of order

	lastDataID uint64 // last data packet identity, to shed link duplicates

	done bool
	// OnComplete fires when the last payload byte arrives (the FCT/QCT
	// measurement point used by the workloads).
	OnComplete func(at sim.Time)
}

// NewReceiver builds the receive side of a flow.
func NewReceiver(net Net, spec FlowSpec) *Receiver {
	return &Receiver{net: net, spec: spec, ooo: make(map[int64]int64)}
}

// Done reports whether every byte has arrived.
func (r *Receiver) Done() bool { return r.done }

// Received returns the in-order byte count.
func (r *Receiver) Received() int64 { return r.rcvNxt }

// OnPacket implements Handler: the receiver consumes data segments.
func (r *Receiver) OnPacket(p *pkt.Packet) {
	if p.Ack {
		return
	}
	// A faulty link can deliver the same data packet twice; the copies
	// share the original's packet ID (retransmissions get fresh IDs, so
	// they are never mistaken for link duplicates and always re-ACKed).
	// Processing the copy would emit a duplicate ACK the sender could
	// misread as the fast-retransmit loss signal.
	if p.ID != 0 && p.ID == r.lastDataID {
		return
	}
	r.lastDataID = p.ID
	if p.Seq == r.rcvNxt {
		r.rcvNxt = p.End()
		// Drain any contiguous out-of-order segments.
		for {
			end, ok := r.ooo[r.rcvNxt]
			if !ok {
				break
			}
			delete(r.ooo, r.rcvNxt)
			r.rcvNxt = end
		}
	} else if p.Seq > r.rcvNxt {
		if end, ok := r.ooo[p.Seq]; !ok || end < p.End() {
			r.ooo[p.Seq] = p.End()
		}
	}
	// ACK every data packet; echo this packet's CE mark.
	ack := r.net.NewPacket()
	ack.ID = newPktID()
	ack.FlowID = r.spec.ID
	ack.Src = r.spec.Dst
	ack.Dst = r.spec.Src
	ack.Size = pkt.AckBytes
	ack.Ack = true
	ack.AckNo = r.rcvNxt
	ack.ECNEcho = p.CE
	ack.Priority = p.Priority
	ack.SentAt = p.SentAt // echoed for the sender's RTT sample
	r.net.Send(ack)
	if !r.done && r.rcvNxt >= r.spec.Size {
		r.done = true
		if r.OnComplete != nil {
			r.OnComplete(r.net.Now())
		}
	}
}

var _ Handler = (*Receiver)(nil)
