// Package transport implements the byte-stream flows that drive the
// evaluation: window-based congestion control (DCTCP for ECN-enabled
// experiments, a CUBIC-style loss-based controller for the others), a
// sender with slow start, fast retransmit and RTO, and a receiver with
// cumulative ACKs and per-packet ECN echo.
//
// The stack replaces the Linux kernel / ns-3 stacks of the paper's
// testbeds (see DESIGN.md): the evaluation depends on the canonical
// window laws — ECN-proportional backoff for DCTCP, multiplicative
// decrease plus cubic regrowth for CUBIC — which are implemented here
// directly.
package transport

import (
	"math"

	"occamy/internal/sim"
)

// CC is a pluggable congestion-control algorithm. All quantities are in
// bytes. Implementations are per-flow and single-threaded.
type CC interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Cwnd returns the current congestion window in bytes.
	Cwnd() int
	// OnAck processes a cumulative ACK advancing the window by `newly`
	// bytes. sndNxt is the sender's highest sent sequence (for window
	// boundaries), ecnEcho reports the receiver's CE echo.
	OnAck(newly, ackNo, sndNxt int64, ecnEcho bool, now sim.Time)
	// OnFastRetransmit reacts to a triple-duplicate-ACK loss.
	OnFastRetransmit(now sim.Time)
	// OnTimeout reacts to an RTO firing.
	OnTimeout(now sim.Time)
}

// DCTCP implements Data Center TCP (Alizadeh et al., SIGCOMM'10): the
// sender maintains an EWMA α of the fraction of ECN-marked bytes per
// window and, once per window containing marks, shrinks cwnd by α/2.
type DCTCP struct {
	mss      int
	cwnd     float64
	ssthresh float64
	g        float64 // EWMA gain, canonical 1/16
	alpha    float64

	winEnd    int64 // current observation window ends when ack passes this
	ackedWin  int64
	markedWin int64
}

// NewDCTCP returns a DCTCP controller with the given MSS and initial
// window (in segments).
func NewDCTCP(mss, initCwndSegs int) *DCTCP {
	return &DCTCP{
		mss:      mss,
		cwnd:     float64(mss * initCwndSegs),
		ssthresh: math.MaxFloat64 / 4,
		g:        1.0 / 16,
		alpha:    1, // conservative start, per the DCTCP paper
	}
}

// Name implements CC.
func (d *DCTCP) Name() string { return "dctcp" }

// Cwnd implements CC.
func (d *DCTCP) Cwnd() int { return int(d.cwnd) }

// Alpha exposes the marking-fraction EWMA (tests and debugging).
func (d *DCTCP) Alpha() float64 { return d.alpha }

// OnAck implements CC.
func (d *DCTCP) OnAck(newly, ackNo, sndNxt int64, ecnEcho bool, now sim.Time) {
	d.ackedWin += newly
	if ecnEcho {
		d.markedWin += newly
	}
	// Standard window growth.
	if d.cwnd < d.ssthresh {
		d.cwnd += float64(newly) // slow start
	} else {
		d.cwnd += float64(d.mss) * float64(newly) / d.cwnd // CA: +1 MSS/RTT
	}
	// Per-window α update and proportional decrease.
	if ackNo >= d.winEnd {
		if d.ackedWin > 0 {
			f := float64(d.markedWin) / float64(d.ackedWin)
			d.alpha = (1-d.g)*d.alpha + d.g*f
			if d.markedWin > 0 {
				d.cwnd *= 1 - d.alpha/2
				d.ssthresh = d.cwnd
			}
		}
		d.ackedWin, d.markedWin = 0, 0
		d.winEnd = sndNxt
	}
	d.clamp()
}

// OnFastRetransmit implements CC: classic halving.
func (d *DCTCP) OnFastRetransmit(now sim.Time) {
	d.ssthresh = d.cwnd / 2
	d.cwnd = d.ssthresh
	d.clamp()
}

// OnTimeout implements CC.
func (d *DCTCP) OnTimeout(now sim.Time) {
	d.ssthresh = d.cwnd / 2
	d.cwnd = float64(d.mss)
	d.clamp()
}

func (d *DCTCP) clamp() {
	if d.cwnd < float64(d.mss) {
		d.cwnd = float64(d.mss)
	}
	if d.ssthresh < float64(d.mss) {
		d.ssthresh = float64(d.mss)
	}
}

// Cubic implements a CUBIC-style loss-based controller: multiplicative
// decrease by β=0.7 on loss and cubic window regrowth
// W(t) = C·(t−K)³ + Wmax around the last loss point.
type Cubic struct {
	mss      int
	cwnd     float64
	ssthresh float64

	wmax       float64
	epochStart sim.Time
	k          float64 // seconds
	haveEpoch  bool
}

// Cubic constants (RFC 8312): C in MSS/sec³, β the decrease factor.
const (
	cubicC    = 0.4
	cubicBeta = 0.7
)

// NewCubic returns a CUBIC controller.
func NewCubic(mss, initCwndSegs int) *Cubic {
	return &Cubic{
		mss:      mss,
		cwnd:     float64(mss * initCwndSegs),
		ssthresh: math.MaxFloat64 / 4,
	}
}

// Name implements CC.
func (c *Cubic) Name() string { return "cubic" }

// Cwnd implements CC.
func (c *Cubic) Cwnd() int { return int(c.cwnd) }

// OnAck implements CC. ECN echoes are ignored: the background flows in
// the paper's CUBIC experiments are loss-driven.
func (c *Cubic) OnAck(newly, ackNo, sndNxt int64, ecnEcho bool, now sim.Time) {
	if c.cwnd < c.ssthresh {
		c.cwnd += float64(newly)
		return
	}
	if !c.haveEpoch {
		c.haveEpoch = true
		c.epochStart = now
		if c.wmax < c.cwnd {
			c.wmax = c.cwnd
		}
		wm := c.wmax / float64(c.mss)
		cw := c.cwnd / float64(c.mss)
		if wm > cw {
			c.k = math.Cbrt((wm - cw) / cubicC)
		} else {
			c.k = 0
		}
	}
	t := (now - c.epochStart).Seconds()
	targetSegs := cubicC*math.Pow(t-c.k, 3) + c.wmax/float64(c.mss)
	target := targetSegs * float64(c.mss)
	if target > c.cwnd {
		// Approach the cubic target without exceeding doubling per RTT.
		grow := (target - c.cwnd) * float64(newly) / c.cwnd
		if grow > float64(newly) {
			grow = float64(newly)
		}
		c.cwnd += grow
	} else {
		// TCP-friendly floor: at least 1 MSS per RTT.
		c.cwnd += float64(c.mss) * float64(newly) / c.cwnd
	}
}

// OnFastRetransmit implements CC.
func (c *Cubic) OnFastRetransmit(now sim.Time) {
	c.wmax = c.cwnd
	c.cwnd *= cubicBeta
	c.ssthresh = c.cwnd
	c.haveEpoch = false
	c.clamp()
}

// OnTimeout implements CC.
func (c *Cubic) OnTimeout(now sim.Time) {
	c.wmax = c.cwnd
	c.ssthresh = c.cwnd * cubicBeta
	c.cwnd = float64(c.mss)
	c.haveEpoch = false
	c.clamp()
}

func (c *Cubic) clamp() {
	if c.cwnd < float64(c.mss) {
		c.cwnd = float64(c.mss)
	}
	if c.ssthresh < float64(c.mss) {
		c.ssthresh = float64(c.mss)
	}
}
