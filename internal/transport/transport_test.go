package transport

import (
	"testing"

	"occamy/internal/pkt"
	"occamy/internal/sim"
)

// chanNet is a two-endpoint test network with a fixed one-way delay and
// programmable drop/mark functions.
type chanNet struct {
	eng      *sim.Engine
	delay    sim.Duration
	drop     func(p *pkt.Packet) bool
	mark     func(p *pkt.Packet) bool
	dup      func(p *pkt.Packet) bool // deliver a link-level copy (same ID) too
	handlers map[pkt.NodeID]Handler
	sent     int
}

func newChanNet(delay sim.Duration) *chanNet {
	return &chanNet{
		eng:      sim.NewEngine(),
		delay:    delay,
		handlers: make(map[pkt.NodeID]Handler),
	}
}

func (n *chanNet) Now() sim.Time                                  { return n.eng.Now() }
func (n *chanNet) After(d sim.Duration, fn func())                { n.eng.After(d, fn) }
func (n *chanNet) AfterTimer(d sim.Duration, fn func()) sim.Timer { return n.eng.AfterTimer(d, fn) }
func (n *chanNet) NewPacket() *pkt.Packet                         { return &pkt.Packet{} }

func (n *chanNet) Send(p *pkt.Packet) {
	n.sent++
	if n.drop != nil && n.drop(p) {
		return
	}
	if n.mark != nil && p.ECNCapable && n.mark(p) {
		p.CE = true
	}
	if n.dup != nil && n.dup(p) {
		cp := *p // link duplicate: identical bytes, identical ID
		n.eng.After(n.delay, func() {
			if h := n.handlers[cp.Dst]; h != nil {
				h.OnPacket(&cp)
			}
		})
	}
	n.eng.After(n.delay, func() {
		if h := n.handlers[p.Dst]; h != nil {
			h.OnPacket(p)
		}
	})
}

// pair wires a sender and receiver for `size` bytes over net.
func pair(n *chanNet, size int64, cc CC, opts Options) (*Sender, *Receiver) {
	spec := FlowSpec{ID: 1, Src: 0, Dst: 1, Size: size, ECN: true}
	s := NewSender(n, spec, cc, opts)
	r := NewReceiver(n, spec)
	n.handlers[0] = s
	n.handlers[1] = r
	return s, r
}

func TestTransferCompletes(t *testing.T) {
	n := newChanNet(50 * sim.Microsecond)
	s, r := pair(n, 100_000, NewDCTCP(pkt.MSS, 10), Options{})
	var fct sim.Duration = -1
	s.OnComplete = func(d sim.Duration) { fct = d }
	s.Start()
	n.eng.Run()
	if !s.Done() || !r.Done() {
		t.Fatalf("not done: sender %v receiver %v", s.Done(), r.Done())
	}
	if r.Received() != 100_000 {
		t.Fatalf("received %d, want 100000", r.Received())
	}
	if fct <= 0 {
		t.Fatal("OnComplete not called")
	}
	if s.Retransmits() != 0 || s.Timeouts() != 0 {
		t.Fatalf("lossless transfer had %d retx, %d timeouts", s.Retransmits(), s.Timeouts())
	}
}

func TestSlowStartGrowth(t *testing.T) {
	d := NewDCTCP(1000, 10)
	before := d.Cwnd()
	d.OnAck(1000, 1000, 20000, false, 0)
	if d.Cwnd() != before+1000 {
		t.Fatalf("slow start: cwnd %d -> %d, want +1000", before, d.Cwnd())
	}
}

func TestDCTCPProportionalDecrease(t *testing.T) {
	d := NewDCTCP(1000, 10)
	d.ssthresh = 0 // force congestion avoidance
	d.alpha = 1
	d.cwnd = 100_000
	d.winEnd = 0
	// A fully marked window: alpha stays ~1, cwnd should halve.
	d.OnAck(50_000, 50_000, 100_000, true, 0)
	if got := d.Cwnd(); got < 45_000 || got > 55_000 {
		t.Fatalf("fully marked window: cwnd = %d, want ~50000", got)
	}
	// Alpha decays toward zero over unmarked windows.
	for i := 0; i < 100; i++ {
		d.OnAck(50_000, d.winEnd+1, d.winEnd+100_000, false, 0)
	}
	if d.Alpha() > 0.01 {
		t.Fatalf("alpha = %v after 100 clean windows, want ~0", d.Alpha())
	}
}

func TestDCTCPPartialMarking(t *testing.T) {
	d := NewDCTCP(1000, 10)
	d.ssthresh = 0
	d.alpha = 0
	d.cwnd = 100_000
	d.winEnd = 100_000 // one full window in flight
	// 25% of the window marked: alpha = g*0.25, cut = alpha/2.
	d.OnAck(25_000, 25_000, 100_000, true, 0)
	d.OnAck(75_000, 100_001, 100_000, false, 0) // crosses winEnd
	wantAlpha := 0.25 / 16
	if got := d.Alpha(); got < wantAlpha*0.9 || got > wantAlpha*1.1 {
		t.Fatalf("alpha = %v, want ~%v", got, wantAlpha)
	}
}

func TestCubicDecreaseAndRegrow(t *testing.T) {
	c := NewCubic(1000, 10)
	c.ssthresh = 0
	c.cwnd = 100_000
	c.OnFastRetransmit(0)
	after := c.Cwnd()
	if after < 69_000 || after > 71_000 {
		t.Fatalf("cwnd after loss = %d, want 70000 (beta=0.7)", after)
	}
	// Regrowth approaches and exceeds the old Wmax after enough time.
	now := sim.Time(0)
	for i := 0; i < 20000 && c.Cwnd() <= 100_000; i++ {
		now += sim.Millisecond
		c.OnAck(1000, int64(i)*1000, int64(i)*1000+100_000, false, now)
	}
	if c.Cwnd() <= 100_000 {
		t.Fatalf("cubic never regrew past Wmax: %d", c.Cwnd())
	}
}

func TestCubicTimeoutCollapses(t *testing.T) {
	c := NewCubic(1000, 10)
	c.cwnd = 50_000
	c.OnTimeout(0)
	if c.Cwnd() != 1000 {
		t.Fatalf("cwnd after timeout = %d, want 1 MSS", c.Cwnd())
	}
}

func TestFastRetransmitRecoversSingleLoss(t *testing.T) {
	n := newChanNet(50 * sim.Microsecond)
	dropped := false
	n.drop = func(p *pkt.Packet) bool {
		// Drop one mid-flow data packet exactly once.
		if !p.Ack && p.Seq == 29200 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	s, r := pair(n, 100_000, NewDCTCP(pkt.MSS, 10), Options{})
	s.Start()
	n.eng.Run()
	if !r.Done() {
		t.Fatal("transfer did not complete")
	}
	if !dropped {
		t.Fatal("test never dropped the target packet")
	}
	if s.Timeouts() != 0 {
		t.Fatalf("needed %d RTOs; fast retransmit should have recovered", s.Timeouts())
	}
	if s.Retransmits() == 0 {
		t.Fatal("no retransmissions recorded")
	}
}

func TestRTORecoversTailLoss(t *testing.T) {
	n := newChanNet(50 * sim.Microsecond)
	dropped := false
	n.drop = func(p *pkt.Packet) bool {
		if !p.Ack && p.Fin && !dropped {
			dropped = true
			return true
		}
		return false
	}
	s, r := pair(n, 30_000, NewDCTCP(pkt.MSS, 30), Options{MinRTO: sim.Millisecond})
	s.Start()
	n.eng.Run()
	if !r.Done() {
		t.Fatal("transfer did not complete")
	}
	if s.Timeouts() == 0 {
		t.Fatal("tail loss must be recovered by RTO")
	}
}

func TestReceiverReassemblesOutOfOrder(t *testing.T) {
	n := newChanNet(0)
	spec := FlowSpec{ID: 7, Src: 0, Dst: 1, Size: 3000}
	r := NewReceiver(n, spec)
	acks := []int64{}
	n.handlers[0] = handlerFunc(func(p *pkt.Packet) { acks = append(acks, p.AckNo) })
	n.handlers[1] = r

	seg := func(seq int64, size int) *pkt.Packet {
		return &pkt.Packet{FlowID: 7, Src: 0, Dst: 1, Seq: seq, Payload: size, Size: size + pkt.HeaderBytes}
	}
	r.OnPacket(seg(1000, 1000)) // out of order
	r.OnPacket(seg(2000, 1000)) // out of order
	r.OnPacket(seg(0, 1000))    // fills the hole
	n.eng.Run()
	want := []int64{0, 0, 3000}
	for i := range want {
		if acks[i] != want[i] {
			t.Fatalf("acks = %v, want %v", acks, want)
		}
	}
	if !r.Done() {
		t.Fatal("receiver not done after reassembly")
	}
}

func TestDuplicateDataIgnored(t *testing.T) {
	n := newChanNet(0)
	spec := FlowSpec{ID: 7, Src: 0, Dst: 1, Size: 2000}
	r := NewReceiver(n, spec)
	n.handlers[0] = handlerFunc(func(p *pkt.Packet) {})
	n.handlers[1] = r
	seg := &pkt.Packet{FlowID: 7, Src: 0, Dst: 1, Seq: 0, Payload: 1000, Size: 1040}
	r.OnPacket(seg)
	r.OnPacket(seg) // duplicate
	n.eng.Run()
	if r.Received() != 1000 {
		t.Fatalf("Received = %d after duplicate, want 1000", r.Received())
	}
}

type handlerFunc func(p *pkt.Packet)

func (f handlerFunc) OnPacket(p *pkt.Packet) { f(p) }

func TestECNEchoDrivesDCTCP(t *testing.T) {
	n := newChanNet(50 * sim.Microsecond)
	n.mark = func(p *pkt.Packet) bool { return !p.Ack } // mark everything
	cc := NewDCTCP(pkt.MSS, 10)
	s, r := pair(n, 200_000, cc, Options{})
	s.Start()
	n.eng.Run()
	if !r.Done() {
		t.Fatal("transfer did not complete under full marking")
	}
	// With every packet marked, alpha must stay high.
	if cc.Alpha() < 0.5 {
		t.Fatalf("alpha = %v under continuous marking, want high", cc.Alpha())
	}
}

// Property-style soak: random loss up to 20% still completes, for both
// CC algorithms, across seeds.
func TestRandomLossAlwaysCompletes(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		for _, mk := range []func() CC{
			func() CC { return NewDCTCP(pkt.MSS, 10) },
			func() CC { return NewCubic(pkt.MSS, 10) },
		} {
			r := sim.NewRand(seed)
			n := newChanNet(20 * sim.Microsecond)
			n.drop = func(p *pkt.Packet) bool { return r.Float64() < 0.2 && !p.Fin }
			s, rcv := pair(n, 50_000, mk(), Options{MinRTO: sim.Millisecond})
			s.Start()
			n.eng.RunUntil(20 * sim.Second)
			if !rcv.Done() {
				t.Fatalf("seed %d %s: transfer stuck at %d/50000", seed, s.cc.Name(), rcv.Received())
			}
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.WithDefaults()
	if o.MSS != pkt.MSS || o.InitCwndSegs != 10 || o.MinRTO != 5*sim.Millisecond {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestRenoAIMD(t *testing.T) {
	r := NewReno(1000, 10)
	r.ssthresh = 0 // congestion avoidance
	r.cwnd = 10000
	before := r.Cwnd()
	// One full window of ACKs grows cwnd by ~1 MSS.
	for i := 0; i < 10; i++ {
		r.OnAck(1000, int64(i)*1000, 100000, false, 0)
	}
	if got := r.Cwnd(); got < before+900 || got > before+1100 {
		t.Fatalf("CA growth per RTT = %d, want ~1000", got-before)
	}
	r.OnFastRetransmit(0)
	if got := r.Cwnd(); got < 5000 || got > 6000 {
		t.Fatalf("cwnd after loss = %d, want ~half", got)
	}
	r.OnTimeout(0)
	if r.Cwnd() != 1000 {
		t.Fatalf("cwnd after RTO = %d, want 1 MSS", r.Cwnd())
	}
}

func TestRenoECNOncePerWindow(t *testing.T) {
	r := NewReno(1000, 10)
	r.ssthresh = 0
	r.cwnd = 20000
	r.OnAck(1000, 1000, 40000, true, 0)
	afterFirst := r.Cwnd()
	if afterFirst >= 20000 {
		t.Fatal("ECN echo did not cut cwnd")
	}
	// Further echoes in the same window (cwnd == ssthresh) do not cut.
	r.OnAck(1000, 2000, 40000, true, 0)
	if r.Cwnd() < afterFirst-1 {
		t.Fatalf("second echo cut again: %d -> %d", afterFirst, r.Cwnd())
	}
}

func TestTransferCompletesWithReno(t *testing.T) {
	n := newChanNet(50 * sim.Microsecond)
	s, r := pair(n, 80_000, NewReno(pkt.MSS, 10), Options{})
	s.Start()
	n.eng.Run()
	if !r.Done() {
		t.Fatal("Reno transfer did not complete")
	}
}

// A link that duplicates every ACK must not fake the triple-dupACK loss
// signal: the copies carry the same packet ID and are shed at the sender.
func TestLinkDuplicatedAcksCauseNoSpuriousRetransmit(t *testing.T) {
	n := newChanNet(50 * sim.Microsecond)
	n.dup = func(p *pkt.Packet) bool { return p.Ack }
	s, r := pair(n, 100_000, NewDCTCP(pkt.MSS, 10), Options{DupThresh: 3})
	s.Start()
	n.eng.Run()
	if !r.Done() {
		t.Fatal("transfer did not complete")
	}
	if s.Retransmits() != 0 || s.Timeouts() != 0 {
		t.Fatalf("duplicated ACKs on a lossless link caused %d retx, %d RTOs",
			s.Retransmits(), s.Timeouts())
	}
}

// A link that duplicates every data packet must not make the receiver
// emit duplicate ACKs for the copies (which the sender would count
// toward fast retransmit): the copies are shed at the receiver.
func TestLinkDuplicatedDataCausesNoSpuriousRetransmit(t *testing.T) {
	n := newChanNet(50 * sim.Microsecond)
	n.dup = func(p *pkt.Packet) bool { return !p.Ack }
	s, r := pair(n, 100_000, NewDCTCP(pkt.MSS, 10), Options{DupThresh: 3})
	s.Start()
	n.eng.Run()
	if !r.Done() {
		t.Fatal("transfer did not complete")
	}
	if r.Received() != 100_000 {
		t.Fatalf("received %d, want 100000", r.Received())
	}
	if s.Retransmits() != 0 || s.Timeouts() != 0 {
		t.Fatalf("duplicated data on a lossless link caused %d retx, %d RTOs",
			s.Retransmits(), s.Timeouts())
	}
}

// Duplication and loss together: every surviving packet is duplicated
// and 5% are lost. The flow must still complete, and recovery must be
// driven by real loss signals only.
func TestDuplicationPlusLossCompletes(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		r := sim.NewRand(seed)
		n := newChanNet(20 * sim.Microsecond)
		n.drop = func(p *pkt.Packet) bool { return r.Float64() < 0.05 }
		n.dup = func(p *pkt.Packet) bool { return true }
		s, rcv := pair(n, 50_000, NewDCTCP(pkt.MSS, 10), Options{MinRTO: sim.Millisecond})
		s.Start()
		n.eng.RunUntil(20 * sim.Second)
		if !rcv.Done() {
			t.Fatalf("seed %d: stuck at %d/50000", seed, rcv.Received())
		}
	}
}

// A hold-back reorder that lets fewer data packets than the fixed dup-ACK
// threshold overtake the held segment must cause no retransmission of any
// kind. Holding seq 116800 of a 120000-byte flow leaves exactly two
// segments (118260 and the FIN at 119720) to overtake: two dup ACKs < 3.
func TestReorderBelowDupThresholdNoRetransmit(t *testing.T) {
	n := newChanNet(20 * sim.Microsecond)
	reordered := false
	n.drop = func(p *pkt.Packet) bool {
		if p.Ack || reordered || p.Seq != 116800 {
			return false
		}
		reordered = true
		hp := p
		// Release well before the 5ms MinRTO so only the overtake path runs.
		n.eng.After(300*sim.Microsecond, func() {
			if h := n.handlers[hp.Dst]; h != nil {
				h.OnPacket(hp)
			}
		})
		return true
	}
	s, r := pair(n, 120_000, NewDCTCP(pkt.MSS, 10), Options{DupThresh: 3})
	s.Start()
	n.eng.Run()
	if !r.Done() {
		t.Fatal("transfer did not complete")
	}
	if !reordered {
		t.Fatal("test never reordered the target packet")
	}
	if s.Retransmits() != 0 || s.Timeouts() != 0 {
		t.Fatalf("reordering below dup-ACK threshold caused %d retx, %d RTOs",
			s.Retransmits(), s.Timeouts())
	}
}

// invariantHandler forwards to the sender and checks window sanity after
// every ACK: sndNxt may never fall behind sndUna, and inflight may never
// go negative (the stale-ACK-after-Go-back-N corruption mode).
type invariantHandler struct {
	t *testing.T
	s *Sender
}

func (h invariantHandler) OnPacket(p *pkt.Packet) {
	h.s.OnPacket(p)
	if h.s.sndNxt < h.s.sndUna {
		h.t.Fatalf("window corrupted: sndNxt %d < sndUna %d after ACK %d",
			h.s.sndNxt, h.s.sndUna, p.AckNo)
	}
}

// ACKs held back past the RTO arrive after the Go-back-N reset with
// AckNo beyond sndNxt. The sender must absorb them without re-sending
// already-acknowledged bytes or corrupting its window state.
func TestStaleAckAfterRTOKeepsGoBackNConsistent(t *testing.T) {
	n := newChanNet(50 * sim.Microsecond)
	heldAcks := 0
	n.drop = func(p *pkt.Packet) bool {
		// Hold every ACK of the first 2ms until well past the 1ms RTO, so
		// the Go-back-N reset happens first and the held cumulative ACKs
		// then arrive with AckNo beyond the rewound sndNxt.
		if p.Ack && n.eng.Now() < 2*sim.Millisecond {
			heldAcks++
			hp := p
			n.eng.After(4*sim.Millisecond, func() {
				if h := n.handlers[hp.Dst]; h != nil {
					h.OnPacket(hp)
				}
			})
			return true
		}
		return false
	}
	s, r := pair(n, 60_000, NewDCTCP(pkt.MSS, 10),
		Options{MinRTO: sim.Millisecond, InitRTO: sim.Millisecond})
	n.handlers[0] = invariantHandler{t, s}
	s.Start()
	n.eng.RunUntil(20 * sim.Second)
	if !r.Done() || !s.Done() {
		t.Fatalf("transfer stuck: receiver %d/60000, sender done %v", r.Received(), s.Done())
	}
	if heldAcks < 5 {
		t.Fatalf("test held only %d ACKs", heldAcks)
	}
	if s.Timeouts() == 0 {
		t.Fatal("scenario was meant to force at least one RTO")
	}
}

// Reordered delivery must not break reassembly or trigger spurious
// timeouts: swap adjacent data packets in flight.
func TestReorderingTolerated(t *testing.T) {
	n := newChanNet(20 * sim.Microsecond)
	var held *pkt.Packet
	n.drop = func(p *pkt.Packet) bool {
		if p.Ack {
			return false
		}
		// Hold every 7th data packet and release it after the next one.
		if held == nil && p.Seq > 0 && (p.Seq/1460)%7 == 0 {
			held = p
			hp := p
			n.eng.After(60*sim.Microsecond, func() {
				if h := n.handlers[hp.Dst]; h != nil {
					h.OnPacket(hp)
				}
				held = nil
			})
			return true // swallowed here, delivered late above
		}
		return false
	}
	s, r := pair(n, 120_000, NewDCTCP(pkt.MSS, 10), Options{})
	s.Start()
	n.eng.Run()
	if !r.Done() {
		t.Fatal("transfer did not complete under reordering")
	}
	if s.Timeouts() != 0 {
		t.Fatalf("%d spurious RTOs under mild reordering", s.Timeouts())
	}
}
