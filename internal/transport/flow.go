package transport

import (
	"sync/atomic"

	"occamy/internal/pkt"
	"occamy/internal/sim"
)

// Net is the interface a flow endpoint needs from its host: virtual
// time, timers, packet allocation, and packet injection into the
// network. It is implemented by netsim.Host.
type Net interface {
	Now() sim.Time
	After(d sim.Duration, fn func())
	AfterTimer(d sim.Duration, fn func()) sim.Timer
	// NewPacket returns a zeroed packet, typically from the network's
	// freelist so the per-packet allocation disappears from the hot path.
	NewPacket() *pkt.Packet
	Send(p *pkt.Packet)
}

// Handler consumes packets delivered to a host for a given flow.
type Handler interface {
	OnPacket(p *pkt.Packet)
}

// FlowSpec describes one byte-stream flow.
type FlowSpec struct {
	ID       uint64
	Src, Dst pkt.NodeID
	Size     int64 // payload bytes to transfer
	Priority int   // traffic class at switches
	ECN      bool  // set ECT on data packets
}

// Options tunes the sender.
type Options struct {
	// MSS is the payload per segment; 0 defaults to pkt.MSS (1460).
	MSS int
	// InitCwndSegs is the initial window in segments; 0 defaults to 10.
	InitCwndSegs int
	// MinRTO floors the retransmission timeout; 0 defaults to 5ms (the
	// value the paper's simulations use).
	MinRTO sim.Duration
	// InitRTO is the timeout before any RTT sample; 0 defaults to 10ms.
	InitRTO sim.Duration
	// MaxRTO caps exponential backoff; 0 defaults to 1s.
	MaxRTO sim.Duration
	// DupThresh fixes the duplicate-ACK fast-retransmit threshold.
	// Zero enables adaptive early retransmit (RFC 5827); stock-Linux
	// mimicking scenarios set 3.
	DupThresh int
}

func (o Options) WithDefaults() Options {
	if o.MSS == 0 {
		o.MSS = pkt.MSS
	}
	if o.InitCwndSegs == 0 {
		o.InitCwndSegs = 10
	}
	if o.MinRTO == 0 {
		o.MinRTO = 5 * sim.Millisecond
	}
	if o.InitRTO == 0 {
		o.InitRTO = 10 * sim.Millisecond
	}
	if o.MaxRTO == 0 {
		o.MaxRTO = sim.Second
	}
	return o
}

// nextPktID hands out globally unique packet IDs. It is atomic so that
// independent engines may run concurrently (the parallel sweep runner);
// IDs only need to be unique, they never influence simulation behavior.
//
//occamy:concurrent global ID counter shared across engines; IDs are unique-only, never ordered on
var nextPktID atomic.Uint64

func newPktID() uint64 {
	//occamy:concurrent same seam: IDs are unique-only, never ordered on
	return nextPktID.Add(1)
}
