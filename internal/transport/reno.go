package transport

import (
	"math"

	"occamy/internal/sim"
)

// Reno implements classic TCP NewReno congestion control: slow start,
// AIMD congestion avoidance (+1 MSS/RTT, ×0.5 on loss). It complements
// DCTCP and Cubic for experiments that need the plainest loss-based
// behaviour.
type Reno struct {
	mss      int
	cwnd     float64
	ssthresh float64
}

// NewReno returns a Reno controller.
func NewReno(mss, initCwndSegs int) *Reno {
	return &Reno{
		mss:      mss,
		cwnd:     float64(mss * initCwndSegs),
		ssthresh: math.MaxFloat64 / 4,
	}
}

// Name implements CC.
func (r *Reno) Name() string { return "reno" }

// Cwnd implements CC.
func (r *Reno) Cwnd() int { return int(r.cwnd) }

// OnAck implements CC. ECN echoes are treated as loss-equivalent
// (RFC 3168 behaviour): one multiplicative decrease per window.
func (r *Reno) OnAck(newly, ackNo, sndNxt int64, ecnEcho bool, now sim.Time) {
	if ecnEcho {
		// At most one backoff per RTT: only cut when cwnd is above
		// ssthresh (i.e. we have not just cut).
		if r.cwnd > r.ssthresh {
			r.OnFastRetransmit(now)
		}
		return
	}
	if r.cwnd < r.ssthresh {
		r.cwnd += float64(newly)
	} else {
		r.cwnd += float64(r.mss) * float64(newly) / r.cwnd
	}
}

// OnFastRetransmit implements CC.
func (r *Reno) OnFastRetransmit(now sim.Time) {
	r.ssthresh = r.cwnd / 2
	if r.ssthresh < float64(r.mss) {
		r.ssthresh = float64(r.mss)
	}
	r.cwnd = r.ssthresh
}

// OnTimeout implements CC.
func (r *Reno) OnTimeout(now sim.Time) {
	r.ssthresh = r.cwnd / 2
	if r.ssthresh < float64(r.mss) {
		r.ssthresh = float64(r.mss)
	}
	r.cwnd = float64(r.mss)
}

var _ CC = (*Reno)(nil)
