package transport

import (
	"testing"

	"occamy/internal/pkt"
	"occamy/internal/sim"
)

// TestRTOExponentialBackoffCapped pins the RTO backoff contract after
// the removal of the old (never-read) backoff counter: each consecutive
// timeout doubles rto up to MaxRTO, the doubled value is what the
// retransmission timer is actually armed with, and the timeout counter
// tracks every event.
func TestRTOExponentialBackoffCapped(t *testing.T) {
	n := newChanNet(50 * sim.Microsecond)
	n.drop = func(p *pkt.Packet) bool { return true } // blackhole: RTOs only
	opts := Options{InitRTO: 10 * sim.Millisecond, MaxRTO: 80 * sim.Millisecond}
	s, _ := pair(n, 100_000, NewDCTCP(pkt.MSS, 10), opts)
	s.Start()
	if s.rto != opts.InitRTO {
		t.Fatalf("rto after Start = %v, want InitRTO %v", s.rto, opts.InitRTO)
	}

	want := opts.InitRTO
	for i := 1; i <= 6; i++ {
		s.onTimeout()
		if want *= 2; want > opts.MaxRTO {
			want = opts.MaxRTO
		}
		if s.rto != want {
			t.Fatalf("timeout %d: rto = %v, want %v", i, s.rto, want)
		}
		// The backed-off value must be live, not bookkeeping: the timer
		// re-armed by the timeout's retransmission fires one rto from now.
		if got := s.timer.Deadline() - n.Now(); got != want {
			t.Fatalf("timeout %d: timer armed %v out, want rto %v", i, got, want)
		}
		if s.Timeouts() != int64(i) {
			t.Fatalf("timeout %d: counter = %d", i, s.Timeouts())
		}
	}
	if s.rto != opts.MaxRTO {
		t.Fatalf("rto = %v after 6 timeouts, want cap %v", s.rto, opts.MaxRTO)
	}
}

// TestRTOResetAfterRTTSample runs a transfer through a link that
// blackholes everything for the first 200ms, then heals. The sender
// must back off to the cap while the link is dark, then — once ACKs
// carry fresh RTT samples — recompute rto from srtt/rttvar, landing
// back at the floor for a microsecond-RTT path.
func TestRTOResetAfterRTTSample(t *testing.T) {
	n := newChanNet(50 * sim.Microsecond)
	dark := 200 * sim.Millisecond
	n.drop = func(p *pkt.Packet) bool { return n.Now() < dark }
	opts := Options{
		InitRTO: 10 * sim.Millisecond,
		MinRTO:  5 * sim.Millisecond,
		MaxRTO:  80 * sim.Millisecond,
	}
	s, r := pair(n, 100_000, NewDCTCP(pkt.MSS, 10), opts)
	s.Start()
	n.eng.Run()

	if !s.Done() || !r.Done() {
		t.Fatalf("not done: sender %v receiver %v", s.Done(), r.Done())
	}
	// Timeouts at 10, 30, 70, 150ms are all eaten by the dark window, so
	// the sender must have reached the cap along the way.
	if s.Timeouts() < 4 {
		t.Fatalf("%d timeouts through a 200ms blackhole, want >= 4", s.Timeouts())
	}
	if !s.haveRTT {
		t.Fatal("no RTT sample after the link healed")
	}
	// The healed path's RTT is 100µs, so srtt+4*rttvar clamps to MinRTO:
	// the backoff did not stick past the first fresh sample.
	if s.rto != opts.MinRTO {
		t.Fatalf("rto = %v after healed transfer, want MinRTO %v", s.rto, opts.MinRTO)
	}
}
