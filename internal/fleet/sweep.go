package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"occamy/internal/scenario"
	"occamy/internal/service"
)

// maxBodyBytes bounds a submitted request body, matching the worker's
// spec-size bound.
const maxBodyBytes = 1 << 20

// sweepRequest mirrors the worker's POST /v1/sweeps wire format, so a
// client's sweep body is valid against one worker and the fleet alike.
type sweepRequest struct {
	Name  string          `json:"name,omitempty"`
	Scale string          `json:"scale,omitempty"`
	Spec  json.RawMessage `json:"spec,omitempty"`
	Axes  []string        `json:"axes"`
}

// handleSweep expands the grid router-side and fans the points out to
// their home shards; the aggregate table is byte-identical to what a
// single worker would have produced for the same sweep (a contract
// pinned by TestFleetSweepByteIdentity).
func (rt *Router) handleSweep(w http.ResponseWriter, r *http.Request) {
	if !rt.admit(w, r, 1) {
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil || len(body) > maxBodyBytes {
		httpError(w, http.StatusBadRequest, "bad sweep body")
		return
	}
	var req sweepRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "parsing sweep request: %v", err)
		return
	}
	var spec scenario.Spec
	switch {
	case len(req.Spec) > 0:
		spec, err = scenario.ParseSpec(req.Spec)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	case req.Name != "":
		spec, err = service.CatalogSpec(req.Name, req.Scale)
		if err != nil {
			httpError(w, http.StatusNotFound, "%v", err)
			return
		}
	default:
		httpError(w, http.StatusBadRequest, "sweep request needs a spec or a catalog name")
		return
	}
	if len(req.Axes) == 0 {
		httpError(w, http.StatusBadRequest, "sweep request has no axes")
		return
	}
	axes := make([]scenario.SweepAxis, len(req.Axes))
	for i, a := range req.Axes {
		ax, err := scenario.ParseSweep(a)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		axes[i] = ax
	}
	// The grid cap is checked in O(axes), before expansion, exactly like
	// the worker's SubmitSweep — overflow-safe against axis products past
	// 1<<63.
	points := 1
	for _, ax := range axes {
		n := len(ax.Values)
		if n == 0 {
			httpError(w, http.StatusBadRequest, "sweep axis %q has no values", ax.Path)
			return
		}
		if points > rt.maxSweep/n {
			httpError(w, http.StatusBadRequest,
				"service: sweep grid too large: axes multiply past the %d-point cap", rt.maxSweep)
			return
		}
		points *= n
	}
	// Expand now so bad axis paths and invalid point specs are a clean
	// 400 here, not a failed job discovered by polling.
	pointSpecs, _, err := scenario.Expand(spec, axes)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	for _, ps := range pointSpecs {
		if err := ps.WithDefaults().Validate(); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	fp, err := service.SweepFingerprint(spec, axes)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}

	now := time.Now().UTC()
	trace := reqTrace(r)
	rt.mu.Lock()
	rt.counters.Sweeps++
	// Same sweep already aggregating? Join it instead of fanning out a
	// duplicate grid (the worker-side caches would absorb the repeat
	// points, but the router shouldn't even ask).
	if j := rt.inflight[fp]; j != nil {
		st := j.status()
		rt.mu.Unlock()
		writeJSON(w, http.StatusAccepted, st)
		return
	}
	if data := rt.sweepCache.Get(fp); data != nil {
		rt.counters.SweepCacheHits++
		j := rt.newSweepLocked(spec, axes, fp, now, trace, len(pointSpecs))
		j.state = service.JobDone
		j.cached = true
		j.result = data
		j.finished = now
		st := j.status()
		rt.mu.Unlock()
		writeJSON(w, http.StatusAccepted, st)
		return
	}
	j := rt.newSweepLocked(spec, axes, fp, now, trace, len(pointSpecs))
	rt.inflight[fp] = j
	rt.counters.SweepPoints += int64(len(pointSpecs))
	st := j.status()
	rt.mu.Unlock()
	rt.logSweep(j, "enqueued", "points", len(pointSpecs))

	go rt.runSweep(j, pointSpecs)
	writeJSON(w, http.StatusAccepted, st)
}

// newSweepLocked registers a fresh router sweep job; the caller holds
// rt.mu.
func (rt *Router) newSweepLocked(spec scenario.Spec, axes []scenario.SweepAxis, fp string, now time.Time, trace string, points int) *sweepJob {
	rt.seq++
	j := &sweepJob{
		id:          fmt.Sprintf("g%d", rt.seq),
		spec:        spec,
		axes:        axes,
		fingerprint: fp,
		trace:       trace,
		pointsTotal: points,
		state:       service.JobQueued,
		submitted:   now,
	}
	rt.sweeps[j.id] = j
	rt.order = append(rt.order, j.id)
	return j
}

// logSweep emits one structured sweep-lifecycle record.
func (rt *Router) logSweep(j *sweepJob, event string, attrs ...any) {
	base := []any{"job", j.id, "kind", "sweep", "scenario", j.spec.Name, "state", string(j.state)}
	if j.trace != "" {
		base = append(base, "trace", j.trace)
	}
	rt.logger.Info(event, append(base, attrs...)...)
}

// errSweepCanceled aborts the aggregation when DELETE flags the job.
var errSweepCanceled = errors.New("sweep canceled")

// runSweep is the aggregator: every point runs on its fingerprint's
// home shard (concurrently — each shard's own queue provides the
// backpressure), and the finished tables re-assemble into the exact
// rows and bytes a single-process sweep would emit.
func (rt *Router) runSweep(j *sweepJob, pointSpecs []scenario.Spec) {
	rt.mu.Lock()
	j.state = service.JobRunning
	j.started = time.Now().UTC()
	rt.mu.Unlock()
	rt.logSweep(j, "started")

	tables := make([]scenario.TableDoc, len(pointSpecs))
	errs := make([]error, len(pointSpecs))
	var wg sync.WaitGroup
	for i, ps := range pointSpecs {
		wg.Add(1)
		go func(i int, ps scenario.Spec) {
			defer wg.Done()
			tables[i], errs[i] = rt.runPoint(j, i, ps)
			if errs[i] == nil {
				j.pointsDone.Add(1)
			}
		}(i, ps)
	}
	wg.Wait()

	canceled := false
	var failure error
	for _, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, errSweepCanceled):
			canceled = true
		case failure == nil:
			failure = err
		}
	}
	switch {
	case failure != nil:
		rt.finishSweep(j, service.JobFailed, nil, failure.Error())
	case canceled || j.cancel.Load():
		rt.finishSweep(j, service.JobCanceled, nil, "")
	default:
		table, err := scenario.AssembleSweepTable(j.spec, j.axes, tables)
		if err != nil {
			rt.finishSweep(j, service.JobFailed, nil, err.Error())
			return
		}
		data, err := table.Encode()
		if err != nil {
			rt.finishSweep(j, service.JobFailed, nil, err.Error())
			return
		}
		rt.sweepCache.Put(j.fingerprint, data)
		rt.finishSweep(j, service.JobDone, data, "")
	}
}

func (rt *Router) finishSweep(j *sweepJob, state service.JobState, result []byte, errMsg string) {
	rt.mu.Lock()
	j.state = state
	j.result = result
	j.errMsg = errMsg
	j.finished = time.Now().UTC()
	if rt.inflight[j.fingerprint] == j {
		delete(rt.inflight, j.fingerprint)
	}
	rt.mu.Unlock()
	attrs := []any{"queue_wait_ms", durToMs(j.started.Sub(j.submitted)), "run_ms", durToMs(j.finished.Sub(j.started))}
	if errMsg != "" {
		attrs = append(attrs, "error", errMsg)
	}
	rt.logSweep(j, string(state), attrs...)
}

// runPoint submits one grid point to its home shard and polls it to a
// terminal state, returning the point's summary table. Every request it
// makes — submission and polls alike — carries the sweep trace's ".N"
// child ID, so the worker-side job for grid point N greps back to the
// router sweep that spawned it.
func (rt *Router) runPoint(j *sweepJob, idx int, spec scenario.Spec) (scenario.TableDoc, error) {
	trace := service.ChildTrace(j.trace, "", idx)
	fp, err := spec.Fingerprint()
	if err != nil {
		return scenario.TableDoc{}, err
	}
	shard := rt.ring.Lookup(fp)
	st, err := rt.submitPoint(j, shard, spec, trace)
	if err != nil {
		return scenario.TableDoc{}, err
	}
	deadline := time.Now().Add(rt.pointWait)
	for {
		if j.cancel.Load() {
			return scenario.TableDoc{}, errSweepCanceled
		}
		resp, err := rt.callWorker(shard, http.MethodGet, "/v1/runs/"+st.ID, nil, trace)
		if err != nil {
			return scenario.TableDoc{}, err
		}
		if resp.status != http.StatusOK {
			return scenario.TableDoc{}, fmt.Errorf("worker %d: polling %s: status %d", shard, st.ID, resp.status)
		}
		var view struct {
			service.JobStatus
			Result json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal(resp.body, &view); err != nil {
			return scenario.TableDoc{}, fmt.Errorf("worker %d: undecodable job view: %v", shard, err)
		}
		if view.State.Terminal() {
			if view.State != service.JobDone {
				if view.Error != "" {
					return scenario.TableDoc{}, fmt.Errorf("point %q on worker %d: %s", spec.Name, shard, view.Error)
				}
				return scenario.TableDoc{}, fmt.Errorf("point %q on worker %d ended %s", spec.Name, shard, view.State)
			}
			// Only the summary row participates in the aggregate; the full
			// result document stays on (and is served by) its home shard.
			var doc struct {
				Summary scenario.TableDoc `json:"summary"`
			}
			if err := json.Unmarshal(view.Result, &doc); err != nil {
				return scenario.TableDoc{}, fmt.Errorf("point %q: undecodable result: %v", spec.Name, err)
			}
			return doc.Summary, nil
		}
		if time.Now().After(deadline) {
			return scenario.TableDoc{}, fmt.Errorf("point %q on worker %d: no result within %s", spec.Name, shard, rt.pointWait)
		}
		time.Sleep(rt.pollEvery)
	}
}

// submitPoint POSTs one point spec to its shard, absorbing transient
// 503s (queue briefly full, instance draining) with a short bounded
// backoff that honors Retry-After. A transport error means the shard is
// down — the sweep fails rather than silently re-homing the point,
// because a re-homed point would dodge the shard's cache and violate
// the "equal specs, equal home" invariant.
func (rt *Router) submitPoint(j *sweepJob, shard int, spec scenario.Spec, trace string) (service.JobStatus, error) {
	body, err := spec.Marshal()
	if err != nil {
		return service.JobStatus{}, err
	}
	const attempts = 4
	for attempt := 1; ; attempt++ {
		if j.cancel.Load() {
			return service.JobStatus{}, errSweepCanceled
		}
		resp, err := rt.callWorker(shard, http.MethodPost, "/v1/runs", body, trace)
		if err != nil {
			return service.JobStatus{}, err
		}
		switch {
		case resp.status == http.StatusAccepted:
			var st service.JobStatus
			if err := json.Unmarshal(resp.body, &st); err != nil {
				return service.JobStatus{}, fmt.Errorf("worker %d: undecodable job status: %v", shard, err)
			}
			return st, nil
		case resp.status == http.StatusServiceUnavailable && attempt < attempts:
			wait := 50 * time.Millisecond * time.Duration(attempt)
			if ra := resp.header.Get("Retry-After"); ra != "" {
				if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
					wait = time.Duration(secs) * time.Second
				}
			}
			if wait > time.Second {
				wait = time.Second
			}
			time.Sleep(wait)
		default:
			return service.JobStatus{}, fmt.Errorf("point %q on worker %d: status %d: %s",
				spec.Name, shard, resp.status, string(resp.body))
		}
	}
}
