package fleet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// With a frozen clock there is no refill, so a burst-10 bucket must
// grant exactly 10 of any number of concurrent Allows on one key — an
// exact invariant that only holds if the whole check-and-charge is one
// critical section. Run under -race, this pins the mutex discipline
// the atomicfield analyzer cannot see past (the token float is plain
// on purpose: it is always mutex-guarded).
func TestRateLimiterConcurrentAllowExact(t *testing.T) {
	l := NewRateLimiter(1, 10)
	t0 := time.Now()
	l.now = func() time.Time { return t0 }

	const callers = 64
	var granted atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if ok, _ := l.Allow("tenant-a"); ok {
				granted.Add(1)
			}
		}()
	}
	wg.Wait()
	if granted.Load() != 10 {
		t.Fatalf("granted = %d, want exactly 10 (burst, frozen clock)", granted.Load())
	}
}

// Distinct keys exercise the bucket map itself under concurrency:
// every key gets its own burst, and the map grows without racing.
func TestRateLimiterConcurrentDistinctKeys(t *testing.T) {
	l := NewRateLimiter(1, 2)
	t0 := time.Now()
	l.now = func() time.Time { return t0 }

	const keys, perKey = 32, 8
	var granted atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("tenant-%d", k)
		for i := 0; i < perKey; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if ok, _ := l.Allow(key); ok {
					granted.Add(1)
				}
			}()
		}
	}
	wg.Wait()
	if granted.Load() != keys*2 {
		t.Fatalf("granted = %d, want %d (burst 2 per key, frozen clock)", granted.Load(), keys*2)
	}
}
