package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"occamy/internal/metrics"
	"occamy/internal/scenario"
	"occamy/internal/service"
)

// Config sizes a Router.
type Config struct {
	// Workers are the occamy-served base URLs ("http://host:port"),
	// unique, in any order (the ring hashes their names, not their
	// positions).
	Workers []string
	// Replicas is the virtual-node count per worker (default
	// DefaultReplicas).
	Replicas int
	// MaxSweepPoints caps one sweep's expanded grid, checked in O(axes)
	// before expansion exactly like the worker-side cap (default 256).
	MaxSweepPoints int
	// RatePerClient and Burst shape the per-client token bucket guarding
	// the submission endpoints; RatePerClient <= 0 disables limiting.
	RatePerClient float64
	Burst         float64
	// SweepCacheBytes budgets the router's aggregated-sweep result cache
	// (default 64 MB). Individual run results are never cached here —
	// they live on their home shard.
	SweepCacheBytes int64
	// PollInterval is the cadence at which the sweep aggregator polls
	// point jobs (default 5ms); PointTimeout bounds one point's
	// submit-to-done wait (default 10m).
	PollInterval time.Duration
	PointTimeout time.Duration
	// Client overrides the HTTP client used to reach workers.
	Client *http.Client
	// Logger receives structured request and sweep-lifecycle records
	// (occamy-router wires a JSON handler behind -log-level). nil
	// discards everything.
	Logger *slog.Logger
}

// Counters is the router's own cumulative ledger, reported under
// "router" in GET /v1/stats (the worker ledgers are merged separately).
type Counters struct {
	// Routed counts POST /v1/runs submissions forwarded to a shard;
	// Proxied the forwarded reads/cancels (status, trace, delete).
	Routed  int64 `json:"routed"`
	Proxied int64 `json:"proxied"`
	// Sweeps counts POST /v1/sweeps accepted; SweepCacheHits the ones
	// answered from the aggregated-table cache; SweepPoints the grid
	// points fanned out to workers.
	Sweeps         int64 `json:"sweeps"`
	SweepCacheHits int64 `json:"sweep_cache_hits"`
	SweepPoints    int64 `json:"sweep_points"`
	// BatchSpecs counts specs submitted through POST /v1/batch.
	BatchSpecs int64 `json:"batch_specs"`
	// RateLimited counts 429s; WorkerErrors the 502s returned because a
	// shard was unreachable.
	RateLimited  int64 `json:"rate_limited"`
	WorkerErrors int64 `json:"worker_errors"`
}

// Router fronts a fleet of occamy-served workers. Runs are routed by
// consistent hash over the spec fingerprint — the same partition key
// the workers' content-addressed caches use — so every spec has exactly
// one home shard and resubmissions are fleet-wide O(1) cache hits.
// Sweeps are expanded router-side and their points fanned to each
// point's home shard, the aggregate re-assembled byte-identically to a
// single-process sweep. The router itself holds no simulation state:
// killing it loses nothing but the in-flight sweep aggregations.
type Router struct {
	workers    []string
	ring       *Ring
	client     *http.Client
	limiter    *RateLimiter
	sweepCache *service.Cache
	maxSweep   int
	pollEvery  time.Duration
	pointWait  time.Duration
	started    time.Time
	endpoints  map[string]*metrics.Histogram
	logger     *slog.Logger

	mu       sync.Mutex
	sweeps   map[string]*sweepJob // by router job id
	order    []string
	inflight map[string]*sweepJob // by sweep fingerprint
	seq      int64
	counters Counters
}

// sweepJob is a router-owned aggregation job: one POST /v1/sweeps,
// fanned out as N point runs across the fleet.
type sweepJob struct {
	id          string
	spec        scenario.Spec
	axes        []scenario.SweepAxis
	fingerprint string
	trace       string

	state  service.JobState
	cached bool
	errMsg string
	result []byte
	cancel atomic.Bool
	// pointsDone counts grid points that have landed (incremented by the
	// concurrent point runners); pointsTotal is the grid size. Together
	// they drive the sweep's live-progress block.
	pointsDone  atomic.Int64
	pointsTotal int
	submitted   time.Time
	started     time.Time
	finished    time.Time
}

func (j *sweepJob) status() service.JobStatus {
	st := service.JobStatus{
		ID: j.id, Kind: "sweep", State: j.state,
		Scenario: j.spec.Name, Fingerprint: j.fingerprint, Trace: j.trace, Cached: j.cached,
		Error: j.errMsg, Submitted: j.submitted, Started: j.started, Finished: j.finished,
	}
	if !j.started.IsZero() {
		st.QueueWaitMs = durToMs(j.started.Sub(j.submitted))
		switch {
		case !j.finished.IsZero():
			st.RunMs = durToMs(j.finished.Sub(j.started))
		case j.state == service.JobRunning:
			st.RunMs = durToMs(time.Since(j.started))
		}
		// Point-granular progress, the same schema the worker reports for
		// its own sweep jobs.
		if j.pointsTotal > 0 {
			p := &service.Progress{
				PointsDone:  int(j.pointsDone.Load()),
				PointsTotal: j.pointsTotal,
				WallSeconds: time.Since(j.started).Seconds(),
			}
			if !j.finished.IsZero() {
				p.WallSeconds = j.finished.Sub(j.started).Seconds()
			}
			p.Fraction = float64(p.PointsDone) / float64(p.PointsTotal)
			if j.state == service.JobDone {
				p.Fraction = 1
			}
			st.Progress = p
		}
	}
	return st
}

// durToMs mirrors the worker's duration rendering (ms, µs precision).
func durToMs(d time.Duration) float64 {
	if d < 0 {
		d = 0
	}
	return float64(d/time.Microsecond) / 1000
}

// NewRouter builds a router over the worker fleet.
func NewRouter(cfg Config) (*Router, error) {
	ring, err := NewRing(cfg.Workers, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	if cfg.MaxSweepPoints <= 0 {
		cfg.MaxSweepPoints = 256
	}
	if cfg.SweepCacheBytes <= 0 {
		cfg.SweepCacheBytes = 64 << 20
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 5 * time.Millisecond
	}
	if cfg.PointTimeout <= 0 {
		cfg.PointTimeout = 10 * time.Minute
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	sweepCache, err := service.NewCache(cfg.SweepCacheBytes, "")
	if err != nil {
		return nil, err
	}
	rt := &Router{
		workers:    ring.Nodes(),
		ring:       ring,
		client:     client,
		limiter:    NewRateLimiter(cfg.RatePerClient, cfg.Burst),
		sweepCache: sweepCache,
		maxSweep:   cfg.MaxSweepPoints,
		pollEvery:  cfg.PollInterval,
		pointWait:  cfg.PointTimeout,
		started:    time.Now(),
		endpoints:  make(map[string]*metrics.Histogram, len(endpointPatterns)),
		logger:     cfg.Logger,
		sweeps:     make(map[string]*sweepJob),
		inflight:   make(map[string]*sweepJob),
	}
	for _, pat := range endpointPatterns {
		rt.endpoints[pat] = metrics.NewLatencyHistogram()
	}
	return rt, nil
}

// endpointPatterns mirrors the worker API surface: the router serves
// the same routes, so clients (curl, occamy-loadgen) are agnostic to
// whether they talk to one worker or the fleet.
var endpointPatterns = []string{
	"GET /v1/scenarios",
	"GET /v1/scenarios/{name}",
	"POST /v1/runs",
	"GET /v1/runs",
	"GET /v1/runs/{id}",
	"GET /v1/runs/{id}/trace.csv",
	"DELETE /v1/runs/{id}",
	"POST /v1/sweeps",
	"POST /v1/batch",
	"GET /v1/cache",
	"GET /v1/stats",
	"GET /metrics",
}

// Handler returns the router's HTTP API — the same surface as one
// occamy-served, fleet-wide. The middleware mirrors the worker's:
// per-endpoint latency recording, X-Occamy-Trace establishment and
// response echo, and a debug-level structured request record.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, fn http.HandlerFunc) {
		h := rt.endpoints[pattern]
		if h == nil {
			panic(fmt.Sprintf("fleet: route %q not in endpointPatterns", pattern))
		}
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			trace := service.EnsureTrace(r)
			w.Header().Set(service.TraceHeader, trace)
			sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
			fn(sw, r)
			d := time.Since(start)
			h.Record(d)
			rt.logger.Debug("http",
				"method", r.Method, "route", pattern, "status", sw.status,
				"trace", trace, "dur_ms", durToMs(d))
		})
	}
	handle("GET /v1/scenarios", rt.handleScenarios)
	handle("GET /v1/scenarios/{name}", rt.handleScenarioExport)
	handle("POST /v1/runs", rt.handleSubmit)
	handle("GET /v1/runs", rt.handleJobs)
	handle("GET /v1/runs/{id}", rt.handleJob)
	handle("GET /v1/runs/{id}/trace.csv", rt.handleTrace)
	handle("DELETE /v1/runs/{id}", rt.handleCancel)
	handle("POST /v1/sweeps", rt.handleSweep)
	handle("POST /v1/batch", rt.handleBatch)
	handle("GET /v1/cache", rt.handleCache)
	handle("GET /v1/stats", rt.handleStats)
	handle("GET /metrics", rt.handleMetrics)
	return mux
}

// statusWriter captures the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// Job-ID shard encoding
//
// The router issues run IDs of the form "w<shard>.<worker id>" (e.g.
// "w1.r42"): the shard index names the worker that owns the job, so
// status polls, trace fetches, and cancels route without any router
// state. Sweep jobs are router-owned aggregations and use "g<seq>".

func routerID(shard int, workerID string) string {
	return fmt.Sprintf("w%d.%s", shard, workerID)
}

// parseRunID splits a router run ID into its shard and worker-local id.
func (rt *Router) parseRunID(id string) (int, string, bool) {
	rest, ok := strings.CutPrefix(id, "w")
	if !ok {
		return 0, "", false
	}
	dot := strings.IndexByte(rest, '.')
	if dot <= 0 {
		return 0, "", false
	}
	shard, err := strconv.Atoi(rest[:dot])
	if err != nil || shard < 0 || shard >= len(rt.workers) {
		return 0, "", false
	}
	return shard, rest[dot+1:], true
}

// clientKey identifies the rate-limited principal: an explicit
// X-Client-ID header when present, else the remote host (sans port, so
// reconnects share one bucket).
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// admit charges n tokens to the request's client; on refusal it writes
// the 429 (with Retry-After rounded up to whole seconds) and returns
// false.
func (rt *Router) admit(w http.ResponseWriter, r *http.Request, n int) bool {
	ok, retryAfter := rt.limiter.AllowN(clientKey(r), n)
	if ok {
		return true
	}
	rt.mu.Lock()
	rt.counters.RateLimited++
	rt.mu.Unlock()
	secs := int(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	httpError(w, http.StatusTooManyRequests, "rate limit exceeded for client %q; retry in %ds", clientKey(r), secs)
	return false
}

// count bumps one router counter under the lock.
func (rt *Router) count(f func(*Counters)) {
	rt.mu.Lock()
	f(&rt.counters)
	rt.mu.Unlock()
}

// --- worker I/O -------------------------------------------------------

// workerResponse is one buffered worker reply.
type workerResponse struct {
	status int
	header http.Header
	body   []byte
}

// callWorker performs one request against a shard, buffering the body
// (bounded) and propagating the trace ID so the worker's logs and job
// ledger carry the router's request identity. Transport errors — the
// shard is down — come back as an error; HTTP-level failures are the
// caller's to interpret.
func (rt *Router) callWorker(shard int, method, path string, body []byte, trace string) (*workerResponse, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, rt.workers[shard]+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if trace != "" {
		req.Header.Set(service.TraceHeader, trace)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.count(func(c *Counters) { c.WorkerErrors++ })
		return nil, fmt.Errorf("worker %d (%s) unreachable: %v", shard, rt.workers[shard], err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		rt.count(func(c *Counters) { c.WorkerErrors++ })
		return nil, fmt.Errorf("worker %d (%s): reading response: %v", shard, rt.workers[shard], err)
	}
	return &workerResponse{status: resp.StatusCode, header: resp.Header, body: data}, nil
}

// relay copies a buffered worker response to the client verbatim,
// preserving the headers a backoff loop cares about.
func relay(w http.ResponseWriter, resp *workerResponse) {
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.status)
	_, _ = w.Write(resp.body)
}

// reqTrace reads the request's trace ID; the Handler middleware has
// already ensured it is present and well-formed.
func reqTrace(r *http.Request) string { return r.Header.Get(service.TraceHeader) }

// proxyAny forwards a fleet-agnostic read (catalog listing/export) to
// the first worker that answers.
func (rt *Router) proxyAny(w http.ResponseWriter, path, trace string) {
	var lastErr error
	for shard := range rt.workers {
		resp, err := rt.callWorker(shard, http.MethodGet, path, nil, trace)
		if err != nil {
			lastErr = err
			continue
		}
		relay(w, resp)
		return
	}
	httpError(w, http.StatusBadGateway, "no worker reachable: %v", lastErr)
}

func (rt *Router) handleScenarios(w http.ResponseWriter, r *http.Request) {
	rt.proxyAny(w, "/v1/scenarios", reqTrace(r))
}

func (rt *Router) handleScenarioExport(w http.ResponseWriter, r *http.Request) {
	path := "/v1/scenarios/" + r.PathValue("name")
	if scale := r.URL.Query().Get("scale"); scale != "" {
		path += "?scale=" + scale
	}
	rt.proxyAny(w, path, reqTrace(r))
}

// --- runs -------------------------------------------------------------

func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !rt.admit(w, r, 1) {
		return
	}
	spec, status, err := service.ReadSpec(r)
	if err != nil {
		httpError(w, status, "%v", err)
		return
	}
	fp, err := spec.Fingerprint()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	// The spec's home shard is a pure function of its fingerprint — the
	// very key the worker's cache uses — so equal and equivalent specs
	// always land where their result already lives.
	shard := rt.ring.Lookup(fp)
	body, err := spec.Marshal()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	resp, err := rt.callWorker(shard, http.MethodPost, "/v1/runs", body, reqTrace(r))
	if err != nil {
		httpError(w, http.StatusBadGateway, "%v", err)
		return
	}
	rt.count(func(c *Counters) { c.Routed++ })
	if resp.status != http.StatusAccepted {
		relay(w, resp)
		return
	}
	var st service.JobStatus
	if err := json.Unmarshal(resp.body, &st); err != nil {
		httpError(w, http.StatusBadGateway, "worker %d: undecodable job status: %v", shard, err)
		return
	}
	st.ID = routerID(shard, st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

// jobView mirrors the worker's GET /v1/runs/{id} response shape.
type jobView struct {
	service.JobStatus
	Result json.RawMessage `json:"result,omitempty"`
}

func (rt *Router) handleJobs(w http.ResponseWriter, r *http.Request) {
	var runs []service.JobStatus
	for shard := range rt.workers {
		resp, err := rt.callWorker(shard, http.MethodGet, "/v1/runs", nil, reqTrace(r))
		if err != nil || resp.status != http.StatusOK {
			continue // a dead shard degrades the listing, not the fleet
		}
		var page struct {
			Runs []service.JobStatus `json:"runs"`
		}
		if json.Unmarshal(resp.body, &page) != nil {
			continue
		}
		for _, st := range page.Runs {
			st.ID = routerID(shard, st.ID)
			runs = append(runs, st)
		}
	}
	rt.mu.Lock()
	for _, id := range rt.order {
		runs = append(runs, rt.sweeps[id].status())
	}
	rt.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"runs": runs})
}

func (rt *Router) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if j := rt.sweepByID(id); j != nil {
		rt.mu.Lock()
		view := jobView{JobStatus: j.status(), Result: j.result}
		rt.mu.Unlock()
		writeJSON(w, http.StatusOK, view)
		return
	}
	shard, wid, ok := rt.parseRunID(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no run %s", id)
		return
	}
	resp, err := rt.callWorker(shard, http.MethodGet, "/v1/runs/"+wid, nil, reqTrace(r))
	if err != nil {
		httpError(w, http.StatusBadGateway, "%v", err)
		return
	}
	rt.count(func(c *Counters) { c.Proxied++ })
	if resp.status != http.StatusOK {
		relay(w, resp)
		return
	}
	var view jobView
	if err := json.Unmarshal(resp.body, &view); err != nil {
		httpError(w, http.StatusBadGateway, "worker %d: undecodable job view: %v", shard, err)
		return
	}
	view.ID = routerID(shard, view.ID)
	writeJSON(w, http.StatusOK, view)
}

func (rt *Router) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if j := rt.sweepByID(id); j != nil {
		httpError(w, http.StatusNotFound, "fleet: job %s is a sweep, not a run", id)
		return
	}
	shard, wid, ok := rt.parseRunID(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no run %s", id)
		return
	}
	path := "/v1/runs/" + wid + "/trace.csv"
	if stride := r.URL.Query().Get("stride"); stride != "" {
		path += "?stride=" + stride
	}
	resp, err := rt.callWorker(shard, http.MethodGet, path, nil, reqTrace(r))
	if err != nil {
		httpError(w, http.StatusBadGateway, "%v", err)
		return
	}
	rt.count(func(c *Counters) { c.Proxied++ })
	relay(w, resp)
}

func (rt *Router) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if j := rt.sweepByID(id); j != nil {
		rt.mu.Lock()
		if !j.state.Terminal() {
			// The aggregator observes the flag between point polls and
			// finishes the job canceled; already-submitted points keep
			// running on their shards (their results stay cached — the
			// fleet loses nothing by letting them land).
			j.cancel.Store(true)
		}
		st := j.status()
		rt.mu.Unlock()
		writeJSON(w, http.StatusOK, st)
		return
	}
	shard, wid, ok := rt.parseRunID(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no run %s", id)
		return
	}
	resp, err := rt.callWorker(shard, http.MethodDelete, "/v1/runs/"+wid, nil, reqTrace(r))
	if err != nil {
		httpError(w, http.StatusBadGateway, "%v", err)
		return
	}
	rt.count(func(c *Counters) { c.Proxied++ })
	if resp.status != http.StatusOK {
		relay(w, resp)
		return
	}
	var st service.JobStatus
	if err := json.Unmarshal(resp.body, &st); err != nil {
		httpError(w, http.StatusBadGateway, "worker %d: undecodable job status: %v", shard, err)
		return
	}
	st.ID = routerID(shard, st.ID)
	writeJSON(w, http.StatusOK, st)
}

func (rt *Router) sweepByID(id string) *sweepJob {
	if !strings.HasPrefix(id, "g") {
		return nil
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.sweeps[id]
}
