package fleet

import (
	"encoding/json"
	"io"
	"net/http"

	"occamy/internal/scenario"
	"occamy/internal/service"
)

// batchRequest mirrors the worker's POST /v1/batch wire format.
type batchRequest struct {
	Specs []json.RawMessage `json:"specs"`
	Scale string            `json:"scale,omitempty"`
}

const maxBatchSpecs = 512

// handleBatch routes one multi-spec submission across the fleet: specs
// are parsed and fingerprinted router-side, grouped by home shard, and
// forwarded as one sub-batch per worker — so a 500-spec batch costs
// O(workers) upstream requests, not O(specs). The response items come
// back in request order with fleet-routable job IDs; a dead shard
// degrades to per-item 502s on its specs only.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil || len(body) > maxBodyBytes {
		httpError(w, http.StatusBadRequest, "bad batch body (max %d bytes)", maxBodyBytes)
		return
	}
	var req batchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "parsing batch request: %v", err)
		return
	}
	if len(req.Specs) == 0 {
		httpError(w, http.StatusBadRequest, "batch request has no specs")
		return
	}
	if len(req.Specs) > maxBatchSpecs {
		httpError(w, http.StatusBadRequest, "batch has %d specs (cap %d)", len(req.Specs), maxBatchSpecs)
		return
	}
	var scale scenario.Scale
	if req.Scale != "" {
		if scale, err = scenario.ParseScale(req.Scale); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	// A batch of n specs is n requests' worth of admission, charged
	// all-or-nothing up front.
	if !rt.admit(w, r, len(req.Specs)) {
		return
	}
	rt.count(func(c *Counters) { c.BatchSpecs += int64(len(req.Specs)) })

	items := make([]service.BatchItem, len(req.Specs))
	// perShard groups the indices of the specs homed on each worker; the
	// scale override is resolved *before* fingerprinting, because the
	// fingerprint (and so the home shard) is a function of the scaled
	// spec.
	perShard := make(map[int][]int)
	shardSpecs := make(map[int][]json.RawMessage)
	for i, raw := range req.Specs {
		spec, err := scenario.ParseSpec(raw)
		if err != nil {
			items[i] = service.BatchItem{Error: err.Error(), Code: http.StatusBadRequest}
			continue
		}
		if req.Scale != "" {
			spec.Scale = scale
		}
		fp, err := spec.Fingerprint()
		if err != nil {
			items[i] = service.BatchItem{Error: err.Error(), Code: http.StatusInternalServerError}
			continue
		}
		scaled, err := json.Marshal(spec)
		if err != nil {
			items[i] = service.BatchItem{Error: err.Error(), Code: http.StatusInternalServerError}
			continue
		}
		shard := rt.ring.Lookup(fp)
		perShard[shard] = append(perShard[shard], i)
		shardSpecs[shard] = append(shardSpecs[shard], scaled)
	}

	// Each shard's sub-batch carries a ".w<shard>" child of the request
	// trace; the worker then stamps ".N" per item (its own batch handler
	// derives children), so every job ID in the fleet is grep-reachable
	// from the one client submission.
	trace := reqTrace(r)
	for shard, idxs := range perShard {
		sub, err := json.Marshal(batchRequest{Specs: shardSpecs[shard]})
		if err != nil {
			fillShardError(items, idxs, err.Error(), http.StatusInternalServerError)
			continue
		}
		resp, err := rt.callWorker(shard, http.MethodPost, "/v1/batch", sub, service.ChildTrace(trace, "w", shard))
		if err != nil {
			fillShardError(items, idxs, err.Error(), http.StatusBadGateway)
			continue
		}
		var page struct {
			Runs []service.BatchItem `json:"runs"`
		}
		if resp.status != http.StatusAccepted || json.Unmarshal(resp.body, &page) != nil || len(page.Runs) != len(idxs) {
			fillShardError(items, idxs, "worker returned an unusable batch response", http.StatusBadGateway)
			continue
		}
		for k, item := range page.Runs {
			if item.Job != nil {
				item.Job.ID = routerID(shard, item.Job.ID)
			}
			items[idxs[k]] = item
		}
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"runs": items})
}

func fillShardError(items []service.BatchItem, idxs []int, msg string, code int) {
	for _, i := range idxs {
		items[i] = service.BatchItem{Error: msg, Code: code}
	}
}
