package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"occamy/internal/scenario"
	"occamy/internal/service"
)

// --- ring -------------------------------------------------------------

// TestRingPlacement pins the consistent-hash contract: deterministic,
// order-invariant, and reasonably balanced.
func TestRingPlacement(t *testing.T) {
	nodes := []string{"http://a", "http://b", "http://c", "http://d"}
	ring, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Reordering the node list must not move a single key: the ring
	// hashes names, not positions.
	shuffled, err := NewRing([]string{"http://c", "http://a", "http://d", "http://b"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("sha256:%064d", i)
		a := ring.Nodes()[ring.Lookup(key)]
		b := shuffled.Nodes()[shuffled.Lookup(key)]
		if a != b {
			t.Fatalf("key %q: %s vs %s after reordering nodes", key, a, b)
		}
		counts[a]++
	}
	for _, n := range nodes {
		if share := float64(counts[n]) / 10000; share < 0.10 || share > 0.45 {
			t.Fatalf("node %s owns %.1f%% of keys; want a roughly uniform spread: %v", n, 100*share, counts)
		}
	}

	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := NewRing([]string{"http://a", "http://a"}, 0); err == nil {
		t.Fatal("duplicate node accepted")
	}
}

// --- rate limiter -----------------------------------------------------

// TestRateLimiter pins the token-bucket arithmetic with an injected
// clock: burst, denial with a correct retry hint, refill, recovery, and
// per-key isolation.
func TestRateLimiter(t *testing.T) {
	now := time.Unix(1000, 0)
	l := NewRateLimiter(2, 2) // 2 tokens/s, burst 2
	l.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("alice"); !ok {
			t.Fatalf("request %d within burst denied", i)
		}
	}
	ok, retry := l.Allow("alice")
	if ok {
		t.Fatal("request past burst allowed")
	}
	if retry != 500*time.Millisecond {
		t.Fatalf("retryAfter = %v, want 500ms (1 token at 2/s)", retry)
	}
	// A different client has its own bucket.
	if ok, _ := l.Allow("bob"); !ok {
		t.Fatal("fresh client denied by another client's exhaustion")
	}
	// After the hinted wait, exactly one token is back.
	now = now.Add(retry)
	if ok, _ := l.Allow("alice"); !ok {
		t.Fatal("request denied after the hinted retry wait")
	}
	if ok, _ := l.Allow("alice"); ok {
		t.Fatal("second request allowed after a one-token refill")
	}

	// AllowN is all-or-nothing, and a charge above burst stays
	// satisfiable (clamped to burst).
	now = now.Add(time.Hour)
	if ok, _ := l.AllowN("alice", 50); !ok {
		t.Fatal("burst-clamped batch denied on a full bucket")
	}

	// rate <= 0 disables limiting entirely.
	open := NewRateLimiter(0, 0)
	for i := 0; i < 100; i++ {
		if ok, _ := open.Allow("x"); !ok {
			t.Fatal("disabled limiter denied")
		}
	}
}

// --- fleet e2e --------------------------------------------------------

// testFleet is an in-process fleet: n workers behind one router, all on
// httptest servers.
type testFleet struct {
	workers []*httptest.Server
	svcs    []*service.Service
	router  *httptest.Server
	rt      *Router
}

func startFleet(t *testing.T, n int, mod func(*Config)) *testFleet {
	t.Helper()
	f := &testFleet{}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		svc, err := service.New(service.Config{Workers: 2, CacheBytes: 16 << 20})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(svc.Handler())
		f.svcs = append(f.svcs, svc)
		f.workers = append(f.workers, ts)
		urls[i] = ts.URL
	}
	cfg := Config{Workers: urls, PollInterval: 2 * time.Millisecond, PointTimeout: 60 * time.Second}
	if mod != nil {
		mod(&cfg)
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.rt = rt
	f.router = httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		f.router.Close()
		for i := range f.workers {
			f.workers[i].Close()
			f.svcs[i].Close()
		}
	})
	return f
}

// post decodes a POST's JSON response into out and returns the status.
func post(t *testing.T, url, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding POST %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// await polls the router for a job until it is terminal.
func await(t *testing.T, base, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var view jobView
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if view.State.Terminal() {
			return view
		}
		time.Sleep(3 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish through the router", id)
	return jobView{}
}

func quickSpec(t *testing.T, name string) scenario.Spec {
	t.Helper()
	spec, err := service.CatalogSpec(name, "quick")
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestFleetCacheHitAcrossRequests pins the tentpole invariant: the
// router homes equal specs on one shard, so a resubmission is a
// fleet-wide cache hit no matter how many workers there are — and
// exactly one worker ever saw the spec.
func TestFleetCacheHitAcrossRequests(t *testing.T) {
	f := startFleet(t, 3, nil)
	body, err := quickSpec(t, "burst-absorb").Marshal()
	if err != nil {
		t.Fatal(err)
	}

	var first service.JobStatus
	if code := post(t, f.router.URL+"/v1/runs", string(body), &first); code != http.StatusAccepted {
		t.Fatalf("first POST: status %d", code)
	}
	if !strings.HasPrefix(first.ID, "w") {
		t.Fatalf("router job ID %q lacks the shard prefix", first.ID)
	}
	if view := await(t, f.router.URL, first.ID); view.State != service.JobDone {
		t.Fatalf("first run ended %s: %s", view.State, view.Error)
	}

	var second service.JobStatus
	if code := post(t, f.router.URL+"/v1/runs", string(body), &second); code != http.StatusAccepted {
		t.Fatalf("second POST: status %d", code)
	}
	if !second.Cached || second.State != service.JobDone {
		t.Fatalf("resubmission not a cache hit: cached=%v state=%s", second.Cached, second.State)
	}

	// Exactly one shard saw both submissions; the others saw nothing.
	sawLoad := 0
	for i, svc := range f.svcs {
		c := svc.Stats().Counters
		switch c.Submitted {
		case 0:
		case 2:
			sawLoad++
			if c.CacheHits != 1 {
				t.Fatalf("home shard %d: %d cache hits, want 1", i, c.CacheHits)
			}
		default:
			t.Fatalf("shard %d saw %d submissions; consistent hashing should give one shard both", i, c.Submitted)
		}
	}
	if sawLoad != 1 {
		t.Fatalf("%d shards saw the spec, want exactly 1", sawLoad)
	}

	// The merged fleet ledger reconciles: submitted = cache_hits +
	// coalesced + enqueued + refused, summed across workers.
	resp, err := http.Get(f.router.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	c := st.Counters
	if c.Submitted != 2 || c.CacheHits+c.Coalesced+c.Enqueued+c.Refused != c.Submitted {
		t.Fatalf("fleet ledger does not reconcile: %+v", c)
	}
	if st.Router.Counters.Routed != 2 {
		t.Fatalf("router routed %d, want 2", st.Router.Counters.Routed)
	}
	if len(st.Fleet) != 3 {
		t.Fatalf("fleet stats carries %d workers, want 3", len(st.Fleet))
	}
}

// TestFleetSweepByteIdentity pins the aggregation contract: a sweep
// fanned across the fleet produces the byte-identical table a single
// worker computes for the same grid.
func TestFleetSweepByteIdentity(t *testing.T) {
	// Single-node reference: one service runs the whole grid itself.
	single, err := service.New(service.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	spec := quickSpec(t, "burst-absorb")
	axes := []scenario.SweepAxis{{Path: "policy.kind", Values: []string{"dt", "occamy"}}}
	st, err := single.SubmitSweep(spec, axes)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		cur, ok := single.Get(st.ID)
		if !ok {
			t.Fatalf("sweep %s vanished", st.ID)
		}
		if cur.State.Terminal() {
			if cur.State != service.JobDone {
				t.Fatalf("single-node sweep ended %s: %s", cur.State, cur.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("single-node sweep did not finish")
		}
		time.Sleep(3 * time.Millisecond)
	}
	want, ok := single.Result(st.ID)
	if !ok {
		t.Fatal("single-node sweep has no result")
	}

	// Fleet: the same grid through the router over two workers.
	f := startFleet(t, 2, nil)
	sweepBody := `{"name":"burst-absorb","scale":"quick","axes":["policy.kind=dt,occamy"]}`
	var fst service.JobStatus
	if code := post(t, f.router.URL+"/v1/sweeps", sweepBody, &fst); code != http.StatusAccepted {
		t.Fatalf("fleet sweep POST: status %d", code)
	}
	if !strings.HasPrefix(fst.ID, "g") || fst.Kind != "sweep" {
		t.Fatalf("router sweep job %q kind %q, want g-prefixed sweep", fst.ID, fst.Kind)
	}
	view := await(t, f.router.URL, fst.ID)
	if view.State != service.JobDone {
		t.Fatalf("fleet sweep ended %s: %s", view.State, view.Error)
	}
	got := string(view.Result)
	if a, b := strings.TrimRight(got, "\n"), strings.TrimRight(string(want), "\n"); a != b {
		t.Errorf("fleet sweep table differs from single-node bytes:\nfleet:  %s\nsingle: %s", a, b)
	}

	// Resubmitting the same grid hits the router's sweep cache.
	var again service.JobStatus
	if code := post(t, f.router.URL+"/v1/sweeps", sweepBody, &again); code != http.StatusAccepted {
		t.Fatalf("sweep resubmit: status %d", code)
	}
	if !again.Cached || again.State != service.JobDone {
		t.Fatalf("sweep resubmission not a cache hit: cached=%v state=%s", again.Cached, again.State)
	}
	if cached := await(t, f.router.URL, again.ID); strings.TrimRight(string(cached.Result), "\n") != strings.TrimRight(got, "\n") {
		t.Error("cached sweep result differs from the computed one")
	}
}

// TestFleetDeadWorkerDegrades pins the failure contract: killing one
// worker turns only its shard's submissions into errors; the remaining
// shards keep serving, and the merged stats report the dead worker.
func TestFleetDeadWorkerDegrades(t *testing.T) {
	f := startFleet(t, 2, nil)

	// Find specs homed on each shard by perturbing the seed.
	base := quickSpec(t, "quickstart")
	ring, err := NewRing([]string{f.workers[0].URL, f.workers[1].URL}, 0)
	if err != nil {
		t.Fatal(err)
	}
	homed := map[int]scenario.Spec{}
	for seed := uint64(1); len(homed) < 2 && seed < 100; seed++ {
		sp := base
		sp.Seed = seed
		fp, err := sp.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		shard := ring.Lookup(fp)
		if _, ok := homed[shard]; !ok {
			homed[shard] = sp
		}
	}
	if len(homed) < 2 {
		t.Fatal("could not find specs homed on both shards")
	}

	f.workers[1].Close() // kill shard 1; its service keeps running but is unreachable

	bodyFor := func(sp scenario.Spec) string {
		b, err := sp.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	var st service.JobStatus
	if code := post(t, f.router.URL+"/v1/runs", bodyFor(homed[0]), &st); code != http.StatusAccepted {
		t.Fatalf("live-shard submission: status %d", code)
	}
	if view := await(t, f.router.URL, st.ID); view.State != service.JobDone {
		t.Fatalf("live-shard run ended %s: %s", view.State, view.Error)
	}
	var errBody map[string]string
	if code := post(t, f.router.URL+"/v1/runs", bodyFor(homed[1]), &errBody); code != http.StatusBadGateway {
		t.Fatalf("dead-shard submission: status %d, want 502", code)
	}
	if errBody["error"] == "" {
		t.Fatal("dead-shard 502 carries no error body")
	}

	// The merged stats still serve, flagging the dead worker.
	resp, err := http.Get(f.router.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Fleet[1].Error == "" || stats.Fleet[1].Stats != nil {
		t.Fatalf("dead worker not flagged in fleet stats: %+v", stats.Fleet[1])
	}
	if stats.Fleet[0].Error != "" || stats.Fleet[0].Stats == nil {
		t.Fatalf("live worker missing from fleet stats: %+v", stats.Fleet[0])
	}
	if stats.Router.Counters.WorkerErrors == 0 {
		t.Fatal("router counted no worker errors after a dead-shard submission")
	}
}

// TestFleetRateLimit429 pins the admission contract: a client hammering
// past its bucket draws 429 + Retry-After, and recovers after backing
// off for the hinted wait.
func TestFleetRateLimit429(t *testing.T) {
	f := startFleet(t, 1, func(cfg *Config) {
		cfg.RatePerClient = 20
		cfg.Burst = 2
	})
	submit := func() *http.Response {
		req, err := http.NewRequest(http.MethodPost, f.router.URL+"/v1/runs?name=quickstart&scale=quick", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Client-ID", "hammer")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	limited := 0
	var retryAfter string
	for i := 0; i < 10; i++ {
		resp := submit()
		if resp.StatusCode == http.StatusTooManyRequests {
			limited++
			retryAfter = resp.Header.Get("Retry-After")
		} else if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if limited == 0 {
		t.Fatal("10 rapid submissions with burst 2 drew no 429")
	}
	if retryAfter == "" {
		t.Fatal("429 carried no Retry-After header")
	}

	// Back off long enough for several tokens and the client recovers.
	time.Sleep(300 * time.Millisecond)
	resp := submit()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-backoff submission: status %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()

	// Other clients were never limited (per-client buckets).
	var st service.JobStatus
	if code := post(t, f.router.URL+"/v1/runs?name=quickstart&scale=quick", "", &st); code != http.StatusAccepted {
		t.Fatalf("unlimited client: status %d", code)
	}
}

// TestFleetBatch pins POST /v1/batch through the router: one POST,
// many shard-routed job IDs, per-item errors, request order preserved.
func TestFleetBatch(t *testing.T) {
	f := startFleet(t, 2, nil)

	sp1 := quickSpec(t, "quickstart")
	sp2 := quickSpec(t, "burst-absorb")
	b1, _ := json.Marshal(sp1)
	b2, _ := json.Marshal(sp2)
	body := fmt.Sprintf(`{"specs":[%s,%s,{"name":"nonsense","bogus":1},%s]}`, b1, b2, b1)

	var page struct {
		Runs []service.BatchItem `json:"runs"`
	}
	if code := post(t, f.router.URL+"/v1/batch", body, &page); code != http.StatusAccepted {
		t.Fatalf("batch POST: status %d", code)
	}
	if len(page.Runs) != 4 {
		t.Fatalf("batch returned %d items, want 4", len(page.Runs))
	}
	if page.Runs[2].Job != nil || page.Runs[2].Code != http.StatusBadRequest {
		t.Fatalf("malformed spec item: %+v, want a 400", page.Runs[2])
	}
	for _, i := range []int{0, 1, 3} {
		item := page.Runs[i]
		if item.Job == nil {
			t.Fatalf("item %d errored: %s", i, item.Error)
		}
		if !strings.HasPrefix(item.Job.ID, "w") {
			t.Fatalf("item %d job ID %q lacks the shard prefix", i, item.Job.ID)
		}
		if view := await(t, f.router.URL, item.Job.ID); view.State != service.JobDone {
			t.Fatalf("item %d ended %s: %s", i, view.State, view.Error)
		}
	}
	// Items 0 and 3 are the same spec: same home shard, coalesced or
	// cache-hit there — never simulated twice.
	var hits, coalesced int64
	for _, svc := range f.svcs {
		c := svc.Stats().Counters
		hits += c.CacheHits
		coalesced += c.Coalesced
	}
	if hits+coalesced == 0 {
		t.Fatal("duplicate batch specs neither coalesced nor hit the cache")
	}

	// A run submitted via batch serves its trace through the router.
	resp, err := http.Get(f.router.URL + "/v1/runs/" + page.Runs[0].Job.ID + "/trace.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/csv") {
		t.Fatalf("trace through router: status %d type %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "time_s") {
		t.Fatalf("trace CSV header missing: %q", buf.String()[:min(40, buf.Len())])
	}
}

// TestFleetJobListMerges pins GET /v1/runs across the fleet: worker
// jobs appear with shard-routable IDs next to router-owned sweeps.
func TestFleetJobListMerges(t *testing.T) {
	f := startFleet(t, 2, nil)
	var st service.JobStatus
	if code := post(t, f.router.URL+"/v1/runs?name=quickstart&scale=quick", "", &st); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	await(t, f.router.URL, st.ID)
	var sw service.JobStatus
	if code := post(t, f.router.URL+"/v1/sweeps",
		`{"name":"quickstart","scale":"quick","axes":["policy.kind=dt,occamy"]}`, &sw); code != http.StatusAccepted {
		t.Fatalf("sweep: status %d", code)
	}
	await(t, f.router.URL, sw.ID)

	resp, err := http.Get(f.router.URL + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	var page struct {
		Runs []service.JobStatus `json:"runs"`
	}
	err = json.NewDecoder(resp.Body).Decode(&page)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for _, j := range page.Runs {
		ids[j.ID] = true
	}
	if !ids[st.ID] || !ids[sw.ID] {
		t.Fatalf("fleet job list %v missing %s or %s", ids, st.ID, sw.ID)
	}
}
