package fleet

import (
	"net/http"
	"time"

	"occamy/internal/metrics"
)

// GET /metrics — Prometheus text exposition (router tier)
//
// The router's own observable state: its endpoint latency histograms
// and routing ledger, in the same exposition conventions as the worker
// page (internal/service/metrics.go), with the router-specific counters
// under an occamy_router_ prefix. Fleet-wide sums are deliberately NOT
// rendered here — a scraper should pull each worker's /metrics directly
// (the per-instance series are what aggregation rules want), while
// GET /v1/stats remains the human-facing merged JSON view.

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var p metrics.Prom

	reqs := make([]metrics.PromSample, 0, len(endpointPatterns))
	subs := make([]metrics.HistogramSub, 0, len(endpointPatterns))
	for _, pat := range endpointPatterns {
		h := rt.endpoints[pat]
		lbl := []metrics.Label{{Name: "endpoint", Value: pat}}
		reqs = append(reqs, metrics.PromSample{Labels: lbl, Value: float64(h.Count())})
		subs = append(subs, metrics.HistogramSub{Labels: lbl, H: h})
	}
	p.Counter("occamy_requests_total", "HTTP requests served, by route pattern.", reqs...)
	p.HistogramFamily("occamy_request_duration_seconds", "HTTP handler latency, by route pattern.", subs...)

	rt.mu.Lock()
	c := rt.counters
	sweepJobs := len(rt.sweeps)
	sweepCache := rt.sweepCache.Stats()
	rt.mu.Unlock()

	p.Counter("occamy_router_ops_total", "Router operations, by kind.",
		metrics.PromSample{Labels: []metrics.Label{{Name: "op", Value: "routed"}}, Value: float64(c.Routed)},
		metrics.PromSample{Labels: []metrics.Label{{Name: "op", Value: "proxied"}}, Value: float64(c.Proxied)},
		metrics.PromSample{Labels: []metrics.Label{{Name: "op", Value: "sweeps"}}, Value: float64(c.Sweeps)},
		metrics.PromSample{Labels: []metrics.Label{{Name: "op", Value: "sweep_cache_hits"}}, Value: float64(c.SweepCacheHits)},
		metrics.PromSample{Labels: []metrics.Label{{Name: "op", Value: "sweep_points"}}, Value: float64(c.SweepPoints)},
		metrics.PromSample{Labels: []metrics.Label{{Name: "op", Value: "batch_specs"}}, Value: float64(c.BatchSpecs)},
		metrics.PromSample{Labels: []metrics.Label{{Name: "op", Value: "rate_limited"}}, Value: float64(c.RateLimited)},
		metrics.PromSample{Labels: []metrics.Label{{Name: "op", Value: "worker_errors"}}, Value: float64(c.WorkerErrors)})

	p.Gauge("occamy_router_workers", "Workers on the consistent-hash ring.",
		metrics.PromSample{Value: float64(len(rt.workers))})
	p.Gauge("occamy_router_sweep_jobs", "Router-owned sweep jobs in the ledger.",
		metrics.PromSample{Value: float64(sweepJobs)})
	p.Gauge("occamy_uptime_seconds", "Seconds since the router started.",
		metrics.PromSample{Value: time.Since(rt.started).Seconds()})

	p.Gauge("occamy_router_sweep_cache_entries", "Aggregated-sweep cache entries resident.",
		metrics.PromSample{Value: float64(sweepCache.Entries)})
	p.Gauge("occamy_router_sweep_cache_bytes", "Aggregated-sweep cache bytes resident.",
		metrics.PromSample{Value: float64(sweepCache.Bytes)})
	p.Counter("occamy_router_sweep_cache_hits_total", "Aggregated-sweep cache hits.",
		metrics.PromSample{Value: float64(sweepCache.Hits)})
	p.Counter("occamy_router_sweep_cache_misses_total", "Aggregated-sweep cache misses.",
		metrics.PromSample{Value: float64(sweepCache.Misses)})

	w.Header().Set("Content-Type", metrics.PromContentType)
	_, _ = p.WriteTo(w)
}
