package fleet

import (
	"math"
	"sync"
	"time"
)

// RateLimiter is the router's per-client admission control: a classic
// token bucket per client key (X-Client-ID header when present, else
// the remote host), refilled continuously at Rate tokens/second up to
// Burst. A denied request gets the time until its next token, which the
// HTTP layer rounds up into a Retry-After header — so one greedy client
// backs off instead of starving the fleet's queues for everyone.
type RateLimiter struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
	// maxClients bounds the bucket map; past it, stale (fully refilled)
	// buckets are dropped — a full bucket is indistinguishable from a
	// brand-new one, so eviction never grants extra tokens.
	maxClients int
	now        func() time.Time // injectable for tests
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimiter builds a limiter granting rate requests/second with
// the given burst (<= 0 selects a burst of max(1, rate)). A rate <= 0
// disables limiting: Allow always grants.
func NewRateLimiter(rate, burst float64) *RateLimiter {
	if burst <= 0 {
		burst = math.Max(1, rate)
	}
	return &RateLimiter{
		rate:       rate,
		burst:      burst,
		buckets:    make(map[string]*bucket),
		maxClients: 16384,
		now:        time.Now,
	}
}

// Allow charges one token to the client key. When denied, retryAfter is
// the wait until the bucket holds a full token again.
func (l *RateLimiter) Allow(key string) (ok bool, retryAfter time.Duration) {
	return l.AllowN(key, 1)
}

// AllowN charges n tokens at once (a batch of n specs is n requests'
// worth of admission). The charge is all-or-nothing.
func (l *RateLimiter) AllowN(key string, n int) (ok bool, retryAfter time.Duration) {
	if l == nil || l.rate <= 0 {
		return true, 0
	}
	need := math.Min(float64(n), l.burst) // a burst-sized charge must stay satisfiable
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.buckets[key]
	if b == nil {
		if len(l.buckets) >= l.maxClients {
			l.evictLocked(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		b.last = now
	}
	if b.tokens >= need {
		b.tokens -= need
		return true, 0
	}
	return false, time.Duration((need - b.tokens) / l.rate * float64(time.Second))
}

// evictLocked drops buckets that have fully refilled (idle clients);
// the caller holds l.mu.
func (l *RateLimiter) evictLocked(now time.Time) {
	for k, b := range l.buckets {
		if math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate) >= l.burst {
			delete(l.buckets, k)
		}
	}
}
