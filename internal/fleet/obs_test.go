package fleet

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"occamy/internal/metrics"
	"occamy/internal/service"
)

// postTraced POSTs body with an X-Occamy-Trace header and decodes the
// response, returning the echoed trace header.
func postTraced(t *testing.T, url, trace, body string, out any) (echo string, status int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(service.TraceHeader, trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding POST %s response: %v", url, err)
		}
	}
	return resp.Header.Get(service.TraceHeader), resp.StatusCode
}

// TestFleetTracePropagation pins the cross-tier trace contract: a trace
// supplied to the router is echoed on the router's response, forwarded
// to the home worker, stamped on the worker's job, and visible in the
// terminal status polled back through the router. Sweep fan-out points
// carry ".N" children of the sweep root on their worker-side jobs. Run
// with -race: traces flow through the router's concurrent fan-out.
func TestFleetTracePropagation(t *testing.T) {
	f := startFleet(t, 2, nil)
	body, err := quickSpec(t, "burst-absorb").Marshal()
	if err != nil {
		t.Fatal(err)
	}

	var st service.JobStatus
	echo, code := postTraced(t, f.router.URL+"/v1/runs", "fleet-root", string(body), &st)
	if code != http.StatusAccepted {
		t.Fatalf("submit through router: %d", code)
	}
	if echo != "fleet-root" {
		t.Fatalf("router echoed trace %q, want the client's", echo)
	}
	if st.Trace != "fleet-root" {
		t.Fatalf("worker job trace = %q, want the client's (router must forward the header)", st.Trace)
	}
	if view := await(t, f.router.URL, st.ID); view.Trace != "fleet-root" {
		t.Fatalf("terminal status trace = %q through the router", view.Trace)
	}

	// Sweep: the router expands the grid and each point's worker-side
	// job must carry a ".N" child of the sweep root.
	var sweepSt service.JobStatus
	sweepBody := `{"name":"burst-absorb","scale":"quick","axes":["policy.kind=dt,occamy"]}`
	echo, code = postTraced(t, f.router.URL+"/v1/sweeps", "sweep-root", sweepBody, &sweepSt)
	if code != http.StatusAccepted {
		t.Fatalf("sweep submit: %d", code)
	}
	if echo != "sweep-root" || sweepSt.Trace != "sweep-root" {
		t.Fatalf("sweep trace echo %q / status %q, want sweep-root", echo, sweepSt.Trace)
	}
	if view := await(t, f.router.URL, sweepSt.ID); view.State != service.JobDone {
		t.Fatalf("sweep ended %s: %s", view.State, view.Error)
	}
	var children int
	for _, w := range f.workers {
		resp, err := http.Get(w.URL + "/v1/runs")
		if err != nil {
			t.Fatal(err)
		}
		var page struct {
			Runs []service.JobStatus `json:"runs"`
		}
		err = json.NewDecoder(resp.Body).Decode(&page)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range page.Runs {
			if strings.HasPrefix(r.Trace, "sweep-root.") {
				children++
			}
		}
	}
	if children != 2 {
		t.Fatalf("found %d worker jobs with sweep-root.* traces, want 2 (one per grid point)", children)
	}
}

// TestFleetMetricsExposed verifies both tiers serve a parseable
// /metrics page with nonzero request counters after traffic.
func TestFleetMetricsExposed(t *testing.T) {
	f := startFleet(t, 2, nil)
	body, err := quickSpec(t, "quickstart").Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var st service.JobStatus
	if _, code := postTraced(t, f.router.URL+"/v1/runs", "m", string(body), &st); code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	await(t, f.router.URL, st.ID)

	for _, base := range []string{f.router.URL, f.workers[0].URL, f.workers[1].URL} {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		page, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s/metrics: %d", base, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != metrics.PromContentType {
			t.Fatalf("%s/metrics content type %q", base, ct)
		}
		if !strings.Contains(string(page), "occamy_requests_total{") {
			t.Fatalf("%s/metrics has no occamy_requests_total series:\n%s", base, page)
		}
	}

	// The router must have counted the submit on its own ledger.
	resp, err := http.Get(f.router.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var sawSubmit bool
	for _, line := range strings.Split(string(page), "\n") {
		if strings.HasPrefix(line, `occamy_requests_total{endpoint="POST /v1/runs"}`) &&
			!strings.HasSuffix(line, " 0") {
			sawSubmit = true
		}
	}
	if !sawSubmit {
		t.Fatalf("router occamy_requests_total for POST /v1/runs is zero or missing:\n%s", page)
	}
}
