// Package fleet shards the scenario service horizontally: a
// consistent-hash router (cmd/occamy-router) in front of N occamy-served
// workers routes every submission by scenario.Spec.Fingerprint(), so an
// identical or equivalent spec always lands on the same worker — the
// content-addressed result cache becomes a fleet-wide sharded tier for
// free, and repeat submissions stay O(1) hits regardless of fleet size.
// Sweeps are expanded router-side and fanned point-by-point to each
// point's home shard, then re-assembled into the byte-identical table a
// single process would have produced; batches fan out the same way. A
// per-client token bucket at the router keeps one client from starving
// the whole fleet.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultReplicas is the virtual-node count per worker. 128 vnodes keep
// the load spread within a few percent of uniform for small fleets
// while the ring stays tiny (N*128 sorted uint64s).
const DefaultReplicas = 128

// Ring is a consistent-hash ring over a fixed set of named nodes
// (worker base URLs). Each node owns Replicas virtual points on the
// ring, hashed from its *name* — not its slice position — so the
// key→node mapping is invariant under reordering the node list, and
// removing a node remaps only the keys that node owned. Lookup walks
// clockwise from the key's hash to the next virtual point.
//
// The ring is immutable after construction and safe for concurrent
// Lookup. The router and the load generator's -route=hash mode build
// rings from the same target list, so both agree on every key's home
// shard.
type Ring struct {
	nodes  []string
	hashes []uint64 // sorted virtual points
	owners []int    // owners[i] = index into nodes for hashes[i]
}

// NewRing builds a ring over the node names with the given virtual-node
// count (<= 0 selects DefaultReplicas). Names must be unique: two nodes
// with the same name would own identical virtual points.
func NewRing(nodes []string, replicas int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("fleet: ring needs at least one node")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{
		nodes:  append([]string(nil), nodes...),
		hashes: make([]uint64, 0, len(nodes)*replicas),
		owners: make([]int, 0, len(nodes)*replicas),
	}
	type vnode struct {
		hash  uint64
		owner int
	}
	vnodes := make([]vnode, 0, len(nodes)*replicas)
	for i, name := range nodes {
		if seen[name] {
			return nil, fmt.Errorf("fleet: duplicate node %q in ring", name)
		}
		seen[name] = true
		for rep := 0; rep < replicas; rep++ {
			vnodes = append(vnodes, vnode{hash: hash64(fmt.Sprintf("%s#%d", name, rep)), owner: i})
		}
	}
	// Ties (hash collisions between different nodes' vnodes) resolve to
	// the lexically smaller node name so the ordering is deterministic
	// regardless of input order.
	sort.Slice(vnodes, func(a, b int) bool {
		if vnodes[a].hash != vnodes[b].hash {
			return vnodes[a].hash < vnodes[b].hash
		}
		return r.nodes[vnodes[a].owner] < r.nodes[vnodes[b].owner]
	})
	for _, v := range vnodes {
		r.hashes = append(r.hashes, v.hash)
		r.owners = append(r.owners, v.owner)
	}
	return r, nil
}

// Nodes returns the node names in construction order (Lookup indexes
// into this slice).
func (r *Ring) Nodes() []string { return r.nodes }

// Lookup returns the index of the node owning the key: the first
// virtual point at or clockwise of the key's hash, wrapping at the top
// of the ring.
func (r *Ring) Lookup(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return r.owners[i]
}

// hash64 is FNV-1a over the string — fast, dependency-free, and stable
// across processes (the router and loadgen must agree byte-for-byte).
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}
