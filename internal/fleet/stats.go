package fleet

import (
	"encoding/json"
	"net/http"
	"time"

	"occamy/internal/metrics"
	"occamy/internal/service"
)

// WorkerStats is one worker's contribution to the merged fleet view:
// its stats document, or the error that kept it out of the merge.
type WorkerStats struct {
	URL   string         `json:"url"`
	Stats *service.Stats `json:"stats,omitempty"`
	Error string         `json:"error,omitempty"`
}

// RouterStats is the router's own ledger within GET /v1/stats.
type RouterStats struct {
	UptimeSeconds float64            `json:"uptime_seconds"`
	Workers       int                `json:"workers"`
	Counters      Counters           `json:"counters"`
	SweepJobs     int                `json:"sweep_jobs"`
	SweepCache    service.CacheStats `json:"sweep_cache"`
}

// Stats is the router's GET /v1/stats document. The embedded
// service.Stats carries the fleet-wide sums — counters, queues, cache —
// in the exact shape one worker reports, so dashboards and the load
// generator's lenient decoder read the router like a (bigger) worker:
// the submission-ledger identities (submitted = cache_hits + coalesced
// + enqueued + refused, etc.) reconcile fleet-wide because each is a
// sum of per-worker identities. Endpoints holds the *router's* handler
// latencies; the per-worker documents ride along under "fleet".
type Stats struct {
	service.Stats
	Router RouterStats   `json:"router"`
	Fleet  []WorkerStats `json:"fleet"`
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	var st Stats

	fleet := make([]WorkerStats, len(rt.workers))
	var workers, weightedUtil float64
	for shard, url := range rt.workers {
		fleet[shard].URL = url
		resp, err := rt.callWorker(shard, http.MethodGet, "/v1/stats", nil, reqTrace(r))
		if err != nil {
			fleet[shard].Error = err.Error()
			continue
		}
		var ws service.Stats
		if err := json.Unmarshal(resp.body, &ws); err != nil {
			fleet[shard].Error = "undecodable stats: " + err.Error()
			continue
		}
		fleet[shard].Stats = &ws

		st.Workers += ws.Workers
		st.QueueLen += ws.QueueLen
		st.QueueCap += ws.QueueCap
		st.Queued += ws.Queued
		st.Running += ws.Running
		addCounters(&st.Counters, ws.Counters)
		addCache(&st.Cache, ws.Cache)
		workers += float64(ws.Workers)
		weightedUtil += ws.Utilization * float64(ws.Workers)
	}
	if workers > 0 {
		st.Utilization = weightedUtil / workers
	}
	st.UptimeSeconds = time.Since(rt.started).Seconds()
	st.Endpoints = make(map[string]metrics.HistSnapshot, len(rt.endpoints))
	for pat, h := range rt.endpoints {
		if h.Count() > 0 {
			st.Endpoints[pat] = h.Snapshot()
		}
	}

	rt.mu.Lock()
	st.Router = RouterStats{
		UptimeSeconds: st.UptimeSeconds,
		Workers:       len(rt.workers),
		Counters:      rt.counters,
		SweepJobs:     len(rt.sweeps),
		SweepCache:    rt.sweepCache.Stats(),
	}
	rt.mu.Unlock()
	st.Fleet = fleet
	writeJSON(w, http.StatusOK, st)
}

func addCounters(dst *service.Counters, src service.Counters) {
	dst.Submitted += src.Submitted
	dst.CacheHits += src.CacheHits
	dst.Coalesced += src.Coalesced
	dst.Enqueued += src.Enqueued
	dst.Refused += src.Refused
	dst.Done += src.Done
	dst.Failed += src.Failed
	dst.Canceled += src.Canceled
}

func addCache(dst *service.CacheStats, src service.CacheStats) {
	dst.Entries += src.Entries
	dst.Bytes += src.Bytes
	dst.Budget += src.Budget
	dst.Hits += src.Hits
	dst.Misses += src.Misses
	dst.Evicted += src.Evicted
	dst.Restored += src.Restored
}

// fleetCache is the router's GET /v1/cache document: the summed
// fleet-wide result cache, the per-worker breakdowns, and the router's
// own aggregated-sweep cache.
type fleetCache struct {
	Fleet      service.CacheStats `json:"fleet"`
	Workers    []workerCache      `json:"workers"`
	SweepCache service.CacheStats `json:"sweep_cache"`
}

type workerCache struct {
	URL   string              `json:"url"`
	Cache *service.CacheStats `json:"cache,omitempty"`
	Error string              `json:"error,omitempty"`
}

func (rt *Router) handleCache(w http.ResponseWriter, r *http.Request) {
	out := fleetCache{Workers: make([]workerCache, len(rt.workers))}
	for shard, url := range rt.workers {
		out.Workers[shard].URL = url
		resp, err := rt.callWorker(shard, http.MethodGet, "/v1/cache", nil, reqTrace(r))
		if err != nil {
			out.Workers[shard].Error = err.Error()
			continue
		}
		var cs service.CacheStats
		if err := json.Unmarshal(resp.body, &cs); err != nil {
			out.Workers[shard].Error = "undecodable cache stats: " + err.Error()
			continue
		}
		out.Workers[shard].Cache = &cs
		addCache(&out.Fleet, cs)
	}
	out.SweepCache = rt.sweepCache.Stats()
	writeJSON(w, http.StatusOK, out)
}
