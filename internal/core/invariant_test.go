package core_test

// Preemptive-policy guarantees, driven through scripted traffic managers:
//
//   - Occamy's expulsion engine only ever head-drops queues that are
//     strictly over their threshold ("never evict below the guarantee"),
//     and it converges: once no queue is over-allocated it goes idle.
//   - Pushout frees exactly enough: it stops evicting as soon as the
//     arriving packet fits, never over-evicts past one packet, and never
//     drops from an empty buffer.
//   - POT refuses to evict when the arriving packet's queue is already
//     at or above its pushout threshold.
//   - QPO frees enough or reports failure, never looping on empty queues.

import (
	"sort"
	"testing"

	"occamy/internal/bm"
	"occamy/internal/core"
	"occamy/internal/sim"
)

// mockTM is a scripted traffic manager and bm.State: per-queue packet
// size lists, fixed thresholds, and a manually pumped event queue.
type mockTM struct {
	t          *testing.T
	cap        int
	queues     [][]int // per-queue packet sizes, head first
	thresholds []int
	cellSize   int

	now    sim.Time
	events []mockEvent

	drops []mockDrop
}

type mockEvent struct {
	at sim.Time
	fn func()
}

type mockDrop struct {
	queue     int
	lenBefore int
	threshold int
}

func newMockTM(t *testing.T, cap int, queues [][]int, thresholds []int) *mockTM {
	return &mockTM{t: t, cap: cap, queues: queues, thresholds: thresholds, cellSize: 200}
}

func (m *mockTM) NumQueues() int { return len(m.queues) }
func (m *mockTM) QueueLen(q int) int {
	total := 0
	for _, s := range m.queues[q] {
		total += s
	}
	return total
}
func (m *mockTM) Threshold(q int) int {
	if m.thresholds == nil {
		return m.cap
	}
	return m.thresholds[q]
}
func (m *mockTM) HeadPacketCells(q int) int {
	if len(m.queues[q]) == 0 {
		return 0
	}
	return (m.queues[q][0] + m.cellSize - 1) / m.cellSize
}
func (m *mockTM) HeadDrop(q int) (int, int, bool) {
	if len(m.queues[q]) == 0 {
		return 0, 0, false
	}
	m.drops = append(m.drops, mockDrop{queue: q, lenBefore: m.QueueLen(q), threshold: m.Threshold(q)})
	size := m.queues[q][0]
	m.queues[q] = m.queues[q][1:]
	return size, (size + m.cellSize - 1) / m.cellSize, true
}
func (m *mockTM) Now() sim.Time { return m.now }
func (m *mockTM) After(d sim.Duration, fn func()) {
	m.events = append(m.events, mockEvent{at: m.now + sim.Time(d), fn: fn})
}

// pump executes scheduled events in time order until quiescence.
func (m *mockTM) pump(maxEvents int) int {
	executed := 0
	for len(m.events) > 0 {
		sort.SliceStable(m.events, func(i, j int) bool { return m.events[i].at < m.events[j].at })
		ev := m.events[0]
		m.events = m.events[1:]
		if ev.at > m.now {
			m.now = ev.at
		}
		ev.fn()
		executed++
		if executed > maxEvents {
			m.t.Fatalf("expulsion engine did not converge within %d events", maxEvents)
		}
	}
	return executed
}

// bm.State for the Pushout-family tests.
func (m *mockTM) Capacity() int { return m.cap }
func (m *mockTM) Occupancy() int {
	total := 0
	for q := range m.queues {
		total += m.QueueLen(q)
	}
	return total
}
func (m *mockTM) QueuePriority(q int) int   { return 0 }
func (m *mockTM) DequeueRate(q int) float64 { return 1 }

func packets(n, size int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = size
	}
	return out
}

// TestOccamyEngineNeverExpelsBelowThreshold scripts a switch with two
// over-allocated queues and two within their guarantee, kicks the
// engine, and asserts every single head-drop happened on a queue whose
// length exceeded its threshold at drop time.
func TestOccamyEngineNeverExpelsBelowThreshold(t *testing.T) {
	for _, victim := range []core.VictimPolicy{core.RoundRobin, core.LongestQueue} {
		victim := victim
		t.Run(victim.String(), func(t *testing.T) {
			tm := newMockTM(t, 1<<20,
				[][]int{
					packets(40, 1000), // 40KB, threshold 10KB: over
					packets(5, 1000),  // 5KB, threshold 10KB: within
					packets(80, 500),  // 40KB, threshold 39.9KB: over
					nil,               // empty
				},
				[]int{10_000, 10_000, 39_900, 10_000})
			eng := core.NewEngine(tm, core.Config{Alpha: 8, Victim: victim})
			eng.Kick()
			tm.pump(10_000)

			if len(tm.drops) == 0 {
				t.Fatal("engine expelled nothing despite over-allocated queues")
			}
			for _, d := range tm.drops {
				if d.lenBefore <= d.threshold {
					t.Fatalf("expelled queue %d at length %d <= threshold %d", d.queue, d.lenBefore, d.threshold)
				}
			}
			// Convergence: afterwards no queue is over its threshold...
			for q := range tm.queues {
				if tm.QueueLen(q) > tm.Threshold(q) {
					t.Errorf("queue %d still over threshold after convergence: %d > %d",
						q, tm.QueueLen(q), tm.Threshold(q))
				}
			}
			// ...and the protected queue was never touched.
			if tm.QueueLen(1) != 5_000 {
				t.Errorf("queue 1 (within guarantee) lost bytes: %d left", tm.QueueLen(1))
			}
			st := eng.Stats()
			if st.ExpelledPackets != int64(len(tm.drops)) {
				t.Errorf("stats count %d != observed drops %d", st.ExpelledPackets, len(tm.drops))
			}
		})
	}
}

// TestOccamyEngineIdleWhenFair: with every queue inside its threshold a
// Kick must schedule nothing.
func TestOccamyEngineIdleWhenFair(t *testing.T) {
	tm := newMockTM(t, 1<<20,
		[][]int{packets(5, 1000), packets(3, 1000)},
		[]int{10_000, 10_000})
	eng := core.NewEngine(tm, core.Config{Alpha: 8})
	eng.Kick()
	if n := tm.pump(10); n != 0 {
		t.Fatalf("engine scheduled %d events with no over-allocation", n)
	}
	if len(tm.drops) != 0 {
		t.Fatalf("engine expelled %d packets with no over-allocation", len(tm.drops))
	}
}

// TestPushoutFreesExactlyEnough: MakeRoom must stop the moment the
// packet fits — over-eviction is bounded by one packet — and must always
// pick the longest queue.
func TestPushoutFreesExactlyEnough(t *testing.T) {
	// Capacity 100KB, 99KB buffered: a 5KB arrival needs ~4KB freed.
	tm := newMockTM(t, 100_000,
		[][]int{packets(33, 1000), packets(50, 1000), packets(16, 1000)},
		nil)
	p := core.NewPushout()
	const need = 5_000
	if !p.MakeRoom(tm, tm, need) {
		t.Fatal("MakeRoom failed with plenty to evict")
	}
	free := tm.Capacity() - tm.Occupancy()
	if free < need {
		t.Fatalf("MakeRoom returned but only %d bytes free (need %d)", free, need)
	}
	if free >= need+1_000 {
		t.Fatalf("over-evicted: %d bytes free for a %d-byte packet (last packet 1000B)", free, need)
	}
	for _, d := range tm.drops {
		if d.queue != 1 {
			t.Errorf("evicted from queue %d, but queue 1 was longest", d.queue)
		}
	}
}

// TestPushoutEmptyBuffer: nothing buffered means no room can be made and
// no HeadDrop may be attempted in an infinite loop.
func TestPushoutEmptyBuffer(t *testing.T) {
	tm := newMockTM(t, 10_000, [][]int{nil, nil}, nil)
	if core.NewPushout().MakeRoom(tm, tm, 20_000) {
		t.Fatal("MakeRoom claims success on an empty buffer that can never fit the packet")
	}
	if len(tm.drops) != 0 {
		t.Fatalf("dropped %d packets from an empty buffer", len(tm.drops))
	}
}

// TestPOTRespectsGuarantee: a queue at or above fraction·B may not push
// anyone out; below it, eviction proceeds.
func TestPOTRespectsGuarantee(t *testing.T) {
	p := core.NewPOT(0.5)
	// Queue 0 holds 60KB of the 100KB buffer: >= 50KB threshold.
	tm := newMockTM(t, 100_000, [][]int{packets(60, 1000), packets(39, 1000)}, nil)
	if p.MakeRoomFor(tm, tm, 0, 2_000) {
		t.Fatal("POT evicted on behalf of a queue above its pushout threshold")
	}
	if len(tm.drops) != 0 {
		t.Fatalf("POT dropped %d packets despite refusing", len(tm.drops))
	}
	// Queue 1 is under the threshold: eviction allowed and sufficient.
	if !p.MakeRoomFor(tm, tm, 1, 2_000) {
		t.Fatal("POT refused eviction for a queue below its threshold")
	}
	if free := tm.Capacity() - tm.Occupancy(); free < 2_000 {
		t.Fatalf("POT returned with only %d free", free)
	}
}

// TestQPOFreesOrFails: QPO must free the requested room via its register
// (reseeding by scan when stale) or report failure on an empty buffer.
func TestQPOFreesOrFails(t *testing.T) {
	p := core.NewQPO()
	tm := newMockTM(t, 100_000, [][]int{packets(50, 1000), packets(49, 1000)}, nil)
	if !p.MakeRoomFor(tm, tm, 0, 3_000) {
		t.Fatal("QPO failed with a nearly full buffer to evict from")
	}
	if free := tm.Capacity() - tm.Occupancy(); free < 3_000 {
		t.Fatalf("QPO returned with only %d free", free)
	}
	empty := newMockTM(t, 10_000, [][]int{nil}, nil)
	if core.NewQPO().MakeRoomFor(empty, empty, 0, 20_000) {
		t.Fatal("QPO claims success on an empty buffer")
	}
}

var _ core.TM = (*mockTM)(nil)
var _ bm.State = (*mockTM)(nil)
