// Package core implements the paper's contribution: Occamy, a preemptive
// buffer-management scheme for on-chip shared-memory switches, plus the
// classic preemptive baseline Pushout and the longest-drop ablation
// variant used in Fig 21.
//
// Occamy (§4) combines:
//
//   - a proactive component: plain DT admission with a large α (default
//     8), reserving only a small slice of free buffer, and
//   - a reactive component: an expulsion engine that uses *redundant*
//     memory bandwidth to head-drop packets from every queue whose length
//     exceeds the DT threshold, visiting over-allocated queues in
//     round-robin order.
//
// The expulsion engine is deliberately decoupled from admission
// (overcoming "Difficulty 2" of §2.2): enqueues never wait for an
// expulsion, and a token bucket filled at the switch's aggregate memory
// bandwidth — and drained by every normal dequeue — ensures expulsion
// consumes only bandwidth the output scheduler left idle (the
// fixed-priority arbiter of §4.3).
package core

import (
	"occamy/internal/bm"
	"occamy/internal/hw"
	"occamy/internal/sim"
)

// VictimPolicy selects which over-allocated queue the engine drops from.
type VictimPolicy int

const (
	// RoundRobin iterates over all over-allocated queues — Occamy's
	// choice, avoiding the Maximum Finder entirely.
	RoundRobin VictimPolicy = iota
	// LongestQueue always drops from the longest over-allocated queue —
	// the Fig 21 ablation variant, requiring a Maximum Finder.
	LongestQueue
)

func (v VictimPolicy) String() string {
	if v == LongestQueue {
		return "LongestDrop"
	}
	return "RoundRobinDrop"
}

// TM is the traffic-manager interface the expulsion engine drives. It is
// implemented by internal/switchsim.
type TM interface {
	// NumQueues returns the number of queues sharing the buffer.
	NumQueues() int
	// QueueLen returns queue q's length in bytes.
	QueueLen(q int) int
	// Threshold returns the admission policy's current limit for q.
	Threshold(q int) int
	// HeadPacketCells returns the buffer cells occupied by q's head
	// packet, or 0 when q is empty.
	HeadPacketCells(q int) int
	// HeadDrop expels q's head packet (PD + cell pointers only; cell
	// data memory untouched) and reports its size.
	HeadDrop(q int) (bytes, cells int, ok bool)
	// Now returns the current virtual time.
	Now() sim.Time
	// After schedules fn after d.
	After(d sim.Duration, fn func())
}

// Config parameterizes Occamy.
type Config struct {
	// Alpha is the DT admission α (§4.2). The paper recommends 8.
	Alpha float64
	// AlphaFor optionally overrides admission α per queue.
	AlphaFor map[int]float64
	// AlphaByPrio optionally overrides admission α per priority class
	// (the Fig 15 buffer-choking configuration).
	AlphaByPrio map[int]float64
	// Victim selects the expulsion victim policy.
	Victim VictimPolicy
	// TokenRate is the token-bucket fill rate in cells/second — the
	// switch's aggregate memory bandwidth (§5.3: one token per cell
	// transmission slot). Zero disables the bandwidth gate (used by
	// ablation benches).
	TokenRate float64
	// TokenBurst caps accumulated tokens, in cells. Zero defaults to
	// one maximum-size packet worth (64 cells).
	TokenBurst float64
}

// DefaultAlpha is the paper's recommended admission α.
const DefaultAlpha = 8

// Occamy bundles the admission policy with the expulsion configuration.
// It implements bm.Policy (delegating to DT), so the switch treats it
// like any other BM for admission and additionally runs its Engine.
type Occamy struct {
	*bm.DT
	cfg Config
}

// New returns an Occamy policy. Zero Alpha defaults to 8.
func New(cfg Config) *Occamy {
	if cfg.Alpha == 0 {
		cfg.Alpha = DefaultAlpha
	}
	return &Occamy{
		DT:  &bm.DT{Alpha: cfg.Alpha, AlphaFor: cfg.AlphaFor, AlphaByPrio: cfg.AlphaByPrio},
		cfg: cfg,
	}
}

// Name implements bm.Policy.
func (o *Occamy) Name() string {
	if o.cfg.Victim == LongestQueue {
		return "Occamy-LD"
	}
	return "Occamy"
}

// Config returns the expulsion configuration.
func (o *Occamy) Config() Config { return o.cfg }

// Stats counts what the expulsion engine did.
type Stats struct {
	ExpelledPackets int64
	ExpelledBytes   int64
	ExpelledCells   int64
	Passes          int64 // expulsion attempts (granted or not)
	TokenStalls     int64 // passes deferred waiting for tokens
}

// Engine is the reactive component: the head-drop selector (bitmap +
// round-robin arbiter), the fixed-priority bandwidth gate (token
// bucket), and the head-drop executor, wired to a traffic manager.
type Engine struct {
	tm  TM
	cfg Config

	bitmap  *hw.Bitmap
	arbiter *hw.RoundRobinArbiter
	finder  *hw.MaxFinder // only for the LongestQueue ablation

	tokens     float64
	lastRefill sim.Time
	scheduled  bool

	stats Stats
}

// NewEngine wires an expulsion engine to a traffic manager.
func NewEngine(tm TM, cfg Config) *Engine {
	n := tm.NumQueues()
	if cfg.TokenBurst == 0 {
		cfg.TokenBurst = 64
	}
	e := &Engine{
		tm:      tm,
		cfg:     cfg,
		bitmap:  hw.NewBitmap(n),
		arbiter: hw.NewRoundRobinArbiter(n),
		tokens:  cfg.TokenBurst,
	}
	if cfg.Victim == LongestQueue {
		e.finder = hw.NewMaxFinder(n, 32)
	}
	return e
}

// Stats returns a snapshot of the expulsion counters.
func (e *Engine) Stats() Stats { return e.stats }

// Config returns the engine's resolved configuration (with the derived
// token rate and defaulted burst filled in).
func (e *Engine) Config() Config { return e.cfg }

// Tokens returns the current token balance in cells (may be negative:
// the output scheduler always wins the bandwidth arbitration and may
// overdraw).
func (e *Engine) Tokens() float64 {
	e.refill()
	return e.tokens
}

// refill accrues tokens for elapsed virtual time.
func (e *Engine) refill() {
	now := e.tm.Now()
	if now <= e.lastRefill {
		return
	}
	if e.cfg.TokenRate > 0 {
		e.tokens += e.cfg.TokenRate * (now - e.lastRefill).Seconds()
		if e.tokens > e.cfg.TokenBurst {
			e.tokens = e.cfg.TokenBurst
		}
	}
	e.lastRefill = now
}

// OnTransmit debits the bucket for a normal dequeue of the given cell
// count. Transmission always proceeds — the fixed-priority arbiter gives
// the output scheduler absolute priority — so the balance may go
// negative, which in turn stalls expulsion until bandwidth is redundant
// again.
func (e *Engine) OnTransmit(cells int) {
	if e.cfg.TokenRate <= 0 {
		return
	}
	e.refill()
	e.tokens -= float64(cells)
}

// Kick notifies the engine that queue state changed (an enqueue, a
// dequeue, or a threshold move). If any queue is over-allocated and no
// expulsion pass is pending, one is scheduled.
func (e *Engine) Kick() {
	if e.scheduled {
		return
	}
	if !e.refreshBitmap() {
		return
	}
	e.scheduled = true
	e.tm.After(0, e.pass)
}

// refreshBitmap recomputes the over-allocation bitmap (the comparator
// bank of Fig 9) and reports whether any bit is set.
func (e *Engine) refreshBitmap() bool {
	any := false
	for q := 0; q < e.tm.NumQueues(); q++ {
		over := e.tm.QueueLen(q) > e.tm.Threshold(q)
		e.bitmap.Assign(q, over)
		any = any || over
	}
	return any
}

// victim picks the queue to drop from per the configured policy.
func (e *Engine) victim() (int, bool) {
	if e.cfg.Victim == LongestQueue {
		// Longest among over-allocated queues, via the comparator tree.
		vals := make([]int, e.tm.NumQueues())
		anySet := false
		for q := range vals {
			if e.bitmap.Get(q) {
				vals[q] = e.tm.QueueLen(q)
				anySet = true
			}
		}
		if !anySet {
			return 0, false
		}
		return e.finder.Find(vals), true
	}
	return e.arbiter.Grant(e.bitmap)
}

// pass performs one expulsion attempt and reschedules itself while work
// remains.
func (e *Engine) pass() {
	e.scheduled = false
	e.stats.Passes++
	if !e.refreshBitmap() {
		return // allocations became fair while we waited
	}
	q, ok := e.victim()
	if !ok {
		return
	}
	cells := e.tm.HeadPacketCells(q)
	if cells == 0 {
		// Queue drained between refresh and grant; try again.
		e.Kick()
		return
	}
	if e.cfg.TokenRate > 0 {
		e.refill()
		if e.tokens < float64(cells) {
			// Not enough redundant bandwidth: wait until the bucket
			// refills to the needed level, then retry.
			e.stats.TokenStalls++
			wait := sim.Duration(float64(sim.Second) * (float64(cells) - e.tokens) / e.cfg.TokenRate)
			if wait < 1 {
				wait = 1
			}
			e.scheduled = true
			e.tm.After(wait, e.pass)
			return
		}
		e.tokens -= float64(cells)
	}
	bytes, cells, ok := e.tm.HeadDrop(q)
	if ok {
		e.stats.ExpelledPackets++
		e.stats.ExpelledBytes += int64(bytes)
		e.stats.ExpelledCells += int64(cells)
	}
	// The head-drop occupies the PD/pointer path for the packet's cell
	// reads; space the next pass by that service time so expulsion never
	// exceeds the modeled memory bandwidth even with a full bucket.
	var pace sim.Duration = 1
	if e.cfg.TokenRate > 0 {
		pace = sim.Duration(float64(sim.Second) * float64(cells) / e.cfg.TokenRate)
		if pace < 1 {
			pace = 1
		}
	}
	e.scheduled = true
	e.tm.After(pace, e.pass)
}
