package core

import (
	"occamy/internal/bm"
	"occamy/internal/hw"
)

// Pushout is the historically optimal preemptive baseline (§2.2): a
// packet is admitted whenever any buffer remains, and when the buffer is
// full, packets are expelled from the longest queue to make room.
//
// Unlike Occamy, Pushout couples expulsion to the enqueue path (the
// arriving packet waits for the eviction) and needs a real-time Maximum
// Finder — the two implementation burdens Occamy removes. The simulator
// grants Pushout both for free, making it the idealized upper bound the
// paper compares against.
type Pushout struct {
	finder *hw.MaxFinder
}

// NewPushout returns the Pushout policy.
func NewPushout() *Pushout { return &Pushout{} }

// Name implements bm.Policy.
func (*Pushout) Name() string { return "Pushout" }

// Admit implements bm.Policy: accept whenever the packet fits. Room is
// made beforehand via MakeRoom, so this is effectively always true.
func (*Pushout) Admit(st bm.State, q, size int) bool {
	return bm.FreeBuffer(st) >= size
}

// Threshold implements bm.Policy: Pushout imposes no per-queue limit.
func (*Pushout) Threshold(st bm.State, q int) int { return bm.Unlimited(st) }

// MakeRoom expels head packets from the longest queue until `size` bytes
// fit or nothing remains to expel. The switch calls it when an arrival
// finds the buffer full. It reports whether enough room was freed.
func (p *Pushout) MakeRoom(tm TM, st bm.State, size int) bool {
	n := tm.NumQueues()
	if p.finder == nil || p.finder.Comparators() != n-1 {
		p.finder = hw.NewMaxFinder(n, 32)
	}
	vals := make([]int, n)
	for bm.FreeBuffer(st) < size {
		longest, max := 0, 0
		for q := 0; q < n; q++ {
			vals[q] = tm.QueueLen(q)
			if vals[q] > max {
				max = vals[q]
			}
		}
		if max == 0 {
			return false // nothing buffered anywhere
		}
		longest = p.finder.Find(vals)
		if _, _, ok := tm.HeadDrop(longest); !ok {
			return false
		}
	}
	return true
}

// Preemptor is implemented by policies that can evict buffered packets
// at admission time. The switch consults it when Admit fails for lack of
// physical space.
type Preemptor interface {
	MakeRoom(tm TM, st bm.State, size int) bool
}

var _ Preemptor = (*Pushout)(nil)
var _ bm.Policy = (*Pushout)(nil)
var _ bm.Policy = (*Occamy)(nil)
