package core

import "occamy/internal/bm"

// POT is Pushout with Threshold (Cidon, Georgiadis, Guerin, Khamisy,
// JSAC'95), a §7 related-work preemptive baseline: an arriving packet
// may push out buffered data only while its own queue is shorter than a
// threshold fraction of the buffer — preventing an already-long queue
// from cannibalizing others.
type POT struct {
	// Fraction of the buffer below which a queue may push out
	// (default 0.5 when zero).
	Fraction float64
	inner    *Pushout
}

// NewPOT returns the POT policy.
func NewPOT(fraction float64) *POT {
	if fraction == 0 {
		fraction = 0.5
	}
	return &POT{Fraction: fraction, inner: NewPushout()}
}

// Name implements bm.Policy.
func (*POT) Name() string { return "POT" }

// Admit implements bm.Policy.
func (p *POT) Admit(st bm.State, q, size int) bool {
	return bm.FreeBuffer(st) >= size
}

// Threshold implements bm.Policy: the pushout-eligibility threshold.
func (p *POT) Threshold(st bm.State, q int) int {
	return int(p.Fraction * float64(st.Capacity()))
}

// MakeRoomFor implements QueuePreemptor: eviction is allowed only while
// the arriving packet's queue is below the POT threshold.
func (p *POT) MakeRoomFor(tm TM, st bm.State, q, size int) bool {
	if tm.QueueLen(q) >= p.Threshold(st, q) {
		return false
	}
	return p.inner.MakeRoom(tm, st, size)
}

// QPO is Quasi-Pushout (Lin & Shung, IEEE Comm. Letters'97), a §7
// related-work baseline: instead of tracking the true longest queue
// (which needs a Maximum Finder), QPO keeps a register holding the
// *quasi-longest* queue, updated by cheap pairwise comparisons as
// packets arrive; evictions drop from the registered queue.
type QPO struct {
	regQueue int
	haveReg  bool
}

// NewQPO returns the QPO policy.
func NewQPO() *QPO { return &QPO{} }

// Name implements bm.Policy.
func (*QPO) Name() string { return "QPO" }

// Admit implements bm.Policy.
func (p *QPO) Admit(st bm.State, q, size int) bool {
	// The cheap pairwise update: compare the arriving packet's queue to
	// the register (this is exactly the strawman of §2.2, which is why
	// QPO's register can go stale — reproduced faithfully).
	if !p.haveReg || st.QueueLen(q) > st.QueueLen(p.regQueue) {
		p.regQueue, p.haveReg = q, true
	}
	return bm.FreeBuffer(st) >= size
}

// Threshold implements bm.Policy.
func (p *QPO) Threshold(st bm.State, q int) int { return bm.Unlimited(st) }

// MakeRoomFor implements QueuePreemptor: evict from the quasi-longest
// queue until the packet fits or the register queue empties (the
// register then falls back to a linear rescan, as a hardware QPO would
// re-seed from the next comparison).
func (p *QPO) MakeRoomFor(tm TM, st bm.State, q, size int) bool {
	for bm.FreeBuffer(st) < size {
		if !p.haveReg || tm.QueueLen(p.regQueue) == 0 {
			// Re-seed the register with a linear scan.
			best, bestLen := -1, 0
			for i := 0; i < tm.NumQueues(); i++ {
				if l := tm.QueueLen(i); l > bestLen {
					best, bestLen = i, l
				}
			}
			if best < 0 {
				return false
			}
			p.regQueue, p.haveReg = best, true
		}
		if _, _, ok := tm.HeadDrop(p.regQueue); !ok {
			p.haveReg = false
		}
	}
	return true
}

// QueuePreemptor is the arrival-queue-aware variant of Preemptor: the
// eviction decision may depend on which queue the packet is joining
// (POT's threshold, QPO's register update).
type QueuePreemptor interface {
	MakeRoomFor(tm TM, st bm.State, q, size int) bool
}

var _ bm.Policy = (*POT)(nil)
var _ bm.Policy = (*QPO)(nil)
var _ QueuePreemptor = (*POT)(nil)
var _ QueuePreemptor = (*QPO)(nil)
