package core

import (
	"testing"

	"occamy/internal/bm"
	"occamy/internal/sim"
)

// fakeTM is a minimal traffic manager for engine unit tests: queues are
// byte counters with a per-queue packet size, thresholds are settable.
type fakeTM struct {
	eng        *sim.Engine
	lens       []int
	thresholds []int
	pktBytes   int // every buffered packet is this size
	cellSize   int
	drops      []int // victim queue of each head-drop, in order
}

func newFakeTM(n int) *fakeTM {
	return &fakeTM{
		eng:        sim.NewEngine(),
		lens:       make([]int, n),
		thresholds: make([]int, n),
		pktBytes:   1000,
		cellSize:   200,
	}
}

func (f *fakeTM) NumQueues() int                  { return len(f.lens) }
func (f *fakeTM) QueueLen(q int) int              { return f.lens[q] }
func (f *fakeTM) Threshold(q int) int             { return f.thresholds[q] }
func (f *fakeTM) Now() sim.Time                   { return f.eng.Now() }
func (f *fakeTM) After(d sim.Duration, fn func()) { f.eng.After(d, fn) }

func (f *fakeTM) HeadPacketCells(q int) int {
	if f.lens[q] == 0 {
		return 0
	}
	return (f.pktBytes + f.cellSize - 1) / f.cellSize
}

func (f *fakeTM) HeadDrop(q int) (int, int, bool) {
	if f.lens[q] == 0 {
		return 0, 0, false
	}
	n := f.pktBytes
	if n > f.lens[q] {
		n = f.lens[q]
	}
	f.lens[q] -= n
	f.drops = append(f.drops, q)
	return n, f.HeadPacketCells(q), true
}

// bm.State view over the fake, for Pushout tests.
func (f *fakeTM) Capacity() int { return 1 << 20 }
func (f *fakeTM) Occupancy() int {
	t := 0
	for _, l := range f.lens {
		t += l
	}
	return t
}
func (f *fakeTM) QueuePriority(q int) int   { return 0 }
func (f *fakeTM) DequeueRate(q int) float64 { return 1 }

func TestEngineExpelsOverAllocated(t *testing.T) {
	tm := newFakeTM(4)
	tm.lens = []int{5000, 1000, 0, 0}
	tm.thresholds = []int{2000, 2000, 2000, 2000}
	e := NewEngine(tm, Config{TokenRate: 1e9, TokenBurst: 1000})
	e.Kick()
	tm.eng.Run()
	if tm.lens[0] > 2000 {
		t.Fatalf("queue 0 still over-allocated: %d", tm.lens[0])
	}
	if tm.lens[1] != 1000 {
		t.Fatalf("under-threshold queue 1 was dropped to %d", tm.lens[1])
	}
	st := e.Stats()
	if st.ExpelledPackets != 3 || st.ExpelledBytes != 3000 {
		t.Fatalf("stats = %+v, want 3 pkts / 3000 bytes", st)
	}
}

func TestEngineRoundRobinAcrossQueues(t *testing.T) {
	tm := newFakeTM(3)
	tm.lens = []int{4000, 4000, 4000}
	tm.thresholds = []int{1000, 1000, 1000}
	e := NewEngine(tm, Config{TokenRate: 1e9, TokenBurst: 1000})
	e.Kick()
	tm.eng.Run()
	// Every queue must end at/below threshold, and drops must
	// interleave rather than finishing one queue first.
	for q, l := range tm.lens {
		if l > 1000 {
			t.Fatalf("queue %d still over: %d", q, l)
		}
	}
	if len(tm.drops) < 6 {
		t.Fatalf("too few drops recorded: %v", tm.drops)
	}
	if tm.drops[0] == tm.drops[1] && tm.drops[1] == tm.drops[2] {
		t.Fatalf("drops not round-robin: %v", tm.drops)
	}
}

func TestEngineLongestQueueVariant(t *testing.T) {
	tm := newFakeTM(3)
	tm.lens = []int{3000, 9000, 3000}
	tm.thresholds = []int{1000, 1000, 1000}
	e := NewEngine(tm, Config{Victim: LongestQueue, TokenRate: 1e9, TokenBurst: 1000})
	e.Kick()
	tm.eng.Run()
	// The first drops must all hit queue 1 until it is no longer longest.
	for i := 0; i < 6 && i < len(tm.drops); i++ {
		if tm.drops[i] != 1 {
			t.Fatalf("drop %d hit queue %d, want longest queue 1 (drops %v)", i, tm.drops[i], tm.drops)
		}
	}
	for q, l := range tm.lens {
		if l > 1000 {
			t.Fatalf("queue %d still over: %d", q, l)
		}
	}
}

func TestEngineRespectsTokenBucket(t *testing.T) {
	tm := newFakeTM(1)
	tm.lens = []int{10000} // 10 packets of 5 cells each
	tm.thresholds = []int{0}
	// 5 cells per packet at 1000 cells/sec => 5ms per expulsion.
	e := NewEngine(tm, Config{TokenRate: 1000, TokenBurst: 5})
	e.Kick()
	tm.eng.RunUntil(26 * sim.Millisecond)
	// Bucket starts full (5 tokens = 1 packet), then refills at 5ms per
	// packet: expect ~6 packets by t=26ms, certainly not all 10.
	got := e.Stats().ExpelledPackets
	if got < 4 || got > 7 {
		t.Fatalf("expelled %d packets in 26ms, want ~6 (token-paced)", got)
	}
	tm.eng.Run()
	if tm.lens[0] != 0 {
		t.Fatalf("queue not fully drained eventually: %d", tm.lens[0])
	}
}

func TestEngineStallsWhenTransmitConsumesBandwidth(t *testing.T) {
	tm := newFakeTM(1)
	tm.lens = []int{5000}
	tm.thresholds = []int{0}
	e := NewEngine(tm, Config{TokenRate: 1000, TokenBurst: 10})
	// The output scheduler hogs the memory bandwidth: large debit.
	e.OnTransmit(5000)
	if e.Tokens() > -4000 {
		t.Fatalf("tokens = %v after overdraw, want deeply negative", e.Tokens())
	}
	e.Kick()
	tm.eng.RunUntil(1 * sim.Second)
	if got := e.Stats().ExpelledPackets; got > 1 {
		t.Fatalf("expelled %d packets while bandwidth saturated, want ~0", got)
	}
	if e.Stats().TokenStalls == 0 {
		t.Fatal("no token stalls recorded despite saturation")
	}
}

func TestEngineUnlimitedWhenRateZero(t *testing.T) {
	tm := newFakeTM(2)
	tm.lens = []int{100000, 100000}
	tm.thresholds = []int{0, 0}
	e := NewEngine(tm, Config{}) // TokenRate 0: ablation, no gate
	e.Kick()
	tm.eng.Run()
	if tm.lens[0] != 0 || tm.lens[1] != 0 {
		t.Fatalf("queues not drained: %v", tm.lens)
	}
	if e.Stats().TokenStalls != 0 {
		t.Fatal("token stalls with gating disabled")
	}
}

func TestEngineStopsWhenFair(t *testing.T) {
	tm := newFakeTM(2)
	tm.lens = []int{1500, 1500}
	tm.thresholds = []int{2000, 2000}
	e := NewEngine(tm, Config{TokenRate: 1e9})
	e.Kick()
	tm.eng.Run()
	if e.Stats().ExpelledPackets != 0 {
		t.Fatalf("expelled %d packets with nothing over-allocated", e.Stats().ExpelledPackets)
	}
}

func TestEngineThresholdRisesMidway(t *testing.T) {
	// Expulsion must re-check thresholds every pass: when the threshold
	// rises above the queue length mid-run, dropping stops.
	tm := newFakeTM(1)
	tm.lens = []int{5000}
	tm.thresholds = []int{3900}
	e := NewEngine(tm, Config{TokenRate: 1e9, TokenBurst: 100})
	e.Kick()
	tm.eng.Run()
	// Drops of 1000B each: 5000 -> 4000 -> 3000 (<= 3900, stop).
	if tm.lens[0] != 3000 {
		t.Fatalf("queue len = %d, want 3000", tm.lens[0])
	}
}

func TestKickIdempotent(t *testing.T) {
	tm := newFakeTM(1)
	tm.lens = []int{3000}
	tm.thresholds = []int{0}
	e := NewEngine(tm, Config{TokenRate: 1e9, TokenBurst: 1000})
	for i := 0; i < 10; i++ {
		e.Kick()
	}
	tm.eng.Run()
	if got := e.Stats().ExpelledPackets; got != 3 {
		t.Fatalf("expelled %d, want 3 (kicks must coalesce)", got)
	}
}

func TestOccamyPolicyDelegatesToDT(t *testing.T) {
	o := New(Config{})
	if o.Name() != "Occamy" {
		t.Fatalf("Name = %q", o.Name())
	}
	if o.Alpha != 8 {
		t.Fatalf("default alpha = %v, want 8", o.Alpha)
	}
	ld := New(Config{Victim: LongestQueue})
	if ld.Name() != "Occamy-LD" {
		t.Fatalf("Name = %q", ld.Name())
	}
	st := stateFromLens(1000, []int{0})
	// free = 1000, alpha 8 => threshold 8000
	if got := o.Threshold(st, 0); got != 8000 {
		t.Fatalf("Threshold = %d, want 8000", got)
	}
}

// stateFromLens builds a bm.State for policy-level tests.
type lenState struct {
	capacity int
	lens     []int
}

func stateFromLens(capacity int, lens []int) bm.State {
	return &lenState{capacity, lens}
}

func (s *lenState) Capacity() int { return s.capacity }
func (s *lenState) Occupancy() int {
	t := 0
	for _, l := range s.lens {
		t += l
	}
	return t
}
func (s *lenState) NumQueues() int            { return len(s.lens) }
func (s *lenState) QueueLen(q int) int        { return s.lens[q] }
func (s *lenState) QueuePriority(q int) int   { return 0 }
func (s *lenState) DequeueRate(q int) float64 { return 1 }

func TestPushoutAdmitsWhileSpace(t *testing.T) {
	p := NewPushout()
	st := stateFromLens(1000, []int{900})
	if !p.Admit(st, 0, 100) {
		t.Fatal("Pushout rejected a fitting packet")
	}
	if p.Admit(st, 0, 101) {
		t.Fatal("Pushout admitted beyond capacity without MakeRoom")
	}
}

func TestPushoutMakeRoomEvictsLongest(t *testing.T) {
	tm := newFakeTM(3)
	tm.lens = []int{2000, 7000, 3000}
	p := NewPushout()
	// fakeTM capacity is 1MB; use a tight view instead.
	st := &lenState{capacity: 12500, lens: tm.lens}
	if !p.MakeRoom(tm, st, 1500) {
		t.Fatal("MakeRoom failed with packets available to evict")
	}
	if tm.drops[0] != 1 {
		t.Fatalf("first eviction hit queue %d, want longest queue 1", tm.drops[0])
	}
	if bm.FreeBuffer(st) < 1500 {
		t.Fatalf("free = %d after MakeRoom, want >= 1500", bm.FreeBuffer(st))
	}
}

func TestPushoutMakeRoomEmptyBuffer(t *testing.T) {
	tm := newFakeTM(2)
	p := NewPushout()
	st := &lenState{capacity: 100, lens: tm.lens}
	if p.MakeRoom(tm, st, 500) {
		t.Fatal("MakeRoom reported success with nothing to evict")
	}
}

func TestVictimPolicyString(t *testing.T) {
	if RoundRobin.String() != "RoundRobinDrop" || LongestQueue.String() != "LongestDrop" {
		t.Fatal("VictimPolicy strings wrong")
	}
}
