package core

import "testing"

func TestPOTBlocksLongArrivalQueue(t *testing.T) {
	tm := newFakeTM(2)
	tm.lens = []int{8000, 7000}
	st := &lenState{capacity: 15000, lens: tm.lens}
	p := NewPOT(0.5) // may push out only while own queue < 7500

	// Queue 0 is at 8000 >= 7500: no pushout allowed for it.
	if p.MakeRoomFor(tm, st, 0, 1000) {
		t.Fatal("POT allowed a long queue to push out")
	}
	if len(tm.drops) != 0 {
		t.Fatal("POT evicted despite refusing")
	}
	// Queue 1 is at 7000 < 7500: pushout allowed, longest (q0) evicted.
	if !p.MakeRoomFor(tm, st, 1, 1000) {
		t.Fatal("POT refused a short queue")
	}
	if tm.drops[0] != 0 {
		t.Fatalf("POT evicted queue %d, want longest queue 0", tm.drops[0])
	}
}

func TestQPORegisterTracksQuasiLongest(t *testing.T) {
	tm := newFakeTM(3)
	tm.lens = []int{2000, 9000, 4000}
	st := &lenState{capacity: 15100, lens: tm.lens}
	p := NewQPO()

	// Admissions update the register with the arriving packet's queue.
	p.Admit(st, 2, 100) // register <- 2 (len 4000)
	p.Admit(st, 0, 100) // q0 shorter: register stays 2
	if !p.MakeRoomFor(tm, st, 0, 1000) {
		t.Fatal("QPO failed to make room")
	}
	// Eviction hit the registered (quasi-longest) queue 2, not the true
	// longest queue 1 — the documented staleness of the register.
	if tm.drops[0] != 2 {
		t.Fatalf("QPO evicted queue %d, want registered queue 2", tm.drops[0])
	}
}

func TestQPOReseedsWhenRegisterEmpties(t *testing.T) {
	tm := newFakeTM(2)
	tm.lens = []int{1000, 12000}
	st := &lenState{capacity: 13100, lens: tm.lens}
	p := NewQPO()
	p.Admit(st, 0, 100) // register <- 0 (tiny queue)
	// Making room for 3000 bytes drains queue 0's single packet, then
	// the register re-seeds via scan and evicts from queue 1.
	if !p.MakeRoomFor(tm, st, 0, 3000) {
		t.Fatal("QPO failed after re-seed")
	}
	sawQ1 := false
	for _, d := range tm.drops {
		if d == 1 {
			sawQ1 = true
		}
	}
	if !sawQ1 {
		t.Fatalf("QPO never evicted from the re-seeded longest queue: %v", tm.drops)
	}
}

func TestVariantNames(t *testing.T) {
	if NewPOT(0).Name() != "POT" || NewQPO().Name() != "QPO" {
		t.Fatal("bad names")
	}
	if NewPOT(0).Fraction != 0.5 {
		t.Fatal("POT default fraction not applied")
	}
}
