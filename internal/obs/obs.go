// Package obs holds the binary-side observability plumbing shared by
// occamy-served and occamy-router: the -log-level structured-logging
// setup and the -pprof-addr profiling listener. It is deliberately
// outside the deterministic core — wall clocks, environment, and
// goroutines are all legal here.
package obs

import (
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"

	// Blank import registers the /debug/pprof/* handlers on the default
	// mux, which only the dedicated pprof listener below ever serves —
	// the API muxes are custom, so profiling never leaks onto the
	// public address.
	_ "net/http/pprof"
)

// NewLogger builds a JSON slog logger on stderr at the given level
// ("debug", "info", "warn", "error"; case-insensitive). An empty or
// "off" level returns nil — the service/fleet configs treat nil as
// discard-everything, so logging stays strictly opt-in.
func NewLogger(level string) (*slog.Logger, error) {
	if level == "" || level == "off" {
		return nil, nil
	}
	var l slog.Level
	if err := l.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn, or error)", level)
	}
	return slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: l})), nil
}

// StartPprof serves net/http/pprof on its own listener when addr is
// non-empty. Failures are logged, not fatal: a squatted debug port
// must not take the service down with it.
func StartPprof(addr string) {
	if addr == "" {
		return
	}
	go func() {
		log.Printf("pprof listening on %s (/debug/pprof/)", addr)
		if err := http.ListenAndServe(addr, nil); err != nil {
			log.Printf("pprof listener: %v", err)
		}
	}()
}
