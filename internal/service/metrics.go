package service

import (
	"net/http"

	"occamy/internal/metrics"
)

// GET /metrics — Prometheus text exposition (worker tier)
//
// The same state GET /v1/stats reports as a JSON document, rendered in
// the exposition format a scraper ingests: the per-endpoint latency
// histograms as cumulative-bucket histogram families, the submission
// ledger as counters, and the queue/worker instant as gauges. Counter
// values come from the same Stats() snapshot as /v1/stats, so the two
// endpoints reconcile (the ledger identities in stats.go hold here
// too). Families render in a fixed order — scrapes of an idle service
// are byte-stable, which the tests lean on.

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	var p metrics.Prom

	reqs := make([]metrics.PromSample, 0, len(endpointPatterns))
	subs := make([]metrics.HistogramSub, 0, len(endpointPatterns))
	for _, pat := range endpointPatterns {
		h := s.endpoints[pat]
		lbl := []metrics.Label{{Name: "endpoint", Value: pat}}
		reqs = append(reqs, metrics.PromSample{Labels: lbl, Value: float64(h.Count())})
		subs = append(subs, metrics.HistogramSub{Labels: lbl, H: h})
	}
	p.Counter("occamy_requests_total", "HTTP requests served, by route pattern.", reqs...)
	p.HistogramFamily("occamy_request_duration_seconds", "HTTP handler latency, by route pattern.", subs...)

	c := st.Counters
	p.Counter("occamy_jobs_submitted_total", "Validated submissions (cache hits + coalesced + enqueued + refused).",
		metrics.PromSample{Value: float64(c.Submitted)})
	p.Counter("occamy_submissions_total", "Submission outcomes, by result.",
		metrics.PromSample{Labels: []metrics.Label{{Name: "result", Value: "cache_hit"}}, Value: float64(c.CacheHits)},
		metrics.PromSample{Labels: []metrics.Label{{Name: "result", Value: "coalesced"}}, Value: float64(c.Coalesced)},
		metrics.PromSample{Labels: []metrics.Label{{Name: "result", Value: "enqueued"}}, Value: float64(c.Enqueued)},
		metrics.PromSample{Labels: []metrics.Label{{Name: "result", Value: "refused"}}, Value: float64(c.Refused)})
	p.Counter("occamy_jobs_finished_total", "Terminal job transitions, by final state.",
		metrics.PromSample{Labels: []metrics.Label{{Name: "state", Value: "done"}}, Value: float64(c.Done)},
		metrics.PromSample{Labels: []metrics.Label{{Name: "state", Value: "failed"}}, Value: float64(c.Failed)},
		metrics.PromSample{Labels: []metrics.Label{{Name: "state", Value: "canceled"}}, Value: float64(c.Canceled)})

	p.Gauge("occamy_jobs", "Jobs currently in a live state.",
		metrics.PromSample{Labels: []metrics.Label{{Name: "state", Value: "queued"}}, Value: float64(st.Queued)},
		metrics.PromSample{Labels: []metrics.Label{{Name: "state", Value: "running"}}, Value: float64(st.Running)})
	p.Gauge("occamy_queue_depth", "Jobs in the submission queue right now.",
		metrics.PromSample{Value: float64(st.QueueLen)})
	p.Gauge("occamy_queue_capacity", "Submission queue capacity.",
		metrics.PromSample{Value: float64(st.QueueCap)})
	p.Gauge("occamy_workers", "Simulation worker-pool size.",
		metrics.PromSample{Value: float64(st.Workers)})
	p.Gauge("occamy_utilization_ratio", "Cumulative fraction of worker-seconds spent simulating (0..1).",
		metrics.PromSample{Value: st.Utilization})
	p.Gauge("occamy_uptime_seconds", "Seconds since the service started.",
		metrics.PromSample{Value: st.UptimeSeconds})

	p.Gauge("occamy_cache_entries", "Result-cache entries resident.",
		metrics.PromSample{Value: float64(st.Cache.Entries)})
	p.Gauge("occamy_cache_bytes", "Result-cache bytes resident.",
		metrics.PromSample{Value: float64(st.Cache.Bytes)})
	p.Gauge("occamy_cache_budget_bytes", "Result-cache memory budget.",
		metrics.PromSample{Value: float64(st.Cache.Budget)})
	p.Counter("occamy_cache_hits_total", "Result-cache hits.",
		metrics.PromSample{Value: float64(st.Cache.Hits)})
	p.Counter("occamy_cache_misses_total", "Result-cache misses.",
		metrics.PromSample{Value: float64(st.Cache.Misses)})
	p.Counter("occamy_cache_evictions_total", "Result-cache evictions.",
		metrics.PromSample{Value: float64(st.Cache.Evicted)})
	p.Counter("occamy_cache_restored_total", "Result-cache entries restored from disk.",
		metrics.PromSample{Value: float64(st.Cache.Restored)})

	w.Header().Set("Content-Type", metrics.PromContentType)
	_, _ = p.WriteTo(w)
}
