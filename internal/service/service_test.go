package service

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"occamy/internal/scenario"
)

// quickSpec returns a fast-running catalog spec at quick scale.
func quickSpec(t testing.TB, name string) scenario.Spec {
	t.Helper()
	sc, ok := scenario.Get(name)
	if !ok {
		t.Fatalf("scenario %q not registered", name)
	}
	return sc.SpecAt(scenario.ScaleQuick)
}

// newService builds a service with test-friendly sizing and closes it
// with the test.
func newService(t testing.TB, cfg Config) *Service {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// await polls a job to a terminal state.
func await(t testing.TB, s *Service, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := s.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

// Resubmitting a spec after its first run completes is a cache hit:
// done immediately, cached flag set, and the result bytes are the exact
// bytes the first run produced.
func TestResubmissionIsCacheHit(t *testing.T) {
	s := newService(t, Config{Workers: 2})
	spec := quickSpec(t, "burst-absorb")

	first, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first submission reported cached")
	}
	st := await(t, s, first.ID)
	if st.State != JobDone {
		t.Fatalf("first run ended %s (%s)", st.State, st.Error)
	}
	firstBytes, ok := s.Result(first.ID)
	if !ok || len(firstBytes) == 0 {
		t.Fatal("no result bytes on the first run")
	}

	second, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.State != JobDone {
		t.Fatalf("resubmission not a cache hit: %+v", second)
	}
	if second.ID == first.ID {
		t.Fatal("resubmission reused the first job id")
	}
	secondBytes, _ := s.Result(second.ID)
	if string(firstBytes) != string(secondBytes) {
		t.Error("cached result bytes differ from the original run")
	}
	if second.Fingerprint != first.Fingerprint {
		t.Errorf("fingerprints differ: %s vs %s", first.Fingerprint, second.Fingerprint)
	}

	// The cache saw exactly one miss (the first submission) and at
	// least one hit.
	if cs := s.Cache().Stats(); cs.Hits < 1 || cs.Entries < 1 {
		t.Errorf("cache stats after hit: %+v", cs)
	}
}

// An equivalent spec written differently (defaults spelled out) is the
// same content address, so it hits the cache too.
func TestEquivalentSpecHitsCache(t *testing.T) {
	s := newService(t, Config{Workers: 1})
	spec := quickSpec(t, "quickstart")
	first, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	await(t, s, first.ID)

	explicit := spec
	explicit.Workloads = append([]scenario.Workload(nil), spec.Workloads...)
	explicit.Seed = 42 // the default, spelled out
	st, err := s.Submit(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Cached {
		t.Errorf("equivalent spec missed the cache: %+v", st)
	}
}

// Concurrent submissions (same spec and different specs interleaved)
// must be race-clean, all complete, and collapse to one simulation per
// distinct fingerprint — either via the in-flight coalescer or the
// cache.
func TestConcurrentSubmissions(t *testing.T) {
	s := newService(t, Config{Workers: 4})
	names := []string{"quickstart", "burst-absorb"}
	const perName = 8

	var wg sync.WaitGroup
	ids := make(chan string, len(names)*perName)
	for _, name := range names {
		spec := quickSpec(t, name)
		for i := 0; i < perName; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				st, err := s.Submit(spec)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				ids <- st.ID
			}()
		}
	}
	wg.Wait()
	close(ids)

	results := map[string]map[string]bool{} // scenario -> distinct result bytes
	for id := range ids {
		st := await(t, s, id)
		if st.State != JobDone {
			t.Fatalf("job %s ended %s (%s)", id, st.State, st.Error)
		}
		data, ok := s.Result(id)
		if !ok {
			t.Fatalf("job %s has no result", id)
		}
		if results[st.Scenario] == nil {
			results[st.Scenario] = map[string]bool{}
		}
		results[st.Scenario][string(data)] = true
	}
	for name, distinct := range results {
		if len(distinct) != 1 {
			t.Errorf("%s: %d distinct result byte strings across identical submissions", name, len(distinct))
		}
	}
}

// Canceling a queued job prevents it from running; canceling a running
// job stops it at the next engine chunk. A one-worker service with a
// paper-scale job in the pipe makes both states reachable.
func TestCancel(t *testing.T) {
	s := newService(t, Config{Workers: 1})
	slow := quickSpec(t, "incast-storm-256")
	slow.Scale = scenario.ScalePaper // long enough to still be running

	running, err := s.Submit(slow)
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(quickSpec(t, "quickstart"))
	if err != nil {
		t.Fatal(err)
	}
	st, ok := s.Cancel(queued.ID)
	if !ok {
		t.Fatal("cancel of queued job not found")
	}
	if st.State != JobCanceled {
		t.Errorf("queued job state after cancel: %s", st.State)
	}
	if st, _ := s.Cancel(running.ID); st.State.Terminal() && st.State != JobCanceled {
		t.Errorf("running job ended %s before cancel took effect", st.State)
	}
	if st := await(t, s, running.ID); st.State != JobCanceled && st.State != JobDone {
		t.Errorf("running job ended %s after cancel", st.State)
	}
	// Canceled runs must not poison the cache: a fresh submission of the
	// canceled queued spec runs for real.
	redo, err := s.Submit(quickSpec(t, "quickstart"))
	if err != nil {
		t.Fatal(err)
	}
	if redo.Cached {
		t.Error("canceled job left a cache entry")
	}
	if st := await(t, s, redo.ID); st.State != JobDone {
		t.Errorf("resubmitted job ended %s (%s)", st.State, st.Error)
	}
}

// A sweep job fans its grid through RunGrid and yields the same table
// the CLI sweep path renders; repeating it is a cache hit.
func TestSweepJob(t *testing.T) {
	s := newService(t, Config{Workers: 2})
	spec := quickSpec(t, "burst-absorb")
	axes := []scenario.SweepAxis{{Path: "policy.kind", Values: []string{"dt", "occamy"}}}

	st, err := s.SubmitSweep(spec, axes)
	if err != nil {
		t.Fatal(err)
	}
	done := await(t, s, st.ID)
	if done.State != JobDone {
		t.Fatalf("sweep ended %s (%s)", done.State, done.Error)
	}
	data, _ := s.Result(st.ID)
	tab, err := scenario.RunSweep(spec, axes)
	if err != nil {
		t.Fatal(err)
	}
	doc := scenario.NewTableDoc(tab)
	want, err := doc.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(want) {
		t.Errorf("sweep job table differs from CLI sweep:\n%s\nvs\n%s", data, want)
	}

	again, err := s.SubmitSweep(spec, axes)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("repeated sweep missed the cache")
	}
	// Bad axes are rejected at submit time, not worker time.
	if _, err := s.SubmitSweep(spec, []scenario.SweepAxis{{Path: "no.such.field", Values: []string{"1"}}}); err == nil {
		t.Error("sweep over an unknown field accepted")
	}
}

// LRU byte-budget eviction: entries over budget fall off the cold end,
// Get refreshes recency, and persisted entries survive eviction and
// process restarts.
func TestCacheEvictionAndPersistence(t *testing.T) {
	// Valid-JSON payloads of exact size n (disk restores are validated).
	val := func(n int, c byte) []byte {
		const overhead = len(`{"v":""}`)
		fill := make([]byte, n-overhead)
		for i := range fill {
			fill[i] = c
		}
		return []byte(`{"v":"` + string(fill) + `"}`)
	}
	c, err := NewCache(100, "")
	if err != nil {
		t.Fatal(err)
	}
	c.Put("sha256:aa", val(40, 'a'))
	c.Put("sha256:bb", val(40, 'b'))
	if c.Get("sha256:aa") == nil { // refresh a: b is now LRU
		t.Fatal("a missing before any eviction")
	}
	c.Put("sha256:cc", val(40, 'c')) // 120 > 100: evicts b
	if c.Get("sha256:bb") != nil {
		t.Error("LRU entry b survived over-budget insert")
	}
	if c.Get("sha256:aa") == nil || c.Get("sha256:cc") == nil {
		t.Error("recently used entries evicted")
	}
	if c.Put("sha256:huge", val(101, 'h')); c.Get("sha256:huge") != nil {
		t.Error("entry larger than the whole budget admitted to memory")
	}
	st := c.Stats()
	if st.Evicted == 0 || st.Bytes > st.Budget {
		t.Errorf("stats after eviction: %+v", st)
	}

	// Disk persistence: a new cache over the same directory restores on
	// miss, and evicted entries come back from disk.
	dir := t.TempDir()
	p1, err := NewCache(100, dir)
	if err != nil {
		t.Fatal(err)
	}
	p1.Put("sha256:0a1b", val(60, 'x'))
	p1.Put("sha256:2c3d", val(60, 'y')) // evicts 0a1b from memory
	if got := p1.Get("sha256:0a1b"); string(got) != string(val(60, 'x')) {
		t.Error("evicted entry not restored from disk")
	}
	p2, err := NewCache(100, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.Get("sha256:2c3d"); string(got) != string(val(60, 'y')) {
		t.Error("fresh cache did not restore a persisted entry")
	}
	if p2.Stats().Restored == 0 {
		t.Error("restore counter did not move")
	}
	if _, err := os.Stat(filepath.Join(dir, "0a1b.json")); err != nil {
		t.Errorf("persisted file missing: %v", err)
	}
	// A truncated/corrupt persisted file (crash mid-write of a foreign
	// writer; our own writes are temp+rename) is a miss, not a served
	// result, and is removed.
	if err := os.WriteFile(filepath.Join(dir, "dead.json"), []byte(`{"schema":1,"trunc`), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := p2.Get("sha256:dead"); got != nil {
		t.Errorf("corrupt persisted entry served: %q", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "dead.json")); err == nil {
		t.Error("corrupt persisted file not removed")
	}
}

// A running sweep is cancelable too: the flag reaches every grid
// point's engine loop, the job ends canceled, and nothing is cached.
func TestSweepCancel(t *testing.T) {
	s := newService(t, Config{Workers: 1})
	spec := quickSpec(t, "incast-storm-256")
	spec.Scale = scenario.ScalePaper
	axes := []scenario.SweepAxis{{Path: "policy.kind", Values: []string{"dt", "occamy"}}}
	st, err := s.SubmitSweep(spec, axes)
	if err != nil {
		t.Fatal(err)
	}
	// Let it leave the queue so the cancel exercises the running path.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cur, _ := s.Get(st.ID); cur.State != JobQueued {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, ok := s.Cancel(st.ID); !ok {
		t.Fatal("cancel not found")
	}
	if done := await(t, s, st.ID); done.State != JobCanceled {
		t.Fatalf("sweep ended %s, want canceled", done.State)
	}
	if again, err := s.SubmitSweep(spec, axes); err != nil {
		t.Fatal(err)
	} else if again.Cached {
		t.Error("canceled sweep left a cache entry")
	}
}

// A service with a persistence directory keeps its memoized results
// across restarts: the "second server" answers a spec it never ran.
func TestServicePersistenceAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	spec := quickSpec(t, "quickstart")

	s1 := newService(t, Config{Workers: 1, CacheDir: dir})
	first, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := await(t, s1, first.ID); st.State != JobDone {
		t.Fatalf("first run ended %s", st.State)
	}
	firstBytes, _ := s1.Result(first.ID)
	s1.Close()

	s2 := newService(t, Config{Workers: 1, CacheDir: dir})
	st, err := s2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Cached {
		t.Fatal("restarted service missed its persisted cache")
	}
	data, _ := s2.Result(st.ID)
	if string(data) != string(firstBytes) {
		t.Error("persisted result bytes drifted across restart")
	}
}

// The queue refuses beyond its depth instead of blocking Submit.
func TestQueueDepthBounds(t *testing.T) {
	s := newService(t, Config{Workers: 1, QueueDepth: 2})
	slow := quickSpec(t, "incast-storm-256")
	slow.Scale = scenario.ScalePaper
	if _, err := s.Submit(slow); err != nil {
		t.Fatal(err)
	}
	// Distinct fingerprints (different seeds) so nothing coalesces.
	var sawRefusal bool
	for i := 0; i < 8; i++ {
		sp := quickSpec(t, "quickstart")
		sp.Seed = uint64(100 + i)
		if _, err := s.Submit(sp); err != nil {
			sawRefusal = true
			break
		}
	}
	if !sawRefusal {
		t.Error("queue accepted unboundedly past its depth")
	}
}

// Deterministic per-job seeds: the executed spec pins its seed, so the
// same submission yields byte-identical results no matter how many
// workers race over the queue.
func TestWorkerCountInvariance(t *testing.T) {
	spec := quickSpec(t, "burst-absorb")
	run := func(workers int) string {
		s := newService(t, Config{Workers: workers})
		st, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if done := await(t, s, st.ID); done.State != JobDone {
			t.Fatalf("run ended %s", done.State)
		}
		data, _ := s.Result(st.ID)
		return string(data)
	}
	if a, b := run(1), run(4); a != b {
		t.Error("result bytes depend on the worker-pool size")
	}
}

// The job ledger is bounded: past MaxJobs the oldest terminal jobs are
// pruned (their ids expire; the cached results stay servable), so a
// long-running server's memory doesn't grow with request count.
func TestJobLedgerBounded(t *testing.T) {
	s := newService(t, Config{Workers: 2, MaxJobs: 5})
	spec := quickSpec(t, "quickstart")
	first, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	await(t, s, first.ID)
	// 20 cache hits would be 21 ledger entries unbounded.
	var last JobStatus
	for i := 0; i < 20; i++ {
		if last, err = s.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(s.Jobs()); got > 5 {
		t.Errorf("ledger holds %d jobs, bound is 5", got)
	}
	// The newest job survives; the first one expired.
	if _, ok := s.Get(last.ID); !ok {
		t.Error("newest job was pruned")
	}
	if _, ok := s.Get(first.ID); ok {
		t.Error("oldest terminal job survived past the bound")
	}
	// Expired ids don't break resubmission: still an O(1) hit.
	if st, err := s.Submit(spec); err != nil || !st.Cached {
		t.Errorf("resubmission after pruning: %+v %v", st, err)
	}
}

// A cancel-flagged in-flight job must not swallow new submissions of
// the same spec: the coalescer skips doomed jobs and enqueues a fresh
// run. Both windows are covered — a canceled queued job (terminal
// immediately, gone from the coalescer) and a running job whose cancel
// flag is set but which hasn't reached its next chunk boundary yet.
func TestSubmitSkipsCancelFlaggedInflight(t *testing.T) {
	s := newService(t, Config{Workers: 1})
	// A long-running job holds the only worker.
	blocker := quickSpec(t, "incast-storm-256")
	blocker.Scale = scenario.ScalePaper
	running, err := s.Submit(blocker)
	if err != nil {
		t.Fatal(err)
	}

	// Window 1: a queued job, canceled, then resubmitted.
	spec := quickSpec(t, "quickstart")
	victim, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := s.Cancel(victim.ID); st.State != JobCanceled {
		t.Fatalf("queued victim not canceled: %s", st.State)
	}
	redo, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if redo.ID == victim.ID {
		t.Fatal("submission coalesced onto a canceled queued job")
	}

	// Window 2: the running blocker, cancel-flagged but likely still
	// mid-chunk; an identical submission must get a fresh job either
	// way, never the doomed one.
	if _, ok := s.Cancel(running.ID); !ok {
		t.Fatal("cancel of running job not found")
	}
	again, err := s.Submit(blocker)
	if err != nil {
		t.Fatal(err)
	}
	if again.ID == running.ID {
		t.Fatal("submission coalesced onto a cancel-flagged running job")
	}
	if again.Cached {
		t.Fatal("canceled run left a cache entry")
	}
	if st := await(t, s, redo.ID); st.State != JobDone {
		t.Errorf("fresh submission ended %s (%s)", st.State, st.Error)
	}
	// The replacement blocker job is still pending/running at paper
	// scale; Close cancels it on cleanup.
}

// Listing is stable and complete: every submission appears, in order.
func TestJobsListing(t *testing.T) {
	s := newService(t, Config{Workers: 2})
	var want []string
	for i := 0; i < 3; i++ {
		sp := quickSpec(t, "quickstart")
		sp.Seed = uint64(1000 + i)
		st, err := s.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, st.ID)
	}
	got := s.Jobs()
	if len(got) != len(want) {
		t.Fatalf("listing has %d jobs, want %d", len(got), len(want))
	}
	for i, st := range got {
		if st.ID != want[i] {
			t.Errorf("listing[%d] = %s, want %s", i, st.ID, want[i])
		}
	}
	for _, id := range want {
		await(t, s, id)
	}
}

func BenchmarkSubmitCacheHit(b *testing.B) {
	s := newService(b, Config{Workers: 1})
	spec := quickSpec(b, "quickstart")
	st, err := s.Submit(spec)
	if err != nil {
		b.Fatal(err)
	}
	await(b, s, st.ID)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st, err := s.Submit(spec); err != nil || !st.Cached {
			b.Fatalf("miss on iteration %d: %+v %v", i, st, err)
		}
	}
}

// Close must resolve every job — running ones bail at their next engine
// chunk, queued ones are skipped — so a graceful server shutdown never
// orphans a job in the ledger.
func TestCloseResolvesAllJobs(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	slow := quickSpec(t, "incast-storm-256")
	slow.Scale = scenario.ScalePaper // long enough to still be running
	ids := []string{}
	st, err := s.Submit(slow)
	if err != nil {
		t.Fatal(err)
	}
	ids = append(ids, st.ID)
	// Distinct seeds: several genuinely queued jobs behind the slow one.
	for i := 0; i < 5; i++ {
		sp := quickSpec(t, "quickstart")
		sp.Seed = uint64(200 + i)
		st, err := s.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}

	s.Close() // blocks until the workers have drained the queue

	for _, id := range ids {
		st, ok := s.Get(id)
		if !ok {
			t.Fatalf("job %s orphaned by Close", id)
		}
		if !st.State.Terminal() {
			t.Errorf("job %s left %s after Close, want terminal", id, st.State)
		}
	}
	if _, err := s.Submit(quickSpec(t, "quickstart")); err == nil {
		t.Error("submission accepted after Close")
	}
}

// The sweep-point cap refuses oversize grids before expanding anything.
func TestSweepPointCap(t *testing.T) {
	s := newService(t, Config{Workers: 1, MaxSweepPoints: 4})
	spec := quickSpec(t, "burst-absorb")

	ok := []scenario.SweepAxis{{Path: "policy.kind", Values: []string{"dt", "occamy"}}}
	st, err := s.SubmitSweep(spec, ok)
	if err != nil {
		t.Fatalf("2-point grid refused under cap 4: %v", err)
	}
	await(t, s, st.ID)

	over := []scenario.SweepAxis{
		{Path: "policy.kind", Values: []string{"dt", "occamy"}},
		{Path: "seed", Values: []string{"1", "2", "3"}},
	}
	if _, err := s.SubmitSweep(spec, over); !errors.Is(err, ErrSweepTooLarge) {
		t.Fatalf("6-point grid under cap 4: err = %v, want ErrSweepTooLarge", err)
	}

	// The guard must also survive products that overflow int: three
	// large axes multiply to far past 1<<63.
	big := make([]string, 100000)
	for i := range big {
		big[i] = "1"
	}
	bomb := []scenario.SweepAxis{
		{Path: "seed", Values: big},
		{Path: "seed", Values: big},
		{Path: "seed", Values: big},
	}
	if _, err := s.SubmitSweep(spec, bomb); !errors.Is(err, ErrSweepTooLarge) {
		t.Fatalf("sweep bomb: err = %v, want ErrSweepTooLarge", err)
	}
}

// Stats counters obey the ledger identities at every instant, and the
// gauges drain to zero once the work does.
func TestStatsLedgerConsistency(t *testing.T) {
	s := newService(t, Config{Workers: 2})
	var ids []string
	for i := 0; i < 12; i++ {
		sp := quickSpec(t, "quickstart")
		sp.Seed = uint64(1 + i%4) // repeats: some hits/coalesces
		st, err := s.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		await(t, s, id)
	}
	st := s.Stats()
	c := st.Counters
	if c.Submitted != 12 {
		t.Fatalf("submitted = %d, want 12", c.Submitted)
	}
	if got := c.CacheHits + c.Coalesced + c.Enqueued + c.Refused; got != c.Submitted {
		t.Fatalf("submission identity broken: %+v", c)
	}
	if got := c.Done + c.Failed + c.Canceled + int64(st.Queued) + int64(st.Running); got != c.Enqueued {
		t.Fatalf("state identity broken: %+v (queued %d running %d)", c, st.Queued, st.Running)
	}
	if c.CacheHits+c.Coalesced == 0 {
		t.Fatal("4 distinct seeds over 12 submissions produced no hits or coalesces")
	}
}
