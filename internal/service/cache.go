// Package service turns the scenario layer into a long-running system:
// a bounded worker-pool job queue executing specs asynchronously, a
// content-addressed result cache memoizing runs by spec identity, and
// an HTTP API (cmd/occamy-served) accepting the same strict-JSON spec
// files the CLI runs. It is the first step of the ROADMAP north star —
// from one-shot CLI invocations toward a service that absorbs repeat
// traffic: every run is deterministic in its spec, so equal specs need
// exactly one simulation.
package service

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Cache is a content-addressed result cache: canonical result bytes
// keyed by spec fingerprint (scenario.Spec.Fingerprint — canonical
// resolved spec bytes + package version), evicted LRU under a byte
// budget, optionally persisted to disk so a restarted server keeps its
// memoized results.
type Cache struct {
	mu       sync.Mutex
	budget   int64
	used     int64
	dir      string // "" = memory only
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used
	hits     int64
	misses   int64
	evicted  int64
	restored int64
}

type cacheEntry struct {
	key  string
	data []byte
}

// NewCache builds a cache with the given byte budget (<= 0 selects the
// 256 MB default). dir, when non-empty, enables disk persistence:
// entries are written as <dir>/<fingerprint-hex>.json and reloaded lazily
// on miss, so the budget bounds memory while disk keeps everything.
func NewCache(budget int64, dir string) (*Cache, error) {
	if budget <= 0 {
		budget = 256 << 20
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("service: cache dir: %w", err)
		}
	}
	return &Cache{
		budget:  budget,
		dir:     dir,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}, nil
}

// fileFor maps a fingerprint ("sha256:<hex>") to its persistence path.
func (c *Cache) fileFor(key string) string {
	name := strings.TrimPrefix(key, "sha256:")
	return filepath.Join(c.dir, name+".json")
}

// Get returns the cached result bytes for the fingerprint, or nil. A
// memory miss falls back to the persistence directory, re-admitting the
// entry under the byte budget on success.
func (c *Cache) Get(key string) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).data
	}
	if c.dir != "" {
		if data, err := os.ReadFile(c.fileFor(key)); err == nil {
			// Writes are atomic (temp + rename), but a foreign or damaged
			// file must not become a served "result": validate before
			// re-admitting, and drop anything that is not JSON.
			if !json.Valid(data) {
				_ = os.Remove(c.fileFor(key))
			} else {
				c.restored++
				c.hits++
				c.admit(key, data)
				return data
			}
		}
	}
	c.misses++
	return nil
}

// Put stores the result bytes under the fingerprint, evicting LRU
// entries from memory as needed, and persists them when a directory is
// configured. Entries larger than the whole budget are persisted but
// not held in memory.
func (c *Cache) Put(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dir != "" {
		// Best-effort persistence: a full disk degrades to memory-only.
		// Temp + rename so a crash mid-write can never leave a truncated
		// file where a restart's Get would find it.
		tmp := c.fileFor(key) + ".tmp"
		if err := os.WriteFile(tmp, data, 0o644); err == nil {
			_ = os.Rename(tmp, c.fileFor(key))
		} else {
			_ = os.Remove(tmp)
		}
	}
	if el, ok := c.entries[key]; ok {
		c.used += int64(len(data)) - int64(len(el.Value.(*cacheEntry).data))
		el.Value.(*cacheEntry).data = data
		c.lru.MoveToFront(el)
		c.evict()
		return
	}
	c.admit(key, data)
}

// admit inserts under the budget; the caller holds the lock.
func (c *Cache) admit(key string, data []byte) {
	if int64(len(data)) > c.budget {
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, data: data})
	c.used += int64(len(data))
	c.evict()
}

// evict drops LRU entries until the budget holds; the caller holds the
// lock. Persisted copies survive eviction, so a later Get can restore.
func (c *Cache) evict() {
	for c.used > c.budget {
		el := c.lru.Back()
		if el == nil {
			return
		}
		e := el.Value.(*cacheEntry)
		c.lru.Remove(el)
		delete(c.entries, e.key)
		c.used -= int64(len(e.data))
		c.evicted++
	}
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Entries  int   `json:"entries"`
	Bytes    int64 `json:"bytes"`
	Budget   int64 `json:"budget"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Evicted  int64 `json:"evicted"`
	Restored int64 `json:"restored"`
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries: len(c.entries), Bytes: c.used, Budget: c.budget,
		Hits: c.hits, Misses: c.misses, Evicted: c.evicted, Restored: c.restored,
	}
}
