package service

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"occamy/internal/metrics"
	"occamy/internal/scenario"
)

// ErrQueueFull is the capacity refusal: the not-yet-running backlog is
// at QueueDepth. HTTP maps it to 503 (retryable), unlike validation
// errors (400).
var ErrQueueFull = errors.New("service: job queue full")

// ErrSweepTooLarge rejects sweep grids whose cross-product exceeds
// Config.MaxSweepPoints — checked before expansion, so a sweep bomb
// costs O(axes), not O(points).
var ErrSweepTooLarge = errors.New("service: sweep grid too large")

// ErrClosed refuses submissions to a closed or draining service. HTTP
// maps it to 503 with a Retry-After header — the client should come
// back once a replacement instance is up — unlike ErrQueueFull's plain
// 503 (same process, just saturated right now).
var ErrClosed = errors.New("service: shutting down")

// JobState is a job's lifecycle position.
type JobState string

// Job lifecycle: Submit enqueues (queued), a worker picks it up
// (running), and it ends done, failed, or canceled.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// Job is one asynchronous unit of work: a single scenario run or a
// sweep grid. Fields are guarded by the owning Service's mutex; use the
// Status snapshot outside it.
type Job struct {
	ID   string
	Kind string // "run" | "sweep"

	state       JobState
	spec        scenario.Spec
	axes        []scenario.SweepAxis // sweep jobs only
	fingerprint string
	trace       string // X-Occamy-Trace of the submission that created it
	cached      bool
	errMsg      string
	result      []byte              // canonical JSON (ResultDoc or TableDoc)
	doc         *scenario.ResultDoc // decoded result, run jobs only
	cancel      atomic.Bool
	// progress is the latest live-progress snapshot, published by the
	// running worker at engine chunk boundaries and read lock-free by
	// status polls (see progress.go). nil until the run first reports.
	progress  atomic.Pointer[progressSample]
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// JobStatus is the externally visible snapshot of a job.
type JobStatus struct {
	ID          string    `json:"id"`
	Kind        string    `json:"kind"`
	State       JobState  `json:"state"`
	Scenario    string    `json:"scenario"`
	Fingerprint string    `json:"fingerprint"`
	Trace       string    `json:"trace,omitempty"`
	Cached      bool      `json:"cached"`
	Error       string    `json:"error,omitempty"`
	Submitted   time.Time `json:"submitted"`
	Started     time.Time `json:"started,omitzero"`
	Finished    time.Time `json:"finished,omitzero"`
	// QueueWaitMs is submitted→started; RunMs is started→finished (for a
	// running job, started→now). Rendered server-side so clients don't
	// subtract timestamps. Absent until the job starts.
	QueueWaitMs float64 `json:"queue_wait_ms,omitempty"`
	RunMs       float64 `json:"run_ms,omitempty"`
	// Progress is the live-progress snapshot of a running (or finished)
	// job; see progress.go for the schema. Absent before the first
	// engine chunk reports.
	Progress *Progress `json:"progress,omitempty"`
}

// Config sizes a Service.
type Config struct {
	// Workers is the simulation worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the backlog of not-yet-running jobs; Submit
	// refuses beyond it (default 1024).
	QueueDepth int
	// MaxJobs bounds the job ledger: once exceeded, the oldest terminal
	// jobs (and their result references) are pruned so a long-running
	// server's memory is bounded by the cache budget, not by its request
	// history (default 4096). Live jobs are never pruned.
	MaxJobs int
	// MaxSweepPoints bounds a single sweep's expanded grid; SubmitSweep
	// refuses larger cross-products with ErrSweepTooLarge before
	// expanding them (default 256 — well below QueueDepth, and one
	// sweep job already saturates the worker pool via RunGrid).
	MaxSweepPoints int
	// CacheBytes is the result-cache memory budget (default 256 MB);
	// CacheDir enables disk persistence when non-empty.
	CacheBytes int64
	CacheDir   string
	// Logger receives structured job-lifecycle and request records
	// (occamy-served wires a JSON handler behind -log-level). nil
	// discards everything, so embedders and tests stay silent.
	Logger *slog.Logger
}

// Service is the scenario-execution engine behind the HTTP API: a
// bounded worker pool draining a job queue, with a content-addressed
// cache short-circuiting any spec that has already been simulated.
type Service struct {
	cache *Cache

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // submission order, for listing
	// inflight maps fingerprints to their active (queued/running) job,
	// so concurrent submissions of one spec coalesce to one simulation.
	inflight       map[string]*Job
	maxJobs        int
	maxSweepPoints int
	seq            int64
	closed         bool

	// Observability (GET /v1/stats): the cumulative submission ledger,
	// worker-busy nanoseconds (terminal jobs; running ones are credited
	// at snapshot time), and per-endpoint latency histograms. counters
	// and busyNanos are guarded by mu; the histograms are internally
	// lock-free.
	counters  Counters
	busyNanos int64
	workers   int
	started   time.Time
	endpoints map[string]*metrics.Histogram
	logger    *slog.Logger

	queue chan *Job
	wg    sync.WaitGroup
}

// New starts a service: the worker pool is running on return.
func New(cfg Config) (*Service, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 4096
	}
	if cfg.MaxSweepPoints <= 0 {
		cfg.MaxSweepPoints = 256
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	cache, err := NewCache(cfg.CacheBytes, cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	s := &Service{
		cache:          cache,
		jobs:           make(map[string]*Job),
		inflight:       make(map[string]*Job),
		maxJobs:        cfg.MaxJobs,
		maxSweepPoints: cfg.MaxSweepPoints,
		workers:        cfg.Workers,
		started:        time.Now(),
		logger:         cfg.Logger,
		endpoints:      make(map[string]*metrics.Histogram, len(endpointPatterns)),
		queue:          make(chan *Job, cfg.QueueDepth),
	}
	for _, pat := range endpointPatterns {
		s.endpoints[pat] = metrics.NewLatencyHistogram()
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Close stops accepting jobs, cancels the backlog, and waits for the
// workers to finish their current simulations.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	// Flag every non-terminal job so running simulations bail at their
	// next chunk boundary and queued ones are skipped by the workers.
	for _, j := range s.jobs {
		j.cancel.Store(true)
	}
	s.mu.Unlock()
	close(s.queue)
	s.wg.Wait()
}

// Cache exposes the result cache (stats endpoint, tests).
func (s *Service) Cache() *Cache { return s.cache }

// status snapshots a job; the caller holds s.mu.
func (j *Job) status() JobStatus {
	st := JobStatus{
		ID: j.ID, Kind: j.Kind, State: j.state,
		Scenario: j.spec.Name, Fingerprint: j.fingerprint, Trace: j.trace, Cached: j.cached,
		Error: j.errMsg, Submitted: j.submitted, Started: j.started, Finished: j.finished,
	}
	if !j.started.IsZero() {
		st.QueueWaitMs = durToMs(j.started.Sub(j.submitted))
		switch {
		case !j.finished.IsZero():
			st.RunMs = durToMs(j.finished.Sub(j.started))
		case j.state == JobRunning:
			st.RunMs = durToMs(time.Since(j.started))
		}
	}
	st.Progress = j.progressStatus()
	return st
}

// durToMs renders a duration in milliseconds with µs precision, the
// same shape the latency snapshots use.
func durToMs(d time.Duration) float64 {
	if d < 0 {
		d = 0
	}
	return float64(d/time.Microsecond) / 1000
}

// Submit enqueues a validated spec for asynchronous execution and
// returns the job's status snapshot. Three fast paths never touch the
// worker pool: a cache hit returns an already-done job carrying the
// memoized result; an identical spec already queued or running
// coalesces onto that job; a full queue is refused with an error.
func (s *Service) Submit(spec scenario.Spec) (JobStatus, error) {
	return s.SubmitTraced(spec, "")
}

// SubmitTraced is Submit with a request trace ID to stamp on the job
// (see trace.go for the header contract). Coalesced submissions keep
// the first submitter's trace — the job is that submission's work; a
// later joiner learns the original ID from the returned status.
func (s *Service) SubmitTraced(spec scenario.Spec, trace string) (JobStatus, error) {
	fp, err := spec.Fingerprint()
	if err != nil {
		return JobStatus{}, err
	}
	// Probe the cache before taking the service lock: with -cache-dir a
	// miss falls through to disk I/O, which must not stall every status
	// poll. Benign race: an identical run completing in the gap means
	// one extra simulation producing the same bytes.
	cached := s.cache.Get(fp)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobStatus{}, ErrClosed
	}
	s.counters.Submitted++
	if cached != nil {
		s.counters.CacheHits++
		j := s.newJobLocked("run", spec, fp, trace)
		j.state = JobDone
		j.cached = true
		j.result = cached
		j.finished = j.submitted
		s.logJob(j, "cache hit")
		return j.status(), nil
	}
	// Coalesce onto an identical in-flight job — unless it has been
	// cancel-flagged (it is doomed to end canceled; this submission
	// deserves a real run).
	if active, ok := s.inflight[fp]; ok && !active.cancel.Load() {
		s.counters.Coalesced++
		s.logJob(active, "coalesced", "trace_joined", trace)
		return active.status(), nil
	}
	j := s.newJobLocked("run", spec, fp, trace)
	if err := s.enqueueLocked(j); err != nil {
		return JobStatus{}, err
	}
	s.logJob(j, "enqueued")
	return j.status(), nil
}

// SubmitSweep enqueues a sweep grid: the base spec crossed with the
// axes, executed through experiments.RunGrid, producing a summary table
// (one row per grid point). Sweep results are content-addressed too —
// by base-spec fingerprint plus the axes — so repeating a grid is a
// cache hit like repeating a run.
func (s *Service) SubmitSweep(spec scenario.Spec, axes []scenario.SweepAxis) (JobStatus, error) {
	return s.SubmitSweepTraced(spec, axes, "")
}

// SubmitSweepTraced is SubmitSweep with a request trace ID to stamp on
// the job (see SubmitTraced).
func (s *Service) SubmitSweepTraced(spec scenario.Spec, axes []scenario.SweepAxis, trace string) (JobStatus, error) {
	// Refuse sweep bombs before expanding anything: the grid size is the
	// exact product of the axis value counts, so an oversize request is
	// rejected in O(axes) — one POST with three 1000-value axes must not
	// allocate a billion specs first.
	points := 1
	for _, ax := range axes {
		if len(ax.Values) == 0 {
			continue
		}
		if points > s.maxSweepPoints/len(ax.Values) {
			points = s.maxSweepPoints + 1
			break
		}
		points *= len(ax.Values)
	}
	if points > s.maxSweepPoints {
		return JobStatus{}, fmt.Errorf("%w: grid has > %d points (cap %d)",
			ErrSweepTooLarge, s.maxSweepPoints, s.maxSweepPoints)
	}
	fp, err := SweepFingerprint(spec, axes)
	if err != nil {
		return JobStatus{}, err
	}
	// Reject bad axes at submit time (unknown fields, unparsable
	// values), not inside a worker: expanding the grid validates both.
	specs, _, err := scenario.Expand(spec, axes)
	if err != nil {
		return JobStatus{}, err
	}
	for _, sp := range specs {
		if err := sp.WithDefaults().Validate(); err != nil {
			return JobStatus{}, err
		}
	}
	cached := s.cache.Get(fp) // outside s.mu, as in Submit
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobStatus{}, ErrClosed
	}
	s.counters.Submitted++
	if cached != nil {
		s.counters.CacheHits++
		j := s.newJobLocked("sweep", spec, fp, trace)
		j.state = JobDone
		j.cached = true
		j.result = cached
		j.finished = j.submitted
		s.logJob(j, "cache hit")
		return j.status(), nil
	}
	if active, ok := s.inflight[fp]; ok && !active.cancel.Load() {
		s.counters.Coalesced++
		s.logJob(active, "coalesced", "trace_joined", trace)
		return active.status(), nil
	}
	j := s.newJobLocked("sweep", spec, fp, trace)
	j.axes = axes
	if err := s.enqueueLocked(j); err != nil {
		return JobStatus{}, err
	}
	s.logJob(j, "enqueued")
	return j.status(), nil
}

// SweepFingerprint extends the spec fingerprint with the sweep axes.
func SweepFingerprint(spec scenario.Spec, axes []scenario.SweepAxis) (string, error) {
	fp, err := spec.Fingerprint()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "occamy/sweep/v%s\n%s\n", scenario.Version, fp)
	for _, ax := range axes {
		// %q-quote each token: values may contain spaces and commas (the
		// reflection setter accepts arbitrary strings), so naive joining
		// would let distinct grids collide on one key.
		fmt.Fprintf(h, "%q", ax.Path)
		for _, v := range ax.Values {
			fmt.Fprintf(h, "=%q", v)
		}
		fmt.Fprintln(h)
	}
	return "sha256:" + hex.EncodeToString(h.Sum(nil)), nil
}

// newJobLocked registers a fresh job, pruning the oldest terminal jobs
// past the ledger bound; the caller holds s.mu.
func (s *Service) newJobLocked(kind string, spec scenario.Spec, fp, trace string) *Job {
	s.seq++
	j := &Job{
		ID:          fmt.Sprintf("r%d", s.seq),
		Kind:        kind,
		state:       JobQueued,
		spec:        spec,
		fingerprint: fp,
		trace:       trace,
		submitted:   time.Now().UTC(),
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	if len(s.order) > s.maxJobs {
		s.pruneLocked()
	}
	return j
}

// pruneLocked drops the oldest terminal jobs until the ledger fits the
// bound (live jobs always survive, so the ledger can exceed the bound
// only while that many jobs are actually queued or running); the caller
// holds s.mu. Pruned cache-hit results stay servable — resubmission is
// another O(1) hit — only the job ids expire.
func (s *Service) pruneLocked() {
	kept := s.order[:0]
	excess := len(s.order) - s.maxJobs
	for _, id := range s.order {
		if excess > 0 && s.jobs[id].state.Terminal() {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// enqueueLocked pushes a queued job to the workers; the caller holds
// s.mu.
func (s *Service) enqueueLocked(j *Job) error {
	select {
	case s.queue <- j:
		s.inflight[j.fingerprint] = j
		s.counters.Enqueued++
		return nil
	default:
		delete(s.jobs, j.ID)
		s.order = s.order[:len(s.order)-1]
		s.counters.Refused++
		s.logJob(j, "refused", "queue_cap", cap(s.queue))
		return fmt.Errorf("%w (%d queued)", ErrQueueFull, cap(s.queue))
	}
}

// Get returns a job's status snapshot.
func (s *Service) Get(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return j.status(), true
}

// Jobs lists every job's status in submission order.
func (s *Service) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status())
	}
	return out
}

// Result returns a done job's canonical JSON result bytes.
func (s *Service) Result(id string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || j.state != JobDone {
		return nil, false
	}
	return j.result, true
}

// ResultDoc returns a done run job's decoded result document (cache
// hits decode lazily, once). The decode itself — megabytes of trace
// series for paper-scale runs — happens outside the service lock so a
// trace request never stalls submissions and status polls.
func (s *Service) ResultDoc(id string) (*scenario.ResultDoc, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	var data []byte
	switch {
	case !ok:
		s.mu.Unlock()
		return nil, fmt.Errorf("service: no job %s", id)
	case j.state != JobDone:
		state := j.state
		s.mu.Unlock()
		return nil, fmt.Errorf("service: job %s is %s, not done", id, state)
	case j.Kind != "run":
		kind := j.Kind
		s.mu.Unlock()
		return nil, fmt.Errorf("service: job %s is a %s, not a run", id, kind)
	case j.doc != nil:
		doc := j.doc
		s.mu.Unlock()
		return doc, nil
	}
	data = j.result // terminal: immutable from here on
	s.mu.Unlock()

	doc, err := scenario.DecodeResultDoc(data)
	if err != nil {
		return nil, fmt.Errorf("service: job %s: %w", id, err)
	}
	s.mu.Lock()
	if j.doc == nil {
		j.doc = doc
	} else {
		doc = j.doc // another request decoded first; share its copy
	}
	s.mu.Unlock()
	return doc, nil
}

// Cancel requests a job stop: a queued job is skipped when a worker
// pops it; a running one bails at its next engine chunk. Canceling a
// terminal job is a no-op returning its current state.
func (s *Service) Cancel(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	if !j.state.Terminal() {
		j.cancel.Store(true)
		if j.state == JobQueued {
			// The worker will observe the flag when it pops the job; mark
			// it now so status reads don't lag.
			s.finishLocked(j, JobCanceled, nil, "")
		}
	}
	return j.status(), true
}

// finishLocked moves a job to a terminal state; the caller holds s.mu.
func (s *Service) finishLocked(j *Job, state JobState, result []byte, errMsg string) {
	wasRunning := j.state == JobRunning
	j.state = state
	j.result = result
	j.errMsg = errMsg
	j.finished = time.Now().UTC()
	if s.inflight[j.fingerprint] == j {
		delete(s.inflight, j.fingerprint)
	}
	switch state {
	case JobDone:
		s.counters.Done++
	case JobFailed:
		s.counters.Failed++
	case JobCanceled:
		s.counters.Canceled++
	}
	if wasRunning {
		s.busyNanos += j.finished.Sub(j.started).Nanoseconds()
	}
	attrs := []any{"queue_wait_ms", durToMs(j.started.Sub(j.submitted)), "run_ms", durToMs(j.finished.Sub(j.started))}
	if !wasRunning {
		attrs = nil // canceled straight out of the queue: no durations to report
	}
	if errMsg != "" {
		attrs = append(attrs, "error", errMsg)
	}
	s.logJob(j, string(state), attrs...)
}

// logJob emits one structured job-lifecycle record; the caller holds
// s.mu (slog handlers are safe there, and job transitions are rare
// relative to the lock's request traffic).
func (s *Service) logJob(j *Job, event string, attrs ...any) {
	if !s.logger.Enabled(nil, slog.LevelInfo) {
		return
	}
	base := []any{"job", j.ID, "kind", j.Kind, "scenario", j.spec.Name, "state", string(j.state)}
	if j.trace != "" {
		base = append(base, "trace", j.trace)
	}
	s.logger.Info(event, append(base, attrs...)...)
}

// worker drains the queue until Close.
func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job end to end. Determinism note: the simulation
// seeds every RNG from the spec (WithDefaults pins Seed), so a job's
// result bytes depend only on its fingerprint preimage — never on
// which worker ran it, the pool size, or queue order. That property is
// what makes the cache sound.
func (s *Service) runJob(j *Job) {
	s.mu.Lock()
	if j.state != JobQueued || j.cancel.Load() {
		if !j.state.Terminal() {
			s.finishLocked(j, JobCanceled, nil, "")
		}
		s.mu.Unlock()
		return
	}
	j.state = JobRunning
	j.started = time.Now().UTC()
	spec, axes := j.spec, j.axes
	s.logJob(j, "started", "queue_wait_ms", durToMs(j.started.Sub(j.submitted)))
	s.mu.Unlock()

	var data []byte
	var err error
	if j.Kind == "sweep" {
		data, err = runSweepJob(j, spec, axes)
	} else {
		data, err = runJobOnce(j, spec)
	}

	if err == nil {
		// Populate the cache before taking the service lock: with
		// -cache-dir this writes the full document to disk.
		s.cache.Put(j.fingerprint, data)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case errors.Is(err, scenario.ErrCanceled):
		s.finishLocked(j, JobCanceled, nil, "")
	case err != nil:
		s.finishLocked(j, JobFailed, nil, err.Error())
	default:
		s.finishLocked(j, JobDone, data, "")
	}
}

// runJobOnce executes a single spec and encodes the canonical document.
// The progress hook fires at engine chunk boundaries, outside the
// deterministic core, and publishes onto the job's atomic snapshot
// (progress.go) — the wall clock is read here, never inside scenario.
func runJobOnce(j *Job, spec scenario.Spec) ([]byte, error) {
	res, err := scenario.RunWithProgress(spec, j.cancel.Load, j.runProgressFunc())
	if err != nil {
		return nil, err
	}
	return res.EncodeJSON(true)
}

// runSweepJob executes a grid and encodes its summary table. The grid
// fans out through experiments.RunGrid inside RunSweep, so one sweep
// job saturates the machine the same way the CLI -j path does; the
// cancel flag reaches every grid point's engine loop. Sweep progress is
// point-granular: the pointDone hook fires concurrently from grid
// workers, so it must be (and is) atomic.
func runSweepJob(j *Job, spec scenario.Spec, axes []scenario.SweepAxis) ([]byte, error) {
	tab, err := scenario.RunSweepWithProgress(spec, axes, j.cancel.Load, j.sweepProgressFunc(gridPoints(axes)))
	if err != nil {
		return nil, err
	}
	doc := scenario.NewTableDoc(tab)
	return doc.Encode()
}
