package service

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"occamy/internal/metrics"
)

// decodeBody decodes a JSON response body.
func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
}

// --- trace propagation ------------------------------------------------

// doTraced POSTs a catalog submit with an optional X-Occamy-Trace header
// and returns the echoed header plus the decoded status.
func doTraced(t *testing.T, url, trace string) (echo string, st JobStatus) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if trace != "" {
		req.Header.Set(TraceHeader, trace)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	decodeBody(t, resp, &st)
	return resp.Header.Get(TraceHeader), st
}

// TestTraceEchoEndToEnd pins the trace contract on a single worker: a
// client-supplied trace is echoed on the response, stamped on the job,
// and survives to the terminal status; absent or invalid traces are
// replaced by a minted 16-hex root.
func TestTraceEchoEndToEnd(t *testing.T) {
	_, srv := startServer(t, Config{Workers: 2})
	url := srv.URL + "/v1/runs?name=quickstart&scale=quick"

	echo, st := doTraced(t, url, "it-test.7")
	if echo != "it-test.7" {
		t.Fatalf("response header trace = %q, want the client's", echo)
	}
	if st.Trace != "it-test.7" {
		t.Fatalf("JobStatus.Trace = %q, want the client's", st.Trace)
	}
	if view := awaitHTTP(t, srv.URL, st.ID); view.Trace != "it-test.7" {
		t.Fatalf("terminal status trace = %q, want the client's", view.Trace)
	}

	// No header: the middleware mints a root and still echoes it.
	echo, st = doTraced(t, srv.URL+"/v1/runs?name=burst-absorb&scale=quick", "")
	if len(echo) != 16 || strings.Trim(echo, "0123456789abcdef") != "" {
		t.Fatalf("minted trace %q is not 16 hex chars", echo)
	}
	if st.Trace != echo {
		t.Fatalf("status trace %q != echoed mint %q", st.Trace, echo)
	}

	// Invalid characters are rejected, not forwarded.
	echo, _ = doTraced(t, srv.URL+"/v1/runs?name=quickstart&scale=quick", "bad!trace")
	if strings.Contains(echo, "!") || len(echo) != 16 {
		t.Fatalf("invalid client trace passed through as %q", echo)
	}
}

// TestBatchChildTraces verifies each batch item gets a ".N" child of
// the batch root, in request order.
func TestBatchChildTraces(t *testing.T) {
	_, srv := startServer(t, Config{Workers: 2})
	spec1, err := CatalogSpec("quickstart", "quick")
	if err != nil {
		t.Fatal(err)
	}
	spec2, err := CatalogSpec("burst-absorb", "quick")
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := spec1.Marshal()
	b2, _ := spec2.Marshal()
	body := `{"specs":[` + string(b1) + `,` + string(b2) + `]}`

	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/batch", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(TraceHeader, "batch-root")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var page struct {
		Runs []BatchItem `json:"runs"`
	}
	decodeBody(t, resp, &page)
	if len(page.Runs) != 2 {
		t.Fatalf("got %d batch items, want 2", len(page.Runs))
	}
	for i, item := range page.Runs {
		if item.Job == nil {
			t.Fatalf("item %d errored: %s", i, item.Error)
		}
		want := "batch-root." + strconv.Itoa(i)
		if item.Job.Trace != want {
			t.Fatalf("item %d trace = %q, want %q", i, item.Job.Trace, want)
		}
	}
}

// --- live progress ----------------------------------------------------

// TestProgressMonotoneToDone pins the satellite invariant: the progress
// snapshot's fraction is monotone non-decreasing while the job runs and
// reaches exactly 1.0 once it is done, and the terminal status carries
// the queue-wait and run durations.
func TestProgressMonotoneToDone(t *testing.T) {
	s := newService(t, Config{Workers: 1})
	spec, err := CatalogSpec("mixed-load-90", "quick")
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	var fracs []float64
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		cur, ok := s.Get(st.ID)
		if !ok {
			t.Fatalf("job %s vanished", st.ID)
		}
		if cur.Progress != nil {
			fracs = append(fracs, cur.Progress.Fraction)
		}
		if cur.State.Terminal() {
			if cur.State != JobDone {
				t.Fatalf("job ended %s: %s", cur.State, cur.Error)
			}
			if cur.Progress == nil {
				t.Fatal("terminal status has no progress block")
			}
			if cur.Progress.Fraction != 1 {
				t.Fatalf("done job fraction = %v, want exactly 1", cur.Progress.Fraction)
			}
			if cur.QueueWaitMs < 0 {
				t.Fatalf("queue_wait_ms = %v", cur.QueueWaitMs)
			}
			if cur.RunMs <= 0 {
				t.Fatalf("run_ms = %v, want > 0 for a job that simulated", cur.RunMs)
			}
			if cur.Progress.Events == 0 {
				t.Fatal("done job reports zero processed events")
			}
			if !sort.Float64sAreSorted(fracs) {
				t.Fatalf("progress fractions regressed: %v", fracs)
			}
			return
		}
	}
	t.Fatal("job did not finish")
}

// --- /metrics ---------------------------------------------------------

// scrape fetches /metrics and parses the sample lines into a map keyed
// by the full series (name plus label block).
func scrape(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.PromContentType {
		t.Fatalf("content type %q, want %q", ct, metrics.PromContentType)
	}
	samples := make(map[string]float64)
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable metrics line %q: %v", line, err)
		}
		samples[line[:i]] = v
	}
	return samples
}

// TestMetricsReconcileWithStats pins the exposition against the ledger:
// the /metrics counters must equal the /v1/stats counters they mirror,
// request counts must cover the traffic just sent, and the request
// histogram's +Inf bucket must equal its _count.
func TestMetricsReconcileWithStats(t *testing.T) {
	svc, srv := startServer(t, Config{Workers: 2})

	// Generate some ledger traffic: a run to done, a duplicate (cache
	// hit), and one stats poll.
	_, st := doTraced(t, srv.URL+"/v1/runs?name=quickstart&scale=quick", "")
	awaitHTTP(t, srv.URL, st.ID)
	_, st2 := doTraced(t, srv.URL+"/v1/runs?name=quickstart&scale=quick", "")
	if !st2.Cached {
		t.Fatalf("resubmission not a cache hit: %+v", st2)
	}
	if code := getJSON(t, srv.URL+"/v1/stats", nil); code != http.StatusOK {
		t.Fatalf("GET /v1/stats: %d", code)
	}

	stats := svc.Stats()
	m := scrape(t, srv.URL)

	ledger := map[string]int64{
		"occamy_jobs_submitted_total":                  stats.Counters.Submitted,
		`occamy_submissions_total{result="cache_hit"}`: stats.Counters.CacheHits,
		`occamy_submissions_total{result="coalesced"}`: stats.Counters.Coalesced,
		`occamy_submissions_total{result="enqueued"}`:  stats.Counters.Enqueued,
		`occamy_submissions_total{result="refused"}`:   stats.Counters.Refused,
		`occamy_jobs_finished_total{state="done"}`:     stats.Counters.Done,
		`occamy_jobs_finished_total{state="failed"}`:   stats.Counters.Failed,
		`occamy_jobs_finished_total{state="canceled"}`: stats.Counters.Canceled,
		`occamy_cache_hits_total`:                      int64(stats.Cache.Hits),
	}
	for series, want := range ledger {
		got, ok := m[series]
		if !ok {
			t.Errorf("series %s missing from /metrics", series)
			continue
		}
		if got != float64(want) {
			t.Errorf("%s = %v, /v1/stats says %d", series, got, want)
		}
	}
	if m["occamy_jobs_submitted_total"] < 2 {
		t.Fatalf("submitted_total = %v after two submits", m["occamy_jobs_submitted_total"])
	}
	if m[`occamy_requests_total{endpoint="POST /v1/runs"}`] < 2 {
		t.Fatalf("requests_total for POST /v1/runs = %v, want >= 2",
			m[`occamy_requests_total{endpoint="POST /v1/runs"}`])
	}

	// Histogram self-consistency on the endpoint that definitely saw
	// traffic: cumulative +Inf bucket == _count.
	inf := m[`occamy_request_duration_seconds_bucket{endpoint="POST /v1/runs",le="+Inf"}`]
	count := m[`occamy_request_duration_seconds_count{endpoint="POST /v1/runs"}`]
	if count == 0 || inf != count {
		t.Fatalf("request histogram +Inf %v vs _count %v", inf, count)
	}
}
