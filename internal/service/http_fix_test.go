package service

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestHTTPTraceAbsentIsClean404 pins the trace-endpoint fix: a done run
// whose result document carries no trace must draw a clean JSON 404 —
// never a 200 text/csv body with a JSON error stitched onto it (the
// old handler set the headers before checking the document).
func TestHTTPTraceAbsentIsClean404(t *testing.T) {
	s, srv := startServer(t, Config{Workers: 1})

	var st JobStatus
	if code := post(t, srv.URL+"/v1/runs?name=quickstart&scale=quick", "", &st); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	view := awaitHTTP(t, srv.URL, st.ID)
	if view.State != JobDone {
		t.Fatalf("run ended %s: %s", view.State, view.Error)
	}

	// Re-home a traceless variant of the result in the cache, then
	// resubmit: the cache hit births a done job whose document has no
	// trace — exactly the state the old handler corrupted.
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(view.Result, &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["trace"]; !ok {
		t.Fatal("precondition: quickstart result should carry a trace")
	}
	delete(doc, "trace")
	traceless, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	s.cache.Put(view.Fingerprint, traceless)

	var hit JobStatus
	if code := post(t, srv.URL+"/v1/runs?name=quickstart&scale=quick", "", &hit); code != http.StatusAccepted {
		t.Fatalf("resubmit: status %d", code)
	}
	if !hit.Cached {
		t.Fatal("resubmission should have hit the doctored cache entry")
	}

	resp, err := http.Get(srv.URL + "/v1/runs/" + hit.ID + "/trace.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("traceless trace fetch: status %d, want 404; body %q", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("traceless trace fetch content-type %q, want application/json (not a started CSV)", ct)
	}
	var msg map[string]string
	if err := json.Unmarshal(body, &msg); err != nil || msg["error"] == "" {
		t.Fatalf("404 body is not a clean JSON error: %q", body)
	}
	if strings.Contains(string(body), "time_s") {
		t.Fatal("404 body contains CSV fragments: headers were committed before the trace check")
	}
}

// TestHTTPDrainingIs503WithRetryAfter pins the shutdown-taxonomy fix:
// submissions to a draining service are 503 + Retry-After (come back,
// a replacement will answer), distinguishable from queue-full's plain
// 503 and from internal errors' 500.
func TestHTTPDrainingIs503WithRetryAfter(t *testing.T) {
	s, srv := startServer(t, Config{Workers: 1})
	s.Close()

	check := func(path, body string) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("POST %s on a draining service: status %d, want 503", path, resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "1" {
			t.Fatalf("POST %s draining 503 Retry-After = %q, want \"1\"", path, ra)
		}
	}
	check("/v1/runs?name=quickstart&scale=quick", "")
	check("/v1/sweeps", `{"name":"quickstart","scale":"quick","axes":["policy.kind=dt,occamy"]}`)

	// Batch items carry the same distinction per item (no header — the
	// code rides in the item).
	var page struct {
		Runs []BatchItem `json:"runs"`
	}
	spec, err := CatalogSpec("quickstart", "quick")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if code := post(t, srv.URL+"/v1/batch", `{"specs":[`+string(raw)+`]}`, &page); code != http.StatusAccepted {
		t.Fatalf("batch on draining service: status %d, want 202 with per-item errors", code)
	}
	if len(page.Runs) != 1 || page.Runs[0].Code != http.StatusServiceUnavailable {
		t.Fatalf("draining batch item: %+v, want code 503", page.Runs)
	}
}

// TestHTTPQueueFullHasNoRetryAfter pins the other half of the
// taxonomy: a saturated queue is a plain 503 without Retry-After.
func TestHTTPQueueFullHasNoRetryAfter(t *testing.T) {
	_, srv := startServer(t, Config{Workers: 1, QueueDepth: 1})

	// Fill the worker and the single queue slot with paper-scale runs,
	// then overflow with unique specs (mutated seeds defeat the cache
	// and coalescing).
	spec, err := CatalogSpec("incast-storm-256", "paper")
	if err != nil {
		t.Fatal(err)
	}
	sawRefusal := false
	for seed := uint64(1); seed <= 10 && !sawRefusal; seed++ {
		sp := spec
		sp.Seed = seed
		body, err := sp.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			sawRefusal = true
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				t.Fatalf("queue-full 503 carries Retry-After %q; that header is the draining signal", ra)
			}
		} else if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submission %d: status %d", seed, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if !sawRefusal {
		t.Fatal("10 paper-scale submissions into a 1-worker/1-slot service never overflowed")
	}
}

// TestHTTPBatch pins the worker-side batch endpoint: one POST, many
// job IDs, per-item errors in request order, duplicates deduplicated by
// the cache/coalescing layer.
func TestHTTPBatch(t *testing.T) {
	s, srv := startServer(t, Config{Workers: 2})

	spec, err := CatalogSpec("quickstart", "quick")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	body := `{"specs":[` + string(raw) + `,{"bogus":true},` + string(raw) + `]}`

	var page struct {
		Runs []BatchItem `json:"runs"`
	}
	if code := post(t, srv.URL+"/v1/batch", body, &page); code != http.StatusAccepted {
		t.Fatalf("batch POST: status %d", code)
	}
	if len(page.Runs) != 3 {
		t.Fatalf("batch returned %d items, want 3", len(page.Runs))
	}
	if page.Runs[1].Job != nil || page.Runs[1].Code != http.StatusBadRequest {
		t.Fatalf("malformed item: %+v, want 400", page.Runs[1])
	}
	for _, i := range []int{0, 2} {
		if page.Runs[i].Job == nil {
			t.Fatalf("item %d errored: %s", i, page.Runs[i].Error)
		}
		if view := awaitHTTP(t, srv.URL, page.Runs[i].Job.ID); view.State != JobDone {
			t.Fatalf("item %d ended %s: %s", i, view.State, view.Error)
		}
	}
	// The duplicate coalesced onto the first (or hit its cache entry).
	c := s.Stats().Counters
	if c.Submitted != 2 {
		t.Fatalf("server counted %d submissions, want 2 (the bad spec never reaches Submit)", c.Submitted)
	}
	if c.Coalesced+c.CacheHits != 1 {
		t.Fatalf("duplicate spec neither coalesced nor cache-hit: %+v", c)
	}

	// Oversize and empty batches are refused outright.
	if code := post(t, srv.URL+"/v1/batch", `{"specs":[]}`, nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", code)
	}
}
