package service

import (
	"math"
	"time"

	"occamy/internal/metrics"
)

// Service-side SLO observability (GET /v1/stats)
//
// The client of a load test can only see submit-to-done latency from
// the outside; these stats expose what it can't: per-endpoint handler
// latency histograms, the queue and worker state at this instant, and
// the cumulative submission ledger. The ledger is designed to reconcile
// exactly with a load generator's client-side view:
//
//	submitted == cache_hits + coalesced + enqueued + refused
//	enqueued  == done + failed + canceled + queued + running
//
// (Both identities hold at any quiescent instant; mid-flight reads can
// be off by the jobs currently transitioning.)

// Counters is the cumulative submission ledger.
type Counters struct {
	// Submitted counts every validated Submit/SubmitSweep call.
	Submitted int64 `json:"submitted"`
	// CacheHits are submissions answered from the result cache (born
	// done, no simulation).
	CacheHits int64 `json:"cache_hits"`
	// Coalesced are submissions that joined an identical in-flight job.
	Coalesced int64 `json:"coalesced"`
	// Enqueued are submissions that became a real queued job.
	Enqueued int64 `json:"enqueued"`
	// Refused are submissions rejected for capacity (queue full).
	Refused int64 `json:"refused"`
	// Done/Failed/Canceled count terminal transitions of enqueued jobs.
	Done     int64 `json:"done"`
	Failed   int64 `json:"failed"`
	Canceled int64 `json:"canceled"`
}

// Stats is the GET /v1/stats document.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Workers       int     `json:"workers"`

	// QueueLen/QueueCap are the channel backlog; Queued/Running count
	// jobs in those ledger states right now.
	QueueLen int   `json:"queue_len"`
	QueueCap int   `json:"queue_cap"`
	Queued   int64 `json:"queued"`
	Running  int64 `json:"running"`

	// Utilization is the cumulative fraction of worker-seconds spent
	// simulating since the service started (0..1).
	Utilization float64 `json:"utilization"`

	Counters Counters `json:"counters"`

	// Endpoints maps HTTP route patterns to handler-latency summaries.
	Endpoints map[string]metrics.HistSnapshot `json:"endpoints"`

	Cache CacheStats `json:"cache"`
}

// endpointPatterns is the instrumented route set; Handler registers
// exactly these.
var endpointPatterns = []string{
	"GET /v1/scenarios",
	"GET /v1/scenarios/{name}",
	"POST /v1/runs",
	"GET /v1/runs",
	"GET /v1/runs/{id}",
	"GET /v1/runs/{id}/trace.csv",
	"DELETE /v1/runs/{id}",
	"POST /v1/sweeps",
	"POST /v1/batch",
	"GET /v1/cache",
	"GET /v1/stats",
	"GET /metrics",
}

// Stats snapshots the service's observability state.
func (s *Service) Stats() Stats {
	now := time.Now()
	s.mu.Lock()
	st := Stats{
		UptimeSeconds: now.Sub(s.started).Seconds(),
		Workers:       s.workers,
		QueueLen:      len(s.queue),
		QueueCap:      cap(s.queue),
		Counters:      s.counters,
	}
	busy := s.busyNanos
	for _, j := range s.jobs {
		switch j.state {
		case JobQueued:
			st.Queued++
		case JobRunning:
			st.Running++
			// Credit the in-progress slice of running jobs so utilization
			// doesn't sawtooth to zero between long completions.
			busy += now.Sub(j.started).Nanoseconds()
		}
	}
	s.mu.Unlock()

	if up := now.Sub(s.started).Nanoseconds(); up > 0 && s.workers > 0 {
		st.Utilization = math.Min(1, float64(busy)/float64(up*int64(s.workers)))
	}
	st.Endpoints = make(map[string]metrics.HistSnapshot, len(s.endpoints))
	for pat, h := range s.endpoints {
		if h.Count() > 0 {
			st.Endpoints[pat] = h.Snapshot()
		}
	}
	st.Cache = s.cache.Stats()
	return st
}
