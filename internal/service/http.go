package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"occamy/internal/scenario"
)

// HTTP API (v1)
//
//	GET    /v1/scenarios              catalog listing
//	GET    /v1/scenarios/{name}       exportable spec template (?scale=)
//	POST   /v1/runs                   submit a strict-JSON spec body
//	                                  (or ?name=<catalog>&scale= with an
//	                                  empty body) -> 202 {id, cached}
//	GET    /v1/runs                   list jobs
//	GET    /v1/runs/{id}              status + result document when done
//	GET    /v1/runs/{id}/trace.csv    occupancy trace CSV (?stride=N)
//	DELETE /v1/runs/{id}              cancel
//	POST   /v1/sweeps                 {spec|name, axes: ["path=v1,v2"]}
//	GET    /v1/cache                  cache stats
//	GET    /v1/stats                  service SLO stats (see stats.go)
//
// Spec parsing reuses scenario.ParseSpec, so the server is exactly as
// strict as the CLI: unknown fields, malformed durations, and invalid
// values are a 400 with the parser's message — never a panic (the fuzz
// test drives arbitrary bodies through POST /v1/runs to pin that).

// maxSpecBytes bounds a submitted spec body; real specs are a few KB.
const maxSpecBytes = 1 << 20

// Handler returns the service's HTTP API. Every route is wrapped in a
// latency-recording middleware feeding the per-endpoint histograms that
// GET /v1/stats reports.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, fn http.HandlerFunc) {
		h := s.endpoints[pattern]
		if h == nil {
			// A pattern missing from endpointPatterns is a programming
			// error; fail loudly in tests rather than silently dropping
			// its latency series.
			panic(fmt.Sprintf("service: route %q not in endpointPatterns", pattern))
		}
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			fn(w, r)
			h.Record(time.Since(start))
		})
	}
	handle("GET /v1/scenarios", s.handleScenarios)
	handle("GET /v1/scenarios/{name}", s.handleScenarioExport)
	handle("POST /v1/runs", s.handleSubmit)
	handle("GET /v1/runs", s.handleJobs)
	handle("GET /v1/runs/{id}", s.handleJob)
	handle("GET /v1/runs/{id}/trace.csv", s.handleTrace)
	handle("DELETE /v1/runs/{id}", s.handleCancel)
	handle("POST /v1/sweeps", s.handleSweep)
	handle("GET /v1/cache", s.handleCache)
	handle("GET /v1/stats", s.handleStats)
	return mux
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// scenarioInfo is one catalog row of GET /v1/scenarios.
type scenarioInfo struct {
	Name  string `json:"name"`
	Title string `json:"title"`
	// Kind is "spec" for exportable declarative entries, "figure" for
	// the bespoke figure harnesses (not runnable over the API).
	Kind string `json:"kind"`
}

func (s *Service) handleScenarios(w http.ResponseWriter, r *http.Request) {
	var out []scenarioInfo
	for _, name := range scenario.Names() {
		sc, _ := scenario.Get(name)
		kind := "spec"
		if sc.Tables != nil {
			kind = "figure"
		}
		out = append(out, scenarioInfo{Name: name, Title: sc.Spec.Title, Kind: kind})
	}
	writeJSON(w, http.StatusOK, map[string]any{"scenarios": out})
}

// catalogSpec resolves a catalog entry at a scale; the error messages
// double as HTTP bodies.
func catalogSpec(name, scaleStr string) (scenario.Spec, error) {
	scale, err := scenario.ParseScale(scaleStr)
	if err != nil {
		return scenario.Spec{}, err
	}
	sc, ok := scenario.Get(name)
	if !ok {
		return scenario.Spec{}, fmt.Errorf("unknown scenario %q", name)
	}
	if sc.Tables != nil {
		return scenario.Spec{}, fmt.Errorf("%s is a figure harness with bespoke tables; it has no spec", name)
	}
	return sc.SpecAt(scale), nil
}

func (s *Service) handleScenarioExport(w http.ResponseWriter, r *http.Request) {
	spec, err := catalogSpec(r.PathValue("name"), r.URL.Query().Get("scale"))
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	data, err := spec.Marshal()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

// readSpec extracts the submitted spec: a strict-JSON body, or — when
// the body is empty — a catalog name in the query string.
func readSpec(r *http.Request) (scenario.Spec, int, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		return scenario.Spec{}, http.StatusBadRequest, fmt.Errorf("reading body: %w", err)
	}
	if len(body) > maxSpecBytes {
		return scenario.Spec{}, http.StatusRequestEntityTooLarge, fmt.Errorf("spec body over %d bytes", maxSpecBytes)
	}
	if len(strings.TrimSpace(string(body))) == 0 {
		name := r.URL.Query().Get("name")
		if name == "" {
			return scenario.Spec{}, http.StatusBadRequest, fmt.Errorf("empty body and no ?name= catalog entry")
		}
		spec, err := catalogSpec(name, r.URL.Query().Get("scale"))
		if err != nil {
			return scenario.Spec{}, http.StatusNotFound, err
		}
		return spec, 0, nil
	}
	spec, err := scenario.ParseSpec(body)
	if err != nil {
		return scenario.Spec{}, http.StatusBadRequest, err
	}
	if scaleStr := r.URL.Query().Get("scale"); scaleStr != "" {
		scale, err := scenario.ParseScale(scaleStr)
		if err != nil {
			return scenario.Spec{}, http.StatusBadRequest, err
		}
		spec.Scale = scale
	}
	return spec, 0, nil
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, status, err := readSpec(r)
	if err != nil {
		httpError(w, status, "%v", err)
		return
	}
	st, err := s.Submit(spec)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Service) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"runs": s.Jobs()})
}

// jobView is the GET /v1/runs/{id} response: the status snapshot plus,
// once done, the raw result document.
type jobView struct {
	JobStatus
	Result json.RawMessage `json:"result,omitempty"`
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no run %s", id)
		return
	}
	view := jobView{JobStatus: st}
	if data, ok := s.Result(id); ok {
		view.Result = data
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	stride := 1
	if v := r.URL.Query().Get("stride"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "stride must be a positive integer, got %q", v)
			return
		}
		stride = n
	}
	doc, err := s.ResultDoc(id)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	if err := doc.WriteTraceCSV(w, stride); err != nil {
		// Headers are gone; all we can do is truncate mid-body. The "no
		// trace" case is the only expected one and hits before any write.
		httpError(w, http.StatusNotFound, "%v", err)
	}
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.Cancel(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no run %s", id)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// sweepRequest is the POST /v1/sweeps body: an inline spec or a catalog
// name, plus the axes in CLI syntax ("policy.alpha=1,2,4").
type sweepRequest struct {
	Name  string          `json:"name,omitempty"`
	Scale string          `json:"scale,omitempty"`
	Spec  json.RawMessage `json:"spec,omitempty"`
	Axes  []string        `json:"axes"`
}

func (s *Service) handleSweep(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil || len(body) > maxSpecBytes {
		httpError(w, http.StatusBadRequest, "bad sweep body")
		return
	}
	var req sweepRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "parsing sweep request: %v", err)
		return
	}
	var spec scenario.Spec
	switch {
	case len(req.Spec) > 0:
		spec, err = scenario.ParseSpec(req.Spec)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	case req.Name != "":
		spec, err = catalogSpec(req.Name, req.Scale)
		if err != nil {
			httpError(w, http.StatusNotFound, "%v", err)
			return
		}
	default:
		httpError(w, http.StatusBadRequest, "sweep request needs a spec or a catalog name")
		return
	}
	if len(req.Axes) == 0 {
		httpError(w, http.StatusBadRequest, "sweep request has no axes")
		return
	}
	axes := make([]scenario.SweepAxis, len(req.Axes))
	for i, a := range req.Axes {
		ax, err := scenario.ParseSweep(a)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		axes[i] = ax
	}
	st, err := s.SubmitSweep(spec, axes)
	if err != nil {
		// Capacity refusals are retryable (503); everything else —
		// including an over-cap grid — is a client error (400).
		status := http.StatusBadRequest
		if errors.Is(err, ErrQueueFull) {
			status = http.StatusServiceUnavailable
		}
		httpError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Service) handleCache(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cache.Stats())
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// encodeTableDoc marshals a table document compactly with a trailing
// newline (the sweep-result format).
func encodeTableDoc(d *scenario.TableDoc) ([]byte, error) {
	data, err := json.Marshal(d)
	if err != nil {
		return nil, fmt.Errorf("service: marshaling sweep table %q: %w", d.ID, err)
	}
	return append(data, '\n'), nil
}
