package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"occamy/internal/scenario"
)

// HTTP API (v1)
//
//	GET    /v1/scenarios              catalog listing
//	GET    /v1/scenarios/{name}       exportable spec template (?scale=)
//	POST   /v1/runs                   submit a strict-JSON spec body
//	                                  (or ?name=<catalog>&scale= with an
//	                                  empty body) -> 202 {id, cached}
//	GET    /v1/runs                   list jobs
//	GET    /v1/runs/{id}              status + result document when done
//	GET    /v1/runs/{id}/trace.csv    occupancy trace CSV (?stride=N)
//	DELETE /v1/runs/{id}              cancel
//	POST   /v1/sweeps                 {spec|name, axes: ["path=v1,v2"]}
//	POST   /v1/batch                  {specs: [spec, ...], scale?} ->
//	                                  202 {runs: [{job}|{error, code}]}
//	GET    /v1/cache                  cache stats
//	GET    /v1/stats                  service SLO stats (see stats.go)
//
// Spec parsing reuses scenario.ParseSpec, so the server is exactly as
// strict as the CLI: unknown fields, malformed durations, and invalid
// values are a 400 with the parser's message — never a panic (the fuzz
// test drives arbitrary bodies through POST /v1/runs to pin that).

// maxSpecBytes bounds a submitted spec body; real specs are a few KB.
const maxSpecBytes = 1 << 20

// Handler returns the service's HTTP API. Every route is wrapped in a
// middleware that records handler latency into the per-endpoint
// histograms GET /v1/stats and GET /metrics report, establishes the
// X-Occamy-Trace ID (minting one when absent) and echoes it on the
// response, and emits a debug-level structured request record.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, fn http.HandlerFunc) {
		h := s.endpoints[pattern]
		if h == nil {
			// A pattern missing from endpointPatterns is a programming
			// error; fail loudly in tests rather than silently dropping
			// its latency series.
			panic(fmt.Sprintf("service: route %q not in endpointPatterns", pattern))
		}
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			trace := EnsureTrace(r)
			w.Header().Set(TraceHeader, trace)
			sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
			fn(sw, r)
			d := time.Since(start)
			h.Record(d)
			s.logger.Debug("http",
				"method", r.Method, "route", pattern, "status", sw.status,
				"trace", trace, "dur_ms", durToMs(d))
		})
	}
	handle("GET /v1/scenarios", s.handleScenarios)
	handle("GET /v1/scenarios/{name}", s.handleScenarioExport)
	handle("POST /v1/runs", s.handleSubmit)
	handle("GET /v1/runs", s.handleJobs)
	handle("GET /v1/runs/{id}", s.handleJob)
	handle("GET /v1/runs/{id}/trace.csv", s.handleTrace)
	handle("DELETE /v1/runs/{id}", s.handleCancel)
	handle("POST /v1/sweeps", s.handleSweep)
	handle("POST /v1/batch", s.handleBatch)
	handle("GET /v1/cache", s.handleCache)
	handle("GET /v1/stats", s.handleStats)
	handle("GET /metrics", s.handleMetrics)
	return mux
}

// statusWriter captures the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// scenarioInfo is one catalog row of GET /v1/scenarios.
type scenarioInfo struct {
	Name  string `json:"name"`
	Title string `json:"title"`
	// Kind is "spec" for exportable declarative entries, "figure" for
	// the bespoke figure harnesses (not runnable over the API).
	Kind string `json:"kind"`
}

func (s *Service) handleScenarios(w http.ResponseWriter, r *http.Request) {
	var out []scenarioInfo
	for _, name := range scenario.Names() {
		sc, _ := scenario.Get(name)
		kind := "spec"
		if sc.Tables != nil {
			kind = "figure"
		}
		out = append(out, scenarioInfo{Name: name, Title: sc.Spec.Title, Kind: kind})
	}
	writeJSON(w, http.StatusOK, map[string]any{"scenarios": out})
}

// CatalogSpec resolves a catalog entry at a scale; the error messages
// double as HTTP bodies. Exported for the fleet router's sweep and
// batch handlers, which resolve catalog names with the same rules.
func CatalogSpec(name, scaleStr string) (scenario.Spec, error) {
	scale, err := scenario.ParseScale(scaleStr)
	if err != nil {
		return scenario.Spec{}, err
	}
	sc, ok := scenario.Get(name)
	if !ok {
		return scenario.Spec{}, fmt.Errorf("unknown scenario %q", name)
	}
	if sc.Tables != nil {
		return scenario.Spec{}, fmt.Errorf("%s is a figure harness with bespoke tables; it has no spec", name)
	}
	return sc.SpecAt(scale), nil
}

func (s *Service) handleScenarioExport(w http.ResponseWriter, r *http.Request) {
	spec, err := CatalogSpec(r.PathValue("name"), r.URL.Query().Get("scale"))
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	data, err := spec.Marshal()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

// ReadSpec extracts the submitted spec of a POST /v1/runs-shaped
// request: a strict-JSON body, or — when the body is empty — a catalog
// name in the query string. Exported so the fleet router parses
// submissions with exactly the service's strictness (same errors, same
// status codes) before routing them by fingerprint.
func ReadSpec(r *http.Request) (scenario.Spec, int, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		return scenario.Spec{}, http.StatusBadRequest, fmt.Errorf("reading body: %w", err)
	}
	if len(body) > maxSpecBytes {
		return scenario.Spec{}, http.StatusRequestEntityTooLarge, fmt.Errorf("spec body over %d bytes", maxSpecBytes)
	}
	if len(strings.TrimSpace(string(body))) == 0 {
		name := r.URL.Query().Get("name")
		if name == "" {
			return scenario.Spec{}, http.StatusBadRequest, fmt.Errorf("empty body and no ?name= catalog entry")
		}
		spec, err := CatalogSpec(name, r.URL.Query().Get("scale"))
		if err != nil {
			return scenario.Spec{}, http.StatusNotFound, err
		}
		return spec, 0, nil
	}
	spec, err := scenario.ParseSpec(body)
	if err != nil {
		return scenario.Spec{}, http.StatusBadRequest, err
	}
	if scaleStr := r.URL.Query().Get("scale"); scaleStr != "" {
		scale, err := scenario.ParseScale(scaleStr)
		if err != nil {
			return scenario.Spec{}, http.StatusBadRequest, err
		}
		spec.Scale = scale
	}
	return spec, 0, nil
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, status, err := ReadSpec(r)
	if err != nil {
		httpError(w, status, "%v", err)
		return
	}
	st, err := s.SubmitTraced(spec, r.Header.Get(TraceHeader))
	if err != nil {
		httpError(w, submitStatus(w, err), "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

// submitStatus maps a Submit/SubmitSweep error to its HTTP status and
// sets the Retry-After header where a backoff-and-retry is the right
// client move. Draining is 503 + Retry-After (this instance is going
// away; a router or LB should retry a peer shortly), queue-full a plain
// 503 (same instance, just saturated), and anything else — fingerprint
// failures and other internal surprises — a 500, never disguised as a
// capacity problem.
func submitStatus(w http.ResponseWriter, err error) int {
	switch {
	case errors.Is(err, ErrClosed):
		w.Header().Set("Retry-After", "1")
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrQueueFull):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (s *Service) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"runs": s.Jobs()})
}

// jobView is the GET /v1/runs/{id} response: the status snapshot plus,
// once done, the raw result document.
type jobView struct {
	JobStatus
	Result json.RawMessage `json:"result,omitempty"`
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no run %s", id)
		return
	}
	view := jobView{JobStatus: st}
	if data, ok := s.Result(id); ok {
		view.Result = data
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	stride := 1
	if v := r.URL.Query().Get("stride"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "stride must be a positive integer, got %q", v)
			return
		}
		stride = n
	}
	doc, err := s.ResultDoc(id)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	// Decide the status before committing to a 200 text/csv: a traceless
	// document (the run had no occupancy sampling) must be a clean 404,
	// never a JSON error appended to an already-started CSV body.
	if !doc.HasTrace() {
		httpError(w, http.StatusNotFound, "scenario %q: result document carries no trace", doc.Name)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	if err := doc.WriteTraceCSV(w, stride); err != nil {
		// Headers are gone, so this can only be a transport write failure;
		// truncating mid-body is all that's left (the client sees a short
		// read, not a corrupted-but-plausible CSV with JSON stitched on).
		return
	}
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.Cancel(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no run %s", id)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// sweepRequest is the POST /v1/sweeps body: an inline spec or a catalog
// name, plus the axes in CLI syntax ("policy.alpha=1,2,4").
type sweepRequest struct {
	Name  string          `json:"name,omitempty"`
	Scale string          `json:"scale,omitempty"`
	Spec  json.RawMessage `json:"spec,omitempty"`
	Axes  []string        `json:"axes"`
}

func (s *Service) handleSweep(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil || len(body) > maxSpecBytes {
		httpError(w, http.StatusBadRequest, "bad sweep body")
		return
	}
	var req sweepRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "parsing sweep request: %v", err)
		return
	}
	var spec scenario.Spec
	switch {
	case len(req.Spec) > 0:
		spec, err = scenario.ParseSpec(req.Spec)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	case req.Name != "":
		spec, err = CatalogSpec(req.Name, req.Scale)
		if err != nil {
			httpError(w, http.StatusNotFound, "%v", err)
			return
		}
	default:
		httpError(w, http.StatusBadRequest, "sweep request needs a spec or a catalog name")
		return
	}
	if len(req.Axes) == 0 {
		httpError(w, http.StatusBadRequest, "sweep request has no axes")
		return
	}
	axes := make([]scenario.SweepAxis, len(req.Axes))
	for i, a := range req.Axes {
		ax, err := scenario.ParseSweep(a)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		axes[i] = ax
	}
	st, err := s.SubmitSweepTraced(spec, axes, r.Header.Get(TraceHeader))
	if err != nil {
		// Capacity refusals are retryable (503; draining additionally
		// carries Retry-After); everything else — including an over-cap
		// grid — is a client error (400).
		status := http.StatusBadRequest
		if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrClosed) {
			status = submitStatus(w, err)
		}
		httpError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

// batchRequest is the POST /v1/batch body: many strict-JSON specs in
// one submission, with an optional batch-wide scale override.
type batchRequest struct {
	Specs []json.RawMessage `json:"specs"`
	Scale string            `json:"scale,omitempty"`
}

// BatchItem is one POST /v1/batch response entry, in request order:
// either the submitted job's status snapshot or that spec's error (with
// the HTTP status the same spec would have drawn from POST /v1/runs).
type BatchItem struct {
	Job   *JobStatus `json:"job,omitempty"`
	Error string     `json:"error,omitempty"`
	Code  int        `json:"code,omitempty"`
}

// maxBatchSpecs bounds one batch submission (the body size bound still
// applies on top).
const maxBatchSpecs = 512

func (s *Service) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil || len(body) > maxSpecBytes {
		httpError(w, http.StatusBadRequest, "bad batch body (max %d bytes)", maxSpecBytes)
		return
	}
	var req batchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "parsing batch request: %v", err)
		return
	}
	if len(req.Specs) == 0 {
		httpError(w, http.StatusBadRequest, "batch request has no specs")
		return
	}
	if len(req.Specs) > maxBatchSpecs {
		httpError(w, http.StatusBadRequest, "batch has %d specs (cap %d)", len(req.Specs), maxBatchSpecs)
		return
	}
	var scale scenario.Scale
	if req.Scale != "" {
		if scale, err = scenario.ParseScale(req.Scale); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	// One POST, many job IDs: each spec goes through the exact Submit
	// path a lone POST /v1/runs takes (cache hit / coalesce / enqueue /
	// refuse), and failures stay per-item so one bad spec doesn't void
	// the rest of the batch. Each item's job gets a ".N" child of the
	// batch trace, so the IDs stay distinct per spec yet grep back to
	// the one submission.
	trace := r.Header.Get(TraceHeader)
	items := make([]BatchItem, len(req.Specs))
	for i, raw := range req.Specs {
		spec, err := scenario.ParseSpec(raw)
		if err != nil {
			items[i] = BatchItem{Error: err.Error(), Code: http.StatusBadRequest}
			continue
		}
		if req.Scale != "" {
			spec.Scale = scale
		}
		st, err := s.SubmitTraced(spec, ChildTrace(trace, "", i))
		if err != nil {
			items[i] = BatchItem{Error: err.Error(), Code: batchCode(err)}
			continue
		}
		items[i] = BatchItem{Job: &st}
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"runs": items})
}

// batchCode is submitStatus without the header side effect (per-item
// errors can't set response headers).
func batchCode(err error) int {
	if errors.Is(err, ErrClosed) || errors.Is(err, ErrQueueFull) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

func (s *Service) handleCache(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cache.Stats())
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
