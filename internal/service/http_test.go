package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"occamy/internal/scenario"
)

// startServer runs the HTTP API over a fresh service.
func startServer(t testing.TB, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	s := newService(t, cfg)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, srv
}

// getJSON fetches and decodes a JSON endpoint.
func getJSON(t testing.TB, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// post sends a body and decodes the JSON response.
func post(t testing.TB, url, body string, v any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// awaitHTTP polls GET /v1/runs/{id} to a terminal state.
func awaitHTTP(t testing.TB, base, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var view jobView
		if code := getJSON(t, base+"/v1/runs/"+id, &view); code != http.StatusOK {
			t.Fatalf("GET run %s: %d", id, code)
		}
		if view.State.Terminal() {
			return view
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish over HTTP", id)
	return jobView{}
}

// The acceptance path, end to end over real HTTP: export a catalog
// spec, POST it, poll to done, decode the result — its metrics must
// match a direct CLI-style run byte-for-byte — then POST the identical
// spec again and get the cached result without re-simulating.
func TestHTTPRunEndToEnd(t *testing.T) {
	_, srv := startServer(t, Config{Workers: 2})

	// The catalog is served.
	var catalog struct {
		Scenarios []scenarioInfo `json:"scenarios"`
	}
	if code := getJSON(t, srv.URL+"/v1/scenarios", &catalog); code != http.StatusOK {
		t.Fatalf("GET /v1/scenarios: %d", code)
	}
	if len(catalog.Scenarios) < 10 {
		t.Fatalf("catalog lists %d scenarios", len(catalog.Scenarios))
	}

	// Export a template over HTTP — identical to the package's export.
	resp, err := http.Get(srv.URL + "/v1/scenarios/incast-storm-256?scale=quick")
	if err != nil {
		t.Fatal(err)
	}
	exported, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	spec := quickSpec(t, "incast-storm-256")
	want, err := spec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(exported) != string(want) {
		t.Error("HTTP export differs from Spec.Marshal")
	}

	// POST the exported spec body.
	var first JobStatus
	if code := post(t, srv.URL+"/v1/runs", string(exported), &first); code != http.StatusAccepted {
		t.Fatalf("POST /v1/runs: %d", code)
	}
	if first.Cached {
		t.Fatal("first POST reported cached")
	}
	view := awaitHTTP(t, srv.URL, first.ID)
	if view.State != JobDone {
		t.Fatalf("run ended %s (%s)", view.State, view.Error)
	}

	// Decoded result metrics match a direct run byte-for-byte.
	doc, err := scenario.DecodeResultDoc(view.Result)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scenario.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	directBytes, err := res.EncodeJSON(true)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := scenario.DecodeResultDoc(directBytes)
	if err != nil {
		t.Fatal(err)
	}
	if docSummary, directSummary := doc.Summary, direct.Summary; !tableEqual(docSummary, directSummary) {
		t.Errorf("HTTP result summary differs from direct run:\n%+v\nvs\n%+v", docSummary, directSummary)
	}
	// Byte-for-byte after normalizing the trailing newline the JSON
	// embedding strips from the raw message.
	if a, b := strings.TrimRight(string(view.Result), "\n"), strings.TrimRight(string(directBytes), "\n"); a != b {
		t.Error("HTTP result document differs from direct run bytes")
	}

	// The identical POST is a cache hit, done on arrival.
	var second JobStatus
	if code := post(t, srv.URL+"/v1/runs", string(exported), &second); code != http.StatusAccepted {
		t.Fatalf("second POST: %d", code)
	}
	if !second.Cached || second.State != JobDone {
		t.Fatalf("second POST not a cache hit: %+v", second)
	}

	// The trace endpoint serves CSV, full and strided.
	tr, err := http.Get(srv.URL + "/v1/runs/" + first.ID + "/trace.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("trace.csv: %d", tr.StatusCode)
	}
	csv, err := io.ReadAll(tr.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "time_s,") {
		t.Errorf("trace.csv does not look like a trace: %.80s", csv)
	}
	if code := getJSON(t, srv.URL+"/v1/runs/"+first.ID+"/trace.csv?stride=bogus", nil); code != http.StatusBadRequest {
		t.Errorf("bad stride: %d, want 400", code)
	}
}

func tableEqual(a, b scenario.TableDoc) bool {
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	return string(aj) == string(bj)
}

// Catalog submission via query (?name=&scale=), used by the CI smoke.
func TestHTTPCatalogSubmit(t *testing.T) {
	_, srv := startServer(t, Config{Workers: 1})
	var st JobStatus
	if code := post(t, srv.URL+"/v1/runs?name=quickstart&scale=quick", "", &st); code != http.StatusAccepted {
		t.Fatalf("catalog POST: %d", code)
	}
	if view := awaitHTTP(t, srv.URL, st.ID); view.State != JobDone {
		t.Fatalf("catalog run ended %s (%s)", view.State, view.Error)
	}
	if code := post(t, srv.URL+"/v1/runs?name=no-such-scenario", "", nil); code != http.StatusNotFound {
		t.Errorf("unknown catalog name: %d, want 404", code)
	}
	if code := post(t, srv.URL+"/v1/runs", "", nil); code != http.StatusBadRequest {
		t.Errorf("empty body, no name: %d, want 400", code)
	}
	// Figure harnesses have no spec to run.
	if code := post(t, srv.URL+"/v1/runs?name=fig6-anomalies", "", nil); code != http.StatusNotFound {
		t.Errorf("figure harness submit: %d, want 404", code)
	}
}

// Malformed submissions are client errors with the parser's message,
// never 5xx, never a panic.
func TestHTTPBadRequests(t *testing.T) {
	_, srv := startServer(t, Config{Workers: 1})
	for name, body := range map[string]string{
		"not json":      "}{",
		"unknown field": `{"name":"x","bogus":1,"topology":{"kind":"single-switch"},"policy":{"kind":"dt"},"workloads":[{"kind":"background","load":0.5}]}`,
		"no name":       `{"topology":{"kind":"single-switch"},"policy":{"kind":"dt"},"workloads":[{"kind":"background","load":0.5}]}`,
		"no workloads":  `{"name":"x","topology":{"kind":"single-switch"},"policy":{"kind":"dt"},"workloads":[]}`,
		"bad policy":    `{"name":"x","topology":{"kind":"single-switch"},"policy":{"kind":"levitation"},"workloads":[{"kind":"background","load":0.5}]}`,
		"negative load": `{"name":"x","topology":{"kind":"single-switch"},"policy":{"kind":"dt"},"workloads":[{"kind":"background","load":-1}]}`,
		"trailing":      `{"name":"x","topology":{"kind":"single-switch"},"policy":{"kind":"dt"},"workloads":[{"kind":"background","load":0.5}]}[]`,
		"array":         `[1,2,3]`,
		"huge dst_port": `{"name":"x","topology":{"kind":"single-switch"},"policy":{"kind":"dt"},"workloads":[{"kind":"cbr","rate_bps":1e9,"dst_port":999}]}`,
	} {
		var errBody map[string]string
		code := post(t, srv.URL+"/v1/runs", body, &errBody)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
		if errBody["error"] == "" {
			t.Errorf("%s: no error message in response", name)
		}
	}
	// Unknown run / trace / cancel ids are 404s.
	if code := getJSON(t, srv.URL+"/v1/runs/r999", nil); code != http.StatusNotFound {
		t.Errorf("unknown run: %d", code)
	}
	if code := getJSON(t, srv.URL+"/v1/runs/r999/trace.csv", nil); code != http.StatusNotFound {
		t.Errorf("unknown trace: %d", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/runs/r999", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown cancel: %d", resp.StatusCode)
	}
}

// Sweeps over HTTP: grid table equals the CLI sweep, bad requests 400.
func TestHTTPSweep(t *testing.T) {
	_, srv := startServer(t, Config{Workers: 2})
	var st JobStatus
	body := `{"name":"burst-absorb","scale":"quick","axes":["policy.kind=dt,occamy"]}`
	if code := post(t, srv.URL+"/v1/sweeps", body, &st); code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps: %d", code)
	}
	view := awaitHTTP(t, srv.URL, st.ID)
	if view.State != JobDone {
		t.Fatalf("sweep ended %s (%s)", view.State, view.Error)
	}
	var tab scenario.TableDoc
	if err := json.Unmarshal(view.Result, &tab); err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Errorf("sweep table has %d rows, want 2", len(tab.Rows))
	}
	for name, bad := range map[string]string{
		"no axes":       `{"name":"burst-absorb"}`,
		"bad axis":      `{"name":"burst-absorb","axes":["nonsense"]}`,
		"unknown field": `{"name":"burst-absorb","axes":["policy.gravity=1,2"]}`,
		"not json":      `{{`,
	} {
		if code := post(t, srv.URL+"/v1/sweeps", bad, nil); code != http.StatusBadRequest {
			t.Errorf("sweep %s: %d, want 400", name, code)
		}
	}
}

// FuzzPostRun drives arbitrary bodies through the submission handler:
// the server must never panic, and anything scenario.ParseSpec rejects
// must come back 4xx. Seeded with every exportable catalog entry (valid
// specs exercise the accept path, which the fuzzer then mutates into
// near-valid garbage) plus ParseSpec's own corner cases.
func FuzzPostRun(f *testing.F) {
	for _, name := range scenario.Names() {
		sc, _ := scenario.Get(name)
		if sc.Tables != nil {
			continue
		}
		data, err := sc.SpecAt(scenario.ScaleQuick).Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"name":"x","bogus":true}`))
	f.Add([]byte(`[{}]`))
	f.Add([]byte(`nul`))
	f.Add([]byte(``))
	// Malformed fault blocks must come back 4xx, never 5xx.
	f.Add([]byte(`{"name":"x","topology":{"kind":"single-switch"},"policy":{"kind":"dt"},` +
		`"workloads":[{"kind":"background","load":0.5}],"faults":{"all":{"loss_prob":7}}}`))
	f.Add([]byte(`{"name":"x","faults":{"spine-core":{"loss_prob":0.1}}}`))
	f.Add([]byte(`{"name":"x","faults":{"all":{"jitter_max":"-4us"}}}`))

	s, err := New(Config{Workers: 1, QueueDepth: 64})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(s.Close)
	h := s.Handler()

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/runs", strings.NewReader(string(body)))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req) // must not panic, whatever the body
		code := rec.Code
		_, parseErr := scenario.ParseSpec(body)
		switch {
		case parseErr == nil && len(strings.TrimSpace(string(body))) > 0:
			// A spec the parser accepts must be accepted or refused only
			// for capacity (full queue), never as malformed.
			if code != http.StatusAccepted && code != http.StatusServiceUnavailable {
				t.Fatalf("valid spec rejected with %d: %.120s", code, body)
			}
		case code >= 500:
			t.Fatalf("server error %d on malformed body: %.120s", code, body)
		}
	})
}

// An over-cap sweep grid is a 400 (client error), not a 503: retrying
// it cannot succeed, the grid itself is too big.
func TestHTTPSweepCap(t *testing.T) {
	_, srv := startServer(t, Config{Workers: 1, MaxSweepPoints: 4})

	var errBody map[string]string
	code := post(t, srv.URL+"/v1/sweeps",
		`{"name":"burst-absorb","axes":["policy.kind=dt,occamy","policy.alpha=1,2,4"]}`,
		&errBody)
	if code != http.StatusBadRequest {
		t.Fatalf("6-point grid under cap 4: status %d, want 400", code)
	}
	if !strings.Contains(errBody["error"], "grid") {
		t.Fatalf("error body %q does not mention the grid cap", errBody["error"])
	}

	var st JobStatus
	if code := post(t, srv.URL+"/v1/sweeps",
		`{"name":"burst-absorb","axes":["policy.kind=dt,occamy"]}`, &st); code != http.StatusAccepted {
		t.Fatalf("2-point grid refused: status %d", code)
	}
	awaitHTTP(t, srv.URL, st.ID)
}

// GET /v1/stats serves the SLO snapshot: counters that reconcile,
// per-endpoint latency histograms, and gauges that drain with the work.
func TestHTTPStats(t *testing.T) {
	_, srv := startServer(t, Config{Workers: 2})

	var st JobStatus
	if code := post(t, srv.URL+"/v1/runs?name=burst-absorb&scale=quick", "", &st); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	awaitHTTP(t, srv.URL, st.ID)
	// Resubmit: a counted cache hit.
	if code := post(t, srv.URL+"/v1/runs?name=burst-absorb&scale=quick", "", &st); code != http.StatusAccepted {
		t.Fatalf("resubmit: status %d", code)
	}

	var stats Stats
	if code := getJSON(t, srv.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("GET /v1/stats: status %d", code)
	}
	c := stats.Counters
	if c.Submitted != 2 || c.CacheHits != 1 || c.Enqueued != 1 || c.Done != 1 {
		t.Fatalf("counters %+v, want submitted 2 / hits 1 / enqueued 1 / done 1", c)
	}
	if got := c.CacheHits + c.Coalesced + c.Enqueued + c.Refused; got != c.Submitted {
		t.Fatalf("submission identity broken: %+v", c)
	}
	if stats.Workers != 2 || stats.QueueCap <= 0 {
		t.Fatalf("pool shape %+v", stats)
	}
	if stats.Queued != 0 || stats.Running != 0 {
		t.Fatalf("gauges not drained: queued %d running %d", stats.Queued, stats.Running)
	}
	if stats.UptimeSeconds <= 0 {
		t.Fatalf("uptime %v", stats.UptimeSeconds)
	}
	ep, ok := stats.Endpoints["POST /v1/runs"]
	if !ok || ep.Count != 2 {
		t.Fatalf("POST /v1/runs histogram %+v (present %v), want count 2", ep, ok)
	}
	if ep.P50Ms < 0 || ep.P99Ms < ep.P50Ms {
		t.Fatalf("histogram quantiles broken: %+v", ep)
	}
	// Untouched endpoints are omitted, not zero-filled.
	if _, ok := stats.Endpoints["DELETE /v1/runs/{id}"]; ok {
		t.Fatal("never-hit endpoint present in stats")
	}
}
