package service

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strconv"
)

// X-Occamy-Trace propagation
//
// One trace ID follows a request through the stack: the first tier to
// see a request without the header mints an ID, every response echoes
// it, and asynchronous work it creates (jobs, fan-out sub-requests)
// carries it — the fleet router appends ".N" child suffixes per sweep
// grid point and ".w<shard>" per batch sub-batch, so a sweep can be
// followed from router submission through every shard's job ledger to
// reassembly with a single grep.

// TraceHeader is the propagation header.
const TraceHeader = "X-Occamy-Trace"

// maxTraceLen bounds an accepted trace ID; minted roots are 16 hex
// chars and each fan-out hop appends a short suffix, so a conforming ID
// stays far under this. Oversize or malformed inbound values are
// replaced with a fresh root rather than rejected — tracing is
// observability, not validation, and must never fail a request.
const maxTraceLen = 128

// EnsureTrace returns the request's trace ID, minting a fresh one if
// the header is absent or malformed, and stamps the result back onto
// the request headers so downstream handler code reads one canonical
// value. The response echo is the caller's job (the Handler middleware
// sets it on every instrumented route).
func EnsureTrace(r *http.Request) string {
	t := r.Header.Get(TraceHeader)
	if !validTrace(t) {
		t = MintTrace()
		r.Header.Set(TraceHeader, t)
	}
	return t
}

// MintTrace generates a fresh root trace ID: 8 random bytes, hex.
func MintTrace() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero ID beats
		// a panic on a pure-observability path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ChildTrace derives the n-th fan-out child of a trace ID ("abc" →
// "abc.3"); kind distinguishes sibling namespaces (sweep grid points
// use "", batch shard groups "w").
func ChildTrace(trace, kind string, n int) string {
	return trace + "." + kind + strconv.Itoa(n)
}

// validTrace accepts IDs built from the minted alphabet plus the
// fan-out separators: alphanumerics, '.', '_', '-'.
func validTrace(t string) bool {
	if t == "" || len(t) > maxTraceLen {
		return false
	}
	for i := 0; i < len(t); i++ {
		c := t[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}
