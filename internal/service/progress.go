package service

import (
	"math"
	"time"

	"occamy/internal/scenario"
)

// Live run progress
//
// The scenario engine loops publish deterministic samples (virtual
// clock, processed-event count) at every chunk boundary; this file is
// the other half of that split: it reads the wall clock, derives the
// rates, and publishes the combined snapshot onto the job's atomic
// pointer, where status polls read it lock-free. Keeping the wall-clock
// reads here — the service layer, outside the deterministic core — is
// what lets the detrand/nogoroutine gates keep passing over scenario
// (pinned by internal/lint/testdata fixtures).

// progressSample is the internal snapshot a running job publishes.
type progressSample struct {
	simNow   float64 // virtual seconds completed
	simTotal float64 // nominal horizon, virtual seconds (warmup+duration)
	events   uint64  // cumulative engine events processed
	wall     time.Duration
	// Sweep jobs report point-granular progress instead of a virtual
	// clock: pointsTotal > 0 marks a sweep sample.
	pointsDone  int
	pointsTotal int
}

// Progress is the live-progress block of a JobStatus: how far a running
// job has gotten and how fast it is simulating. All fields derive from
// one atomic sample, so a poll never sees a half-updated snapshot.
type Progress struct {
	// Fraction is completion in [0,1]: virtual time over the nominal
	// horizon for runs (clamped — gated scenarios may overrun the
	// horizon chasing stragglers), grid points done over grid size for
	// sweeps. Forced to 1 once the job is done, so pollers can treat it
	// as monotone non-decreasing ending at 1.
	Fraction float64 `json:"fraction"`
	// SimSeconds/SimTotalSeconds are the virtual clock and the nominal
	// horizon (run jobs; zero for sweeps).
	SimSeconds      float64 `json:"sim_seconds,omitempty"`
	SimTotalSeconds float64 `json:"sim_total_seconds,omitempty"`
	// Events is the cumulative processed-event count — the numerator of
	// the ROADMAP headline metric.
	Events uint64 `json:"events,omitempty"`
	// WallSeconds is wall-clock time since the job started running.
	WallSeconds float64 `json:"wall_seconds"`
	// EventsPerSec and SimPerWall are the derived rates: simulated
	// events per wall second, and virtual seconds per wall second.
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	SimPerWall   float64 `json:"sim_per_wall,omitempty"`
	// PointsDone/PointsTotal are sweep grid progress (sweep jobs only).
	PointsDone  int `json:"points_done,omitempty"`
	PointsTotal int `json:"points_total,omitempty"`
}

// runProgressFunc builds the scenario.ProgressFunc a run job publishes
// through: it stamps each deterministic sample with the wall clock and
// stores it atomically. Called from the job's own worker goroutine.
func (j *Job) runProgressFunc() scenario.ProgressFunc {
	started := time.Now()
	return func(p scenario.RunProgress) {
		j.progress.Store(&progressSample{
			simNow:   p.SimNow.Seconds(),
			simTotal: p.SimHorizon.Seconds(),
			events:   p.Events,
			wall:     time.Since(started),
		})
	}
}

// sweepProgressFunc builds the pointDone hook a sweep job publishes
// through. Grid points complete concurrently under experiments.RunGrid;
// the swap loop below keeps the published done-count monotone without a
// lock.
func (j *Job) sweepProgressFunc(total int) func() {
	started := time.Now()
	return func() {
		for {
			prev := j.progress.Load()
			next := &progressSample{pointsTotal: total, pointsDone: 1, wall: time.Since(started)}
			if prev != nil {
				next.pointsDone = prev.pointsDone + 1
			}
			if j.progress.CompareAndSwap(prev, next) {
				return
			}
		}
	}
}

// gridPoints is the sweep grid size: the product of the axis value
// counts (axes validated and capped at submit time).
func gridPoints(axes []scenario.SweepAxis) int {
	points := 1
	for _, ax := range axes {
		if len(ax.Values) > 0 {
			points *= len(ax.Values)
		}
	}
	return points
}

// progressStatus renders the published sample for a JobStatus; the
// caller holds s.mu (the sample itself is read atomically — the lock
// only covers the state/timestamps consulted alongside it). nil until
// the run first reports, and nil forever for cache hits, which never
// run.
func (j *Job) progressStatus() *Progress {
	p := j.progress.Load()
	if p == nil {
		return nil
	}
	out := &Progress{
		SimSeconds:      p.simNow,
		SimTotalSeconds: p.simTotal,
		Events:          p.events,
		WallSeconds:     p.wall.Seconds(),
		PointsDone:      p.pointsDone,
		PointsTotal:     p.pointsTotal,
	}
	switch {
	case p.pointsTotal > 0:
		out.Fraction = float64(p.pointsDone) / float64(p.pointsTotal)
	case p.simTotal > 0:
		out.Fraction = math.Min(1, p.simNow/p.simTotal)
	}
	if j.state == JobDone {
		out.Fraction = 1
	}
	if w := p.wall.Seconds(); w > 0 {
		out.EventsPerSec = float64(p.events) / w
		out.SimPerWall = p.simNow / w
	}
	return out
}
