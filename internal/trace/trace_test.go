package trace

import (
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

func TestSparklineShape(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 0)
	if utf8.RuneCountInString(s) != 8 {
		t.Fatalf("len = %d runes", utf8.RuneCountInString(s))
	}
	// Monotone input: first glyph lowest, last glyph highest.
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Fatalf("sparkline = %q", s)
	}
}

func TestSparklineFlat(t *testing.T) {
	s := Sparkline([]float64{5, 5, 5}, 0)
	if s != "▁▁▁" {
		t.Fatalf("flat sparkline = %q", s)
	}
}

func TestSparklineEmpty(t *testing.T) {
	if Sparkline(nil, 10) != "" {
		t.Fatal("empty input produced output")
	}
}

func TestDownsample(t *testing.T) {
	in := make([]float64, 100)
	for i := range in {
		in[i] = float64(i)
	}
	out := Downsample(in, 10)
	if len(out) != 10 {
		t.Fatalf("len = %d", len(out))
	}
	// Bucket means must be increasing for increasing input.
	for i := 1; i < len(out); i++ {
		if out[i] <= out[i-1] {
			t.Fatalf("not monotone: %v", out)
		}
	}
	// No-op cases.
	if got := Downsample(in, 0); len(got) != 100 {
		t.Fatal("width 0 should not downsample")
	}
	if got := Downsample(in[:5], 10); len(got) != 5 {
		t.Fatal("short input should not be padded")
	}
}

// Property: downsampled output length is min(len, width) for width > 0,
// and every output value is within the input's range.
func TestDownsampleBounds(t *testing.T) {
	f := func(raw []uint8, w uint8) bool {
		if len(raw) == 0 || w == 0 {
			return true
		}
		in := make([]float64, len(raw))
		lo, hi := float64(raw[0]), float64(raw[0])
		for i, x := range raw {
			in[i] = float64(x)
			if in[i] < lo {
				lo = in[i]
			}
			if in[i] > hi {
				hi = in[i]
			}
		}
		out := Downsample(in, int(w))
		want := len(in)
		if int(w) < want {
			want = int(w)
		}
		if len(out) != want {
			return false
		}
		for _, x := range out {
			if x < lo-1e-9 || x > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPlotSharedScale(t *testing.T) {
	out := Plot([]Series{
		{Name: "low", Values: []float64{0, 0, 0}},
		{Name: "high", Values: []float64{10, 10, 10}},
	}, 0)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	// Shared scale: the low series renders at the bottom glyph, the
	// high series at the top glyph.
	if !strings.Contains(lines[0], "▁▁▁") {
		t.Fatalf("low line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "███") {
		t.Fatalf("high line = %q", lines[1])
	}
	if !strings.Contains(lines[0], "[0 .. 10]") {
		t.Fatalf("missing scale annotation: %q", lines[0])
	}
}

func TestWriteCSV(t *testing.T) {
	var buf strings.Builder
	err := WriteCSV(&buf, []float64{0, 0.001, 0.002}, []Series{
		{Name: "sw0", Values: []float64{0, 500, 1000}},
		{Name: "has,comma", Values: []float64{1, 2, 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want header + 3 rows", len(lines))
	}
	if lines[0] != "time_s,sw0,has_comma" {
		t.Fatalf("header = %q (commas in names must be sanitized)", lines[0])
	}
	if !strings.HasPrefix(lines[2], "0.001000000,500,2") {
		t.Fatalf("row 2 = %q", lines[2])
	}
	// Ragged input is an error, not silent misalignment.
	if err := WriteCSV(&buf, []float64{0, 1}, []Series{{Name: "x", Values: []float64{1}}}); err == nil {
		t.Fatal("ragged series accepted")
	}
}
