// Package trace renders time-series (queue lengths, thresholds) as
// compact ASCII sparklines and multi-series plots, so the figure
// harnesses can show the *shape* of Fig 3/11 style dynamics directly in
// terminal output.
package trace

import (
	"fmt"
	"io"
	"strings"
)

// sparkGlyphs are the eight block heights of a sparkline cell.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as one line of block glyphs, downsampling to
// at most width cells (0 = no limit). The scale is min..max of the data.
func Sparkline(values []float64, width int) string {
	if len(values) == 0 {
		return ""
	}
	v := Downsample(values, width)
	lo, hi := v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	var b strings.Builder
	for _, x := range v {
		idx := 0
		if hi > lo {
			idx = int((x - lo) / (hi - lo) * float64(len(sparkGlyphs)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkGlyphs) {
			idx = len(sparkGlyphs) - 1
		}
		b.WriteRune(sparkGlyphs[idx])
	}
	return b.String()
}

// Downsample reduces values to at most width points by bucket-averaging
// (width <= 0 returns the input unchanged).
func Downsample(values []float64, width int) []float64 {
	if width <= 0 || len(values) <= width {
		return values
	}
	out := make([]float64, width)
	for i := 0; i < width; i++ {
		lo := i * len(values) / width
		hi := (i + 1) * len(values) / width
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, x := range values[lo:hi] {
			sum += x
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

// Series is one named curve for a Plot.
type Series struct {
	Name   string
	Values []float64
}

// WriteCSV writes aligned time series as CSV: a header line
// "time_s,<name>,<name>,..." then one row per sample. Every series must
// have exactly len(times) values.
func WriteCSV(w io.Writer, times []float64, series []Series) error {
	cols := make([]string, 0, len(series)+1)
	cols = append(cols, "time_s")
	for _, s := range series {
		if len(s.Values) != len(times) {
			return fmt.Errorf("trace: series %q has %d values for %d timestamps", s.Name, len(s.Values), len(times))
		}
		cols = append(cols, strings.ReplaceAll(s.Name, ",", "_"))
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	row := make([]string, len(series)+1)
	for i, t := range times {
		row[0] = fmt.Sprintf("%.9f", t)
		for j, s := range series {
			row[j+1] = fmt.Sprintf("%g", s.Values[i])
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Plot renders several series as labeled sparklines on a shared scale,
// one per line, with min/max annotations:
//
//	q1_long   ▁▁▂▃▅▆▇███▇▆▅  [0 .. 960000]
func Plot(series []Series, width int) string {
	// Shared scale across all series so curves are comparable.
	lo, hi := 0.0, 0.0
	first := true
	for _, s := range series {
		for _, x := range s.Values {
			if first {
				lo, hi, first = x, x, false
				continue
			}
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
	}
	nameW := 0
	for _, s := range series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	var b strings.Builder
	for _, s := range series {
		v := Downsample(s.Values, width)
		fmt.Fprintf(&b, "%-*s  ", nameW, s.Name)
		for _, x := range v {
			idx := 0
			if hi > lo {
				idx = int((x - lo) / (hi - lo) * float64(len(sparkGlyphs)-1))
			}
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkGlyphs) {
				idx = len(sparkGlyphs) - 1
			}
			b.WriteRune(sparkGlyphs[idx])
		}
		fmt.Fprintf(&b, "  [%.3g .. %.3g]\n", lo, hi)
	}
	return b.String()
}
