package switchsim

import (
	"testing"

	"occamy/internal/core"
	"occamy/internal/pkt"
	"occamy/internal/sim"
)

// TestHeadDropSurvivesRecyclingHook: a DropHook that returns expelled
// packets to a pkt.Pool zeroes them in place; HeadDrop must still report
// the true packet size (the expulsion engine's ExpelledBytes accounting
// depends on it).
func TestHeadDropSurvivesRecyclingHook(t *testing.T) {
	eng := sim.NewEngine()
	occ := core.Config{Alpha: 8}
	sw := New("hd", eng, Config{
		Ports: 2, ClassesPerPort: 1, BufferBytes: 64_000,
		Policy: core.New(occ), Occamy: &occ,
	})
	for i := 0; i < 2; i++ {
		sw.AttachPort(i, 1e9, 0, func(*pkt.Packet) {})
	}
	sw.SetRouter(func(p *pkt.Packet) int { return int(p.Dst) })

	pool := pkt.NewPool()
	sw.DropHook = func(p *pkt.Packet, q int, r DropReason) { pool.Put(p) }

	const size = 1000
	for i := 0; i < 10; i++ {
		sw.Receive(&pkt.Packet{ID: uint64(i + 1), Dst: 0, Size: size})
	}
	bytes, cells, ok := sw.HeadDrop(0)
	if !ok {
		t.Fatal("HeadDrop failed on a backlogged queue")
	}
	if bytes != size {
		t.Fatalf("HeadDrop reported %d bytes, want %d (packet recycled before the size was read?)", bytes, size)
	}
	if want := sw.Pool().CellsFor(size); cells != want {
		t.Fatalf("HeadDrop reported %d cells, want %d", cells, want)
	}
}
