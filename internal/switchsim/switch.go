// Package switchsim models an on-chip shared-memory switch: a traffic
// manager with a cell-structured shared buffer (internal/cellmem),
// pluggable buffer management (internal/bm, internal/core), per-port
// egress schedulers, and ECN marking. It is the substrate for every
// experiment in the paper: the P4/Tofino prototype scenarios, the DPDK
// software switch, and the switches inside the leaf–spine simulations.
package switchsim

import (
	"fmt"

	"occamy/internal/bm"
	"occamy/internal/cellmem"
	"occamy/internal/core"
	"occamy/internal/pkt"
	"occamy/internal/sim"
)

// DropReason classifies packet losses for the statistics hooks.
type DropReason int

const (
	// DropAdmission: the BM policy rejected the arriving packet.
	DropAdmission DropReason = iota
	// DropNoMemory: the policy admitted it but the cell pool was
	// physically exhausted (cell-rounding slack).
	DropNoMemory
	// DropExpelled: a preemptive policy head-dropped a buffered packet.
	DropExpelled
)

func (r DropReason) String() string {
	switch r {
	case DropAdmission:
		return "admission"
	case DropNoMemory:
		return "nomem"
	default:
		return "expelled"
	}
}

// Router maps an arriving packet to its egress port. The traffic class
// (queue within the port) is the packet's Priority field.
type Router func(p *pkt.Packet) (port int)

// Config describes a switch.
type Config struct {
	// Ports is the number of egress ports.
	Ports int
	// ClassesPerPort is the number of traffic-class queues per port.
	ClassesPerPort int
	// BufferBytes is the shared buffer capacity. The cell pool is sized
	// as BufferBytes/CellBytes cells.
	BufferBytes int
	// CellBytes is the buffer cell size; 0 defaults to 200 (the paper's
	// prototypes).
	CellBytes int
	// Policy is the admission policy (DT, ABM, Occamy, Pushout, ...).
	Policy bm.Policy
	// Occamy, when non-nil, enables the reactive expulsion engine with
	// this configuration. TokenRate 0 is replaced by the switch's
	// aggregate memory bandwidth in cells/second.
	Occamy *core.Config
	// ECNThresholdBytes enables ECN marking when a queue exceeds this
	// length at enqueue. 0 disables marking.
	ECNThresholdBytes int
	// Scheduler selects the per-port discipline across classes.
	Scheduler SchedKind
	// DRRQuantum is the DRR credit per visit; 0 defaults to 2×1514.
	DRRQuantum int
}

// Stats aggregates switch-level counters.
type Stats struct {
	RxPackets      int64
	TxPackets      int64
	TxBytes        int64
	DropsAdmission int64
	DropsNoMemory  int64
	DropsExpelled  int64
	ECNMarked      int64
}

// Drops returns total losses of arriving packets (not expulsions).
func (s Stats) Drops() int64 { return s.DropsAdmission + s.DropsNoMemory }

// PortStats aggregates egress-side counters for one port: transmissions
// out of it, and losses/marks of packets destined to it. (Rx has no
// per-port breakdown — the switch model routes on arrival, so arrivals
// are only attributable to an egress queue.)
type PortStats struct {
	TxPackets      int64
	TxBytes        int64
	DropsAdmission int64
	DropsNoMemory  int64
	DropsExpelled  int64
	ECNMarked      int64
}

// Drops returns the port's total arrival losses (not expulsions).
func (s PortStats) Drops() int64 { return s.DropsAdmission + s.DropsNoMemory }

// QueueStats aggregates egress-side counters for one (port, class)
// queue: transmissions out of it, and losses/marks of packets destined
// to it. Summed over a port's classes they reproduce the PortStats
// fields exactly, the same way PortStats sums to Stats (the scenario
// property tests assert the whole chain).
type QueueStats struct {
	TxPackets      int64
	TxBytes        int64
	DropsAdmission int64
	DropsNoMemory  int64
	DropsExpelled  int64
	ECNMarked      int64
}

// Drops returns the queue's total arrival losses (not expulsions).
func (s QueueStats) Drops() int64 { return s.DropsAdmission + s.DropsNoMemory }

// classQueue is one traffic-class queue: the PD-list in cell memory plus
// the in-lockstep packet metadata and the ABM drain-rate estimator.
type classQueue struct {
	cells *cellmem.Queue
	meta  fifo[*pkt.Packet]
	prio  int
	drain *rateMeter
}

// port is one egress port: a link (rate + propagation + sink) and the
// per-class queues. It implements sim.Handler for its two per-packet
// events — tx-done (nil arg) and far-end delivery (*pkt.Packet arg) — so
// the transmit path schedules without closure allocations.
type port struct {
	id      int
	sw      *Switch
	rateBps float64
	prop    sim.Duration
	sink    func(*pkt.Packet)
	busy    bool
	classes []*classQueue
	sched   scheduler
}

// OnEvent implements sim.Handler: a packet arg is a delivery at the far
// end of the link; a nil arg marks the end of serialization, freeing the
// link for the next packet.
func (pt *port) OnEvent(arg any) {
	if p, ok := arg.(*pkt.Packet); ok {
		pt.sink(p)
		return
	}
	pt.busy = false
	pt.sw.tryTransmit(pt)
}

// Switch is a shared-memory switch instance.
type Switch struct {
	name     string
	eng      *sim.Engine
	cfg      Config
	pool     *cellmem.Pool
	ports    []*port
	flat     []*classQueue // all queues, indexed port*ClassesPerPort+class
	policy   bm.Policy
	preempt  core.Preemptor      // non-nil when policy can make room at admission
	preemptQ core.QueuePreemptor // arrival-queue-aware variant (POT, QPO)
	occ      *core.Engine        // non-nil when Occamy expulsion is enabled
	router   Router

	totalBytes int // sum of queue lengths (packet bytes, not cell-rounded)
	stats      Stats
	portStats  []PortStats
	queueStats []QueueStats // indexed port*ClassesPerPort+class

	// Memory-bandwidth meter: cell operations (reads+writes) per second,
	// for the Fig 7(b) utilization measurement.
	memBW *rateMeter

	// DropHook, when set, observes every loss (arrival drops and
	// expulsions). Experiments use it for loss-rate and utilization-on-
	// drop measurements.
	DropHook func(p *pkt.Packet, q int, reason DropReason)
	// MarkHook, when set, observes ECN marks.
	MarkHook func(p *pkt.Packet, q int)
}

// New builds a switch. Ports must then be attached with AttachPort, and
// a Router installed with SetRouter, before traffic arrives.
func New(name string, eng *sim.Engine, cfg Config) *Switch {
	if cfg.Ports <= 0 || cfg.ClassesPerPort <= 0 {
		panic("switchsim: need at least one port and one class")
	}
	if cfg.BufferBytes <= 0 {
		panic("switchsim: BufferBytes must be positive")
	}
	if cfg.CellBytes == 0 {
		cfg.CellBytes = 200
	}
	if cfg.Policy == nil {
		panic("switchsim: Policy is required")
	}
	s := &Switch{
		name: name,
		eng:  eng,
		cfg:  cfg,
		pool: cellmem.New(cellmem.Config{
			CellSize: cfg.CellBytes,
			NumCells: (cfg.BufferBytes + cfg.CellBytes - 1) / cfg.CellBytes,
		}),
		policy: cfg.Policy,
		memBW:  newRateMeter(20 * sim.Microsecond),
	}
	if p, ok := cfg.Policy.(core.Preemptor); ok {
		s.preempt = p
	}
	if p, ok := cfg.Policy.(core.QueuePreemptor); ok {
		s.preemptQ = p
	}
	s.portStats = make([]PortStats, cfg.Ports)
	s.queueStats = make([]QueueStats, cfg.Ports*cfg.ClassesPerPort)
	s.ports = make([]*port, cfg.Ports)
	for i := range s.ports {
		pt := &port{id: i, sw: s, sched: newScheduler(cfg.Scheduler, cfg.ClassesPerPort, cfg.DRRQuantum)}
		pt.classes = make([]*classQueue, cfg.ClassesPerPort)
		for c := range pt.classes {
			cq := &classQueue{
				cells: cellmem.NewQueue(s.pool),
				prio:  c,
				drain: newRateMeter(20 * sim.Microsecond),
			}
			pt.classes[c] = cq
			s.flat = append(s.flat, cq)
		}
		s.ports[i] = pt
	}
	return s
}

// AttachPort wires port i to a link: egress rate in bits/sec,
// propagation delay, and the receiver's delivery function. All ports
// must be attached before traffic arrives: the Occamy expulsion engine
// is derived exactly once, on first use, with a token rate computed
// from every attached port.
func (s *Switch) AttachPort(i int, rateBps float64, prop sim.Duration, sink func(*pkt.Packet)) {
	if rateBps <= 0 {
		panic("switchsim: port rate must be positive")
	}
	if s.occ != nil {
		panic("switchsim: AttachPort after the expulsion engine was finalized")
	}
	p := s.ports[i]
	p.rateBps = rateBps
	p.prop = prop
	p.sink = sink
}

// ensureExpulsion derives the Occamy expulsion engine on first use and
// returns it (nil when expulsion is disabled). Deriving lazily — rather
// than on every AttachPort — means the token rate reflects the
// aggregate memory bandwidth of *all* attached ports, and the engine's
// token/arbiter/stats state is never rebuilt and discarded mid-wiring.
func (s *Switch) ensureExpulsion() *core.Engine {
	if s.occ == nil && s.cfg.Occamy != nil {
		occCfg := *s.cfg.Occamy
		if occCfg.TokenRate == 0 {
			total := 0.0
			for _, pt := range s.ports {
				total += pt.rateBps
			}
			occCfg.TokenRate = total / 8 / float64(s.cfg.CellBytes)
		}
		s.occ = core.NewEngine(s, occCfg)
	}
	return s.occ
}

// SetRouter installs the egress-port lookup.
func (s *Switch) SetRouter(r Router) { s.router = r }

// Name returns the switch's name (for experiment output).
func (s *Switch) Name() string { return s.name }

// Stats returns a snapshot of the counters.
func (s *Switch) Stats() Stats { return s.stats }

// Pool exposes the cell pool (tests assert on its meters).
func (s *Switch) Pool() *cellmem.Pool { return s.pool }

// NumPorts returns the egress port count.
func (s *Switch) NumPorts() int { return len(s.ports) }

// PortStats returns a snapshot of port i's egress counters. Summed over
// all ports they reproduce the switch-level Stats tx/drop/mark fields
// exactly (the scenario property tests assert it).
func (s *Switch) PortStats(i int) PortStats { return s.portStats[i] }

// QueueStats returns a snapshot of queue q's egress counters (flat
// index port*ClassesPerPort+class). Summed over a port's classes they
// reproduce that port's PortStats tx/drop/mark fields exactly.
func (s *Switch) QueueStats(q int) QueueStats { return s.queueStats[q] }

// PortOccupancy returns the bytes currently buffered for egress port i
// across all its traffic classes.
func (s *Switch) PortOccupancy(i int) int {
	n := 0
	for _, cq := range s.ports[i].classes {
		n += cq.cells.Len()
	}
	return n
}

// BufferedPackets returns the number of packets currently buffered across
// all queues. Together with Stats it closes the packet-accounting books:
// RxPackets == TxPackets + Drops() + DropsExpelled + BufferedPackets()
// must hold at any instant (the scenario smoke tests assert it).
func (s *Switch) BufferedPackets() int {
	n := 0
	for _, cq := range s.flat {
		n += cq.meta.len()
	}
	return n
}

// Expulsion returns the Occamy engine, deriving it on first call, or
// nil when expulsion is disabled. Call only after every port is
// attached: the call finalizes the engine's token rate.
func (s *Switch) Expulsion() *core.Engine { return s.ensureExpulsion() }

// ClassesPerPort returns the number of traffic-class queues per port.
func (s *Switch) ClassesPerPort() int { return s.cfg.ClassesPerPort }

// Policy returns the installed admission policy (scenario assembly wires
// clock-dependent policies like EDT/TDT through it after construction).
func (s *Switch) Policy() bm.Policy { return s.policy }

// qindex flattens (port, class) to the global queue index.
func (s *Switch) qindex(portID, class int) int {
	return portID*s.cfg.ClassesPerPort + class
}

// --- bm.State implementation -------------------------------------------

// Capacity implements bm.State.
func (s *Switch) Capacity() int { return s.cfg.BufferBytes }

// Occupancy implements bm.State.
func (s *Switch) Occupancy() int { return s.totalBytes }

// NumQueues implements bm.State and core.TM.
func (s *Switch) NumQueues() int { return len(s.flat) }

// QueueLen implements bm.State and core.TM.
func (s *Switch) QueueLen(q int) int { return s.flat[q].cells.Len() }

// QueuePriority implements bm.State.
func (s *Switch) QueuePriority(q int) int { return s.flat[q].prio }

// DequeueRate implements bm.State: the queue's recent drain rate
// normalized to its port capacity.
func (s *Switch) DequeueRate(q int) float64 {
	portID := q / s.cfg.ClassesPerPort
	p := s.ports[portID]
	if p.rateBps <= 0 {
		return 0
	}
	return s.flat[q].drain.rate(s.eng.Now()) * 8 / p.rateBps
}

// --- core.TM implementation ---------------------------------------------

// Threshold implements core.TM: the admission policy's current limit.
func (s *Switch) Threshold(q int) int { return s.policy.Threshold(s, q) }

// HeadPacketCells implements core.TM.
func (s *Switch) HeadPacketCells(q int) int {
	cq := s.flat[q]
	if cq.meta.len() == 0 {
		return 0
	}
	return s.pool.CellsFor(cq.meta.peek().Size)
}

// HeadDrop implements core.TM: expel the head packet of queue q without
// touching cell data memory.
func (s *Switch) HeadDrop(q int) (int, int, bool) {
	cq := s.flat[q]
	if cq.meta.len() == 0 {
		return 0, 0, false
	}
	p := cq.meta.pop()
	// Capture before the hook: a DropHook may recycle p into a pkt.Pool,
	// which zeroes it in place.
	size := p.Size
	cells := s.pool.CellsFor(size)
	n, id, ok := cq.cells.HeadDrop()
	if !ok || id != p.ID || n != size {
		panic(fmt.Sprintf("switchsim: PD/meta desync on head-drop: got (%d,%d), want (%d,%d)", n, id, size, p.ID))
	}
	s.totalBytes -= size
	s.stats.DropsExpelled++
	s.portStats[q/s.cfg.ClassesPerPort].DropsExpelled++
	s.queueStats[q].DropsExpelled++
	s.memBW.add(s.eng.Now(), cells) // pointer-path bandwidth only
	if s.DropHook != nil {
		s.DropHook(p, q, DropExpelled)
	}
	return size, cells, true
}

// Now implements core.TM.
func (s *Switch) Now() sim.Time { return s.eng.Now() }

// After implements core.TM.
func (s *Switch) After(d sim.Duration, fn func()) { s.eng.After(d, fn) }

// --- Data path -----------------------------------------------------------

// Receive is the ingress entry point: admission control, buffering, and
// (if the egress link is idle) kicking off transmission.
func (s *Switch) Receive(p *pkt.Packet) {
	if s.router == nil {
		panic("switchsim: no router installed")
	}
	s.stats.RxPackets++
	portID := s.router(p)
	class := p.Priority
	if class >= s.cfg.ClassesPerPort {
		class = s.cfg.ClassesPerPort - 1
	}
	q := s.qindex(portID, class)

	if !s.policy.Admit(s, q, p.Size) {
		// Preemptive policies may make room at admission time (Pushout
		// and its POT/QPO variants).
		ok := false
		if bm.FreeBuffer(s) < p.Size {
			switch {
			case s.preemptQ != nil:
				if s.preemptQ.MakeRoomFor(s, s, q, p.Size) {
					ok = s.policy.Admit(s, q, p.Size)
				}
			case s.preempt != nil:
				if s.preempt.MakeRoom(s, s, p.Size) {
					ok = s.policy.Admit(s, q, p.Size)
				}
			}
		}
		if !ok {
			s.drop(p, q, DropAdmission)
			return
		}
	}

	ref := s.pool.Alloc(p.Size, p.ID)
	if ref == cellmem.NilPD {
		// Byte accounting said yes but cell rounding said no.
		s.drop(p, q, DropNoMemory)
		return
	}

	cq := s.flat[q]
	// ECN: mark at enqueue when the queue is past the threshold.
	if s.cfg.ECNThresholdBytes > 0 && p.ECNCapable && cq.cells.Len() >= s.cfg.ECNThresholdBytes {
		p.CE = true
		s.stats.ECNMarked++
		s.portStats[portID].ECNMarked++
		s.queueStats[q].ECNMarked++
		if s.MarkHook != nil {
			s.MarkHook(p, q)
		}
	}
	cq.cells.Enqueue(ref)
	cq.meta.push(p)
	s.totalBytes += p.Size
	s.memBW.add(s.eng.Now(), s.pool.CellsFor(p.Size)) // cell writes

	if s.occ != nil {
		// An enqueue shrinks the free buffer and can push any queue over
		// its (now lower) threshold: let the expulsion engine look.
		s.occ.Kick()
	} else if s.cfg.Occamy != nil {
		// First enqueue: all ports are wired by now, so the engine derives
		// its token rate from the complete port set.
		s.ensureExpulsion().Kick()
	}
	s.tryTransmit(s.ports[portID])
}

func (s *Switch) drop(p *pkt.Packet, q int, reason DropReason) {
	ps := &s.portStats[q/s.cfg.ClassesPerPort]
	qs := &s.queueStats[q]
	switch reason {
	case DropAdmission:
		s.stats.DropsAdmission++
		ps.DropsAdmission++
		qs.DropsAdmission++
	case DropNoMemory:
		s.stats.DropsNoMemory++
		ps.DropsNoMemory++
		qs.DropsNoMemory++
	}
	if s.DropHook != nil {
		s.DropHook(p, q, reason)
	}
}

// tryTransmit starts serializing the next packet on the port if the link
// is idle and any class is backlogged.
func (s *Switch) tryTransmit(pt *port) {
	if pt.busy || pt.sink == nil {
		return
	}
	class := pt.sched.next(pt.classes)
	if class < 0 {
		return
	}
	cq := pt.classes[class]
	p := cq.meta.pop()
	n, id, ok := cq.cells.Dequeue()
	if !ok || id != p.ID || n != p.Size {
		panic(fmt.Sprintf("switchsim: PD/meta desync on dequeue: got (%d,%d), want (%d,%d)", n, id, p.Size, p.ID))
	}
	s.totalBytes -= p.Size
	now := s.eng.Now()
	cells := s.pool.CellsFor(p.Size)
	cq.drain.add(now, p.Size)
	s.memBW.add(now, 2*cells) // pointer reads + cell-data reads
	if s.occ != nil {
		s.occ.OnTransmit(cells) // the scheduler always wins the bandwidth
	}
	s.stats.TxPackets++
	s.stats.TxBytes += int64(p.Size)
	ps := &s.portStats[pt.id]
	ps.TxPackets++
	ps.TxBytes += int64(p.Size)
	qs := &s.queueStats[s.qindex(pt.id, class)]
	qs.TxPackets++
	qs.TxBytes += int64(p.Size)

	txTime := sim.Duration(float64(p.Size*8) / pt.rateBps * float64(sim.Second))
	if txTime < 1 {
		txTime = 1
	}
	pt.busy = true
	// Two typed events per packet instead of two closures: tx-done first,
	// delivery second (same relative order when prop is zero).
	s.eng.AfterEvent(txTime, pt, nil)
	s.eng.AfterEvent(txTime+pt.prop, pt, p)
}

// MemBandwidthUtilization returns the fraction of the switch's aggregate
// memory bandwidth currently consumed (Fig 7(b)). The overall bandwidth
// is 2× the aggregate port rate (simultaneous full-rate writes + reads).
func (s *Switch) MemBandwidthUtilization() float64 {
	total := 0.0
	for _, pt := range s.ports {
		total += pt.rateBps
	}
	if total == 0 {
		return 0
	}
	overallCellsPerSec := 2 * total / 8 / float64(s.cfg.CellBytes)
	u := s.memBW.rate(s.eng.Now()) / overallCellsPerSec
	if u > 1 {
		u = 1
	}
	return u
}

// BufferUtilization returns Occupancy/Capacity (Fig 7(a)).
func (s *Switch) BufferUtilization() float64 {
	return float64(s.totalBytes) / float64(s.cfg.BufferBytes)
}

var _ bm.State = (*Switch)(nil)
var _ core.TM = (*Switch)(nil)
