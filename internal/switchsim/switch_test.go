package switchsim

import (
	"testing"

	"occamy/internal/bm"
	"occamy/internal/core"
	"occamy/internal/pkt"
	"occamy/internal/sim"
)

var pktID uint64

func mkpkt(dst pkt.NodeID, size, prio int) *pkt.Packet {
	pktID++
	return &pkt.Packet{ID: pktID, Dst: dst, Size: size, Priority: prio, ECNCapable: true}
}

// testSwitch builds a switch whose router sends packets to port Dst and
// collects delivered packets per port.
func testSwitch(t *testing.T, eng *sim.Engine, cfg Config, rateBps float64) (*Switch, []([]*pkt.Packet)) {
	t.Helper()
	sw := New("sw", eng, cfg)
	out := make([][]*pkt.Packet, cfg.Ports)
	for i := 0; i < cfg.Ports; i++ {
		i := i
		sw.AttachPort(i, rateBps, 0, func(p *pkt.Packet) { out[i] = append(out[i], p) })
	}
	sw.SetRouter(func(p *pkt.Packet) int { return int(p.Dst) })
	return sw, out
}

func TestForwardingTiming(t *testing.T) {
	eng := sim.NewEngine()
	sw, out := testSwitch(t, eng, Config{
		Ports: 1, ClassesPerPort: 1, BufferBytes: 100000, Policy: bm.NewDT(1),
	}, 1e9) // 1Gbps
	sw.Receive(mkpkt(0, 1250, 0)) // 1250B at 1Gbps = 10µs
	eng.Run()
	if len(out[0]) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(out[0]))
	}
	if eng.Now() != 10*sim.Microsecond {
		t.Fatalf("delivery at %v, want 10µs", eng.Now())
	}
	st := sw.Stats()
	if st.RxPackets != 1 || st.TxPackets != 1 || st.TxBytes != 1250 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSerializationBackToBack(t *testing.T) {
	eng := sim.NewEngine()
	_, out := func() (*Switch, [][]*pkt.Packet) {
		sw, out := testSwitch(t, eng, Config{
			Ports: 1, ClassesPerPort: 1, BufferBytes: 100000, Policy: bm.NewDT(1),
		}, 1e9)
		for i := 0; i < 3; i++ {
			sw.Receive(mkpkt(0, 1250, 0))
		}
		return sw, out
	}()
	eng.Run()
	if len(out[0]) != 3 {
		t.Fatalf("delivered %d, want 3", len(out[0]))
	}
	if eng.Now() != 30*sim.Microsecond {
		t.Fatalf("last delivery at %v, want 30µs", eng.Now())
	}
}

func TestDTTailDropUnderOverload(t *testing.T) {
	eng := sim.NewEngine()
	sw, _ := testSwitch(t, eng, Config{
		Ports: 1, ClassesPerPort: 1, BufferBytes: 10000, Policy: bm.NewDT(1),
	}, 1e9)
	dropped := 0
	sw.DropHook = func(p *pkt.Packet, q int, r DropReason) {
		if r != DropAdmission {
			t.Errorf("unexpected drop reason %v", r)
		}
		dropped++
	}
	// Burst of 20 × 1000B = 20KB into a 10KB buffer at one instant.
	for i := 0; i < 20; i++ {
		sw.Receive(mkpkt(0, 1000, 0))
	}
	if dropped == 0 {
		t.Fatal("no admission drops under 2x overload")
	}
	// DT with α=1 and one queue: threshold = free, queue grows until
	// qlen >= free, i.e. ~half the buffer.
	if got := sw.QueueLen(0); got > 6000 {
		t.Fatalf("queue grew to %d, want <= ~B/2", got)
	}
	eng.Run()
}

func TestECNMarking(t *testing.T) {
	eng := sim.NewEngine()
	sw, out := testSwitch(t, eng, Config{
		Ports: 1, ClassesPerPort: 1, BufferBytes: 100000,
		Policy: bm.NewDT(8), ECNThresholdBytes: 3000,
	}, 1e9)
	for i := 0; i < 10; i++ {
		sw.Receive(mkpkt(0, 1000, 0))
	}
	eng.Run()
	marked := 0
	for _, p := range out[0] {
		if p.CE {
			marked++
		}
	}
	// All 10 packets arrive at t=0; the first immediately starts
	// serializing, so enqueue-time queue lengths run 0,0,1000,...,8000:
	// packets 5..10 see qlen >= 3000 and get marked.
	if marked != 6 {
		t.Fatalf("marked %d packets, want 6", marked)
	}
	if sw.Stats().ECNMarked != 6 {
		t.Fatalf("ECNMarked stat = %d", sw.Stats().ECNMarked)
	}
}

func TestStrictPriorityScheduling(t *testing.T) {
	eng := sim.NewEngine()
	sw, out := testSwitch(t, eng, Config{
		Ports: 1, ClassesPerPort: 2, BufferBytes: 100000,
		Policy: bm.NewDT(8), Scheduler: SchedSP,
	}, 1e9)
	// Fill LP first, then HP: HP must still exit first (after the LP
	// packet already being serialized).
	for i := 0; i < 3; i++ {
		sw.Receive(mkpkt(0, 1000, 1))
	}
	for i := 0; i < 3; i++ {
		sw.Receive(mkpkt(0, 1000, 0))
	}
	eng.Run()
	// First delivered is LP (head of line at t=0), then all HP, then LP.
	prios := make([]int, 0, 6)
	for _, p := range out[0] {
		prios = append(prios, p.Priority)
	}
	want := []int{1, 0, 0, 0, 1, 1}
	for i := range want {
		if prios[i] != want[i] {
			t.Fatalf("delivery order %v, want %v", prios, want)
		}
	}
}

func TestDRRFairBandwidth(t *testing.T) {
	eng := sim.NewEngine()
	sw, out := testSwitch(t, eng, Config{
		Ports: 1, ClassesPerPort: 2, BufferBytes: 1 << 20,
		Policy: bm.NewDT(8), Scheduler: SchedDRR,
	}, 1e9)
	// Both classes continuously backlogged with different packet sizes.
	for i := 0; i < 200; i++ {
		sw.Receive(mkpkt(0, 1500, 0))
	}
	for i := 0; i < 600; i++ {
		sw.Receive(mkpkt(0, 500, 1))
	}
	// Run until roughly half the traffic has left.
	eng.RunUntil(2 * sim.Millisecond)
	bytes := [2]int{}
	for _, p := range out[0] {
		bytes[p.Priority] += p.Size
	}
	ratio := float64(bytes[0]) / float64(bytes[1])
	if ratio < 0.85 || ratio > 1.18 {
		t.Fatalf("DRR byte ratio = %v (%d vs %d), want ~1", ratio, bytes[0], bytes[1])
	}
	eng.Run()
}

func TestOccamyExpelsSlowQueue(t *testing.T) {
	// The buffer-choking scenario in miniature: LP queue holds buffer
	// but drains slowly under SP; a HP burst arrives. Occamy must
	// head-drop the LP queue to free buffer.
	eng := sim.NewEngine()
	sw, _ := testSwitch(t, eng, Config{
		Ports: 1, ClassesPerPort: 2, BufferBytes: 20000,
		Policy:    core.New(core.Config{Alpha: 8}),
		Occamy:    &core.Config{Alpha: 8},
		Scheduler: SchedSP,
	}, 1e9)
	expelled := 0
	sw.DropHook = func(p *pkt.Packet, q int, r DropReason) {
		if r == DropExpelled {
			expelled++
		}
	}
	// Fill with LP traffic to near the DT limit.
	for i := 0; i < 17; i++ {
		sw.Receive(mkpkt(0, 1000, 1))
	}
	lpBefore := sw.QueueLen(1)
	// HP burst arrives shortly after: thresholds collapse, LP is
	// over-allocated, expulsion engine must act.
	eng.RunUntil(10 * sim.Microsecond)
	for i := 0; i < 10; i++ {
		sw.Receive(mkpkt(0, 1000, 0))
	}
	eng.RunUntil(200 * sim.Microsecond)
	if expelled == 0 {
		t.Fatal("Occamy never expelled from the over-allocated LP queue")
	}
	if sw.QueueLen(1) >= lpBefore {
		t.Fatalf("LP queue did not shrink: %d -> %d", lpBefore, sw.QueueLen(1))
	}
	eng.Run()
}

func TestOccamyDoesNotExpelFairAllocations(t *testing.T) {
	eng := sim.NewEngine()
	sw, _ := testSwitch(t, eng, Config{
		Ports: 2, ClassesPerPort: 1, BufferBytes: 1 << 20,
		Policy: core.New(core.Config{Alpha: 8}),
		Occamy: &core.Config{Alpha: 8},
	}, 1e9)
	for i := 0; i < 50; i++ {
		sw.Receive(mkpkt(pkt.NodeID(i%2), 1000, 0))
	}
	eng.Run()
	if sw.Stats().DropsExpelled != 0 {
		t.Fatalf("expelled %d packets with queues far under threshold", sw.Stats().DropsExpelled)
	}
}

func TestPushoutMakesRoomAtAdmission(t *testing.T) {
	eng := sim.NewEngine()
	sw, out := testSwitch(t, eng, Config{
		Ports: 2, ClassesPerPort: 1, BufferBytes: 10000,
		Policy: core.NewPushout(),
	}, 1e6) // slow ports so the buffer stays full
	// Fill the buffer entirely via queue 0: the first packet immediately
	// starts serializing (freeing its cells), so send 11 to leave 10
	// resident = the full 10KB.
	for i := 0; i < 11; i++ {
		sw.Receive(mkpkt(0, 1000, 0))
	}
	// Arrival for queue 1 finds the buffer full: Pushout evicts from the
	// longest queue (0) and admits.
	expelled := 0
	sw.DropHook = func(p *pkt.Packet, q int, r DropReason) {
		if r == DropExpelled {
			expelled++
		}
	}
	sw.Receive(mkpkt(1, 1000, 0))
	if expelled == 0 {
		t.Fatal("Pushout did not evict on full buffer")
	}
	if sw.Stats().DropsAdmission != 0 {
		t.Fatal("Pushout tail-dropped the arriving packet")
	}
	eng.Run()
	if len(out[1]) != 1 {
		t.Fatalf("admitted packet not delivered: %d on port 1", len(out[1]))
	}
}

func TestHeadDropNeverTouchesCellData(t *testing.T) {
	eng := sim.NewEngine()
	sw, _ := testSwitch(t, eng, Config{
		Ports: 1, ClassesPerPort: 2, BufferBytes: 20000,
		Policy:    core.New(core.Config{Alpha: 8}),
		Occamy:    &core.Config{Alpha: 8},
		Scheduler: SchedSP,
	}, 1e9)
	for i := 0; i < 17; i++ {
		sw.Receive(mkpkt(0, 1000, 1))
	}
	eng.RunUntil(5 * sim.Microsecond)
	readsBefore := sw.Pool().Meters().CellDataReads
	txBefore := sw.Stats().TxPackets
	for i := 0; i < 10; i++ {
		sw.Receive(mkpkt(0, 1000, 0))
	}
	eng.RunUntil(100 * sim.Microsecond)
	if sw.Stats().DropsExpelled == 0 {
		t.Fatal("no expulsions happened; test scenario broken")
	}
	// Every cell-data read must be attributable to a transmitted packet.
	reads := sw.Pool().Meters().CellDataReads - readsBefore
	tx := sw.Stats().TxPackets - txBefore
	maxPerPkt := int64(sw.Pool().CellsFor(1000))
	if reads > tx*maxPerPkt {
		t.Fatalf("cell-data reads %d exceed %d tx packets × %d cells", reads, tx, maxPerPkt)
	}
	eng.Run()
}

func TestMemBandwidthUtilizationBounded(t *testing.T) {
	eng := sim.NewEngine()
	sw, _ := testSwitch(t, eng, Config{
		Ports: 1, ClassesPerPort: 1, BufferBytes: 1 << 20, Policy: bm.NewDT(8),
	}, 1e9)
	for i := 0; i < 100; i++ {
		sw.Receive(mkpkt(0, 1500, 0))
	}
	eng.RunUntil(500 * sim.Microsecond)
	u := sw.MemBandwidthUtilization()
	if u < 0 || u > 1 {
		t.Fatalf("utilization = %v out of [0,1]", u)
	}
	if u == 0 {
		t.Fatal("utilization = 0 while actively forwarding")
	}
	eng.Run()
}

func TestBufferUtilization(t *testing.T) {
	eng := sim.NewEngine()
	sw, _ := testSwitch(t, eng, Config{
		Ports: 1, ClassesPerPort: 1, BufferBytes: 10000, Policy: bm.NewDT(8),
	}, 1e3) // ~no drain at this timescale
	// Three arrivals: one in flight, two resident = 2000/10000.
	sw.Receive(mkpkt(0, 1000, 0))
	sw.Receive(mkpkt(0, 1000, 0))
	sw.Receive(mkpkt(0, 1000, 0))
	if u := sw.BufferUtilization(); u < 0.19 || u > 0.21 {
		t.Fatalf("BufferUtilization = %v, want 0.2", u)
	}
	eng.Stop()
}

func TestABMOnSwitchLimitsSlowQueue(t *testing.T) {
	eng := sim.NewEngine()
	sw, _ := testSwitch(t, eng, Config{
		Ports: 1, ClassesPerPort: 2, BufferBytes: 50000,
		Policy: bm.NewABM(2), Scheduler: SchedSP,
	}, 1e9)
	// LP queue is starved by continuous HP traffic; its drain rate goes
	// to ~0, so ABM's threshold for it collapses and it cannot hoard.
	stop := false
	var feed func()
	feed = func() {
		if stop {
			return
		}
		sw.Receive(mkpkt(0, 1000, 0)) // HP keeps the port busy
		sw.Receive(mkpkt(0, 1000, 1)) // LP tries to build up
		eng.After(8*sim.Microsecond, feed)
	}
	eng.After(0, feed)
	eng.After(2*sim.Millisecond, func() { stop = true })
	eng.RunUntil(2 * sim.Millisecond)
	hp, lp := sw.QueueLen(0), sw.QueueLen(1)
	if lp > 25000 {
		t.Fatalf("ABM let the starved LP queue hoard %d bytes (HP %d)", lp, hp)
	}
	stop = true
	eng.Run()
}

func TestDesyncPanicsAreAbsentUnderRandomTraffic(t *testing.T) {
	// Soak: random sizes, classes, and ports with Occamy expulsion on;
	// the PD/meta lockstep invariant (enforced by panics) must hold.
	eng := sim.NewEngine()
	sw, _ := testSwitch(t, eng, Config{
		Ports: 4, ClassesPerPort: 2, BufferBytes: 100000,
		Policy: core.New(core.Config{Alpha: 4}), Occamy: &core.Config{Alpha: 4},
		Scheduler: SchedDRR,
	}, 1e9)
	r := sim.NewRand(42)
	for i := 0; i < 5000; i++ {
		at := sim.Time(r.Intn(int(2 * sim.Millisecond)))
		eng.At(at, func() {
			sw.Receive(mkpkt(pkt.NodeID(r.Intn(4)), 64+r.Intn(1436), r.Intn(2)))
		})
	}
	eng.Run()
	sw.Pool().CheckInvariants()
	st := sw.Stats()
	if st.TxPackets == 0 {
		t.Fatal("nothing forwarded")
	}
	if st.TxPackets+st.Drops()+st.DropsExpelled != st.RxPackets {
		t.Fatalf("packet conservation violated: %+v", st)
	}
}
