package switchsim

import (
	"math"

	"occamy/internal/sim"
)

// Recorder tracks one switch's shared-buffer occupancy dynamics over a
// run, at three depths: the whole-switch occupancy time series, the
// per-port occupancy series, and — one level further down — the
// per-(port,class) queue series with the admission policy's threshold
// sampled alongside (the Fig 3/11-style occupancy-vs-threshold view).
// Peaks and means are kept per switch, per port, and per queue. The
// caller drives it — typically one scenario-level ticker calls Sample
// on every recorder at a fixed period, so the samples of all switches
// in a fabric are aligned in time.
type Recorder struct {
	sw *Switch

	// Series is the whole-switch occupancy in bytes, one entry per
	// Sample call; Times holds the matching timestamps.
	Series []float64
	Times  []sim.Time
	// PortSeries[i] is port i's occupancy in bytes at the same instants.
	PortSeries [][]float64
	// QueueSeries[q] is queue q's length in bytes (flat index
	// port*ClassesPerPort+class); ThresholdSeries[q] is the admission
	// policy's instantaneous limit for q at the same instants, clamped
	// to the buffer capacity (unbounded policies report Capacity, and a
	// DT threshold over an empty buffer can exceed it many times over —
	// the clamp keeps the overlay on the occupancy scale).
	QueueSeries     [][]float64
	ThresholdSeries [][]float64
	// ECNSeries[q] is queue q's cumulative ECN-mark counter at the same
	// instants: the marking dynamics behind a DCTCP run (a flat segment
	// is a quiet queue, a steep one a marking burst).
	ECNSeries [][]float64

	peak        int
	sum         float64
	portPeak    []int
	portSum     []float64
	queuePeak   []int
	queueSum    []float64
	minHeadroom []int
	n           int
}

// NewRecorder attaches a recorder to a switch.
func NewRecorder(sw *Switch) *Recorder {
	r := &Recorder{
		sw:              sw,
		PortSeries:      make([][]float64, sw.NumPorts()),
		QueueSeries:     make([][]float64, sw.NumQueues()),
		ThresholdSeries: make([][]float64, sw.NumQueues()),
		ECNSeries:       make([][]float64, sw.NumQueues()),
		portPeak:        make([]int, sw.NumPorts()),
		portSum:         make([]float64, sw.NumPorts()),
		queuePeak:       make([]int, sw.NumQueues()),
		queueSum:        make([]float64, sw.NumQueues()),
		minHeadroom:     make([]int, sw.NumQueues()),
	}
	for q := range r.minHeadroom {
		r.minHeadroom[q] = math.MaxInt
	}
	return r
}

// Switch returns the recorded switch.
func (r *Recorder) Switch() *Switch { return r.sw }

// Sample records the switch's current occupancy (whole-switch,
// per-port, and per-queue with the policy threshold) at the given
// timestamp.
func (r *Recorder) Sample(now sim.Time) {
	occ := r.sw.Occupancy()
	r.Series = append(r.Series, float64(occ))
	r.Times = append(r.Times, now)
	if occ > r.peak {
		r.peak = occ
	}
	r.sum += float64(occ)
	for i := range r.portPeak {
		p := r.sw.PortOccupancy(i)
		r.PortSeries[i] = append(r.PortSeries[i], float64(p))
		if p > r.portPeak[i] {
			r.portPeak[i] = p
		}
		r.portSum[i] += float64(p)
	}
	capacity := r.sw.Capacity()
	for q := range r.queuePeak {
		l := r.sw.QueueLen(q)
		thr := r.sw.Threshold(q)
		if thr > capacity {
			thr = capacity
		}
		r.QueueSeries[q] = append(r.QueueSeries[q], float64(l))
		r.ThresholdSeries[q] = append(r.ThresholdSeries[q], float64(thr))
		r.ECNSeries[q] = append(r.ECNSeries[q], float64(r.sw.QueueStats(q).ECNMarked))
		if l > r.queuePeak[q] {
			r.queuePeak[q] = l
		}
		r.queueSum[q] += float64(l)
		if h := thr - l; h < r.minHeadroom[q] {
			r.minHeadroom[q] = h
		}
	}
	r.n++
}

// Samples returns the number of Sample calls so far.
func (r *Recorder) Samples() int { return r.n }

// Peak returns the highest sampled whole-switch occupancy in bytes.
func (r *Recorder) Peak() int { return r.peak }

// Mean returns the average sampled whole-switch occupancy in bytes.
func (r *Recorder) Mean() float64 {
	if r.n == 0 {
		return 0
	}
	return r.sum / float64(r.n)
}

// PortPeak returns the highest sampled occupancy of port i in bytes.
func (r *Recorder) PortPeak(i int) int { return r.portPeak[i] }

// PortMean returns the average sampled occupancy of port i in bytes.
func (r *Recorder) PortMean(i int) float64 {
	if r.n == 0 {
		return 0
	}
	return r.portSum[i] / float64(r.n)
}

// QueuePeak returns the highest sampled length of queue q in bytes.
func (r *Recorder) QueuePeak(q int) int { return r.queuePeak[q] }

// QueueMean returns the average sampled length of queue q in bytes.
func (r *Recorder) QueueMean(q int) float64 {
	if r.n == 0 {
		return 0
	}
	return r.queueSum[q] / float64(r.n)
}

// QueueMinHeadroom returns the smallest sampled gap between the policy
// threshold (capacity-clamped) and queue q's length, in bytes. Negative
// while the queue sat over its threshold — exactly the over-allocation
// a preemptive policy expels. Zero before any sample.
func (r *Recorder) QueueMinHeadroom(q int) int {
	if r.n == 0 {
		return 0
	}
	return r.minHeadroom[q]
}
