package switchsim

import "occamy/internal/sim"

// Recorder tracks one switch's shared-buffer occupancy dynamics over a
// run: the whole-switch occupancy time series (for trace dumps and
// sparklines) plus peak/mean occupancy per switch and per egress port.
// The caller drives it — typically one scenario-level ticker calls
// Sample on every recorder at a fixed period, so the samples of all
// switches in a fabric are aligned in time.
type Recorder struct {
	sw *Switch

	// Series is the whole-switch occupancy in bytes, one entry per
	// Sample call; Times holds the matching timestamps.
	Series []float64
	Times  []sim.Time

	peak     int
	sum      float64
	portPeak []int
	portSum  []float64
	n        int
}

// NewRecorder attaches a recorder to a switch.
func NewRecorder(sw *Switch) *Recorder {
	return &Recorder{
		sw:       sw,
		portPeak: make([]int, sw.NumPorts()),
		portSum:  make([]float64, sw.NumPorts()),
	}
}

// Switch returns the recorded switch.
func (r *Recorder) Switch() *Switch { return r.sw }

// Sample records the switch's current occupancy (whole-switch and
// per-port) at the given timestamp.
func (r *Recorder) Sample(now sim.Time) {
	occ := r.sw.Occupancy()
	r.Series = append(r.Series, float64(occ))
	r.Times = append(r.Times, now)
	if occ > r.peak {
		r.peak = occ
	}
	r.sum += float64(occ)
	for i := range r.portPeak {
		p := r.sw.PortOccupancy(i)
		if p > r.portPeak[i] {
			r.portPeak[i] = p
		}
		r.portSum[i] += float64(p)
	}
	r.n++
}

// Samples returns the number of Sample calls so far.
func (r *Recorder) Samples() int { return r.n }

// Peak returns the highest sampled whole-switch occupancy in bytes.
func (r *Recorder) Peak() int { return r.peak }

// Mean returns the average sampled whole-switch occupancy in bytes.
func (r *Recorder) Mean() float64 {
	if r.n == 0 {
		return 0
	}
	return r.sum / float64(r.n)
}

// PortPeak returns the highest sampled occupancy of port i in bytes.
func (r *Recorder) PortPeak(i int) int { return r.portPeak[i] }

// PortMean returns the average sampled occupancy of port i in bytes.
func (r *Recorder) PortMean(i int) float64 {
	if r.n == 0 {
		return 0
	}
	return r.portSum[i] / float64(r.n)
}

