package switchsim

import (
	"math"

	"occamy/internal/sim"
)

// rateMeter estimates an event rate (bytes/sec or cells/sec) from
// irregular impulses using an exponentially weighted kernel: each sample
// of n units contributes n/τ to the rate and decays with time constant τ.
type rateMeter struct {
	tau  float64 // seconds
	val  float64 // current rate estimate
	last sim.Time
}

func newRateMeter(tau sim.Duration) *rateMeter {
	return &rateMeter{tau: tau.Seconds()}
}

func (m *rateMeter) decayTo(now sim.Time) {
	if now > m.last {
		m.val *= math.Exp(-(now - m.last).Seconds() / m.tau)
		m.last = now
	}
}

// add records n units at time now.
func (m *rateMeter) add(now sim.Time, n int) {
	m.decayTo(now)
	m.val += float64(n) / m.tau
}

// rate returns the estimated rate in units/second at time now.
func (m *rateMeter) rate(now sim.Time) float64 {
	m.decayTo(now)
	return m.val
}
