package switchsim

// fifo is a slice-backed queue with amortized O(1) operations; it holds
// the packet metadata that travels in lockstep with the cellmem PD list.
type fifo[T any] struct {
	buf  []T
	head int
}

func (f *fifo[T]) len() int { return len(f.buf) - f.head }

func (f *fifo[T]) push(v T) { f.buf = append(f.buf, v) }

func (f *fifo[T]) peek() T { return f.buf[f.head] }

func (f *fifo[T]) pop() T {
	v := f.buf[f.head]
	var zero T
	f.buf[f.head] = zero // release for GC
	f.head++
	// Compact once the dead prefix dominates.
	if f.head > 64 && f.head*2 >= len(f.buf) {
		n := copy(f.buf, f.buf[f.head:])
		f.buf = f.buf[:n]
		f.head = 0
	}
	return v
}
