package switchsim

import (
	"testing"

	"occamy/internal/core"
	"occamy/internal/pkt"
	"occamy/internal/sim"
)

// Regression for the AttachPort re-derivation bug: the expulsion engine
// used to be rebuilt on *every* attach, each intermediate instance
// computing its token rate from only the ports wired so far and then
// being discarded (state and all). It must now be derived exactly once,
// on first use, with the token rate reflecting every attached port.
func TestExpulsionEngineDerivedOnceWithFullTokenRate(t *testing.T) {
	eng := sim.NewEngine()
	sw := New("sw", eng, Config{
		Ports: 4, ClassesPerPort: 1, BufferBytes: 100_000, CellBytes: 200,
		Policy: core.New(core.Config{Alpha: 1}),
		Occamy: &core.Config{Alpha: 1},
	})
	// Heterogeneous rates: a token rate derived from a prefix of the
	// ports is distinguishable from the full aggregate.
	rates := []float64{10e9, 40e9, 10e9, 100e9}
	total := 0.0
	for i, r := range rates {
		sw.AttachPort(i, r, 0, func(*pkt.Packet) {})
		total += r
	}
	sw.SetRouter(func(p *pkt.Packet) int { return int(p.Dst) })

	// First use finalizes the engine with the aggregate memory bandwidth.
	sw.Receive(mkpkt(0, 1000, 0))
	e := sw.Expulsion()
	if e == nil {
		t.Fatal("no expulsion engine after first Receive")
	}
	want := total / 8 / 200
	if got := e.Config().TokenRate; got != want {
		t.Fatalf("TokenRate %g, want %g (aggregate of all %d ports)", got, want, len(rates))
	}

	// Idempotent: later traffic and later Expulsion calls see the same
	// engine instance, so no expulsion stats or token state can leak
	// into a discarded copy.
	before := e.Stats().Passes
	for i := 0; i < 50; i++ {
		sw.Receive(mkpkt(pkt.NodeID(i%4), 1000, 0))
		eng.RunFor(sim.Microsecond)
	}
	if sw.Expulsion() != e {
		t.Fatal("expulsion engine was rebuilt after first use")
	}
	if e.Stats().Passes < before {
		t.Fatal("expulsion stats went backwards")
	}

	// Wiring after finalization is a bug the switch now refuses loudly.
	defer func() {
		if recover() == nil {
			t.Fatal("AttachPort after engine finalization did not panic")
		}
	}()
	sw.AttachPort(0, 10e9, 0, func(*pkt.Packet) {})
}

// An explicit TokenRate in the config must pass through untouched, and
// Expulsion() itself (not only traffic) finalizes the engine.
func TestExpulsionExplicitTokenRate(t *testing.T) {
	eng := sim.NewEngine()
	sw := New("sw", eng, Config{
		Ports: 2, ClassesPerPort: 1, BufferBytes: 100_000,
		Policy: core.New(core.Config{Alpha: 1}),
		Occamy: &core.Config{Alpha: 1, TokenRate: 12345},
	})
	for i := 0; i < 2; i++ {
		sw.AttachPort(i, 10e9, 0, func(*pkt.Packet) {})
	}
	e := sw.Expulsion()
	if e == nil {
		t.Fatal("Expulsion did not finalize the engine")
	}
	if got := e.Config().TokenRate; got != 12345 {
		t.Fatalf("TokenRate %g, want the configured 12345", got)
	}
	if sw.Expulsion() != e {
		t.Fatal("second Expulsion call returned a different engine")
	}
}

// A switch without an Occamy config never grows an engine.
func TestNoExpulsionWithoutConfig(t *testing.T) {
	eng := sim.NewEngine()
	sw, _ := testSwitch(t, eng, Config{
		Ports: 1, ClassesPerPort: 1, BufferBytes: 100_000,
		Policy: core.New(core.Config{Alpha: 1}),
	}, 1e9)
	sw.Receive(mkpkt(0, 1000, 0))
	eng.Run()
	if sw.Expulsion() != nil {
		t.Fatal("engine derived without an Occamy config")
	}
}
