package switchsim

import (
	"fmt"
	"testing"

	"occamy/internal/bm"
	"occamy/internal/core"
	"occamy/internal/pkt"
	"occamy/internal/sim"
)

// allPolicies builds one instance of every BM scheme in the repository,
// wired for a switch with the given engine.
func allPolicies(eng *sim.Engine) []struct {
	name   string
	policy bm.Policy
	occ    *core.Config
} {
	occCfg := core.Config{Alpha: 8}
	occLD := core.Config{Alpha: 8, Victim: core.LongestQueue}
	edt := bm.NewEDT(1, func() int64 { return int64(eng.Now()) })
	return []struct {
		name   string
		policy bm.Policy
		occ    *core.Config
	}{
		{"CS", bm.CompleteSharing{}, nil},
		{"ST", bm.StaticThreshold{Limit: 100_000}, nil},
		{"DT", bm.NewDT(1), nil},
		{"ABM", bm.NewABM(2), nil},
		{"EDT", edt, nil},
		{"TDT", bm.NewTDT(1), nil},
		{"Occamy", core.New(occCfg), &occCfg},
		{"Occamy-LD", core.New(occLD), &occLD},
		{"Pushout", core.NewPushout(), nil},
		{"POT", core.NewPOT(0.5), nil},
		{"QPO", core.NewQPO(), nil},
	}
}

// TestAllPoliciesSoak pushes randomized traffic through every policy and
// checks the system invariants that must hold regardless of scheme:
// packet conservation, cell conservation, and non-negative queues.
func TestAllPoliciesSoak(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		eng := sim.NewEngine()
		for _, pc := range allPolicies(eng) {
			pc := pc
			t.Run(fmt.Sprintf("%s/seed%d", pc.name, seed), func(t *testing.T) {
				eng := sim.NewEngine()
				var policy bm.Policy = pc.policy
				// Policies carry state: rebuild fresh per run.
				switch pc.name {
				case "EDT":
					policy = bm.NewEDT(1, func() int64 { return int64(eng.Now()) })
				case "TDT":
					policy = bm.NewTDT(1)
				case "Occamy":
					policy = core.New(*pc.occ)
				case "Occamy-LD":
					policy = core.New(*pc.occ)
				case "Pushout":
					policy = core.NewPushout()
				case "POT":
					policy = core.NewPOT(0.5)
				case "QPO":
					policy = core.NewQPO()
				}
				sw := New("soak", eng, Config{
					Ports: 4, ClassesPerPort: 2, BufferBytes: 64_000,
					Policy: policy, Occamy: pc.occ,
					Scheduler: SchedKind(int(seed) % 3), ECNThresholdBytes: 16_000,
				})
				for i := 0; i < 4; i++ {
					sw.AttachPort(i, 1e9, 0, func(*pkt.Packet) {})
				}
				sw.SetRouter(func(p *pkt.Packet) int { return int(p.Dst) })

				r := sim.NewRand(seed * 77)
				var id uint64
				for i := 0; i < 3000; i++ {
					at := sim.Time(r.Intn(int(3 * sim.Millisecond)))
					eng.At(at, func() {
						id++
						sw.Receive(&pkt.Packet{
							ID:         id,
							FlowID:     uint64(r.Intn(16)),
							Dst:        pkt.NodeID(r.Intn(4)),
							Size:       40 + r.Intn(1460),
							Priority:   r.Intn(2),
							ECNCapable: r.Intn(2) == 0,
						})
					})
				}
				eng.Run()
				sw.Pool().CheckInvariants()
				st := sw.Stats()
				if st.TxPackets+st.Drops()+st.DropsExpelled != st.RxPackets {
					t.Fatalf("packet conservation: %+v", st)
				}
				for q := 0; q < sw.NumQueues(); q++ {
					if sw.QueueLen(q) != 0 {
						t.Fatalf("queue %d not drained: %d bytes", q, sw.QueueLen(q))
					}
				}
				if sw.Occupancy() != 0 {
					t.Fatalf("occupancy %d after drain", sw.Occupancy())
				}
			})
		}
	}
}
