package switchsim

import (
	"testing"

	"occamy/internal/bm"
	"occamy/internal/pkt"
	"occamy/internal/sim"
)

// Per-port accounting: the per-port egress counters must sum to the
// switch-level stats exactly, and per-port occupancy must sum to the
// whole-switch occupancy at any instant.
func TestPortStatsSumToSwitchStats(t *testing.T) {
	eng := sim.NewEngine()
	sw, _ := testSwitch(t, eng, Config{
		Ports: 4, ClassesPerPort: 2, BufferBytes: 12_000,
		ECNThresholdBytes: 2_000, Policy: bm.NewDT(1),
	}, 1e9)
	rng := sim.NewRand(9)
	for i := 0; i < 400; i++ {
		sw.Receive(mkpkt(pkt.NodeID(rng.Intn(4)), 500+rng.Intn(1000), rng.Intn(2)))
		if i%50 == 0 {
			eng.RunFor(20 * sim.Microsecond)
		}
		// Mid-run: occupancy decomposes over ports.
		sum := 0
		for p := 0; p < sw.NumPorts(); p++ {
			sum += sw.PortOccupancy(p)
		}
		if sum != sw.Occupancy() {
			t.Fatalf("port occupancies sum to %d, switch reports %d", sum, sw.Occupancy())
		}
	}
	eng.Run()

	var agg PortStats
	for p := 0; p < sw.NumPorts(); p++ {
		ps := sw.PortStats(p)
		agg.TxPackets += ps.TxPackets
		agg.TxBytes += ps.TxBytes
		agg.DropsAdmission += ps.DropsAdmission
		agg.DropsNoMemory += ps.DropsNoMemory
		agg.DropsExpelled += ps.DropsExpelled
		agg.ECNMarked += ps.ECNMarked
	}
	st := sw.Stats()
	if agg.TxPackets != st.TxPackets || agg.TxBytes != st.TxBytes {
		t.Errorf("per-port tx %+v != switch stats %+v", agg, st)
	}
	if agg.DropsAdmission != st.DropsAdmission || agg.DropsNoMemory != st.DropsNoMemory ||
		agg.DropsExpelled != st.DropsExpelled {
		t.Errorf("per-port drops %+v != switch stats %+v", agg, st)
	}
	if agg.ECNMarked != st.ECNMarked {
		t.Errorf("per-port ECN %d != switch %d", agg.ECNMarked, st.ECNMarked)
	}
	if st.DropsAdmission == 0 {
		t.Error("scenario too gentle: no admission drops exercised the per-port counters")
	}
	if st.ECNMarked == 0 {
		t.Error("no ECN marks exercised the per-port counters")
	}
}

// Per-queue accounting, one level below ports: each port's per-queue
// egress/drop/mark counters must sum to that port's PortStats exactly,
// so drops are attributable to the (port, class) queue, not only the
// port.
func TestQueueStatsSumToPortStats(t *testing.T) {
	eng := sim.NewEngine()
	sw, _ := testSwitch(t, eng, Config{
		Ports: 4, ClassesPerPort: 2, BufferBytes: 12_000,
		ECNThresholdBytes: 2_000, Policy: bm.NewDT(1), Scheduler: SchedSP,
	}, 1e9)
	rng := sim.NewRand(9)
	for i := 0; i < 400; i++ {
		sw.Receive(mkpkt(pkt.NodeID(rng.Intn(4)), 500+rng.Intn(1000), rng.Intn(2)))
		if i%50 == 0 {
			eng.RunFor(20 * sim.Microsecond)
		}
	}
	eng.Run()

	classes := sw.ClassesPerPort()
	var drops, marks int64
	for p := 0; p < sw.NumPorts(); p++ {
		var agg QueueStats
		for c := 0; c < classes; c++ {
			qs := sw.QueueStats(p*classes + c)
			agg.TxPackets += qs.TxPackets
			agg.TxBytes += qs.TxBytes
			agg.DropsAdmission += qs.DropsAdmission
			agg.DropsNoMemory += qs.DropsNoMemory
			agg.DropsExpelled += qs.DropsExpelled
			agg.ECNMarked += qs.ECNMarked
		}
		ps := sw.PortStats(p)
		want := QueueStats{
			TxPackets: ps.TxPackets, TxBytes: ps.TxBytes,
			DropsAdmission: ps.DropsAdmission, DropsNoMemory: ps.DropsNoMemory,
			DropsExpelled: ps.DropsExpelled, ECNMarked: ps.ECNMarked,
		}
		if agg != want {
			t.Errorf("port %d: per-queue sums %+v != port stats %+v", p, agg, want)
		}
		drops += agg.Drops()
		marks += agg.ECNMarked
	}
	if drops == 0 {
		t.Error("scenario too gentle: no drops exercised the per-queue counters")
	}
	if marks == 0 {
		t.Error("no ECN marks exercised the per-queue counters")
	}
}

// The recorder's aggregates must match its own series, and per-port
// peaks can never exceed the whole-switch peak (samples are aligned).
func TestRecorderAggregates(t *testing.T) {
	eng := sim.NewEngine()
	sw, _ := testSwitch(t, eng, Config{
		Ports: 2, ClassesPerPort: 1, BufferBytes: 50_000, Policy: bm.NewDT(1),
	}, 1e9)
	rec := NewRecorder(sw)
	tick := eng.Every(0, 5*sim.Microsecond, func() { rec.Sample(eng.Now()) })
	rng := sim.NewRand(3)
	for i := 0; i < 200; i++ {
		sw.Receive(mkpkt(pkt.NodeID(rng.Intn(2)), 1000, 0))
		if i%11 == 0 {
			eng.RunFor(15 * sim.Microsecond)
		}
	}
	eng.RunFor(sim.Millisecond)
	tick.Stop()

	if rec.Samples() == 0 || len(rec.Series) != rec.Samples() {
		t.Fatalf("series length %d, samples %d", len(rec.Series), rec.Samples())
	}
	peak, sum := 0.0, 0.0
	for _, v := range rec.Series {
		if v > peak {
			peak = v
		}
		sum += v
	}
	if int(peak) != rec.Peak() {
		t.Errorf("Peak()=%d, series max %g", rec.Peak(), peak)
	}
	if mean := sum / float64(len(rec.Series)); mean != rec.Mean() {
		t.Errorf("Mean()=%g, series mean %g", rec.Mean(), mean)
	}
	if rec.Peak() == 0 {
		t.Error("recorder never saw a non-empty buffer")
	}
	for p := 0; p < sw.NumPorts(); p++ {
		if rec.PortPeak(p) > rec.Peak() {
			t.Errorf("port %d peak %d exceeds switch peak %d", p, rec.PortPeak(p), rec.Peak())
		}
	}
}

// Per-queue sampling: at every instant the queue series of a port sum
// to its port series and the port series to the switch series; the
// threshold is sampled alongside, clamped to capacity; and the queue
// aggregates match their own series.
func TestRecorderQueueSeries(t *testing.T) {
	eng := sim.NewEngine()
	sw, _ := testSwitch(t, eng, Config{
		Ports: 3, ClassesPerPort: 2, BufferBytes: 30_000,
		Policy: bm.NewDT(1), Scheduler: SchedDRR,
	}, 1e9)
	rec := NewRecorder(sw)
	tick := eng.Every(0, 5*sim.Microsecond, func() { rec.Sample(eng.Now()) })
	rng := sim.NewRand(7)
	for i := 0; i < 300; i++ {
		sw.Receive(mkpkt(pkt.NodeID(rng.Intn(3)), 500+rng.Intn(1000), rng.Intn(2)))
		if i%13 == 0 {
			eng.RunFor(12 * sim.Microsecond)
		}
	}
	eng.RunFor(sim.Millisecond)
	tick.Stop()

	n := rec.Samples()
	if n == 0 {
		t.Fatal("no samples")
	}
	classes := sw.ClassesPerPort()
	for s := 0; s < n; s++ {
		swSum := 0.0
		for p := 0; p < sw.NumPorts(); p++ {
			portSum := 0.0
			for c := 0; c < classes; c++ {
				portSum += rec.QueueSeries[p*classes+c][s]
			}
			if portSum != rec.PortSeries[p][s] {
				t.Fatalf("sample %d port %d: queue sum %g != port series %g", s, p, portSum, rec.PortSeries[p][s])
			}
			swSum += rec.PortSeries[p][s]
		}
		if swSum != rec.Series[s] {
			t.Fatalf("sample %d: port sum %g != switch series %g", s, swSum, rec.Series[s])
		}
	}
	sawBacklog := false
	for q := 0; q < sw.NumQueues(); q++ {
		peak, sum := 0.0, 0.0
		minHead := rec.ThresholdSeries[q][0] - rec.QueueSeries[q][0]
		for s := 0; s < n; s++ {
			thr := rec.ThresholdSeries[q][s]
			if thr < 0 || thr > float64(sw.Capacity()) {
				t.Fatalf("queue %d sample %d: threshold %g outside [0, capacity]", q, s, thr)
			}
			v := rec.QueueSeries[q][s]
			if v > peak {
				peak = v
			}
			sum += v
			if h := thr - v; h < minHead {
				minHead = h
			}
		}
		if int(peak) != rec.QueuePeak(q) {
			t.Errorf("queue %d: QueuePeak %d, series max %g", q, rec.QueuePeak(q), peak)
		}
		if mean := sum / float64(n); mean != rec.QueueMean(q) {
			t.Errorf("queue %d: QueueMean %g, series mean %g", q, rec.QueueMean(q), mean)
		}
		if int(minHead) != rec.QueueMinHeadroom(q) {
			t.Errorf("queue %d: QueueMinHeadroom %d, series min %g", q, rec.QueueMinHeadroom(q), minHead)
		}
		if rec.QueuePeak(q) > 0 {
			sawBacklog = true
		}
	}
	if !sawBacklog {
		t.Error("no queue ever buffered; the scenario is too gentle to test per-queue sampling")
	}
}
