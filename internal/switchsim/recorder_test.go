package switchsim

import (
	"testing"

	"occamy/internal/bm"
	"occamy/internal/pkt"
	"occamy/internal/sim"
)

// Per-port accounting: the per-port egress counters must sum to the
// switch-level stats exactly, and per-port occupancy must sum to the
// whole-switch occupancy at any instant.
func TestPortStatsSumToSwitchStats(t *testing.T) {
	eng := sim.NewEngine()
	sw, _ := testSwitch(t, eng, Config{
		Ports: 4, ClassesPerPort: 2, BufferBytes: 12_000,
		ECNThresholdBytes: 2_000, Policy: bm.NewDT(1),
	}, 1e9)
	rng := sim.NewRand(9)
	for i := 0; i < 400; i++ {
		sw.Receive(mkpkt(pkt.NodeID(rng.Intn(4)), 500+rng.Intn(1000), rng.Intn(2)))
		if i%50 == 0 {
			eng.RunFor(20 * sim.Microsecond)
		}
		// Mid-run: occupancy decomposes over ports.
		sum := 0
		for p := 0; p < sw.NumPorts(); p++ {
			sum += sw.PortOccupancy(p)
		}
		if sum != sw.Occupancy() {
			t.Fatalf("port occupancies sum to %d, switch reports %d", sum, sw.Occupancy())
		}
	}
	eng.Run()

	var agg PortStats
	for p := 0; p < sw.NumPorts(); p++ {
		ps := sw.PortStats(p)
		agg.TxPackets += ps.TxPackets
		agg.TxBytes += ps.TxBytes
		agg.DropsAdmission += ps.DropsAdmission
		agg.DropsNoMemory += ps.DropsNoMemory
		agg.DropsExpelled += ps.DropsExpelled
		agg.ECNMarked += ps.ECNMarked
	}
	st := sw.Stats()
	if agg.TxPackets != st.TxPackets || agg.TxBytes != st.TxBytes {
		t.Errorf("per-port tx %+v != switch stats %+v", agg, st)
	}
	if agg.DropsAdmission != st.DropsAdmission || agg.DropsNoMemory != st.DropsNoMemory ||
		agg.DropsExpelled != st.DropsExpelled {
		t.Errorf("per-port drops %+v != switch stats %+v", agg, st)
	}
	if agg.ECNMarked != st.ECNMarked {
		t.Errorf("per-port ECN %d != switch %d", agg.ECNMarked, st.ECNMarked)
	}
	if st.DropsAdmission == 0 {
		t.Error("scenario too gentle: no admission drops exercised the per-port counters")
	}
	if st.ECNMarked == 0 {
		t.Error("no ECN marks exercised the per-port counters")
	}
}

// The recorder's aggregates must match its own series, and per-port
// peaks can never exceed the whole-switch peak (samples are aligned).
func TestRecorderAggregates(t *testing.T) {
	eng := sim.NewEngine()
	sw, _ := testSwitch(t, eng, Config{
		Ports: 2, ClassesPerPort: 1, BufferBytes: 50_000, Policy: bm.NewDT(1),
	}, 1e9)
	rec := NewRecorder(sw)
	tick := eng.Every(0, 5*sim.Microsecond, func() { rec.Sample(eng.Now()) })
	rng := sim.NewRand(3)
	for i := 0; i < 200; i++ {
		sw.Receive(mkpkt(pkt.NodeID(rng.Intn(2)), 1000, 0))
		if i%11 == 0 {
			eng.RunFor(15 * sim.Microsecond)
		}
	}
	eng.RunFor(sim.Millisecond)
	tick.Stop()

	if rec.Samples() == 0 || len(rec.Series) != rec.Samples() {
		t.Fatalf("series length %d, samples %d", len(rec.Series), rec.Samples())
	}
	peak, sum := 0.0, 0.0
	for _, v := range rec.Series {
		if v > peak {
			peak = v
		}
		sum += v
	}
	if int(peak) != rec.Peak() {
		t.Errorf("Peak()=%d, series max %g", rec.Peak(), peak)
	}
	if mean := sum / float64(len(rec.Series)); mean != rec.Mean() {
		t.Errorf("Mean()=%g, series mean %g", rec.Mean(), mean)
	}
	if rec.Peak() == 0 {
		t.Error("recorder never saw a non-empty buffer")
	}
	for p := 0; p < sw.NumPorts(); p++ {
		if rec.PortPeak(p) > rec.Peak() {
			t.Errorf("port %d peak %d exceeds switch peak %d", p, rec.PortPeak(p), rec.Peak())
		}
	}
}
