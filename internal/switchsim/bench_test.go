package switchsim

import (
	"testing"

	"occamy/internal/bm"
	"occamy/internal/core"
	"occamy/internal/pkt"
	"occamy/internal/sim"
)

// benchSwitch forwards b.N packets through one port and reports the
// packets-per-second the simulator core sustains.
func benchSwitch(b *testing.B, policy bm.Policy, occ *core.Config) {
	eng := sim.NewEngine()
	sw := New("bench", eng, Config{
		Ports: 4, ClassesPerPort: 2, BufferBytes: 1 << 20,
		Policy: policy, Occamy: occ, Scheduler: SchedDRR,
	})
	for i := 0; i < 4; i++ {
		sw.AttachPort(i, 100e9, 0, func(*pkt.Packet) {})
	}
	sw.SetRouter(func(p *pkt.Packet) int { return int(p.Dst) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.Receive(&pkt.Packet{
			ID: uint64(i + 1), Dst: pkt.NodeID(i & 3), Size: 1000, Priority: i & 1,
		})
		if i&1023 == 0 {
			eng.RunFor(100 * sim.Microsecond)
		}
	}
	eng.Run()
}

func BenchmarkSwitchForwardDT(b *testing.B) { benchSwitch(b, bm.NewDT(1), nil) }

func BenchmarkSwitchForwardABM(b *testing.B) { benchSwitch(b, bm.NewABM(2), nil) }

func BenchmarkSwitchForwardOccamy(b *testing.B) {
	cfg := core.Config{Alpha: 8}
	benchSwitch(b, core.New(cfg), &cfg)
}

func BenchmarkSwitchForwardPushout(b *testing.B) { benchSwitch(b, core.NewPushout(), nil) }
