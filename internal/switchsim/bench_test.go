package switchsim

import (
	"testing"

	"occamy/internal/bm"
	"occamy/internal/core"
	"occamy/internal/pkt"
	"occamy/internal/sim"
)

// benchSwitch forwards b.N packets through one port and reports the
// packets-per-second the simulator core sustains. Packets are recycled
// through a freelist, as the experiment harnesses do, so the measured
// allocations are the datapath's own.
func benchSwitch(b *testing.B, policy bm.Policy, occ *core.Config) {
	eng := sim.NewEngine()
	sw := New("bench", eng, Config{
		Ports: 4, ClassesPerPort: 2, BufferBytes: 1 << 20,
		Policy: policy, Occamy: occ, Scheduler: SchedDRR,
	})
	pool := pkt.NewPool()
	for i := 0; i < 4; i++ {
		sw.AttachPort(i, 100e9, 0, pool.Put)
	}
	sw.DropHook = func(p *pkt.Packet, q int, reason DropReason) { pool.Put(p) }
	sw.SetRouter(func(p *pkt.Packet) int { return int(p.Dst) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pool.Get()
		p.ID = uint64(i + 1)
		p.Dst = pkt.NodeID(i & 3)
		p.Size = 1000
		p.Priority = i & 1
		sw.Receive(p)
		if i&1023 == 0 {
			eng.RunFor(100 * sim.Microsecond)
		}
	}
	eng.Run()
	b.ReportMetric(float64(eng.Processed())/b.Elapsed().Seconds(), "events/sec")
}

func BenchmarkSwitchForwardDT(b *testing.B) { benchSwitch(b, bm.NewDT(1), nil) }

func BenchmarkSwitchForwardABM(b *testing.B) { benchSwitch(b, bm.NewABM(2), nil) }

func BenchmarkSwitchForwardOccamy(b *testing.B) {
	cfg := core.Config{Alpha: 8}
	benchSwitch(b, core.New(cfg), &cfg)
}

func BenchmarkSwitchForwardPushout(b *testing.B) { benchSwitch(b, core.NewPushout(), nil) }
